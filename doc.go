// Package repro is a Go reproduction of Berna Massingill, "Integrating
// Task and Data Parallelism" (Caltech, M.S. thesis / CS-TR, 1993).
//
// The paper proposes a programming model in which task-parallel programs
// gain exactly two new operations — creation/manipulation of distributed
// data structures, and distributed calls to SPMD data-parallel programs —
// and describes a prototype implementation on PCN with an array-manager
// runtime, wrapper-program call machinery, and status/reduction combining.
//
// The library lives under internal/ (see DESIGN.md for the full system
// inventory):
//
//	core         — the public facade: Machine, distributed arrays, calls
//	defval       — single-assignment (definitional) variables
//	stream       — PCN-style streams (definitional lists)
//	compose      — sequential / parallel / choice composition
//	msg, vp      — typed selective-receive messaging; virtual processors
//	grid, darray — decomposition and rectangle arithmetic; array
//	               representation and section-level block copy
//	arraymgr, am — the array manager (element and bulk block data
//	               planes) and its §4 library procedures
//	spmd, dcall  — the SPMD runtime and distributed-call machinery
//	linalg, fft  — the data-parallel program libraries (App. D, §6.2)
//	sim, trace   — discrete-event substrate; tracing
//	apps/*       — the worked examples and problem-class applications
//	experiments  — the per-figure experiment harness (EXPERIMENTS.md)
//
// Runnable programs are under examples/ and cmd/tdplab; the benchmark
// harness regenerating every figure's measurement is bench_test.go in this
// directory.
package repro
