// Command innerproduct runs the paper's §6.1 worked example: a
// task-parallel program creating two distributed vectors and making a
// distributed call to a data-parallel program that initialises them and
// computes their inner product, returned through a max-combined reduction
// variable.
//
//	go run ./examples/innerproduct -p 4 -local 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/innerproduct"
	"repro/internal/core"
)

func main() {
	p := flag.Int("p", 4, "virtual processors")
	localM := flag.Int("local", 8, "local elements per processor (paper's Local_m)")
	flag.Parse()

	fmt.Println("starting test") // the paper's go() prints this line
	m := core.New(*p)
	defer m.Close()
	if err := innerproduct.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}
	res, err := innerproduct.Run(m, *localM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inner product %g\n", res.Product) // matches the paper's printf
	fmt.Printf("expected      %g (n=%d)\n", res.Expected, res.N)
	fmt.Println("ending test")
}
