// Command polymult runs the paper's §6.2 worked example: pipelined
// polynomial multiplication using distributed FFTs over four processor
// groups connected by streams.
//
//	go run ./examples/polymult -p 4 -n 8 -pairs 3
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/apps/polymult"
	"repro/internal/core"
)

func main() {
	p := flag.Int("p", 4, "virtual processors (divisible by 4, quarter a power of two)")
	n := flag.Int("n", 8, "polynomial size (power of two)")
	pairs := flag.Int("pairs", 3, "number of polynomial pairs to push through the pipeline")
	seed := flag.Int64("seed", 1, "random seed for the input polynomials")
	flag.Parse()

	m := core.New(*p)
	defer m.Close()
	if err := polymult.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	input := make([][2][]float64, *pairs)
	for k := range input {
		f := make([]float64, *n)
		g := make([]float64, *n)
		for i := range f {
			f[i] = float64(rng.Intn(9) - 4)
			g[i] = float64(rng.Intn(9) - 4)
		}
		input[k] = [2][]float64{f, g}
	}

	got, err := polymult.Run(m, *n, input)
	if err != nil {
		log.Fatal(err)
	}
	for k := range input {
		want := polymult.Schoolbook(input[k][0], input[k][1])
		worst := 0.0
		for j := range want {
			if d := math.Abs(got[k][j] - want[j]); d > worst {
				worst = d
			}
		}
		fmt.Printf("pair %d: F=%v G=%v\n  product=%.6g\n  max error vs schoolbook: %.2g\n",
			k, input[k][0], input[k][1], got[k], worst)
	}
}
