// Command climate runs the coupled ocean/atmosphere simulation of §2.3.1
// (Fig 2.1): two data-parallel time-stepped simulations on disjoint
// processor groups exchanging boundary data through the task-parallel top
// level at every step.
//
//	go run ./examples/climate -p 4 -rows 16 -cols 12 -steps 50
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/apps/climate"
	"repro/internal/core"
)

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func main() {
	p := flag.Int("p", 4, "virtual processors (even; half per simulation)")
	rows := flag.Int("rows", 16, "field rows (divisible by p/2)")
	cols := flag.Int("cols", 12, "field columns")
	steps := flag.Int("steps", 50, "time steps")
	alpha := flag.Float64("alpha", 0.4, "diffusion weight")
	channels := flag.Bool("channels", false, "use the §7.2.1 extension: boundary exchange over direct channels")
	flag.Parse()

	m := core.New(*p)
	defer m.Close()
	if err := climate.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}
	cfg := climate.Config{Rows: *rows, Cols: *cols, Steps: *steps, Alpha: *alpha}
	run := climate.Run
	if *channels {
		run = climate.RunChanneled
	}
	res, err := run(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref := climate.RunSequential(cfg)
	worst := 0.0
	for i := range ref.Ocean {
		worst = math.Max(worst, math.Abs(res.Ocean[i]-ref.Ocean[i]))
		worst = math.Max(worst, math.Abs(res.Atmosphere[i]-ref.Atmosphere[i]))
	}
	fmt.Printf("after %d coupled steps on %d processors (two groups of %d):\n", *steps, *p, *p/2)
	fmt.Printf("  mean ocean temperature:      %8.4f\n", mean(res.Ocean))
	fmt.Printf("  mean atmosphere temperature: %8.4f\n", mean(res.Atmosphere))
	fmt.Printf("  max deviation from sequential reference: %.3g\n", worst)
}
