// Command reactor runs the discrete-event reactor simulation of §2.3.3
// (Fig 2.3): pump, valve and reactor components communicating through an
// event queue at the task level, with the reactor's model executed as a
// data-parallel program by distributed call.
//
//	go run ./examples/reactor -p 4 -cells 16 -horizon 10
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/apps/reactor"
	"repro/internal/core"
)

func main() {
	p := flag.Int("p", 4, "virtual processors (reactor group)")
	cells := flag.Int("cells", 16, "reactor field cells (divisible by p)")
	dt := flag.Float64("dt", 0.5, "pump tick interval")
	horizon := flag.Float64("horizon", 10, "simulation end time")
	alpha := flag.Float64("alpha", 0.25, "diffusion coefficient")
	valve := flag.Float64("valve", 0.8, "valve pass-through fraction")
	flag.Parse()

	m := core.New(*p)
	defer m.Close()
	if err := reactor.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}
	cfg := reactor.Config{Cells: *cells, Dt: *dt, Horizon: *horizon, Alpha: *alpha, ValveCut: *valve}
	res, err := reactor.Run(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events processed:   %d (%d pump pulses)\n", res.Events, res.PulsesEmitted)
	fmt.Printf("heat injected:      %.6f\n", res.TotalInjected)
	fmt.Printf("heat in field:      %.6f (conservation error %.2g)\n",
		res.FieldTotal, math.Abs(res.FieldTotal-res.TotalInjected))
	fmt.Printf("temperature field:  %.4f\n", res.Field)
}
