// Command animation runs the inherently-parallel frame-generation example
// of §2.3.4 (Fig 2.4): independent animation frames rendered concurrently
// by data-parallel programs on disjoint processor groups.
//
//	go run ./examples/animation -p 4 -groups 2 -frames 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/animation"
	"repro/internal/core"
)

func main() {
	p := flag.Int("p", 4, "virtual processors")
	groups := flag.Int("groups", 2, "independent rendering groups (divides p)")
	frames := flag.Int("frames", 8, "frames to render")
	height := flag.Int("height", 32, "frame height (divisible by p/groups)")
	width := flag.Int("width", 32, "frame width")
	flag.Parse()

	m := core.New(*p)
	defer m.Close()
	if err := animation.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}
	cfg := animation.Config{Frames: *frames, Height: *height, Width: *width, Groups: *groups}
	sums, err := animation.Run(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref := animation.RunSequential(cfg)
	fmt.Printf("rendered %d frames of %dx%d on %d groups of %d processors\n",
		*frames, *height, *width, *groups, *p / *groups)
	for f, s := range sums {
		ok := "ok"
		if s != ref[f] {
			ok = "MISMATCH"
		}
		fmt.Printf("  frame %2d: checksum %10.0f  [%s]\n", f, s, ok)
	}
}
