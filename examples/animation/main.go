// Command animation runs the inherently-parallel frame-generation example
// of §2.3.4 (Fig 2.4): independent animation frames rendered concurrently
// by data-parallel programs on disjoint processor groups. The task level
// additionally pulls a down-sampled preview of each frame out of the
// distributed image with one strided block read (every k-th row/column,
// one message per owning processor) and prints it as ASCII art.
//
//	go run ./examples/animation -p 4 -groups 2 -frames 8 -preview 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/apps/animation"
	"repro/internal/core"
)

// ramp maps an escape count in [0, MaxIter] to a character.
const ramp = " .:-=+*#%@"

func main() {
	p := flag.Int("p", 4, "virtual processors")
	groups := flag.Int("groups", 2, "independent rendering groups (divides p)")
	frames := flag.Int("frames", 8, "frames to render")
	height := flag.Int("height", 32, "frame height (divisible by p/groups)")
	width := flag.Int("width", 32, "frame width")
	preview := flag.Int("preview", 4, "down-sampling step for previews (every k-th row/column)")
	flag.Parse()

	m := core.New(*p)
	defer m.Close()
	if err := animation.RegisterPrograms(m); err != nil {
		log.Fatal(err)
	}
	cfg := animation.Config{Frames: *frames, Height: *height, Width: *width, Groups: *groups}
	sums, previews, err := animation.RunPreviews(m, cfg, *preview)
	if err != nil {
		log.Fatal(err)
	}
	ref := animation.RunSequential(cfg)
	refPrev := animation.PreviewSequential(cfg, *preview)
	fmt.Printf("rendered %d frames of %dx%d on %d groups of %d processors (preview step %d)\n",
		*frames, *height, *width, *groups, *p / *groups, *preview)
	for f, s := range sums {
		ok := "ok"
		if s != ref[f] {
			ok = "MISMATCH"
		}
		pv := previews[f]
		for i := range pv.Data {
			if pv.Data[i] != refPrev[f].Data[i] {
				ok = "PREVIEW MISMATCH"
			}
		}
		fmt.Printf("  frame %2d: checksum %10.0f  [%s]\n", f, s, ok)
		for i := 0; i < pv.Rows; i++ {
			var row strings.Builder
			row.WriteString("    ")
			for j := 0; j < pv.Cols; j++ {
				c := int(pv.Data[i*pv.Cols+j]) * (len(ramp) - 1) / animation.MaxIter
				row.WriteByte(ramp[c])
			}
			fmt.Println(row.String())
		}
	}
}
