// Command quickstart is the smallest complete program against the public
// API: boot a machine, create a distributed array, manipulate it from the
// task level, make a distributed call to a data-parallel program that
// scales it (communicating a global sum back through a reduction
// variable), and read the results back through the global view.
//
//	go run ./examples/quickstart -p 4 -n 16
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/spmd"
)

// run executes the quickstart workload and returns the scaled values and
// the global sum reported by the data-parallel program.
func run(p, n int) ([]float64, float64, error) {
	m := core.New(p)
	defer m.Close()

	// Register a data-parallel program: each copy doubles its local
	// section and contributes the section's sum to a reduction variable.
	if err := m.Register("quickstart:double_and_sum", func(w *spmd.World, a *dcall.Args) {
		sec := a.Section(0)
		sum := 0.0
		for i := range sec.F {
			sec.F[i] *= 2
			sum += sec.F[i]
		}
		a.Reduction(1)[0] = sum
	}); err != nil {
		return nil, 0, err
	}

	// Create a distributed vector over all processors and fill it from
	// the task level via the global view.
	vec, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
	if err != nil {
		return nil, 0, err
	}
	defer vec.Free()
	if err := vec.Fill(func(idx []int) float64 { return float64(idx[0] + 1) }); err != nil {
		return nil, 0, err
	}

	// Distributed call: semantically a sequential subprogram call.
	total := defval.New[[]float64]()
	add := func(a, b []float64) []float64 { return []float64{a[0] + b[0]} }
	if err := m.Call(m.AllProcs(), "quickstart:double_and_sum",
		vec.Param(), dcall.Reduce(1, add, total)); err != nil {
		return nil, 0, err
	}

	// Read the results back through the global view. Snapshot moves the
	// whole vector with one bulk transfer per owning processor; ReadBlock
	// does the same for an arbitrary sub-rectangle.
	snap, err := vec.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	if n >= 2 {
		half, err := vec.ReadBlock([]int{0}, []int{n / 2})
		if err != nil {
			return nil, 0, err
		}
		for i, v := range half {
			if v != snap[i] {
				return nil, 0, fmt.Errorf("quickstart: block read mismatch at %d: %v vs %v", i, v, snap[i])
			}
		}
	}
	return snap, total.Value()[0], nil
}

func main() {
	p := flag.Int("p", 4, "virtual processors")
	n := flag.Int("n", 16, "vector length (divisible by p)")
	flag.Parse()

	values, sum, err := run(*p, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doubled vector: %v\n", values)
	fmt.Printf("global sum reported by the data-parallel program: %v\n", sum)
	fmt.Printf("expected sum 2*(1+...+%d) = %d\n", *n, *n*(*n+1))
}
