package main

import "testing"

func TestQuickstartRun(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		values, sum, err := run(p, 16)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(values) != 16 {
			t.Fatalf("p=%d: %d values", p, len(values))
		}
		for i, v := range values {
			if v != float64(2*(i+1)) {
				t.Fatalf("p=%d: values[%d] = %v", p, i, v)
			}
		}
		if sum != float64(16*17) {
			t.Fatalf("p=%d: sum = %v, want %d", p, sum, 16*17)
		}
	}
}
