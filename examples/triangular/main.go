// Command triangular runs the triangular-update workload (the k-loop of an
// LU factorization) under block and cyclic row distributions and reports
// the modeled makespan of each: the load-balance payoff of the cyclic
// decomposition layer.
//
//	go run ./examples/triangular -p 8 -n 48 -work 100us
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/apps/triangular"
	"repro/internal/core"
	"repro/internal/grid"
)

func main() {
	p := flag.Int("p", 8, "virtual processors")
	n := flag.Int("n", 48, "matrix order")
	work := flag.Duration("work", 100*time.Microsecond, "modeled cost per active row per step")
	flag.Parse()

	fmt.Printf("triangular update: n=%d, P=%d, %v per active row\n", *n, *p, *work)
	var ref []float64
	for _, c := range []struct {
		name string
		dist grid.Decomp
	}{
		{"block ", grid.BlockDefault()},
		{"cyclic", grid.CyclicDefault()},
	} {
		m := core.New(*p)
		if err := triangular.RegisterPrograms(m); err != nil {
			log.Fatal(err)
		}
		cfg := triangular.Config{N: *n, Dist: c.dist, WorkPerRow: *work}
		res, err := triangular.Run(m, cfg)
		m.Close()
		if err != nil {
			log.Fatal(err)
		}
		if ref == nil {
			ref = triangular.RunSequential(cfg)
		}
		if dev := triangular.MaxDeviation(res.Factors, ref); dev > 1e-12 {
			log.Fatalf("%s factors deviate from sequential by %g", c.name, dev)
		}
		fmt.Printf("  %s  makespan %8.0f row-steps   wall %-12v factors match sequential\n",
			c.name, res.WorkUnits, res.Elapsed.Round(time.Microsecond))
	}
	fmt.Println("cyclic keeps every processor busy as the active region shrinks; block drains from the top.")
}
