// Command tdplab runs the reproduction's experiment suite: one experiment
// per figure of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded results), and exposes the decomposition
// layer for inspection.
//
// Usage:
//
//	tdplab list                     # list experiments
//	tdplab all                      # run everything
//	tdplab E10 E12 ...              # run selected experiments
//	tdplab decomp 10x8 4 block,cyclic   # show a decomposition's layout
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/grid"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage()
		return
	}
	if args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-9s %s\n", e.ID, e.Figure, e.Title)
		}
		return
	}
	if args[0] == "decomp" {
		if len(args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: tdplab decomp <dims e.g. 10x8> <P> <distrib e.g. block,cyclic>")
			os.Exit(2)
		}
		if err := showDecomp(args[1], args[2], args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: %v\n", err)
			os.Exit(2)
		}
		return
	}
	var toRun []experiments.Experiment
	if strings.EqualFold(args[0], "all") {
		toRun = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "tdplab: unknown experiment %q (try `tdplab list`)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	failed := 0
	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s (%s) %s ===\n", e.ID, e.Figure, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`tdplab — experiment harness for the task/data-parallel integration reproduction

usage:
  tdplab list                        list experiments (one per figure of the paper)
  tdplab all                         run the full suite
  tdplab E10 E12 ...                 run selected experiments
  tdplab decomp <dims> <P> <spec>    show a decomposition's grid, storage and
                                     ownership (e.g. tdplab decomp 10x8 4 block,cyclic;
                                     specs: block, block(N), *, cyclic, cyclic(N),
                                     block_cyclic(B), block_cyclic(B,N))`)
}

// showDecomp resolves one decomposition specification and prints the
// processor grid, per-dimension distributions, uniform storage shape,
// per-cell element counts, and (for 1-D and 2-D arrays) the ownership map
// — the paper's Fig 3.5/3.6 tables, generalized to cyclic layouts.
func showDecomp(dimsArg, pArg, distribArg string) error {
	var dims []int
	for _, part := range strings.Split(dimsArg, "x") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return fmt.Errorf("bad dimensions %q", dimsArg)
		}
		dims = append(dims, d)
	}
	p, err := strconv.Atoi(pArg)
	if err != nil || p < 1 {
		return fmt.Errorf("bad processor count %q", pArg)
	}
	specs, err := grid.ParseDistrib(distribArg)
	if err != nil {
		return err
	}
	if len(specs) != len(dims) {
		return fmt.Errorf("%d specifications for %d dimensions", len(specs), len(dims))
	}
	gridDims, err := grid.GridDims(p, specs)
	if err != nil {
		return err
	}
	dists, err := grid.ResolveDists(dims, gridDims, specs)
	if err != nil {
		return err
	}
	storage, err := grid.StorageDims(dims, gridDims, dists)
	if err != nil {
		return err
	}
	fmt.Printf("array %v over %d processors, distribution (%s)\n", dims, p, distribArg)
	fmt.Printf("  processor grid   %v (%d of %d processors hold sections)\n", gridDims, grid.Size(gridDims), p)
	for i := range dims {
		fmt.Printf("  dimension %d      %v: cycle width %d, storage extent %d\n", i, dists[i], dists[i].B, storage[i])
	}
	// Per-cell element counts, dimension by dimension.
	for i := range dims {
		counts := make([]string, gridDims[i])
		for c := range counts {
			counts[c] = strconv.Itoa(dists[i].Count(dims[i], gridDims[i], c))
		}
		fmt.Printf("  dim %d cell counts %s\n", i, strings.Join(counts, " "))
	}
	if len(dims) > 2 || grid.Size(dims) > 4096 {
		return nil
	}
	fmt.Println("  ownership map (slot per element, row-major grid):")
	cell := func(i, d int) int {
		c, _ := dists[d].Owner(i, gridDims[d])
		return c
	}
	if len(dims) == 1 {
		row := make([]string, dims[0])
		for i := range row {
			row[i] = strconv.Itoa(cell(i, 0))
		}
		fmt.Printf("    %s\n", strings.Join(row, " "))
		return nil
	}
	for i := 0; i < dims[0]; i++ {
		row := make([]string, dims[1])
		for j := range row {
			slot := cell(i, 0)*gridDims[1] + cell(j, 1)
			row[j] = strconv.Itoa(slot)
		}
		fmt.Printf("    %s\n", strings.Join(row, " "))
	}
	return nil
}
