// Command tdplab runs the reproduction's experiment suite: one experiment
// per figure of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	tdplab list           # list experiments
//	tdplab all            # run everything
//	tdplab E10 E12 ...    # run selected experiments
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage()
		return
	}
	if args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-9s %s\n", e.ID, e.Figure, e.Title)
		}
		return
	}
	var toRun []experiments.Experiment
	if strings.EqualFold(args[0], "all") {
		toRun = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "tdplab: unknown experiment %q (try `tdplab list`)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	failed := 0
	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s (%s) %s ===\n", e.ID, e.Figure, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`tdplab — experiment harness for the task/data-parallel integration reproduction

usage:
  tdplab list            list experiments (one per figure of the paper)
  tdplab all             run the full suite
  tdplab E10 E12 ...     run selected experiments`)
}
