// Command tdplab runs the reproduction's experiment suite: one experiment
// per figure of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded results), and exposes the decomposition
// layer for inspection.
//
// Usage:
//
//	tdplab list                     # list experiments
//	tdplab all                      # run everything
//	tdplab E10 E12 ...              # run selected experiments
//	tdplab decomp 10x8 4 block,cyclic   # show a decomposition's layout
//	tdplab redist 16x16 4 "*,block" "cyclic,*"   # show a transfer schedule
//	tdplab chaos [seed]             # run a verified workload under a fault plan
//	tdplab heal [seed]              # kill processors mid-run and watch the machine heal
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/climate"
	"repro/internal/arraymgr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/experiments"
	"repro/internal/grid"
)

// partRegister is the symmetric per-part setup for cluster runs: the
// driver and every spawned worker register the same programs and
// install the same call policy, so cross-process spawns find their
// program and recovery traffic behaves identically on both sides.
func partRegister(m *core.Machine) error {
	if err := climate.RegisterPrograms(m); err != nil {
		return err
	}
	m.SetCallPolicy(&arraymgr.CallPolicy{Timeout: 2 * time.Second, Retries: 3})
	return nil
}

func main() {
	// Worker role first: when a cluster driver re-execs this binary, it
	// must boot a worker part and nothing else.
	if cfg, ok := cluster.WorkerConfig(); ok {
		if err := cluster.RunWorker(cfg, partRegister); err != nil {
			fmt.Fprintln(os.Stderr, "tdplab worker:", err)
			os.Exit(1)
		}
		return
	}
	cluster.EnableSelfSpawn()

	args := os.Args[1:]
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage()
		return
	}
	if args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-9s %s\n", e.ID, e.Figure, e.Title)
		}
		return
	}
	if args[0] == "decomp" {
		if len(args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: tdplab decomp <dims e.g. 10x8> <P> <distrib e.g. block,cyclic>")
			os.Exit(2)
		}
		if err := showDecomp(args[1], args[2], args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if args[0] == "redist" {
		if len(args) != 5 {
			fmt.Fprintln(os.Stderr, "usage: tdplab redist <dims e.g. 16x16> <P> <src distrib> <dst distrib>")
			os.Exit(2)
		}
		if err := showRedist(args[1], args[2], args[3], args[4]); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if args[0] == "netrun" {
		if len(args) > 1 {
			fmt.Fprintln(os.Stderr, "usage: tdplab netrun")
			os.Exit(2)
		}
		if err := runNet(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: netrun: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if args[0] == "bench" {
		out := "BENCH_pr10.json"
		if len(args) == 2 {
			out = args[1]
		} else if len(args) > 2 {
			fmt.Fprintln(os.Stderr, "usage: tdplab bench [out.json]")
			os.Exit(2)
		}
		if err := runBench(os.Stdout, out); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if args[0] == "chaos" || args[0] == "heal" {
		name := args[0]
		run := experiments.RunChaosSample
		if name == "heal" {
			run = experiments.RunHealSample
		}
		seed := int64(1)
		if len(args) > 2 {
			fmt.Fprintf(os.Stderr, "usage: tdplab %s [seed]\n", name)
			os.Exit(2)
		}
		if len(args) == 2 {
			s, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tdplab: bad seed %q\n", args[1])
				os.Exit(2)
			}
			seed = s
		}
		if err := run(os.Stdout, seed); err != nil {
			fmt.Fprintf(os.Stderr, "tdplab: %s: %v\n", name, err)
			os.Exit(1)
		}
		return
	}
	var toRun []experiments.Experiment
	if strings.EqualFold(args[0], "all") {
		toRun = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "tdplab: unknown experiment %q (try `tdplab list`)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	failed := 0
	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s (%s) %s ===\n", e.ID, e.Figure, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`tdplab — experiment harness for the task/data-parallel integration reproduction

usage:
  tdplab list                        list experiments (one per figure of the paper)
  tdplab all                         run the full suite
  tdplab E10 E12 ...                 run selected experiments
  tdplab decomp <dims> <P> <spec>    show a decomposition's grid, storage and
                                     ownership (e.g. tdplab decomp 10x8 4 block,cyclic;
                                     specs: block, block(N), *, cyclic, cyclic(N),
                                     block_cyclic(B), block_cyclic(B,N))
  tdplab redist <dims> <P> <src> <dst>
                                     show the owner-pair transfer schedule for
                                     redistributing the whole array between two
                                     distributions (pairs, bytes, messages) without
                                     running it (e.g. tdplab redist 16x16 4 "*,block" "cyclic,*")
  tdplab chaos [seed]                run a mixed block/element/redistribute workload
                                     under a seeded drop+dup+jitter+reorder fault plan,
                                     verify it against a sequential reference, and print
                                     the observed fault and retransmit/timeout counters
  tdplab heal [seed]                 kill processors mid-run under a seeded schedule:
                                     a replicated array heals by buddy promotion, an
                                     unreplicated one by checkpoint/restore; prints the
                                     membership transitions, promotion counters, and a
                                     verified checksum
  tdplab netrun                      run the climate example three ways — sequential
                                     reference, one process, and two real OS processes
                                     over loopback TCP — and verify the fields are
                                     bit-identical
  tdplab bench [out.json]            measure the transport seam (E29: in-process switch
                                     vs the PR-9 star wire) and the fast-wire layers
                                     (E30: star vs mesh vs mesh+batch at 2 and 3 parts,
                                     block transfer + redistribution) and write the
                                     numbers as JSON (default BENCH_pr10.json)`)
}

// runNet executes the coupled climate example on a single-process
// machine and on a machine partitioned across two real OS processes
// over loopback TCP, checking both against the sequential reference and
// against each other bit for bit.
func runNet(w *os.File) error {
	cfg := climate.Config{Rows: 16, Cols: 16, Steps: 8, Alpha: 0.15}
	fmt.Fprintf(w, "climate %dx%d, %d steps, alpha=%g\n", cfg.Rows, cfg.Cols, cfg.Steps, cfg.Alpha)

	want := climate.RunSequential(cfg)

	m := core.New(4)
	if err := partRegister(m); err != nil {
		m.Close()
		return err
	}
	resIn, err := climate.Run(m, cfg)
	m.Close()
	if err != nil {
		return fmt.Errorf("in-process run: %w", err)
	}

	node, err := cluster.StartDriver(cluster.Config{P: 4, NParts: 2}, partRegister)
	if err != nil {
		return err
	}
	defer node.Close()
	if err := node.SpawnWorkers(); err != nil {
		return err
	}
	if err := node.WaitPeers(30 * time.Second); err != nil {
		return err
	}
	resNet, err := climate.Run(node.M, cfg)
	if err != nil {
		return fmt.Errorf("cluster run: %w", err)
	}

	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	same := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	fmt.Fprintf(w, "  %-22s ocean %.9f  atmosphere %.9f\n", "sequential", sum(want.Ocean), sum(want.Atmosphere))
	fmt.Fprintf(w, "  %-22s ocean %.9f  atmosphere %.9f\n", "1 process", sum(resIn.Ocean), sum(resIn.Atmosphere))
	fmt.Fprintf(w, "  %-22s ocean %.9f  atmosphere %.9f\n", "2 processes (TCP)", sum(resNet.Ocean), sum(resNet.Atmosphere))
	if !same(resIn.Ocean, want.Ocean) || !same(resIn.Atmosphere, want.Atmosphere) {
		return fmt.Errorf("in-process run differs from sequential reference")
	}
	if !same(resNet.Ocean, resIn.Ocean) || !same(resNet.Atmosphere, resIn.Atmosphere) {
		return fmt.Errorf("cross-process run differs from in-process run")
	}
	fmt.Fprintln(w, "  fields bit-identical across all three runs")
	return nil
}

// runBench measures the transport seam (E29, pinned to the PR-9 wire)
// and the fast-wire layers (E30: star vs mesh vs mesh+batch) and writes
// the numbers as a JSON artifact for cross-commit comparison.
func runBench(w *os.File, out string) error {
	res29, err := experiments.MeasureE29()
	if err != nil {
		return err
	}
	res30, err := experiments.MeasureE30()
	if err != nil {
		return err
	}
	doc := struct {
		PR        int                   `json:"pr"`
		Generator string                `json:"generator"`
		E29       experiments.E29Result `json:"E29"`
		E30       experiments.E30Result `json:"E30"`
	}{PR: 10, Generator: "tdplab bench", E29: res29, E30: res30}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "E29 (in-proc vs PR-9 star wire): read %d vs %d ns/op, write %d vs %d ns/op\n",
		res29.InProc.ReadNsPerOp, res29.TCP.ReadNsPerOp, res29.InProc.WriteNsPerOp, res29.TCP.WriteNsPerOp)
	for _, sh := range res30.Shapes {
		fmt.Fprintf(w, "E30 %d parts: mesh+batch vs star read %.2fx, write %.2fx\n",
			sh.NParts, sh.ReadSpeedup, sh.WriteSpeedup)
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}

// parseDims parses a "10x8"-style dimension list.
func parseDims(dimsArg string) ([]int, error) {
	var dims []int
	for _, part := range strings.Split(dimsArg, "x") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dimensions %q", dimsArg)
		}
		dims = append(dims, d)
	}
	return dims, nil
}

// offlineMeta builds the array representation the manager would hold for
// one specification, without starting a machine — enough for the
// schedule arithmetic, which never touches storage.
func offlineMeta(seq int, dims []int, p int, distribArg string) (*darray.Meta, []grid.Decomp, error) {
	specs, err := grid.ParseDistrib(distribArg)
	if err != nil {
		return nil, nil, err
	}
	if len(specs) != len(dims) {
		return nil, nil, fmt.Errorf("%d specifications for %d dimensions", len(specs), len(dims))
	}
	gridDims, err := grid.GridDims(p, specs)
	if err != nil {
		return nil, nil, err
	}
	dists, err := grid.ResolveDists(dims, gridDims, specs)
	if err != nil {
		return nil, nil, err
	}
	storage, err := grid.StorageDims(dims, gridDims, dists)
	if err != nil {
		return nil, nil, err
	}
	procs := make([]int, grid.Size(gridDims))
	for i := range procs {
		procs[i] = i
	}
	return &darray.Meta{
		ID: darray.ID{Proc: 0, Seq: seq}, Type: darray.Double,
		Dims: dims, Procs: procs, GridDims: gridDims, Dists: dists,
		LocalDims: storage, Borders: darray.NoBorders(len(dims)), LocalDimsPlus: storage,
		Indexing: grid.RowMajor, GridIndexing: grid.RowMajor,
	}, specs, nil
}

// showRedist computes and prints the owner-pair transfer schedule for
// redistributing a whole array from one distribution to another: which
// processor ships how much to which, and the resulting message budget of
// the direct plane against the gather-then-scatter bounce — all static
// arithmetic, no machine and no data movement.
func showRedist(dimsArg, pArg, srcArg, dstArg string) error {
	dims, err := parseDims(dimsArg)
	if err != nil {
		return err
	}
	p, err := strconv.Atoi(pArg)
	if err != nil || p < 1 {
		return fmt.Errorf("bad processor count %q", pArg)
	}
	src, srcSpecs, err := offlineMeta(1, dims, p, srcArg)
	if err != nil {
		return fmt.Errorf("src: %w", err)
	}
	dst, dstSpecs, err := offlineMeta(2, dims, p, dstArg)
	if err != nil {
		return fmt.Errorf("dst: %w", err)
	}
	zero := make([]int, len(dims))
	sched, err := dst.TransferSchedule(src, zero, zero, dims, nil)
	if err != nil {
		return err
	}
	const elemBytes = 8
	fmt.Printf("redistribute %v: (%s) -> (%s) over %d processors\n",
		dims, grid.DistribString(srcSpecs), grid.DistribString(dstSpecs), p)
	kind := "irregular offset sets"
	if len(sched.Sets) == 0 {
		kind = "regular strided blocks"
	}
	fmt.Printf("  schedule: %d owner pairs (%s)\n", sched.NPairs(), kind)
	fmt.Println("  src -> dst   elements      bytes  transport")
	type edge struct{ srcProc, dstProc, elems int }
	edges := make([]edge, 0, sched.NPairs())
	for _, b := range sched.Blocks {
		elems := grid.RectSize(b.SrcLo, b.SrcHi)
		if sched.Step != nil {
			elems = grid.StridedRectSize(b.SrcLo, b.SrcHi, sched.Step)
		}
		edges = append(edges, edge{b.SrcProc, b.DstProc, elems})
	}
	for _, s := range sched.Sets {
		edges = append(edges, edge{s.SrcProc, s.DstProc, len(s.SrcOffs)})
	}
	totalElems, crossPairs := 0, 0
	srcOwners, dstOwners := map[int]bool{}, map[int]bool{}
	for _, e := range edges {
		transport := "local copy (0 messages)"
		if e.srcProc != e.dstProc {
			transport = "1 message"
			crossPairs++
		}
		srcOwners[e.srcProc] = true
		dstOwners[e.dstProc] = true
		totalElems += e.elems
		fmt.Printf("  %3d -> %-3d %10d %10d  %s\n",
			e.srcProc, e.dstProc, e.elems, e.elems*elemBytes, transport)
	}
	// The direct plane's budget for a caller on processor 0: the
	// coordinator request, one ship order per remote source owner, one
	// ship per cross-processor pair (the pinned formula of
	// arraymgr.TestRedistributeMessageBudget).
	remoteSrc, remoteDst := 0, 0
	for o := range srcOwners {
		if o != 0 {
			remoteSrc++
		}
	}
	for o := range dstOwners {
		if o != 0 {
			remoteDst++
		}
	}
	direct := 1 + remoteSrc + crossPairs
	if len(srcOwners) == 1 && len(dstOwners) == 1 && crossPairs == 0 && srcOwners[0] && dstOwners[0] {
		direct = 0 // wholly local on the caller: the zero-message fast path
	}
	// The bounce pays a read (coordinator + remote source owners) plus a
	// write (coordinator + remote destination owners), each phase free
	// only when wholly local to the caller.
	bounce := 0
	if remoteSrc > 0 || len(srcOwners) > 1 || !srcOwners[0] {
		bounce += 1 + remoteSrc
	}
	if remoteDst > 0 || len(dstOwners) > 1 || !dstOwners[0] {
		bounce += 1 + remoteDst
	}
	fmt.Printf("  total: %d elements, %d bytes, %d source owner(s), %d destination owner(s)\n",
		totalElems, totalElems*elemBytes, len(srcOwners), len(dstOwners))
	fmt.Printf("  messages (caller on processor 0): direct %d, gather-then-scatter bounce %d\n", direct, bounce)
	return nil
}

// showDecomp resolves one decomposition specification and prints the
// processor grid, per-dimension distributions, uniform storage shape,
// per-cell element counts, and (for 1-D and 2-D arrays) the ownership map
// — the paper's Fig 3.5/3.6 tables, generalized to cyclic layouts.
func showDecomp(dimsArg, pArg, distribArg string) error {
	dims, err := parseDims(dimsArg)
	if err != nil {
		return err
	}
	p, err := strconv.Atoi(pArg)
	if err != nil || p < 1 {
		return fmt.Errorf("bad processor count %q", pArg)
	}
	specs, err := grid.ParseDistrib(distribArg)
	if err != nil {
		return err
	}
	if len(specs) != len(dims) {
		return fmt.Errorf("%d specifications for %d dimensions", len(specs), len(dims))
	}
	gridDims, err := grid.GridDims(p, specs)
	if err != nil {
		return err
	}
	dists, err := grid.ResolveDists(dims, gridDims, specs)
	if err != nil {
		return err
	}
	storage, err := grid.StorageDims(dims, gridDims, dists)
	if err != nil {
		return err
	}
	fmt.Printf("array %v over %d processors, distribution (%s)\n", dims, p, grid.DistribString(specs))
	fmt.Printf("  processor grid   %v (%d of %d processors hold sections)\n", gridDims, grid.Size(gridDims), p)
	for i := range dims {
		fmt.Printf("  dimension %d      %v: cycle width %d, storage extent %d\n", i, dists[i], dists[i].B, storage[i])
	}
	// Per-cell element counts, dimension by dimension.
	for i := range dims {
		counts := make([]string, gridDims[i])
		for c := range counts {
			counts[c] = strconv.Itoa(dists[i].Count(dims[i], gridDims[i], c))
		}
		fmt.Printf("  dim %d cell counts %s\n", i, strings.Join(counts, " "))
	}
	if len(dims) > 2 || grid.Size(dims) > 4096 {
		return nil
	}
	fmt.Println("  ownership map (slot per element, row-major grid):")
	cell := func(i, d int) int {
		c, _ := dists[d].Owner(i, gridDims[d])
		return c
	}
	if len(dims) == 1 {
		row := make([]string, dims[0])
		for i := range row {
			row[i] = strconv.Itoa(cell(i, 0))
		}
		fmt.Printf("    %s\n", strings.Join(row, " "))
		return nil
	}
	for i := 0; i < dims[0]; i++ {
		row := make([]string, dims[1])
		for j := range row {
			slot := cell(i, 0)*gridDims[1] + cell(j, 1)
			row[j] = strconv.Itoa(slot)
		}
		fmt.Printf("    %s\n", strings.Join(row, " "))
	}
	return nil
}
