// Benchmark harness: one benchmark per experiment of DESIGN.md's
// per-figure index (E1–E18). Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records representative output and compares the shapes
// against the paper's qualitative claims.
package repro_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps/animation"
	"repro/internal/apps/climate"
	"repro/internal/apps/innerproduct"
	"repro/internal/apps/polymult"
	"repro/internal/apps/reactor"
	"repro/internal/apps/triangular"
	"repro/internal/arraymgr"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/spmd"
	"repro/internal/stencil"
)

// --- E1: coupled climate simulation (Fig 2.1) ---

func BenchmarkE1_ClimateCoupled(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("distributed/P=%d", p), func(b *testing.B) {
			m := core.New(p)
			defer m.Close()
			if err := climate.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			cfg := climate.Config{Rows: 16, Cols: 16, Steps: 10, Alpha: 0.4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := climate.Run(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		cfg := climate.Config{Rows: 16, Cols: 16, Steps: 10, Alpha: 0.4}
		for i := 0; i < b.N; i++ {
			climate.RunSequential(cfg)
		}
	})
}

// --- E2: pipeline throughput (Fig 2.2) ---

func benchPolymultPairs(b *testing.B, pipelined bool) {
	m := core.New(4)
	defer m.Close()
	if err := polymult.RegisterPrograms(m); err != nil {
		b.Fatal(err)
	}
	const n = 32
	const pairs = 4
	rng := rand.New(rand.NewSource(2))
	input := make([][2][]float64, pairs)
	for k := range input {
		f, g := make([]float64, n), make([]float64, n)
		for i := range f {
			f[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
		}
		input[k] = [2][]float64{f, g}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pipelined {
			if _, err := polymult.Run(m, n, input); err != nil {
				b.Fatal(err)
			}
		} else {
			for k := 0; k < pairs; k++ {
				if _, err := polymult.Run(m, n, input[k:k+1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkE2_FourierPipeline(b *testing.B) {
	b.Run("pipelined", func(b *testing.B) { benchPolymultPairs(b, true) })
	b.Run("unpipelined", func(b *testing.B) { benchPolymultPairs(b, false) })
}

// --- E3: reactor discrete-event simulation (Fig 2.3) ---

func BenchmarkE3_ReactorSim(b *testing.B) {
	for _, c := range []struct{ cells, p int }{{16, 2}, {64, 4}} {
		b.Run(fmt.Sprintf("cells=%d/P=%d", c.cells, c.p), func(b *testing.B) {
			m := core.New(c.p)
			defer m.Close()
			if err := reactor.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			cfg := reactor.Config{Cells: c.cells, Dt: 0.25, Horizon: 5, Alpha: 0.25, ValveCut: 0.8}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reactor.Run(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: animation frames (Fig 2.4) ---

func BenchmarkE4_AnimationFrames(b *testing.B) {
	cfg := animation.Config{Frames: 8, Height: 32, Width: 32}
	for _, groups := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			c := cfg
			c.Groups = groups
			m := core.New(4)
			defer m.Close()
			if err := animation.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := animation.Run(m, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		c := cfg
		c.Groups = 1
		for i := 0; i < b.N; i++ {
			animation.RunSequential(c)
		}
	})
}

// --- E5: partition bijection (Fig 3.1) ---

func BenchmarkE5_PartitionDistribute(b *testing.B) {
	dims := []int{64, 64}
	gridDims := []int{4, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				if _, _, err := grid.OwnerSlot([]int{r, c}, dims, gridDims, grid.RowMajor); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// --- E6: distributed-call overhead vs group size (Fig 3.2) ---

func BenchmarkE6_CallControlFlow(b *testing.B) {
	m := core.New(8)
	defer m.Close()
	noop := func(w *spmd.World, a *dcall.Args) {}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("group=%d", g), func(b *testing.B) {
			procs := m.Procs(0, 1, g)
			for i := 0; i < b.N; i++ {
				if err := m.CallFn(procs, noop); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: call data flow (Fig 3.3) ---

func BenchmarkE7_CallDataFlow(b *testing.B) {
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{Dims: []int{1 << 12}})
	if err != nil {
		b.Fatal(err)
	}
	body := func(w *spmd.World, args *dcall.Args) {
		sec := args.Section(0)
		for i := range sec.F {
			sec.F[i] += 1
		}
	}
	b.SetBytes(int64(8 << 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CallFn(m.AllProcs(), body, a.Param()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: concurrent vs serialized distributed calls (Fig 3.4) ---

func benchTwoCalls(b *testing.B, concurrent bool) {
	m := core.New(4)
	defer m.Close()
	groupA, groupB := m.Procs(0, 1, 2), m.Procs(2, 1, 2)
	busy := func(w *spmd.World, a *dcall.Args) {
		if _, err := w.Exchange(1-w.Rank(), 0, []float64{1}); err != nil {
			panic(err)
		}
		s := 0.0
		for i := 0; i < 50000; i++ {
			s += math.Sqrt(float64(i))
		}
		_ = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if concurrent {
			compose.Par(
				func() {
					if err := m.CallFn(groupA, busy); err != nil {
						panic(err)
					}
				},
				func() {
					if err := m.CallFn(groupB, busy); err != nil {
						panic(err)
					}
				},
			)
		} else {
			if err := m.CallFn(groupA, busy); err != nil {
				b.Fatal(err)
			}
			if err := m.CallFn(groupB, busy); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE8_ConcurrentCalls(b *testing.B) {
	b.Run("concurrent", func(b *testing.B) { benchTwoCalls(b, true) })
	b.Run("serialized", func(b *testing.B) { benchTwoCalls(b, false) })
}

// --- E9: 2-D partition arithmetic (Fig 3.5) ---

func BenchmarkE9_Partition2D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		coord, lidx, err := grid.GlobalToLocal([]int{3, 2}, []int{4, 4}, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := grid.LocalToGlobal(coord, lidx, []int{4, 4}, []int{2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: decomposition computation (Fig 3.6) ---

func BenchmarkE10_Decompositions(b *testing.B) {
	specs := [][]grid.Decomp{
		{grid.BlockDefault(), grid.BlockDefault()},
		{grid.BlockOf(2), grid.BlockOf(8)},
		{grid.BlockDefault(), grid.NoDecomp()},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			g, err := grid.GridDims(16, s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := grid.LocalDims([]int{400, 200}, g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E11: bordered sections (Fig 3.7) ---

func BenchmarkE11_Borders(b *testing.B) {
	localDims := []int{32, 32}
	borders := []int{2, 2, 1, 1}
	plus, err := darray.DimsPlus(localDims, borders)
	if err != nil {
		b.Fatal(err)
	}
	src := darray.NewSection(darray.Double, grid.Size(plus))
	dst := darray.NewSection(darray.Double, grid.Size(localDims))
	none := darray.NoBorders(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := darray.CopyInterior(dst, src, localDims, none, borders, grid.RowMajor); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: indexing order (Fig 3.8) ---

func BenchmarkE12_IndexingOrder(b *testing.B) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		b.Run(ix.String(), func(b *testing.B) {
			m := core.New(8)
			defer m.Close()
			a, err := m.NewArray(core.ArraySpec{
				Dims: []int{2, 2}, Procs: []int{0, 2, 4, 6}, Indexing: ix,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Write(float64(i), 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: array-manager op latency (Fig 3.9) ---

func BenchmarkE13_ArrayManagerOps(b *testing.B) {
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{Dims: []int{8}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("read/local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.ReadOn(0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read/remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.ReadOn(0, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write/local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := a.WriteOn(0, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write/remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := a.WriteOn(0, 1, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("create+free/P=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			arr, err := m.NewArray(core.ArraySpec{Dims: []int{32}})
			if err != nil {
				b.Fatal(err)
			}
			if err := arr.Free(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E14: wrapper combining (Fig 3.10) ---

func BenchmarkE14_WrapperCombine(b *testing.B) {
	m := core.New(8)
	defer m.Close()
	procs := m.AllProcs()
	sum := func(x, y []float64) []float64 {
		z := make([]float64, len(x))
		for i := range x {
			z[i] = x[i] + y[i]
		}
		return z
	}
	b.Run("status-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := m.CallFnStatus(procs, func(w *spmd.World, a *dcall.Args) {
				a.SetStatus(0, w.Rank())
			}, dcall.Status())
			if st != 7 {
				b.Fatalf("status %d", st)
			}
		}
	})
	b.Run("reduction-len64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := defval.New[[]float64]()
			if err := m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
				r := a.Reduction(0)
				for k := range r {
					r[k] = 1
				}
			}, dcall.Reduce(64, sum, out)); err != nil {
				b.Fatal(err)
			}
			if out.Value()[0] != 8 {
				b.Fatal("bad reduction")
			}
		}
	})
}

// --- E15: polynomial multiplication (Fig 6.1) ---

func BenchmarkE15_PolyMult(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("pipeline/n=%d", n), func(b *testing.B) {
			m := core.New(4)
			defer m.Close()
			if err := polymult.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(15))
			input := make([][2][]float64, 2)
			for k := range input {
				f, g := make([]float64, n), make([]float64, n)
				for i := range f {
					f[i] = rng.NormFloat64()
					g[i] = rng.NormFloat64()
				}
				input[k] = [2][]float64{f, g}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := polymult.Run(m, n, input); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("schoolbook/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(15))
			f, g := make([]float64, n), make([]float64, n)
			for i := range f {
				f[i] = rng.NormFloat64()
				g[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				polymult.Schoolbook(f, g)
				polymult.Schoolbook(f, g)
			}
		})
	}
}

// --- E16: inner product (§6.1) ---

func BenchmarkE16_InnerProduct(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("distributed/P=%d", p), func(b *testing.B) {
			m := core.New(p)
			defer m.Close()
			if err := innerproduct.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := innerproduct.Run(m, 256); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			innerproduct.RunSequential(1024)
		}
	})
}

// --- E17: border verification (§3.2.1.3) ---

func BenchmarkE17_VerifyBorders(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("realloc/n=%d", n), func(b *testing.B) {
			m := core.New(4)
			defer m.Close()
			a, err := m.NewArray(core.ArraySpec{
				Dims: []int{n}, Borders: arraymgr.ExplicitBorders{1, 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			specs := []arraymgr.BorderSpec{
				arraymgr.ExplicitBorders{2, 2},
				arraymgr.ExplicitBorders{1, 1},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Verify(1, specs[i%2], grid.RowMajor); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("match/n=4096", func(b *testing.B) {
		m := core.New(4)
		defer m.Close()
		a, err := m.NewArray(core.ArraySpec{
			Dims: []int{4096}, Borders: arraymgr.ExplicitBorders{1, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Verify(1, arraymgr.ExplicitBorders{1, 1}, grid.RowMajor); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E18: linear algebra (§D) ---

func BenchmarkE18_LinAlg(b *testing.B) {
	for _, c := range []struct{ n, p int }{{16, 1}, {16, 2}, {16, 4}} {
		b.Run(fmt.Sprintf("lu+qr/n=%d/P=%d", c.n, c.p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lu, qr, ortho, err := experiments.LinalgResiduals(c.n, c.p)
				if err != nil {
					b.Fatal(err)
				}
				if lu > 1e-9 || qr > 1e-9 || ortho > 1e-9 {
					b.Fatal("residuals too large")
				}
			}
		})
	}
}

// --- E19: channel-coupled simulation (§7.2.1 extension) ---

func BenchmarkE19_ChannelCoupling(b *testing.B) {
	cfg := climate.Config{Rows: 16, Cols: 32, Steps: 10, Alpha: 0.4}
	b.Run("task-level", func(b *testing.B) {
		m := core.New(4)
		defer m.Close()
		if err := climate.RegisterPrograms(m); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := climate.Run(m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("channels", func(b *testing.B) {
		m := core.New(4)
		defer m.Close()
		if err := climate.RegisterPrograms(m); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := climate.RunChanneled(m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E20: combine-tree ablation ---

func BenchmarkE20_ReduceTreeVsLinear(b *testing.B) {
	add := func(x, y any) any { return x.(float64) + y.(float64) }
	for _, p := range []int{4, 16} {
		m := core.New(p)
		procs := m.AllProcs()
		want := float64(p*(p-1)) / 2
		b.Run(fmt.Sprintf("tree/P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
					got, err := w.AllReduce(float64(w.Rank()), add)
					if err != nil || got.(float64) != want {
						panic("tree reduce failed")
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("linear/P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
					got, err := w.AllReduceLinear(float64(w.Rank()), add)
					if err != nil || got.(float64) != want {
						panic("linear reduce failed")
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
	}
}

// --- E21: bulk vs per-element data plane ---

// BenchmarkE21_BulkDataPlane compares moving a whole distributed vector
// through the per-element path (one array-manager message per element)
// against the bulk block path (one message per owning processor). The
// ratio is the payoff of the section-level data plane.
func BenchmarkE21_BulkDataPlane(b *testing.B) {
	const n = 4096
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	lo, hi := []int{0}, []int{n}

	b.Run("write/per-element", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if err := a.Write(vals[j], j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("write/bulk", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			if err := a.WriteBlock(lo, hi, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read/per-element", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if _, err := a.Read(j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("read/bulk", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			if _, err := a.ReadBlock(lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The task-level conveniences now ride the bulk path.
	b.Run("fill", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			if _, err := a.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- overlap-area stencil (§3.2.1.3): borders as communication buffers ---

func BenchmarkStencil_OverlapAreas(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("distributed/P=%d", p), func(b *testing.B) {
			m := core.New(p)
			defer m.Close()
			if err := stencil.RegisterPrograms(m); err != nil {
				b.Fatal(err)
			}
			init := func(i, j int) float64 { return float64(i * j) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stencil.Run(m, 16, 16, 10, 1.0, init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		init := func(i, j int) float64 { return float64(i * j) }
		for i := 0; i < b.N; i++ {
			stencil.RunSequential(16, 16, 10, 1.0, init)
		}
	})
}

// --- supporting micro-benchmarks: the FFT substrate itself ---

func BenchmarkFFT_SeqVsDirect(b *testing.B) {
	const n = 256
	data := make([]float64, 2*n)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	b.Run("seq-fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fft.SeqFFT(data, fft.Forward); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-dft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.DFTDirect(data, fft.Forward)
		}
	})
}

// --- E22: the concurrent, allocation-free data plane ---

// BenchmarkE22_CoordinatorScatterGather compares the concurrent
// scatter/gather block-read coordinator against the serial
// owner-at-a-time ablation across machine sizes. The serial coordinator
// pays one full round trip per owner in sequence; the concurrent one pays
// one round trip to the slowest owner. lat=0 runs on the raw in-process
// router (single-core containers show near-parity there — both paths do
// the same total work); lat=20µs models a multicomputer interconnect hop,
// the regime the paper's runtime actually lives in, where the serial
// chain accumulates 2*P hops and the scatter hides all but one round
// trip.
func BenchmarkE22_CoordinatorScatterGather(b *testing.B) {
	const perOwner = 256
	for _, p := range []int{4, 16, 64} {
		for _, lat := range []time.Duration{0, 20 * time.Microsecond} {
			n := perOwner * p
			m := core.New(p)
			a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
				b.Fatal(err)
			}
			m.VM.Router().SetLatency(lat)
			lo, hi := []int{0}, []int{n}
			b.Run(fmt.Sprintf("concurrent/P=%d/lat=%v", p, lat), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				for i := 0; i < b.N; i++ {
					if _, err := a.ReadBlock(lo, hi); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("serial/P=%d/lat=%v", p, lat), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				for i := 0; i < b.N; i++ {
					if _, st := m.AM.ReadBlockSerial(0, a.ID(), lo, hi); st != arraymgr.StatusOK {
						b.Fatal(st)
					}
				}
			})
			m.Close()
		}
	}
}

// BenchmarkE22_LocalFastPath measures the zero-copy local fast path: a
// wholly-local rectangle read into a caller-supplied buffer (and written
// from one) against the same rectangle through the message-based
// coordinator. Run with -benchmem: the fast path must report 0 allocs/op.
func BenchmarkE22_LocalFastPath(b *testing.B) {
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{
		Dims:    []int{64, 64},
		Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)},
	})
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := []int{0, 0}, []int{32, 32} // processor 0's local section
	buf := make([]float64, 32*32)
	if err := a.WriteBlock(lo, hi, buf); err != nil {
		b.Fatal(err)
	}
	bytes := int64(8 * len(buf))
	b.Run("read-into/local", func(b *testing.B) {
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := a.ReadBlockInto(lo, hi, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write/local", func(b *testing.B) {
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := a.WriteBlock(lo, hi, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read/allocating", func(b *testing.B) {
		b.SetBytes(bytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.ReadBlock(lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E23: the indexed gather/scatter plane ---

// BenchmarkE23_IndexedGatherScatter compares moving k scattered elements
// through the per-element path (one array-manager round trip per element)
// against the indexed gather/scatter plane (one concurrent request per
// owning processor). lat=0 runs on the raw in-process router; lat=20µs
// models a multicomputer interconnect hop, where the per-element loop
// accumulates 2k hops and the batched path pays one overlapped round
// trip. The ratio is the payoff of batching the paper's scattered-index
// task-level access pattern (§4.2.3/§4.2.4).
func BenchmarkE23_IndexedGatherScatter(b *testing.B) {
	const perOwner = 64
	for _, p := range []int{4, 16, 64} {
		for _, lat := range []time.Duration{0, 20 * time.Microsecond} {
			n := perOwner * p
			m := core.New(p)
			a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
				b.Fatal(err)
			}
			m.VM.Router().SetLatency(lat)
			rng := rand.New(rand.NewSource(23))
			for _, k := range []int{64, 1024} {
				indices := make([][]int, k)
				for i := range indices {
					indices[i] = []int{rng.Intn(n)}
				}
				vals := make([]float64, k)
				dst := make([]float64, k)
				for i := range vals {
					vals[i] = float64(i)
				}
				tag := fmt.Sprintf("P=%d/lat=%v/k=%d", p, lat, k)
				b.Run("gather/"+tag, func(b *testing.B) {
					b.SetBytes(int64(8 * k))
					for i := 0; i < b.N; i++ {
						if err := a.GatherElementsInto(indices, dst); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run("scatter/"+tag, func(b *testing.B) {
					b.SetBytes(int64(8 * k))
					for i := 0; i < b.N; i++ {
						if err := a.ScatterElements(indices, vals); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run("per-element/"+tag, func(b *testing.B) {
					b.SetBytes(int64(8 * k))
					for i := 0; i < b.N; i++ {
						for _, idx := range indices {
							if _, err := a.Read(idx...); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
			}
			m.Close()
		}
	}
}

// --- E24: strided restriction vs indexed gather ---

// BenchmarkE24_StridedRestriction is the multigrid-restriction /
// down-sampling experiment: fetching every k-th row of a block-row
// distributed field through the strided bulk plane
// (ReadBlockStridedInto: bounds + step per owner) against the equivalent
// GatherElements call (an index vector with one tuple per sampled
// element). Both paths cost one request/reply pair per owning processor
// (pinned by arraymgr.TestStridedMessageBudget), so under a modeled
// interconnect hop (lat=20µs, the E22/E23 regime) they pay the same
// overlapped round trip — the ratio isolates what the index vector costs:
// per-element ownership resolution, per-owner offset lists, and
// per-element payload instead of three small vectors.
func BenchmarkE24_StridedRestriction(b *testing.B) {
	const rowsPerOwner = 32
	const cols = 1024
	for _, p := range []int{4, 16, 64} {
		for _, lat := range []time.Duration{0, 20 * time.Microsecond} {
			rows := rowsPerOwner * p
			m := core.New(p)
			a, err := m.NewArray(core.ArraySpec{
				Dims:    []int{rows, cols},
				Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Fill(func(idx []int) float64 { return float64(idx[0]*cols + idx[1]) }); err != nil {
				b.Fatal(err)
			}
			m.VM.Router().SetLatency(lat)
			for _, k := range []int{2, 4, 8} {
				srows := (rows + k - 1) / k
				dst := make([]float64, srows*cols)
				indices := make([][]int, 0, srows*cols)
				for i := 0; i < rows; i += k {
					for j := 0; j < cols; j++ {
						indices = append(indices, []int{i, j})
					}
				}
				lo, hi, step := []int{0, 0}, []int{rows, cols}, []int{k, 1}
				tag := fmt.Sprintf("P=%d/lat=%v/k=%d", p, lat, k)
				b.Run("strided/"+tag, func(b *testing.B) {
					b.SetBytes(int64(8 * len(dst)))
					for i := 0; i < b.N; i++ {
						if err := a.ReadBlockStridedInto(lo, hi, step, dst); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run("gather/"+tag, func(b *testing.B) {
					b.SetBytes(int64(8 * len(dst)))
					for i := 0; i < b.N; i++ {
						if err := a.GatherElementsInto(indices, dst); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			m.Close()
		}
	}
}

// --- E25: cyclic vs block decomposition on a triangular update ---

// BenchmarkE25_TriangularUpdate measures the load-balance payoff of the
// cyclic decomposition layer on the LU-style triangular update: each
// variant factors the same matrix with a modeled per-active-row cost, so
// the benchmark time tracks the busiest copy (sleeps overlap across copies
// the way compute overlaps across dedicated processors). Cyclic rows keep
// the shrinking active region spread over every processor; block rows
// drain from the top and serialize on the trailing block's owner.
func BenchmarkE25_TriangularUpdate(b *testing.B) {
	for _, layout := range []struct {
		name string
		dist grid.Decomp
	}{
		{"block", grid.BlockDefault()},
		{"cyclic", grid.CyclicDefault()},
	} {
		for _, c := range []struct{ n, p int }{{32, 4}, {32, 16}} {
			b.Run(fmt.Sprintf("%s/n=%d/P=%d", layout.name, c.n, c.p), func(b *testing.B) {
				m := core.New(c.p)
				defer m.Close()
				if err := triangular.RegisterPrograms(m); err != nil {
					b.Fatal(err)
				}
				m.VM.Router().SetLatency(20 * time.Microsecond)
				cfg := triangular.Config{N: c.n, Dist: layout.dist, WorkPerRow: time.Millisecond}
				want := triangular.RunSequential(cfg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := triangular.Run(m, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if dev := triangular.MaxDeviation(res.Factors, want); dev > 1e-12 {
						b.Fatalf("factors deviate by %g", dev)
					}
				}
			})
		}
	}
}

// --- E26: direct redistribution vs gather-then-scatter panel handoff ---

// BenchmarkE26_PanelHandoff measures the block→cyclic panel handoff of an
// LU-style pipeline through the direct owner↔owner redistribution plane
// against the gather-then-scatter bounce through the calling processor.
// Under a modeled 20µs interconnect hop the direct path ships each remote
// panel in one hop instead of two and sends P-1 fewer messages total.
func BenchmarkE26_PanelHandoff(b *testing.B) {
	for _, mode := range []struct {
		name   string
		bounce bool
	}{
		{"direct", false},
		{"bounce", true},
	} {
		for _, c := range []struct{ n, p int }{{64, 16}, {128, 64}} {
			b.Run(fmt.Sprintf("%s/n=%d/P=%d", mode.name, c.n, c.p), func(b *testing.B) {
				m := core.New(c.p)
				defer m.Close()
				if err := triangular.RegisterPrograms(m); err != nil {
					b.Fatal(err)
				}
				m.VM.Router().SetLatency(20 * time.Microsecond)
				cfg := triangular.PanelConfig{N: c.n, Bounce: mode.bounce}
				want := triangular.RunSequential(triangular.Config{N: c.n})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := triangular.RunPanelHandoff(m, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if dev := triangular.MaxDeviation(res.Factors, want); dev > 1e-12 {
						b.Fatalf("factors deviate by %g", dev)
					}
				}
			})
		}
	}
}

// BenchmarkE22_HaloExchange measures the shared border-exchange primitive
// across group sizes: one distributed call performing b.N face exchanges
// on a block-row field with one-cell borders (the climate/stencil shape).
func BenchmarkE22_HaloExchange(b *testing.B) {
	const cols = 64
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			const l = 8 // interior rows per copy
			m := core.New(p)
			defer m.Close()
			procs := m.AllProcs()
			field, err := m.NewArray(core.ArraySpec{
				Dims:    []int{l * p, cols},
				Procs:   procs,
				Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
				Borders: arraymgr.ExplicitBorders{1, 1, 0, 0},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
				halo := spmd.Halo{
					Section:      a.Section(0),
					LocalDims:    []int{l, cols},
					Borders:      []int{1, 1, 0, 0},
					GridDims:     []int{p, 1},
					Indexing:     grid.RowMajor,
					GridIndexing: grid.RowMajor,
				}
				for i := 0; i < b.N; i++ {
					if err := w.HaloExchange(halo); err != nil {
						panic(err)
					}
				}
			}, field.Param()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE28_ReplicatedWrite measures the healthy-path cost of buddy
// replication: whole-array bulk writes with k=0 (plain) vs k=1 (every
// write-side owner mirrors its piece to one buddy). Reads are priced in
// E22/E21 and are unchanged by replication.
func BenchmarkE28_ReplicatedWrite(b *testing.B) {
	const n = 4096
	for _, k := range []int{0, 1} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("k=%d/P=%d", k, p), func(b *testing.B) {
				m := core.New(p)
				defer m.Close()
				a, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Replicas: k})
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = float64(i)
				}
				b.SetBytes(8 * n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := a.WriteBlock([]int{0}, []int{n}, vals); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
