package fft

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/spmd"
)

func runGroup(t *testing.T, p int, body func(w *spmd.World) error) {
	t.Helper()
	r := msg.NewRouter(p)
	defer r.Close()
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = body(spmd.NewWorld(r, procs, i, 1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestLog2(t *testing.T) {
	for _, c := range []struct {
		n    int
		want int
		ok   bool
	}{{1, 0, true}, {2, 1, true}, {8, 3, true}, {1024, 10, true}, {0, 0, false}, {3, 0, false}, {-4, 0, false}, {12, 0, false}} {
		got, ok := Log2(c.n)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("Log2(%d) = %d,%v", c.n, got, ok)
		}
	}
}

func TestBitReverse(t *testing.T) {
	// The paper's rho: rightmost bits reversed, right-justified.
	cases := []struct{ bits, x, want int }{
		{3, 0b001, 0b100}, {3, 0b110, 0b011}, {3, 0b111, 0b111},
		{4, 0b0001, 0b1000}, {1, 1, 1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := BitReverse(c.bits, c.x); got != c.want {
			t.Fatalf("BitReverse(%d,%b) = %b, want %b", c.bits, c.x, got, c.want)
		}
	}
}

// Property: rho is an involution on [0, 2^bits).
func TestQuickBitReverseInvolution(t *testing.T) {
	f := func(bitsRaw, xRaw uint8) bool {
		bits := int(bitsRaw%16) + 1
		x := int(xRaw) % (1 << bits)
		return BitReverse(bits, BitReverse(bits, x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeRoots(t *testing.T) {
	const n = 8
	eps := make([]float64, 2*n)
	if err := ComputeRoots(n, eps); err != nil {
		t.Fatal(err)
	}
	// eps[0] = 1; eps[n/4] = i; eps[n/2] = -1.
	if math.Abs(eps[0]-1) > 1e-15 || math.Abs(eps[1]) > 1e-15 {
		t.Fatalf("root 0 = (%v,%v)", eps[0], eps[1])
	}
	if math.Abs(eps[2*2]) > 1e-15 || math.Abs(eps[2*2+1]-1) > 1e-15 {
		t.Fatalf("root n/4 = (%v,%v)", eps[4], eps[5])
	}
	if math.Abs(eps[2*4]+1) > 1e-15 || math.Abs(eps[2*4+1]) > 1e-12 {
		t.Fatalf("root n/2 = (%v,%v)", eps[8], eps[9])
	}
	if err := ComputeRoots(3, eps); err == nil {
		t.Fatal("non-power-of-two size must fail")
	}
	if err := ComputeRoots(16, eps); err == nil {
		t.Fatal("short buffer must fail")
	}
}

func randComplex(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	d := make([]float64, 2*n)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return d
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSeqFFTMatchesDirect(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32} {
		for _, flag := range []Flag{Inverse, Forward} {
			in := randComplex(n, int64(n)+int64(flag))
			want := DFTDirect(in, flag)
			got, err := SeqFFT(in, flag)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxDiff(got, want); d > 1e-9 {
				t.Fatalf("n=%d %v: max diff %v", n, flag, d)
			}
		}
	}
}

// scatterComplex splits interleaved complex data into p blocks.
func scatterComplex(full []float64, p int) [][]float64 {
	l := len(full) / p
	out := make([][]float64, p)
	for i := 0; i < p; i++ {
		out[i] = append([]float64(nil), full[i*l:(i+1)*l]...)
	}
	return out
}

// TransformReverse on bit-reverse-permuted input must equal the direct DFT
// of the natural-order input, for all group sizes and both directions.
func TestTransformReverseMatchesDirect(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		ln, _ := Log2(n)
		for _, p := range []int{1, 2, 4} {
			if n < p {
				continue
			}
			for _, flag := range []Flag{Inverse, Forward} {
				natural := randComplex(n, int64(42*n+p))
				want := DFTDirect(natural, flag)
				// Permute input into bit-reversed order.
				rev := make([]float64, 2*n)
				for i := 0; i < n; i++ {
					r := BitReverse(ln, i)
					rev[2*i], rev[2*i+1] = natural[2*r], natural[2*r+1]
				}
				blocks := scatterComplex(rev, p)
				eps := make([]float64, 2*n)
				if err := ComputeRoots(n, eps); err != nil {
					t.Fatal(err)
				}
				runGroup(t, p, func(w *spmd.World) error {
					return TransformReverse(w, blocks[w.Rank()], n, flag, eps)
				})
				var got []float64
				for i := 0; i < p; i++ {
					got = append(got, blocks[i]...)
				}
				if d := maxDiff(got, want); d > 1e-9 {
					t.Fatalf("n=%d p=%d %v: max diff %v", n, p, flag, d)
				}
			}
		}
	}
}

// TransformNatural produces the DFT in bit-reversed order.
func TestTransformNaturalMatchesDirect(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		ln, _ := Log2(n)
		for _, p := range []int{1, 2, 4} {
			if n < p {
				continue
			}
			for _, flag := range []Flag{Inverse, Forward} {
				natural := randComplex(n, int64(7*n+p))
				direct := DFTDirect(natural, flag)
				// Expected output: direct DFT permuted to bit-reversed
				// positions: out[i] = direct[rev(i)].
				want := make([]float64, 2*n)
				for i := 0; i < n; i++ {
					r := BitReverse(ln, i)
					want[2*i], want[2*i+1] = direct[2*r], direct[2*r+1]
				}
				blocks := scatterComplex(natural, p)
				eps := make([]float64, 2*n)
				if err := ComputeRoots(n, eps); err != nil {
					t.Fatal(err)
				}
				runGroup(t, p, func(w *spmd.World) error {
					return TransformNatural(w, blocks[w.Rank()], n, flag, eps)
				})
				var got []float64
				for i := 0; i < p; i++ {
					got = append(got, blocks[i]...)
				}
				if d := maxDiff(got, want); d > 1e-9 {
					t.Fatalf("n=%d p=%d %v: max diff %v", n, p, flag, d)
				}
			}
		}
	}
}

// The §6.2 pipeline round trip: inverse fft_reverse (bit-reversed in,
// natural out) followed by forward fft_natural (natural in, bit-reversed
// out) recovers the input exactly (up to rounding), including the 1/n
// scaling of the forward transform.
func TestRoundTripReverseThenNatural(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		for _, p := range []int{1, 2, 4} {
			orig := randComplex(n, int64(n*p))
			blocks := scatterComplex(orig, p)
			eps := make([]float64, 2*n)
			if err := ComputeRoots(n, eps); err != nil {
				t.Fatal(err)
			}
			runGroup(t, p, func(w *spmd.World) error {
				if err := TransformReverse(w, blocks[w.Rank()], n, Inverse, eps); err != nil {
					return err
				}
				return TransformNatural(w, blocks[w.Rank()], n, Forward, eps)
			})
			var got []float64
			for i := 0; i < p; i++ {
				got = append(got, blocks[i]...)
			}
			if d := maxDiff(got, orig); d > 1e-9 {
				t.Fatalf("n=%d p=%d: round-trip max diff %v", n, p, d)
			}
		}
	}
}

// Property (testing/quick): polynomial multiplication via the FFT pipeline
// equals schoolbook convolution — the core correctness property of the
// §6.2 example.
func TestQuickConvolutionTheorem(t *testing.T) {
	f := func(aRaw, bRaw [4]int8) bool {
		const n = 4  // polynomial degree bound
		const nn = 8 // transform size 2n
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(aRaw[i] % 8)
			b[i] = float64(bRaw[i] % 8)
		}
		// Schoolbook convolution.
		want := make([]float64, 2*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want[i+j] += a[i] * b[j]
			}
		}
		// FFT path (sequential transforms; the distributed path is
		// validated against these elsewhere).
		fa := make([]float64, 2*nn)
		fb := make([]float64, 2*nn)
		for i := 0; i < n; i++ {
			fa[2*i] = a[i]
			fb[2*i] = b[i]
		}
		va, err := SeqFFT(fa, Inverse)
		if err != nil {
			return false
		}
		vb, err := SeqFFT(fb, Inverse)
		if err != nil {
			return false
		}
		if err := MultiplyPointwise(va, vb); err != nil {
			return false
		}
		coef, err := SeqFFT(va, Forward)
		if err != nil {
			return false
		}
		for i := 0; i < 2*n; i++ {
			if math.Abs(coef[2*i]-want[i]) > 1e-9 || math.Abs(coef[2*i+1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyPointwise(t *testing.T) {
	// (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i.
	dst := []float64{1, 2}
	src := []float64{3, 4}
	if err := MultiplyPointwise(dst, src); err != nil {
		t.Fatal(err)
	}
	if dst[0] != -5 || dst[1] != 10 {
		t.Fatalf("product = %v", dst)
	}
	if err := MultiplyPointwise([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestDistributedErrors(t *testing.T) {
	runGroup(t, 2, func(w *spmd.World) error {
		eps := make([]float64, 32)
		if err := TransformReverse(w, make([]float64, 16), 12, Inverse, eps); err == nil {
			return fmt.Errorf("non-power-of-two n must fail")
		}
		if err := TransformReverse(w, make([]float64, 2), 16, Inverse, eps); err == nil {
			return fmt.Errorf("short local section must fail")
		}
		if err := TransformReverse(w, make([]float64, 16), 16, Inverse, make([]float64, 4)); err == nil {
			return fmt.Errorf("short roots table must fail")
		}
		if err := TransformNatural(w, make([]float64, 2), 1, Inverse, eps); err == nil {
			return fmt.Errorf("n < p must fail")
		}
		return nil
	})
}

func TestSeqFFTErrors(t *testing.T) {
	if _, err := SeqFFT(make([]float64, 6), Inverse); err == nil {
		t.Fatal("non-power-of-two SeqFFT must fail")
	}
}

func TestFlagString(t *testing.T) {
	if Inverse.String() != "INVERSE" || Forward.String() != "FORWARD" {
		t.Fatal("Flag.String broken")
	}
}
