// Package fft implements the data-parallel fast-Fourier-transform programs
// of §6.2 of the paper: compute_roots, the bit-reversal map rho, and the
// two in-place distributed transforms fft_reverse (input in bit-reversed
// order, output in natural order) and fft_natural (input in natural order,
// output in bit-reversed order), plus the elementwise complex
// multiplication used by the polynomial-multiplication pipeline.
//
// Complex data is represented as interleaved pairs of float64 ("each
// complex number represented by two doubles"), exactly as the thesis passes
// complex arrays between PCN and C. A length-n complex transform therefore
// operates on 2n doubles; distributed over p processors, each local section
// holds 2n/p doubles.
//
// Following the paper's conventions (§6.2.1):
//
//   - the INVERSE transform evaluates at the roots of unity,
//     out[j] = Σ_k in[k] e^{+2πi jk/n}, with no scaling;
//   - the FORWARD transform interpolates,
//     out[j] = (1/n) Σ_k in[k] e^{-2πi jk/n}.
//
// The distributed algorithm is binary exchange: with block distribution,
// butterfly stages with half-span smaller than the local length are purely
// local; each remaining stage pairs each processor with the one differing
// in a single bit of its block index, and the partners exchange whole local
// sections.
package fft

import (
	"fmt"
	"math"

	"repro/internal/spmd"
)

// Flag selects the transform direction, using the paper's names.
type Flag int

const (
	// Inverse evaluates at the n-th roots of unity (positive exponent, no
	// scaling) — the first pipeline stage of §6.2.
	Inverse Flag = iota
	// Forward interpolates (negative exponent, scaled by 1/n) — the third
	// pipeline stage.
	Forward
)

func (f Flag) String() string {
	if f == Inverse {
		return "INVERSE"
	}
	return "FORWARD"
}

// Log2 returns log2(n) when n is a positive power of two.
func Log2(n int) (int, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	l := 0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	return l, true
}

// BitReverse is the paper's rho_proc: the rightmost bits of x reversed,
// right-justified.
func BitReverse(bits, x int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// ComputeRoots fills eps (length 2n doubles) with the n n-th complex roots
// of unity: eps[2j], eps[2j+1] = cos(2πj/n), sin(2πj/n), i.e. the j-th
// power of the primitive root e^{2πi/n} (the paper's compute_roots).
func ComputeRoots(n int, eps []float64) error {
	if _, ok := Log2(n); !ok {
		return fmt.Errorf("fft: size %d is not a power of two", n)
	}
	if len(eps) < 2*n {
		return fmt.Errorf("fft: roots buffer %d < %d", len(eps), 2*n)
	}
	for j := 0; j < n; j++ {
		theta := 2 * math.Pi * float64(j) / float64(n)
		eps[2*j] = math.Cos(theta)
		eps[2*j+1] = math.Sin(theta)
	}
	return nil
}

// root returns the eps-table root for exponent t under the flag's sign:
// e^{+2πi t/n} for Inverse, e^{-2πi t/n} for Forward.
func root(eps []float64, n, t int, flag Flag) (re, im float64) {
	t %= n
	if flag == Forward && t != 0 {
		t = n - t
	}
	return eps[2*t], eps[2*t+1]
}

// checkDistributed validates the distributed-transform inputs and returns
// (logN, localComplexLen).
func checkDistributed(w *spmd.World, local []float64, n int, eps []float64) (int, int, error) {
	ln, ok := Log2(n)
	if !ok {
		return 0, 0, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	p := w.Size()
	if _, ok := Log2(p); !ok {
		return 0, 0, fmt.Errorf("fft: group size %d is not a power of two", p)
	}
	if n < p {
		return 0, 0, fmt.Errorf("fft: size %d smaller than group %d", n, p)
	}
	l := n / p
	if len(local) < 2*l {
		return 0, 0, fmt.Errorf("fft: local section %d doubles < %d", len(local), 2*l)
	}
	if len(eps) < 2*n {
		return 0, 0, fmt.Errorf("fft: roots table %d doubles < %d", len(eps), 2*n)
	}
	return ln, l, nil
}

// TransformReverse is the paper's fft_reverse: an in-place transform whose
// input (in local, block-distributed, interleaved complex) is in
// bit-reversed order and whose output is in natural order. A
// decimation-in-time iteration: local butterfly stages first, then one
// whole-section exchange per cross-processor stage.
func TransformReverse(w *spmd.World, local []float64, n int, flag Flag, eps []float64) error {
	ln, l, err := checkDistributed(w, local, n, eps)
	if err != nil {
		return err
	}
	base := w.Rank() * l // global complex index of local element 0
	for s := 1; s <= ln; s++ {
		m := 1 << s
		h := m / 2
		if h < l {
			ditLocalStage(local, l, base, n, h, flag, eps)
		} else {
			if err := exchangeStage(w, local, l, base, n, h, flag, eps, true); err != nil {
				return err
			}
		}
	}
	if flag == Forward {
		scale := 1 / float64(n)
		for i := range local[:2*l] {
			local[i] *= scale
		}
	}
	return nil
}

// TransformNatural is the paper's fft_natural: input in natural order,
// output in bit-reversed order. A decimation-in-frequency iteration:
// cross-processor stages first (large spans), then local stages.
func TransformNatural(w *spmd.World, local []float64, n int, flag Flag, eps []float64) error {
	ln, l, err := checkDistributed(w, local, n, eps)
	if err != nil {
		return err
	}
	base := w.Rank() * l
	for s := ln; s >= 1; s-- {
		m := 1 << s
		h := m / 2
		if h < l {
			difLocalStage(local, l, base, n, h, flag, eps)
		} else {
			if err := exchangeStage(w, local, l, base, n, h, flag, eps, false); err != nil {
				return err
			}
		}
	}
	if flag == Forward {
		scale := 1 / float64(n)
		for i := range local[:2*l] {
			local[i] *= scale
		}
	}
	return nil
}

// ditLocalStage performs the decimation-in-time butterflies of half-span h
// entirely within the local section (h < l).
func ditLocalStage(local []float64, l, base, n, h int, flag Flag, eps []float64) {
	m := 2 * h
	stride := n / m // twiddle exponent step per position within the half-group
	for j := 0; j < l; j++ {
		g := base + j
		if g%m >= h {
			continue // upper element; handled with its lower partner
		}
		wr, wi := root(eps, n, (g%h)*stride, flag)
		lo, hi := 2*j, 2*(j+h)
		ur, ui := local[lo], local[lo+1]
		xr, xi := local[hi], local[hi+1]
		vr := wr*xr - wi*xi
		vi := wr*xi + wi*xr
		local[lo], local[lo+1] = ur+vr, ui+vi
		local[hi], local[hi+1] = ur-vr, ui-vi
	}
}

// difLocalStage performs the decimation-in-frequency butterflies of
// half-span h within the local section (h < l).
func difLocalStage(local []float64, l, base, n, h int, flag Flag, eps []float64) {
	m := 2 * h
	stride := n / m
	for j := 0; j < l; j++ {
		g := base + j
		if g%m >= h {
			continue
		}
		wr, wi := root(eps, n, (g%h)*stride, flag)
		lo, hi := 2*j, 2*(j+h)
		ur, ui := local[lo], local[lo+1]
		xr, xi := local[hi], local[hi+1]
		dr, di := ur-xr, ui-xi
		local[lo], local[lo+1] = ur+xr, ui+xi
		local[hi], local[hi+1] = wr*dr-wi*di, wr*di+wi*dr
	}
}

// exchangeStage performs one cross-processor butterfly stage of half-span
// h >= l: each processor exchanges its whole local section with the
// partner differing in bit h/l of the block index, then computes its
// retained half of each butterfly. dit selects decimation-in-time
// (fft_reverse) vs decimation-in-frequency (fft_natural) arithmetic.
func exchangeStage(w *spmd.World, local []float64, l, base, n, h int, flag Flag, eps []float64, dit bool) error {
	m := 2 * h
	stride := n / m
	blockBit := h / l
	partner := w.Rank() ^ blockBit
	lower := w.Rank()&blockBit == 0
	theirs, err := w.Exchange(partner, 0, local[:2*l])
	if err != nil {
		return err
	}
	for j := 0; j < l; j++ {
		g := base + j
		wr, wi := root(eps, n, (g%h)*stride, flag)
		re, im := 2*j, 2*j+1
		if dit {
			if lower {
				// mine = u at i; theirs = x at i+h: result u + w*x.
				vr := wr*theirs[re] - wi*theirs[im]
				vi := wr*theirs[im] + wi*theirs[re]
				local[re] += vr
				local[im] += vi
			} else {
				// mine = x at i+h; theirs = u at i: result u - w*x.
				vr := wr*local[re] - wi*local[im]
				vi := wr*local[im] + wi*local[re]
				local[re] = theirs[re] - vr
				local[im] = theirs[im] - vi
			}
		} else {
			if lower {
				// result at i: u + x.
				local[re] += theirs[re]
				local[im] += theirs[im]
			} else {
				// result at i+h: (u - x) * w with u = theirs, x = mine.
				dr := theirs[re] - local[re]
				di := theirs[im] - local[im]
				local[re] = wr*dr - wi*di
				local[im] = wr*di + wi*dr
			}
		}
	}
	return nil
}

// DFTDirect is the O(n²) reference transform on a dense interleaved
// complex slice (natural order in, natural order out), used by tests and
// as the sequential baseline in benchmarks.
func DFTDirect(data []float64, flag Flag) []float64 {
	n := len(data) / 2
	out := make([]float64, 2*n)
	sign := 1.0
	if flag == Forward {
		sign = -1
	}
	for j := 0; j < n; j++ {
		var sr, si float64
		for k := 0; k < n; k++ {
			theta := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			c, s := math.Cos(theta), math.Sin(theta)
			sr += data[2*k]*c - data[2*k+1]*s
			si += data[2*k]*s + data[2*k+1]*c
		}
		out[2*j], out[2*j+1] = sr, si
	}
	if flag == Forward {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

// SeqFFT is an O(n log n) sequential transform (natural in, natural out)
// used as the single-processor baseline in benchmarks.
func SeqFFT(data []float64, flag Flag) ([]float64, error) {
	n := len(data) / 2
	ln, ok := Log2(n)
	if !ok {
		return nil, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	eps := make([]float64, 2*n)
	if err := ComputeRoots(n, eps); err != nil {
		return nil, err
	}
	// Bit-reverse copy, then an in-place DIT sweep.
	out := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		r := BitReverse(ln, i)
		out[2*i], out[2*i+1] = data[2*r], data[2*r+1]
	}
	for s := 1; s <= ln; s++ {
		h := 1 << (s - 1)
		ditLocalStage(out, n, 0, n, h, flag, eps)
	}
	if flag == Forward {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out, nil
}

// MultiplyPointwise computes dst[j] *= src[j] elementwise on interleaved
// complex slices — the pipeline's combine stage.
func MultiplyPointwise(dst, src []float64) error {
	if len(dst) != len(src) || len(dst)%2 != 0 {
		return fmt.Errorf("fft: pointwise multiply of %d vs %d doubles", len(dst), len(src))
	}
	for j := 0; j+1 < len(dst); j += 2 {
		ar, ai := dst[j], dst[j+1]
		br, bi := src[j], src[j+1]
		dst[j] = ar*br - ai*bi
		dst[j+1] = ar*bi + ai*br
	}
	return nil
}
