// Package sim is a discrete-event simulation substrate for the paper's
// reactive-computation problem class (§2.3.3): a not-necessarily-regular
// graph of communicating components in which each component's event
// handling may be a data-parallel computation (a distributed call), with
// the interaction between components handled at the task-parallel level.
//
// The simulator owns a global event queue ordered by timestamp (ties broken
// by insertion order, so runs are deterministic). Each event is delivered
// to its target component's handler, which may schedule further events —
// including events for other components, which is how the component graph
// communicates. Handlers typically make distributed calls for their
// numerical work, mirroring Fig 2.3's pump/valve/reactor system where "the
// behavior of each component may require a fairly complicated mathematical
// model best expressed by a data-parallel program".
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is one scheduled occurrence.
type Event struct {
	Time    float64
	Target  string
	Kind    string
	Payload any
	seq     int64 // tie-break: FIFO among equal timestamps
}

// Handler reacts to an event. It may call ctx.Schedule to create follow-on
// events and performs its component's computation (often a distributed
// call on the machine captured in its closure).
type Handler func(ctx *Context, ev Event) error

// Context is the scheduling interface handed to handlers.
type Context struct {
	sim *Simulator
	now float64
}

// Now returns the current simulation time.
func (c *Context) Now() float64 { return c.now }

// Schedule enqueues an event for target after the given delay (>= 0).
func (c *Context) Schedule(delay float64, target, kind string, payload any) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %v", delay)
	}
	return c.sim.post(c.now+delay, target, kind, payload)
}

// Simulator is a deterministic sequential discrete-event scheduler.
type Simulator struct {
	handlers map[string]Handler
	queue    eventQueue
	nextSeq  int64
	now      float64
	executed int
}

// New creates an empty simulator.
func New() *Simulator {
	return &Simulator{handlers: make(map[string]Handler)}
}

// AddComponent registers a component by name. Re-registration is an error.
func (s *Simulator) AddComponent(name string, h Handler) error {
	if name == "" || h == nil {
		return errors.New("sim: component needs a name and a handler")
	}
	if _, dup := s.handlers[name]; dup {
		return fmt.Errorf("sim: component %q already registered", name)
	}
	s.handlers[name] = h
	return nil
}

// Schedule enqueues an initial event at absolute time t.
func (s *Simulator) Schedule(t float64, target, kind string, payload any) error {
	if t < s.now {
		return fmt.Errorf("sim: cannot schedule at %v before current time %v", t, s.now)
	}
	return s.post(t, target, kind, payload)
}

func (s *Simulator) post(t float64, target, kind string, payload any) error {
	if _, ok := s.handlers[target]; !ok {
		return fmt.Errorf("sim: unknown component %q", target)
	}
	s.nextSeq++
	heap.Push(&s.queue, Event{Time: t, Target: target, Kind: kind, Payload: payload, seq: s.nextSeq})
	return nil
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Executed returns the number of events processed so far.
func (s *Simulator) Executed() int { return s.executed }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Run processes events in timestamp order until the queue empties or the
// next event is after `until`. It returns the number of events processed.
func (s *Simulator) Run(until float64) (int, error) {
	n := 0
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.Time > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.Time
		h := s.handlers[ev.Target]
		ctx := &Context{sim: s, now: ev.Time}
		if err := h(ctx, ev); err != nil {
			return n, fmt.Errorf("sim: %s/%s at t=%v: %w", ev.Target, ev.Kind, ev.Time, err)
		}
		s.executed++
		n++
	}
	return n, nil
}

// Step processes exactly one event if any is queued; it reports whether an
// event was processed.
func (s *Simulator) Step() (bool, error) {
	if s.queue.Len() == 0 {
		return false, nil
	}
	ev := heap.Pop(&s.queue).(Event)
	s.now = ev.Time
	ctx := &Context{sim: s, now: ev.Time}
	if err := s.handlers[ev.Target](ctx, ev); err != nil {
		return false, err
	}
	s.executed++
	return true, nil
}

// eventQueue is a min-heap on (Time, seq).
type eventQueue []Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
