package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []string
	rec := func(name string) Handler {
		return func(ctx *Context, ev Event) error {
			order = append(order, name)
			return nil
		}
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := s.AddComponent(n, rec(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Schedule out of order.
	s.Schedule(3, "c", "x", nil)
	s.Schedule(1, "a", "x", nil)
	s.Schedule(2, "b", "x", nil)
	n, err := s.Run(10)
	if err != nil || n != 3 {
		t.Fatalf("Run = %d, %v", n, err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	s.AddComponent("x", func(ctx *Context, ev Event) error {
		order = append(order, ev.Payload.(int))
		return nil
	})
	for i := 0; i < 5; i++ {
		s.Schedule(1, "x", "k", i)
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestHandlersScheduleFollowOns(t *testing.T) {
	s := New()
	count := 0
	s.AddComponent("clock", func(ctx *Context, ev Event) error {
		count++
		if count < 5 {
			return ctx.Schedule(1, "clock", "tick", nil)
		}
		return nil
	})
	s.Schedule(0, "clock", "tick", nil)
	n, err := s.Run(100)
	if err != nil || n != 5 || count != 5 {
		t.Fatalf("n=%d count=%d err=%v", n, count, err)
	}
	if s.Now() != 4 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New()
	s.AddComponent("x", func(ctx *Context, ev Event) error { return nil })
	s.Schedule(1, "x", "k", nil)
	s.Schedule(5, "x", "k", nil)
	n, err := s.Run(2)
	if err != nil || n != 1 {
		t.Fatalf("Run(2) = %d, %v", n, err)
	}
	if s.Pending() != 1 || s.Executed() != 1 {
		t.Fatalf("pending=%d executed=%d", s.Pending(), s.Executed())
	}
	// The rest runs later.
	n, err = s.Run(10)
	if err != nil || n != 1 {
		t.Fatalf("second Run = %d, %v", n, err)
	}
}

func TestComponentGraphCommunication(t *testing.T) {
	// pump -> valve -> reactor chain: each event triggers the next
	// component, Fig 2.3's interaction pattern.
	s := New()
	var path []string
	s.AddComponent("pump", func(ctx *Context, ev Event) error {
		path = append(path, "pump")
		return ctx.Schedule(0.5, "valve", "flow", nil)
	})
	s.AddComponent("valve", func(ctx *Context, ev Event) error {
		path = append(path, "valve")
		return ctx.Schedule(0.5, "reactor", "flow", nil)
	})
	s.AddComponent("reactor", func(ctx *Context, ev Event) error {
		path = append(path, "reactor")
		return nil
	})
	s.Schedule(0, "pump", "start", nil)
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != "pump" || path[1] != "valve" || path[2] != "reactor" {
		t.Fatalf("path = %v", path)
	}
}

func TestErrors(t *testing.T) {
	s := New()
	if err := s.AddComponent("", nil); err == nil {
		t.Fatal("empty component must fail")
	}
	s.AddComponent("x", func(ctx *Context, ev Event) error { return nil })
	if err := s.AddComponent("x", func(ctx *Context, ev Event) error { return nil }); err == nil {
		t.Fatal("duplicate component must fail")
	}
	if err := s.Schedule(0, "nope", "k", nil); err == nil {
		t.Fatal("unknown target must fail")
	}
	s.AddComponent("bad", func(ctx *Context, ev Event) error {
		return ctx.Schedule(-1, "x", "k", nil)
	})
	s.Schedule(0, "bad", "k", nil)
	if _, err := s.Run(10); err == nil {
		t.Fatal("negative delay must surface")
	}
}

func TestScheduleInPastFails(t *testing.T) {
	s := New()
	s.AddComponent("x", func(ctx *Context, ev Event) error { return nil })
	s.Schedule(5, "x", "k", nil)
	s.Run(10)
	if err := s.Schedule(1, "x", "k", nil); err == nil {
		t.Fatal("scheduling before Now must fail")
	}
}

func TestStep(t *testing.T) {
	s := New()
	hits := 0
	s.AddComponent("x", func(ctx *Context, ev Event) error { hits++; return nil })
	if ok, _ := s.Step(); ok {
		t.Fatal("Step on empty queue should be false")
	}
	s.Schedule(1, "x", "k", nil)
	if ok, err := s.Step(); !ok || err != nil || hits != 1 {
		t.Fatalf("Step = %v,%v hits=%d", ok, err, hits)
	}
}
