// Package stream implements PCN-style streams: definitional lists used for
// communication between concurrently executing task-parallel processes.
//
// In PCN, a stream of messages between processes is "a shared definitional
// list whose elements correspond to messages" (§A.3 of the paper). A producer
// extends the list one cons cell at a time; a consumer suspends on the
// undefined tail until the producer defines it. The paper's polynomial-
// multiplication pipeline (§6.2) is built entirely from such streams
// (In_stream, Out_streams, stream tails, and the [] end-of-stream marker).
//
// Stream[T] is one cell of such a list. Each cell is a definitional variable
// that is eventually defined either as a cons (head value + new tail cell) or
// as the end of the stream (PCN's []).
package stream

import (
	"repro/internal/defval"
)

// Stream is a handle to one cell of a definitional list. The zero value is
// not usable; create streams with New.
type Stream[T any] struct {
	cell *defval.Var[cellval[T]]
}

type cellval[T any] struct {
	head T
	tail Stream[T]
	end  bool
}

// New returns a fresh, undefined stream cell.
func New[T any]() Stream[T] {
	return Stream[T]{cell: defval.New[cellval[T]]()}
}

// Valid reports whether s is a usable stream handle.
func (s Stream[T]) Valid() bool { return s.cell != nil }

// Send defines this cell as a cons of v and a fresh tail, and returns the
// tail. It panics if the cell is already defined (single-assignment rule).
func (s Stream[T]) Send(v T) Stream[T] {
	tail := New[T]()
	s.cell.MustDefine(cellval[T]{head: v, tail: tail})
	return tail
}

// Close defines this cell as the end of the stream (PCN's Stream = []).
// It panics if the cell is already defined.
func (s Stream[T]) Close() {
	s.cell.MustDefine(cellval[T]{end: true})
}

// Recv suspends until this cell is defined. If the cell is a cons it returns
// (head, tail, true); if it is the end of the stream it returns
// (zero, invalid, false).
func (s Stream[T]) Recv() (v T, rest Stream[T], ok bool) {
	c := s.cell.Value()
	if c.end {
		var zero T
		return zero, Stream[T]{}, false
	}
	return c.head, c.tail, true
}

// TryRecv is Recv without suspension: defined reports whether the cell has
// been defined at all.
func (s Stream[T]) TryRecv() (v T, rest Stream[T], ok, defined bool) {
	c, def := s.cell.Try()
	if !def {
		var zero T
		return zero, Stream[T]{}, false, false
	}
	if c.end {
		var zero T
		return zero, Stream[T]{}, false, true
	}
	return c.head, c.tail, true, true
}

// Defined returns a channel closed once this cell has been defined — the
// analogue of a PCN data guard on the stream variable.
func (s Stream[T]) Defined() <-chan struct{} { return s.cell.Defined() }

// Writer is a convenience producer handle that tracks the current tail so
// callers can write sequentially without threading the tail by hand.
type Writer[T any] struct {
	tail Stream[T]
}

// NewWriter returns a writer producing into s.
func NewWriter[T any](s Stream[T]) *Writer[T] { return &Writer[T]{tail: s} }

// Put appends v to the stream.
func (w *Writer[T]) Put(v T) { w.tail = w.tail.Send(v) }

// End closes the stream.
func (w *Writer[T]) End() { w.tail.Close() }

// Tail returns the current (undefined) tail cell; useful for splicing, as in
// the paper's idiom "Out_stream = [values | Out_stream_tail]" where a
// producer forwards its remaining output to another stream.
func (w *Writer[T]) Tail() Stream[T] { return w.tail }

// SpliceTo ends this writer's ownership by making subsequent output come
// from other: it sends nothing, instead forwarding every element of other
// into the current tail. It runs synchronously until other is closed.
func (w *Writer[T]) SpliceTo(other Stream[T]) {
	Forward(other, w.tail)
}

// Reader is a convenience consumer handle.
type Reader[T any] struct {
	cur Stream[T]
}

// NewReader returns a reader consuming from s.
func NewReader[T any](s Stream[T]) *Reader[T] { return &Reader[T]{cur: s} }

// Next suspends for the next element; ok is false at end of stream.
func (r *Reader[T]) Next() (v T, ok bool) {
	v, rest, ok := r.cur.Recv()
	if ok {
		r.cur = rest
	}
	return v, ok
}

// Rest returns the current position as a stream (for handing the remainder
// to another consumer, the paper's In_stream_tail idiom).
func (r *Reader[T]) Rest() Stream[T] { return r.cur }

// FromSlice produces a closed stream containing vs.
func FromSlice[T any](vs []T) Stream[T] {
	s := New[T]()
	w := NewWriter(s)
	for _, v := range vs {
		w.Put(v)
	}
	w.End()
	return s
}

// Collect consumes s to its end and returns all elements. It suspends as
// needed; the producer may still be running concurrently.
func Collect[T any](s Stream[T]) []T {
	var out []T
	r := NewReader(s)
	for {
		v, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// CollectN consumes exactly n elements (suspending as needed) and returns
// them along with the remaining stream position.
func CollectN[T any](s Stream[T], n int) ([]T, Stream[T], bool) {
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		v, rest, ok := s.Recv()
		if !ok {
			return out, Stream[T]{}, false
		}
		out = append(out, v)
		s = rest
	}
	return out, s, true
}

// Forward copies every element of src into dst and closes dst when src
// ends. It is the stream analogue of io.Copy.
func Forward[T any](src, dst Stream[T]) {
	for {
		v, rest, ok := src.Recv()
		if !ok {
			dst.Close()
			return
		}
		dst = dst.Send(v)
		src = rest
	}
}

// Map produces a new stream applying f to each element of src; the result
// stream is produced concurrently.
func Map[T, U any](src Stream[T], f func(T) U) Stream[U] {
	out := New[U]()
	go func() {
		w := NewWriter(out)
		r := NewReader(src)
		for {
			v, ok := r.Next()
			if !ok {
				w.End()
				return
			}
			w.Put(f(v))
		}
	}()
	return out
}

// Zip pairs elements of a and b with f until either ends.
func Zip[A, B, C any](a Stream[A], b Stream[B], f func(A, B) C) Stream[C] {
	out := New[C]()
	go func() {
		w := NewWriter(out)
		ra, rb := NewReader(a), NewReader(b)
		for {
			x, ok := ra.Next()
			if !ok {
				w.End()
				return
			}
			y, ok := rb.Next()
			if !ok {
				w.End()
				return
			}
			w.Put(f(x, y))
		}
	}()
	return out
}
