package stream

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSendRecv(t *testing.T) {
	s := New[int]()
	tail := s.Send(1)
	tail = tail.Send(2)
	tail.Close()

	v, rest, ok := s.Recv()
	if !ok || v != 1 {
		t.Fatalf("first Recv = (%d,%v)", v, ok)
	}
	v, rest, ok = rest.Recv()
	if !ok || v != 2 {
		t.Fatalf("second Recv = (%d,%v)", v, ok)
	}
	if _, _, ok = rest.Recv(); ok {
		t.Fatal("expected end of stream")
	}
}

func TestRecvSuspendsUntilProduced(t *testing.T) {
	s := New[string]()
	got := make(chan string, 1)
	go func() {
		v, _, _ := s.Recv()
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("Recv returned %q before Send", v)
	case <-time.After(20 * time.Millisecond):
	}
	s.Send("hello")
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("Recv = %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never woke")
	}
}

func TestWriterReader(t *testing.T) {
	s := New[int]()
	go func() {
		w := NewWriter(s)
		for i := 0; i < 100; i++ {
			w.Put(i)
		}
		w.End()
	}()
	r := NewReader(s)
	for i := 0; i < 100; i++ {
		v, ok := r.Next()
		if !ok || v != i {
			t.Fatalf("element %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("expected end after 100 elements")
	}
}

func TestFromSliceCollectRoundTrip(t *testing.T) {
	f := func(vs []int32) bool {
		got := Collect(FromSlice(vs))
		if len(vs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectN(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	head, rest, ok := CollectN(s, 3)
	if !ok || !reflect.DeepEqual(head, []int{1, 2, 3}) {
		t.Fatalf("CollectN = %v, %v", head, ok)
	}
	tailVals := Collect(rest)
	if !reflect.DeepEqual(tailVals, []int{4, 5}) {
		t.Fatalf("rest = %v", tailVals)
	}
	// Asking for more than available reports !ok.
	if _, _, ok := CollectN(FromSlice([]int{1}), 5); ok {
		t.Fatal("CollectN past end should report !ok")
	}
}

func TestForward(t *testing.T) {
	src := FromSlice([]int{7, 8, 9})
	dst := New[int]()
	go Forward(src, dst)
	if got := Collect(dst); !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Fatalf("Forward result = %v", got)
	}
}

func TestSpliceToForwardsRemainder(t *testing.T) {
	// Producer writes a prefix then splices in a second stream: the
	// paper's Out_stream = [... | Out_stream_tail] idiom.
	out := New[int]()
	second := FromSlice([]int{3, 4})
	go func() {
		w := NewWriter(out)
		w.Put(1)
		w.Put(2)
		w.SpliceTo(second)
	}()
	if got := Collect(out); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("spliced stream = %v", got)
	}
}

func TestMap(t *testing.T) {
	src := FromSlice([]int{1, 2, 3})
	doubled := Map(src, func(x int) int { return 2 * x })
	if got := Collect(doubled); !reflect.DeepEqual(got, []int{2, 4, 6}) {
		t.Fatalf("Map result = %v", got)
	}
}

func TestZip(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{10, 20}) // shorter: zip ends with it
	sum := Zip(a, b, func(x, y int) int { return x + y })
	if got := Collect(sum); !reflect.DeepEqual(got, []int{11, 22}) {
		t.Fatalf("Zip result = %v", got)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	s := New[int]()
	s.Send(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic defining a cell twice")
		}
	}()
	s.Send(2)
}

func TestTryRecv(t *testing.T) {
	s := New[int]()
	if _, _, _, defined := s.TryRecv(); defined {
		t.Fatal("TryRecv reported defined on fresh cell")
	}
	tail := s.Send(5)
	v, rest, ok, defined := s.TryRecv()
	if !defined || !ok || v != 5 || rest != tail {
		t.Fatalf("TryRecv = (%d,%v,%v)", v, ok, defined)
	}
	tail.Close()
	if _, _, ok, defined := tail.TryRecv(); ok || !defined {
		t.Fatal("TryRecv on closed cell should report defined && !ok")
	}
}

// Many concurrent consumers of the same stream position all observe the same
// element (single-assignment semantics of the cell).
func TestConcurrentConsumersSameView(t *testing.T) {
	s := New[int]()
	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _ := s.Recv()
			vals[i] = v
		}(i)
	}
	s.Send(77)
	wg.Wait()
	for i, v := range vals {
		if v != 77 {
			t.Fatalf("consumer %d saw %d", i, v)
		}
	}
}
