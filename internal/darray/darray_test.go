package darray

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
)

func testMeta(t *testing.T) *Meta {
	t.Helper()
	// 4x6 double array over 4 procs as a 2x2 grid, borders {1,1,2,2}.
	localDims := []int{2, 3}
	borders := []int{1, 1, 2, 2}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		t.Fatal(err)
	}
	return &Meta{
		ID:            ID{Proc: 0, Seq: 1},
		Type:          Double,
		Dims:          []int{4, 6},
		Procs:         []int{0, 1, 2, 3},
		GridDims:      []int{2, 2},
		LocalDims:     localDims,
		Borders:       borders,
		LocalDimsPlus: plus,
		Indexing:      grid.RowMajor,
		GridIndexing:  grid.RowMajor,
	}
}

func TestMetaSizes(t *testing.T) {
	m := testMeta(t)
	if m.NDims() != 2 {
		t.Fatalf("NDims = %d", m.NDims())
	}
	if m.GridSize() != 4 {
		t.Fatalf("GridSize = %d", m.GridSize())
	}
	if m.LocalInteriorSize() != 6 {
		t.Fatalf("interior = %d", m.LocalInteriorSize())
	}
	// Fig 3.7 arithmetic: (2+1+1) x (3+2+2) = 4x7 = 28.
	if m.LocalStorageSize() != 28 {
		t.Fatalf("storage = %d", m.LocalStorageSize())
	}
}

// Figure 3.7: a local section of dims {3,4} with borders 1 (rows) and 2
// (columns) has bordered dims {5, 8}.
func TestFig37BorderedDims(t *testing.T) {
	plus, err := DimsPlus([]int{3, 4}, []int{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plus, []int{5, 8}) {
		t.Fatalf("plus = %v, want [5 8]", plus)
	}
}

func TestCheckBorders(t *testing.T) {
	if err := CheckBorders([]int{0, 0, 0, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckBorders([]int{1, 2}, 2); err == nil {
		t.Fatal("short borders must fail")
	}
	if err := CheckBorders([]int{1, -1}, 1); err == nil {
		t.Fatal("negative border must fail")
	}
}

func TestStorageOffsetWithBorders(t *testing.T) {
	// Local section 2x3 with borders {1,1,2,2}: storage is 4x7 row-major.
	// Interior (0,0) lives at storage (1,2) = 1*7+2 = 9.
	off, err := StorageOffset([]int{0, 0}, []int{2, 3}, []int{1, 1, 2, 2}, grid.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if off != 9 {
		t.Fatalf("offset = %d, want 9", off)
	}
	// Interior (1,2) -> storage (2,4) = 2*7+4 = 18.
	off, err = StorageOffset([]int{1, 2}, []int{2, 3}, []int{1, 1, 2, 2}, grid.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if off != 18 {
		t.Fatalf("offset = %d, want 18", off)
	}
	if _, err := StorageOffset([]int{2, 0}, []int{2, 3}, []int{1, 1, 2, 2}, grid.RowMajor); err == nil {
		t.Fatal("out-of-interior index must fail")
	}
}

func TestOwnerMapping(t *testing.T) {
	m := testMeta(t)
	// Global (2,3): grid coord (1,1) -> slot 3 -> proc 3; local (0,0) ->
	// storage offset 9 (borders {1,1,2,2}, storage 4x7).
	proc, off, err := m.Owner([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if proc != 3 || off != 9 {
		t.Fatalf("Owner = (proc %d, off %d), want (3, 9)", proc, off)
	}
	if _, _, err := m.Owner([]int{4, 0}); err == nil {
		t.Fatal("out-of-range global index must fail")
	}
}

// Every global element maps to exactly one (proc, offset) pair and all
// offsets are interior (Fig 3.1 partitioning invariant, with borders).
func TestOwnerBijectionWithBorders(t *testing.T) {
	m := testMeta(t)
	type key struct{ proc, off int }
	seen := map[key]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			proc, off, err := m.Owner([]int{i, j})
			if err != nil {
				t.Fatal(err)
			}
			k := key{proc, off}
			if seen[k] {
				t.Fatalf("duplicate mapping for (%d,%d): %v", i, j, k)
			}
			seen[k] = true
			if off < 0 || off >= m.LocalStorageSize() {
				t.Fatalf("offset %d outside storage", off)
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("%d mappings, want 24", len(seen))
	}
}

func TestSectionTypes(t *testing.T) {
	f := NewSection(Double, 5)
	if f.Len() != 5 || f.F == nil || f.I != nil {
		t.Fatalf("double section malformed: %+v", f)
	}
	f.SetFloat(2, 3.5)
	if f.GetFloat(2) != 3.5 {
		t.Fatal("double round trip failed")
	}

	i := NewSection(Int, 4)
	if i.Len() != 4 || i.I == nil || i.F != nil {
		t.Fatalf("int section malformed: %+v", i)
	}
	i.SetFloat(1, 7.9) // truncates
	if i.GetFloat(1) != 7 {
		t.Fatalf("int conversion: got %v", i.GetFloat(1))
	}
}

func TestCopyInteriorPreservesData(t *testing.T) {
	localDims := []int{2, 3}
	srcBorders := []int{0, 0, 0, 0}
	dstBorders := []int{1, 1, 2, 2}
	srcPlus, _ := DimsPlus(localDims, srcBorders)
	dstPlus, _ := DimsPlus(localDims, dstBorders)

	src := NewSection(Double, grid.Size(srcPlus))
	dst := NewSection(Double, grid.Size(dstPlus))
	for k := range src.F {
		src.F[k] = float64(k + 1)
	}
	if err := CopyInterior(dst, src, localDims, dstBorders, srcBorders, grid.RowMajor); err != nil {
		t.Fatal(err)
	}
	// Check all interior elements survived.
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			so, _ := StorageOffset([]int{i, j}, localDims, srcBorders, grid.RowMajor)
			do, _ := StorageOffset([]int{i, j}, localDims, dstBorders, grid.RowMajor)
			if dst.F[do] != src.F[so] {
				t.Fatalf("interior (%d,%d) lost: %v != %v", i, j, dst.F[do], src.F[so])
			}
		}
	}
}

// Property: CopyInterior is lossless for random shapes/borders/orderings in
// both directions (adding and removing borders).
func TestQuickCopyInteriorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		nd := rng.Intn(3) + 1
		localDims := make([]int, nd)
		bA := make([]int, 2*nd)
		bB := make([]int, 2*nd)
		for i := 0; i < nd; i++ {
			localDims[i] = rng.Intn(4) + 1
			bA[2*i], bA[2*i+1] = rng.Intn(3), rng.Intn(3)
			bB[2*i], bB[2*i+1] = rng.Intn(3), rng.Intn(3)
		}
		ix := grid.Indexing(rng.Intn(2))
		plusA, _ := DimsPlus(localDims, bA)
		plusB, _ := DimsPlus(localDims, bB)
		a := NewSection(Double, grid.Size(plusA))
		b := NewSection(Double, grid.Size(plusB))
		c := NewSection(Double, grid.Size(plusA))
		for k := range a.F {
			a.F[k] = rng.Float64()
		}
		if err := CopyInterior(b, a, localDims, bB, bA, ix); err != nil {
			t.Fatal(err)
		}
		if err := CopyInterior(c, b, localDims, bA, bB, ix); err != nil {
			t.Fatal(err)
		}
		n := grid.Size(localDims)
		for lin := 0; lin < n; lin++ {
			lidx, _ := grid.Unflatten(lin, localDims, ix)
			off, _ := StorageOffset(lidx, localDims, bA, ix)
			if a.F[off] != c.F[off] {
				t.Fatalf("iter %d: interior %v not preserved", iter, lidx)
			}
		}
	}
}

func TestCopyInteriorTypeMismatch(t *testing.T) {
	a := NewSection(Double, 1)
	b := NewSection(Int, 1)
	if err := CopyInterior(a, b, []int{1}, []int{0, 0}, []int{0, 0}, grid.RowMajor); err == nil {
		t.Fatal("type mismatch must fail")
	}
}

func TestHoldsSection(t *testing.T) {
	m := testMeta(t)
	if slot, ok := m.HoldsSection(2); !ok || slot != 2 {
		t.Fatalf("HoldsSection(2) = (%d,%v)", slot, ok)
	}
	if _, ok := m.HoldsSection(9); ok {
		t.Fatal("processor 9 should not hold a section")
	}
}

func TestSectionProcsSubset(t *testing.T) {
	// Grid smaller than the processor list: only the first GridSize
	// processors hold sections.
	m := testMeta(t)
	m.Procs = []int{5, 6, 7, 8, 9}
	if got := m.SectionProcs(); !reflect.DeepEqual(got, []int{5, 6, 7, 8}) {
		t.Fatalf("SectionProcs = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := testMeta(t)
	c := m.Clone()
	c.Dims[0] = 99
	c.Procs[0] = 99
	if m.Dims[0] == 99 || m.Procs[0] == 99 {
		t.Fatal("Clone shares slices with original")
	}
}

func TestElemTypeParseAndString(t *testing.T) {
	for _, c := range []struct {
		s    string
		want ElemType
	}{{"int", Int}, {"double", Double}} {
		got, err := ParseElemType(c.s)
		if err != nil || got != c.want {
			t.Fatalf("ParseElemType(%q) = %v, %v", c.s, got, err)
		}
		if got.String() != c.s {
			t.Fatalf("String round trip for %q", c.s)
		}
	}
	if _, err := ParseElemType("float"); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestNoBorders(t *testing.T) {
	if got := NoBorders(3); !reflect.DeepEqual(got, []int{0, 0, 0, 0, 0, 0}) {
		t.Fatalf("NoBorders(3) = %v", got)
	}
}

func TestEqualInts(t *testing.T) {
	if !EqualInts([]int{1, 2}, []int{1, 2}) || EqualInts([]int{1}, []int{1, 2}) || EqualInts([]int{1, 3}, []int{1, 2}) {
		t.Fatal("EqualInts broken")
	}
}

func TestIDString(t *testing.T) {
	if (ID{Proc: 2, Seq: 5}).String() != "{2,5}" {
		t.Fatal("ID.String broken")
	}
}
