package darray

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// metaFor builds the Meta the array manager would produce for dims over a
// processor grid, with the given borders and indexing.
func metaFor(t *testing.T, dims, gridDims, borders []int, ix grid.Indexing) *Meta {
	t.Helper()
	localDims, err := grid.LocalDims(dims, gridDims)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]int, grid.Size(gridDims))
	for i := range procs {
		procs[i] = 10 + 3*i // non-identity processor numbering
	}
	return &Meta{
		ID: ID{Proc: 0, Seq: 0}, Type: Double,
		Dims:      append([]int(nil), dims...),
		Procs:     procs,
		GridDims:  append([]int(nil), gridDims...),
		LocalDims: localDims, Borders: append([]int(nil), borders...),
		LocalDimsPlus: plus,
		Indexing:      ix, GridIndexing: ix,
	}
}

// TestOwnerIndicesMatchesOwner checks the vector split against the scalar
// Owner resolution: every index lands in exactly one set, on the processor
// and at the storage offset Owner reports, with positions covering the
// request vector exactly once in request order.
func TestOwnerIndicesMatchesOwner(t *testing.T) {
	cases := []struct {
		name     string
		dims     []int
		gridDims []int
		borders  []int
		ix       grid.Indexing
	}{
		{"1d", []int{24}, []int{4}, []int{0, 0}, grid.RowMajor},
		{"1d/bordered", []int{12}, []int{3}, []int{2, 1}, grid.RowMajor},
		{"2d/row", []int{8, 6}, []int{2, 2}, []int{0, 0, 0, 0}, grid.RowMajor},
		{"2d/row/bordered", []int{8, 6}, []int{2, 3}, []int{1, 1, 2, 0}, grid.RowMajor},
		{"2d/col/bordered", []int{8, 6}, []int{2, 2}, []int{1, 0, 0, 1}, grid.ColMajor},
		{"3d", []int{4, 6, 2}, []int{2, 3, 1}, []int{1, 0, 0, 1, 1, 1}, grid.ColMajor},
	}
	rng := rand.New(rand.NewSource(23))
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := metaFor(t, c.dims, c.gridDims, c.borders, c.ix)
			const k = 64
			indices := make([][]int, k)
			for i := range indices {
				idx := make([]int, len(c.dims))
				for d := range idx {
					idx[d] = rng.Intn(c.dims[d])
				}
				indices[i] = idx
			}
			sets, err := m.OwnerIndices(indices)
			if err != nil {
				t.Fatal(err)
			}
			seenProc := map[int]bool{}
			seenPos := map[int]bool{}
			for _, s := range sets {
				if seenProc[s.Proc] {
					t.Fatalf("processor %d appears in two sets", s.Proc)
				}
				seenProc[s.Proc] = true
				if len(s.Offs) != len(s.Pos) || len(s.Offs) == 0 {
					t.Fatalf("malformed set: %d offsets, %d positions", len(s.Offs), len(s.Pos))
				}
				last := -1
				for j, pos := range s.Pos {
					if seenPos[pos] {
						t.Fatalf("position %d appears twice", pos)
					}
					seenPos[pos] = true
					if pos <= last {
						t.Fatalf("positions out of request order: %v", s.Pos)
					}
					last = pos
					wantProc, wantOff, err := m.Owner(indices[pos])
					if err != nil {
						t.Fatal(err)
					}
					if s.Proc != wantProc || s.Offs[j] != wantOff {
						t.Fatalf("index %v resolved to proc %d off %d, Owner says %d/%d",
							indices[pos], s.Proc, s.Offs[j], wantProc, wantOff)
					}
				}
			}
			if len(seenPos) != k {
				t.Fatalf("sets cover %d of %d positions", len(seenPos), k)
			}
		})
	}
}

// TestOwnerIndicesErrors rejects malformed index vectors and accepts the
// empty one.
func TestOwnerIndicesErrors(t *testing.T) {
	m := metaFor(t, []int{8, 6}, []int{2, 2}, NoBorders(2), grid.RowMajor)
	if sets, err := m.OwnerIndices(nil); err != nil || sets != nil {
		t.Fatalf("empty vector: sets=%v err=%v", sets, err)
	}
	if _, err := m.OwnerIndices([][]int{{0, 0}, {8, 0}}); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if _, err := m.OwnerIndices([][]int{{1}}); err == nil {
		t.Fatal("short index tuple must fail")
	}
}

// TestSectionGatherScatter checks GatherInto/ScatterFrom against the
// per-element StorageOffset path across section layouts, including
// last-writer-wins for repeated offsets.
func TestSectionGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, c := range sectionCases() {
		t.Run(c.name, func(t *testing.T) {
			plus, err := DimsPlus(c.localDims, c.borders)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSection(c.typ, grid.Size(plus))
			// Pick k interior offsets (with repeats) via StorageOffset.
			const k = 20
			offs := make([]int, k)
			vals := make([]float64, k)
			for i := range offs {
				idx := make([]int, len(c.localDims))
				for d := range idx {
					idx[d] = rng.Intn(c.localDims[d])
				}
				off, err := StorageOffset(idx, c.localDims, c.borders, c.ix)
				if err != nil {
					t.Fatal(err)
				}
				offs[i] = off
				vals[i] = float64(i + 1)
			}
			offs[k-1] = offs[0] // force at least one repeat
			if err := s.ScatterFrom(vals, offs); err != nil {
				t.Fatal(err)
			}
			// Each offset must hold the value of its last occurrence in
			// the request (last writer wins).
			lastVal := map[int]float64{}
			for i, off := range offs {
				lastVal[off] = vals[i]
			}
			for off, v := range lastVal {
				if c.typ == Int {
					v = float64(int64(v))
				}
				if got := s.GetFloat(off); got != v {
					t.Fatalf("offset %d = %v, want last-written %v", off, got, v)
				}
			}
			// Gather reads back exactly what the storage holds.
			dst := make([]float64, k)
			if err := s.GatherInto(dst, offs); err != nil {
				t.Fatal(err)
			}
			for i, off := range offs {
				if dst[i] != s.GetFloat(off) {
					t.Fatalf("gather[%d] = %v, storage %v", i, dst[i], s.GetFloat(off))
				}
			}
		})
	}
}

// TestSectionGatherScatterZeroAllocs pins the owner-side service copies at
// zero heap allocations.
func TestSectionGatherScatterZeroAllocs(t *testing.T) {
	s := NewSection(Double, 64)
	offs := []int{3, 17, 42, 8, 8, 63, 0}
	buf := make([]float64, len(offs))
	gather := testing.AllocsPerRun(200, func() {
		if err := s.GatherInto(buf, offs); err != nil {
			t.Error(err)
		}
	})
	scatter := testing.AllocsPerRun(200, func() {
		if err := s.ScatterFrom(buf, offs); err != nil {
			t.Error(err)
		}
	})
	if gather != 0 {
		t.Errorf("GatherInto: %v allocs/op, want 0", gather)
	}
	if scatter != 0 {
		t.Errorf("ScatterFrom: %v allocs/op, want 0", scatter)
	}
}

// TestSectionGatherScatterErrors rejects length mismatches and
// out-of-range offsets without partial writes going unnoticed.
func TestSectionGatherScatterErrors(t *testing.T) {
	s := NewSection(Double, 8)
	if err := s.GatherInto(make([]float64, 2), []int{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := s.GatherInto(make([]float64, 1), []int{8}); err == nil {
		t.Fatal("out-of-range offset must fail")
	}
	if err := s.ScatterFrom([]float64{1}, []int{-1}); err == nil {
		t.Fatal("negative offset must fail")
	}
	if err := s.ScatterFrom([]float64{1, 2}, []int{0}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	// Offsets are validated up front: a bad offset anywhere means nothing
	// is written.
	if err := s.ScatterFrom([]float64{5, 6}, []int{0, 99}); err == nil {
		t.Fatal("trailing bad offset must fail")
	}
	if s.F[0] != 0 {
		t.Fatalf("failed scatter wrote %v before validating", s.F[0])
	}
}
