// The redistribution schedule: planning direct owner↔owner transfers
// between two distributed arrays. Phase-changing algorithms (a block LU
// panel feeding a cyclic solve, a transpose between FFT stages) move a
// rectangle from one array to another with a different distribution;
// the schedule computed here is the set of non-empty src-owner/dst-owner
// intersections of that rectangle, each translated to interior-local
// coordinates on both sides, so a coordinator can ship every piece
// owner-to-owner in one message instead of bouncing the whole rectangle
// through a single client process.
//
// This file also holds the owner-side copy kernels the redistribution
// plane runs on (CopyRect, CopyOffsets) and the bounds+step owner split
// (StridedShares) that replaces materialized offset vectors on the
// cyclic rectangle path.
package darray

import (
	"fmt"

	"repro/internal/grid"
)

// PairBlock is one regular piece of a transfer schedule: the lattice
// points held by SrcProc on the source array and DstProc on the
// destination, as matching strided local rectangles on both sides (the
// shared step lives on the Schedule). Row-major enumeration of
// (SrcLo, SrcHi) and (DstLo, DstHi) visits corresponding elements in
// the same order, so the piece moves with one packed buffer.
type PairBlock struct {
	SrcProc, DstProc int
	SrcSlot, DstSlot int   // grid slots of the two owning sections
	SrcLo, SrcHi     []int // interior-local strided bounds at the source owner
	DstLo, DstHi     []int // the same lattice at the destination owner
}

// PairSet is one irregular piece of a transfer schedule: the lattice
// points held by SrcProc on the source array and DstProc on the
// destination, as paired border-displaced storage offsets — element
// SrcOffs[i] of the source section moves to element DstOffs[i] of the
// destination section.
type PairSet struct {
	SrcProc, DstProc int
	SrcSlot, DstSlot int // grid slots of the two owning sections
	SrcOffs, DstOffs []int
}

// Schedule is an owner-pair transfer schedule produced by
// TransferSchedule. Every lattice point of the transferred rectangle
// appears in exactly one pair (a Block when both arrays are Regular, a
// Set otherwise), so shipping each pair once moves the whole rectangle:
// the ≤1-message-per-owner-pair budget of the redistribution plane.
type Schedule struct {
	Blocks []PairBlock
	Sets   []PairSet
	Step   []int // shared lattice step of the Blocks; nil = dense
}

// NPairs returns the number of non-empty owner pairs in the schedule.
func (s *Schedule) NPairs() int { return len(s.Blocks) + len(s.Sets) }

// TransferSchedule computes the owner-pair intersection schedule for
// copying a lattice of elements from array src onto array dst: lattice
// offset j (componentwise 0 <= j < dims, every step[i]-th per
// dimension; step nil = dense) moves source element srcLo+j to
// destination element dstLo+j. When both arrays are Regular the
// intersections are computed by pairwise rectangle intersection of the
// two owner splits in offset space; any irregular side routes through
// the per-point ownership arithmetic (ResolveIndex), bucketing the
// lattice by owner pair into paired storage-offset vectors. Ranks must
// match and both rectangles are validated against their arrays; element
// types may differ (values convert on write).
func (dst *Meta) TransferSchedule(src *Meta, dstLo, srcLo, dims, step []int) (*Schedule, error) {
	n := dst.NDims()
	if src.NDims() != n || len(dstLo) != n || len(srcLo) != n || len(dims) != n {
		return nil, fmt.Errorf("darray: transfer schedule rank mismatch: dst %d, src %d, bounds %d/%d/%d",
			n, src.NDims(), len(dstLo), len(srcLo), len(dims))
	}
	if step != nil && len(step) != n {
		return nil, fmt.Errorf("darray: transfer schedule step of rank %d for %d dimensions", len(step), n)
	}
	srcHi := make([]int, n)
	dstHi := make([]int, n)
	for i := 0; i < n; i++ {
		srcHi[i] = srcLo[i] + dims[i]
		dstHi[i] = dstLo[i] + dims[i]
	}
	var err error
	if step == nil {
		err = grid.CheckRect(srcLo, srcHi, src.Dims)
		if err == nil {
			err = grid.CheckRect(dstLo, dstHi, dst.Dims)
		}
	} else {
		err = grid.CheckStridedRect(srcLo, srcHi, step, src.Dims)
		if err == nil {
			err = grid.CheckStridedRect(dstLo, dstHi, step, dst.Dims)
		}
	}
	if err != nil {
		return nil, err
	}
	sched := &Schedule{}
	if step != nil {
		sched.Step = append([]int(nil), step...)
	}
	if src.Regular() && dst.Regular() {
		var sBlocks, dBlocks []OwnerBlock
		if step == nil {
			sBlocks, err = src.OwnerBlocks(srcLo, srcHi)
		} else {
			sBlocks, err = src.OwnerBlocksStrided(srcLo, srcHi, step)
		}
		if err != nil {
			return nil, err
		}
		if step == nil {
			dBlocks, err = dst.OwnerBlocks(dstLo, dstHi)
		} else {
			dBlocks, err = dst.OwnerBlocksStrided(dstLo, dstHi, step)
		}
		if err != nil {
			return nil, err
		}
		// Intersect every source block with every destination block in
		// offset space (global minus the rectangle origin, so the two
		// sides share coordinates). Block origins lie on the request
		// lattice and the per-block global→local map is a unit-slope
		// translation, so intersections translate back to local bounds
		// by plain differences.
		aLo := make([]int, n)
		aHi := make([]int, n)
		bLo := make([]int, n)
		bHi := make([]int, n)
		for _, sb := range sBlocks {
			for i := 0; i < n; i++ {
				aLo[i] = sb.GlobalLo[i] - srcLo[i]
				aHi[i] = sb.GlobalHi[i] - srcLo[i]
			}
			for _, db := range dBlocks {
				for i := 0; i < n; i++ {
					bLo[i] = db.GlobalLo[i] - dstLo[i]
					bHi[i] = db.GlobalHi[i] - dstLo[i]
				}
				var olo, ohi []int
				var ok bool
				if step == nil {
					olo, ohi, ok = grid.IntersectRect(aLo, aHi, bLo, bHi)
				} else {
					olo, ohi, ok = grid.IntersectStridedRect(aLo, aHi, step, bLo, bHi)
				}
				if !ok {
					continue
				}
				pb := PairBlock{
					SrcProc: sb.Proc, DstProc: db.Proc,
					SrcSlot: sb.Slot, DstSlot: db.Slot,
					SrcLo: make([]int, n), SrcHi: make([]int, n),
					DstLo: make([]int, n), DstHi: make([]int, n),
				}
				for i := 0; i < n; i++ {
					pb.SrcLo[i] = sb.LocalLo[i] + olo[i] - aLo[i]
					pb.SrcHi[i] = sb.LocalLo[i] + ohi[i] - aLo[i]
					pb.DstLo[i] = db.LocalLo[i] + olo[i] - bLo[i]
					pb.DstHi[i] = db.LocalLo[i] + ohi[i] - bLo[i]
				}
				sched.Blocks = append(sched.Blocks, pb)
			}
		}
		return sched, nil
	}
	// At least one side is irregular: resolve every lattice point on
	// both sides and bucket by (source slot, destination slot), pairs
	// ordered by first appearance in row-major lattice order.
	srcStrides := grid.Strides(src.LocalDimsPlus, src.Indexing)
	dstStrides := grid.Strides(dst.LocalDimsPlus, dst.Indexing)
	srcIdx := make([]int, n)
	dstIdx := make([]int, n)
	type pairKey struct{ s, d int }
	byPair := make(map[pairKey]int) // (srcSlot, dstSlot) -> index into Sets
	visit := func(off []int, _ int) error {
		for i := range off {
			srcIdx[i] = srcLo[i] + off[i]
			dstIdx[i] = dstLo[i] + off[i]
		}
		sSlot, sOff, ok := src.ResolveIndex(srcIdx, srcStrides)
		if !ok {
			return fmt.Errorf("darray: unresolvable source index %v", srcIdx)
		}
		dSlot, dOff, ok := dst.ResolveIndex(dstIdx, dstStrides)
		if !ok {
			return fmt.Errorf("darray: unresolvable destination index %v", dstIdx)
		}
		k := pairKey{sSlot, dSlot}
		pi, seen := byPair[k]
		if !seen {
			pi = len(sched.Sets)
			byPair[k] = pi
			sched.Sets = append(sched.Sets, PairSet{
				SrcProc: src.Procs[sSlot], DstProc: dst.Procs[dSlot],
				SrcSlot: sSlot, DstSlot: dSlot,
			})
		}
		ps := &sched.Sets[pi]
		ps.SrcOffs = append(ps.SrcOffs, sOff)
		ps.DstOffs = append(ps.DstOffs, dOff)
		return nil
	}
	zero := make([]int, n)
	if step == nil {
		err = grid.ForEachRect(zero, dims, visit)
	} else {
		err = grid.ForEachStridedRect(zero, dims, step, visit)
	}
	if err != nil {
		return nil, err
	}
	return sched, nil
}

// CopyRect copies the strided interior rectangle (srcLo, srcHi, step) —
// dense when step is nil — of the source section onto the same-shaped
// lattice anchored at dstLo in the destination section, the two
// sections belonging to (possibly different) arrays described by their
// metadata. This is the zero-message service routine of the
// redistribution plane's same-process pairs: for rectangles of at most
// MaxFastDims dimensions the dual-odometer walk performs no heap
// allocation, moving contiguous runs with copy when both sections are
// row-major doubles with a unit innermost step. Element types may
// differ (values convert). Both rectangles are validated against the
// sections' interior dimensions.
func CopyRect(dst *Section, dstMeta *Meta, dstLo []int, src *Section, srcMeta *Meta, srcLo, srcHi, step []int) error {
	n := len(srcLo)
	if dstMeta.NDims() != n || srcMeta.NDims() != n || len(dstLo) != n || len(srcHi) != n {
		return fmt.Errorf("darray: copy-rect rank mismatch: dst %d, src %d, bounds %d/%d/%d",
			dstMeta.NDims(), srcMeta.NDims(), len(dstLo), len(srcLo), len(srcHi))
	}
	if step != nil && len(step) != n {
		return fmt.Errorf("darray: copy-rect step of rank %d for %d dimensions", len(step), n)
	}
	if step == nil {
		if err := grid.CheckRect(srcLo, srcHi, srcMeta.LocalDims); err != nil {
			return err
		}
	} else if err := grid.CheckStridedRect(srcLo, srcHi, step, srcMeta.LocalDims); err != nil {
		return err
	}
	if n <= MaxFastDims {
		return copyRectFast(dst, dstMeta, dstLo, src, srcMeta, srcLo, srcHi, step)
	}
	st := step
	if st == nil {
		st = make([]int, n)
		for i := range st {
			st[i] = 1
		}
	}
	cnt := make([]int, n)
	dstHi := make([]int, n)
	for i := 0; i < n; i++ {
		cnt[i] = (srcHi[i] - srcLo[i] + st[i] - 1) / st[i]
		dstHi[i] = dstLo[i] + (cnt[i]-1)*st[i] + 1
	}
	if err := grid.CheckStridedRect(dstLo, dstHi, st, dstMeta.LocalDims); err != nil {
		return err
	}
	sStr := grid.Strides(srcMeta.LocalDimsPlus, srcMeta.Indexing)
	dStr := grid.Strides(dstMeta.LocalDimsPlus, dstMeta.Indexing)
	sBase, dBase := 0, 0
	for i := 0; i < n; i++ {
		sBase += (srcLo[i] + srcMeta.Borders[2*i]) * sStr[i]
		dBase += (dstLo[i] + dstMeta.Borders[2*i]) * dStr[i]
		sStr[i] *= st[i]
		dStr[i] *= st[i]
	}
	zero := make([]int, n)
	return grid.ForEachRect(zero, cnt, func(idx []int, _ int) error {
		so, do := sBase, dBase
		for i := range idx {
			so += idx[i] * sStr[i]
			do += idx[i] * dStr[i]
		}
		dst.SetFloat(do, src.GetFloat(so))
		return nil
	})
}

// copyRectFast is CopyRect specialised to at most MaxFastDims
// dimensions: all scratch lives in fixed-size stack arrays and a dual
// odometer advances both sections' storage offsets incrementally, so
// the copy performs no heap allocation. The source bounds are already
// validated; the destination bounds are validated here from the lattice
// counts.
func copyRectFast(dst *Section, dstMeta *Meta, dstLo []int, src *Section, srcMeta *Meta, srcLo, srcHi, step []int) error {
	n := len(srcLo)
	if step == nil {
		step = denseStep[:n]
	}
	var dstHi [MaxFastDims]int
	var cnt, sStride, dStride, pos [MaxFastDims]int
	for i := 0; i < n; i++ {
		cnt[i] = (srcHi[i] - srcLo[i] + step[i] - 1) / step[i]
		dstHi[i] = dstLo[i] + (cnt[i]-1)*step[i] + 1
	}
	if err := grid.CheckStridedRect(dstLo, dstHi[:n], step, dstMeta.LocalDims); err != nil {
		return err
	}
	var sPlus, dPlus [MaxFastDims]int
	for i := 0; i < n; i++ {
		sPlus[i] = srcMeta.LocalDimsPlus[i]
		dPlus[i] = dstMeta.LocalDimsPlus[i]
	}
	fill := func(strides *[MaxFastDims]int, plus *[MaxFastDims]int, ix grid.Indexing) {
		st := 1
		if ix == grid.RowMajor {
			for i := n - 1; i >= 0; i-- {
				strides[i] = st
				st *= plus[i]
			}
		} else {
			for i := 0; i < n; i++ {
				strides[i] = st
				st *= plus[i]
			}
		}
	}
	fill(&sStride, &sPlus, srcMeta.Indexing)
	fill(&dStride, &dPlus, dstMeta.Indexing)
	sOff, dOff := 0, 0
	for i := 0; i < n; i++ {
		sOff += (srcLo[i] + srcMeta.Borders[2*i]) * sStride[i]
		dOff += (dstLo[i] + dstMeta.Borders[2*i]) * dStride[i]
		sStride[i] *= step[i]
		dStride[i] *= step[i]
	}
	last := n - 1
	run := cnt[last]
	contiguous := srcMeta.Indexing == grid.RowMajor && dstMeta.Indexing == grid.RowMajor &&
		src.Type == Double && dst.Type == Double && step[last] == 1
	for {
		if contiguous {
			copy(dst.F[dOff:dOff+run], src.F[sOff:sOff+run])
		} else {
			so, do := sOff, dOff
			for j := 0; j < run; j++ {
				dst.SetFloat(do, src.GetFloat(so))
				so += sStride[last]
				do += dStride[last]
			}
		}
		i := last - 1
		for ; i >= 0; i-- {
			pos[i]++
			sOff += sStride[i]
			dOff += dStride[i]
			if pos[i] < cnt[i] {
				break
			}
			sOff -= cnt[i] * sStride[i]
			dOff -= cnt[i] * dStride[i]
			pos[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// CopyOffsets copies the elements at the paired storage offsets of a
// transfer-schedule Set between two sections on the same process:
// source element srcOffs[i] moves to destination element dstOffs[i], in
// order (last writer wins on repeated destinations). Offsets are
// bounds-checked against both sections; the copy performs no heap
// allocation. Element types may differ (values convert).
func CopyOffsets(dst, src *Section, dstOffs, srcOffs []int) error {
	if len(dstOffs) != len(srcOffs) {
		return fmt.Errorf("darray: %d destination offsets for %d source offsets", len(dstOffs), len(srcOffs))
	}
	sn, dn := src.Len(), dst.Len()
	for i := range srcOffs {
		if srcOffs[i] < 0 || srcOffs[i] >= sn {
			return fmt.Errorf("darray: copy offset %d outside source section of %d elements", srcOffs[i], sn)
		}
		if dstOffs[i] < 0 || dstOffs[i] >= dn {
			return fmt.Errorf("darray: copy offset %d outside destination section of %d elements", dstOffs[i], dn)
		}
	}
	if src.Type == Double && dst.Type == Double {
		for i, off := range srcOffs {
			dst.F[dstOffs[i]] = src.F[off]
		}
		return nil
	}
	for i, off := range srcOffs {
		dst.SetFloat(dstOffs[i], src.GetFloat(off))
	}
	return nil
}

// StridedShare describes one owner's holding of a strided-rectangle
// request as arithmetic progressions rather than materialized offsets:
// the owner's piece is the interior-local strided rectangle
// (Lo, Hi, Step), and element t (per-dimension t[i], row-major) of that
// piece sits at position PosLo[i] + t[i]*PosStep[i] of the request
// lattice. It is the compact descriptor of the cyclic rectangle path —
// a coordinator sends O(ndims) bounds instead of O(k) offset vectors.
type StridedShare struct {
	Proc           int
	Slot           int   // grid slot of the owning section
	Lo, Hi, Step   []int // interior-local strided rectangle at the owner
	PosLo, PosStep []int // placement of the piece on the request lattice
}

// dimShare is one dimension's owner progression inside StridedShares:
// the cell, its local strided run, and the run's placement on the
// request lattice along that dimension.
type dimShare struct {
	cell           int
	lo, hi, step   int
	posLo, posStep int
}

// StridedShares splits the lattice of the strided rectangle
// (lo, hi, step) — dense when step is nil — by owner, each owner's
// piece expressed as a strided local rectangle plus its placement on
// the request lattice. That representation exists exactly when every
// dimension maps the request lattice onto each cell as an arithmetic
// progression: block dimensions (clamped runs, posStep 1) and width-1
// cyclic dimensions (residue progressions with period
// GridDims/gcd(step, GridDims)) qualify; a block-cyclic dimension of
// width > 1 over several cells does not, and the call reports ok=false
// so callers fall back to OwnerLattice. Shares appear in row-major cell
// order; every lattice point lies in exactly one share.
func (m *Meta) StridedShares(lo, hi, step []int) (shares []StridedShare, ok bool, err error) {
	if step == nil {
		err = grid.CheckRect(lo, hi, m.Dims)
	} else {
		err = grid.CheckStridedRect(lo, hi, step, m.Dims)
	}
	if err != nil {
		return nil, false, err
	}
	n := m.NDims()
	for i := 0; i < n; i++ {
		if m.Dists != nil && m.GridDims[i] > 1 && m.Dists[i].Kind != grid.DistBlock && m.Dists[i].B > 1 {
			return nil, false, nil // block-cyclic holdings are not single progressions
		}
	}
	dims := make([][]dimShare, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		st := 1
		if step != nil {
			st = step[i]
		}
		cnt := (hi[i] - lo[i] + st - 1) / st
		if m.Dists != nil && m.GridDims[i] > 1 && m.Dists[i].Kind != grid.DistBlock {
			dims[i] = cyclicDimShares(lo[i], st, cnt, m.GridDims[i])
		} else {
			dims[i] = blockDimShares(lo[i], st, cnt, m.LocalDims[i], m.Dims[i])
		}
		counts[i] = len(dims[i])
	}
	shares = make([]StridedShare, 0, grid.Size(counts))
	idx := make([]int, n)
	cells := make([]int, n)
	for {
		sh := StridedShare{
			Lo: make([]int, n), Hi: make([]int, n), Step: make([]int, n),
			PosLo: make([]int, n), PosStep: make([]int, n),
		}
		for i := 0; i < n; i++ {
			ds := dims[i][idx[i]]
			cells[i] = ds.cell
			sh.Lo[i], sh.Hi[i], sh.Step[i] = ds.lo, ds.hi, ds.step
			sh.PosLo[i], sh.PosStep[i] = ds.posLo, ds.posStep
		}
		slot, err := grid.ProcSlot(cells, m.GridDims, m.GridIndexing)
		if err != nil {
			return nil, false, err
		}
		sh.Proc = m.Procs[slot]
		sh.Slot = slot
		shares = append(shares, sh)
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < counts[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return shares, true, nil
		}
	}
}

// cyclicDimShares computes the per-cell progressions of the lattice
// {lo + j*st : 0 <= j < cnt} along one width-1 cyclic dimension of p
// cells. The lattice visits cells with period p/gcd(st, p); a cell
// holding any point holds every period-th lattice point from its first,
// and consecutive held points are st/gcd(st, p) apart in local storage
// (their global distance is the multiple st*p/gcd of p).
func cyclicDimShares(lo, st, cnt, p int) []dimShare {
	d := gcd(st, p)
	period := p / d
	out := make([]dimShare, 0, period)
	for c := 0; c < p; c++ {
		j0 := -1
		for j := 0; j < period; j++ {
			if (lo+j*st)%p == c {
				j0 = j
				break
			}
		}
		if j0 < 0 || j0 >= cnt {
			continue
		}
		k := (cnt-1-j0)/period + 1
		lLo := (lo + j0*st) / p
		lStep := st / d
		out = append(out, dimShare{
			cell: c, lo: lLo, hi: lLo + (k-1)*lStep + 1, step: lStep,
			posLo: j0, posStep: period,
		})
	}
	return out
}

// blockDimShares computes the per-cell runs of the lattice
// {lo + j*st : 0 <= j < cnt} along one block dimension of cell width b
// and extent n (the trailing cell possibly truncated): each touched
// cell holds a contiguous stretch of consecutive lattice points.
func blockDimShares(lo, st, cnt, b, n int) []dimShare {
	last := lo + (cnt-1)*st
	out := make([]dimShare, 0, last/b-lo/b+1)
	for c := lo / b; c <= last/b; c++ {
		cellLo, cellHi := c*b, (c+1)*b
		if cellHi > n {
			cellHi = n
		}
		jFirst := 0
		if cellLo > lo {
			jFirst = (cellLo - lo + st - 1) / st
		}
		jLast := (cellHi - 1 - lo) / st
		if jLast > cnt-1 {
			jLast = cnt - 1
		}
		if jFirst > jLast {
			continue // the stride skips this cell entirely
		}
		lLo := lo + jFirst*st - cellLo
		k := jLast - jFirst + 1
		out = append(out, dimShare{
			cell: c, lo: lLo, hi: lLo + (k-1)*st + 1, step: st,
			posLo: jFirst, posStep: 1,
		})
	}
	return out
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
