package darray

import (
	"reflect"
	"testing"

	"repro/internal/grid"
)

// sectionCase describes one bordered-section layout to exercise.
type sectionCase struct {
	name      string
	localDims []int
	borders   []int
	ix        grid.Indexing
	typ       ElemType
}

func sectionCases() []sectionCase {
	return []sectionCase{
		{"1d/plain", []int{8}, []int{0, 0}, grid.RowMajor, Double},
		{"1d/bordered", []int{8}, []int{2, 1}, grid.RowMajor, Double},
		{"2d/row", []int{4, 6}, []int{0, 0, 0, 0}, grid.RowMajor, Double},
		{"2d/row/bordered", []int{4, 6}, []int{1, 1, 2, 2}, grid.RowMajor, Double},
		{"2d/col/bordered", []int{4, 6}, []int{1, 0, 0, 2}, grid.ColMajor, Double},
		{"2d/int/bordered", []int{4, 6}, []int{1, 1, 1, 1}, grid.RowMajor, Int},
		{"3d/row", []int{2, 3, 4}, []int{0, 1, 1, 0, 2, 0}, grid.RowMajor, Double},
		{"3d/col", []int{2, 3, 4}, []int{1, 1, 0, 0, 0, 1}, grid.ColMajor, Int},
	}
}

// TestSectionBlockRoundTrip writes a pattern per element through
// StorageOffset, reads it back with ReadBlock, then overwrites a
// sub-rectangle with WriteBlock and re-checks every element — bulk and
// per-element paths must agree exactly, and borders must stay untouched.
func TestSectionBlockRoundTrip(t *testing.T) {
	for _, c := range sectionCases() {
		t.Run(c.name, func(t *testing.T) {
			plus, err := DimsPlus(c.localDims, c.borders)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSection(c.typ, grid.Size(plus))
			// Mark every storage cell (borders included) with a sentinel.
			for off := 0; off < s.Len(); off++ {
				s.SetFloat(off, -1)
			}
			value := func(idx []int) float64 {
				v := 0.0
				for _, x := range idx {
					v = 100*v + float64(x+1)
				}
				return v
			}
			n := grid.Size(c.localDims)
			for lin := 0; lin < n; lin++ {
				idx, err := grid.Unflatten(lin, c.localDims, c.ix)
				if err != nil {
					t.Fatal(err)
				}
				off, err := StorageOffset(idx, c.localDims, c.borders, c.ix)
				if err != nil {
					t.Fatal(err)
				}
				s.SetFloat(off, value(idx))
			}

			// Bulk read of the whole interior matches the per-element pattern.
			lo := make([]int, len(c.localDims))
			vals, err := s.ReadBlock(lo, c.localDims, c.localDims, c.borders, c.ix)
			if err != nil {
				t.Fatal(err)
			}
			if err := grid.ForEachRect(lo, c.localDims, func(idx []int, k int) error {
				if vals[k] != value(idx) {
					t.Fatalf("ReadBlock[%v] = %v, want %v", idx, vals[k], value(idx))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Bulk write of a sub-rectangle, then per-element verification.
			subLo := make([]int, len(c.localDims))
			subHi := make([]int, len(c.localDims))
			for i, d := range c.localDims {
				subLo[i] = d / 4
				subHi[i] = d - d/4
			}
			sub := make([]float64, grid.RectSize(subLo, subHi))
			for i := range sub {
				sub[i] = float64(1000 + i)
			}
			if err := s.WriteBlock(sub, subLo, subHi, c.localDims, c.borders, c.ix); err != nil {
				t.Fatal(err)
			}
			inSub := func(idx []int) (int, bool) {
				pos := 0
				for i := range idx {
					if idx[i] < subLo[i] || idx[i] >= subHi[i] {
						return 0, false
					}
					pos = pos*(subHi[i]-subLo[i]) + (idx[i] - subLo[i])
				}
				return pos, true
			}
			if err := grid.ForEachRect(lo, c.localDims, func(idx []int, k int) error {
				off, err := StorageOffset(idx, c.localDims, c.borders, c.ix)
				if err != nil {
					return err
				}
				want := value(idx)
				if pos, ok := inSub(idx); ok {
					want = float64(1000 + pos)
					if c.typ == Int {
						want = float64(int64(want))
					}
				}
				if got := s.GetFloat(off); got != want {
					t.Fatalf("element %v = %v after WriteBlock, want %v", idx, got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Borders still carry the sentinel: block ops never touch them.
			interior := make(map[int]bool, n)
			for lin := 0; lin < n; lin++ {
				idx, _ := grid.Unflatten(lin, c.localDims, c.ix)
				off, _ := StorageOffset(idx, c.localDims, c.borders, c.ix)
				interior[off] = true
			}
			for off := 0; off < s.Len(); off++ {
				if !interior[off] && s.GetFloat(off) != -1 {
					t.Fatalf("border cell %d modified: %v", off, s.GetFloat(off))
				}
			}
		})
	}
}

func TestSectionBlockErrors(t *testing.T) {
	s := NewSection(Double, 8)
	localDims := []int{8}
	borders := []int{0, 0}
	if _, err := s.ReadBlock([]int{0}, []int{9}, localDims, borders, grid.RowMajor); err == nil {
		t.Fatal("out-of-range ReadBlock accepted")
	}
	if _, err := s.ReadBlock([]int{4}, []int{4}, localDims, borders, grid.RowMajor); err == nil {
		t.Fatal("empty ReadBlock accepted")
	}
	if err := s.WriteBlock([]float64{1, 2}, []int{0}, []int{3}, localDims, borders, grid.RowMajor); err == nil {
		t.Fatal("short WriteBlock buffer accepted")
	}
}

// TestOwnerBlocksPartition checks that OwnerBlocks splits a rectangle into
// disjoint, covering pieces whose processors and offsets agree with the
// per-element Owner resolution.
func TestOwnerBlocksPartition(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		meta := &Meta{
			ID:            ID{Proc: 0, Seq: 0},
			Type:          Double,
			Dims:          []int{8, 6},
			Procs:         []int{3, 1, 4, 7, 9, 2, 6, 5},
			GridDims:      []int{4, 2},
			LocalDims:     []int{2, 3},
			Borders:       []int{1, 0, 0, 1},
			LocalDimsPlus: []int{3, 4},
			Indexing:      ix,
			GridIndexing:  ix,
		}
		lo, hi := []int{1, 1}, []int{7, 6}
		blocks, err := meta.OwnerBlocks(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, b := range blocks {
			if err := grid.ForEachRect(b.GlobalLo, b.GlobalHi, func(gidx []int, k int) error {
				covered++
				wantProc, _, err := meta.Owner(gidx)
				if err != nil {
					return err
				}
				if b.Proc != wantProc {
					t.Fatalf("%v: index %v in block of proc %d, Owner says %d", ix, gidx, b.Proc, wantProc)
				}
				// The local rectangle is the global one translated by the
				// cell origin.
				for i := range gidx {
					rel := gidx[i] - b.GlobalLo[i]
					lidx := b.LocalLo[i] + rel
					if lidx < 0 || lidx >= meta.LocalDims[i] {
						t.Fatalf("local index %d out of range in dim %d", lidx, i)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if covered != grid.RectSize(lo, hi) {
			t.Fatalf("%v: blocks cover %d of %d elements", ix, covered, grid.RectSize(lo, hi))
		}
	}
}

func TestOwnerBlocksErrors(t *testing.T) {
	meta := &Meta{
		Dims: []int{4}, Procs: []int{0, 1}, GridDims: []int{2},
		LocalDims: []int{2}, Borders: []int{0, 0}, LocalDimsPlus: []int{2},
	}
	if _, err := meta.OwnerBlocks([]int{0}, []int{5}); err == nil {
		t.Fatal("out-of-range rectangle accepted")
	}
	if _, err := meta.OwnerBlocks([]int{2}, []int{2}); err == nil {
		t.Fatal("empty rectangle accepted")
	}
	blocks, err := meta.OwnerBlocks([]int{1}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("expected 2 owner blocks, got %d", len(blocks))
	}
	if !reflect.DeepEqual(blocks[0].LocalLo, []int{1}) || !reflect.DeepEqual(blocks[0].LocalHi, []int{2}) {
		t.Fatalf("block 0 local rect [%v,%v)", blocks[0].LocalLo, blocks[0].LocalHi)
	}
}

// TestReadBlockIntoAgreesWithReadBlock checks the buffer-reuse section
// read against the allocating one across every section layout, and pins
// it at zero allocations per call.
func TestReadBlockIntoAgreesWithReadBlock(t *testing.T) {
	for _, c := range sectionCases() {
		t.Run(c.name, func(t *testing.T) {
			plus, err := DimsPlus(c.localDims, c.borders)
			if err != nil {
				t.Fatal(err)
			}
			sec := NewSection(c.typ, grid.Size(plus))
			for i := 0; i < sec.Len(); i++ {
				sec.SetFloat(i, float64(2*i+1))
			}
			lo := make([]int, len(c.localDims))
			hi := c.localDims
			want, err := sec.ReadBlock(lo, hi, c.localDims, c.borders, c.ix)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, grid.Size(c.localDims))
			if err := sec.ReadBlockInto(dst, lo, hi, c.localDims, c.borders, c.ix); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dst, want) {
				t.Fatalf("ReadBlockInto = %v, want %v", dst, want)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := sec.ReadBlockInto(dst, lo, hi, c.localDims, c.borders, c.ix); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Errorf("ReadBlockInto: %v allocs/op, want 0", allocs)
			}
			// Wrong-sized buffers are rejected.
			if err := sec.ReadBlockInto(dst[:1], lo, hi, c.localDims, c.borders, c.ix); err == nil {
				t.Error("short buffer must fail")
			}
		})
	}
}

// TestLocalRect checks the allocation-free wholly-local ownership test
// against OwnerBlocks, the authoritative rectangle splitter.
func TestLocalRect(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		meta := &Meta{
			ID:            ID{Proc: 0, Seq: 0},
			Type:          Double,
			Dims:          []int{12, 8},
			Procs:         []int{3, 1, 4, 2, 9, 7}, // 6 supplied, grid uses 6
			GridDims:      []int{3, 2},
			LocalDims:     []int{4, 4},
			Borders:       []int{1, 0, 0, 2},
			LocalDimsPlus: []int{5, 6},
			Indexing:      ix,
			GridIndexing:  ix,
		}
		rects := [][2][]int{
			{{0, 0}, {4, 4}},  // exactly one cell
			{{1, 5}, {3, 8}},  // inside a cell
			{{0, 0}, {12, 8}}, // whole array (spans owners)
			{{3, 3}, {5, 5}},  // straddles cells
			{{8, 4}, {12, 8}}, // last cell
			{{4, 0}, {8, 4}},  // middle cell
		}
		for _, r := range rects {
			lo, hi := r[0], r[1]
			blocks, err := meta.OwnerBlocks(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			for _, proc := range meta.Procs {
				dstLo := make([]int, 2)
				dstHi := make([]int, 2)
				got := meta.LocalRect(proc, lo, hi, dstLo, dstHi)
				want := len(blocks) == 1 && blocks[0].Proc == proc
				if got != want {
					t.Fatalf("ix=%v rect [%v,%v) proc %d: LocalRect = %v, want %v", ix, lo, hi, proc, got, want)
				}
				if got {
					if !reflect.DeepEqual(dstLo, blocks[0].LocalLo) || !reflect.DeepEqual(dstHi, blocks[0].LocalHi) {
						t.Fatalf("ix=%v rect [%v,%v): local bounds [%v,%v), want [%v,%v)",
							ix, lo, hi, dstLo, dstHi, blocks[0].LocalLo, blocks[0].LocalHi)
					}
				}
			}
			// A processor holding no section never owns a rectangle.
			if meta.LocalRect(0, lo, hi, make([]int, 2), make([]int, 2)) {
				t.Fatalf("processor without a section claimed rect [%v,%v)", lo, hi)
			}
		}
	}
}
