package darray

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// The transfer-schedule property harness: whatever pair of layouts the
// schedule spans, applying its pieces with the owner-side copy kernels
// must land every lattice point of the source rectangle at its
// destination position, and touch nothing else.

// sectionsFor allocates one local section per processor of the array.
func sectionsFor(m *Meta) map[int]*Section {
	out := make(map[int]*Section, len(m.Procs))
	for _, p := range m.Procs {
		out[p] = NewSection(m.Type, m.LocalStorageSize())
	}
	return out
}

// fillGlobal writes encode(g) to every global index of the array.
func fillGlobal(t *testing.T, m *Meta, secs map[int]*Section, encode func([]int) float64) {
	t.Helper()
	strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
	idx := make([]int, m.NDims())
	var walk func(d int)
	walk = func(d int) {
		if d == len(idx) {
			slot, off, ok := m.ResolveIndex(idx, strides)
			if !ok {
				t.Fatalf("unresolvable index %v", idx)
			}
			secs[m.Procs[slot]].SetFloat(off, encode(idx))
			return
		}
		for i := 0; i < m.Dims[d]; i++ {
			idx[d] = i
			walk(d + 1)
		}
	}
	walk(0)
}

// applySchedule runs every pair of the schedule through the owner-side
// copy kernels, exactly as the redistribution plane's same-process pairs
// and shipped pieces do.
func applySchedule(t *testing.T, sched *Schedule, dst *Meta, dstSecs map[int]*Section, src *Meta, srcSecs map[int]*Section) {
	t.Helper()
	for _, pb := range sched.Blocks {
		err := CopyRect(dstSecs[pb.DstProc], dst, pb.DstLo, srcSecs[pb.SrcProc], src, pb.SrcLo, pb.SrcHi, sched.Step)
		if err != nil {
			t.Fatalf("CopyRect(%+v): %v", pb, err)
		}
	}
	for _, ps := range sched.Sets {
		if len(ps.SrcOffs) == 0 || len(ps.SrcOffs) != len(ps.DstOffs) {
			t.Fatalf("malformed pair set: %d src offsets, %d dst offsets", len(ps.SrcOffs), len(ps.DstOffs))
		}
		if err := CopyOffsets(dstSecs[ps.DstProc], srcSecs[ps.SrcProc], ps.DstOffs, ps.SrcOffs); err != nil {
			t.Fatalf("CopyOffsets: %v", err)
		}
	}
}

// redistLayouts is the layout sweep of the schedule tests: all three
// distribution kinds, uneven trailing blocks, subset/star dimensions and
// both indexing orders appear.
func redistLayouts(t *testing.T, dims []int) map[string]*Meta {
	t.Helper()
	switch len(dims) {
	case 1:
		return map[string]*Meta{
			"block":       metaForDist(t, dims, []int{4}, []grid.Decomp{grid.BlockDefault()}, []int{0, 0}, grid.RowMajor),
			"cyclic":      metaForDist(t, dims, []int{4}, []grid.Decomp{grid.CyclicDefault()}, []int{0, 0}, grid.RowMajor),
			"blockcyclic": metaForDist(t, dims, []int{3}, []grid.Decomp{grid.BlockCyclicOf(3)}, []int{1, 2}, grid.RowMajor),
		}
	case 2:
		return map[string]*Meta{
			"block-star": metaForDist(t, dims, []int{4, 1},
				[]grid.Decomp{grid.BlockOf(4), grid.NoDecomp()}, []int{0, 0, 0, 0}, grid.RowMajor),
			"star-cyclic": metaForDist(t, dims, []int{1, 3},
				[]grid.Decomp{grid.NoDecomp(), grid.CyclicOf(3)}, []int{0, 0, 0, 0}, grid.ColMajor),
			"cyclic-block": metaForDist(t, dims, []int{2, 2},
				[]grid.Decomp{grid.CyclicOf(2), grid.BlockOf(2)}, []int{1, 0, 0, 1}, grid.RowMajor),
			"blockcyclic-block": metaForDist(t, dims, []int{3, 2},
				[]grid.Decomp{grid.BlockCyclicOf(2), grid.BlockOf(2)}, []int{0, 0, 0, 0}, grid.RowMajor),
		}
	default:
		t.Fatalf("unsupported rank %d", len(dims))
		return nil
	}
}

// TestTransferScheduleCompleteness drives every ordered pair of layouts
// (regular×regular through the block path, every other mix through the
// offset-set path) with random dense and strided rectangles and checks
// element-for-element delivery.
func TestTransferScheduleCompleteness(t *testing.T) {
	for _, dims := range [][]int{{29}, {11, 10}} {
		encode := func(g []int) float64 {
			v := 1.0
			for i := range g {
				v = v*64 + float64(g[i])
			}
			return v
		}
		layouts := redistLayouts(t, dims)
		rng := rand.New(rand.NewSource(int64(len(dims))))
		for sname, src := range layouts {
			for dname, dst := range layouts {
				for trial := 0; trial < 6; trial++ {
					// A random lattice that fits both arrays at independent
					// random origins.
					n := len(dims)
					cnt := make([]int, n)
					srcLo := make([]int, n)
					dstLo := make([]int, n)
					step := make([]int, n)
					strided := trial%2 == 1
					for i := 0; i < n; i++ {
						step[i] = 1
						if strided {
							step[i] = 1 + rng.Intn(3)
						}
						maxSpan := dims[i] // both arrays share global dims here
						cnt[i] = 1 + rng.Intn((maxSpan-1)/step[i]+1)
						span := (cnt[i]-1)*step[i] + 1
						srcLo[i] = rng.Intn(dims[i] - span + 1)
						dstLo[i] = rng.Intn(dims[i] - span + 1)
					}
					// TransferSchedule takes dims as lattice extents, not
					// point counts: extent = (cnt-1)*step + 1 rounded to the
					// request convention hi-lo.
					ext := make([]int, n)
					for i := 0; i < n; i++ {
						ext[i] = (cnt[i]-1)*step[i] + 1
					}
					var stepArg []int
					if strided {
						stepArg = step
					}
					sched, err := dst.TransferSchedule(src, dstLo, srcLo, ext, stepArg)
					if err != nil {
						t.Fatalf("%s->%s: TransferSchedule: %v", sname, dname, err)
					}
					if src.Regular() && dst.Regular() {
						if len(sched.Sets) != 0 {
							t.Fatalf("%s->%s: regular pair produced %d offset sets", sname, dname, len(sched.Sets))
						}
					} else if len(sched.Blocks) != 0 {
						t.Fatalf("%s->%s: irregular pair produced %d blocks", sname, dname, len(sched.Blocks))
					}
					srcSecs := sectionsFor(src)
					dstSecs := sectionsFor(dst)
					fillGlobal(t, src, srcSecs, encode)
					for _, s := range dstSecs {
						for i := 0; i < s.Len(); i++ {
							s.SetFloat(i, -1)
						}
					}
					applySchedule(t, sched, dst, dstSecs, src, srcSecs)
					// Every lattice point must have landed; everything else
					// must still be the sentinel.
					want := make(map[int]map[int]float64) // proc -> off -> value
					dStrides := grid.Strides(dst.LocalDimsPlus, dst.Indexing)
					gSrc := make([]int, n)
					gDst := make([]int, n)
					zero := make([]int, n)
					err = grid.ForEachStridedRect(zero, ext, step, func(off []int, _ int) error {
						for i := range off {
							gSrc[i] = srcLo[i] + off[i]
							gDst[i] = dstLo[i] + off[i]
						}
						slot, o, ok := dst.ResolveIndex(gDst, dStrides)
						if !ok {
							t.Fatalf("unresolvable destination %v", gDst)
						}
						p := dst.Procs[slot]
						if want[p] == nil {
							want[p] = make(map[int]float64)
						}
						want[p][o] = encode(gSrc)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					for p, s := range dstSecs {
						for off := 0; off < s.Len(); off++ {
							v := s.GetFloat(off)
							if w, hit := want[p][off]; hit {
								if v != w {
									t.Fatalf("%s->%s trial %d: proc %d off %d = %v, want %v", sname, dname, trial, p, off, v, w)
								}
							} else if v != -1 {
								t.Fatalf("%s->%s trial %d: proc %d off %d clobbered to %v", sname, dname, trial, p, off, v)
							}
						}
					}
				}
			}
		}
	}
}

// TestTransferScheduleErrors pins schedule validation: rank mismatches
// and out-of-bounds rectangles are rejected.
func TestTransferScheduleErrors(t *testing.T) {
	a := metaForDist(t, []int{16}, []int{4}, []grid.Decomp{grid.BlockDefault()}, []int{0, 0}, grid.RowMajor)
	b := metaForDist(t, []int{16, 4}, []int{4, 1},
		[]grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}, []int{0, 0, 0, 0}, grid.RowMajor)
	if _, err := a.TransferSchedule(b, []int{0}, []int{0, 0}, []int{4}, nil); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := a.TransferSchedule(a, []int{8}, []int{0}, []int{12}, nil); err == nil {
		t.Error("destination rectangle past the extent accepted")
	}
	if _, err := a.TransferSchedule(a, []int{0}, []int{0}, []int{8}, []int{0}); err == nil {
		t.Error("zero step accepted")
	}
}

// TestStridedSharesMatchOwnerLattice checks the descriptor split against
// the materialized offset sets point for point: enumerating each share's
// local lattice and placement must reproduce exactly the (proc, offset,
// position) triples OwnerLattice produces.
func TestStridedSharesMatchOwnerLattice(t *testing.T) {
	for name, m := range distMetas(t, grid.RowMajor) {
		blockCyclic := false
		for i, d := range m.ResolvedDists() {
			if d.Kind == grid.DistBlockCyclic && m.GridDims[i] > 1 && d.B > 1 {
				blockCyclic = true
			}
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 8; trial++ {
			lo, hi, step := randomDistRect(rng, m.Dims)
			var stepArg []int
			if trial%2 == 1 {
				stepArg = step
			}
			shares, ok, err := m.StridedShares(lo, hi, stepArg)
			if err != nil {
				t.Fatalf("%s: StridedShares(%v,%v,%v): %v", name, lo, hi, stepArg, err)
			}
			if blockCyclic {
				if ok {
					t.Fatalf("%s: block-cyclic layout reported descriptor-eligible", name)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s: progression layout reported ineligible", name)
			}
			sets, err := m.OwnerLattice(lo, hi, stepArg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[int]map[int]int) // proc -> position -> offset
			for _, s := range sets {
				pm := make(map[int]int, len(s.Offs))
				for i, off := range s.Offs {
					pm[s.Pos[i]] = off
				}
				want[s.Proc] = pm
			}
			sdims := grid.RectDims(lo, hi)
			if stepArg != nil {
				sdims = grid.StridedRectDims(lo, hi, stepArg)
			}
			got := make(map[int]map[int]int)
			strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
			n := m.NDims()
			for _, sh := range shares {
				pm := got[sh.Proc]
				if pm == nil {
					pm = make(map[int]int)
					got[sh.Proc] = pm
				}
				cnt := make([]int, n)
				for i := 0; i < n; i++ {
					cnt[i] = (sh.Hi[i] - sh.Lo[i] + sh.Step[i] - 1) / sh.Step[i]
				}
				zero := make([]int, n)
				lidx := make([]int, n)
				pidx := make([]int, n)
				err := grid.ForEachRect(zero, cnt, func(idx []int, _ int) error {
					off := 0
					for i := range idx {
						lidx[i] = sh.Lo[i] + idx[i]*sh.Step[i]
						pidx[i] = sh.PosLo[i] + idx[i]*sh.PosStep[i]
						off += (lidx[i] + m.Borders[2*i]) * strides[i]
					}
					pos, err := grid.Flatten(pidx, sdims, grid.RowMajor)
					if err != nil {
						return err
					}
					if old, dup := pm[pos]; dup {
						t.Fatalf("%s: position %d claimed twice (offsets %d, %d)", name, pos, old, off)
					}
					pm[pos] = off
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for proc, pm := range want {
				gm := got[proc]
				if len(gm) != len(pm) {
					t.Fatalf("%s: proc %d holds %d positions via shares, %d via offset sets", name, proc, len(gm), len(pm))
				}
				for pos, off := range pm {
					if gm[pos] != off {
						t.Fatalf("%s: proc %d position %d -> offset %d via shares, %d via offset sets", name, proc, pos, gm[pos], off)
					}
				}
			}
			for proc := range got {
				if _, okp := want[proc]; !okp && len(got[proc]) > 0 {
					t.Fatalf("%s: shares invented holdings on proc %d", name, proc)
				}
			}
		}
	}
}

// TestCopyRectConverts exercises the allocating >MaxFastDims dispatch
// indirectly by crossing element types and indexing orders through the
// fast path (conversion and non-contiguous walks).
func TestCopyRectConverts(t *testing.T) {
	src := metaForDist(t, []int{6, 4}, []int{1, 1},
		[]grid.Decomp{grid.NoDecomp(), grid.NoDecomp()}, []int{0, 0, 0, 0}, grid.RowMajor)
	dst := metaForDist(t, []int{6, 4}, []int{1, 1},
		[]grid.Decomp{grid.NoDecomp(), grid.NoDecomp()}, []int{1, 1, 0, 0}, grid.ColMajor)
	dst.Type = Int
	s := NewSection(Double, src.LocalStorageSize())
	d := NewSection(Int, dst.LocalStorageSize())
	for i := 0; i < s.Len(); i++ {
		s.SetFloat(i, float64(i)+0.5)
	}
	if err := CopyRect(d, dst, []int{1, 0}, s, src, []int{0, 1}, []int{5, 4}, []int{2, 1}); err != nil {
		t.Fatal(err)
	}
	strides := grid.Strides(dst.LocalDimsPlus, dst.Indexing)
	sStrides := grid.Strides(src.LocalDimsPlus, src.Indexing)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			sOff := (2*r)*sStrides[0] + (1+c)*sStrides[1]
			dOff := (1+2*r+dst.Borders[0])*strides[0] + c*strides[1]
			want := float64(int64(s.GetFloat(sOff))) // Int storage truncates
			if got := d.GetFloat(dOff); got != want {
				t.Fatalf("dst[%d,%d] = %v, want %v", 1+2*r, c, got, want)
			}
		}
	}
}

// TestCopyOffsetsBounds pins the kernel's bounds checks.
func TestCopyOffsetsBounds(t *testing.T) {
	a := NewSection(Double, 4)
	b := NewSection(Double, 4)
	if err := CopyOffsets(a, b, []int{0}, []int{4}); err == nil {
		t.Error("source offset out of bounds accepted")
	}
	if err := CopyOffsets(a, b, []int{-1}, []int{0}); err == nil {
		t.Error("negative destination offset accepted")
	}
	if err := CopyOffsets(a, b, []int{0, 1}, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// randomDistRect draws a random rectangle plus step fitting dims.
func randomDistRect(rng *rand.Rand, dims []int) (lo, hi, step []int) {
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	step = make([]int, len(dims))
	for i, d := range dims {
		lo[i] = rng.Intn(d)
		hi[i] = lo[i] + 1 + rng.Intn(d-lo[i])
		step[i] = 1 + rng.Intn(3)
	}
	return lo, hi, step
}
