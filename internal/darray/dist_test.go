package darray

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// metaForDist builds the Meta the array manager produces for dims
// distributed over gridDims with the given per-dimension specifications —
// including uneven trailing blocks and cyclic layouts the legacy metaFor
// helper (exact-divisible block) cannot express.
func metaForDist(t *testing.T, dims, gridDims []int, specs []grid.Decomp, borders []int, ix grid.Indexing) *Meta {
	t.Helper()
	dists, err := grid.ResolveDists(dims, gridDims, specs)
	if err != nil {
		t.Fatal(err)
	}
	localDims, err := grid.StorageDims(dims, gridDims, dists)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]int, grid.Size(gridDims))
	for i := range procs {
		procs[i] = 20 + 2*i // non-identity processor numbering
	}
	return &Meta{
		ID: ID{Proc: 0, Seq: 0}, Type: Double,
		Dims:      append([]int(nil), dims...),
		Procs:     procs,
		GridDims:  append([]int(nil), gridDims...),
		Dists:     dists,
		LocalDims: localDims, Borders: append([]int(nil), borders...),
		LocalDimsPlus: plus,
		Indexing:      ix, GridIndexing: ix,
	}
}

// distMetas is the sweep of distributed layouts the tests below share:
// cyclic, block-cyclic, mixtures, and the uneven block shapes the
// divide-evenly restriction used to reject.
func distMetas(t *testing.T, ix grid.Indexing) map[string]*Meta {
	return map[string]*Meta{
		"1d/cyclic": metaForDist(t, []int{23}, []int{4},
			[]grid.Decomp{grid.CyclicDefault()}, []int{0, 0}, ix),
		"1d/blockcyclic": metaForDist(t, []int{17}, []int{3},
			[]grid.Decomp{grid.BlockCyclicOf(3)}, []int{1, 2}, ix),
		"1d/uneven-block": metaForDist(t, []int{10}, []int{4},
			[]grid.Decomp{grid.BlockOf(4)}, []int{0, 0}, ix),
		"2d/cyclic-block": metaForDist(t, []int{12, 10}, []int{3, 2},
			[]grid.Decomp{grid.CyclicOf(3), grid.BlockOf(2)}, []int{0, 1, 1, 0}, ix),
		"2d/blockcyclic-star": metaForDist(t, []int{14, 5}, []int{4, 1},
			[]grid.Decomp{grid.BlockCyclicOfN(2, 4), grid.NoDecomp()}, []int{0, 0, 0, 0}, ix),
		"2d/uneven-both": metaForDist(t, []int{7, 5}, []int{3, 2},
			[]grid.Decomp{grid.BlockOf(3), grid.BlockOf(2)}, []int{1, 0, 0, 1}, ix),
		"3d/mixed": metaForDist(t, []int{6, 7, 4}, []int{2, 2, 1},
			[]grid.Decomp{grid.CyclicOf(2), grid.BlockCyclicOfN(2, 2), grid.CyclicOf(1)}, []int{0, 0, 1, 1, 0, 0}, ix),
	}
}

// TestOwnerDistBijection checks the generalized Owner resolution: every
// global index maps to a distinct (processor, storage offset) pair on a
// processor that holds a section, with the offset inside the bordered
// storage; and LocalDimsOf counts partition the index space.
func TestOwnerDistBijection(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		for name, m := range distMetas(t, ix) {
			t.Run(name+"/"+ix.String(), func(t *testing.T) {
				type key struct{ proc, off int }
				seen := map[key]bool{}
				perProc := map[int]int{}
				lo := make([]int, m.NDims())
				if err := grid.ForEachRect(lo, m.Dims, func(gidx []int, _ int) error {
					proc, off, err := m.Owner(gidx)
					if err != nil {
						t.Fatalf("Owner(%v): %v", gidx, err)
					}
					if _, holds := m.HoldsSection(proc); !holds {
						t.Fatalf("Owner(%v) = proc %d, which holds no section", gidx, proc)
					}
					if off < 0 || off >= m.LocalStorageSize() {
						t.Fatalf("Owner(%v) offset %d outside storage %d", gidx, off, m.LocalStorageSize())
					}
					k := key{proc, off}
					if seen[k] {
						t.Fatalf("duplicate mapping at %v: %+v", gidx, k)
					}
					seen[k] = true
					perProc[proc]++
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				// LocalDimsOf agrees with the enumeration.
				for slot, proc := range m.SectionProcs() {
					local, err := m.LocalDimsOf(slot)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := perProc[proc], grid.Size(local); got != want {
						t.Fatalf("slot %d (proc %d): %d elements resolved, LocalDimsOf says %d (%v)",
							slot, proc, got, want, local)
					}
					for i, l := range local {
						if l > m.LocalDims[i] {
							t.Fatalf("slot %d: interior %v exceeds storage %v", slot, local, m.LocalDims)
						}
					}
				}
			})
		}
	}
}

// TestOwnerLatticeMatchesOwner checks the lattice owner-split against the
// scalar resolution on random dense and strided rectangles: positions
// partition the packed lattice exactly once, and each offset is what Owner
// reports for the corresponding point.
func TestOwnerLatticeMatchesOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		for name, m := range distMetas(t, ix) {
			t.Run(name+"/"+ix.String(), func(t *testing.T) {
				nd := m.NDims()
				for trial := 0; trial < 20; trial++ {
					lo := make([]int, nd)
					hi := make([]int, nd)
					var step []int
					for i, d := range m.Dims {
						lo[i] = rng.Intn(d)
						hi[i] = lo[i] + 1 + rng.Intn(d-lo[i])
					}
					size := grid.RectSize(lo, hi)
					if trial%2 == 1 {
						step = make([]int, nd)
						for i := range step {
							step[i] = 1 + rng.Intn(3)
						}
						size = grid.StridedRectSize(lo, hi, step)
					}
					sets, err := m.OwnerLattice(lo, hi, step)
					if err != nil {
						t.Fatal(err)
					}
					seenPos := make([]bool, size)
					total := 0
					for _, s := range sets {
						if len(s.Offs) != len(s.Pos) {
							t.Fatalf("set for proc %d: %d offs, %d pos", s.Proc, len(s.Offs), len(s.Pos))
						}
						total += len(s.Pos)
						for _, p := range s.Pos {
							if p < 0 || p >= size || seenPos[p] {
								t.Fatalf("position %d out of range or repeated", p)
							}
							seenPos[p] = true
						}
					}
					if total != size {
						t.Fatalf("sets cover %d of %d lattice points", total, size)
					}
					// Each point's (proc, off) matches Owner.
					wantOff := map[int][2]int{} // pos -> {proc, off}
					visit := func(idx []int, k int) error {
						proc, off, err := m.Owner(idx)
						if err != nil {
							return err
						}
						wantOff[k] = [2]int{proc, off}
						return nil
					}
					if step == nil {
						err = grid.ForEachRect(lo, hi, visit)
					} else {
						err = grid.ForEachStridedRect(lo, hi, step, visit)
					}
					if err != nil {
						t.Fatal(err)
					}
					for _, s := range sets {
						for j, p := range s.Pos {
							want := wantOff[p]
							if s.Proc != want[0] || s.Offs[j] != want[1] {
								t.Fatalf("pos %d: set says (%d,%d), Owner says (%d,%d)",
									p, s.Proc, s.Offs[j], want[0], want[1])
							}
						}
					}
				}
			})
		}
	}
}

// TestLocalRectDist checks the allocation-free wholly-local test on
// distributed layouts: it must return true exactly when every point of the
// rectangle resolves to the processor, with bounds that translate each
// point by a constant (the unit-slope map the fast-path copies rely on).
func TestLocalRectDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		for name, m := range distMetas(t, ix) {
			t.Run(name+"/"+ix.String(), func(t *testing.T) {
				nd := m.NDims()
				strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
				rects := make([][2][]int, 0, 40)
				for trial := 0; trial < 30; trial++ {
					lo := make([]int, nd)
					hi := make([]int, nd)
					for i, d := range m.Dims {
						lo[i] = rng.Intn(d)
						// Bias toward small extents so single-owner rects occur.
						hi[i] = lo[i] + 1 + rng.Intn(1+min(d-lo[i]-1, 2))
					}
					rects = append(rects, [2][]int{lo, hi})
				}
				for _, r := range rects {
					lo, hi := r[0], r[1]
					// Brute force: the set of owning processors.
					owners := map[int]bool{}
					_ = grid.ForEachRect(lo, hi, func(gidx []int, _ int) error {
						proc, _, err := m.Owner(gidx)
						if err != nil {
							t.Fatal(err)
						}
						owners[proc] = true
						return nil
					})
					dstLo := make([]int, nd)
					dstHi := make([]int, nd)
					for _, proc := range m.SectionProcs() {
						got := m.LocalRect(proc, lo, hi, dstLo, dstHi)
						want := len(owners) == 1 && owners[proc]
						if got != want {
							t.Fatalf("rect [%v,%v) proc %d: LocalRect = %v, want %v", lo, hi, proc, got, want)
						}
						if !got {
							continue
						}
						// The translated bounds address exactly the owned
						// storage: corner offsets match Owner's.
						checkCorner := func(gidx []int) {
							lidx := make([]int, nd)
							for i := range gidx {
								lidx[i] = dstLo[i] + (gidx[i] - lo[i])
							}
							off := 0
							for i := range lidx {
								off += (lidx[i] + m.Borders[2*i]) * strides[i]
							}
							_, wantOff, err := m.Owner(gidx)
							if err != nil {
								t.Fatal(err)
							}
							if off != wantOff {
								t.Fatalf("rect [%v,%v) point %v: translated offset %d, Owner %d", lo, hi, gidx, off, wantOff)
							}
						}
						checkCorner(lo)
						last := make([]int, nd)
						for i := range last {
							last[i] = hi[i] - 1
						}
						checkCorner(last)
					}
				}
			})
		}
	}
}

// TestOwnerBlocksUneven re-runs the partition check on shapes the
// divide-evenly restriction used to reject: uneven trailing blocks still
// split into disjoint covering rectangles that agree with Owner.
func TestOwnerBlocksUneven(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		m := metaForDist(t, []int{10, 7}, []int{4, 2},
			[]grid.Decomp{grid.BlockOf(4), grid.BlockOf(2)}, []int{1, 0, 0, 1}, ix)
		lo, hi := []int{0, 0}, []int{10, 7}
		blocks, err := m.OwnerBlocks(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, b := range blocks {
			if err := grid.ForEachRect(b.GlobalLo, b.GlobalHi, func(gidx []int, _ int) error {
				covered++
				wantProc, _, err := m.Owner(gidx)
				if err != nil {
					return err
				}
				if b.Proc != wantProc {
					t.Fatalf("%v: index %v in block of proc %d, Owner says %d", ix, gidx, b.Proc, wantProc)
				}
				for i := range gidx {
					lidx := b.LocalLo[i] + (gidx[i] - b.GlobalLo[i])
					if lidx < 0 || lidx >= m.LocalDims[i] {
						t.Fatalf("local index %d outside storage in dim %d", lidx, i)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if covered != grid.RectSize(lo, hi) {
			t.Fatalf("%v: blocks cover %d of %d elements", ix, covered, grid.RectSize(lo, hi))
		}
	}
}

// TestOwnerBlocksIrregular pins the contract: rectangle owner-splitting on
// a cyclic array reports ErrIrregular (coordinators then route through
// OwnerLattice), while cyclic over a 1-cell grid dimension stays regular.
func TestOwnerBlocksIrregular(t *testing.T) {
	m := metaForDist(t, []int{12}, []int{3}, []grid.Decomp{grid.CyclicDefault()}, []int{0, 0}, grid.RowMajor)
	if _, err := m.OwnerBlocks([]int{0}, []int{12}); !errors.Is(err, ErrIrregular) {
		t.Fatalf("OwnerBlocks on cyclic array: %v, want ErrIrregular", err)
	}
	if _, err := m.OwnerBlocksStrided([]int{0}, []int{12}, []int{2}); !errors.Is(err, ErrIrregular) {
		t.Fatalf("OwnerBlocksStrided on cyclic array: %v, want ErrIrregular", err)
	}
	if m.Regular() {
		t.Fatal("cyclic over 3 cells reported Regular")
	}
	one := metaForDist(t, []int{12}, []int{1}, []grid.Decomp{grid.CyclicDefault()}, []int{0, 0}, grid.RowMajor)
	if !one.Regular() {
		t.Fatal("cyclic over a 1-cell grid must be Regular")
	}
	if _, err := one.OwnerBlocks([]int{2}, []int{9}); err != nil {
		t.Fatalf("OwnerBlocks on 1-cell cyclic: %v", err)
	}
}
