package darray

import (
	"testing"

	"repro/internal/grid"
)

// refSection builds a bordered section whose interior element at lidx
// holds value(lidx), with borders poisoned to -1 so border leaks are
// visible.
func refSection(t *testing.T, typ ElemType, localDims, borders []int, ix grid.Indexing, value func(lidx []int) float64) *Section {
	t.Helper()
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSection(typ, grid.Size(plus))
	for i := 0; i < s.Len(); i++ {
		s.SetFloat(i, -1)
	}
	if err := grid.ForEachRect(make([]int, len(localDims)), localDims, func(lidx []int, k int) error {
		off, err := StorageOffset(lidx, localDims, borders, ix)
		if err != nil {
			return err
		}
		s.SetFloat(off, value(lidx))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSectionStridedReadWrite checks the strided section copies against
// per-element enumeration across border widths, indexing orders and
// element types.
func TestSectionStridedReadWrite(t *testing.T) {
	value := func(lidx []int) float64 {
		v := 2.0
		for _, x := range lidx {
			v = 23*v + float64(x)
		}
		return v
	}
	cases := []struct {
		name      string
		typ       ElemType
		localDims []int
		borders   []int
		ix        grid.Indexing
		lo, hi    []int
		step      []int
	}{
		{"1d/plain", Double, []int{17}, []int{0, 0}, grid.RowMajor, []int{2}, []int{16}, []int{3}},
		{"2d/row", Double, []int{8, 9}, []int{0, 0, 0, 0}, grid.RowMajor, []int{1, 0}, []int{8, 9}, []int{2, 3}},
		{"2d/row/unit-last", Double, []int{8, 9}, []int{1, 1, 2, 0}, grid.RowMajor, []int{0, 2}, []int{7, 9}, []int{3, 1}},
		{"2d/col/bordered", Double, []int{6, 5}, []int{2, 1, 0, 2}, grid.ColMajor, []int{1, 1}, []int{6, 5}, []int{2, 2}},
		{"2d/int", Int, []int{5, 5}, []int{1, 0, 1, 0}, grid.RowMajor, []int{0, 0}, []int{5, 5}, []int{2, 4}},
		{"3d/mixed", Double, []int{4, 5, 6}, []int{1, 1, 0, 0, 2, 1}, grid.RowMajor, []int{0, 1, 2}, []int{4, 5, 6}, []int{3, 2, 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := refSection(t, c.typ, c.localDims, c.borders, c.ix, value)
			n := grid.StridedRectSize(c.lo, c.hi, c.step)
			dst := make([]float64, n)
			if err := s.ReadBlockStridedInto(dst, c.lo, c.hi, c.step, c.localDims, c.borders, c.ix); err != nil {
				t.Fatal(err)
			}
			if err := grid.ForEachStridedRect(c.lo, c.hi, c.step, func(lidx []int, k int) error {
				want := value(lidx)
				if c.typ == Int {
					want = float64(int64(want))
				}
				if dst[k] != want {
					t.Fatalf("dst[%d] (%v) = %v, want %v", k, lidx, dst[k], want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Write the lattice back shifted; only lattice elements change.
			for i := range dst {
				dst[i] += 1000
			}
			if err := s.WriteBlockStrided(dst, c.lo, c.hi, c.step, c.localDims, c.borders, c.ix); err != nil {
				t.Fatal(err)
			}
			onLattice := func(lidx []int) bool {
				for i := range lidx {
					if lidx[i] < c.lo[i] || lidx[i] >= c.hi[i] || (lidx[i]-c.lo[i])%c.step[i] != 0 {
						return false
					}
				}
				return true
			}
			if err := grid.ForEachRect(make([]int, len(c.localDims)), c.localDims, func(lidx []int, k int) error {
				off, err := StorageOffset(lidx, c.localDims, c.borders, c.ix)
				if err != nil {
					return err
				}
				want := value(lidx)
				if c.typ == Int {
					want = float64(int64(want))
				}
				if onLattice(lidx) {
					want += 1000
					if c.typ == Int {
						want = float64(int64(want))
					}
				}
				if got := s.GetFloat(off); got != want {
					t.Fatalf("element %v = %v after strided write, want %v", lidx, got, want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSectionStridedErrors covers the validation of the strided section
// copies.
func TestSectionStridedErrors(t *testing.T) {
	s := NewSection(Double, 16)
	localDims := []int{4, 4}
	borders := NoBorders(2)
	if err := s.ReadBlockStridedInto(make([]float64, 4), []int{0, 0}, []int{4, 4}, []int{0, 2}, localDims, borders, grid.RowMajor); err == nil {
		t.Error("zero step accepted")
	}
	if err := s.ReadBlockStridedInto(make([]float64, 3), []int{0, 0}, []int{4, 4}, []int{2, 2}, localDims, borders, grid.RowMajor); err == nil {
		t.Error("wrong-size buffer accepted")
	}
	if err := s.WriteBlockStrided(make([]float64, 4), []int{0, 0}, []int{5, 4}, []int{2, 2}, localDims, borders, grid.RowMajor); err == nil {
		t.Error("out-of-range rectangle accepted")
	}
	if err := s.WriteBlockStrided(make([]float64, 5), []int{0, 0}, []int{4, 4}, []int{2, 2}, localDims, borders, grid.RowMajor); err == nil {
		t.Error("wrong-size values accepted")
	}
}

// TestSectionStridedZeroAllocs pins the strided section copies at zero
// heap allocations, like the dense fast path they share machinery with.
func TestSectionStridedZeroAllocs(t *testing.T) {
	localDims := []int{16, 16}
	borders := []int{1, 1, 2, 0}
	s := refSection(t, Double, localDims, borders, grid.RowMajor, func(lidx []int) float64 { return float64(lidx[0]) })
	lo, hi, step := []int{0, 0}, []int{16, 16}, []int{2, 3}
	buf := make([]float64, grid.StridedRectSize(lo, hi, step))
	read := testing.AllocsPerRun(200, func() {
		if err := s.ReadBlockStridedInto(buf, lo, hi, step, localDims, borders, grid.RowMajor); err != nil {
			t.Error(err)
		}
	})
	write := testing.AllocsPerRun(200, func() {
		if err := s.WriteBlockStrided(buf, lo, hi, step, localDims, borders, grid.RowMajor); err != nil {
			t.Error(err)
		}
	})
	if read != 0 {
		t.Errorf("ReadBlockStridedInto: %v allocs/op, want 0", read)
	}
	if write != 0 {
		t.Errorf("WriteBlockStrided: %v allocs/op, want 0", write)
	}
}

// TestOwnerBlocksStrided checks the strided owner split: blocks partition
// the lattice exactly, each block's bounds stay lattice-aligned, and cells
// the stride skips produce no block.
func TestOwnerBlocksStrided(t *testing.T) {
	meta := &Meta{
		ID: ID{}, Type: Double,
		Dims:          []int{12, 8},
		Procs:         []int{0, 1, 2, 3, 4, 5},
		GridDims:      []int{3, 2},
		LocalDims:     []int{4, 4},
		Borders:       NoBorders(2),
		LocalDimsPlus: []int{4, 4},
		Indexing:      grid.RowMajor,
		GridIndexing:  grid.RowMajor,
	}
	cases := []struct {
		name         string
		lo, hi, step []int
	}{
		{"every-2nd-row", []int{0, 0}, []int{12, 8}, []int{2, 1}},
		{"every-3rd-both", []int{1, 1}, []int{12, 8}, []int{3, 3}},
		{"skip-middle-cells", []int{0, 0}, []int{12, 8}, []int{8, 5}},
		{"single-point", []int{5, 3}, []int{6, 4}, []int{1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			blocks, err := meta.OwnerBlocksStrided(c.lo, c.hi, c.step)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]int) // flattened global index -> hits
			for _, b := range blocks {
				if _, ok := meta.HoldsSection(b.Proc); !ok {
					t.Fatalf("block on processor %d holding no section", b.Proc)
				}
				if err := grid.ForEachStridedRect(b.GlobalLo, b.GlobalHi, c.step, func(gidx []int, k int) error {
					// Lattice-aligned with the request anchor.
					for i := range gidx {
						if (gidx[i]-c.lo[i])%c.step[i] != 0 {
							t.Fatalf("block point %v off the request lattice", gidx)
						}
					}
					// Owned by the block's processor.
					proc, _, err := meta.Owner(gidx)
					if err != nil {
						return err
					}
					if proc != b.Proc {
						t.Fatalf("point %v in block of proc %d, owner says %d", gidx, b.Proc, proc)
					}
					// Local translation is consistent.
					lin, err := grid.Flatten(gidx, meta.Dims, grid.RowMajor)
					if err != nil {
						return err
					}
					seen[lin]++
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				// Local bounds are the global ones minus the cell origin.
				for i := range b.GlobalLo {
					if b.GlobalHi[i]-b.GlobalLo[i] != b.LocalHi[i]-b.LocalLo[i] {
						t.Fatalf("block global/local extents differ: %v", b)
					}
					if b.LocalLo[i] < 0 || b.LocalHi[i] > meta.LocalDims[i] {
						t.Fatalf("block local bounds outside the section: %v", b)
					}
				}
			}
			want := grid.StridedRectSize(c.lo, c.hi, c.step)
			if len(seen) != want {
				t.Fatalf("blocks cover %d points, lattice has %d", len(seen), want)
			}
			for lin, n := range seen {
				if n != 1 {
					t.Fatalf("point %d covered %d times", lin, n)
				}
			}
		})
	}
}
