// Package darray defines the representation of distributed arrays
// (§3.2.1, §5.1.3 of the paper): global metadata, local sections, and
// border (overlap-area) bookkeeping.
//
// A distributed N-dimensional array is partitioned into N-dimensional
// contiguous subarrays called local sections, one per cell of a processor
// grid. Each local section is a flat piece of contiguous storage; it may be
// surrounded by borders used internally by data-parallel notations (the
// paper supports Fortran D's overlap areas this way). Programs in the
// task-parallel notation can access only the interior (non-border)
// elements; border locations are accessible only to the called
// data-parallel program.
package darray

import (
	"errors"
	"fmt"

	"repro/internal/grid"
)

// ElemType is the element type of a distributed array. The prototype (and
// this reproduction) supports the paper's two types, int and double.
type ElemType uint8

const (
	// Double is the paper's "double" element type.
	Double ElemType = iota
	// Int is the paper's "int" element type.
	Int
)

func (t ElemType) String() string {
	if t == Int {
		return "int"
	}
	return "double"
}

// ParseElemType accepts the paper's spellings "int" and "double".
func ParseElemType(s string) (ElemType, error) {
	switch s {
	case "int":
		return Int, nil
	case "double":
		return Double, nil
	default:
		return Double, fmt.Errorf("darray: unknown element type %q (want \"int\" or \"double\")", s)
	}
}

// ID is the globally unique identifier of a distributed array: "a tuple of
// integers (the processor number on which the original array-creation
// request was made, plus an integer that distinguishes this array from
// others created on the same processor)" (§4.1.3). It is analogous to a
// file pointer in C.
type ID struct {
	Proc int
	Seq  int
}

func (id ID) String() string { return fmt.Sprintf("{%d,%d}", id.Proc, id.Seq) }

// Meta is the internal representation of a distributed array (§5.1.3's
// array-representation tuple). The representation deliberately stores
// derivable quantities (local dimensions etc.): "we choose to compute the
// information once and store it rather than computing it repeatedly".
//
// LocalDims is the uniform per-cell storage extent (grid.Dist.Storage per
// dimension): every section is allocated with that shape, and with uneven
// or cyclic distributions a cell may own fewer elements than its storage
// provides (LocalDimsOf reports the actual counts). For exactly divisible
// block arrays — everything the paper's prototype supports — storage and
// ownership coincide.
type Meta struct {
	ID            ID
	Type          ElemType
	Dims          []int       // global array dimensions
	Procs         []int       // processor numbers over which the array is distributed
	GridDims      []int       // processor-grid dimensions
	Dists         []grid.Dist // per-dimension distributions; nil means pure block
	LocalDims     []int       // local-section storage dimensions, excluding borders
	Borders       []int       // length 2*N: leading/trailing border per dimension
	LocalDimsPlus []int       // local-section dimensions including borders
	Indexing      grid.Indexing
	GridIndexing  grid.Indexing
	// Replicas is the number of buddy copies kept of every local section
	// (0: none). With Replicas = k, the section at grid slot s is mirrored
	// onto the owners of the k grid slots following s (BuddyOwner), so any
	// k fail-stop losses among distinct buddy groups leave a full copy.
	Replicas int
	// Epoch counts ownership promotions: it starts at 0 and is bumped each
	// time a dead primary's slot is re-pointed at a surviving buddy
	// (Procs[slot] rewritten). Requests carry the coordinator's epoch so a
	// holder with stale metadata can reject nothing — promotion only ever
	// moves slots toward live processors — but stale update_meta broadcasts
	// (an older epoch arriving after a newer one) are ignored.
	Epoch int
	// Origins is the creation-time processor assignment, preserved across
	// promotions so buddy placement stays stable however many slots have
	// been re-pointed. nil means Procs (no promotion has happened and the
	// array was created without replicas).
	Origins []int
}

// NDims returns the number of dimensions.
func (m *Meta) NDims() int { return len(m.Dims) }

// GridSize returns the number of local sections (grid cells).
func (m *Meta) GridSize() int { return grid.Size(m.GridDims) }

// LocalInteriorSize returns the element count of a local section's
// interior.
func (m *Meta) LocalInteriorSize() int { return grid.Size(m.LocalDims) }

// LocalStorageSize returns the element count of a local section including
// borders.
func (m *Meta) LocalStorageSize() int { return grid.Size(m.LocalDimsPlus) }

// SectionProcs returns the processor numbers that actually hold local
// sections: the first GridSize entries of Procs (a grid may use fewer
// processors than were supplied, since the product of grid dimensions need
// only be <= P).
func (m *Meta) SectionProcs() []int { return m.Procs[:m.GridSize()] }

// HoldsSection reports whether processor proc owns a local section of the
// array, and if so its slot in the processor array.
func (m *Meta) HoldsSection(proc int) (slot int, ok bool) {
	for i, p := range m.SectionProcs() {
		if p == proc {
			return i, true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the metadata.
func (m *Meta) Clone() *Meta {
	c := *m
	c.Dims = append([]int(nil), m.Dims...)
	c.Procs = append([]int(nil), m.Procs...)
	c.GridDims = append([]int(nil), m.GridDims...)
	if m.Dists != nil {
		c.Dists = append([]grid.Dist(nil), m.Dists...)
	}
	c.LocalDims = append([]int(nil), m.LocalDims...)
	c.Borders = append([]int(nil), m.Borders...)
	c.LocalDimsPlus = append([]int(nil), m.LocalDimsPlus...)
	if m.Origins != nil {
		c.Origins = append([]int(nil), m.Origins...)
	}
	return &c
}

// OriginProcs returns the creation-time owner of every grid slot: Origins
// when promotions (or replica creation) have materialized it, Procs
// otherwise.
func (m *Meta) OriginProcs() []int {
	if m.Origins != nil {
		return m.Origins[:m.GridSize()]
	}
	return m.SectionProcs()
}

// BuddyOwner returns the processor holding the j-th buddy copy (1 <= j <=
// Replicas) of the section at the given grid slot: the creation-time owner
// of the j-th following slot, wrapping around the grid. Buddy placement is
// computed from OriginProcs, not the current Procs, so it is stable across
// promotions — a promoted slot keeps mirroring to the same surviving
// buddies.
func (m *Meta) BuddyOwner(slot, j int) int {
	origins := m.OriginProcs()
	return origins[(slot+j)%len(origins)]
}

// Dist returns dimension i's distribution. Metadata predating the
// distribution layer (nil Dists) is pure block with the storage width.
func (m *Meta) Dist(i int) grid.Dist {
	if m.Dists == nil {
		return grid.Dist{Kind: grid.DistBlock, B: m.LocalDims[i]}
	}
	return m.Dists[i]
}

// Regular reports whether every dimension leaves each cell one contiguous
// run of global indices — block in every dimension, or cyclic only over
// 1-cell grid dimensions — so that the rectangle-based owner split
// (OwnerBlocks, OwnerBlocksStrided, LocalRect's block case) applies.
// Irregular arrays route rectangle transfers through OwnerLattice instead.
func (m *Meta) Regular() bool {
	if m.Dists == nil {
		return true
	}
	return grid.Regular(m.GridDims, m.Dists)
}

// ResolvedDists returns the per-dimension distributions as a fresh slice,
// materializing the block defaults of pre-distribution metadata.
func (m *Meta) ResolvedDists() []grid.Dist {
	out := make([]grid.Dist, m.NDims())
	for i := range out {
		out[i] = m.Dist(i)
	}
	return out
}

// dimOwner resolves one dimension: the grid cell owning global index g and
// the index within that cell's local storage. It allocates nothing — this
// is the per-dimension kernel under ResolveIndex, Owner and LocalRect,
// deferring to grid.Dist.Owner (the fuzzed single source of the
// arithmetic) on cyclic dimensions.
func (m *Meta) dimOwner(i, g int) (cell, local int) {
	if m.Dists != nil && m.Dists[i].Kind != grid.DistBlock && m.GridDims[i] > 1 {
		return m.Dists[i].Owner(g, m.GridDims[i])
	}
	// Block (including uneven trailing blocks, where LocalDims[i] is the
	// ceil width) and any distribution over a 1-cell grid dimension, where
	// local storage order equals global order.
	b := m.LocalDims[i]
	return g / b, g % b
}

// LocalDimsOf returns the actual interior extent, per dimension, of the
// section at the given grid slot. With uneven or cyclic distributions this
// may be smaller than the uniform LocalDims storage shape (possibly zero
// in a dimension); data-parallel programs iterating their section should
// use it rather than LocalDims when the array may be unevenly distributed.
func (m *Meta) LocalDimsOf(slot int) ([]int, error) {
	coord, err := grid.Unflatten(slot, m.GridDims, m.GridIndexing)
	if err != nil {
		return nil, err
	}
	out := make([]int, m.NDims())
	for i := range out {
		out[i] = m.Dist(i).Count(m.Dims[i], m.GridDims[i], coord[i])
	}
	return out, nil
}

// ErrBadBorders reports malformed border specifications.
var ErrBadBorders = errors.New("darray: invalid borders")

// CheckBorders validates a border array for an ndims-dimensional array:
// length 2*ndims, entries >= 0. Elements 2i and 2i+1 specify the border on
// either side of dimension i (§4.2.1).
func CheckBorders(borders []int, ndims int) error {
	if len(borders) != 2*ndims {
		return fmt.Errorf("%w: %d entries for %d dimensions (want %d)", ErrBadBorders, len(borders), ndims, 2*ndims)
	}
	for i, b := range borders {
		if b < 0 {
			return fmt.Errorf("%w: negative border %d at position %d", ErrBadBorders, b, i)
		}
	}
	return nil
}

// DimsPlus returns localDims widened by the borders.
func DimsPlus(localDims, borders []int) ([]int, error) {
	if err := CheckBorders(borders, len(localDims)); err != nil {
		return nil, err
	}
	out := make([]int, len(localDims))
	for i := range localDims {
		out[i] = localDims[i] + borders[2*i] + borders[2*i+1]
	}
	return out, nil
}

// StorageOffset maps an interior local index tuple to its flat offset
// within the bordered local-section storage.
func StorageOffset(lidx, localDims, borders []int, ix grid.Indexing) (int, error) {
	if err := grid.CheckIndex(lidx, localDims); err != nil {
		return 0, err
	}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		return 0, err
	}
	shifted := make([]int, len(lidx))
	for i := range lidx {
		shifted[i] = lidx[i] + borders[2*i]
	}
	return grid.Flatten(shifted, plus, ix)
}

// Owner resolves a global index tuple to the owning processor number and
// the flat storage offset of the element within that processor's (bordered)
// local section — the {processor-reference, local-indices} pair of
// §3.2.1.1, composed with border displacement and generalized from block
// to cyclic and block-cyclic distributions through the per-dimension
// distribution arithmetic (ResolveIndex).
func (m *Meta) Owner(gidx []int) (proc, storageOff int, err error) {
	strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
	slot, off, ok := m.ResolveIndex(gidx, strides)
	if !ok {
		if err := grid.CheckIndex(gidx, m.Dims); err != nil {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("darray: unresolvable index %v", gidx)
	}
	return m.Procs[slot], off, nil
}

// MaxFastDims bounds the dimensionality served by the allocation-free
// block-copy fast path (LocalRect, Section.ReadBlockInto and the block
// copies behind it). Rectangles of more dimensions remain correct but fall
// back to the general, allocating path.
const MaxFastDims = 8

// LocalRect reports whether the global rectangle [lo, hi) lies entirely
// within the local section held by proc. If so it writes the rectangle's
// interior-local bounds into dstLo and dstHi (each of length NDims) and
// returns true. It performs no heap allocation, which makes it the
// ownership test of the zero-copy local fast path: a wholly-local block
// transfer can be serviced straight from section storage without touching
// the router. The rectangle must already be validated against m.Dims.
func (m *Meta) LocalRect(proc int, lo, hi, dstLo, dstHi []int) bool {
	n := m.NDims()
	if len(lo) != n || len(hi) != n || len(dstLo) != n || len(dstHi) != n {
		return false
	}
	slot, ok := m.HoldsSection(proc)
	if !ok {
		return false
	}
	// Unflatten slot into the grid coordinate dimension by dimension
	// (fastest-varying first under the grid indexing), checking containment
	// and translating to interior-local bounds as we go.
	lin := slot
	if m.GridIndexing == grid.RowMajor {
		for i := n - 1; i >= 0; i-- {
			if !m.localRectDim(i, &lin, lo, hi, dstLo, dstHi) {
				return false
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if !m.localRectDim(i, &lin, lo, hi, dstLo, dstHi) {
				return false
			}
		}
	}
	return true
}

// localRectDim handles one dimension of LocalRect: it peels this
// dimension's grid coordinate off lin and checks/translates the bounds.
// Block dimensions translate by the cell origin; cyclic dimensions accept
// a range only when it lies within one owned cycle block (where the
// global→local map is a unit-slope translation, so dense and strided
// copies remain valid on the translated bounds).
func (m *Meta) localRectDim(i int, lin *int, lo, hi, dstLo, dstHi []int) bool {
	c := *lin % m.GridDims[i]
	*lin /= m.GridDims[i]
	if m.Dists != nil && m.Dists[i].Kind != grid.DistBlock && m.GridDims[i] > 1 {
		// The range lies in one owned cycle block iff both endpoints
		// resolve to this cell with their local distance equal to the
		// global distance (the map is a unit-slope translation there).
		cLo, lLo := m.Dists[i].Owner(lo[i], m.GridDims[i])
		cHi, lHi := m.Dists[i].Owner(hi[i]-1, m.GridDims[i])
		if cLo != c || cHi != c || lHi-lLo != hi[i]-1-lo[i] {
			return false
		}
		dstLo[i] = lLo
		dstHi[i] = lHi + 1
		return true
	}
	cellLo := c * m.LocalDims[i]
	cellHi := cellLo + m.LocalDims[i]
	if cellHi > m.Dims[i] {
		cellHi = m.Dims[i] // uneven trailing block
	}
	if lo[i] < cellLo || hi[i] > cellHi {
		return false
	}
	dstLo[i] = lo[i] - cellLo
	dstHi[i] = hi[i] - cellLo
	return true
}

// OwnerBlock describes the piece of a global rectangle held by one local
// section: the owning processor, the sub-rectangle in global indices, and
// the same sub-rectangle translated to interior-local indices. It is the
// unit of the bulk data plane — each OwnerBlock moves in one message.
type OwnerBlock struct {
	Proc               int
	Slot               int // grid slot of the owning section
	GlobalLo, GlobalHi []int
	LocalLo, LocalHi   []int
}

// ErrIrregular reports a rectangle owner-split requested on an array whose
// distribution leaves cells non-contiguous holdings (a cyclic or
// block-cyclic dimension over more than one cell). Coordinators route such
// arrays through OwnerLattice instead.
var ErrIrregular = errors.New("darray: rectangle owner-split requires contiguous (block) cells")

// cellRect writes the global region [cLo, cHi) owned by the block-regular
// cell at grid coordinate coord: blocks of the per-dimension storage
// width, with the trailing cell clamped to the array extent (uneven last
// block). Valid only for Regular metadata.
func (m *Meta) cellRect(coord, cLo, cHi []int) {
	for i := range coord {
		cLo[i] = coord[i] * m.LocalDims[i]
		cHi[i] = cLo[i] + m.LocalDims[i]
		if cHi[i] > m.Dims[i] {
			cHi[i] = m.Dims[i]
		}
	}
}

// OwnerBlocks splits the global rectangle [lo, hi) into the sub-rectangles
// owned by each local section, in slot order. Every index tuple of the
// rectangle appears in exactly one returned block; sections the rectangle
// does not touch are omitted. It requires a Regular distribution (each
// cell one contiguous run per dimension) and reports ErrIrregular
// otherwise — cyclic arrays split rectangles with OwnerLattice.
func (m *Meta) OwnerBlocks(lo, hi []int) ([]OwnerBlock, error) {
	if err := grid.CheckRect(lo, hi, m.Dims); err != nil {
		return nil, err
	}
	if !m.Regular() {
		return nil, ErrIrregular
	}
	// Cell c owns [c*local, min((c+1)*local, dims)) per dimension, so only
	// the cells in [lo/local, (hi-1)/local] can intersect the rectangle;
	// enumerate just that sub-grid rather than every cell.
	local := m.LocalDims
	cellLo := make([]int, len(lo))
	cellHi := make([]int, len(lo))
	for i := range lo {
		cellLo[i] = lo[i] / local[i]
		cellHi[i] = (hi[i]-1)/local[i] + 1
	}
	cLo := make([]int, len(lo))
	cHi := make([]int, len(lo))
	var out []OwnerBlock
	err := grid.ForEachRect(cellLo, cellHi, func(coord []int, _ int) error {
		slot, err := grid.ProcSlot(coord, m.GridDims, m.GridIndexing)
		if err != nil {
			return err
		}
		m.cellRect(coord, cLo, cHi)
		subLo, subHi, ok := grid.IntersectRect(lo, hi, cLo, cHi)
		if !ok {
			return fmt.Errorf("darray: cell %v in range but disjoint from [%v,%v)", coord, lo, hi)
		}
		localLo := make([]int, len(lo))
		localHi := make([]int, len(lo))
		for i := range lo {
			localLo[i] = subLo[i] - cLo[i]
			localHi[i] = subHi[i] - cLo[i]
		}
		out = append(out, OwnerBlock{
			Proc: m.Procs[slot], Slot: slot,
			GlobalLo: subLo, GlobalHi: subHi,
			LocalLo: localLo, LocalHi: localHi,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OwnerBlocksStrided splits the strided rectangle (lo, hi, step) — the
// lattice of every step[i]-th index within [lo, hi) — into the sub-lattices
// owned by each local section, in slot order. Every lattice point appears
// in exactly one returned block; each block's GlobalLo lies on the request
// lattice, so the block's points are exactly the request lattice restricted
// to [GlobalLo, GlobalHi) (the step is uniform across blocks and is not
// repeated in them). Sections holding no lattice point are omitted. Like
// OwnerBlocks it requires a Regular distribution (ErrIrregular otherwise).
func (m *Meta) OwnerBlocksStrided(lo, hi, step []int) ([]OwnerBlock, error) {
	if err := grid.CheckStridedRect(lo, hi, step, m.Dims); err != nil {
		return nil, err
	}
	if !m.Regular() {
		return nil, ErrIrregular
	}
	// Only cells between the first and last lattice point per dimension can
	// hold a point; enumerate just that sub-grid.
	local := m.LocalDims
	cellLo := make([]int, len(lo))
	cellHi := make([]int, len(lo))
	for i := range lo {
		last := lo[i] + ((hi[i]-1-lo[i])/step[i])*step[i]
		cellLo[i] = lo[i] / local[i]
		cellHi[i] = last/local[i] + 1
	}
	cLo := make([]int, len(lo))
	cHi := make([]int, len(lo))
	var out []OwnerBlock
	err := grid.ForEachRect(cellLo, cellHi, func(coord []int, _ int) error {
		slot, err := grid.ProcSlot(coord, m.GridDims, m.GridIndexing)
		if err != nil {
			return err
		}
		m.cellRect(coord, cLo, cHi)
		subLo, subHi, ok := grid.IntersectStridedRect(lo, hi, step, cLo, cHi)
		if !ok {
			return nil // the stride skips this cell entirely
		}
		localLo := make([]int, len(lo))
		localHi := make([]int, len(lo))
		for i := range lo {
			localLo[i] = subLo[i] - cLo[i]
			localHi[i] = subHi[i] - cLo[i]
		}
		out = append(out, OwnerBlock{
			Proc: m.Procs[slot], Slot: slot,
			GlobalLo: subLo, GlobalHi: subHi,
			LocalLo: localLo, LocalHi: localHi,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OwnerIndexSet describes the elements of a scattered-index vector held by
// one local section: the owning processor, the flat storage offsets of the
// elements within that processor's bordered section storage, and the
// positions of those elements within the request vector. It is the unit of
// the indexed gather/scatter plane — each OwnerIndexSet moves in one
// message, the way each OwnerBlock does on the bulk plane.
type OwnerIndexSet struct {
	Proc int
	Slot int   // grid slot of the owning section
	Offs []int // storage offsets, border-displaced, in the section's indexing
	Pos  []int // positions within the request vector, in request order
}

// ResolveIndex maps one global index tuple to its owning slot and the
// border-displaced flat storage offset within that slot's section — the
// single source of the per-index ownership arithmetic, composed from the
// per-dimension distribution kernel (dimOwner) so it covers block, cyclic
// and block-cyclic dimensions uniformly. strides must be the per-dimension
// storage strides of the bordered section
// (grid.Strides(m.LocalDimsPlus, m.Indexing)); the caller supplies them so
// resolving k indices costs no per-index allocation. ok is false when gidx
// has the wrong rank or is out of range.
func (m *Meta) ResolveIndex(gidx, strides []int) (slot, off int, ok bool) {
	n := m.NDims()
	if len(gidx) != n || len(strides) != n {
		return 0, 0, false
	}
	if m.GridIndexing == grid.RowMajor {
		for i := 0; i < n; i++ {
			if gidx[i] < 0 || gidx[i] >= m.Dims[i] {
				return 0, 0, false
			}
			cell, l := m.dimOwner(i, gidx[i])
			slot = slot*m.GridDims[i] + cell
			off += (l + m.Borders[2*i]) * strides[i]
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			if gidx[i] < 0 || gidx[i] >= m.Dims[i] {
				return 0, 0, false
			}
			cell, l := m.dimOwner(i, gidx[i])
			slot = slot*m.GridDims[i] + cell
			off += (l + m.Borders[2*i]) * strides[i]
		}
	}
	return slot, off, true
}

// OwnerIndices splits a vector of global index tuples by owning local
// section, sets ordered by first appearance in the request vector.
// Offsets within a set appear in request order, so
// applying a set's writes in order preserves the request's write order for
// repeated indices (last writer wins). Every element of indices appears in
// exactly one set; an empty vector yields no sets.
func (m *Meta) OwnerIndices(indices [][]int) ([]OwnerIndexSet, error) {
	if len(indices) == 0 {
		return nil, nil
	}
	strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
	bySlot := make(map[int]int) // slot -> index into sets
	var sets []OwnerIndexSet
	for pos, gidx := range indices {
		slot, off, ok := m.ResolveIndex(gidx, strides)
		if !ok {
			if err := grid.CheckIndex(gidx, m.Dims); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("darray: unresolvable index %v", gidx)
		}
		si, ok := bySlot[slot]
		if !ok {
			si = len(sets)
			bySlot[slot] = si
			sets = append(sets, OwnerIndexSet{Proc: m.Procs[slot], Slot: slot})
		}
		sets[si].Offs = append(sets[si].Offs, off)
		sets[si].Pos = append(sets[si].Pos, pos)
	}
	return sets, nil
}

// OwnerLattice splits the lattice points of the strided rectangle
// (lo, hi, step) — dense when step is nil — by owning local section, sets
// ordered by first appearance in packed row-major lattice order. It is the
// owner split for distributions where a cell's holdings are not
// contiguous (a cyclic or block-cyclic dimension spanning several cells):
// the result carries explicit storage offsets the way OwnerIndices does,
// with Pos holding each point's packed lattice position, so the rectangle
// coordinators can move values between per-owner messages and the dense
// request buffer — still one message per owner, whatever the layout.
func (m *Meta) OwnerLattice(lo, hi, step []int) ([]OwnerIndexSet, error) {
	var err error
	if step == nil {
		err = grid.CheckRect(lo, hi, m.Dims)
	} else {
		err = grid.CheckStridedRect(lo, hi, step, m.Dims)
	}
	if err != nil {
		return nil, err
	}
	strides := grid.Strides(m.LocalDimsPlus, m.Indexing)
	bySlot := make(map[int]int) // slot -> index into sets
	var sets []OwnerIndexSet
	visit := func(idx []int, k int) error {
		slot, off, ok := m.ResolveIndex(idx, strides)
		if !ok {
			return fmt.Errorf("darray: unresolvable index %v", idx)
		}
		si, seen := bySlot[slot]
		if !seen {
			si = len(sets)
			bySlot[slot] = si
			sets = append(sets, OwnerIndexSet{Proc: m.Procs[slot], Slot: slot})
		}
		sets[si].Offs = append(sets[si].Offs, off)
		sets[si].Pos = append(sets[si].Pos, k)
		return nil
	}
	if step == nil {
		err = grid.ForEachRect(lo, hi, visit)
	} else {
		err = grid.ForEachStridedRect(lo, hi, step, visit)
	}
	if err != nil {
		return nil, err
	}
	return sets, nil
}

// Section is the storage for one local section, including borders. Exactly
// one of F and I is non-nil, matching the element type. A Section plays the
// role of the paper's pseudo-definitional array: it is created by the array
// manager, handed to data-parallel programs as a mutable flat array, and
// invalidated when the distributed array is freed.
type Section struct {
	Type ElemType
	F    []float64
	I    []int64
}

// NewSection allocates zeroed storage for n elements of type t.
func NewSection(t ElemType, n int) *Section {
	s := &Section{Type: t}
	if t == Int {
		s.I = make([]int64, n)
	} else {
		s.F = make([]float64, n)
	}
	return s
}

// Len returns the number of elements, including borders.
func (s *Section) Len() int {
	if s.Type == Int {
		return len(s.I)
	}
	return len(s.F)
}

// GetFloat reads element off as a float64, converting for Int arrays.
func (s *Section) GetFloat(off int) float64 {
	if s.Type == Int {
		return float64(s.I[off])
	}
	return s.F[off]
}

// SetFloat writes element off from a float64, truncating for Int arrays.
func (s *Section) SetFloat(off int, v float64) {
	if s.Type == Int {
		s.I[off] = int64(v)
	} else {
		s.F[off] = v
	}
}

// ReadBlock copies the interior rectangle [lo, hi) (interior-local indices)
// of the section into a fresh dense buffer linearized row-major over the
// rectangle. localDims, borders and ix describe the section's interior
// shape, border widths and storage indexing; border locations themselves
// are never read.
func (s *Section) ReadBlock(lo, hi, localDims, borders []int, ix grid.Indexing) ([]float64, error) {
	if err := grid.CheckRect(lo, hi, localDims); err != nil {
		return nil, err
	}
	vals := make([]float64, grid.RectSize(lo, hi))
	if err := s.blockCopy(true, vals, lo, hi, localDims, borders, ix); err != nil {
		return nil, err
	}
	return vals, nil
}

// ReadBlockInto copies the interior rectangle [lo, hi) into dst, which the
// caller supplies and owns; dst must hold exactly RectSize(lo, hi)
// elements and the section retains no reference to it. For rectangles of
// at most MaxFastDims dimensions the copy performs no heap allocation —
// this is the buffer-reuse read of the zero-copy local fast path.
func (s *Section) ReadBlockInto(dst []float64, lo, hi, localDims, borders []int, ix grid.Indexing) error {
	if err := grid.CheckRect(lo, hi, localDims); err != nil {
		return err
	}
	if len(dst) != grid.RectSize(lo, hi) {
		return fmt.Errorf("darray: buffer of %d elements for a rectangle of %d", len(dst), grid.RectSize(lo, hi))
	}
	return s.blockCopy(true, dst, lo, hi, localDims, borders, ix)
}

// WriteBlock copies vals — a dense buffer linearized row-major over the
// rectangle — into the interior rectangle [lo, hi) of the section.
func (s *Section) WriteBlock(vals []float64, lo, hi, localDims, borders []int, ix grid.Indexing) error {
	if err := grid.CheckRect(lo, hi, localDims); err != nil {
		return err
	}
	if len(vals) != grid.RectSize(lo, hi) {
		return fmt.Errorf("darray: %d values for a rectangle of %d elements", len(vals), grid.RectSize(lo, hi))
	}
	return s.blockCopy(false, vals, lo, hi, localDims, borders, ix)
}

// ReadBlockStridedInto copies the lattice of every step[i]-th element of
// the interior rectangle [lo, hi) into dst, packed densely in row-major
// lattice order; dst must hold exactly StridedRectSize(lo, hi, step)
// elements and stays caller-owned. Like ReadBlockInto it performs no heap
// allocation for rectangles of at most MaxFastDims dimensions — the strided
// copy rides the same incremental-odometer machinery with the storage
// stride scaled by the step.
func (s *Section) ReadBlockStridedInto(dst []float64, lo, hi, step, localDims, borders []int, ix grid.Indexing) error {
	if err := grid.CheckStridedRect(lo, hi, step, localDims); err != nil {
		return err
	}
	if len(dst) != grid.StridedRectSize(lo, hi, step) {
		return fmt.Errorf("darray: buffer of %d elements for a strided rectangle of %d", len(dst), grid.StridedRectSize(lo, hi, step))
	}
	return s.blockCopyStrided(true, dst, lo, hi, step, localDims, borders, ix)
}

// WriteBlockStrided copies vals — packed densely in row-major lattice
// order — onto the lattice of every step[i]-th element of the interior
// rectangle [lo, hi). vals must hold exactly StridedRectSize(lo, hi, step)
// elements; elements off the lattice are untouched.
func (s *Section) WriteBlockStrided(vals []float64, lo, hi, step, localDims, borders []int, ix grid.Indexing) error {
	if err := grid.CheckStridedRect(lo, hi, step, localDims); err != nil {
		return err
	}
	if len(vals) != grid.StridedRectSize(lo, hi, step) {
		return fmt.Errorf("darray: %d values for a strided rectangle of %d elements", len(vals), grid.StridedRectSize(lo, hi, step))
	}
	return s.blockCopyStrided(false, vals, lo, hi, step, localDims, borders, ix)
}

// denseStep is the all-ones step vector the dense block paths pass to the
// shared copy machinery; it must never be written.
var denseStep = func() (s [MaxFastDims]int) {
	for i := range s {
		s[i] = 1
	}
	return
}()

// blockCopyStrided is blockCopy for a strided rectangle: the lattice
// (lo, hi, step) moves between the bordered storage and vals (a packed
// row-major lattice buffer). Up to MaxFastDims dimensions it shares the
// allocation-free fastCopy path; beyond that it falls back to per-element
// enumeration.
func (s *Section) blockCopyStrided(read bool, vals []float64, lo, hi, step, localDims, borders []int, ix grid.Indexing) error {
	if err := CheckBorders(borders, len(localDims)); err != nil {
		return err
	}
	if len(lo) <= MaxFastDims {
		s.fastCopy(read, vals, lo, hi, step, localDims, borders, ix)
		return nil
	}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		return err
	}
	strides := grid.Strides(plus, ix)
	return grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
		off := 0
		for i := range idx {
			off += (idx[i] + borders[2*i]) * strides[i]
		}
		if read {
			vals[k] = s.GetFloat(off)
		} else {
			s.SetFloat(off, vals[k])
		}
		return nil
	})
}

// blockCopy moves data between vals and the rectangle [lo, hi) of the
// bordered storage. With row-major storage the rectangle's innermost runs
// are contiguous, so whole rows move with copy; otherwise elements move one
// by one through the stride arithmetic. Rectangles of at most MaxFastDims
// dimensions take the allocation-free path; the general path allocates its
// stride/index scratch.
func (s *Section) blockCopy(read bool, vals []float64, lo, hi, localDims, borders []int, ix grid.Indexing) error {
	if err := CheckBorders(borders, len(localDims)); err != nil {
		return err
	}
	if len(lo) <= MaxFastDims {
		s.fastCopy(read, vals, lo, hi, denseStep[:len(lo)], localDims, borders, ix)
		return nil
	}
	plus, err := DimsPlus(localDims, borders)
	if err != nil {
		return err
	}
	strides := grid.Strides(plus, ix)
	offset := func(idx []int) int {
		off := 0
		for i := range idx {
			off += (idx[i] + borders[2*i]) * strides[i]
		}
		return off
	}
	last := len(lo) - 1
	if ix == grid.RowMajor && s.Type == Double {
		run := hi[last] - lo[last]
		return grid.ForEachRect(lo[:last], hi[:last], func(outer []int, k int) error {
			off := offset(outer) + (lo[last]+borders[2*last])*strides[last]
			if read {
				copy(vals[k*run:(k+1)*run], s.F[off:off+run])
			} else {
				copy(s.F[off:off+run], vals[k*run:(k+1)*run])
			}
			return nil
		})
	}
	return grid.ForEachRect(lo, hi, func(idx []int, k int) error {
		off := offset(idx)
		if read {
			vals[k] = s.GetFloat(off)
		} else {
			s.SetFloat(off, vals[k])
		}
		return nil
	})
}

// fastCopy is the shared block/strided copy specialised to at most
// MaxFastDims dimensions: all scratch state lives in fixed-size stack
// arrays and the odometer walks offsets incrementally, so the copy performs
// no heap allocation. step scales the storage stride per dimension (the
// dense paths pass denseStep). Bounds, steps, borders and buffer length
// must already be validated.
func (s *Section) fastCopy(read bool, vals []float64, lo, hi, step, localDims, borders []int, ix grid.Indexing) {
	n := len(lo)
	var plus, strides [MaxFastDims]int
	// cnt is the per-dimension lattice count, estride the storage distance
	// between consecutive lattice points, pos the odometer position.
	var cnt, estride, pos [MaxFastDims]int
	for i := 0; i < n; i++ {
		plus[i] = localDims[i] + borders[2*i] + borders[2*i+1]
	}
	if ix == grid.RowMajor {
		st := 1
		for i := n - 1; i >= 0; i-- {
			strides[i] = st
			st *= plus[i]
		}
	} else {
		st := 1
		for i := 0; i < n; i++ {
			strides[i] = st
			st *= plus[i]
		}
	}
	off := 0
	for i := 0; i < n; i++ {
		off += (lo[i] + borders[2*i]) * strides[i]
		cnt[i] = (hi[i] - lo[i] + step[i] - 1) / step[i]
		estride[i] = step[i] * strides[i]
	}
	last := n - 1
	run := cnt[last]
	contiguous := ix == grid.RowMajor && s.Type == Double && step[last] == 1 // strides[last] == 1
	k := 0
	for {
		if contiguous {
			if read {
				copy(vals[k:k+run], s.F[off:off+run])
			} else {
				copy(s.F[off:off+run], vals[k:k+run])
			}
			k += run
		} else {
			o := off
			for j := 0; j < run; j++ {
				if read {
					vals[k] = s.GetFloat(o)
				} else {
					s.SetFloat(o, vals[k])
				}
				k++
				o += estride[last]
			}
		}
		// Advance the outer-dimension odometer, keeping off in step.
		i := last - 1
		for ; i >= 0; i-- {
			pos[i]++
			off += estride[i]
			if pos[i] < cnt[i] {
				break
			}
			off -= cnt[i] * estride[i]
			pos[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// GatherInto reads the elements at the given flat storage offsets into dst,
// which the caller supplies and owns; dst must hold exactly len(offs)
// elements. Offsets are bounds-checked against the section storage but are
// otherwise trusted — OwnerIndices computes them border-displaced from
// validated global indices. The copy performs no heap allocation, making it
// the owner-side service routine of the indexed gather plane.
func (s *Section) GatherInto(dst []float64, offs []int) error {
	if len(dst) != len(offs) {
		return fmt.Errorf("darray: buffer of %d elements for %d offsets", len(dst), len(offs))
	}
	n := s.Len()
	for _, off := range offs {
		if off < 0 || off >= n {
			return fmt.Errorf("darray: gather offset %d outside section of %d elements", off, n)
		}
	}
	if s.Type == Int {
		for i, off := range offs {
			dst[i] = float64(s.I[off])
		}
	} else {
		for i, off := range offs {
			dst[i] = s.F[off]
		}
	}
	return nil
}

// ScatterFrom writes vals[i] to storage offset offs[i], in order, so a
// repeated offset takes the value at its last occurrence (last writer
// wins). vals must hold exactly len(offs) elements; the copy performs no
// heap allocation.
func (s *Section) ScatterFrom(vals []float64, offs []int) error {
	if len(vals) != len(offs) {
		return fmt.Errorf("darray: %d values for %d offsets", len(vals), len(offs))
	}
	n := s.Len()
	for _, off := range offs {
		if off < 0 || off >= n {
			return fmt.Errorf("darray: scatter offset %d outside section of %d elements", off, n)
		}
	}
	if s.Type == Int {
		for i, off := range offs {
			s.I[off] = int64(vals[i])
		}
	} else {
		for i, off := range offs {
			s.F[off] = vals[i]
		}
	}
	return nil
}

// CopyInterior copies the interior (non-border) data of src into dst, where
// the two sections belong to local sections of the same interior dimensions
// but possibly different borders. It implements the data movement of the
// copy_local request used by verify_array (§5.1.1): reallocating local
// sections with new borders preserves interior data, while border contents
// are not preserved.
func CopyInterior(dst, src *Section, localDims, dstBorders, srcBorders []int, ix grid.Indexing) error {
	if dst.Type != src.Type {
		return fmt.Errorf("darray: copy between element types %v and %v", dst.Type, src.Type)
	}
	n := grid.Size(localDims)
	for lin := 0; lin < n; lin++ {
		lidx, err := grid.Unflatten(lin, localDims, ix)
		if err != nil {
			return err
		}
		so, err := StorageOffset(lidx, localDims, srcBorders, ix)
		if err != nil {
			return err
		}
		do, err := StorageOffset(lidx, localDims, dstBorders, ix)
		if err != nil {
			return err
		}
		if dst.Type == Int {
			dst.I[do] = src.I[so]
		} else {
			dst.F[do] = src.F[so]
		}
	}
	return nil
}

// NoBorders returns an all-zero border array for ndims dimensions,
// equivalent to the paper's Border_info = 0.
func NoBorders(ndims int) []int { return make([]int, 2*ndims) }

// EqualInts reports element-wise equality of two int slices.
func EqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
