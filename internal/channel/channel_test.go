package channel

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSendRecvFIFO(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		if err := c.Send([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := c.Recv()
		if !ok || v[0] != float64(i) {
			t.Fatalf("message %d = %v,%v", i, v, ok)
		}
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	c := New()
	got := make(chan []float64, 1)
	go func() {
		v, _ := c.Recv()
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("Recv returned %v before Send", v)
	case <-time.After(20 * time.Millisecond):
	}
	c.Send([]float64{9})
	select {
	case v := <-got:
		if v[0] != 9 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver never woke")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := New()
	buf := []float64{1, 2, 3}
	c.Send(buf)
	buf[0] = 99 // sender reuses its buffer
	v, _ := c.Recv()
	if v[0] != 1 {
		t.Fatalf("message aliased sender storage: %v", v)
	}
}

func TestCloseSemantics(t *testing.T) {
	c := New()
	c.Send([]float64{1})
	c.Close()
	c.Close() // idempotent
	if err := c.Send([]float64{2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: %v", err)
	}
	// Drain then end.
	if v, ok := c.Recv(); !ok || v[0] != 1 {
		t.Fatalf("drain = %v,%v", v, ok)
	}
	if _, ok := c.Recv(); ok {
		t.Fatal("Recv after drain should report !ok")
	}
}

func TestCloseWakesBlockedReceiver(t *testing.T) {
	c := New()
	done := make(chan bool, 1)
	go func() {
		_, ok := c.Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv on closed empty channel reported ok")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked receiver not woken by Close")
	}
}

func TestTryRecv(t *testing.T) {
	c := New()
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel")
	}
	c.Send([]float64{5})
	v, ok := c.TryRecv()
	if !ok || v[0] != 5 {
		t.Fatalf("TryRecv = %v,%v", v, ok)
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.Send([]float64{1})
	c.Send([]float64{2})
	c.Recv()
	sent, recvd, pending := c.Stats()
	if sent != 2 || recvd != 1 || pending != 1 {
		t.Fatalf("stats = %d,%d,%d", sent, recvd, pending)
	}
}

func TestPair(t *testing.T) {
	p := NewPair()
	p.AtoB.Send([]float64{1})
	p.BtoA.Send([]float64{2})
	if v, _ := p.AtoB.Recv(); v[0] != 1 {
		t.Fatal("AtoB broken")
	}
	if v, _ := p.BtoA.Recv(); v[0] != 2 {
		t.Fatal("BtoA broken")
	}
	p.Close()
	if err := p.AtoB.Send(nil); !errors.Is(err, ErrClosed) {
		t.Fatal("Pair.Close did not close AtoB")
	}
}

// Concurrent producers/consumers: every message delivered exactly once.
func TestConcurrentProducersConsumers(t *testing.T) {
	c := New()
	const producers = 4
	const perProducer = 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.Send([]float64{float64(p*perProducer + i)})
			}
		}(p)
	}
	go func() {
		wg.Wait()
		c.Close()
	}()
	seen := map[float64]bool{}
	for {
		v, ok := c.Recv()
		if !ok {
			break
		}
		if seen[v[0]] {
			t.Fatalf("duplicate message %v", v[0])
		}
		seen[v[0]] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d of %d", len(seen), producers*perProducer)
	}
}
