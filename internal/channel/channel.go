// Package channel implements the extension proposed in the paper's
// conclusions (§7.2.1): direct communication between concurrently
// executing data-parallel programs.
//
// The base model requires all communication between different
// data-parallel programs to pass through the common task-parallel caller,
// which "creates a bottleneck for problems in which there is a significant
// amount of data to be exchanged". The proposed remedy — modelled on
// Fortran M — is "to allow the data-parallel programs to communicate using
// channels defined by the task-parallel calling program and passed to the
// data-parallel programs as parameters".
//
// A Channel is a typed, directed, order-preserving conduit for []float64
// messages. The task-parallel program creates it and passes it (as a
// global-constant parameter) to two concurrently executing distributed
// calls; inside the calls, the copy holding the sending end Sends and the
// copy holding the receiving end Recvs. Sends copy their payload, so the
// distinct-address-space discipline is preserved: a received message is a
// snapshot, never a live alias of the sender's storage.
package channel

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("channel: closed")

// Channel is an unbounded FIFO of []float64 messages. Like PCN streams
// (and Fortran M channels), sends never block; receives block until a
// message or close arrives.
type Channel struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]float64
	closed bool
	sent   int
	recvd  int
}

// New creates an open channel.
func New() *Channel {
	c := &Channel{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Send appends a snapshot of data to the channel.
func (c *Channel) Send(data []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.queue = append(c.queue, append([]float64(nil), data...))
	c.sent++
	c.cond.Broadcast()
	return nil
}

// Recv removes and returns the oldest message, blocking until one is
// available. ok is false when the channel is closed and drained.
func (c *Channel) Recv() (data []float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if len(c.queue) == 0 {
		return nil, false
	}
	data = c.queue[0]
	c.queue = c.queue[1:]
	c.recvd++
	return data, true
}

// TryRecv is Recv without blocking; ok reports whether a message was
// available.
func (c *Channel) TryRecv() (data []float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	data = c.queue[0]
	c.queue = c.queue[1:]
	c.recvd++
	return data, true
}

// Close ends the channel: subsequent Sends fail; Recv drains the queue
// then reports !ok. Safe to call more than once.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
}

// Stats reports messages sent and received (diagnostics).
func (c *Channel) Stats() (sent, received, pending int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.recvd, len(c.queue)
}

// Pair creates a bidirectional link: two directed channels, one per
// direction — the common pattern for coupled simulations.
type Pair struct {
	AtoB *Channel
	BtoA *Channel
}

// NewPair creates both directions.
func NewPair() Pair {
	return Pair{AtoB: New(), BtoA: New()}
}

// Close closes both directions.
func (p Pair) Close() {
	p.AtoB.Close()
	p.BtoA.Close()
}
