package arraymgr

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg/wire"
)

func randInts(rng *rand.Rand, maxLen int) []int {
	xs := make([]int, rng.Intn(maxLen+1))
	for i := range xs {
		xs[i] = rng.Intn(1<<16) - 1<<15
	}
	return xs
}

func randMeta(rng *rand.Rand) *darray.Meta {
	m := &darray.Meta{
		ID:            darray.ID{Proc: rng.Intn(8), Seq: rng.Intn(100)},
		Dims:          randInts(rng, 3),
		Procs:         randInts(rng, 4),
		GridDims:      randInts(rng, 3),
		LocalDims:     randInts(rng, 3),
		Borders:       randInts(rng, 6),
		LocalDimsPlus: randInts(rng, 3),
		Indexing:      grid.Indexing(rng.Intn(2)),
		Replicas:      rng.Intn(3),
		Epoch:         rng.Intn(4),
	}
	if rng.Intn(2) == 0 {
		m.Dists = []grid.Dist{{Kind: grid.DistKind(rng.Intn(3)), B: rng.Intn(8)}}
	}
	return m
}

func randWireRequest(rng *rand.Rand) *wireRequest {
	ops := []string{"read_block", "write_block", "gather", "redist_ship", "meta", ""}
	w := &wireRequest{
		Op:      ops[rng.Intn(len(ops))],
		ID:      darray.ID{Proc: rng.Intn(8), Seq: rng.Intn(1000)},
		ID2:     darray.ID{Proc: rng.Intn(8), Seq: rng.Intn(1000)},
		Gidx:    randInts(rng, 3),
		Offs:    randInts(rng, 8),
		Lo:      randInts(rng, 3),
		Hi:      randInts(rng, 3),
		Step:    randInts(rng, 3),
		Lo2:     randInts(rng, 3),
		Slot:    rng.Intn(16),
		Which:   []string{"", "lead", "trail"}[rng.Intn(3)],
		Procs:   randInts(rng, 4),
		Node:    rng.Intn(8),
		Seq:     rng.Uint64() >> rng.Intn(64),
		Call:    rng.Uint64() >> rng.Intn(64),
		Pair:    rng.Intn(8),
		Src:     rng.Intn(8),
		Dst:     rng.Intn(8),
		Origin:  rng.Intn(8),
		ReplyID: rng.Uint64() >> rng.Intn(64),
		AckProc: rng.Intn(8),
		AckID:   rng.Uint64() >> rng.Intn(64),
	}
	if rng.Intn(3) == 0 {
		w.Meta = randMeta(rng)
	}
	if rng.Intn(3) == 0 {
		w.Gidxs = [][]int{randInts(rng, 3), randInts(rng, 3)}
	}
	if rng.Intn(2) == 0 {
		w.Vals = make([]float64, rng.Intn(32))
		for i := range w.Vals {
			w.Vals[i] = rng.NormFloat64()
		}
	}
	for i := rng.Intn(3); i > 0; i-- {
		w.Ships = append(w.Ships, wireShip{
			DstProc: rng.Intn(8),
			SrcLo:   randInts(rng, 3), SrcHi: randInts(rng, 3),
			DstLo: randInts(rng, 3), DstHi: randInts(rng, 3),
			Step:    randInts(rng, 3),
			SrcOffs: randInts(rng, 6), DstOffs: randInts(rng, 6),
			SrcSlot: rng.Intn(8), DstSlot: rng.Intn(8),
			Pair: rng.Intn(8),
		})
	}
	return w
}

func randWireResponse(rng *rand.Rand) *wireResponse {
	w := &wireResponse{
		ReplyID: rng.Uint64() >> rng.Intn(64),
		Status:  Status(rng.Intn(8)),
		Pair:    rng.Intn(8),
	}
	if rng.Intn(2) == 0 {
		w.Vals = make([]float64, rng.Intn(32))
		for i := range w.Vals {
			w.Vals[i] = rng.NormFloat64()
		}
	}
	switch rng.Intn(4) {
	case 0:
		w.Info = randMeta(rng)
	case 1:
		w.Info = rng.Intn(100)
	case 2:
		w.Info = []grid.Dist{{Kind: grid.DistBlock}}
	}
	return w
}

// bothWays drives one envelope through the custom codec and the gob
// fallback and requires identical decoded results — the codec must be a
// drop-in replacement for the PR-9 gob wire on every protocol struct.
func bothWays(t *testing.T, v any) {
	t.Helper()
	bin, err := wire.AppendAny(nil, v, false)
	if err != nil {
		t.Fatalf("codec AppendAny(%T): %v", v, err)
	}
	if bin[0] < wire.CustomBase {
		t.Fatalf("%T did not take the custom codec path (type code %d)", v, bin[0])
	}
	gotBin, rest, err := wire.ReadAny(bin)
	if err != nil || len(rest) != 0 {
		t.Fatalf("codec ReadAny(%T): %v (rest %d)", v, err, len(rest))
	}
	gb, err := wire.AppendAny(nil, v, true)
	if err != nil {
		t.Fatalf("gob AppendAny(%T): %v", v, err)
	}
	gotGob, rest, err := wire.ReadAny(gb)
	if err != nil || len(rest) != 0 {
		t.Fatalf("gob ReadAny(%T): %v (rest %d)", v, err, len(rest))
	}
	if !reflect.DeepEqual(gotBin, gotGob) {
		t.Fatalf("codec disagreement on %T:\n  codec: %#v\n  gob:   %#v", v, gotBin, gotGob)
	}
}

func TestAMCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bothWays(t, &wireRequest{})
	bothWays(t, &wireResponse{})
	bothWays(t, &wireAck{})
	for i := 0; i < 50; i++ {
		bothWays(t, randWireRequest(rng))
		bothWays(t, randWireResponse(rng))
		bothWays(t, &wireAck{AckID: rng.Uint64(), Status: Status(rng.Intn(4)), Pair: rng.Intn(8)})
	}
}

// TestAMCodecTruncated ensures the positional decoders fail cleanly on
// every truncation instead of panicking or over-reading.
func TestAMCodecTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full, err := wire.AppendAny(nil, randWireRequest(rng), false)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, _, err := wire.ReadAny(full[:n]); err == nil {
			t.Fatalf("ReadAny accepted a %d-byte prefix of a %d-byte request", n, len(full))
		}
	}
}

// FuzzAMWireCodec is the randomized codec-vs-gob equivalence pin the CI
// fuzz-smoke job runs: for any protocol envelope, the custom codec and
// the gob fallback must decode to identical values.
func FuzzAMWireCodec(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i <= int(n)%8; i++ {
			switch rng.Intn(3) {
			case 0:
				bothWays(t, randWireRequest(rng))
			case 1:
				bothWays(t, randWireResponse(rng))
			default:
				bothWays(t, &wireAck{AckID: rng.Uint64(), Status: Status(rng.Intn(4)), Pair: rng.Intn(8)})
			}
		}
	})
}
