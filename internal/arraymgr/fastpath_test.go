package arraymgr

import (
	"testing"

	"repro/internal/grid"
)

// fastPathSpec distributes a 32x32 array over a 2x2 grid, so processor 0
// owns the interior-local rectangle [0,16)x[0,16).
func fastPathSpec() CreateSpec {
	spec := basicSpec(4)
	spec.Dims = []int{32, 32}
	return spec
}

// TestLocalFastPathZeroAllocs pins the zero-copy local fast path at zero
// heap allocations and zero messages per operation: a wholly-local
// rectangle moves between the caller's buffer and section storage without
// touching the router or the allocator.
func TestLocalFastPathZeroAllocs(t *testing.T) {
	machine, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())

	lo, hi := []int{0, 0}, []int{16, 16}
	buf := make([]float64, 256)
	for i := range buf {
		buf[i] = float64(i)
	}
	if st := m.WriteBlock(0, id, lo, hi, buf); st != StatusOK {
		t.Fatalf("warm-up WriteBlock: %v", st)
	}

	before := machine.Router().Sent()
	writeAllocs := testing.AllocsPerRun(200, func() {
		if st := m.WriteBlock(0, id, lo, hi, buf); st != StatusOK {
			t.Errorf("WriteBlock: %v", st)
		}
	})
	readAllocs := testing.AllocsPerRun(200, func() {
		if st := m.ReadBlockInto(0, id, lo, hi, buf); st != StatusOK {
			t.Errorf("ReadBlockInto: %v", st)
		}
	})
	if writeAllocs != 0 {
		t.Errorf("local WriteBlock: %v allocs/op, want 0", writeAllocs)
	}
	if readAllocs != 0 {
		t.Errorf("local ReadBlockInto: %v allocs/op, want 0", readAllocs)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("local fast path sent %d messages, want 0", sent)
	}
}

// TestLocalGatherScatterFastPath pins the indexed plane's local fast path:
// when every index of a gather or scatter resolves to the requesting
// processor, the operation touches neither the router nor the allocator,
// and the k=1 element ops ride the same path through the scratch pool.
func TestLocalGatherScatterFastPath(t *testing.T) {
	machine, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec()) // 32x32 over 2x2: proc 0 owns [0,16)^2

	local := [][]int{{0, 0}, {15, 15}, {3, 7}, {3, 7}, {12, 1}}
	vals := []float64{1, 2, 3, 4, 5}
	dst := make([]float64, len(local))
	if st := m.ScatterElements(0, id, local, vals); st != StatusOK {
		t.Fatalf("warm-up ScatterElements: %v", st)
	}

	before := machine.Router().Sent()
	scatterAllocs := testing.AllocsPerRun(200, func() {
		if st := m.ScatterElements(0, id, local, vals); st != StatusOK {
			t.Errorf("ScatterElements: %v", st)
		}
	})
	gatherAllocs := testing.AllocsPerRun(200, func() {
		if st := m.GatherElementsInto(0, id, local, dst); st != StatusOK {
			t.Errorf("GatherElementsInto: %v", st)
		}
	})
	readAllocs := testing.AllocsPerRun(200, func() {
		if _, st := m.ReadElement(0, id, local[0]); st != StatusOK {
			t.Errorf("ReadElement: %v", st)
		}
	})
	writeAllocs := testing.AllocsPerRun(200, func() {
		if st := m.WriteElement(0, id, local[1], 9); st != StatusOK {
			t.Errorf("WriteElement: %v", st)
		}
	})
	if scatterAllocs != 0 {
		t.Errorf("local ScatterElements: %v allocs/op, want 0", scatterAllocs)
	}
	if gatherAllocs != 0 {
		t.Errorf("local GatherElementsInto: %v allocs/op, want 0", gatherAllocs)
	}
	if readAllocs != 0 {
		t.Errorf("local ReadElement: %v allocs/op, want 0", readAllocs)
	}
	if writeAllocs != 0 {
		t.Errorf("local WriteElement: %v allocs/op, want 0", writeAllocs)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("local indexed fast path sent %d messages, want 0", sent)
	}

	// The fast path preserves semantics: values land where a write_element
	// loop puts them (the repeated {3,7} takes its last value).
	for i, idx := range local {
		want := vals[i]
		if i == 2 {
			want = vals[3]
		}
		if idx[0] == 15 && idx[1] == 15 {
			want = 9 // the WriteElement pin above
		}
		got, st := m.ReadElement(0, id, idx)
		if st != StatusOK || got != want {
			t.Errorf("element %v = %v (%v), want %v", idx, got, st, want)
		}
	}

	// A vector with any remote index declines the fast path but still
	// succeeds through the coordinator.
	mixed := [][]int{{0, 0}, {20, 20}}
	before = machine.Router().Sent()
	if st := m.GatherElementsInto(0, id, mixed, make([]float64, 2)); st != StatusOK {
		t.Fatalf("mixed GatherElementsInto: %v", st)
	}
	if sent := machine.Router().Sent() - before; sent == 0 {
		t.Error("mixed-owner gather sent no messages; fast path must decline")
	}
	// Malformed requests keep their authoritative statuses.
	if st := m.GatherElementsInto(0, id, [][]int{{0, 0}}, make([]float64, 2)); st != StatusInvalid {
		t.Errorf("wrong-size destination: %v", st)
	}
	if _, st := m.ReadElement(0, id, []int{32, 0}); st != StatusInvalid {
		t.Errorf("out-of-range element: %v", st)
	}
}

// TestReadBlockIntoMatchesReadBlock checks the buffer-reuse read against
// the allocating read on local, remote and owner-spanning rectangles,
// including the fallback cases the fast path must decline.
func TestReadBlockIntoMatchesReadBlock(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())
	vals := make([]float64, 32*32)
	for i := range vals {
		vals[i] = float64(3*i + 1)
	}
	if st := m.WriteBlock(0, id, []int{0, 0}, []int{32, 32}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}

	rects := []struct {
		name   string
		lo, hi []int
	}{
		{"wholly-local", []int{2, 3}, []int{14, 16}},
		{"wholly-remote", []int{16, 16}, []int{32, 32}},
		{"spans-owners", []int{8, 8}, []int{24, 24}},
		{"whole-array", []int{0, 0}, []int{32, 32}},
	}
	for _, r := range rects {
		t.Run(r.name, func(t *testing.T) {
			want, st := m.ReadBlock(0, id, r.lo, r.hi)
			if st != StatusOK {
				t.Fatalf("ReadBlock: %v", st)
			}
			dst := make([]float64, grid.RectSize(r.lo, r.hi))
			if st := m.ReadBlockInto(0, id, r.lo, r.hi, dst); st != StatusOK {
				t.Fatalf("ReadBlockInto: %v", st)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
				}
			}
		})
	}

	// A wrong-sized buffer is rejected, not silently truncated.
	if st := m.ReadBlockInto(0, id, []int{0, 0}, []int{4, 4}, make([]float64, 3)); st != StatusInvalid {
		t.Fatalf("short buffer: %v", st)
	}
	// Freed arrays fail through the fallback path.
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if st := m.ReadBlockInto(0, id, []int{0, 0}, []int{4, 4}, make([]float64, 16)); st != StatusNotFound {
		t.Fatalf("freed ReadBlockInto: %v", st)
	}
}

// TestSerialCoordinatorEquivalence keeps the E22 ablation honest: the
// serial owner-at-a-time coordinator must return exactly what the
// concurrent scatter/gather coordinator returns.
func TestSerialCoordinatorEquivalence(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())
	vals := make([]float64, 32*32)
	for i := range vals {
		vals[i] = float64(i * 7)
	}
	if st := m.WriteBlock(0, id, []int{0, 0}, []int{32, 32}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	lo, hi := []int{3, 5}, []int{29, 31}
	want, st := m.ReadBlock(0, id, lo, hi)
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	got, st := m.ReadBlockSerial(0, id, lo, hi)
	if st != StatusOK {
		t.Fatalf("ReadBlockSerial: %v", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serial[%d] = %v, concurrent %v", i, got[i], want[i])
		}
	}
}

// TestControlFanoutBudget asserts the combining-tree message budget of the
// batched control plane: creating or freeing an array distributed over P
// processors costs exactly one user request plus P-1 tree messages (each
// non-root target receives one), independent of how the tree is shaped.
func TestControlFanoutBudget(t *testing.T) {
	const p = 8
	machine, m := newTestManager(t, p)
	spec := basicSpec(p)
	spec.Dims = []int{16, 16}
	spec.Distrib = []grid.Decomp{grid.BlockOf(4), grid.BlockOf(2)}

	before := machine.Router().Sent()
	id := mustCreate(t, m, 0, spec)
	if got, want := machine.Router().Sent()-before, uint64(1+p-1); got != want {
		t.Errorf("create over %d processors sent %d messages, want %d", p, got, want)
	}

	before = machine.Router().Sent()
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+p-1); got != want {
		t.Errorf("free over %d processors sent %d messages, want %d", p, got, want)
	}

	// The sections really exist everywhere and really are gone afterwards.
	id2 := mustCreate(t, m, 0, spec)
	for proc := 0; proc < p; proc++ {
		if _, st := m.FindLocal(proc, id2); st != StatusOK {
			t.Fatalf("FindLocal(%d): %v", proc, st)
		}
	}
	if st := m.FreeArray(0, id2); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	for proc := 0; proc < p; proc++ {
		if _, st := m.FindLocal(proc, id2); st != StatusNotFound {
			t.Fatalf("freed FindLocal(%d): %v", proc, st)
		}
	}
}
