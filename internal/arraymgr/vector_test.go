package arraymgr

import (
	"math/rand"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
)

// TestGatherScatterPerElementEquivalence is the equivalence property of the
// indexed plane: GatherElements/ScatterElements must agree with
// read_element/write_element loops across decompositions, border widths,
// indexing orders and element types, including repeated indices.
func TestGatherScatterPerElementEquivalence(t *testing.T) {
	cases := []struct {
		name string
		p    int
		spec func(p int) CreateSpec
	}{
		{"2d/row", 4, func(p int) CreateSpec { return basicSpec(p) }},
		{"2d/col", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Indexing = grid.ColMajor
			return s
		}},
		{"2d/bordered", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Borders = ExplicitBorders{1, 2, 0, 1}
			return s
		}},
		{"2d/int", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Type = darray.Int
			return s
		}},
		{"1d/subset-procs", 6, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Dims = []int{20}
			s.Procs = []int{5, 1, 3, 0}
			s.Distrib = []grid.Decomp{grid.BlockDefault()}
			return s
		}},
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, m := newTestManager(t, c.p)
			spec := c.spec(c.p)
			id := mustCreate(t, m, 0, spec)

			const k = 40
			indices := make([][]int, k)
			vals := make([]float64, k)
			for i := range indices {
				idx := make([]int, len(spec.Dims))
				for d := range idx {
					idx[d] = rng.Intn(spec.Dims[d])
				}
				indices[i] = idx
				vals[i] = float64(i + 1)
			}
			indices[k-1] = indices[0] // repeated index: last writer wins

			if st := m.ScatterElements(0, id, indices, vals); st != StatusOK {
				t.Fatalf("ScatterElements: %v", st)
			}
			got, st := m.GatherElements(0, id, indices)
			if st != StatusOK {
				t.Fatalf("GatherElements: %v", st)
			}
			if len(got) != k {
				t.Fatalf("gather returned %d values for %d indices", len(got), k)
			}
			for i, idx := range indices {
				want, st := m.ReadElement(0, id, idx)
				if st != StatusOK {
					t.Fatalf("ReadElement(%v): %v", idx, st)
				}
				if got[i] != want {
					t.Fatalf("gather[%d] (%v) = %v, read_element says %v", i, idx, got[i], want)
				}
			}
			// The scatter must equal a sequential write_element loop: replay
			// it per element on a second array and compare snapshots.
			id2 := mustCreate(t, m, 0, spec)
			for i, idx := range indices {
				if st := m.WriteElement(0, id2, idx, vals[i]); st != StatusOK {
					t.Fatalf("WriteElement: %v", st)
				}
			}
			lo := make([]int, len(spec.Dims))
			a, st := m.ReadBlock(0, id, lo, spec.Dims)
			if st != StatusOK {
				t.Fatalf("ReadBlock: %v", st)
			}
			b, st := m.ReadBlock(0, id2, lo, spec.Dims)
			if st != StatusOK {
				t.Fatalf("ReadBlock: %v", st)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("scatter and write_element loop disagree at %d: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestGatherScatterMessageBudget asserts the indexed plane's budget: a
// k-element gather or scatter across P owning processors costs at most one
// request/reply pair per owner (here, one router message per request; the
// reply rides a channel), never one per element.
func TestGatherScatterMessageBudget(t *testing.T) {
	const p = 4
	machine, m := newTestManager(t, p)
	spec := basicSpec(p)
	spec.Dims = []int{64}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)

	// 32 indices spread over all 4 owners, from processor 0 (itself an
	// owner): 1 coordinator request + 3 remote owner requests.
	indices := make([][]int, 32)
	vals := make([]float64, len(indices))
	for i := range indices {
		indices[i] = []int{(i * 7) % 64}
		vals[i] = float64(i)
	}
	budget := uint64(1 + p - 1)

	before := machine.Router().Sent()
	if st := m.ScatterElements(0, id, indices, vals); st != StatusOK {
		t.Fatalf("ScatterElements: %v", st)
	}
	if got := machine.Router().Sent() - before; got > budget {
		t.Errorf("%d-element scatter across %d owners sent %d messages, budget %d", len(indices), p, got, budget)
	}

	before = machine.Router().Sent()
	if _, st := m.GatherElements(0, id, indices); st != StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	if got := machine.Router().Sent() - before; got > budget {
		t.Errorf("%d-element gather across %d owners sent %d messages, budget %d", len(indices), p, got, budget)
	}

	// All indices on one remote owner: exactly two messages (coordinator +
	// that owner), regardless of k.
	remote := make([][]int, 16)
	for i := range remote {
		remote[i] = []int{48 + i%16}
	}
	before = machine.Router().Sent()
	if _, st := m.GatherElements(0, id, remote); st != StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	if got := machine.Router().Sent() - before; got != 2 {
		t.Errorf("single-owner gather sent %d messages, want 2", got)
	}
}

// TestScatterDuplicateIndices pins the last-writer-wins ordering of
// repeated indices within one ScatterElements request, including
// duplicates that straddle other owners' elements.
func TestScatterDuplicateIndices(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Dims = []int{16}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)

	indices := [][]int{{2}, {9}, {2}, {14}, {2}, {9}}
	vals := []float64{1, 2, 3, 4, 5, 6}
	if st := m.ScatterElements(0, id, indices, vals); st != StatusOK {
		t.Fatalf("ScatterElements: %v", st)
	}
	for _, c := range []struct {
		idx  int
		want float64
	}{{2, 5}, {9, 6}, {14, 4}} {
		got, st := m.ReadElement(0, id, []int{c.idx})
		if st != StatusOK || got != c.want {
			t.Errorf("element %d = %v (%v), want %v (last writer)", c.idx, got, st, c.want)
		}
	}
}

// TestOwnerReplyZeroAllocs pins the owner-side service routines — the
// block and vector read servers backed by the per-server reply-buffer pool
// — at zero heap allocations per request at a steady state.
func TestOwnerReplyZeroAllocs(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())

	blockReq := &request{id: id, lo: []int{0, 0}, hi: []int{16, 16}}
	vectorReq := &request{id: id, offs: []int{0, 5, 17, 100, 255, 5}}
	srv := m.servers[0]

	// Warm the pool: the first requests allocate their buffers.
	for i := 0; i < 3; i++ {
		if r := m.doReadBlockLocal(0, blockReq); r.status != StatusOK {
			t.Fatalf("doReadBlockLocal: %v", r.status)
		} else {
			srv.putBuf(r.vals)
		}
		if r := m.doReadVectorLocal(0, vectorReq); r.status != StatusOK {
			t.Fatalf("doReadVectorLocal: %v", r.status)
		} else {
			srv.putBuf(r.vals)
		}
	}

	block := testing.AllocsPerRun(200, func() {
		r := m.doReadBlockLocal(0, blockReq)
		if r.status != StatusOK {
			t.Errorf("doReadBlockLocal: %v", r.status)
		}
		srv.putBuf(r.vals)
	})
	vector := testing.AllocsPerRun(200, func() {
		r := m.doReadVectorLocal(0, vectorReq)
		if r.status != StatusOK {
			t.Errorf("doReadVectorLocal: %v", r.status)
		}
		srv.putBuf(r.vals)
	})
	if block != 0 {
		t.Errorf("read_block_local reply: %v allocs/op, want 0 (pooled)", block)
	}
	if vector != 0 {
		t.Errorf("read_vector_local reply: %v allocs/op, want 0 (pooled)", vector)
	}
}

// TestGatherScatterErrors covers the failure statuses of the indexed plane.
func TestGatherScatterErrors(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))

	if _, st := m.GatherElements(0, id, [][]int{{0, 0}, {4, 0}}); st != StatusInvalid {
		t.Errorf("out-of-range gather: %v", st)
	}
	if _, st := m.GatherElements(0, id, [][]int{{0}}); st != StatusInvalid {
		t.Errorf("short index tuple: %v", st)
	}
	if st := m.ScatterElements(0, id, [][]int{{0, 0}}, []float64{1, 2}); st != StatusInvalid {
		t.Errorf("length mismatch: %v", st)
	}
	if st := m.GatherElementsInto(0, id, [][]int{{0, 0}}, make([]float64, 2)); st != StatusInvalid {
		t.Errorf("wrong-size destination: %v", st)
	}
	if _, st := m.GatherElements(7, id, [][]int{{0, 0}}); st != StatusInvalid {
		t.Errorf("bad processor: %v", st)
	}
	// The empty vector succeeds and moves nothing.
	if vals, st := m.GatherElements(0, id, nil); st != StatusOK || len(vals) != 0 {
		t.Errorf("empty gather: %v %v", vals, st)
	}
	if st := m.ScatterElements(0, id, nil, nil); st != StatusOK {
		t.Errorf("empty scatter: %v", st)
	}
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if _, st := m.GatherElements(0, id, [][]int{{0, 0}}); st != StatusNotFound {
		t.Errorf("freed gather: %v", st)
	}
	if st := m.ScatterElements(0, id, [][]int{{0, 0}}, []float64{1}); st != StatusNotFound {
		t.Errorf("freed scatter: %v", st)
	}
}

// TestGatherElementsInto drives the buffer-reuse gather: one caller-owned
// buffer serves repeated gathers and always agrees with GatherElements.
func TestGatherElementsInto(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))
	indices := [][]int{{0, 0}, {3, 3}, {1, 2}, {2, 1}, {3, 3}}
	vals := []float64{10, 20, 30, 40, 50}
	if st := m.ScatterElements(0, id, indices, vals); st != StatusOK {
		t.Fatalf("ScatterElements: %v", st)
	}
	want, st := m.GatherElements(0, id, indices)
	if st != StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	dst := make([]float64, len(indices))
	for run := 0; run < 3; run++ {
		if st := m.GatherElementsInto(0, id, indices, dst); st != StatusOK {
			t.Fatalf("GatherElementsInto: %v", st)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("run %d: dst[%d] = %v, want %v", run, i, dst[i], want[i])
			}
		}
	}
}
