// Wire marshalling for the array-manager protocol: typed envelopes that
// replace the in-process *request/*response pointers at the transport
// seam, so the data planes run unchanged across real OS processes.
//
// In-process, the protocol leans on shared memory in three ways a wire
// cannot carry: replies and acks ride channels embedded in the request,
// pooled reply/ship buffers are recycled by whichever side finishes with
// them, and retransmission re-sends the same *request pointer. Each gets
// an explicit wire analogue here:
//
//   - requests to a non-hosted owner travel as *wireRequest (exported
//     fields, gob-encodable); the reply channel is replaced by a ReplyID
//     into the coordinator's pending table, and the owner answers with a
//     *wireResponse message (kindAMReply) instead of a channel send;
//   - redistribution acks are replaced the same way: ship orders carry
//     the coordinator's (AckProc, AckID) and destination owners answer
//     with *wireAck messages (kindAMAck) into the ack table;
//   - pooled buffers never cross: the Transport contract says Send
//     serializes synchronously, so a pooled buffer or ship request can
//     be recycled the moment a remote Send returns, and a decoded
//     payload on the receiving side is fresh heap that is dropped, not
//     pooled (recycle guards every coordinator put site).
//
// Envelope decode happens in the serve loop, before the dedup filter, so
// retransmitted wire requests are filtered exactly like in-process ones.
package arraymgr

import (
	"encoding/gob"
	"errors"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg"
)

// kindAMReply carries wire replies back to a coordinator's pending
// table; kindAMAck carries redistribution acks to the ack table. Both
// exist only because channels cannot cross process boundaries —
// in-process traffic never uses them.
const (
	kindAMReply = -103
	kindAMAck   = -104
)

func init() {
	// Concrete types that cross the wire inside `any` payloads or the
	// wireResponse.Info field. Registration is by name in both processes
	// (same binary on both ends), so ids always agree.
	gob.Register(&wireRequest{})
	gob.Register(&wireResponse{})
	gob.Register(&wireAck{})
	gob.Register(&darray.Meta{})
	gob.Register(darray.ID{})
	gob.Register([]grid.Dist(nil))
}

// wireShip is redistShip with exported fields.
type wireShip struct {
	DstProc          int
	SrcLo, SrcHi     []int
	DstLo, DstHi     []int
	Step             []int
	SrcOffs, DstOffs []int
	SrcSlot, DstSlot int
	Pair             int
}

// wireRequest is the gob-encodable subset of request: every field an op
// that can target a remote owner uses. CreateSpec and BorderSpec are
// absent by design — create_array and verify_array are coordinator
// self-sends, always local.
type wireRequest struct {
	Op      string
	ID, ID2 darray.ID
	Meta    *darray.Meta
	Gidx    []int
	Gidxs   [][]int
	Offs    []int
	Lo, Hi  []int
	Step    []int
	Lo2     []int
	Vals    []float64
	Slot    int
	Which   string
	Procs   []int
	Node    int
	Ships   []wireShip

	Seq      uint64
	Call     uint64
	Pair     int
	Src, Dst int
	Origin   int

	// ReplyID indexes the coordinator's pending-reply table (request/
	// reply ops); AckProc/AckID name the redistribution coordinator's
	// ack table (ship ops). Zero means "no remote completion expected".
	ReplyID uint64
	AckProc int
	AckID   uint64
}

// wireResponse is one reply travelling back over the wire. Section never
// crosses: Find is a local-address-space operation (§5.1.4).
type wireResponse struct {
	ReplyID uint64
	Status  Status
	Vals    []float64
	Info    any
	Pair    int
}

// wireAck is one redistribution pair acknowledgement.
type wireAck struct {
	AckID  uint64
	Status Status
	Pair   int
}

// toWire builds the envelope for req. Slices are shared, not copied:
// the Transport contract requires Send to serialize before returning,
// which is the deep copy.
func toWire(req *request) *wireRequest {
	w := &wireRequest{
		Op: req.op, ID: req.id, ID2: req.id2,
		Meta: req.meta,
		Gidx: req.gidx, Gidxs: req.gidxs, Offs: req.offs,
		Lo: req.lo, Hi: req.hi, Step: req.step, Lo2: req.lo2,
		Vals: req.vals, Slot: req.slot, Which: req.which,
		Procs: req.procs, Node: req.node,
		Seq: req.seq, Call: req.call, Pair: req.pair,
		Src: req.src, Dst: req.dst, Origin: req.origin,
		ReplyID: req.replyID, AckProc: req.ackProc, AckID: req.ackID,
	}
	if len(req.ships) > 0 {
		w.Ships = make([]wireShip, len(req.ships))
		for i, sh := range req.ships {
			w.Ships[i] = wireShip{
				DstProc: sh.dstProc,
				SrcLo:   sh.srcLo, SrcHi: sh.srcHi,
				DstLo: sh.dstLo, DstHi: sh.dstHi,
				Step:    sh.step,
				SrcOffs: sh.srcOffs, DstOffs: sh.dstOffs,
				SrcSlot: sh.srcSlot, DstSlot: sh.dstSlot,
				Pair: sh.pair,
			}
		}
	}
	return w
}

// toRequest rebuilds a request from a decoded envelope. reply and ack
// stay nil — a nil reply routes respond through the wire, a nil ack
// routes shipAck through the wire.
func (w *wireRequest) toRequest() *request {
	req := &request{
		op: w.Op, id: w.ID, id2: w.ID2,
		meta: w.Meta,
		gidx: w.Gidx, gidxs: w.Gidxs, offs: w.Offs,
		lo: w.Lo, hi: w.Hi, step: w.Step, lo2: w.Lo2,
		vals: w.Vals, slot: w.Slot, which: w.Which,
		procs: w.Procs, node: w.Node,
		seq: w.Seq, call: w.Call, pair: w.Pair,
		src: w.Src, dst: w.Dst, origin: w.Origin,
		replyID: w.ReplyID, ackProc: w.AckProc, ackID: w.AckID,
	}
	if len(w.Ships) > 0 {
		req.ships = make([]redistShip, len(w.Ships))
		for i, sh := range w.Ships {
			req.ships[i] = redistShip{
				dstProc: sh.DstProc,
				srcLo:   sh.SrcLo, srcHi: sh.SrcHi,
				dstLo: sh.DstLo, dstHi: sh.DstHi,
				step:    sh.Step,
				srcOffs: sh.SrcOffs, dstOffs: sh.DstOffs,
				srcSlot: sh.SrcSlot, dstSlot: sh.DstSlot,
				pair: sh.Pair,
			}
		}
	}
	return req
}

// registerReply allocates a reply id for a request headed to a remote
// owner, enters its one-shot channel in the pending table, and caches
// the wire form for retransmission. Ids are never zero.
func (m *Manager) registerReply(req *request) {
	id := m.nextReply.Add(1)
	req.replyID = id
	m.pendMu.Lock()
	if m.pending == nil {
		m.pending = make(map[uint64]chan response)
	}
	m.pending[id] = req.reply
	m.pendMu.Unlock()
	req.wire = toWire(req)
}

// unregisterReply drops the pending entry once await has its answer (or
// gave up); a straggler reply to a dropped id is discarded by
// deliverReply. No-op for requests that never crossed the wire.
func (m *Manager) unregisterReply(req *request) {
	if req.replyID == 0 {
		return
	}
	m.pendMu.Lock()
	delete(m.pending, req.replyID)
	m.pendMu.Unlock()
}

// deliverReply routes one wire reply into the awaiting coordinator's
// one-shot channel. Late or duplicate replies (abandoned call, already
// answered) are dropped without blocking the serve loop.
func (m *Manager) deliverReply(w *wireResponse) {
	m.pendMu.Lock()
	ch := m.pending[w.ReplyID]
	m.pendMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- response{status: w.Status, vals: w.Vals, info: w.Info, pair: w.Pair}:
	default:
	}
}

// registerAck enters a redistribution coordinator's shared ack channel
// in the ack table for the duration of the operation.
func (m *Manager) registerAck(ch chan response) uint64 {
	id := m.nextAck.Add(1)
	m.ackMu.Lock()
	if m.acks == nil {
		m.acks = make(map[uint64]chan response)
	}
	m.acks[id] = ch
	m.ackMu.Unlock()
	return id
}

func (m *Manager) unregisterAck(id uint64) {
	if id == 0 {
		return
	}
	m.ackMu.Lock()
	delete(m.acks, id)
	m.ackMu.Unlock()
}

// deliverAck routes one wire ack into its coordinator's shared channel.
// The channel is buffered for the worst case; a straggler overflowing
// it after abandonment is dropped rather than blocking the serve loop.
func (m *Manager) deliverAck(w *wireAck) {
	m.ackMu.Lock()
	ch := m.acks[w.AckID]
	m.ackMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- response{status: w.Status, pair: w.Pair}:
	default:
	}
}

// respond completes one handled request: through the one-shot channel
// in-process, as a kindAMReply message when the request arrived over
// the wire. Section results never cross (Find is local-only).
func (m *Manager) respond(proc int, req *request, resp response) {
	if req.reply != nil {
		if req.seq != 0 {
			// Recovery mode: the coordinator may have abandoned this call
			// (timeout, dead peer) with a late reply already buffered; never
			// let a server goroutine block on the one-shot channel.
			select {
			case req.reply <- resp:
			default:
			}
			return
		}
		req.reply <- resp
		return
	}
	if req.replyID == 0 {
		return
	}
	w := &wireResponse{ReplyID: req.replyID, Status: resp.status, Vals: resp.vals, Info: resp.info, Pair: resp.pair}
	tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMReply}
	_ = m.machine.Router().Send(proc, req.src, tag, w)
}

// shipAck acknowledges one redistribution pair: through the shared
// channel in-process, as a kindAMAck message when the ship order
// arrived over the wire.
func (m *Manager) shipAck(proc int, req *request, r response) {
	if req.ack != nil {
		req.ack <- r
		return
	}
	if req.ackID == 0 {
		return
	}
	w := &wireAck{AckID: req.ackID, Status: r.status, Pair: r.pair}
	tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMAck}
	_ = m.machine.Router().Send(proc, req.ackProc, tag, w)
}

// postShip sends one one-way ship message (redist_src or redist_ship),
// as the request pointer in-process or its envelope over the wire. A
// remote send serializes before returning, so the caller may recycle
// the request and its buffers as soon as postShip returns.
func (m *Manager) postShip(src, dst int, req *request) error {
	router := m.machine.Router()
	tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMShip}
	if router.Local(dst) {
		return router.Send(src, dst, tag, req)
	}
	return router.Send(src, dst, tag, toWire(req))
}

// recycle returns a reply buffer to the pool of the server that drew
// it — unless that server lives in another OS process, in which case
// the local bytes are a decoded copy on fresh heap and are left to the
// garbage collector.
func (m *Manager) recycle(owner int, vals []float64) {
	if !m.machine.Router().Local(owner) {
		return
	}
	m.servers[owner].putBuf(vals)
}

// sendStatus maps a router send failure to a status: a closed router is
// StatusClosed (so core surfaces msg.ErrClosed), anything else a system
// error.
func sendStatus(err error) Status {
	if errors.Is(err, msg.ErrClosed) {
		return StatusClosed
	}
	return StatusError
}
