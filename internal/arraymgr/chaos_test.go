package arraymgr

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/msg"
	"repro/internal/vp"
)

// The chaos oracle: the same randomized all-paths property harness as
// oracle_test.go, but run over a router that drops, duplicates, delays
// and reorders messages under a seeded fault plan, with the manager's
// timeout/retry policy installed. Correctness must be bit-identical to
// the sequential reference — the fault plane may cost retransmits, never
// wrong answers — and the retransmit counters must stay within a budget
// proportional to the injected drops (no retransmit storms).

// chaosFaultPlan is the standard chaos mix: drop and duplicate a little
// under one in ten messages each, jitter deliveries by up to 100µs, and
// swap queue neighbours now and then.
func chaosFaultPlan(seed int64) *msg.FaultPlan {
	return &msg.FaultPlan{
		Seed: seed,
		Rule: msg.FaultRule{
			Drop:    0.08,
			Dup:     0.08,
			Jitter:  100 * time.Microsecond,
			Reorder: 0.1,
		},
	}
}

// chaosPolicy keeps the per-attempt timeout far above the plan's jitter
// (so a delayed message is never mistaken for a lost one) while staying
// small enough that the drops the plan does inject cost milliseconds,
// not seconds. Retries is generous: eleven consecutive drops of the
// same request at p=0.08 has probability ~1e-12.
func chaosPolicy() *CallPolicy {
	return &CallPolicy{
		Timeout: 3 * time.Millisecond,
		Retries: 10,
		Backoff: 200 * time.Microsecond,
	}
}

// shadowSpec derives a second array specification with the same shape
// and element type but a deliberately different distribution (cyclic in
// the leading dimension), so redistribute ops cross decomposition
// boundaries.
func shadowSpec(spec CreateSpec) CreateSpec {
	out := spec
	out.Borders = NoBorderSpec{}
	distrib := make([]grid.Decomp, len(spec.Dims))
	distrib[0] = grid.CyclicDefault()
	for i := 1; i < len(distrib); i++ {
		distrib[i] = grid.NoDecomp()
	}
	out.Distrib = distrib
	return out
}

// TestChaosOracleAllPaths re-runs the randomized operation mix of
// TestOracleAllPaths — dense, strided, gather/scatter, per-element, plus
// owner-to-owner redistribution into a differently-distributed shadow
// array — under the chaos fault plan, checking every result against the
// sequential oracle and pinning the retransmit budget.
func TestChaosOracleAllPaths(t *testing.T) {
	const ops = 40
	rng := rand.New(rand.NewSource(9))
	var totalDropped, totalDuplicated, totalRetransmits uint64
	for ci, c := range oracleCases() {
		ci, c := ci, c
		t.Run(c.name, func(t *testing.T) {
			machine, m := newTestManager(t, c.p)
			machine.Router().SetFaultPlan(chaosFaultPlan(int64(ci)*7919 + 11))
			m.SetCallPolicy(chaosPolicy())
			id := mustCreate(t, m, 0, c.spec)
			shadow := mustCreate(t, m, 0, shadowSpec(c.spec))
			ref := newOracle(c.spec.Dims, c.spec.Type)
			dims := c.spec.Dims
			nd := len(dims)

			meta, st := m.Meta(0, id)
			if st != StatusOK {
				t.Fatalf("Meta: %v", st)
			}
			origins := append([]int{0}, meta.SectionProcs()...)
			origin := func() int { return origins[rng.Intn(len(origins))] }

			nextVal := 1.0
			value := func() float64 {
				nextVal++
				return nextVal
			}

			for op := 0; op < ops; op++ {
				switch rng.Intn(8) {
				case 0: // dense write
					lo, hi, _ := randomRect(rng, dims)
					vals := make([]float64, grid.RectSize(lo, hi))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.WriteBlock(origin(), id, lo, hi, vals); st != StatusOK {
						t.Fatalf("op %d: WriteBlock: %v", op, st)
					}
					_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
						ref.set(idx, vals[k])
						return nil
					})
				case 1: // dense read
					lo, hi, _ := randomRect(rng, dims)
					got, st := m.ReadBlock(origin(), id, lo, hi)
					if st != StatusOK {
						t.Fatalf("op %d: ReadBlock: %v", op, st)
					}
					_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
						if got[k] != ref.get(idx) {
							t.Fatalf("op %d: ReadBlock[%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
						}
						return nil
					})
				case 2: // strided write
					lo, hi, step := randomRect(rng, dims)
					vals := make([]float64, grid.StridedRectSize(lo, hi, step))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.WriteBlockStrided(origin(), id, lo, hi, step, vals); st != StatusOK {
						t.Fatalf("op %d: WriteBlockStrided: %v", op, st)
					}
					_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
						ref.set(idx, vals[k])
						return nil
					})
				case 3: // strided read
					lo, hi, step := randomRect(rng, dims)
					got, st := m.ReadBlockStrided(origin(), id, lo, hi, step)
					if st != StatusOK {
						t.Fatalf("op %d: ReadBlockStrided: %v", op, st)
					}
					_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
						if got[k] != ref.get(idx) {
							t.Fatalf("op %d: strided read [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
						}
						return nil
					})
				case 4: // scatter
					indices := randomIndices(rng, dims, 1+rng.Intn(20))
					vals := make([]float64, len(indices))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.ScatterElements(origin(), id, indices, vals); st != StatusOK {
						t.Fatalf("op %d: ScatterElements: %v", op, st)
					}
					for i, idx := range indices {
						ref.set(idx, vals[i])
					}
				case 5: // gather
					indices := randomIndices(rng, dims, 1+rng.Intn(20))
					got, st := m.GatherElements(origin(), id, indices)
					if st != StatusOK {
						t.Fatalf("op %d: GatherElements: %v", op, st)
					}
					for i, idx := range indices {
						if got[i] != ref.get(idx) {
							t.Fatalf("op %d: gather[%d] (%v) = %v, oracle %v", op, i, idx, got[i], ref.get(idx))
						}
					}
				case 6: // per-element probe
					idx := randomIndices(rng, dims, 1)[0]
					if rng.Intn(2) == 0 {
						v := value()
						if st := m.WriteElement(origin(), id, idx, v); st != StatusOK {
							t.Fatalf("op %d: WriteElement: %v", op, st)
						}
						ref.set(idx, v)
					} else {
						got, st := m.ReadElement(origin(), id, idx)
						if st != StatusOK {
							t.Fatalf("op %d: ReadElement: %v", op, st)
						}
						if got != ref.get(idx) {
							t.Fatalf("op %d: ReadElement(%v) = %v, oracle %v", op, idx, got, ref.get(idx))
						}
					}
				case 7: // redistribute into the shadow array, then read it back
					lo, hi, step := randomRect(rng, dims)
					strided := false
					for _, s := range step {
						if s != 1 {
							strided = true
						}
					}
					var got []float64
					if strided {
						if st := m.RedistributeStrided(origin(), shadow, id, lo, hi, step); st != StatusOK {
							t.Fatalf("op %d: RedistributeStrided: %v", op, st)
						}
						got, st = m.ReadBlockStrided(origin(), shadow, lo, hi, step)
						if st != StatusOK {
							t.Fatalf("op %d: shadow strided readback: %v", op, st)
						}
						_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
							if got[k] != ref.get(idx) {
								t.Fatalf("op %d: redistribute [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
							}
							return nil
						})
					} else {
						if st := m.Redistribute(origin(), shadow, id, lo, hi); st != StatusOK {
							t.Fatalf("op %d: Redistribute: %v", op, st)
						}
						got, st = m.ReadBlock(origin(), shadow, lo, hi)
						if st != StatusOK {
							t.Fatalf("op %d: shadow readback: %v", op, st)
						}
						_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
							if got[k] != ref.get(idx) {
								t.Fatalf("op %d: redistribute [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
							}
							return nil
						})
					}
				}
			}

			// Final full dense readback against the oracle.
			lo := make([]int, nd)
			snap, st := m.ReadBlock(0, id, lo, dims)
			if st != StatusOK {
				t.Fatalf("final ReadBlock: %v", st)
			}
			_ = grid.ForEachRect(lo, dims, func(idx []int, k int) error {
				if snap[k] != ref.get(idx) {
					t.Fatalf("final state diverges at %v: %v vs oracle %v", idx, snap[k], ref.get(idx))
				}
				return nil
			})

			// Budget pins: retransmits must scale with injected drops (one
			// dropped redistribute fan-out request can force up to
			// owner×owner pair resends, hence the wide multiplier), and a
			// retransmit without timeouts is impossible.
			fs := machine.Router().FaultStats()
			rs := m.RetryStats()
			if rs.Retransmits > 64*(fs.Dropped+1) {
				t.Fatalf("retransmit storm: %d retransmits for %d drops", rs.Retransmits, fs.Dropped)
			}
			if rs.Retransmits > 0 && rs.Timeouts == 0 {
				t.Fatalf("%d retransmits with no recorded timeout", rs.Retransmits)
			}
			totalDropped += fs.Dropped
			totalDuplicated += fs.Duplicated
			totalRetransmits += rs.Retransmits
		})
	}
	// Across the sweep the plan must actually have bitten — a chaos run
	// that never dropped, never duplicated, or never retransmitted is not
	// exercising the recovery machinery.
	if totalDropped == 0 {
		t.Error("fault plan dropped no messages across the whole sweep")
	}
	if totalDuplicated == 0 {
		t.Error("fault plan duplicated no messages across the whole sweep")
	}
	if totalRetransmits == 0 {
		t.Error("no retransmits across the whole sweep: recovery machinery untested")
	}
}

// TestNoFaultNoRetransmits pins the quiescent case: with a policy
// installed but no fault plan, a workload identical in shape to the
// chaos mix completes with zero retransmits and zero timeouts — the
// deadline machinery is pure overhead-free bookkeeping on a healthy
// router.
func TestNoFaultNoRetransmits(t *testing.T) {
	c := oracleCases()[1] // 2d/block-block
	_, m := newTestManager(t, c.p)
	m.SetCallPolicy(chaosPolicy())
	id := mustCreate(t, m, 0, c.spec)
	dims := c.spec.Dims
	rng := rand.New(rand.NewSource(3))
	for op := 0; op < 30; op++ {
		lo, hi, _ := randomRect(rng, dims)
		vals := make([]float64, grid.RectSize(lo, hi))
		for i := range vals {
			vals[i] = float64(op)
		}
		if st := m.WriteBlock(0, id, lo, hi, vals); st != StatusOK {
			t.Fatalf("WriteBlock: %v", st)
		}
		if _, st := m.ReadBlock(1, id, lo, hi); st != StatusOK {
			t.Fatalf("ReadBlock: %v", st)
		}
	}
	rs := m.RetryStats()
	if rs.Retransmits != 0 || rs.Timeouts != 0 {
		t.Fatalf("healthy router cost retransmits=%d timeouts=%d", rs.Retransmits, rs.Timeouts)
	}
}

// killSpec builds a 1d block array over all four processors whose piece
// boundaries are known, so a full-range gather necessarily touches the
// processor the test kills.
func killSpec() CreateSpec {
	c := oracleCases()[0] // 1d/block, P=4, dims 24
	return c.spec
}

// TestKillMidGather kills an owner while a full-range dense gather is in
// flight (router latency keeps the requests airborne at kill time) and
// requires the coordinator to surface a down/timeout status within the
// policy's bounded budget instead of hanging.
func TestKillMidGather(t *testing.T) {
	machine, m := newTestManager(t, 4)
	machine.Router().SetLatency(2 * time.Millisecond)
	m.SetCallPolicy(&CallPolicy{Timeout: 3 * time.Millisecond, Retries: 2, Backoff: 200 * time.Microsecond})
	id := mustCreate(t, m, 0, killSpec())

	done := make(chan Status, 1)
	go func() {
		_, st := m.ReadBlock(0, id, []int{0}, []int{24})
		done <- st
	}()
	time.Sleep(500 * time.Microsecond)
	if err := machine.Router().KillProcessor(2); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	select {
	case st := <-done:
		if st != StatusDown && st != StatusTimeout {
			t.Fatalf("gather over a dead owner: status %v, want STATUS_DOWN or STATUS_TIMEOUT", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBlock hung after KillProcessor")
	}

	// Survivors keep serving: a rectangle owned entirely by live
	// processors still completes.
	if _, st := m.ReadBlock(0, id, []int{18}, []int{24}); st != StatusOK {
		t.Fatalf("read from surviving owner: %v", st)
	}
}

// TestKillMidRedistribute kills a source owner while an owner-to-owner
// redistribution is in flight; the coordinator's ack gather must convert
// the lost pairs into a surfaced down/timeout status, not a hang.
func TestKillMidRedistribute(t *testing.T) {
	machine, m := newTestManager(t, 4)
	m.SetCallPolicy(&CallPolicy{Timeout: 3 * time.Millisecond, Retries: 2, Backoff: 200 * time.Microsecond})
	src := mustCreate(t, m, 0, killSpec())
	dst := mustCreate(t, m, 0, shadowSpec(killSpec()))
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if st := m.WriteBlock(0, src, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("seed WriteBlock: %v", st)
	}
	machine.Router().SetLatency(2 * time.Millisecond)

	done := make(chan Status, 1)
	go func() {
		done <- m.Redistribute(0, dst, src, []int{0}, []int{24})
	}()
	time.Sleep(500 * time.Microsecond)
	if err := machine.Router().KillProcessor(1); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	select {
	case st := <-done:
		if st != StatusDown && st != StatusTimeout {
			t.Fatalf("redistribute through a dead owner: status %v, want STATUS_DOWN or STATUS_TIMEOUT", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Redistribute hung after KillProcessor")
	}
}

// TestCloseMidCallSurfacesError closes the whole machine while a
// coordinator is waiting on remote replies — even with no retry policy
// installed, the wait must observe the router's shutdown and return an
// error status rather than deadlock. (The msg-level Close semantics are
// pinned in the msg package; this is the coordinator half.)
func TestCloseMidCallSurfacesError(t *testing.T) {
	machine := vp.NewMachine(4)
	defer machine.Shutdown()
	m := New(machine)
	id := mustCreate(t, m, 0, killSpec())
	machine.Router().SetLatency(5 * time.Millisecond)

	done := make(chan Status, 1)
	go func() {
		_, st := m.ReadBlock(0, id, []int{0}, []int{24})
		done <- st
	}()
	time.Sleep(time.Millisecond)
	machine.Shutdown()
	select {
	case st := <-done:
		if st == StatusOK {
			t.Fatal("ReadBlock returned STATUS_OK across a router close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBlock hung across Close")
	}
}
