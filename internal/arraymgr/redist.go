// The redistribution plane: direct owner↔owner copies between two
// distributed arrays. The classic path for a phase change (a block LU
// panel feeding a cyclic solve, a transpose between FFT stages) is the
// client bounce — gather the rectangle to one process, scatter it back
// out under the new distribution — which doubles the messages and bytes
// and funnels everything through a single process's bandwidth. Here the
// coordinator instead computes the owner-pair intersection schedule from
// both arrays' distributions (darray.Meta.TransferSchedule) and ships
// every non-empty src-owner→dst-owner piece directly:
//
//   - one redist_src message per remote source owner, carrying that
//     owner's ships (the coordinator's own ships are serviced inline);
//   - one redist_ship message per cross-process pair, carrying the
//     packed piece from source owner to destination owner;
//   - zero messages for a pair whose source and destination cells land
//     on the same process — the piece moves with darray.CopyRect or
//     CopyOffsets under that server's lock.
//
// That is ≤1 message per non-empty owner pair (plus the per-owner
// redist_src fan-out), against read+write coordinator rounds for the
// bounce. Completion travels on an in-process ack channel shared by all
// pairs — acks ride channels like request replies, so they cost no
// messages. Ship traffic is one-way (no reply channel), so it travels
// under its own reserved message kind and bypasses handle's
// unconditional reply send.
package arraymgr

import (
	"sync"
	"time"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/trace"
)

// kindAMShip is the reserved task-class message kind carrying one-way
// redistribution traffic (redist_src, redist_ship): requests that are
// acknowledged through the coordinator's shared ack channel rather than
// a per-request reply (-101 is dcall's combine kind).
const kindAMShip = -102

// redistShip is one owner pair's piece of a redistribution, as shipped
// to the source owner: either matching strided local rectangles on both
// sides (regular×regular schedules) or paired storage offsets (srcOffs
// non-nil marks the irregular form).
type redistShip struct {
	dstProc      int
	srcLo, srcHi []int
	dstLo, dstHi []int
	step         []int
	srcOffs      []int
	dstOffs      []int
	// srcSlot/dstSlot are the grid slots the pair's cells belong to:
	// after a failover promotion a processor may own several slots, so
	// owners route each piece to the right section by slot, not by
	// processor.
	srcSlot, dstSlot int
	// pair is this ship's index in the coordinator's flattened pair
	// list: the ack identity of the resilient protocol and, with the
	// coordinator's call id, the dedup identity at the destination.
	pair int
}

// The ship-request free list. Ship requests are created by one process
// and released by another after a one-way send, so they cannot ride a
// per-server pool; a deterministic shared free list (rather than a
// sync.Pool, whose GC interaction would flake the 0 allocs/op pins)
// keeps the steady state allocation-free.
var (
	shipReqMu   sync.Mutex
	shipReqFree []*request
)

// getShipReq draws a recycled request for one-way ship traffic.
func getShipReq() *request {
	shipReqMu.Lock()
	if n := len(shipReqFree); n > 0 {
		r := shipReqFree[n-1]
		shipReqFree = shipReqFree[:n-1]
		shipReqMu.Unlock()
		return r
	}
	shipReqMu.Unlock()
	return new(request)
}

// putShipReq returns a ship request to the free list. Callers must not
// touch the request afterwards.
func putShipReq(r *request) {
	*r = request{}
	shipReqMu.Lock()
	if len(shipReqFree) < maxPooledBufs {
		shipReqFree = append(shipReqFree, r)
	}
	shipReqMu.Unlock()
}

// newShipReq draws a ship request, bypassing the free list under an
// active fault plan: the router may re-deliver the same *request pointer
// (duplication) or hold it queued past this call (jitter), so a recycled
// object could alias a later send. Faulty mode trades the 0 allocs/op
// pin for aliasing safety; reliable mode keeps the pooled path bitwise
// intact.
func newShipReq(faulty bool) *request {
	if faulty {
		return new(request)
	}
	return getShipReq()
}

// recycleShipReq is putShipReq's faulty-aware counterpart.
func recycleShipReq(faulty bool, r *request) {
	if !faulty {
		putShipReq(r)
	}
}

// handleShip dispatches one-way redistribution traffic at the server on
// proc: redist_src (this processor is a source owner; read and forward
// each piece) and redist_ship (this processor is a destination owner;
// write the piece and acknowledge).
func (m *Manager) handleShip(proc int, req *request) {
	if trace.Enabled(trace.Ops) {
		trace.Logf(trace.Ops, proc, "am: %s %v", req.op, req.id)
	}
	switch req.op {
	case "redist_src":
		m.doRedistSrc(proc, req)
		recycleShipReq(m.machine.Router().Faulty(), req)
	case "redist_ship":
		m.doRedistShip(proc, req)
	}
}

// doRedistribute is the redistribution coordinator: it computes the
// owner-pair schedule for copying the source rectangle (origin req.lo2)
// of array req.id2 onto the destination rectangle (req.lo, req.hi) of
// array req.id, groups the pairs by source owner, sends each remote
// source owner one redist_src request (servicing its own group inline),
// and waits for exactly one ack per pair on a shared buffered channel.
// Sends never block and the ack channel holds every ack, so the
// protocol cannot deadlock; the merged status is the worst any pair
// reported.
func (m *Manager) doRedistribute(proc int, req *request) response {
	if req.id == req.id2 {
		return response{status: StatusInvalid} // aliasing copies are undefined
	}
	de, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	se, st := m.lookup(proc, req.id2)
	if st != StatusOK {
		return response{status: st}
	}
	if len(req.hi) != len(req.lo) || len(req.lo2) != len(req.lo) {
		return response{status: StatusInvalid}
	}
	dims := make([]int, len(req.lo))
	for i := range dims {
		dims[i] = req.hi[i] - req.lo[i]
	}
	sched, err := de.meta.TransferSchedule(se.meta, req.lo, req.lo2, dims, req.step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	npairs := sched.NPairs()
	if npairs == 0 {
		return response{status: StatusOK}
	}
	pol := m.policy.Load()
	router := m.machine.Router()
	faulty := router.Faulty()
	// The pair list, flattened in schedule order; a pair's index is its
	// ack identity. Under a call policy the whole operation also gets a
	// call id, which with the pair index lets destination owners dedup
	// re-shipped pieces across retransmit attempts.
	var call uint64
	ackCap := npairs
	if pol != nil {
		call = m.nextSeq()
		// Every attempt can produce at most one ack per pair; size the
		// channel so even a fully retried run (plus stragglers landing
		// after abandonment) can never block a server goroutine.
		ackCap = npairs * (pol.Retries + 3)
	}
	ack := make(chan response, ackCap)
	// On a partitioned router remote owners acknowledge through the ack
	// table (wire.go) instead of the channel; deliverAck's non-blocking
	// send plus the acked[] filter below make straggler overflow safe.
	var ackID uint64
	if router.Partitioned() {
		ackID = m.registerAck(ack)
		defer m.unregisterAck(ackID)
	}
	type pairRec struct {
		srcProc int
		ship    redistShip
	}
	pairs := make([]pairRec, 0, npairs)
	for _, pb := range sched.Blocks {
		pairs = append(pairs, pairRec{pb.SrcProc, redistShip{
			dstProc: pb.DstProc,
			srcLo:   pb.SrcLo, srcHi: pb.SrcHi,
			dstLo: pb.DstLo, dstHi: pb.DstHi,
			step:    sched.Step,
			srcSlot: pb.SrcSlot, dstSlot: pb.DstSlot,
		}})
	}
	for _, ps := range sched.Sets {
		pairs = append(pairs, pairRec{ps.SrcProc, redistShip{
			dstProc: ps.DstProc,
			srcOffs: ps.SrcOffs, dstOffs: ps.DstOffs,
			srcSlot: ps.SrcSlot, dstSlot: ps.DstSlot,
		}})
	}
	for i := range pairs {
		pairs[i].ship.pair = i
	}
	// sendGroups (re)issues the listed pairs, grouped by source owner in
	// schedule order: one redist_src per remote owner, the local group
	// serviced inline. A send refused up front (dead or closed) acks its
	// pairs immediately so the gather never waits on it.
	sendGroups := func(todo []int) {
		order := make([]int, 0, 8)
		bySrc := make(map[int][]redistShip)
		for _, pi := range todo {
			sp := pairs[pi].srcProc
			if _, ok := bySrc[sp]; !ok {
				order = append(order, sp)
			}
			bySrc[sp] = append(bySrc[sp], pairs[pi].ship)
		}
		for _, sp := range order {
			if sp == proc {
				// The inline group still carries (ackProc, ackID): its
				// onward ships may target remote destination owners, which
				// acknowledge over the wire.
				m.doRedistSrc(proc, &request{op: "redist_src", id: req.id2, id2: req.id, ships: bySrc[sp],
					ack: ack, call: call, origin: proc, ackProc: proc, ackID: ackID})
				continue
			}
			sreq := newShipReq(faulty)
			*sreq = request{op: "redist_src", id: req.id2, id2: req.id, ships: bySrc[sp],
				ack: ack, call: call, origin: proc, ackProc: proc, ackID: ackID}
			if pol != nil {
				sreq.seq = m.nextSeq()
			}
			if router.Down(sp) {
				for _, sh := range bySrc[sp] {
					ack <- response{status: StatusDown, pair: sh.pair}
				}
				recycleShipReq(faulty, sreq)
				continue
			}
			remote := !router.Local(sp)
			if err := m.postShip(proc, sp, sreq); err != nil {
				for _, sh := range bySrc[sp] {
					ack <- response{status: sendStatus(err), pair: sh.pair}
				}
				recycleShipReq(faulty, sreq)
			} else if remote {
				// A remote send serialized the envelope before returning,
				// so the request object is already free.
				putShipReq(sreq)
			}
		}
	}
	all := make([]int, npairs)
	for i := range all {
		all[i] = i
	}
	sendGroups(all)
	if pol == nil {
		// Reliable mode: exactly one ack arrives per pair; selecting on
		// Done keeps a mid-call shutdown from deadlocking the gather.
		status := StatusOK
		for i := 0; i < npairs; i++ {
			select {
			case r := <-ack:
				if r.status > status {
					status = r.status
				}
			case <-router.Done():
				return response{status: StatusClosed}
			}
		}
		return response{status: status}
	}
	// Resilient mode: gather acks by pair identity with a per-attempt
	// deadline; unacked pairs with a dead endpoint fail as StatusDown,
	// the rest are re-sent (bounded exponential backoff) until the retry
	// budget is spent.
	acked := make([]bool, npairs)
	remaining := npairs
	status := StatusOK
	backoff := pol.Backoff
	timer := time.NewTimer(pol.Timeout)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		expired := false
		for remaining > 0 && !expired {
			select {
			case r := <-ack:
				if r.pair >= 0 && r.pair < npairs && !acked[r.pair] {
					acked[r.pair] = true
					remaining--
					if r.status > status {
						status = r.status
					}
				}
			case <-router.Done():
				return response{status: StatusClosed}
			case <-timer.C:
				expired = true
			}
		}
		if remaining == 0 {
			return response{status: status}
		}
		m.timeouts.Add(1)
		todo := make([]int, 0, remaining)
		for i := range pairs {
			if acked[i] {
				continue
			}
			if router.Down(pairs[i].srcProc) || router.Down(pairs[i].ship.dstProc) {
				acked[i] = true
				remaining--
				if StatusDown > status {
					status = StatusDown
				}
				continue
			}
			todo = append(todo, i)
		}
		if remaining == 0 {
			return response{status: status}
		}
		if attempt >= pol.Retries {
			if StatusTimeout > status {
				status = StatusTimeout
			}
			return response{status: status}
		}
		if backoff > 0 {
			time.Sleep(m.jitterBackoff(backoff))
			backoff *= 2
		}
		m.retransmits.Add(uint64(len(todo)))
		sendGroups(todo)
		timer.Reset(pol.Timeout)
	}
}

// doRedistSrc services one source owner's group of a redistribution
// (req.id names the source array, req.id2 the destination): each pair
// whose destination is this same processor is copied in place under the
// server lock; every other pair is read into a pooled buffer and
// forwarded to its destination owner as one redist_ship message.
// Exactly one ack is produced per pair — by this routine on a local
// copy or any failure, by the destination owner otherwise.
func (m *Manager) doRedistSrc(proc int, req *request) {
	e, st := m.lookup(proc, req.id)
	srv := m.servers[proc]
	router := m.machine.Router()
	// Under a fault plan, shipped buffers and ship requests must not come
	// from (or return to) the pools: the router may duplicate a delivery
	// or hold one queued past the destination's release of the object.
	faulty := router.Faulty()
	alloc := func(n int) []float64 {
		if faulty {
			return make([]float64, n)
		}
		return srv.getBuf(n)
	}
	for _, sh := range req.ships {
		if st != StatusOK {
			m.shipAck(proc, req, response{status: st, pair: sh.pair})
			continue
		}
		if sh.dstProc == proc {
			m.shipAck(proc, req, response{status: m.redistLocalPair(proc, req.id2, e, sh), pair: sh.pair})
			continue
		}
		var vals []float64
		fail := StatusOK
		srv.mu.Lock()
		// A promoted processor can source several slots of the same array;
		// the ship's slot picks the section the piece actually lives in.
		sec := e.sectionFor(sh.srcSlot)
		switch {
		case sec == nil:
			fail = StatusError
		case sh.srcOffs != nil:
			vals = alloc(len(sh.srcOffs))
			if sec.GatherInto(vals, sh.srcOffs) != nil {
				fail = StatusError
			}
		case sh.step != nil:
			// Validate before sizing the buffer: getBuf of a bogus extent
			// must not happen.
			if grid.CheckStridedRect(sh.srcLo, sh.srcHi, sh.step, e.meta.LocalDims) != nil {
				fail = StatusInvalid
			} else {
				vals = alloc(grid.StridedRectSize(sh.srcLo, sh.srcHi, sh.step))
				if sec.ReadBlockStridedInto(vals, sh.srcLo, sh.srcHi, sh.step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing) != nil {
					fail = StatusInvalid
				}
			}
		default:
			if grid.CheckRect(sh.srcLo, sh.srcHi, e.meta.LocalDims) != nil {
				fail = StatusInvalid
			} else {
				vals = alloc(grid.RectSize(sh.srcLo, sh.srcHi))
				if sec.ReadBlockInto(vals, sh.srcLo, sh.srcHi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing) != nil {
					fail = StatusInvalid
				}
			}
		}
		srv.mu.Unlock()
		if fail != StatusOK {
			srv.putBuf(vals)
			m.shipAck(proc, req, response{status: fail, pair: sh.pair})
			continue
		}
		dreq := newShipReq(faulty)
		*dreq = request{op: "redist_ship", id: req.id2, slot: sh.dstSlot,
			lo: sh.dstLo, hi: sh.dstHi, step: sh.step, offs: sh.dstOffs,
			vals: vals, node: proc, ack: req.ack, call: req.call, pair: sh.pair,
			origin: req.origin, ackProc: req.ackProc, ackID: req.ackID}
		remote := !router.Local(sh.dstProc)
		if err := m.postShip(proc, sh.dstProc, dreq); err != nil {
			srv.putBuf(vals)
			recycleShipReq(faulty, dreq)
			m.shipAck(proc, req, response{status: sendStatus(err), pair: sh.pair})
		} else if remote {
			// Remote ship: the transport serialized the piece before
			// returning, so the buffer and request recycle immediately —
			// the wire analogue of the destination owner's putBuf.
			srv.putBuf(vals)
			putShipReq(dreq)
		}
	}
}

// redistLocalPair moves one pair whose source and destination cells
// live on the same processor: no message and no intermediate buffer,
// just CopyRect/CopyOffsets between the two sections under the server
// lock — the zero-copy fast path of the redistribution plane.
func (m *Manager) redistLocalPair(proc int, dstID darray.ID, srcE *entry, sh redistShip) Status {
	srv := m.servers[proc]
	srv.mu.Lock()
	de, ok := srv.entries[dstID]
	if !ok || de.freed {
		srv.mu.Unlock()
		return StatusNotFound
	}
	dsec := de.sectionFor(sh.dstSlot)
	ssec := srcE.sectionFor(sh.srcSlot)
	if dsec == nil || ssec == nil {
		srv.mu.Unlock()
		return StatusError
	}
	if sh.srcOffs != nil {
		if darray.CopyOffsets(dsec, ssec, sh.dstOffs, sh.srcOffs) != nil {
			srv.mu.Unlock()
			return StatusError
		}
	} else if darray.CopyRect(dsec, de.meta, sh.dstLo, ssec, srcE.meta, sh.srcLo, sh.srcHi, sh.step) != nil {
		srv.mu.Unlock()
		return StatusInvalid
	}
	if de.meta.Replicas == 0 {
		srv.mu.Unlock()
		return StatusOK
	}
	// Replicated destination: read the landed piece back out of the
	// section so the buddy owners receive exactly the bytes the zero-copy
	// path just wrote, then mirror outside the lock (buddies mirror to
	// each other, so awaiting under the lock could deadlock a ring).
	meta := de.meta
	var vals []float64
	var err error
	switch {
	case sh.srcOffs != nil:
		vals = make([]float64, len(sh.dstOffs))
		err = dsec.GatherInto(vals, sh.dstOffs)
	case sh.step != nil:
		vals = make([]float64, grid.StridedRectSize(sh.dstLo, sh.dstHi, sh.step))
		err = dsec.ReadBlockStridedInto(vals, sh.dstLo, sh.dstHi, sh.step, meta.LocalDims, meta.Borders, meta.Indexing)
	default:
		vals = make([]float64, grid.RectSize(sh.dstLo, sh.dstHi))
		err = dsec.ReadBlockInto(vals, sh.dstLo, sh.dstHi, meta.LocalDims, meta.Borders, meta.Indexing)
	}
	srv.mu.Unlock()
	if err != nil {
		return StatusError
	}
	return m.mirrorWrite(proc, meta, &request{id: dstID, slot: sh.dstSlot,
		lo: sh.dstLo, hi: sh.dstHi, step: sh.step, offs: sh.dstOffs, vals: vals})
}

// doRedistShip lands one shipped piece at its destination owner: the
// packed values are written to the destination rectangle (or scattered
// to the destination offsets), the pair is acknowledged, and the buffer
// is returned to the pool of the source owner that drew it.
func (m *Manager) doRedistShip(proc int, req *request) {
	node, vals := req.node, req.vals
	var meta *darray.Meta
	e, st := m.lookup(proc, req.id)
	if st == StatusOK {
		srv := m.servers[proc]
		srv.mu.Lock()
		sec := e.sectionFor(req.slot)
		switch {
		case sec == nil:
			st = StatusError
		case req.offs != nil:
			if sec.ScatterFrom(vals, req.offs) != nil {
				st = StatusError
			}
		case req.step != nil:
			if sec.WriteBlockStrided(vals, req.lo, req.hi, req.step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing) != nil {
				st = StatusInvalid
			}
		default:
			if sec.WriteBlock(vals, req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing) != nil {
				st = StatusInvalid
			}
		}
		if st == StatusOK {
			meta = e.meta
		}
		srv.mu.Unlock()
	}
	if meta != nil && meta.Replicas > 0 {
		// Mirror before acking and before any recycling: the ack releases
		// the coordinator, and the free lists must not reuse vals or req
		// while a mirror is still reading them.
		if mst := m.mirrorWrite(proc, meta, req); mst > st {
			st = mst
		}
	}
	m.shipAck(proc, req, response{status: st, pair: req.pair})
	router := m.machine.Router()
	if !router.Faulty() {
		// A piece that crossed the wire was decoded onto fresh heap, and
		// its request was built by toRequest — neither came from (or
		// returns to) the source owner's pools.
		if router.Local(node) {
			m.servers[node].putBuf(vals)
			putShipReq(req)
		}
	}
}

// localRedistFast attempts the wholly-local fast path of the
// redistribution plane: when both arrays have entries with sections on
// proc and both rectangles resolve to single local rectangles there,
// the data moves section-to-section with darray.CopyRect under one
// server lock — no message, no intermediate buffer, and no heap
// allocation up to darray.MaxFastDims dimensions. Validation mirrors
// the coordinator's, so a malformed request is declined (ok=false) and
// falls through for the authoritative status. ok reports whether the
// fast path applied.
func (m *Manager) localRedistFast(proc int, dstID, srcID darray.ID, dstLo, srcLo, dims, step []int) (Status, bool) {
	if dstID == srcID {
		return StatusOK, false
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	de, ok := srv.entries[dstID]
	if !ok || de.freed || de.section == nil {
		return StatusOK, false
	}
	se, ok := srv.entries[srcID]
	if !ok || se.freed || se.section == nil {
		return StatusOK, false
	}
	// Post-promotion ownership and replicated-destination writes belong
	// to the coordinator, as in localBlockFast.
	if de.meta.Epoch > 0 || se.meta.Epoch > 0 || de.meta.Replicas > 0 {
		return StatusOK, false
	}
	n := de.meta.NDims()
	if n > darray.MaxFastDims || se.meta.NDims() != n ||
		len(dstLo) != n || len(srcLo) != n || len(dims) != n {
		return StatusOK, false
	}
	if step != nil && len(step) != n {
		return StatusOK, false
	}
	var srcHi, dstHi, hiEffS, hiEffD [darray.MaxFastDims]int
	for i := 0; i < n; i++ {
		if dims[i] < 1 {
			return StatusOK, false
		}
		st := 1
		if step != nil {
			st = step[i]
			if st < 1 {
				return StatusOK, false
			}
		}
		srcHi[i] = srcLo[i] + dims[i]
		dstHi[i] = dstLo[i] + dims[i]
		// Locality is decided by the lattice's bounding box: clamp each
		// bound to just past the last lattice point.
		lastOff := (dims[i] - 1) / st * st
		hiEffS[i] = srcLo[i] + lastOff + 1
		hiEffD[i] = dstLo[i] + lastOff + 1
	}
	if step == nil {
		if grid.CheckRect(srcLo, srcHi[:n], se.meta.Dims) != nil ||
			grid.CheckRect(dstLo, dstHi[:n], de.meta.Dims) != nil {
			return StatusOK, false
		}
	} else if grid.CheckStridedRect(srcLo, srcHi[:n], step, se.meta.Dims) != nil ||
		grid.CheckStridedRect(dstLo, dstHi[:n], step, de.meta.Dims) != nil {
		return StatusOK, false
	}
	var sLo, sHi, dLo, dHi [darray.MaxFastDims]int
	if !se.meta.LocalRect(proc, srcLo, hiEffS[:n], sLo[:n], sHi[:n]) {
		return StatusOK, false
	}
	if !de.meta.LocalRect(proc, dstLo, hiEffD[:n], dLo[:n], dHi[:n]) {
		return StatusOK, false
	}
	if darray.CopyRect(de.section, de.meta, dLo[:n], se.section, se.meta, sLo[:n], sHi[:n], step) != nil {
		return StatusInvalid, true
	}
	return StatusOK, true
}

// Redistribute copies the global rectangle [lo, hi) of array src onto
// the same rectangle of array dst — the two arrays may have entirely
// different distributions (block↔cyclic↔block-cyclic, uneven trailing
// blocks). Each non-empty src-owner/dst-owner intersection travels
// owner-to-owner in at most one message, with no client bounce; a
// wholly-local transfer moves section-to-section with no message and
// zero heap allocations.
func (m *Manager) Redistribute(onProc int, dst, src darray.ID, lo, hi []int) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	n := len(lo)
	if len(hi) == n && n <= darray.MaxFastDims {
		var dims [darray.MaxFastDims]int
		okDims := true
		for i := 0; i < n; i++ {
			dims[i] = hi[i] - lo[i]
			if dims[i] < 1 {
				okDims = false
				break
			}
		}
		if okDims {
			if st, ok := m.localRedistFast(onProc, dst, src, lo, lo, dims[:n], nil); ok {
				return st
			}
		}
	}
	return m.sendData(onProc, []darray.ID{dst, src}, func() *request {
		return &request{op: "redistribute", id: dst, id2: src, lo: lo, hi: hi, lo2: lo}
	}).status
}

// RedistributeRect is the offset variant of Redistribute: source
// element srcLo+j moves to destination element dstLo+j for every
// componentwise 0 <= j < dims, so the rectangle may land at a different
// origin in the destination array (a panel handoff into column 0, a
// shifted copy).
func (m *Manager) RedistributeRect(onProc int, dst, src darray.ID, dstLo, srcLo, dims []int) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if st, ok := m.localRedistFast(onProc, dst, src, dstLo, srcLo, dims, nil); ok {
		return st
	}
	hi := make([]int, len(dstLo))
	for i := range hi {
		if i < len(dims) {
			hi[i] = dstLo[i] + dims[i]
		}
	}
	return m.sendData(onProc, []darray.ID{dst, src}, func() *request {
		return &request{op: "redistribute", id: dst, id2: src, lo: dstLo, hi: hi, lo2: srcLo}
	}).status
}

// RedistributeStrided copies every step[i]-th element of the global
// rectangle [lo, hi) of array src onto the matching lattice of array
// dst. A unit step in every dimension delegates to the dense path.
func (m *Manager) RedistributeStrided(onProc int, dst, src darray.ID, lo, hi, step []int) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if len(step) == len(lo) && unitStep(step) {
		return m.Redistribute(onProc, dst, src, lo, hi)
	}
	n := len(lo)
	if len(hi) == n && len(step) == n && n <= darray.MaxFastDims {
		var dims [darray.MaxFastDims]int
		okDims := true
		for i := 0; i < n; i++ {
			dims[i] = hi[i] - lo[i]
			if dims[i] < 1 || step[i] < 1 {
				okDims = false
				break
			}
		}
		if okDims {
			if st, ok := m.localRedistFast(onProc, dst, src, lo, lo, dims[:n], step); ok {
				return st
			}
		}
	}
	return m.sendData(onProc, []darray.ID{dst, src}, func() *request {
		return &request{op: "redistribute", id: dst, id2: src, lo: lo, hi: hi, lo2: lo, step: step}
	}).status
}
