// Recovery machinery for unreliable request delivery: per-request
// sequence ids, owner-side retransmit deduplication, and timeout +
// bounded-exponential-backoff retry in the coordinators.
//
// The asymmetry the protocol is built around: requests travel over the
// router (lossy under a fault plan), replies and acks ride in-process
// channels (reliable once a request executes). So a lost or delayed
// request is recovered by retransmitting the same *request object; the
// owner's dedup window guarantees at most one execution, which keeps
// every data-plane op idempotent even where blind re-execution would not
// be (pooled reply buffers, redistribution ships). A peer that never
// answers is distinguished from a slow one by Router.Down: killed owner
// -> StatusDown, retries exhausted -> StatusTimeout — both surfaced as
// core.Status errors instead of a hung coordinator.
package arraymgr

import (
	"math/rand"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

const (
	// StatusTimeout — a peer did not answer within the call policy's
	// retry budget.
	StatusTimeout Status = 4
	// StatusDown — a peer the operation needed has been killed.
	StatusDown Status = 5
	// StatusClosed — the machine was shut down mid-operation.
	StatusClosed Status = 6
)

// CallPolicy makes coordinator waits deadline-aware: each outstanding
// request is retransmitted up to Retries times, Timeout apart, with an
// extra Backoff sleep doubling per attempt. Nil policy (the default)
// waits forever — correct on the reliable in-process router and
// zero-overhead (no sequence ids, no dedup state, no timers).
type CallPolicy struct {
	// Timeout is the per-attempt reply deadline. It must comfortably
	// exceed the router's modeled latency plus the fault plan's jitter
	// bound, or healthy-but-slow messages trigger spurious retransmits.
	Timeout time.Duration
	// Retries is the number of retransmissions after the first send.
	Retries int
	// Backoff is the extra sleep before the first retransmit; it doubles
	// per attempt (bounded exponential backoff). Each sleep is jittered
	// ±20% with a seeded rng so a cohort of coordinators that timed out
	// together does not retransmit in lockstep.
	Backoff time.Duration
	// Seed seeds the backoff jitter; 0 means seed 1, keeping runs
	// reproducible by default.
	Seed int64
}

// RetryStats counts the recovery actions the manager has taken.
type RetryStats struct {
	Retransmits uint64 // requests re-sent after a reply deadline expired
	Timeouts    uint64 // reply deadlines that expired
}

// SetCallPolicy installs (or, with nil, removes) the retry policy.
// Install it before traffic starts, alongside the router's fault plan.
func (m *Manager) SetCallPolicy(p *CallPolicy) {
	if p == nil {
		m.policy.Store(nil)
		return
	}
	cp := *p
	seed := cp.Seed
	if seed == 0 {
		seed = 1
	}
	m.jmu.Lock()
	m.jrng = rand.New(rand.NewSource(seed))
	m.jmu.Unlock()
	m.policy.Store(&cp)
}

// jitterBackoff draws one ±20% jittered backoff from the policy's seeded
// rng: the same seed yields the same sleep sequence, so faulty runs stay
// reproducible while concurrent coordinators desynchronize.
func (m *Manager) jitterBackoff(d time.Duration) time.Duration {
	m.jmu.Lock()
	rng := m.jrng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
		m.jrng = rng
	}
	f := 0.8 + 0.4*rng.Float64()
	m.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// RetryStats returns the recovery counters.
func (m *Manager) RetryStats() RetryStats {
	return RetryStats{Retransmits: m.retransmits.Load(), Timeouts: m.timeouts.Load()}
}

// Stats renders the retry counters as a uniform stat list.
func (s RetryStats) Stats() []trace.Stat {
	return []trace.Stat{
		{Name: "retransmits", Value: s.Retransmits},
		{Name: "timeouts", Value: s.Timeouts},
	}
}

// nextSeq draws a fresh nonzero request id. Ids are manager-global —
// every coordinator in one process draws from the same counter — and
// scoped by origin processor in the dedup key, so two managers in
// different processes drawing the same number never collide. Zero is
// skipped explicitly on wraparound: it means "no recovery id" in every
// filter, so a wrapped counter must not mint it.
func (m *Manager) nextSeq() uint64 {
	for {
		if s := m.seq.Add(1); s != 0 {
			return s
		}
	}
}

// dedupWindow bounds the per-server window of recently dispatched
// request ids; ids older than the window are forgotten (a retransmit
// that stale would have long since been answered or abandoned).
const dedupWindow = 4096

// dedupKey identifies one logical request: {origin, seq, 0} for
// request/reply traffic, {origin, call, pair+1} for one-way
// redistribution ships (the +1 keeps the two spaces disjoint). origin —
// the processor whose manager drew the id — scopes the window: seq
// counters are per-process, so once managers span OS processes two
// coordinators can legitimately mint the same number, and an unscoped
// window would false-dedup the second arrival.
type dedupKey struct {
	origin int
	a, b   uint64
}

// deduper is the owner-side retransmit filter. It is owned by a single
// serve goroutine, so it needs no lock; state is allocated lazily so
// reliable-mode servers (no seq ids ever seen) pay nothing.
type deduper struct {
	seen map[dedupKey]struct{}
	ring []dedupKey
	pos  int
}

// dup reports whether k was already dispatched, marking it seen
// otherwise.
func (d *deduper) dup(k dedupKey) bool {
	if d.seen == nil {
		d.seen = make(map[dedupKey]struct{})
	}
	if _, ok := d.seen[k]; ok {
		return true
	}
	if len(d.ring) < dedupWindow {
		d.ring = append(d.ring, k)
	} else {
		delete(d.seen, d.ring[d.pos])
		d.ring[d.pos] = k
		d.pos = (d.pos + 1) % dedupWindow
	}
	d.seen[k] = struct{}{}
	return false
}

// dedupKeyOf extracts the request's dedup identity; ok=false (reliable
// mode: no ids assigned) disables filtering.
func dedupKeyOf(req *request) (dedupKey, bool) {
	if req.op == "redist_ship" && req.call != 0 {
		return dedupKey{req.origin, req.call, uint64(req.pair) + 1}, true
	}
	if req.seq != 0 {
		return dedupKey{req.origin, req.seq, 0}, true
	}
	return dedupKey{}, false
}

// await waits for req's reply. With no policy it blocks until the reply
// or router shutdown (a mid-call Close surfaces as StatusError, never a
// deadlock). With a policy it retransmits the same request object on
// each expired deadline — the owner's dedup window guarantees at most
// one execution — and converts a killed peer into StatusDown and an
// exhausted retry budget into StatusTimeout.
func (m *Manager) await(req *request) response {
	router := m.machine.Router()
	defer m.unregisterReply(req)
	pol := m.policy.Load()
	if pol == nil {
		select {
		case r := <-req.reply:
			return r
		case <-router.Done():
			// Prefer a reply that raced shutdown.
			select {
			case r := <-req.reply:
				return r
			default:
				return response{status: StatusClosed}
			}
		}
	}
	backoff := pol.Backoff
	timer := time.NewTimer(pol.Timeout)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case r := <-req.reply:
			return r
		case <-router.Done():
			select {
			case r := <-req.reply:
				return r
			default:
				return response{status: StatusClosed}
			}
		case <-timer.C:
		}
		m.timeouts.Add(1)
		if router.Down(req.dst) {
			return response{status: StatusDown}
		}
		if attempt >= pol.Retries {
			return response{status: StatusTimeout}
		}
		if backoff > 0 {
			time.Sleep(m.jitterBackoff(backoff))
			backoff *= 2
		}
		m.retransmits.Add(1)
		tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMRequest}
		// A remote destination gets the cached envelope — byte-identical
		// to the first transmission, like re-sending the same *request
		// pointer in-process.
		var payload any = req
		if req.wire != nil {
			payload = req.wire
		}
		if err := router.Send(req.src, req.dst, tag, payload); err != nil {
			return response{status: sendStatus(err)}
		}
		timer.Reset(pol.Timeout)
	}
}
