package arraymgr

import (
	"testing"

	"repro/internal/grid"
)

// TestStridedPerElementEquivalence is the equivalence property of the
// strided plane: ReadBlockStrided/WriteBlockStrided must agree with
// per-element loops over the lattice, across decompositions, borders and
// indexing orders, and must leave off-lattice elements untouched.
func TestStridedPerElementEquivalence(t *testing.T) {
	cases := []struct {
		name string
		p    int
		spec func(p int) CreateSpec
		step []int
	}{
		{"2d/row", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Dims = []int{12, 8}
			return s
		}, []int{2, 3}},
		{"2d/col/bordered", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Dims = []int{12, 8}
			s.Indexing = grid.ColMajor
			s.Borders = ExplicitBorders{1, 2, 0, 1}
			return s
		}, []int{3, 2}},
		{"1d/subset-procs", 6, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Dims = []int{24}
			s.Procs = []int{5, 1, 3, 0}
			s.Distrib = []grid.Decomp{grid.BlockDefault()}
			return s
		}, []int{4}},
		{"2d/rows-only", 4, func(p int) CreateSpec {
			s := basicSpec(p)
			s.Dims = []int{16, 6}
			s.Distrib = []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}
			return s
		}, []int{4, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, m := newTestManager(t, c.p)
			spec := c.spec(c.p)
			id := mustCreate(t, m, 0, spec)

			// Background pattern through the dense path.
			nd := len(spec.Dims)
			lo := make([]int, nd)
			base := make([]float64, grid.RectSize(lo, spec.Dims))
			for i := range base {
				base[i] = float64(i + 1)
			}
			if st := m.WriteBlock(0, id, lo, spec.Dims, base); st != StatusOK {
				t.Fatalf("WriteBlock: %v", st)
			}

			// Strided read agrees with per-element reads on the lattice.
			got, st := m.ReadBlockStrided(0, id, lo, spec.Dims, c.step)
			if st != StatusOK {
				t.Fatalf("ReadBlockStrided: %v", st)
			}
			if len(got) != grid.StridedRectSize(lo, spec.Dims, c.step) {
				t.Fatalf("strided read returned %d values, lattice has %d", len(got), grid.StridedRectSize(lo, spec.Dims, c.step))
			}
			if err := grid.ForEachStridedRect(lo, spec.Dims, c.step, func(gidx []int, k int) error {
				want, st := m.ReadElement(0, id, gidx)
				if st != StatusOK {
					t.Fatalf("ReadElement(%v): %v", gidx, st)
				}
				if got[k] != want {
					t.Fatalf("strided[%d] (%v) = %v, read_element says %v", k, gidx, got[k], want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// The buffer-reuse variant agrees.
			dst := make([]float64, len(got))
			if st := m.ReadBlockStridedInto(0, id, lo, spec.Dims, c.step, dst); st != StatusOK {
				t.Fatalf("ReadBlockStridedInto: %v", st)
			}
			for i := range got {
				if dst[i] != got[i] {
					t.Fatalf("dst[%d] = %v, want %v", i, dst[i], got[i])
				}
			}

			// Strided write hits exactly the lattice, like a write_element
			// loop over it: replay on a second array and compare snapshots.
			for i := range dst {
				dst[i] = -float64(i + 1)
			}
			if st := m.WriteBlockStrided(0, id, lo, spec.Dims, c.step, dst); st != StatusOK {
				t.Fatalf("WriteBlockStrided: %v", st)
			}
			id2 := mustCreate(t, m, 0, spec)
			if st := m.WriteBlock(0, id2, lo, spec.Dims, base); st != StatusOK {
				t.Fatalf("WriteBlock: %v", st)
			}
			if err := grid.ForEachStridedRect(lo, spec.Dims, c.step, func(gidx []int, k int) error {
				if st := m.WriteElement(0, id2, gidx, dst[k]); st != StatusOK {
					t.Fatalf("WriteElement: %v", st)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			a, st := m.ReadBlock(0, id, lo, spec.Dims)
			if st != StatusOK {
				t.Fatalf("ReadBlock: %v", st)
			}
			b, st := m.ReadBlock(0, id2, lo, spec.Dims)
			if st != StatusOK {
				t.Fatalf("ReadBlock: %v", st)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("strided write and write_element loop disagree at %d: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestStridedUnitStepDelegates pins the stride=1 degenerate case: it rides
// the dense path (identical results; a wholly-local rectangle sends no
// messages).
func TestStridedUnitStepDelegates(t *testing.T) {
	machine, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())
	vals := make([]float64, 32*32)
	for i := range vals {
		vals[i] = float64(i)
	}
	if st := m.WriteBlock(0, id, []int{0, 0}, []int{32, 32}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	ones := []int{1, 1}
	want, st := m.ReadBlock(0, id, []int{3, 5}, []int{29, 31})
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	got, st := m.ReadBlockStrided(0, id, []int{3, 5}, []int{29, 31}, ones)
	if st != StatusOK {
		t.Fatalf("unit-step ReadBlockStrided: %v", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unit-step strided[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
	// Wholly-local unit-step ops take the dense fast path: zero messages.
	buf := make([]float64, 16*16)
	before := machine.Router().Sent()
	if st := m.ReadBlockStridedInto(0, id, []int{0, 0}, []int{16, 16}, ones, buf); st != StatusOK {
		t.Fatalf("ReadBlockStridedInto: %v", st)
	}
	if st := m.WriteBlockStrided(0, id, []int{0, 0}, []int{16, 16}, ones, buf); st != StatusOK {
		t.Fatalf("WriteBlockStrided: %v", st)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("unit-step local ops sent %d messages, want 0", sent)
	}
}

// TestStridedMessageBudget asserts the strided plane's budget: fetching
// every k-th row across P owning processors costs one coordinator request
// plus one request per remote owner holding a lattice point — never one
// message (or one index) per element, and owners the stride skips are
// never contacted.
func TestStridedMessageBudget(t *testing.T) {
	const p = 4
	machine, m := newTestManager(t, p)
	spec := basicSpec(p)
	spec.Dims = []int{32, 16} // block rows: 8 rows per owner
	spec.Distrib = []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}
	id := mustCreate(t, m, 0, spec)

	lo, hi := []int{0, 0}, []int{32, 16}

	// Every 2nd row touches all 4 owners: 1 coordinator + 3 remote requests.
	before := machine.Router().Sent()
	if _, st := m.ReadBlockStrided(0, id, lo, hi, []int{2, 1}); st != StatusOK {
		t.Fatalf("ReadBlockStrided: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+p-1); got != want {
		t.Errorf("every-2nd-row read sent %d messages, want %d", got, want)
	}

	before = machine.Router().Sent()
	if st := m.WriteBlockStrided(0, id, lo, hi, []int{2, 1}, make([]float64, 16*16)); st != StatusOK {
		t.Fatalf("WriteBlockStrided: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+p-1); got != want {
		t.Errorf("every-2nd-row write sent %d messages, want %d", got, want)
	}

	// Every 16th row holds points only on owners 0 and 2: the stride skips
	// owners 1 and 3 entirely, so only one remote owner is contacted.
	before = machine.Router().Sent()
	if _, st := m.ReadBlockStrided(0, id, lo, hi, []int{16, 1}); st != StatusOK {
		t.Fatalf("ReadBlockStrided: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+1); got != want {
		t.Errorf("every-16th-row read sent %d messages, want %d (skipped owners contacted?)", got, want)
	}
}

// TestStridedOwnerReplyZeroAllocs pins the strided owner-side service
// routine at zero heap allocations per request at a steady state, like the
// dense and vector servers it mirrors.
func TestStridedOwnerReplyZeroAllocs(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec())

	req := &request{id: id, lo: []int{0, 0}, hi: []int{16, 16}, step: []int{2, 3}}
	srv := m.servers[0]
	for i := 0; i < 3; i++ {
		if r := m.doReadBlockStridedLocal(0, req); r.status != StatusOK {
			t.Fatalf("doReadBlockStridedLocal: %v", r.status)
		} else {
			srv.putBuf(r.vals)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		r := m.doReadBlockStridedLocal(0, req)
		if r.status != StatusOK {
			t.Errorf("doReadBlockStridedLocal: %v", r.status)
		}
		srv.putBuf(r.vals)
	})
	if allocs != 0 {
		t.Errorf("read_block_strided_local reply: %v allocs/op, want 0 (pooled)", allocs)
	}
}

// TestStridedLocalFastPath pins the wholly-local strided fast path at zero
// heap allocations and zero messages, including a lattice whose bounding
// hi overshoots the section edge (locality is decided by the last lattice
// point, not the requested bound).
func TestStridedLocalFastPath(t *testing.T) {
	machine, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, fastPathSpec()) // 32x32 over 2x2: proc 0 owns [0,16)^2

	// lo=1, step=3 within [0,16): last point 13, but hi=16 would also
	// qualify; use hi=15 and an overshooting variant below.
	lo, hi, step := []int{1, 0}, []int{16, 16}, []int{3, 2}
	n := grid.StridedRectSize(lo, hi, step)
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i)
	}
	if st := m.WriteBlockStrided(0, id, lo, hi, step, buf); st != StatusOK {
		t.Fatalf("warm-up WriteBlockStrided: %v", st)
	}
	before := machine.Router().Sent()
	writeAllocs := testing.AllocsPerRun(200, func() {
		if st := m.WriteBlockStrided(0, id, lo, hi, step, buf); st != StatusOK {
			t.Errorf("WriteBlockStrided: %v", st)
		}
	})
	readAllocs := testing.AllocsPerRun(200, func() {
		if st := m.ReadBlockStridedInto(0, id, lo, hi, step, buf); st != StatusOK {
			t.Errorf("ReadBlockStridedInto: %v", st)
		}
	})
	if writeAllocs != 0 {
		t.Errorf("local WriteBlockStrided: %v allocs/op, want 0", writeAllocs)
	}
	if readAllocs != 0 {
		t.Errorf("local ReadBlockStridedInto: %v allocs/op, want 0", readAllocs)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("local strided fast path sent %d messages, want 0", sent)
	}

	// Overshooting bound: points {1, 9} in each dimension (step 8, hi 17
	// would leave the array; hi=16 with last point 9 stays inside proc 0's
	// section even though a dense [1,16) read would too — use step 12:
	// points {1, 13}, bounding box [1,14) local, requested hi 16 local as
	// well; the point is the lattice, not the bound, decides).
	big := []int{12, 12}
	small := make([]float64, grid.StridedRectSize([]int{1, 1}, []int{16, 16}, big))
	before = machine.Router().Sent()
	if st := m.ReadBlockStridedInto(0, id, []int{1, 1}, []int{16, 16}, big, small); st != StatusOK {
		t.Fatalf("sparse ReadBlockStridedInto: %v", st)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("sparse local strided read sent %d messages, want 0", sent)
	}
}

// TestStridedErrors covers the failure statuses of the strided plane.
func TestStridedErrors(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))

	if _, st := m.ReadBlockStrided(0, id, []int{0, 0}, []int{5, 4}, []int{1, 2}); st != StatusInvalid {
		t.Errorf("out-of-range rectangle: %v", st)
	}
	if _, st := m.ReadBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{0, 1}); st != StatusInvalid {
		t.Errorf("zero step: %v", st)
	}
	if _, st := m.ReadBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2}); st != StatusInvalid {
		t.Errorf("short step vector: %v", st)
	}
	if st := m.WriteBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 2}, []float64{1}); st != StatusInvalid {
		t.Errorf("short buffer: %v", st)
	}
	if st := m.ReadBlockStridedInto(0, id, []int{0, 0}, []int{4, 4}, []int{2, 2}, make([]float64, 3)); st != StatusInvalid {
		t.Errorf("wrong-size destination: %v", st)
	}
	if _, st := m.ReadBlockStrided(7, id, []int{0, 0}, []int{4, 4}, []int{2, 2}); st != StatusInvalid {
		t.Errorf("bad processor: %v", st)
	}
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if _, st := m.ReadBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 2}); st != StatusNotFound {
		t.Errorf("freed strided read: %v", st)
	}
	if st := m.WriteBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 2}, make([]float64, 4)); st != StatusNotFound {
		t.Errorf("freed strided write: %v", st)
	}
}
