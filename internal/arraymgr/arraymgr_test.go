package arraymgr

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/vp"
)

func newTestManager(t *testing.T, p int) (*vp.Machine, *Manager) {
	t.Helper()
	machine := vp.NewMachine(p)
	t.Cleanup(machine.Shutdown)
	return machine, New(machine)
}

func mustCreate(t *testing.T, m *Manager, onProc int, spec CreateSpec) darray.ID {
	t.Helper()
	id, st := m.CreateArray(onProc, spec)
	if st != StatusOK {
		t.Fatalf("CreateArray: %v", st)
	}
	return id
}

func basicSpec(p int) CreateSpec {
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	return CreateSpec{
		Type:     darray.Double,
		Dims:     []int{4, 4},
		Procs:    procs,
		Distrib:  []grid.Decomp{grid.BlockDefault(), grid.BlockDefault()},
		Borders:  NoBorderSpec{},
		Indexing: grid.RowMajor,
	}
}

func TestCreateReadWriteFree(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))

	// Write and read every element through global indices, from the
	// creating processor.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if st := m.WriteElement(0, id, []int{i, j}, float64(10*i+j)); st != StatusOK {
				t.Fatalf("Write(%d,%d): %v", i, j, st)
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v, st := m.ReadElement(0, id, []int{i, j})
			if st != StatusOK || v != float64(10*i+j) {
				t.Fatalf("Read(%d,%d) = %v,%v", i, j, v, st)
			}
		}
	}
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("Free: %v", st)
	}
	// Subsequent references fail (§4.2.2 postcondition).
	if _, st := m.ReadElement(0, id, []int{0, 0}); st != StatusNotFound {
		t.Fatalf("read after free: %v, want STATUS_NOT_FOUND", st)
	}
	if st := m.FreeArray(0, id); st != StatusNotFound {
		t.Fatalf("double free: %v, want STATUS_NOT_FOUND", st)
	}
}

// §3.2.1.5: "a request to read the first element of a distributed array
// returns the same value no matter where it is executed" — operations give
// identical results on any processor holding a section or on the creator.
func TestGlobalViewFromAnyHolder(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))
	if st := m.WriteElement(2, id, []int{3, 3}, 7.5); st != StatusOK {
		t.Fatalf("write from proc 2: %v", st)
	}
	for proc := 0; proc < 4; proc++ {
		v, st := m.ReadElement(proc, id, []int{3, 3})
		if st != StatusOK || v != 7.5 {
			t.Fatalf("read on proc %d = %v,%v", proc, v, st)
		}
	}
}

func TestRequestsOnUninvolvedProcessorFail(t *testing.T) {
	_, m := newTestManager(t, 6)
	spec := basicSpec(6)
	spec.Procs = []int{1, 2, 3, 4} // distribute over 4 of 6
	spec.Dims = []int{4, 4}
	id := mustCreate(t, m, 1, spec)
	// Processor 5 holds no section and did not create the array.
	if _, st := m.ReadElement(5, id, []int{0, 0}); st != StatusNotFound {
		t.Fatalf("read on uninvolved proc: %v", st)
	}
	// Creator (proc 1) that also holds a section works; proc 0 does not.
	if _, st := m.ReadElement(1, id, []int{0, 0}); st != StatusOK {
		t.Fatalf("read on creator: %v", st)
	}
	if _, st := m.ReadElement(0, id, []int{0, 0}); st != StatusNotFound {
		t.Fatalf("read on proc 0: %v", st)
	}
}

func TestCreatorWithoutSectionHasGlobalView(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Procs = []int{1, 2} // creator 0 not among them
	spec.Dims = []int{2, 4}
	spec.Distrib = []grid.Decomp{grid.NoDecomp(), grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)
	if st := m.WriteElement(0, id, []int{1, 3}, 9); st != StatusOK {
		t.Fatalf("creator write: %v", st)
	}
	v, st := m.ReadElement(0, id, []int{1, 3})
	if st != StatusOK || v != 9 {
		t.Fatalf("creator read: %v,%v", v, st)
	}
	// But find_local on the creator fails: it has no local section.
	if _, st := m.FindLocal(0, id); st != StatusNotFound {
		t.Fatalf("find_local on creator: %v", st)
	}
	if _, st := m.FindLocal(1, id); st != StatusOK {
		t.Fatalf("find_local on holder: %v", st)
	}
}

func TestFindLocalIsRealStorage(t *testing.T) {
	_, m := newTestManager(t, 2)
	spec := basicSpec(2)
	spec.Dims = []int{4}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)
	// Write through the global view; observe through the local section.
	if st := m.WriteElement(0, id, []int{3}, 5); st != StatusOK {
		t.Fatalf("write: %v", st)
	}
	sec, st := m.FindLocal(1, id) // element 3 lives on proc 1 (2 elems each)
	if st != StatusOK {
		t.Fatalf("find_local: %v", st)
	}
	if sec.F[1] != 5 {
		t.Fatalf("local section = %v", sec.F)
	}
	// And the other direction: mutate the section, read globally.
	sec.F[0] = 11
	v, st := m.ReadElement(0, id, []int{2})
	if st != StatusOK || v != 11 {
		t.Fatalf("global read after local write = %v,%v", v, st)
	}
}

func TestIntArray(t *testing.T) {
	_, m := newTestManager(t, 2)
	spec := basicSpec(2)
	spec.Type = darray.Int
	spec.Dims = []int{4}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)
	if st := m.WriteElement(0, id, []int{1}, 42); st != StatusOK {
		t.Fatalf("write: %v", st)
	}
	v, st := m.ReadElement(0, id, []int{1})
	if st != StatusOK || v != 42 {
		t.Fatalf("read = %v,%v", v, st)
	}
	sec, st := m.FindLocal(0, id)
	if st != StatusOK || sec.Type != darray.Int || sec.I[1] != 42 {
		t.Fatalf("int section: %+v st=%v", sec, st)
	}
}

func TestFindInfo(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Borders = ExplicitBorders{1, 1, 0, 0}
	id := mustCreate(t, m, 0, spec)
	cases := []struct {
		which string
		want  any
	}{
		{"type", "double"},
		{"dimensions", []int{4, 4}},
		{"processors", []int{0, 1, 2, 3}},
		{"grid_dimensions", []int{2, 2}},
		{"local_dimensions", []int{2, 2}},
		{"borders", []int{1, 1, 0, 0}},
		{"local_dimensions_plus", []int{4, 2}},
		{"indexing_type", "row"},
		{"grid_indexing_type", "row"},
	}
	for _, c := range cases {
		got, st := m.FindInfo(0, id, c.which)
		if st != StatusOK {
			t.Fatalf("FindInfo(%q): %v", c.which, st)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("FindInfo(%q) = %v, want %v", c.which, got, c.want)
		}
	}
	if _, st := m.FindInfo(0, id, "nonsense"); st != StatusInvalid {
		t.Fatal("unknown selector must be STATUS_INVALID")
	}
}

func TestInvalidCreates(t *testing.T) {
	_, m := newTestManager(t, 4)
	base := basicSpec(4)

	bad := base
	bad.Dims = nil
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("nil dims: %v", st)
	}

	bad = base
	bad.Dims = []int{0, 4}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("zero dim: %v", st)
	}

	bad = base
	bad.Procs = []int{0, 0, 1, 2}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("duplicate procs: %v", st)
	}

	bad = base
	bad.Procs = []int{0, 9}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("out-of-range proc: %v", st)
	}

	bad = base
	bad.Distrib = []grid.Decomp{grid.BlockDefault()}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("distrib arity: %v", st)
	}

	// 5 rows over a grid dimension of 2 used to be rejected (the paper's
	// divide-evenly restriction); the distribution layer handles the
	// uneven trailing block, so this now succeeds.
	uneven := base
	uneven.Dims = []int{5, 4}
	if id, st := m.CreateArray(0, uneven); st != StatusOK {
		t.Fatalf("uneven block create: %v", st)
	} else if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("uneven block free: %v", st)
	}

	bad = base
	bad.Borders = ExplicitBorders{1} // wrong length
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("bad borders: %v", st)
	}

	// Bordered fields keep the paper's exactly-even block shapes: borders
	// on a cyclic dimension or an uneven block layout are rejected at
	// creation (halo exchange assumes full-size, index-adjacent
	// interiors), and verification may not retrofit them later.
	bad = base
	bad.Distrib = []grid.Decomp{grid.CyclicDefault(), grid.BlockDefault()}
	bad.Borders = ExplicitBorders{1, 1, 0, 0}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("bordered cyclic create: %v", st)
	}

	bad = base
	bad.Dims = []int{5, 4} // 5 over a grid dimension of 2: uneven
	bad.Borders = ExplicitBorders{1, 1, 0, 0}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("bordered uneven create: %v", st)
	}

	cyc := base
	cyc.Distrib = []grid.Decomp{grid.CyclicDefault(), grid.BlockDefault()}
	if id, st := m.CreateArray(0, cyc); st != StatusOK {
		t.Fatalf("borderless cyclic create: %v", st)
	} else {
		if st := m.VerifyArray(0, id, 2, ExplicitBorders{1, 1, 0, 0}, grid.RowMajor); st != StatusInvalid {
			t.Fatalf("verify retrofitting borders onto a cyclic array: %v", st)
		}
		if st := m.VerifyArray(0, id, 2, NoBorderSpec{}, grid.RowMajor); st != StatusOK {
			t.Fatalf("borderless verify of a cyclic array: %v", st)
		}
		if st := m.FreeArray(0, id); st != StatusOK {
			t.Fatalf("free cyclic: %v", st)
		}
	}

	bad = base
	bad.Distrib = []grid.Decomp{grid.BlockCyclicOf(0), grid.BlockDefault()}
	if _, st := m.CreateArray(0, bad); st != StatusInvalid {
		t.Fatalf("block_cyclic(0): %v", st)
	}
}

func TestReadWriteErrors(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))
	if _, st := m.ReadElement(0, id, []int{4, 0}); st != StatusInvalid {
		t.Fatalf("out-of-range read: %v", st)
	}
	if _, st := m.ReadElement(0, id, []int{0}); st != StatusInvalid {
		t.Fatalf("arity read: %v", st)
	}
	if st := m.WriteElement(0, id, []int{0, -1}, 0); st != StatusInvalid {
		t.Fatalf("negative write: %v", st)
	}
	if _, st := m.ReadElement(0, darray.ID{Proc: 0, Seq: 999}, []int{0, 0}); st != StatusNotFound {
		t.Fatalf("unknown ID: %v", st)
	}
}

// §4.2.7's examples: verify with matching borders succeeds without change;
// mismatching borders reallocates, preserving interior data; wrong indexing
// is invalid.
func TestVerifyArray(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Borders = ExplicitBorders{1, 1, 1, 1}
	id := mustCreate(t, m, 0, spec)

	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if st := m.WriteElement(0, id, []int{i, j}, float64(i*4+j)); st != StatusOK {
				t.Fatal(st)
			}
		}
	}

	// Matching borders: no-op OK.
	if st := m.VerifyArray(0, id, 2, ExplicitBorders{1, 1, 1, 1}, grid.RowMajor); st != StatusOK {
		t.Fatalf("verify matching: %v", st)
	}

	// Wrong indexing: invalid.
	if st := m.VerifyArray(0, id, 2, ExplicitBorders{1, 1, 1, 1}, grid.ColMajor); st != StatusInvalid {
		t.Fatalf("verify wrong indexing: %v", st)
	}

	// Wrong ndims: invalid.
	if st := m.VerifyArray(0, id, 3, ExplicitBorders{1, 1, 1, 1, 0, 0}, grid.RowMajor); st != StatusInvalid {
		t.Fatalf("verify wrong ndims: %v", st)
	}

	// Different borders: reallocate, interior preserved.
	if st := m.VerifyArray(0, id, 2, ExplicitBorders{2, 2, 0, 0}, grid.RowMajor); st != StatusOK {
		t.Fatalf("verify realloc: %v", st)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v, st := m.ReadElement(0, id, []int{i, j})
			if st != StatusOK || v != float64(i*4+j) {
				t.Fatalf("after realloc (%d,%d) = %v,%v", i, j, v, st)
			}
		}
	}
	borders, st := m.FindInfo(0, id, "borders")
	if st != StatusOK || !reflect.DeepEqual(borders, []int{2, 2, 0, 0}) {
		t.Fatalf("borders after verify = %v", borders)
	}
	plus, _ := m.FindInfo(0, id, "local_dimensions_plus")
	if !reflect.DeepEqual(plus, []int{6, 2}) {
		t.Fatalf("local_dimensions_plus = %v", plus)
	}
}

func TestForeignBorders(t *testing.T) {
	_, m := newTestManager(t, 4)
	m.SetBorderResolver(func(program string, parmNum, ndims int) ([]int, error) {
		if program != "fpgm" {
			return nil, fmt.Errorf("unknown program %q", program)
		}
		// The paper's example routine: parameter 1 gets borders 2,2,...
		if parmNum == 1 {
			b := make([]int, 2*ndims)
			for i := range b {
				b[i] = 2
			}
			return b, nil
		}
		return nil, fmt.Errorf("parameter %d has no borders", parmNum)
	})
	spec := basicSpec(4)
	spec.Borders = ForeignBorders{Program: "fpgm", ParmNum: 1}
	id := mustCreate(t, m, 0, spec)
	b, st := m.FindInfo(0, id, "borders")
	if st != StatusOK || !reflect.DeepEqual(b, []int{2, 2, 2, 2}) {
		t.Fatalf("foreign borders = %v, %v", b, st)
	}

	// Unknown program: invalid.
	spec.Borders = ForeignBorders{Program: "nope", ParmNum: 1}
	if _, st := m.CreateArray(0, spec); st != StatusInvalid {
		t.Fatalf("unknown foreign program: %v", st)
	}
}

func TestForeignBordersWithoutResolver(t *testing.T) {
	_, m := newTestManager(t, 2)
	spec := basicSpec(2)
	spec.Dims = []int{4}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	spec.Borders = ForeignBorders{Program: "x", ParmNum: 1}
	if _, st := m.CreateArray(0, spec); st != StatusInvalid {
		t.Fatalf("foreign borders without resolver: %v", st)
	}
}

func TestColumnMajorArray(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Indexing = grid.ColMajor
	id := mustCreate(t, m, 0, spec)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if st := m.WriteElement(0, id, []int{i, j}, float64(i*4+j)); st != StatusOK {
				t.Fatal(st)
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v, st := m.ReadElement(0, id, []int{i, j})
			if st != StatusOK || v != float64(i*4+j) {
				t.Fatalf("(%d,%d) = %v,%v", i, j, v, st)
			}
		}
	}
}

// Figure 3.8's scenario through the array manager: 2x2 array over procs
// (0,2,4,6) of an 8-processor machine; writing x(1,0) lands on processor 4
// under row-major and processor 2 under column-major indexing.
func TestFig38Distribution(t *testing.T) {
	for _, c := range []struct {
		ix       grid.Indexing
		wantProc int
	}{
		{grid.RowMajor, 4},
		{grid.ColMajor, 2},
	} {
		_, m := newTestManager(t, 8)
		spec := CreateSpec{
			Type:     darray.Double,
			Dims:     []int{2, 2},
			Procs:    []int{0, 2, 4, 6},
			Distrib:  []grid.Decomp{grid.BlockDefault(), grid.BlockDefault()},
			Borders:  NoBorderSpec{},
			Indexing: c.ix,
		}
		id := mustCreate(t, m, 0, spec)
		if st := m.WriteElement(0, id, []int{1, 0}, 1); st != StatusOK {
			t.Fatal(st)
		}
		sec, st := m.FindLocal(c.wantProc, id)
		if st != StatusOK {
			t.Fatalf("%v: find_local on %d: %v", c.ix, c.wantProc, st)
		}
		if sec.F[0] != 1 {
			t.Fatalf("%v: x(1,0) not on processor %d", c.ix, c.wantProc)
		}
	}
}

// Property: random read-after-write across random processors always
// observes the last write (single-writer discipline per element).
func TestQuickReadAfterWrite(t *testing.T) {
	_, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Dims = []int{8, 8}
	id := mustCreate(t, m, 0, spec)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		i, j := rng.Intn(8), rng.Intn(8)
		v := rng.Float64()
		wp, rp := rng.Intn(4), rng.Intn(4)
		if st := m.WriteElement(wp, id, []int{i, j}, v); st != StatusOK {
			t.Fatal(st)
		}
		got, st := m.ReadElement(rp, id, []int{i, j})
		if st != StatusOK || got != v {
			t.Fatalf("iter %d: (%d,%d) = %v,%v want %v", iter, i, j, got, st, v)
		}
	}
}

// Concurrent creates from different processors produce distinct IDs and
// independent arrays.
func TestConcurrentCreates(t *testing.T) {
	_, m := newTestManager(t, 4)
	const each = 8
	var mu sync.Mutex
	ids := map[darray.ID]bool{}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				spec := basicSpec(4)
				id, st := m.CreateArray(p, spec)
				if st != StatusOK {
					t.Errorf("create on %d: %v", p, st)
					return
				}
				mu.Lock()
				if ids[id] {
					t.Errorf("duplicate ID %v", id)
				}
				ids[id] = true
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if len(ids) != 4*each {
		t.Fatalf("%d unique IDs, want %d", len(ids), 4*each)
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOK.String() != "STATUS_OK" || StatusInvalid.String() != "STATUS_INVALID" ||
		StatusNotFound.String() != "STATUS_NOT_FOUND" || StatusError.String() != "STATUS_ERROR" {
		t.Fatal("status strings broken")
	}
	if Status(42).String() == "" {
		t.Fatal("unknown status should still print")
	}
}

func TestBadOnProc(t *testing.T) {
	_, m := newTestManager(t, 2)
	if _, st := m.CreateArray(5, basicSpec(2)); st != StatusInvalid {
		t.Fatalf("create on bad proc: %v", st)
	}
	if _, st := m.ReadElement(-1, darray.ID{}, []int{0}); st != StatusInvalid {
		t.Fatalf("read on bad proc: %v", st)
	}
	if st := m.WriteElement(7, darray.ID{}, []int{0}, 0); st != StatusInvalid {
		t.Fatalf("write on bad proc: %v", st)
	}
	if _, st := m.FindLocal(7, darray.ID{}); st != StatusInvalid {
		t.Fatalf("find_local on bad proc: %v", st)
	}
	if _, st := m.FindInfo(7, darray.ID{}, "type"); st != StatusInvalid {
		t.Fatalf("find_info on bad proc: %v", st)
	}
	if st := m.FreeArray(7, darray.ID{}); st != StatusInvalid {
		t.Fatalf("free on bad proc: %v", st)
	}
	if st := m.VerifyArray(7, darray.ID{}, 1, NoBorderSpec{}, grid.RowMajor); st != StatusInvalid {
		t.Fatalf("verify on bad proc: %v", st)
	}
}

// Borders are invisible to the task level: global element (0,0) of a
// bordered array reads/writes the interior, never the border cells.
func TestBordersInvisibleGlobally(t *testing.T) {
	_, m := newTestManager(t, 2)
	spec := CreateSpec{
		Type:     darray.Double,
		Dims:     []int{4},
		Procs:    []int{0, 1},
		Distrib:  []grid.Decomp{grid.BlockDefault()},
		Borders:  ExplicitBorders{1, 1},
		Indexing: grid.RowMajor,
	}
	id := mustCreate(t, m, 0, spec)
	if st := m.WriteElement(0, id, []int{0}, 3); st != StatusOK {
		t.Fatal(st)
	}
	sec, st := m.FindLocal(0, id)
	if st != StatusOK {
		t.Fatal(st)
	}
	// Storage is [border, e0, e1, border]; the write must land at index 1.
	if sec.Len() != 4 || sec.F[1] != 3 || sec.F[0] != 0 {
		t.Fatalf("bordered storage = %v", sec.F)
	}
}

// With tracing enabled the manager emits one line per operation, like the
// paper's am_debug array manager.
func TestOpsTracing(t *testing.T) {
	var buf bytes.Buffer
	trace.SetOutput(&buf)
	trace.SetLevel(trace.Ops)
	defer func() {
		trace.SetLevel(trace.Off)
		trace.SetOutput(os.Stderr)
	}()

	_, m := newTestManager(t, 2)
	spec := basicSpec(2)
	spec.Dims = []int{4}
	spec.Distrib = []grid.Decomp{grid.BlockDefault()}
	id := mustCreate(t, m, 0, spec)
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatal(st)
	}
	out := buf.String()
	for _, want := range []string{"create_array", "create_local", "free_array", "free_local"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}
