// The failover half of the recovery plane: buddy replication of section
// writes, promotion of buddies to primaries after a fail-stop kill, and
// checkpoint/restart as the fallback for arrays created without
// replicas.
//
// Replication is owner-side: the processor that applies a primary write
// forwards the same payload to the written slot's buddy owners
// (darray.Meta.BuddyOwner) as one mirror_write message each — exactly
// <= 1 extra message per write-side owner per replica, and zero change
// to the healthy read path. Buddy copies share the primary's uniform
// section layout, so local rectangle bounds and storage offsets are
// valid verbatim on the mirror.
//
// Failover is metadata-only: when a coordinator call fails with
// StatusDown, the recovery coordinator promotes each dead slot's first
// live buddy to primary by rewriting Meta.Procs under a bumped
// ownership epoch and broadcasting the new meta to every entry holder.
// The promoted processor already holds the slot's bytes (its buddy
// copy); owner routing by grid slot (request.slot + entry.sectionFor)
// makes the copy authoritative without moving a single element. The
// failed call is then replayed with a fresh request id.
package arraymgr

import (
	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg"
	"repro/internal/trace"
)

// RecoveryStats counts the recovery plane's activity.
type RecoveryStats struct {
	Promotions      uint64 // slots whose buddy was promoted to primary
	Replays         uint64 // coordinator calls replayed after a promotion
	Mirrors         uint64 // mirror_write messages sent to buddy owners
	MirrorFailures  uint64 // mirrors skipped or lost to a dead/silent buddy
	CheckpointBytes uint64 // bytes drained into checkpoint images
}

// RecoveryStats returns the recovery-plane counters.
func (m *Manager) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		Promotions:      m.promotions.Load(),
		Replays:         m.replays.Load(),
		Mirrors:         m.mirrors.Load(),
		MirrorFailures:  m.mirrorFailures.Load(),
		CheckpointBytes: m.checkpointBytes.Load(),
	}
}

// Stats renders the recovery counters as a uniform stat list.
func (s RecoveryStats) Stats() []trace.Stat {
	return []trace.Stat{
		{Name: "promotions", Value: s.Promotions},
		{Name: "replays", Value: s.Replays},
		{Name: "mirrors", Value: s.Mirrors},
		{Name: "mirror_failures", Value: s.MirrorFailures},
		{Name: "checkpoint_bytes", Value: s.CheckpointBytes},
	}
}

// UseMembership installs (or, with nil, removes) a heartbeat membership
// view. Coordinators consult it before sending: a destination the
// monitor has declared dead fails fast with StatusDown instead of
// burning a full per-call retry budget.
func (m *Manager) UseMembership(mem *msg.Membership) { m.membership.Store(mem) }

// mirrorWrite forwards one applied primary write to the written slot's
// buddy owners, one mirror_write message per live buddy, and waits for
// their acknowledgements — a replicated write is durable on every live
// buddy by the time the coordinator's call returns, which is what makes
// post-promotion reads bit-identical. A dead buddy degrades the replica
// (counted in MirrorFailures), never the primary write. Called after
// the server lock is released: buddies mirror to each other, so
// awaiting under the lock could deadlock a buddy ring.
func (m *Manager) mirrorWrite(proc int, meta *darray.Meta, req *request) Status {
	if meta.Replicas == 0 || req.op == "mirror_write" {
		return StatusOK
	}
	router := m.machine.Router()
	var replies []*request
	for j := 1; j <= meta.Replicas; j++ {
		buddy := meta.BuddyOwner(req.slot, j)
		if buddy == proc {
			continue
		}
		if router.Down(buddy) {
			m.mirrorFailures.Add(1)
			continue
		}
		m.mirrors.Add(1)
		replies = append(replies, m.sendAsync(proc, buddy, &request{
			op: "mirror_write", id: req.id, slot: req.slot,
			lo: req.lo, hi: req.hi, step: req.step, offs: req.offs, vals: req.vals,
		}))
	}
	st := StatusOK
	for _, r := range replies {
		rr := m.await(r)
		switch rr.status {
		case StatusOK:
		case StatusDown, StatusTimeout:
			// The buddy died (or went silent) mid-mirror: fail-stop says
			// it will never serve a read again, so losing its copy cannot
			// produce a divergent result — degrade and carry on.
			m.mirrorFailures.Add(1)
		default:
			if rr.status > st {
				st = rr.status
			}
		}
	}
	return st
}

// doMirrorWrite lands one mirrored write on this processor's copy of the
// slot — the buddy copy normally, the promoted primary after a failover.
// It never forwards further: mirrors fan out from the primary only.
func (m *Manager) doMirrorWrite(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		return response{status: StatusError}
	}
	var err error
	switch {
	case req.offs != nil:
		err = sec.ScatterFrom(req.vals, req.offs)
	case req.step != nil:
		err = sec.WriteBlockStrided(req.vals, req.lo, req.hi, req.step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	default:
		err = sec.WriteBlock(req.vals, req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	}
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK}
}

// RecoverArray promotes buddies to primaries for every dead owner of the
// array: each dead slot's first live buddy becomes its primary under a
// bumped ownership epoch, and the new metadata is broadcast to every
// live entry holder. StatusOK means the array is fully served by live
// processors (possibly with nothing to do); StatusDown means some slot
// lost its primary and every buddy — checkpoint/restart territory.
func (m *Manager) RecoverArray(onProc int, id darray.ID) Status {
	_, st := m.recoverArray(onProc, id)
	return st
}

// recoverArray is RecoverArray reporting how many slots were promoted,
// which the replay wrapper uses to decide whether replaying can help.
func (m *Manager) recoverArray(onProc int, id darray.ID) (int, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return 0, StatusInvalid
	}
	e, st := m.lookup(onProc, id)
	if st != StatusOK {
		return 0, st
	}
	srv := m.servers[onProc]
	srv.mu.Lock()
	meta := e.meta.Clone()
	srv.mu.Unlock()
	router := m.machine.Router()
	promoted := 0
	for slot := 0; slot < meta.GridSize(); slot++ {
		if !router.Down(meta.Procs[slot]) {
			continue
		}
		next := -1
		for j := 1; j <= meta.Replicas; j++ {
			if b := meta.BuddyOwner(slot, j); !router.Down(b) {
				next = b
				break
			}
		}
		if next < 0 {
			// No replicas (k=0) or every buddy dead too: replication
			// cannot recover this slot.
			return 0, StatusDown
		}
		if meta.Origins == nil {
			// First promotion: preserve the creation-time assignment that
			// buddy placement and replica allocation were computed from.
			meta.Origins = append([]int(nil), meta.Procs...)
		}
		meta.Procs[slot] = next
		promoted++
	}
	if promoted == 0 {
		return 0, StatusOK
	}
	meta.Epoch++
	m.promotions.Add(uint64(promoted))
	// Broadcast the promoted metadata to every live entry holder (origin
	// owners + creator + this coordinator) as a flat fan-out: the
	// combining tree would strand subtrees behind dead interior nodes.
	// doUpdateMeta's epoch guard makes stragglers and races harmless.
	targets := map[int]bool{onProc: true, id.Proc: true}
	for _, p := range meta.OriginProcs() {
		targets[p] = true
	}
	for _, p := range meta.Procs[:meta.GridSize()] {
		targets[p] = true
	}
	var replies []*request
	status := StatusOK
	for p := range targets {
		if router.Down(p) {
			continue
		}
		if p == onProc {
			if r := m.doUpdateMeta(onProc, &request{id: id, meta: meta}); r.status > status {
				status = r.status
			}
			continue
		}
		replies = append(replies, m.sendAsync(onProc, p, &request{op: "update_meta", id: id, meta: meta}))
	}
	for _, r := range replies {
		rr := m.await(r)
		// A holder that died during the broadcast is fail-stop: it will
		// never serve again, so missing the update cannot matter.
		if rr.status != StatusOK && rr.status != StatusDown && rr.status > status {
			status = rr.status
		}
	}
	return promoted, status
}

// maxRecoverAttempts bounds the promote-and-replay loop of one
// coordinator call: each attempt can only be justified by new deaths,
// and P is finite.
const maxRecoverAttempts = 3

// sendData issues one data-plane coordinator call with transparent
// failover: when the call fails because an owner died (StatusDown, or a
// StatusTimeout that turns out to be a kill), the arrays' dead owners
// are promoted and the call is replayed with a fresh request. Replays
// re-execute any partial work of the failed attempt; every data-plane
// op is idempotent (same payload, same destination state), so the
// result is bit-identical to an undisturbed run. With no policy
// installed there is no failure detection, hence no replay.
func (m *Manager) sendData(onProc int, ids []darray.ID, build func() *request) response {
	r := m.send(onProc, onProc, build())
	if m.policy.Load() == nil {
		return r
	}
	for attempt := 0; attempt < maxRecoverAttempts && (r.status == StatusDown || r.status == StatusTimeout); attempt++ {
		promoted := 0
		for _, id := range ids {
			p, _ := m.recoverArray(onProc, id)
			promoted += p
		}
		if promoted == 0 {
			// Nothing was promotable: the failure is a plain timeout or an
			// unrecoverable kill — surface it as-is.
			break
		}
		m.replays.Add(1)
		r = m.send(onProc, onProc, build())
	}
	return r
}

// CheckpointImage is a self-contained snapshot of one distributed array:
// everything needed to recreate it — possibly on a different (smaller)
// processor set — plus a dense row-major copy of its elements. It is the
// k=0 fallback of the recovery plane: arrays created without replicas
// survive kills only through images taken before the failure. Borders
// are not part of the image (a restored array starts borderless; Verify
// can retrofit them).
type CheckpointImage struct {
	Type     darray.ElemType
	Dims     []int
	Distrib  []grid.Decomp
	Indexing grid.Indexing
	Procs    []int // creation-time processor set of the source array
	Replicas int
	Data     []float64 // dense row-major snapshot of the whole array
}

// Checkpoint drains the array into a CheckpointImage through the bulk
// read plane: one request per owning processor, assembled into one dense
// buffer on onProc.
func (m *Manager) Checkpoint(onProc int, id darray.ID) (*CheckpointImage, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	meta, st := m.Meta(onProc, id)
	if st != StatusOK {
		return nil, st
	}
	lo := make([]int, meta.NDims())
	hi := append([]int(nil), meta.Dims...)
	data := make([]float64, grid.RectSize(lo, hi))
	if st := m.ReadBlockInto(onProc, id, lo, hi, data); st != StatusOK {
		return nil, st
	}
	// The resolved distributions reduce to the decomposition vocabulary,
	// so a restore on fewer processors re-derives a valid layout.
	dists := meta.ResolvedDists()
	distrib := make([]grid.Decomp, len(dists))
	for i, d := range dists {
		switch d.Kind {
		case grid.DistCyclic:
			distrib[i] = grid.CyclicDefault()
		case grid.DistBlockCyclic:
			distrib[i] = grid.BlockCyclicOf(d.B)
		default:
			distrib[i] = grid.BlockDefault()
		}
	}
	m.checkpointBytes.Add(uint64(8 * len(data)))
	return &CheckpointImage{
		Type:     meta.Type,
		Dims:     hi,
		Distrib:  distrib,
		Indexing: meta.Indexing,
		Procs:    append([]int(nil), meta.OriginProcs()...),
		Replicas: meta.Replicas,
		Data:     data,
	}, StatusOK
}

// Restore recreates an array from a checkpoint image on the given
// processors — nil means the image's processors that are still alive —
// and writes the snapshot back through the bulk write plane. The
// replication degree is carried over, clamped to the new processor
// count. It returns the new array's ID: restart is re-creation, so the
// old ID stays dead.
func (m *Manager) Restore(onProc int, img *CheckpointImage, procs []int) (darray.ID, Status) {
	if img == nil || m.machine.CheckProc(onProc) != nil {
		return darray.ID{}, StatusInvalid
	}
	if procs == nil {
		router := m.machine.Router()
		for _, p := range img.Procs {
			if !router.Down(p) {
				procs = append(procs, p)
			}
		}
	}
	if len(procs) == 0 {
		return darray.ID{}, StatusDown
	}
	k := img.Replicas
	if k >= len(procs) {
		k = len(procs) - 1
	}
	id, st := m.CreateArray(onProc, CreateSpec{
		Type: img.Type, Dims: img.Dims, Procs: procs, Distrib: img.Distrib,
		Borders: NoBorderSpec{}, Indexing: img.Indexing, Replicas: k,
	})
	if st != StatusOK {
		return darray.ID{}, st
	}
	lo := make([]int, len(img.Dims))
	if st := m.WriteBlock(onProc, id, lo, img.Dims, img.Data); st != StatusOK {
		return darray.ID{}, st
	}
	return id, StatusOK
}
