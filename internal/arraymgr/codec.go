// Binary wire codecs for the array-manager envelopes. The protocol
// structs dominate the data plane's byte stream (every remote request,
// reply, and redistribution ack is one of them), so they get custom
// wire.Codec entries instead of riding the gob fallback: field-by-field
// varint/raw encoding with none of gob's per-message type description
// or reflect walk.
//
// Layouts are positional and fixed; the IDs are package constants and
// every part runs the same binary, so both sides agree by construction.
// The rare nested fields that are genuinely polymorphic (Meta, Info)
// recurse through wire.AppendAny and keep their gob fallback.
package arraymgr

import (
	"fmt"
	"reflect"

	"repro/internal/darray"
	"repro/internal/msg/wire"
)

// Codec IDs. Stable protocol constants, >= wire.CustomBase.
const (
	codecRequest  = wire.CustomBase + 0
	codecResponse = wire.CustomBase + 1
	codecAck      = wire.CustomBase + 2
)

func init() {
	wire.Register(wire.Codec{
		ID:     codecRequest,
		Type:   reflect.TypeOf(&wireRequest{}),
		Append: appendRequest,
		Read:   readRequest,
	})
	wire.Register(wire.Codec{
		ID:     codecResponse,
		Type:   reflect.TypeOf(&wireResponse{}),
		Append: appendResponse,
		Read:   readResponse,
	})
	wire.Register(wire.Codec{
		ID:     codecAck,
		Type:   reflect.TypeOf(&wireAck{}),
		Append: appendAck,
		Read:   readAck,
	})
}

// appendNested encodes a polymorphic field via the any-payload encoding.
// Codec Append cannot return an error; an unencodable nested value is a
// protocol bug of the same class as a codec-ID collision, so it panics
// rather than silently corrupting the stream. (Under PR-9's whole-frame
// gob the same value would have failed the frame encode.)
func appendNested(b []byte, v any, what string) []byte {
	b, err := wire.AppendAny(b, v, false)
	if err != nil {
		panic(fmt.Sprintf("arraymgr: unencodable %s: %v", what, err))
	}
	return b
}

func appendID(b []byte, id darray.ID) []byte {
	b = wire.AppendInt(b, id.Proc)
	return wire.AppendInt(b, id.Seq)
}

func readID(b []byte) (darray.ID, []byte, error) {
	proc, b, err := wire.ReadInt(b)
	if err != nil {
		return darray.ID{}, b, err
	}
	seq, b, err := wire.ReadInt(b)
	if err != nil {
		return darray.ID{}, b, err
	}
	return darray.ID{Proc: proc, Seq: seq}, b, nil
}

func appendRequest(b []byte, v any) []byte {
	w := v.(*wireRequest)
	b = wire.AppendString(b, w.Op)
	b = appendID(b, w.ID)
	b = appendID(b, w.ID2)
	if w.Meta == nil {
		b = wire.AppendBool(b, false)
	} else {
		b = wire.AppendBool(b, true)
		b = appendNested(b, w.Meta, "request meta")
	}
	b = wire.AppendInts(b, w.Gidx)
	b = wire.AppendIntRows(b, w.Gidxs)
	b = wire.AppendInts(b, w.Offs)
	b = wire.AppendInts(b, w.Lo)
	b = wire.AppendInts(b, w.Hi)
	b = wire.AppendInts(b, w.Step)
	b = wire.AppendInts(b, w.Lo2)
	b = wire.AppendFloat64s(b, w.Vals)
	b = wire.AppendInt(b, w.Slot)
	b = wire.AppendString(b, w.Which)
	b = wire.AppendInts(b, w.Procs)
	b = wire.AppendInt(b, w.Node)
	b = wire.AppendUvarint(b, uint64(len(w.Ships)))
	for i := range w.Ships {
		sh := &w.Ships[i]
		b = wire.AppendInt(b, sh.DstProc)
		b = wire.AppendInts(b, sh.SrcLo)
		b = wire.AppendInts(b, sh.SrcHi)
		b = wire.AppendInts(b, sh.DstLo)
		b = wire.AppendInts(b, sh.DstHi)
		b = wire.AppendInts(b, sh.Step)
		b = wire.AppendInts(b, sh.SrcOffs)
		b = wire.AppendInts(b, sh.DstOffs)
		b = wire.AppendInt(b, sh.SrcSlot)
		b = wire.AppendInt(b, sh.DstSlot)
		b = wire.AppendInt(b, sh.Pair)
	}
	b = wire.AppendUvarint(b, w.Seq)
	b = wire.AppendUvarint(b, w.Call)
	b = wire.AppendInt(b, w.Pair)
	b = wire.AppendInt(b, w.Src)
	b = wire.AppendInt(b, w.Dst)
	b = wire.AppendInt(b, w.Origin)
	b = wire.AppendUvarint(b, w.ReplyID)
	b = wire.AppendInt(b, w.AckProc)
	return wire.AppendUvarint(b, w.AckID)
}

func readRequest(b []byte) (any, []byte, error) {
	var err error
	w := &wireRequest{}
	if w.Op, b, err = wire.ReadString(b); err != nil {
		return nil, b, err
	}
	if w.ID, b, err = readID(b); err != nil {
		return nil, b, err
	}
	if w.ID2, b, err = readID(b); err != nil {
		return nil, b, err
	}
	hasMeta, b, err := wire.ReadBool(b)
	if err != nil {
		return nil, b, err
	}
	if hasMeta {
		var m any
		if m, b, err = wire.ReadAny(b); err != nil {
			return nil, b, err
		}
		meta, ok := m.(*darray.Meta)
		if !ok {
			return nil, b, fmt.Errorf("arraymgr: request meta decoded as %T", m)
		}
		w.Meta = meta
	}
	if w.Gidx, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Gidxs, b, err = wire.ReadIntRows(b); err != nil {
		return nil, b, err
	}
	if w.Offs, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Lo, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Hi, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Step, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Lo2, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Vals, b, err = wire.ReadFloat64s(b); err != nil {
		return nil, b, err
	}
	if w.Slot, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.Which, b, err = wire.ReadString(b); err != nil {
		return nil, b, err
	}
	if w.Procs, b, err = wire.ReadInts(b); err != nil {
		return nil, b, err
	}
	if w.Node, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	nships, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, b, err
	}
	if nships > uint64(len(b)) {
		return nil, b, fmt.Errorf("arraymgr: ship count %d exceeds buffer", nships)
	}
	if nships > 0 {
		w.Ships = make([]wireShip, nships)
		for i := range w.Ships {
			sh := &w.Ships[i]
			if sh.DstProc, b, err = wire.ReadInt(b); err != nil {
				return nil, b, err
			}
			if sh.SrcLo, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.SrcHi, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.DstLo, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.DstHi, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.Step, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.SrcOffs, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.DstOffs, b, err = wire.ReadInts(b); err != nil {
				return nil, b, err
			}
			if sh.SrcSlot, b, err = wire.ReadInt(b); err != nil {
				return nil, b, err
			}
			if sh.DstSlot, b, err = wire.ReadInt(b); err != nil {
				return nil, b, err
			}
			if sh.Pair, b, err = wire.ReadInt(b); err != nil {
				return nil, b, err
			}
		}
	}
	if w.Seq, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if w.Call, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if w.Pair, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.Src, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.Dst, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.Origin, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.ReplyID, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if w.AckProc, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	if w.AckID, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	return w, b, nil
}

func appendResponse(b []byte, v any) []byte {
	w := v.(*wireResponse)
	b = wire.AppendUvarint(b, w.ReplyID)
	b = wire.AppendInt(b, int(w.Status))
	b = wire.AppendFloat64s(b, w.Vals)
	b = appendNested(b, w.Info, "response info")
	return wire.AppendInt(b, w.Pair)
}

func readResponse(b []byte) (any, []byte, error) {
	var err error
	w := &wireResponse{}
	if w.ReplyID, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	var status int
	if status, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	w.Status = Status(status)
	if w.Vals, b, err = wire.ReadFloat64s(b); err != nil {
		return nil, b, err
	}
	if w.Info, b, err = wire.ReadAny(b); err != nil {
		return nil, b, err
	}
	if w.Pair, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	return w, b, nil
}

func appendAck(b []byte, v any) []byte {
	w := v.(*wireAck)
	b = wire.AppendUvarint(b, w.AckID)
	b = wire.AppendInt(b, int(w.Status))
	return wire.AppendInt(b, w.Pair)
}

func readAck(b []byte) (any, []byte, error) {
	var err error
	w := &wireAck{}
	if w.AckID, b, err = wire.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	var status int
	if status, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	w.Status = Status(status)
	if w.Pair, b, err = wire.ReadInt(b); err != nil {
		return nil, b, err
	}
	return w, b, nil
}
