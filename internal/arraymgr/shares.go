// The descriptor form of the cyclic rectangle path: when every owner's
// share of a (lo, hi, step) lattice is a per-dimension arithmetic
// progression (darray.Meta.StridedShares), the coordinator sends each
// owner O(ndims) bounds+step descriptors instead of a materialized
// offset vector with one entry per element — the owner serves them with
// the same pooled strided-rectangle routine as the regular plane, and
// the coordinator repacks each reply into the request lattice.
package arraymgr

import (
	"repro/internal/darray"
	"repro/internal/grid"
)

// copyShare moves one owner share's packed piece between the dense
// request-lattice buffer (full) and the share's packed sub-buffer
// (sub): unpacking a read reply into place when toFull, packing the
// values of a write otherwise. Element t (per-dimension t[i], row-major
// over the share's lattice) of the piece sits at request-lattice
// position PosLo[i] + t[i]*PosStep[i]; sdims are the request lattice's
// per-dimension point counts.
func copyShare(toFull bool, full, sub []float64, sh darray.StridedShare, sdims []int) {
	n := len(sdims)
	fullStride := make([]int, n)
	st := 1
	for i := n - 1; i >= 0; i-- {
		fullStride[i] = st
		st *= sdims[i]
	}
	cnt := make([]int, n)
	estride := make([]int, n)
	pos0 := 0
	for i := 0; i < n; i++ {
		cnt[i] = (sh.Hi[i] - sh.Lo[i] + sh.Step[i] - 1) / sh.Step[i]
		estride[i] = sh.PosStep[i] * fullStride[i]
		pos0 += sh.PosLo[i] * fullStride[i]
	}
	last := n - 1
	run := cnt[last]
	contiguous := sh.PosStep[last] == 1
	idx := make([]int, n)
	off := pos0
	k := 0
	for {
		if contiguous {
			if toFull {
				copy(full[off:off+run], sub[k:k+run])
			} else {
				copy(sub[k:k+run], full[off:off+run])
			}
			k += run
		} else {
			o := off
			for j := 0; j < run; j++ {
				if toFull {
					full[o] = sub[k]
				} else {
					sub[k] = full[o]
				}
				k++
				o += estride[last]
			}
		}
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			off += estride[i]
			if idx[i] < cnt[i] {
				break
			}
			off -= cnt[i] * estride[i]
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// readShares drives the gather half of the descriptor transfer: one
// concurrent read_block_strided_local request per remote owner share
// (all scattered before any reply is awaited), the local share serviced
// in place, and each reply repacked into its request-lattice positions
// in out.
func (m *Manager) readShares(proc int, id darray.ID, shares []darray.StridedShare, sdims []int, out []float64) Status {
	replies := make([]*request, len(shares))
	for i, sh := range shares {
		if sh.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, sh.Proc,
			&request{op: "read_block_strided_local", id: id, lo: sh.Lo, hi: sh.Hi, step: sh.Step, slot: sh.Slot})
	}
	status := StatusOK
	// unpack places one owner's reply at its request-lattice positions
	// and returns the pooled reply buffer to the owner's server.
	unpack := func(i int, r response) {
		if r.status != StatusOK {
			status = r.status
			return
		}
		copyShare(true, out, r.vals, shares[i], sdims)
		m.recycle(shares[i].Proc, r.vals)
	}
	for i, sh := range shares {
		if replies[i] != nil {
			continue
		}
		unpack(i, m.doReadBlockStridedLocal(proc, &request{id: id, lo: sh.Lo, hi: sh.Hi, step: sh.Step, slot: sh.Slot}))
	}
	for i := range shares {
		if replies[i] == nil {
			continue
		}
		unpack(i, m.await(replies[i]))
	}
	return status
}

// writeShares drives the scatter half of the descriptor transfer: each
// remote owner share receives one write_block_strided_local request
// carrying its bounds and a fresh packed snapshot of its values
// (messages between address spaces carry copies, never views), all
// posted before any reply is awaited; the local share is written in
// place and the statuses gathered.
func (m *Manager) writeShares(proc int, id darray.ID, shares []darray.StridedShare, sdims []int, vals []float64) Status {
	// pack builds one share's value vector in the share's row-major
	// lattice order.
	pack := func(sh darray.StridedShare) []float64 {
		sub := make([]float64, grid.StridedRectSize(sh.Lo, sh.Hi, sh.Step))
		copyShare(false, vals, sub, sh, sdims)
		return sub
	}
	replies := make([]*request, len(shares))
	for i, sh := range shares {
		if sh.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, sh.Proc,
			&request{op: "write_block_strided_local", id: id, lo: sh.Lo, hi: sh.Hi, step: sh.Step, vals: pack(sh), slot: sh.Slot})
	}
	status := StatusOK
	// Service every local share: after a failover promotion one processor
	// can own several slots, so "local" is not necessarily unique.
	for i, sh := range shares {
		if replies[i] != nil {
			continue
		}
		if r := m.doWriteBlockStridedLocal(proc, &request{id: id, lo: sh.Lo, hi: sh.Hi, step: sh.Step, vals: pack(sh), slot: sh.Slot}); r.status != StatusOK {
			status = r.status
		}
	}
	for i := range shares {
		if replies[i] == nil {
			continue
		}
		if r := m.await(replies[i]); r.status != StatusOK {
			status = r.status
		}
	}
	return status
}
