package arraymgr

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
)

// The oracle property harness: every data path of the array manager —
// dense blocks, strided blocks, indexed gathers and indexed scatters, plus
// the per-element ops they degenerate to — is driven with random requests
// against a sequential reference array that mirrors each write
// element-for-element. Whatever the decomposition, borders, indexing
// order, element type or requesting processor, the distributed array must
// be indistinguishable from the flat row-major array the oracle holds.

// oracle is the sequential reference: a dense row-major array applying the
// same writes the manager receives.
type oracle struct {
	dims []int
	typ  darray.ElemType
	data []float64
}

func newOracle(dims []int, typ darray.ElemType) *oracle {
	return &oracle{dims: dims, typ: typ, data: make([]float64, grid.Size(dims))}
}

func (o *oracle) at(idx []int) int {
	lin := 0
	for i := range idx {
		lin = lin*o.dims[i] + idx[i]
	}
	return lin
}

// set mirrors one element write, truncating for Int arrays the way the
// section storage does.
func (o *oracle) set(idx []int, v float64) {
	if o.typ == darray.Int {
		v = float64(int64(v))
	}
	o.data[o.at(idx)] = v
}

func (o *oracle) get(idx []int) float64 { return o.data[o.at(idx)] }

// oracleCase is one point of the configuration space the harness sweeps.
type oracleCase struct {
	name string
	p    int
	spec CreateSpec
}

// oracleCases crosses decompositions (well beyond the required three) with
// both indexing orders; borders and element types vary across entries.
func oracleCases() []oracleCase {
	procs := func(ps ...int) []int { return ps }
	var out []oracleCase
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		out = append(out,
			oracleCase{"1d/block", 4, CreateSpec{
				Type: darray.Double, Dims: []int{24}, Procs: procs(0, 1, 2, 3),
				Distrib: []grid.Decomp{grid.BlockDefault()},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"2d/block-block", 4, CreateSpec{
				Type: darray.Double, Dims: []int{12, 8}, Procs: procs(0, 1, 2, 3),
				Distrib: []grid.Decomp{grid.BlockDefault(), grid.BlockDefault()},
				Borders: ExplicitBorders{1, 2, 0, 1}, Indexing: ix,
			}},
			oracleCase{"2d/rows-star", 4, CreateSpec{
				Type: darray.Int, Dims: []int{16, 6}, Procs: procs(0, 1, 2, 3),
				Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
				Borders: ExplicitBorders{1, 1, 0, 0}, Indexing: ix,
			}},
			oracleCase{"2d/cols-fixed/subset", 6, CreateSpec{
				Type: darray.Double, Dims: []int{6, 12}, Procs: procs(5, 1, 3, 0),
				Distrib: []grid.Decomp{grid.BlockOf(1), grid.BlockOf(4)},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"3d/mixed", 8, CreateSpec{
				Type: darray.Double, Dims: []int{4, 6, 4}, Procs: procs(0, 1, 2, 3, 4, 5, 6, 7),
				Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(3), grid.NoDecomp()},
				Borders: ExplicitBorders{1, 0, 0, 1, 1, 1}, Indexing: ix,
			}},
			// Beyond the paper's prototype: uneven trailing blocks (shapes
			// the divide-evenly restriction used to reject) and cyclic /
			// block-cyclic layouts through the distribution layer.
			oracleCase{"2d/uneven-block", 4, CreateSpec{
				Type: darray.Double, Dims: []int{13, 7}, Procs: procs(0, 1, 2, 3),
				Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"1d/cyclic", 4, CreateSpec{
				Type: darray.Double, Dims: []int{23}, Procs: procs(0, 1, 2, 3),
				Distrib: []grid.Decomp{grid.CyclicDefault()},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"2d/cyclic-star", 4, CreateSpec{
				Type: darray.Int, Dims: []int{13, 5}, Procs: procs(2, 0, 3, 1),
				Distrib: []grid.Decomp{grid.CyclicOf(4), grid.NoDecomp()},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"2d/blockcyclic-block", 6, CreateSpec{
				Type: darray.Double, Dims: []int{16, 9}, Procs: procs(5, 1, 3, 0, 2, 4),
				Distrib: []grid.Decomp{grid.BlockCyclicOfN(3, 3), grid.BlockOf(2)},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
			oracleCase{"3d/cyclic-mixed", 8, CreateSpec{
				Type: darray.Double, Dims: []int{5, 7, 4}, Procs: procs(0, 1, 2, 3, 4, 5, 6, 7),
				Distrib: []grid.Decomp{grid.CyclicOf(2), grid.BlockCyclicOfN(2, 2), grid.BlockOf(2)},
				Borders: NoBorderSpec{}, Indexing: ix,
			}},
		)
	}
	for i := range out {
		out[i].name = fmt.Sprintf("%s/%s", out[i].name, out[i].spec.Indexing)
	}
	return out
}

// randomRect draws a non-empty rectangle within dims, strided with
// probability ~2/3 (step 1..3 per dimension).
func randomRect(rng *rand.Rand, dims []int) (lo, hi, step []int) {
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	step = make([]int, len(dims))
	for i, d := range dims {
		lo[i] = rng.Intn(d)
		hi[i] = lo[i] + 1 + rng.Intn(d-lo[i])
		step[i] = 1
	}
	if rng.Intn(3) > 0 {
		for i := range step {
			step[i] = 1 + rng.Intn(3)
		}
	}
	return lo, hi, step
}

// randomIndices draws k global index tuples, roughly one in eight a
// duplicate of an earlier one (so scatters exercise last-writer-wins).
func randomIndices(rng *rand.Rand, dims []int, k int) [][]int {
	out := make([][]int, k)
	for i := range out {
		if i > 0 && rng.Intn(8) == 0 {
			out[i] = out[rng.Intn(i)]
			continue
		}
		idx := make([]int, len(dims))
		for d := range idx {
			idx[d] = rng.Intn(dims[d])
		}
		out[i] = idx
	}
	return out
}

// TestOracleAllPaths drives a random operation sequence through all four
// transfer paths — dense blocks, strided blocks, gathers, scatters — and
// the per-element degenerate case, from varying requesting processors,
// checking every read against the oracle and every write through a
// subsequent full dense readback.
func TestOracleAllPaths(t *testing.T) {
	const ops = 80
	rng := rand.New(rand.NewSource(4))
	for _, c := range oracleCases() {
		t.Run(c.name, func(t *testing.T) {
			_, m := newTestManager(t, c.p)
			id := mustCreate(t, m, 0, c.spec)
			ref := newOracle(c.spec.Dims, c.spec.Type)
			dims := c.spec.Dims
			nd := len(dims)

			// Requests may originate anywhere an entry lives: the creator
			// or any processor holding a section.
			meta, st := m.Meta(0, id)
			if st != StatusOK {
				t.Fatalf("Meta: %v", st)
			}
			origins := append([]int{0}, meta.SectionProcs()...)
			origin := func() int { return origins[rng.Intn(len(origins))] }

			nextVal := 1.0
			value := func() float64 {
				nextVal++
				return nextVal
			}

			for op := 0; op < ops; op++ {
				switch rng.Intn(7) {
				case 0: // dense write
					lo, hi, _ := randomRect(rng, dims)
					vals := make([]float64, grid.RectSize(lo, hi))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.WriteBlock(origin(), id, lo, hi, vals); st != StatusOK {
						t.Fatalf("op %d: WriteBlock: %v", op, st)
					}
					_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
						ref.set(idx, vals[k])
						return nil
					})
				case 1: // dense read
					lo, hi, _ := randomRect(rng, dims)
					got, st := m.ReadBlock(origin(), id, lo, hi)
					if st != StatusOK {
						t.Fatalf("op %d: ReadBlock: %v", op, st)
					}
					_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
						if got[k] != ref.get(idx) {
							t.Fatalf("op %d: ReadBlock[%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
						}
						return nil
					})
				case 2: // strided write
					lo, hi, step := randomRect(rng, dims)
					vals := make([]float64, grid.StridedRectSize(lo, hi, step))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.WriteBlockStrided(origin(), id, lo, hi, step, vals); st != StatusOK {
						t.Fatalf("op %d: WriteBlockStrided: %v", op, st)
					}
					_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
						ref.set(idx, vals[k])
						return nil
					})
				case 3: // strided read (alternating allocating / into)
					lo, hi, step := randomRect(rng, dims)
					var got []float64
					if op%2 == 0 {
						var st Status
						got, st = m.ReadBlockStrided(origin(), id, lo, hi, step)
						if st != StatusOK {
							t.Fatalf("op %d: ReadBlockStrided: %v", op, st)
						}
					} else {
						got = make([]float64, grid.StridedRectSize(lo, hi, step))
						if st := m.ReadBlockStridedInto(origin(), id, lo, hi, step, got); st != StatusOK {
							t.Fatalf("op %d: ReadBlockStridedInto: %v", op, st)
						}
					}
					_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
						if got[k] != ref.get(idx) {
							t.Fatalf("op %d: strided read [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
						}
						return nil
					})
				case 4: // scatter (duplicates included: last writer wins)
					indices := randomIndices(rng, dims, 1+rng.Intn(20))
					vals := make([]float64, len(indices))
					for i := range vals {
						vals[i] = value()
					}
					if st := m.ScatterElements(origin(), id, indices, vals); st != StatusOK {
						t.Fatalf("op %d: ScatterElements: %v", op, st)
					}
					for i, idx := range indices {
						ref.set(idx, vals[i])
					}
				case 5: // gather (alternating allocating / into)
					indices := randomIndices(rng, dims, 1+rng.Intn(20))
					got := make([]float64, len(indices))
					if op%2 == 0 {
						if st := m.GatherElementsInto(origin(), id, indices, got); st != StatusOK {
							t.Fatalf("op %d: GatherElementsInto: %v", op, st)
						}
					} else {
						var st Status
						got, st = m.GatherElements(origin(), id, indices)
						if st != StatusOK {
							t.Fatalf("op %d: GatherElements: %v", op, st)
						}
					}
					for i, idx := range indices {
						if got[i] != ref.get(idx) {
							t.Fatalf("op %d: gather[%d] (%v) = %v, oracle %v", op, i, idx, got[i], ref.get(idx))
						}
					}
				case 6: // per-element probe (the k=1 degenerate case)
					idx := randomIndices(rng, dims, 1)[0]
					if rng.Intn(2) == 0 {
						v := value()
						if st := m.WriteElement(origin(), id, idx, v); st != StatusOK {
							t.Fatalf("op %d: WriteElement: %v", op, st)
						}
						ref.set(idx, v)
					} else {
						got, st := m.ReadElement(origin(), id, idx)
						if st != StatusOK {
							t.Fatalf("op %d: ReadElement: %v", op, st)
						}
						if got != ref.get(idx) {
							t.Fatalf("op %d: ReadElement(%v) = %v, oracle %v", op, idx, got, ref.get(idx))
						}
					}
				}
			}

			// Final full dense readback: the distributed array and the
			// oracle must be identical element-for-element.
			lo := make([]int, nd)
			snap, st := m.ReadBlock(0, id, lo, dims)
			if st != StatusOK {
				t.Fatalf("final ReadBlock: %v", st)
			}
			_ = grid.ForEachRect(lo, dims, func(idx []int, k int) error {
				if snap[k] != ref.get(idx) {
					t.Fatalf("final state diverges at %v: %v vs oracle %v", idx, snap[k], ref.get(idx))
				}
				return nil
			})
		})
	}
}
