package arraymgr

import (
	"math"
	"testing"
)

// TestDedupOriginScoping pins the origin scoping of the retransmit
// filter: seq counters are per-process, so once managers span OS
// processes two coordinators can legitimately mint the same number.
// The window must treat {origin A, seq N} and {origin B, seq N} as
// distinct requests — an unscoped window would false-dedup the second
// arrival and its coordinator would retry until timeout.
func TestDedupOriginScoping(t *testing.T) {
	var d deduper
	reqA := &request{op: "write", seq: 7, origin: 0}
	reqB := &request{op: "write", seq: 7, origin: 2}

	kA, ok := dedupKeyOf(reqA)
	if !ok {
		t.Fatal("seq'd request has no dedup key")
	}
	kB, ok := dedupKeyOf(reqB)
	if !ok {
		t.Fatal("seq'd request has no dedup key")
	}
	if kA == kB {
		t.Fatalf("same seq from different origins collapsed to one key %+v", kA)
	}
	if d.dup(kA) {
		t.Fatal("first arrival from origin 0 filtered")
	}
	if d.dup(kB) {
		t.Fatal("same seq from origin 2 filtered: dedup window not origin-scoped")
	}
	// Genuine retransmits still filter, per origin.
	if !d.dup(kA) || !d.dup(kB) {
		t.Fatal("retransmit not filtered")
	}

	// Ship keys scope the same way, and never collide with seq keys
	// even on equal numbers.
	shipA := &request{op: "redist_ship", call: 7, pair: 0, origin: 0}
	kSA, ok := dedupKeyOf(shipA)
	if !ok {
		t.Fatal("ship request has no dedup key")
	}
	if kSA == kA {
		t.Fatal("ship key collides with seq key on equal numbers")
	}
	shipB := &request{op: "redist_ship", call: 7, pair: 0, origin: 2}
	if kSB, _ := dedupKeyOf(shipB); kSB == kSA {
		t.Fatal("same ship from different origins collapsed to one key")
	}
}

// TestDedupEvictionThenReuse forces a window eviction and then replays
// the evicted sequence number from the same origin — the wrapped-counter
// reuse case. The reused id identifies a new logical request and must
// execute, not be swallowed as a stale retransmit.
func TestDedupEvictionThenReuse(t *testing.T) {
	var d deduper
	keyOf := func(origin int, seq uint64) dedupKey {
		k, ok := dedupKeyOf(&request{op: "write", seq: seq, origin: origin})
		if !ok {
			t.Fatalf("no key for seq %d", seq)
		}
		return k
	}

	// Dispatch seq 1, then enough fresh requests to evict it.
	if d.dup(keyOf(0, 1)) {
		t.Fatal("fresh seq 1 filtered")
	}
	for s := uint64(2); s <= dedupWindow+1; s++ {
		if d.dup(keyOf(0, s)) {
			t.Fatalf("fresh seq %d filtered", s)
		}
	}
	// The counter has since wrapped and minted 1 again for a brand-new
	// request: it must execute.
	if d.dup(keyOf(0, 1)) {
		t.Fatal("reused seq 1 filtered after eviction: wraparound reuse broken")
	}
	// And an in-window retransmit still filters.
	if !d.dup(keyOf(0, dedupWindow)) {
		t.Fatal("in-window retransmit not filtered")
	}
}

// TestNextSeqSkipsZero pins the wraparound contract: seq 0 means "no
// recovery id" in every filter, so a wrapped counter must not mint it.
func TestNextSeqSkipsZero(t *testing.T) {
	m := &Manager{}
	m.seq.Store(math.MaxUint64) // next Add(1) wraps to 0
	if s := m.nextSeq(); s == 0 {
		t.Fatal("nextSeq minted 0 on wraparound")
	} else if s != 1 {
		t.Fatalf("nextSeq after wraparound = %d, want 1", s)
	}
	if s := m.nextSeq(); s != 2 {
		t.Fatalf("counter not continuous after skip: got %d, want 2", s)
	}
}

// TestDedupReliableModeNoKey: requests without recovery ids (reliable
// mode) carry no dedup identity and are never filtered.
func TestDedupReliableModeNoKey(t *testing.T) {
	if _, ok := dedupKeyOf(&request{op: "write"}); ok {
		t.Fatal("reliable-mode request has a dedup key")
	}
	if _, ok := dedupKeyOf(&request{op: "redist_ship"}); ok {
		t.Fatal("reliable-mode ship has a dedup key")
	}
}
