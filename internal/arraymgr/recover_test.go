package arraymgr

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/grid"
)

// The recovery plane's pins: buddy replication keeps a replicated array's
// contents bit-identical through a fail-stop kill (promotion + replay),
// checkpoint/restart recovers unreplicated arrays, the replication write
// overhead is exactly one mirror message per write-side owner, and the
// jittered backoff and dedup window behave as specified.

// replicatedKillSpec is killSpec (1d block over four processors) with one
// buddy copy per section.
func replicatedKillSpec() CreateSpec {
	spec := killSpec()
	spec.Replicas = 1
	return spec
}

// TestRecoverKillAndPromote pins the basic failover story: seed a
// replicated array, kill one owner, and require every read and write —
// including the dead owner's piece — to complete with the exact
// pre-kill contents via transparent promotion and replay.
func TestRecoverKillAndPromote(t *testing.T) {
	machine, m := newTestManager(t, 4)
	m.SetCallPolicy(&CallPolicy{Timeout: 5 * time.Millisecond, Retries: 3, Backoff: 100 * time.Microsecond})
	id := mustCreate(t, m, 0, replicatedKillSpec())
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if st := m.WriteBlock(0, id, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("seed WriteBlock: %v", st)
	}
	if err := machine.Router().KillProcessor(2); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	// The dead owner's piece must come back bit-identical from its buddy,
	// without an explicit RecoverArray call.
	got, st := m.ReadBlock(0, id, []int{0}, []int{24})
	if st != StatusOK {
		t.Fatalf("post-kill ReadBlock: %v", st)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("post-kill contents diverge at %d: %v vs %v", i, got[i], vals[i])
		}
	}
	rs := m.RecoveryStats()
	if rs.Promotions == 0 {
		t.Error("kill recovered with zero promotions")
	}
	if rs.Replays == 0 {
		t.Error("kill recovered with zero replayed calls")
	}
	if rs.Mirrors == 0 {
		t.Error("replicated writes recorded zero mirrors")
	}

	// The promoted layout keeps serving writes (including writes into the
	// promoted section) and reads them back.
	for i := range vals {
		vals[i] = float64(100 + i)
	}
	if st := m.WriteBlock(0, id, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("post-promotion WriteBlock: %v", st)
	}
	got, st = m.ReadBlock(3, id, []int{0}, []int{24})
	if st != StatusOK {
		t.Fatalf("post-promotion ReadBlock: %v", st)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("post-promotion contents diverge at %d: %v vs %v", i, got[i], vals[i])
		}
	}

	// Losing the promoted primary too (its buddy ring is exhausted at
	// k=1) must surface StatusDown, not hang or lie.
	if err := machine.Router().KillProcessor(3); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	if _, st := m.ReadBlock(0, id, []int{0}, []int{24}); st != StatusDown && st != StatusTimeout {
		t.Fatalf("read past an exhausted buddy ring: %v, want STATUS_DOWN or STATUS_TIMEOUT", st)
	}
}

// TestChaosOracleKillReplicated runs the full randomized all-paths mix —
// dense, strided, gather/scatter, per-element, redistribution — over a
// replicated array with the chaos fault plan active, kills an owner
// mid-run, and requires every operation (before and after the kill) to
// complete bit-identically to the sequential oracle.
func TestChaosOracleKillReplicated(t *testing.T) {
	const ops = 40
	const killAt = ops / 2
	const victim = 2
	c := oracleCases()[0] // 1d/block, P=4
	rng := rand.New(rand.NewSource(41))
	machine, m := newTestManager(t, c.p)
	machine.Router().SetFaultPlan(chaosFaultPlan(29))
	m.SetCallPolicy(chaosPolicy())
	spec := c.spec
	spec.Replicas = 1
	id := mustCreate(t, m, 0, spec)
	sh := shadowSpec(spec)
	sh.Replicas = 1
	shadow := mustCreate(t, m, 0, sh)
	ref := newOracle(spec.Dims, spec.Type)
	dims := spec.Dims

	meta, st := m.Meta(0, id)
	if st != StatusOK {
		t.Fatalf("Meta: %v", st)
	}
	origins := append([]int{0}, meta.SectionProcs()...)
	killed := false
	origin := func() int {
		for {
			p := origins[rng.Intn(len(origins))]
			if !killed || p != victim {
				return p
			}
		}
	}

	nextVal := 1.0
	value := func() float64 {
		nextVal++
		return nextVal
	}

	for op := 0; op < ops; op++ {
		if op == killAt {
			if err := machine.Router().KillProcessor(victim); err != nil {
				t.Fatalf("KillProcessor: %v", err)
			}
			killed = true
		}
		switch rng.Intn(8) {
		case 0:
			lo, hi, _ := randomRect(rng, dims)
			vals := make([]float64, grid.RectSize(lo, hi))
			for i := range vals {
				vals[i] = value()
			}
			if st := m.WriteBlock(origin(), id, lo, hi, vals); st != StatusOK {
				t.Fatalf("op %d: WriteBlock: %v", op, st)
			}
			_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				ref.set(idx, vals[k])
				return nil
			})
		case 1:
			lo, hi, _ := randomRect(rng, dims)
			got, st := m.ReadBlock(origin(), id, lo, hi)
			if st != StatusOK {
				t.Fatalf("op %d: ReadBlock: %v", op, st)
			}
			_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
				if got[k] != ref.get(idx) {
					t.Fatalf("op %d: ReadBlock[%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
				}
				return nil
			})
		case 2:
			lo, hi, step := randomRect(rng, dims)
			vals := make([]float64, grid.StridedRectSize(lo, hi, step))
			for i := range vals {
				vals[i] = value()
			}
			if st := m.WriteBlockStrided(origin(), id, lo, hi, step, vals); st != StatusOK {
				t.Fatalf("op %d: WriteBlockStrided: %v", op, st)
			}
			_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
				ref.set(idx, vals[k])
				return nil
			})
		case 3:
			lo, hi, step := randomRect(rng, dims)
			got, st := m.ReadBlockStrided(origin(), id, lo, hi, step)
			if st != StatusOK {
				t.Fatalf("op %d: ReadBlockStrided: %v", op, st)
			}
			_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
				if got[k] != ref.get(idx) {
					t.Fatalf("op %d: strided read [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
				}
				return nil
			})
		case 4:
			indices := randomIndices(rng, dims, 1+rng.Intn(20))
			vals := make([]float64, len(indices))
			for i := range vals {
				vals[i] = value()
			}
			if st := m.ScatterElements(origin(), id, indices, vals); st != StatusOK {
				t.Fatalf("op %d: ScatterElements: %v", op, st)
			}
			for i, idx := range indices {
				ref.set(idx, vals[i])
			}
		case 5:
			indices := randomIndices(rng, dims, 1+rng.Intn(20))
			got, st := m.GatherElements(origin(), id, indices)
			if st != StatusOK {
				t.Fatalf("op %d: GatherElements: %v", op, st)
			}
			for i, idx := range indices {
				if got[i] != ref.get(idx) {
					t.Fatalf("op %d: gather[%d] (%v) = %v, oracle %v", op, i, idx, got[i], ref.get(idx))
				}
			}
		case 6:
			idx := randomIndices(rng, dims, 1)[0]
			if rng.Intn(2) == 0 {
				v := value()
				if st := m.WriteElement(origin(), id, idx, v); st != StatusOK {
					t.Fatalf("op %d: WriteElement: %v", op, st)
				}
				ref.set(idx, v)
			} else {
				got, st := m.ReadElement(origin(), id, idx)
				if st != StatusOK {
					t.Fatalf("op %d: ReadElement: %v", op, st)
				}
				if got != ref.get(idx) {
					t.Fatalf("op %d: ReadElement(%v) = %v, oracle %v", op, idx, got, ref.get(idx))
				}
			}
		case 7:
			lo, hi, step := randomRect(rng, dims)
			strided := false
			for _, s := range step {
				if s != 1 {
					strided = true
				}
			}
			if strided {
				if st := m.RedistributeStrided(origin(), shadow, id, lo, hi, step); st != StatusOK {
					t.Fatalf("op %d: RedistributeStrided: %v", op, st)
				}
				got, st := m.ReadBlockStrided(origin(), shadow, lo, hi, step)
				if st != StatusOK {
					t.Fatalf("op %d: shadow strided readback: %v", op, st)
				}
				_ = grid.ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
					if got[k] != ref.get(idx) {
						t.Fatalf("op %d: redistribute [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
					}
					return nil
				})
			} else {
				if st := m.Redistribute(origin(), shadow, id, lo, hi); st != StatusOK {
					t.Fatalf("op %d: Redistribute: %v", op, st)
				}
				got, st := m.ReadBlock(origin(), shadow, lo, hi)
				if st != StatusOK {
					t.Fatalf("op %d: shadow readback: %v", op, st)
				}
				_ = grid.ForEachRect(lo, hi, func(idx []int, k int) error {
					if got[k] != ref.get(idx) {
						t.Fatalf("op %d: redistribute [%v] = %v, oracle %v", op, idx, got[k], ref.get(idx))
					}
					return nil
				})
			}
		}
	}

	// Final full dense readback against the oracle, from a survivor.
	lo := make([]int, len(dims))
	snap, st := m.ReadBlock(0, id, lo, dims)
	if st != StatusOK {
		t.Fatalf("final ReadBlock: %v", st)
	}
	_ = grid.ForEachRect(lo, dims, func(idx []int, k int) error {
		if snap[k] != ref.get(idx) {
			t.Fatalf("final state diverges at %v: %v vs oracle %v", idx, snap[k], ref.get(idx))
		}
		return nil
	})
	rs := m.RecoveryStats()
	if rs.Promotions == 0 {
		t.Error("mid-run kill produced zero promotions")
	}
	if rs.Mirrors == 0 {
		t.Error("replicated chaos run recorded zero mirrors")
	}
}

// TestCheckpointRestore pins the k=0 fallback: an unreplicated array's
// checkpoint image restores its exact contents on the surviving
// processors after its owner set is damaged.
func TestCheckpointRestore(t *testing.T) {
	machine, m := newTestManager(t, 4)
	m.SetCallPolicy(&CallPolicy{Timeout: 5 * time.Millisecond, Retries: 3, Backoff: 100 * time.Microsecond})
	id := mustCreate(t, m, 0, killSpec())
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	if st := m.WriteBlock(0, id, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("seed WriteBlock: %v", st)
	}
	img, st := m.Checkpoint(0, id)
	if st != StatusOK {
		t.Fatalf("Checkpoint: %v", st)
	}
	if got := m.RecoveryStats().CheckpointBytes; got != 24*8 {
		t.Errorf("CheckpointBytes = %d, want %d", got, 24*8)
	}

	if err := machine.Router().KillProcessor(1); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	// The unreplicated array is unrecoverable in place...
	if _, st := m.ReadBlock(0, id, []int{0}, []int{24}); st != StatusDown && st != StatusTimeout {
		t.Fatalf("unreplicated read past a kill: %v, want STATUS_DOWN or STATUS_TIMEOUT", st)
	}
	// ...but the image restores it on the three survivors.
	rid, st := m.Restore(0, img, nil)
	if st != StatusOK {
		t.Fatalf("Restore: %v", st)
	}
	got, st := m.ReadBlock(0, rid, []int{0}, []int{24})
	if st != StatusOK {
		t.Fatalf("restored ReadBlock: %v", st)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("restored contents diverge at %d: %v vs %v", i, got[i], vals[i])
		}
	}
	// The restored array's sections all live on survivors.
	rmeta, st := m.Meta(0, rid)
	if st != StatusOK {
		t.Fatalf("restored Meta: %v", st)
	}
	for _, p := range rmeta.SectionProcs() {
		if p == 1 {
			t.Fatalf("restored array placed a section on the dead processor: %v", rmeta.SectionProcs())
		}
	}
}

// TestReplicatedWriteBudget pins the replication overhead on the healthy
// path: a whole-array write over P owners costs exactly one mirror
// message per write-side owner per replica — and nothing else changes.
func TestReplicatedWriteBudget(t *testing.T) {
	const p = 4
	vals := make([]float64, 24)

	machine, m := newTestManager(t, p)
	plain := mustCreate(t, m, 0, killSpec())
	before := machine.Router().Sent()
	if st := m.WriteBlock(0, plain, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("plain WriteBlock: %v", st)
	}
	plainMsgs := machine.Router().Sent() - before

	machine2, m2 := newTestManager(t, p)
	repl := mustCreate(t, m2, 0, replicatedKillSpec())
	before = machine2.Router().Sent()
	if st := m2.WriteBlock(0, repl, []int{0}, []int{24}, vals); st != StatusOK {
		t.Fatalf("replicated WriteBlock: %v", st)
	}
	replMsgs := machine2.Router().Sent() - before

	// Plain: 1 coordinator request + P-1 remote owner requests. k=1
	// replication adds exactly one mirror per each of the P owners.
	if want := uint64(1 + p - 1); plainMsgs != want {
		t.Errorf("plain whole-array write sent %d messages, want %d", plainMsgs, want)
	}
	if want := plainMsgs + p; replMsgs != want {
		t.Errorf("replicated whole-array write sent %d messages, want %d (plain %d + %d mirrors)",
			replMsgs, want, plainMsgs, p)
	}
	if got := m2.RecoveryStats().Mirrors; got != p {
		t.Errorf("Mirrors = %d, want %d", got, p)
	}

	// The healthy replicated READ path is untouched: same budget as plain.
	before = machine.Router().Sent()
	if _, st := m.ReadBlock(0, plain, []int{0}, []int{24}); st != StatusOK {
		t.Fatalf("plain ReadBlock: %v", st)
	}
	plainRead := machine.Router().Sent() - before
	before = machine2.Router().Sent()
	if _, st := m2.ReadBlock(0, repl, []int{0}, []int{24}); st != StatusOK {
		t.Fatalf("replicated ReadBlock: %v", st)
	}
	if replRead := machine2.Router().Sent() - before; replRead != plainRead {
		t.Errorf("replicated read sent %d messages, plain read %d — healthy read path changed", replRead, plainRead)
	}
}

// TestBackoffJitterDeterministic pins the seeded ±20% retry jitter: the
// same seed yields the same sleep sequence, every draw stays within
// [0.8d, 1.2d), and the draws are not all identical (jitter actually
// jitters).
func TestBackoffJitterDeterministic(t *testing.T) {
	const d = time.Millisecond
	draw := func(seed int64) []time.Duration {
		_, m := newTestManager(t, 2)
		m.SetCallPolicy(&CallPolicy{Timeout: time.Millisecond, Retries: 1, Seed: seed})
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = m.jitterBackoff(d)
		}
		return out
	}
	a, b := draw(42), draw(42)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 8*d/10 || a[i] >= 12*d/10 {
			t.Fatalf("draw %d = %v outside [0.8d, 1.2d)", i, a[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("20 jitter draws were all identical")
	}
	c := draw(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
}

// TestDeduperWindowOverflow pins the dedup window's behavior past its
// 4096-entry capacity: recent ids keep filtering duplicates, the oldest
// ids are forgotten in FIFO order (a retransmit that stale re-executes,
// by design), and the tracked state never exceeds the window.
func TestDeduperWindowOverflow(t *testing.T) {
	var d deduper
	key := func(i int) dedupKey { return dedupKey{origin: 0, a: uint64(i + 1), b: 0} }
	const extra = 100
	for i := 0; i < dedupWindow+extra; i++ {
		if d.dup(key(i)) {
			t.Fatalf("fresh key %d reported as duplicate", i)
		}
	}
	if len(d.ring) != dedupWindow || len(d.seen) != dedupWindow {
		t.Fatalf("window state grew past capacity: ring %d, seen %d", len(d.ring), len(d.seen))
	}
	// The newest window of keys is still filtered...
	for i := extra; i < dedupWindow+extra; i++ {
		if !d.dup(key(i)) {
			t.Fatalf("in-window key %d not filtered", i)
		}
	}
	// ...which, being lookups-turned-reinserts of present keys, must not
	// have evicted anything; the oldest pre-overflow keys are forgotten.
	if d.dup(key(0)) {
		t.Fatal("evicted key 0 still reported as duplicate")
	}
}
