// Package arraymgr implements the array manager of §3.2.2 and §5.1: the
// runtime support for distributed arrays.
//
// The array manager consists of one array-manager server per virtual
// processor. All requests by task-parallel programs to create or manipulate
// distributed arrays are handled by the *local* array-manager server, which
// communicates with the array-manager servers on other processors as needed
// to fulfil the request (e.g. array creation touches every processor over
// which the array is distributed; reading an element touches the processor
// owning it). Requests travel over the machine's message router using
// task-parallel-class tags, keeping array-manager traffic disjoint from
// data-parallel program traffic per §3.4.1.
//
// Each server keeps a list of array entries. An entry is added on every
// processor over which an array is distributed as well as on the creating
// processor; freeing an array invalidates the entries so that subsequent
// references fail with STATUS_NOT_FOUND (§5.1.3).
package arraymgr

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/vp"
)

// Status is the result code of an array-manager operation (§4.1.2).
type Status int

const (
	// StatusOK — no errors.
	StatusOK Status = 0
	// StatusInvalid — invalid parameter.
	StatusInvalid Status = 1
	// StatusNotFound — array not found.
	StatusNotFound Status = 2
	// StatusError — system error.
	StatusError Status = 3
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "STATUS_OK"
	case StatusInvalid:
		return "STATUS_INVALID"
	case StatusNotFound:
		return "STATUS_NOT_FOUND"
	case StatusError:
		return "STATUS_ERROR"
	case StatusTimeout:
		return "STATUS_TIMEOUT"
	case StatusDown:
		return "STATUS_DOWN"
	case StatusClosed:
		return "STATUS_CLOSED"
	default:
		return fmt.Sprintf("STATUS(%d)", int(s))
	}
}

// BorderSpec is the Border_info parameter of create_array/verify_array
// (§4.2.1): no borders, explicit sizes, or sizes supplied at runtime by the
// data-parallel program that will receive the array (the foreign_borders
// option supporting Fortran D-style overlap areas).
type BorderSpec interface{ isBorderSpec() }

// NoBorderSpec is Border_info = 0: local sections have no borders.
type NoBorderSpec struct{}

func (NoBorderSpec) isBorderSpec() {}

// ExplicitBorders directly specifies border sizes: length 2*ndims, elements
// 2i and 2i+1 give the border on either side of dimension i.
type ExplicitBorders []int

func (ExplicitBorders) isBorderSpec() {}

// ForeignBorders defers border sizes to the data-parallel program Program,
// which will receive the array as parameter ParmNum. The program's
// registered border callback (the paper's Program_ routine) is consulted at
// creation/verification time.
type ForeignBorders struct {
	Program string
	ParmNum int
}

func (ForeignBorders) isBorderSpec() {}

// BorderResolver resolves a ForeignBorders spec: given the program name,
// parameter number and dimensionality, it returns the 2*ndims border
// sizes. The distributed-call registry provides one.
type BorderResolver func(program string, parmNum, ndims int) ([]int, error)

// CreateSpec collects the parameters of create_array (§4.2.1), extended
// with the replication option of the recovery plane: Replicas = k keeps k
// buddy copies of every local section (on the owners of the k grid slots
// following it, darray.Meta.BuddyOwner), so the array survives up to k
// fail-stop kills via promotion instead of checkpoint/restart.
type CreateSpec struct {
	Type     darray.ElemType
	Dims     []int
	Procs    []int
	Distrib  []grid.Decomp
	Borders  BorderSpec
	Indexing grid.Indexing
	Replicas int
}

// entry is one array's record at one server. Metadata is cloned per
// processor — distinct virtual address spaces hold distinct copies.
type entry struct {
	meta    *darray.Meta
	section *darray.Section // nil when this processor holds no local section
	slot    int             // grid slot of section (-1 when none)
	// replicas holds this processor's buddy copies, keyed by the grid
	// slot each one mirrors. After a promotion the promoted slot's data
	// stays here — sectionFor routes by slot, so nothing moves.
	replicas map[int]*darray.Section
	freed    bool
}

// sectionFor returns the storage backing the given grid slot at this
// entry: the primary section, a buddy copy, or nil when this processor
// holds nothing for the slot. Non-replicated entries ignore slot — every
// request is for the one section this processor serves.
func (e *entry) sectionFor(slot int) *darray.Section {
	if slot == e.slot || e.replicas == nil {
		return e.section
	}
	return e.replicas[slot]
}

// server is the per-processor array-manager state.
type server struct {
	mu      sync.Mutex
	entries map[darray.ID]*entry
	nextSeq int

	// bufMu guards the reply-buffer pool. It is separate from (and may be
	// taken under) mu, so owner-side service routines can draw a buffer
	// while holding the entry lock and coordinators can recycle one without
	// it.
	bufMu sync.Mutex
	bufs  [][]float64
}

// maxPooledBufs bounds each server's reply-buffer pool; buffers returned
// beyond the bound are dropped to the garbage collector.
const maxPooledBufs = 64

// getBuf draws a reply buffer of exactly n elements from the server's
// pool, allocating only when no pooled buffer is large enough — at a
// steady state of same-shaped requests, zero allocations per call.
func (s *server) getBuf(n int) []float64 {
	s.bufMu.Lock()
	for i := len(s.bufs) - 1; i >= 0; i-- {
		if cap(s.bufs[i]) >= n {
			b := s.bufs[i]
			s.bufs = append(s.bufs[:i], s.bufs[i+1:]...)
			s.bufMu.Unlock()
			return b[:n]
		}
	}
	s.bufMu.Unlock()
	return make([]float64, n)
}

// putBuf returns a reply buffer to the pool. Callers must not touch the
// buffer afterwards; the owning server will hand it to a later request.
func (s *server) putBuf(b []float64) {
	if b == nil {
		return
	}
	s.bufMu.Lock()
	if len(s.bufs) < maxPooledBufs {
		s.bufs = append(s.bufs, b)
	}
	s.bufMu.Unlock()
}

// Manager is the whole array manager: one server per virtual processor plus
// the request-routing fabric.
type Manager struct {
	machine  *vp.Machine
	servers  []*server
	resolver BorderResolver

	// Recovery state (resilient.go): the installed retry policy, the
	// request-id counter, and the recovery counters. All zero-cost when
	// no policy is installed.
	policy      atomic.Pointer[CallPolicy]
	seq         atomic.Uint64
	retransmits atomic.Uint64
	timeouts    atomic.Uint64

	// Failover state (recover.go): the optional membership view consulted
	// before sending, and the recovery-plane counters.
	membership      atomic.Pointer[msg.Membership]
	promotions      atomic.Uint64
	replays         atomic.Uint64
	mirrors         atomic.Uint64
	mirrorFailures  atomic.Uint64
	checkpointBytes atomic.Uint64

	// Seeded backoff jitter (resilient.go): guarded by jmu, installed by
	// SetCallPolicy.
	jmu  sync.Mutex
	jrng *rand.Rand

	// Wire completion tables (wire.go): replies and acks from remote
	// owners carry table ids instead of channels. Maps are allocated
	// lazily, so unpartitioned managers pay nothing.
	pendMu    sync.Mutex
	pending   map[uint64]chan response
	nextReply atomic.Uint64
	ackMu     sync.Mutex
	acks      map[uint64]chan response
	nextAck   atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// kindAMRequest is the reserved task-class message kind carrying
// array-manager requests.
const kindAMRequest = -100

// request is one array-manager request in flight. Reply delivery uses a
// definitional-style one-shot channel.
type request struct {
	op    string
	id    darray.ID
	spec  *CreateSpec
	meta  *darray.Meta // for create_local / update_meta
	gidx  []int        // copy_local: new borders (via fanout)
	gidxs [][]int      // read/write vector: global index tuples (coordinator)
	offs  []int        // read/write vector: storage offsets (owner)
	lo    []int        // read/write block: rectangle bounds (global at the
	hi    []int        // coordinator, interior-local at the owner)
	step  []int        // strided block ops: per-dimension stride (>= 1)
	vals  []float64    // write data; read: optional caller buffer
	slot  int          // owner ops: the grid slot the payload addresses,
	// set by every coordinator split site so a processor serving several
	// slots after a promotion routes to the right storage (sectionFor)
	which string // find_info selector; tree fan-out inner op
	procs []int  // tree fan-out: the target processors, in tree order
	node  int    // tree fan-out: this request's node index within procs
	// verify parameters
	ndims    int
	borders  BorderSpec
	indexing grid.Indexing
	// redistribution parameters: the coordinator request names the
	// destination array in id and the source in id2, with lo/hi the
	// destination rectangle and lo2 the source origin; redist_src
	// requests carry the per-pair ships and the shared ack channel
	// (acks ride in-process channels like replies, so they cost no
	// messages — see redist.go).
	id2   darray.ID
	lo2   []int
	ships []redistShip
	ack   chan response

	// Recovery identity (resilient.go): seq is the per-request dedup id
	// (0 in reliable mode), call/pair identify one redistribution ship,
	// and src/dst let await retransmit the same request object. Handlers
	// treat requests as read-only, so a retransmitted delivery may alias
	// the original safely.
	seq  uint64
	call uint64
	pair int
	src  int
	dst  int

	// Wire identity (wire.go): origin scopes the dedup window to the
	// issuing processor; replyID / (ackProc, ackID) stand in for the
	// reply and ack channels when a request crosses process boundaries;
	// wire caches the envelope so retransmits re-send identical bytes.
	origin  int
	replyID uint64
	ackProc int
	ackID   uint64
	wire    *wireRequest

	reply chan response
}

type response struct {
	status  Status
	vals    []float64
	section *darray.Section
	info    any
	pair    int // redistribution acks: which ship this acknowledges
}

// New starts an array manager on every processor of the machine (the
// equivalent of the paper's `load("am")` on all processors, §B.3). On a
// partitioned router only the processors hosted by this OS process get
// serve loops — the rest are served by their own parts, reached over
// the wire — but the server table still covers all of them, so
// coordinator code indexes it uniformly.
func New(machine *vp.Machine) *Manager {
	m := &Manager{machine: machine, servers: make([]*server, machine.P())}
	router := machine.Router()
	for p := 0; p < machine.P(); p++ {
		m.servers[p] = &server{entries: make(map[darray.ID]*entry)}
		if !router.Local(p) {
			continue
		}
		p := p
		go m.serve(p)
	}
	return m
}

// SetBorderResolver installs the resolver used for ForeignBorders specs.
func (m *Manager) SetBorderResolver(r BorderResolver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolver = r
}

func (m *Manager) borderResolver() BorderResolver {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resolver
}

// serve is one array-manager server loop: it receives requests addressed to
// this processor and services each in its own goroutine (the PCN server
// spawns a process per request, so concurrent requests never deadlock the
// server).
func (m *Manager) serve(proc int) {
	router := m.machine.Router()
	var dedup deduper
	for {
		message, err := router.Recv(proc, func(mm msg.Message) bool {
			if mm.Tag.Class != msg.ClassTask {
				return false
			}
			switch mm.Tag.Kind {
			case kindAMRequest, kindAMShip, kindAMReply, kindAMAck:
				return true
			}
			return false
		})
		if err != nil {
			return // router closed (or this processor killed)
		}
		// Wire completions: replies and acks addressed to a coordinator
		// on this processor are routed straight into their tables.
		switch message.Tag.Kind {
		case kindAMReply:
			if w, ok := message.Data.(*wireResponse); ok {
				m.deliverReply(w)
			}
			continue
		case kindAMAck:
			if w, ok := message.Data.(*wireAck); ok {
				m.deliverAck(w)
			}
			continue
		}
		req, ok := message.Data.(*request)
		if !ok {
			// A request that crossed the wire arrives as its envelope;
			// rebuild it before the dedup filter so retransmitted wire
			// requests are filtered exactly like in-process ones.
			w, okw := message.Data.(*wireRequest)
			if !okw {
				continue
			}
			req = w.toRequest()
		}
		// Retransmits and router-injected duplicates of an already
		// dispatched request are dropped here, before any handler runs —
		// at-most-once execution is what keeps the data-plane ops
		// idempotent. The filter is owned by this goroutine (no lock)
		// and engages only for requests carrying a recovery id.
		if k, ok := dedupKeyOf(req); ok && dedup.dup(k) {
			continue
		}
		if message.Tag.Kind == kindAMShip {
			// One-way redistribution traffic: no reply channel, so it
			// must not flow through handle's unconditional reply send.
			go m.handleShip(proc, req)
			continue
		}
		go m.handle(proc, req)
	}
}

// sendAsync routes a request to the server on processor dst and returns
// immediately; the server's response is collected with await. Router
// sends never block, so a coordinator can scatter requests to any number
// of owners before gathering a single reply — the async request/reply
// facility behind the concurrent block-transfer coordinators and the
// control fan-out tree. Under a call policy the request is stamped with
// a fresh dedup id and a known-dead destination is refused up front
// (saving a full timeout per tree level when an owner is down).
func (m *Manager) sendAsync(src, dst int, req *request) *request {
	req.reply = make(chan response, 1)
	req.src, req.dst = src, dst
	req.origin = src
	router := m.machine.Router()
	if m.policy.Load() != nil {
		req.seq = m.nextSeq()
		if router.Down(dst) {
			req.reply <- response{status: StatusDown}
			return req
		}
		// A membership view fails known-dead destinations proactively,
		// without waiting for a per-call timeout against a peer the
		// heartbeat already declared dead.
		if mem := m.membership.Load(); mem != nil && mem.State(dst) == msg.StateDead {
			req.reply <- response{status: StatusDown}
			return req
		}
	}
	tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMRequest}
	if !router.Local(dst) {
		// Remote owner: enter the reply in the pending table and ship
		// the envelope; await unregisters when it has the answer.
		m.registerReply(req)
		if err := router.Send(src, dst, tag, req.wire); err != nil {
			req.reply <- response{status: sendStatus(err)}
		}
		return req
	}
	if err := router.Send(src, dst, tag, req); err != nil {
		req.reply <- response{status: sendStatus(err)}
	}
	return req
}

// send routes a request to the server on processor dst and waits for its
// response.
func (m *Manager) send(src, dst int, req *request) response {
	return m.await(m.sendAsync(src, dst, req))
}

// handle dispatches one request at the server on proc. With tracing at
// Ops level the manager behaves like the paper's am_debug build, emitting
// one trace message per operation (§B.3).
func (m *Manager) handle(proc int, req *request) {
	if trace.Enabled(trace.Ops) {
		trace.Logf(trace.Ops, proc, "am: %s %v", req.op, req.id)
	}
	var resp response
	switch req.op {
	case "create_array":
		resp = m.doCreate(proc, req)
	case "create_local":
		resp = m.doCreateLocal(proc, req)
	case "free_array":
		resp = m.doFree(proc, req)
	case "free_local":
		resp = m.doFreeLocal(proc, req)
	case "read_vector":
		resp = m.doReadVector(proc, req)
	case "read_vector_local":
		resp = m.doReadVectorLocal(proc, req)
	case "write_vector":
		resp = m.doWriteVector(proc, req)
	case "write_vector_local":
		resp = m.doWriteVectorLocal(proc, req)
	case "read_block":
		resp = m.doReadBlock(proc, req)
	case "read_block_serial":
		resp = m.doReadBlockSerial(proc, req)
	case "read_block_local":
		resp = m.doReadBlockLocal(proc, req)
	case "write_block":
		resp = m.doWriteBlock(proc, req)
	case "write_block_local":
		resp = m.doWriteBlockLocal(proc, req)
	case "read_block_strided":
		resp = m.doReadBlockStrided(proc, req)
	case "read_block_strided_local":
		resp = m.doReadBlockStridedLocal(proc, req)
	case "write_block_strided":
		resp = m.doWriteBlockStrided(proc, req)
	case "write_block_strided_local":
		resp = m.doWriteBlockStridedLocal(proc, req)
	case "mirror_write":
		resp = m.doMirrorWrite(proc, req)
	case "redistribute":
		resp = m.doRedistribute(proc, req)
	case "find_local":
		resp = m.doFindLocal(proc, req)
	case "find_info":
		resp = m.doFindInfo(proc, req)
	case "verify_array":
		resp = m.doVerify(proc, req)
	case "copy_local":
		resp = m.doCopyLocal(proc, req)
	case "tree":
		resp = m.doTree(proc, req)
	case "update_meta":
		resp = m.doUpdateMeta(proc, req)
	default:
		resp = response{status: StatusError}
	}
	m.respond(proc, req, resp)
}

// --- coordinator operations ---

// bordersAllowed reports whether the resolved borders are permitted for
// the layout. Borders exist to back halo exchanges between grid-adjacent
// sections, which assume every cell holds a full-size, index-adjacent
// interior; so nonzero borders require an exactly even block
// decomposition — no cyclic dimensions (cell adjacency is not index
// adjacency there; spmd.HaloExchange carries the matching guard) and no
// uneven trailing blocks (a short or empty trailing cell would exchange
// unused storage as if it were data). Bordered fields keep exactly the
// shapes the paper's prototype accepted; borderless arrays get the full
// distribution layer.
func bordersAllowed(borders, dims, gridDims []int, dists []grid.Dist) bool {
	nonzero := false
	for _, b := range borders {
		if b != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return true
	}
	if !grid.Regular(gridDims, dists) {
		return false
	}
	for i := range dims {
		if dists[i].Storage(dims[i], gridDims[i])*gridDims[i] != dims[i] {
			return false
		}
	}
	return true
}

// resolveBorders turns a BorderSpec into concrete border sizes.
func (m *Manager) resolveBorders(spec BorderSpec, ndims int) ([]int, Status) {
	switch b := spec.(type) {
	case nil, NoBorderSpec:
		return darray.NoBorders(ndims), StatusOK
	case ExplicitBorders:
		if err := darray.CheckBorders([]int(b), ndims); err != nil {
			return nil, StatusInvalid
		}
		return append([]int(nil), b...), StatusOK
	case ForeignBorders:
		r := m.borderResolver()
		if r == nil {
			return nil, StatusInvalid
		}
		borders, err := r(b.Program, b.ParmNum, ndims)
		if err != nil {
			return nil, StatusInvalid
		}
		if err := darray.CheckBorders(borders, ndims); err != nil {
			return nil, StatusInvalid
		}
		return borders, StatusOK
	default:
		return nil, StatusInvalid
	}
}

func (m *Manager) doCreate(proc int, req *request) response {
	spec := req.spec
	if spec == nil || len(spec.Dims) == 0 || len(spec.Procs) == 0 {
		return response{status: StatusInvalid}
	}
	for _, d := range spec.Dims {
		if d < 1 {
			return response{status: StatusInvalid}
		}
	}
	seen := make(map[int]bool, len(spec.Procs))
	for _, p := range spec.Procs {
		if m.machine.CheckProc(p) != nil || seen[p] {
			return response{status: StatusInvalid}
		}
		seen[p] = true
	}
	if len(spec.Distrib) != len(spec.Dims) {
		return response{status: StatusInvalid}
	}
	gridDims, err := grid.GridDims(len(spec.Procs), spec.Distrib)
	if err != nil {
		return response{status: StatusInvalid}
	}
	dists, err := grid.ResolveDists(spec.Dims, gridDims, spec.Distrib)
	if err != nil {
		return response{status: StatusInvalid}
	}
	// Sections are sized uniformly at the fullest cell's extent; the
	// divide-evenly restriction of the paper's prototype (§3.2.1.1) is
	// gone — trailing blocks may be short or empty.
	localDims, err := grid.StorageDims(spec.Dims, gridDims, dists)
	if err != nil {
		return response{status: StatusInvalid}
	}
	borders, st := m.resolveBorders(spec.Borders, len(spec.Dims))
	if st != StatusOK {
		return response{status: st}
	}
	if !bordersAllowed(borders, spec.Dims, gridDims, dists) {
		return response{status: StatusInvalid}
	}
	plus, err := darray.DimsPlus(localDims, borders)
	if err != nil {
		return response{status: StatusInvalid}
	}
	// Replication needs k distinct buddy slots following each slot, so k
	// must leave at least one non-buddy: 0 <= k < grid size.
	if spec.Replicas < 0 || spec.Replicas >= grid.Size(gridDims) {
		return response{status: StatusInvalid}
	}

	srv := m.servers[proc]
	srv.mu.Lock()
	id := darray.ID{Proc: proc, Seq: srv.nextSeq}
	srv.nextSeq++
	srv.mu.Unlock()

	meta := &darray.Meta{
		ID:            id,
		Type:          spec.Type,
		Dims:          append([]int(nil), spec.Dims...),
		Procs:         append([]int(nil), spec.Procs...),
		GridDims:      gridDims,
		Dists:         dists,
		LocalDims:     localDims,
		Borders:       borders,
		LocalDimsPlus: plus,
		Indexing:      spec.Indexing,
		GridIndexing:  spec.Indexing, // the paper ties grid indexing to array indexing
		Replicas:      spec.Replicas,
	}

	// An entry is created on every processor holding a local section, and
	// on the creating processor (§5.1.3). The fan-out runs through the
	// combining tree: one message per target, O(log P) round-trip depth.
	targets := map[int]bool{proc: true}
	for _, p := range meta.SectionProcs() {
		targets[p] = true
	}
	if st := m.fanout(proc, "create_local", &request{id: id, meta: meta}, targets); st != StatusOK {
		return response{status: st}
	}
	return response{status: StatusOK, info: id}
}

// fanout delivers one control request (create_local / free_local /
// copy_local, named by op) to every processor in targets through a
// combining tree rooted at proc — the same shape as the dcall wrapper
// merge, run in reverse. Each node services its own copy and forwards to
// at most two children concurrently, so P targets are reached with P-1
// messages in O(log P) sequential round trips instead of P serial ones.
// req supplies the operation's payload (id, meta, borders); statuses
// combine with max on the way back up.
func (m *Manager) fanout(proc int, op string, req *request, targets map[int]bool) Status {
	list := make([]int, 0, len(targets))
	// Root the tree at this processor when it is itself a target, so its
	// own copy is serviced by a direct call rather than a message.
	if targets[proc] {
		list = append(list, proc)
	}
	for p := range targets {
		if p != proc {
			list = append(list, p)
		}
	}
	rest := list
	if targets[proc] {
		rest = list[1:]
	}
	sort.Ints(rest)
	treq := &request{op: "tree", which: op, id: req.id, meta: req.meta, gidx: req.gidx, procs: list, node: 0}
	if list[0] == proc {
		return m.doTree(proc, treq).status
	}
	return m.send(proc, list[0], treq).status
}

// doTree services one node of a control fan-out tree: it forwards the
// request to its (up to two) children so the subtrees proceed
// concurrently, applies the inner operation locally, then merges the
// children's statuses with its own.
func (m *Manager) doTree(proc int, req *request) response {
	// The tree is transport; the inner operation is what am_debug-style
	// tracing reports, one line per processor it runs on.
	if trace.Enabled(trace.Ops) {
		trace.Logf(trace.Ops, proc, "am: %s %v", req.which, req.id)
	}
	var left, right *request
	if c := 2*req.node + 1; c < len(req.procs) {
		left = m.sendAsync(proc, req.procs[c],
			&request{op: "tree", which: req.which, id: req.id, meta: req.meta, gidx: req.gidx, procs: req.procs, node: c})
	}
	if c := 2*req.node + 2; c < len(req.procs) {
		right = m.sendAsync(proc, req.procs[c],
			&request{op: "tree", which: req.which, id: req.id, meta: req.meta, gidx: req.gidx, procs: req.procs, node: c})
	}
	local := &request{id: req.id, meta: req.meta, gidx: req.gidx}
	var r response
	switch req.which {
	case "create_local":
		r = m.doCreateLocal(proc, local)
	case "free_local":
		r = m.doFreeLocal(proc, local)
	case "copy_local":
		r = m.doCopyLocal(proc, local)
	default:
		r = response{status: StatusError}
	}
	st := r.status
	if req.which == "free_local" && st == StatusNotFound {
		st = StatusOK // freeing is idempotent per target (§5.1.3)
	}
	for _, c := range []*request{left, right} {
		if c == nil {
			continue
		}
		if cr := m.await(c); cr.status > st {
			st = cr.status
		}
	}
	return response{status: st}
}

func (m *Manager) doCreateLocal(proc int, req *request) response {
	srv := m.servers[proc]
	meta := req.meta.Clone() // each address space keeps its own copy
	var section *darray.Section
	slot := -1
	if s, holds := meta.HoldsSection(proc); holds {
		slot = s
		section = darray.NewSection(meta.Type, meta.LocalStorageSize())
	}
	// With Replicas = k, the owner of slot i also keeps a buddy copy of
	// each of the k slots preceding it (it is those slots' BuddyOwner).
	// Sections are sized uniformly, so every copy has the same extent.
	var replicas map[int]*darray.Section
	if meta.Replicas > 0 && slot >= 0 {
		g := meta.GridSize()
		replicas = make(map[int]*darray.Section, meta.Replicas)
		for j := 1; j <= meta.Replicas; j++ {
			rs := ((slot-j)%g + g) % g
			replicas[rs] = darray.NewSection(meta.Type, meta.LocalStorageSize())
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if _, dup := srv.entries[req.id]; dup {
		return response{status: StatusError}
	}
	srv.entries[req.id] = &entry{meta: meta, section: section, slot: slot, replicas: replicas}
	return response{status: StatusOK}
}

// lookup returns the live entry for id at proc, or a failure status.
func (m *Manager) lookup(proc int, id darray.ID) (*entry, Status) {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[id]
	if !ok || e.freed {
		return nil, StatusNotFound
	}
	return e, StatusOK
}

func (m *Manager) doFree(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	targets := map[int]bool{proc: true, req.id.Proc: true}
	for _, p := range e.meta.SectionProcs() {
		targets[p] = true
	}
	// Tree fan-out; a target that already lost its entry reports
	// STATUS_NOT_FOUND, normalized to OK at the node (freeing is
	// idempotent).
	return response{status: m.fanout(proc, "free_local", &request{id: req.id}, targets)}
}

func (m *Manager) doFreeLocal(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	e.freed = true
	e.section = nil // release the storage (the paper's explicit free)
	e.replicas = nil
	return response{status: StatusOK}
}

// doReadVector is the indexed-gather coordinator: it splits the request's
// global index tuples by owning processor (darray.Meta.OwnerIndices),
// scatters one read_vector_local request to every remote owner before
// waiting on any reply, services its own set while the remote owners work,
// then gathers the replies and scatters the values into the result vector
// by request position. A k-element gather across P owners costs one
// request/reply pair per owner, never one per element. If the request
// carries a caller-supplied buffer, values land straight in it.
func (m *Manager) doReadVector(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	sets, err := e.meta.OwnerIndices(req.gidxs)
	if err != nil {
		return response{status: StatusInvalid}
	}
	out := req.vals
	if out != nil && len(out) != len(req.gidxs) {
		return response{status: StatusInvalid}
	}
	if out == nil {
		out = make([]float64, len(req.gidxs))
	}
	if st := m.readSets(proc, req.id, sets, out); st != StatusOK {
		return response{status: st}
	}
	return response{status: StatusOK, vals: out}
}

// readSets drives the gather half of the offset-set transfer: one
// concurrent read_vector_local request per remote owner in sets (all
// scattered before any reply is awaited), the local set serviced in place,
// and each reply's values placed at their request positions in out. It is
// shared by the indexed coordinators and by the rectangle coordinators of
// irregular (cyclic/block-cyclic) arrays, whose owner shares are offset
// sets rather than rectangles.
func (m *Manager) readSets(proc int, id darray.ID, sets []darray.OwnerIndexSet, out []float64) Status {
	replies := make([]*request, len(sets))
	for i, s := range sets {
		if s.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, s.Proc,
			&request{op: "read_vector_local", id: id, offs: s.Offs, slot: s.Slot})
	}
	status := StatusOK
	// scatter places one owner's reply values at their request positions
	// and returns the pooled reply buffer to the owner's server.
	scatter := func(i int, r response) {
		if r.status != StatusOK {
			status = r.status
			return
		}
		for j, p := range sets[i].Pos {
			out[p] = r.vals[j]
		}
		m.recycle(sets[i].Proc, r.vals)
	}
	for i, s := range sets {
		if replies[i] != nil {
			continue
		}
		scatter(i, m.doReadVectorLocal(proc, &request{id: id, offs: s.Offs, slot: s.Slot}))
	}
	for i := range sets {
		if replies[i] == nil {
			continue
		}
		scatter(i, m.await(replies[i]))
	}
	return status
}

// doReadVectorLocal services one owner's share of an indexed gather: the
// requested storage offsets are read into a pooled reply buffer — zero
// allocations per request at a steady state. Ownership of the buffer
// passes to the coordinator, which returns it via putBuf after unpacking.
func (m *Manager) doReadVectorLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		return response{status: StatusError}
	}
	vals := srv.getBuf(len(req.offs))
	if err := sec.GatherInto(vals, req.offs); err != nil {
		srv.putBuf(vals)
		return response{status: StatusError}
	}
	return response{status: StatusOK, vals: vals}
}

// doWriteVector is the indexed-scatter coordinator: it splits the request
// by owning processor and sends each remote owner one write_vector_local
// request carrying that owner's offsets and values, all posted before any
// reply is awaited. Offsets within an owner's set preserve request order,
// so a global index repeated in one request takes the value at its last
// occurrence (last writer wins), exactly as a sequential loop of
// write_element calls would leave it.
func (m *Manager) doWriteVector(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if len(req.vals) != len(req.gidxs) {
		return response{status: StatusInvalid}
	}
	sets, err := e.meta.OwnerIndices(req.gidxs)
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: m.writeSets(proc, req.id, sets, req.vals)}
}

// writeSets drives the scatter half of the offset-set transfer: each
// remote owner in sets receives one write_vector_local request carrying
// its offsets and a fresh snapshot of its values (messages between address
// spaces carry copies, never views), all posted before any reply is
// awaited; the local set is written in place and the statuses gathered.
// Offsets within a set preserve request order, so repeated positions keep
// last-writer-wins semantics. Shared by the indexed coordinators and the
// irregular rectangle coordinators.
func (m *Manager) writeSets(proc int, id darray.ID, sets []darray.OwnerIndexSet, vals []float64) Status {
	// pack builds one owner's value vector in set order.
	pack := func(s darray.OwnerIndexSet) []float64 {
		out := make([]float64, len(s.Pos))
		for j, p := range s.Pos {
			out[j] = vals[p]
		}
		return out
	}
	replies := make([]*request, len(sets))
	for i, s := range sets {
		if s.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, s.Proc,
			&request{op: "write_vector_local", id: id, offs: s.Offs, vals: pack(s), slot: s.Slot})
	}
	status := StatusOK
	// Service every local set: after a failover promotion one processor
	// can own several slots, so "local" is not necessarily unique.
	for i, s := range sets {
		if replies[i] != nil {
			continue
		}
		if r := m.doWriteVectorLocal(proc, &request{id: id, offs: s.Offs, vals: pack(s), slot: s.Slot}); r.status != StatusOK {
			status = r.status
		}
	}
	for i := range sets {
		if replies[i] == nil {
			continue
		}
		if r := m.await(replies[i]); r.status != StatusOK {
			status = r.status
		}
	}
	return status
}

// readLattice is the rectangle-read coordinator for irregular
// (cyclic/block-cyclic) arrays: a cell's share of the (lo, hi, step)
// lattice — dense when step is nil — is not a rectangle, so the transfer
// cannot ride the owner-block split. When every owner share is a
// per-dimension arithmetic progression (pure-cyclic and block
// dimensions), the request travels as bounds+step descriptors
// (StridedShares, O(ndims) payload per owner); block-cyclic shares fall
// back to materialized offset sets served by the indexed-gather owner
// routine. Either way it is one request per owner, with values landing
// at their packed lattice positions in the dense result buffer.
func (m *Manager) readLattice(proc int, meta *darray.Meta, req *request, step []int) response {
	shares, descriptors, err := meta.StridedShares(req.lo, req.hi, step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	size := grid.RectSize(req.lo, req.hi)
	sdims := grid.RectDims(req.lo, req.hi)
	if step != nil {
		size = grid.StridedRectSize(req.lo, req.hi, step)
		sdims = grid.StridedRectDims(req.lo, req.hi, step)
	}
	out := req.vals
	if out != nil && len(out) != size {
		return response{status: StatusInvalid}
	}
	if out == nil {
		out = make([]float64, size)
	}
	var st Status
	if descriptors {
		st = m.readShares(proc, req.id, shares, sdims, out)
	} else {
		sets, err := meta.OwnerLattice(req.lo, req.hi, step)
		if err != nil {
			return response{status: StatusInvalid}
		}
		st = m.readSets(proc, req.id, sets, out)
	}
	if st != StatusOK {
		return response{status: st}
	}
	return response{status: StatusOK, vals: out}
}

// writeLattice is readLattice's write-side companion, with the same
// descriptor-first split.
func (m *Manager) writeLattice(proc int, meta *darray.Meta, req *request, step []int) response {
	shares, descriptors, err := meta.StridedShares(req.lo, req.hi, step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	size := grid.RectSize(req.lo, req.hi)
	sdims := grid.RectDims(req.lo, req.hi)
	if step != nil {
		size = grid.StridedRectSize(req.lo, req.hi, step)
		sdims = grid.StridedRectDims(req.lo, req.hi, step)
	}
	if len(req.vals) != size {
		return response{status: StatusInvalid}
	}
	if descriptors {
		return response{status: m.writeShares(proc, req.id, shares, sdims, req.vals)}
	}
	sets, err := meta.OwnerLattice(req.lo, req.hi, step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: m.writeSets(proc, req.id, sets, req.vals)}
}

// doWriteVectorLocal services one owner's share of an indexed scatter,
// applying the values in request order (last writer wins for repeats).
func (m *Manager) doWriteVectorLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		srv.mu.Unlock()
		return response{status: StatusError}
	}
	err := sec.ScatterFrom(req.vals, req.offs)
	meta := e.meta
	srv.mu.Unlock()
	if err != nil {
		return response{status: StatusError}
	}
	return response{status: m.mirrorWrite(proc, meta, req)}
}

// copyRuns moves the dense data of owner block b between full (the buffer
// covering the whole request rectangle [lo, lo+rectDims)) and sub (the
// buffer covering just b), in the direction selected by toFull. Both
// buffers are row-major, so runs along the last dimension are contiguous
// in each and move with copy.
func copyRuns(toFull bool, full, sub []float64, b darray.OwnerBlock, lo, rectDims []int) {
	last := len(rectDims) - 1
	run := b.GlobalHi[last] - b.GlobalLo[last]
	_ = grid.ForEachRect(b.GlobalLo[:last], b.GlobalHi[:last], func(outer []int, k int) error {
		pos := 0
		for i, x := range outer {
			pos = pos*rectDims[i] + (x - lo[i])
		}
		pos = pos*rectDims[last] + (b.GlobalLo[last] - lo[last])
		if toFull {
			copy(full[pos:pos+run], sub[k*run:(k+1)*run])
		} else {
			copy(sub[k*run:(k+1)*run], full[pos:pos+run])
		}
		return nil
	})
}

// doReadBlock is the bulk-read coordinator: it splits the global rectangle
// [lo, hi) by owning processor, scatters one read_block_local request to
// every remote owner before waiting on any reply, services its own piece
// while the remote owners work, then gathers the replies and assembles the
// sub-blocks into one dense row-major buffer. Latency is one round trip to
// the slowest owner, not the sum over owners. If the request carries a
// caller-supplied buffer (ReadBlockInto), the rectangle is assembled
// straight into it.
func (m *Manager) doReadBlock(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if !e.meta.Regular() {
		return m.readLattice(proc, e.meta, req, nil)
	}
	blocks, err := e.meta.OwnerBlocks(req.lo, req.hi)
	if err != nil {
		return response{status: StatusInvalid}
	}
	rectDims := grid.RectDims(req.lo, req.hi)
	out := req.vals
	if out != nil && len(out) != grid.RectSize(req.lo, req.hi) {
		return response{status: StatusInvalid}
	}
	if out == nil {
		out = make([]float64, grid.RectSize(req.lo, req.hi))
	}
	// Scatter: post every remote request up front (sends never block).
	replies := make([]*request, len(blocks))
	for i, b := range blocks {
		if b.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, b.Proc,
			&request{op: "read_block_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, slot: b.Slot})
	}
	// Service the local piece while the remote owners work.
	status := StatusOK
	for i, b := range blocks {
		if replies[i] != nil {
			continue
		}
		r := m.doReadBlockLocal(proc, &request{id: req.id, lo: b.LocalLo, hi: b.LocalHi, slot: b.Slot})
		if r.status != StatusOK {
			status = r.status
			continue
		}
		copyRuns(true, out, r.vals, b, req.lo, rectDims)
		m.recycle(b.Proc, r.vals)
	}
	// Gather: drain every reply even after a failure, so no owner's
	// response is left dangling.
	for i, b := range blocks {
		if replies[i] == nil {
			continue
		}
		r := m.await(replies[i])
		if r.status != StatusOK {
			status = r.status
			continue
		}
		copyRuns(true, out, r.vals, b, req.lo, rectDims)
		m.recycle(b.Proc, r.vals)
	}
	if status != StatusOK {
		return response{status: status}
	}
	return response{status: StatusOK, vals: out}
}

// doReadBlockSerial is the pre-concurrency coordinator, kept verbatim for
// the E22 ablation: owners are visited one at a time, each paying a full
// round trip before the next is contacted.
func (m *Manager) doReadBlockSerial(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if !e.meta.Regular() {
		// Serial ablation of the irregular path: one owner at a time, a
		// full round trip each, through the same offset sets.
		sets, err := e.meta.OwnerLattice(req.lo, req.hi, nil)
		if err != nil {
			return response{status: StatusInvalid}
		}
		out := make([]float64, grid.RectSize(req.lo, req.hi))
		for _, s := range sets {
			sub := &request{op: "read_vector_local", id: req.id, offs: s.Offs, slot: s.Slot}
			var r response
			if s.Proc == proc {
				r = m.doReadVectorLocal(proc, sub)
			} else {
				r = m.send(proc, s.Proc, sub)
			}
			if r.status != StatusOK {
				return response{status: r.status}
			}
			for j, p := range s.Pos {
				out[p] = r.vals[j]
			}
			m.recycle(s.Proc, r.vals)
		}
		return response{status: StatusOK, vals: out}
	}
	blocks, err := e.meta.OwnerBlocks(req.lo, req.hi)
	if err != nil {
		return response{status: StatusInvalid}
	}
	rectDims := grid.RectDims(req.lo, req.hi)
	out := make([]float64, grid.RectSize(req.lo, req.hi))
	for _, b := range blocks {
		sub := &request{op: "read_block_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, slot: b.Slot}
		var r response
		if b.Proc == proc {
			r = m.doReadBlockLocal(proc, sub)
		} else {
			r = m.send(proc, b.Proc, sub)
		}
		if r.status != StatusOK {
			return response{status: r.status}
		}
		copyRuns(true, out, r.vals, b, req.lo, rectDims)
		m.recycle(b.Proc, r.vals)
	}
	return response{status: StatusOK, vals: out}
}

// doReadBlockLocal services one owner's share of a bulk read into a pooled
// reply buffer — zero allocations per request at a steady state. Ownership
// of the buffer passes to the coordinator, which returns it via putBuf
// after assembling the rectangle.
func (m *Manager) doReadBlockLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		return response{status: StatusError}
	}
	if grid.CheckRect(req.lo, req.hi, e.meta.LocalDims) != nil {
		return response{status: StatusInvalid}
	}
	vals := srv.getBuf(grid.RectSize(req.lo, req.hi))
	if err := sec.ReadBlockInto(vals, req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing); err != nil {
		srv.putBuf(vals)
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK, vals: vals}
}

// doWriteBlock is the bulk-write coordinator: it splits the dense
// row-major buffer into per-owner sub-blocks, scatters one
// write_block_local request to every remote owner before waiting on any
// reply, writes its own piece while they work, then gathers the statuses.
func (m *Manager) doWriteBlock(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if !e.meta.Regular() {
		return m.writeLattice(proc, e.meta, req, nil)
	}
	blocks, err := e.meta.OwnerBlocks(req.lo, req.hi)
	if err != nil {
		return response{status: StatusInvalid}
	}
	rectDims := grid.RectDims(req.lo, req.hi)
	if len(req.vals) != grid.RectSize(req.lo, req.hi) {
		return response{status: StatusInvalid}
	}
	replies := make([]*request, len(blocks))
	for i, b := range blocks {
		if b.Proc == proc {
			continue
		}
		// Each remote owner gets its own dense snapshot of its piece —
		// messages between address spaces carry copies, never views.
		vals := make([]float64, grid.RectSize(b.GlobalLo, b.GlobalHi))
		copyRuns(false, req.vals, vals, b, req.lo, rectDims)
		replies[i] = m.sendAsync(proc, b.Proc,
			&request{op: "write_block_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, vals: vals, slot: b.Slot})
	}
	status := StatusOK
	// Service every local block: after a failover promotion one processor
	// can own several slots, so "local" is not necessarily unique.
	for i, b := range blocks {
		if replies[i] != nil {
			continue
		}
		vals := make([]float64, grid.RectSize(b.GlobalLo, b.GlobalHi))
		copyRuns(false, req.vals, vals, b, req.lo, rectDims)
		r := m.doWriteBlockLocal(proc, &request{id: req.id, lo: b.LocalLo, hi: b.LocalHi, vals: vals, slot: b.Slot})
		if r.status != StatusOK {
			status = r.status
		}
	}
	for i := range blocks {
		if replies[i] == nil {
			continue
		}
		if r := m.await(replies[i]); r.status != StatusOK {
			status = r.status
		}
	}
	return response{status: status}
}

func (m *Manager) doWriteBlockLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		srv.mu.Unlock()
		return response{status: StatusError}
	}
	err := sec.WriteBlock(req.vals, req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	meta := e.meta
	srv.mu.Unlock()
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: m.mirrorWrite(proc, meta, req)}
}

// copyRunsStrided is copyRuns for a strided transfer: it moves owner block
// b's lattice points between full (the packed buffer covering the whole
// request lattice, sdims = StridedRectDims(lo, hi, step)) and sub (the
// packed buffer covering just b). Both buffers pack the lattice row-major,
// so runs along the last dimension are contiguous in each and move with
// copy regardless of the stride.
func copyRunsStrided(toFull bool, full, sub []float64, b darray.OwnerBlock, lo, step, sdims []int) {
	last := len(sdims) - 1
	run := (b.GlobalHi[last] - b.GlobalLo[last] + step[last] - 1) / step[last]
	_ = grid.ForEachStridedRect(b.GlobalLo[:last], b.GlobalHi[:last], step[:last], func(outer []int, k int) error {
		pos := 0
		for i, x := range outer {
			pos = pos*sdims[i] + (x-lo[i])/step[i]
		}
		pos = pos*sdims[last] + (b.GlobalLo[last]-lo[last])/step[last]
		if toFull {
			copy(full[pos:pos+run], sub[k*run:(k+1)*run])
		} else {
			copy(sub[k*run:(k+1)*run], full[pos:pos+run])
		}
		return nil
	})
}

// doReadBlockStrided is the strided bulk-read coordinator: the lattice of
// every step[i]-th element of [lo, hi) is split by owning processor
// (darray.Meta.OwnerBlocksStrided), one read_block_strided_local request is
// scattered to every remote owner before any reply is awaited (the same
// sendAsync machinery as the dense coordinator), the local piece is
// serviced in place, and the replies are assembled into one packed
// row-major lattice buffer. Every-k-th-row access costs one request/reply
// pair per owner, never one offset per element.
func (m *Manager) doReadBlockStrided(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if !e.meta.Regular() {
		return m.readLattice(proc, e.meta, req, req.step)
	}
	blocks, err := e.meta.OwnerBlocksStrided(req.lo, req.hi, req.step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	sdims := grid.StridedRectDims(req.lo, req.hi, req.step)
	out := req.vals
	if out != nil && len(out) != grid.StridedRectSize(req.lo, req.hi, req.step) {
		return response{status: StatusInvalid}
	}
	if out == nil {
		out = make([]float64, grid.StridedRectSize(req.lo, req.hi, req.step))
	}
	replies := make([]*request, len(blocks))
	for i, b := range blocks {
		if b.Proc == proc {
			continue
		}
		replies[i] = m.sendAsync(proc, b.Proc,
			&request{op: "read_block_strided_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, step: req.step, slot: b.Slot})
	}
	status := StatusOK
	for i, b := range blocks {
		if replies[i] != nil {
			continue
		}
		r := m.doReadBlockStridedLocal(proc, &request{id: req.id, lo: b.LocalLo, hi: b.LocalHi, step: req.step, slot: b.Slot})
		if r.status != StatusOK {
			status = r.status
			continue
		}
		copyRunsStrided(true, out, r.vals, b, req.lo, req.step, sdims)
		m.recycle(b.Proc, r.vals)
	}
	for i, b := range blocks {
		if replies[i] == nil {
			continue
		}
		r := m.await(replies[i])
		if r.status != StatusOK {
			status = r.status
			continue
		}
		copyRunsStrided(true, out, r.vals, b, req.lo, req.step, sdims)
		m.recycle(b.Proc, r.vals)
	}
	if status != StatusOK {
		return response{status: status}
	}
	return response{status: StatusOK, vals: out}
}

// doReadBlockStridedLocal services one owner's share of a strided bulk
// read into a pooled reply buffer — zero allocations per request at a
// steady state, exactly like the dense owner server it mirrors.
func (m *Manager) doReadBlockStridedLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		return response{status: StatusError}
	}
	if grid.CheckStridedRect(req.lo, req.hi, req.step, e.meta.LocalDims) != nil {
		return response{status: StatusInvalid}
	}
	vals := srv.getBuf(grid.StridedRectSize(req.lo, req.hi, req.step))
	if err := sec.ReadBlockStridedInto(vals, req.lo, req.hi, req.step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing); err != nil {
		srv.putBuf(vals)
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK, vals: vals}
}

// doWriteBlockStrided is the strided bulk-write coordinator: the packed
// lattice buffer is split into per-owner sub-buffers, one
// write_block_strided_local request is scattered to every remote owner
// before any reply is awaited, the local piece is written in place, and the
// statuses are gathered.
func (m *Manager) doWriteBlockStrided(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	if !e.meta.Regular() {
		return m.writeLattice(proc, e.meta, req, req.step)
	}
	blocks, err := e.meta.OwnerBlocksStrided(req.lo, req.hi, req.step)
	if err != nil {
		return response{status: StatusInvalid}
	}
	sdims := grid.StridedRectDims(req.lo, req.hi, req.step)
	if len(req.vals) != grid.StridedRectSize(req.lo, req.hi, req.step) {
		return response{status: StatusInvalid}
	}
	replies := make([]*request, len(blocks))
	for i, b := range blocks {
		if b.Proc == proc {
			continue
		}
		// Each remote owner gets its own packed snapshot of its piece —
		// messages between address spaces carry copies, never views.
		vals := make([]float64, grid.StridedRectSize(b.GlobalLo, b.GlobalHi, req.step))
		copyRunsStrided(false, req.vals, vals, b, req.lo, req.step, sdims)
		replies[i] = m.sendAsync(proc, b.Proc,
			&request{op: "write_block_strided_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, step: req.step, vals: vals, slot: b.Slot})
	}
	status := StatusOK
	// Service every local block: after a failover promotion one processor
	// can own several slots, so "local" is not necessarily unique.
	for i, b := range blocks {
		if replies[i] != nil {
			continue
		}
		vals := make([]float64, grid.StridedRectSize(b.GlobalLo, b.GlobalHi, req.step))
		copyRunsStrided(false, req.vals, vals, b, req.lo, req.step, sdims)
		r := m.doWriteBlockStridedLocal(proc, &request{id: req.id, lo: b.LocalLo, hi: b.LocalHi, step: req.step, vals: vals, slot: b.Slot})
		if r.status != StatusOK {
			status = r.status
		}
	}
	for i := range blocks {
		if replies[i] == nil {
			continue
		}
		if r := m.await(replies[i]); r.status != StatusOK {
			status = r.status
		}
	}
	return response{status: status}
}

func (m *Manager) doWriteBlockStridedLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	sec := e.sectionFor(req.slot)
	if sec == nil {
		srv.mu.Unlock()
		return response{status: StatusError}
	}
	err := sec.WriteBlockStrided(req.vals, req.lo, req.hi, req.step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	meta := e.meta
	srv.mu.Unlock()
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: m.mirrorWrite(proc, meta, req)}
}

func (m *Manager) doFindLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil {
		// find_local requires a local view: only processors holding a
		// section may ask (§5.1.4).
		return response{status: StatusNotFound}
	}
	return response{status: StatusOK, section: e.section}
}

func (m *Manager) doFindInfo(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	meta := e.meta
	var out any
	switch req.which {
	case "type":
		out = meta.Type.String()
	case "dimensions":
		out = append([]int(nil), meta.Dims...)
	case "processors":
		out = append([]int(nil), meta.Procs...)
	case "grid_dimensions":
		out = append([]int(nil), meta.GridDims...)
	case "distribution":
		out = meta.ResolvedDists()
	case "local_dimensions":
		out = append([]int(nil), meta.LocalDims...)
	case "borders":
		out = append([]int(nil), meta.Borders...)
	case "local_dimensions_plus":
		out = append([]int(nil), meta.LocalDimsPlus...)
	case "indexing_type":
		out = meta.Indexing.String()
	case "grid_indexing_type":
		out = meta.GridIndexing.String()
	case "meta":
		out = meta.Clone() // full metadata, a convenience beyond the paper
	default:
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK, info: out}
}

func (m *Manager) doVerify(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	meta := e.meta
	if req.ndims != meta.NDims() {
		return response{status: StatusInvalid}
	}
	if req.indexing != meta.Indexing {
		// The indexing type cannot be corrected by reallocation; a
		// mismatch is an invalid request (§4.2.7's third example).
		return response{status: StatusInvalid}
	}
	expected, bst := m.resolveBorders(req.borders, meta.NDims())
	if bst != StatusOK {
		return response{status: bst}
	}
	// Verification may not retrofit borders onto a layout that could not
	// have been created with them (the same block-only contract as
	// create_array).
	if !bordersAllowed(expected, meta.Dims, meta.GridDims, meta.ResolvedDists()) {
		return response{status: StatusInvalid}
	}
	if darray.EqualInts(expected, meta.Borders) {
		return response{status: StatusOK}
	}
	// Mismatch: reallocate every local section with the expected borders,
	// copying interior data, and update metadata everywhere an entry
	// exists (section holders + creator + this coordinator). The
	// reallocation fans out through the combining tree like create/free.
	targets := map[int]bool{proc: true, req.id.Proc: true}
	for _, p := range meta.SectionProcs() {
		targets[p] = true
	}
	return response{status: m.fanout(proc, "copy_local", &request{id: req.id, gidx: expected}, targets)}
}

// doCopyLocal reallocates this processor's local section with new borders
// (carried in req.gidx), copies interior data, and updates the local
// metadata copy.
func (m *Manager) doCopyLocal(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	newBorders := req.gidx
	plus, err := darray.DimsPlus(e.meta.LocalDims, newBorders)
	if err != nil {
		return response{status: StatusInvalid}
	}
	if e.section != nil {
		fresh := darray.NewSection(e.meta.Type, grid.Size(plus))
		if err := darray.CopyInterior(fresh, e.section, e.meta.LocalDims, newBorders, e.meta.Borders, e.meta.Indexing); err != nil {
			return response{status: StatusError}
		}
		e.section = fresh
	}
	// Buddy copies share the primary's layout, so they are reallocated
	// the same way.
	for slot, sec := range e.replicas {
		fresh := darray.NewSection(e.meta.Type, grid.Size(plus))
		if err := darray.CopyInterior(fresh, sec, e.meta.LocalDims, newBorders, e.meta.Borders, e.meta.Indexing); err != nil {
			return response{status: StatusError}
		}
		e.replicas[slot] = fresh
	}
	e.meta.Borders = append([]int(nil), newBorders...)
	e.meta.LocalDimsPlus = plus
	return response{status: StatusOK}
}

func (m *Manager) doUpdateMeta(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	// Epoch guard: a promotion broadcast that raced a newer one (dropped,
	// jittered, replayed) must not roll ownership back.
	if req.meta.Epoch < e.meta.Epoch {
		return response{status: StatusOK}
	}
	e.meta = req.meta.Clone()
	return response{status: StatusOK}
}

// --- public API (the operations of §3.2.1.5, invoked on a processor) ---

// CreateArray services a create_array request made on processor onProc and
// returns the new array's globally unique ID.
func (m *Manager) CreateArray(onProc int, spec CreateSpec) (darray.ID, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return darray.ID{}, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "create_array", spec: &spec})
	if r.status != StatusOK {
		return darray.ID{}, r.status
	}
	return r.info.(darray.ID), StatusOK
}

// FreeArray deletes the array and frees all its local sections.
func (m *Manager) FreeArray(onProc int, id darray.ID) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{op: "free_array", id: id}).status
}

// GatherElements reads the elements at the given global index tuples,
// returning their values in request order. The transfer is split by owning
// processor: one concurrent request per owner, however many elements each
// owner holds — the indexed companion of ReadBlock for access patterns
// with no rectangular structure.
func (m *Manager) GatherElements(onProc int, id darray.ID, indices [][]int) ([]float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	out := make([]float64, len(indices))
	if st := m.GatherElementsInto(onProc, id, indices, out); st != StatusOK {
		return nil, st
	}
	return out, StatusOK
}

// GatherElementsInto is the buffer-reuse variant of GatherElements: dst
// must hold exactly len(indices) elements and receives the values in
// place. dst is owned by the caller throughout.
func (m *Manager) GatherElementsInto(onProc int, id darray.ID, indices [][]int, dst []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if st, ok := m.localVectorFast(onProc, id, indices, true, dst); ok {
		return st
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "read_vector", id: id, gidxs: indices, vals: dst}
	}).status
}

// ScatterElements writes vals[i] to the element at indices[i], split by
// owning processor into one concurrent request per owner. A repeated index
// takes the value at its last occurrence in the request (last writer
// wins). vals is never retained; remote owners receive their own
// snapshots.
func (m *Manager) ScatterElements(onProc int, id darray.ID, indices [][]int, vals []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if len(indices) == len(vals) {
		if st, ok := m.localVectorFast(onProc, id, indices, false, vals); ok {
			return st
		}
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "write_vector", id: id, gidxs: indices, vals: vals}
	}).status
}

// ReadElement reads one element by its global indices — the k=1 degenerate
// case of GatherElements. The one-element request vectors come from a
// scratch pool and a wholly-local element takes the router-free fast path,
// so local element reads allocate nothing.
func (m *Manager) ReadElement(onProc int, id darray.ID, indices []int) (float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return 0, StatusInvalid
	}
	s := elemScratchPool.Get().(*elemScratch)
	s.idx[0] = indices
	s.val[0] = 0 // failed reads report 0, not a stale pooled value
	st, ok := m.localVectorFast(onProc, id, s.gidxs, true, s.val[:])
	if !ok {
		st = m.sendData(onProc, []darray.ID{id}, func() *request {
			return &request{op: "read_vector", id: id, gidxs: s.gidxs, vals: s.val[:]}
		}).status
	}
	v := s.val[0]
	if st != StatusOK {
		v = 0
	}
	s.idx[0] = nil
	elemScratchPool.Put(s)
	return v, st
}

// WriteElement writes one element by its global indices — the k=1
// degenerate case of ScatterElements, sharing ReadElement's scratch pool
// and local fast path.
func (m *Manager) WriteElement(onProc int, id darray.ID, indices []int, v float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	s := elemScratchPool.Get().(*elemScratch)
	s.idx[0] = indices
	s.val[0] = v
	st, ok := m.localVectorFast(onProc, id, s.gidxs, false, s.val[:])
	if !ok {
		st = m.sendData(onProc, []darray.ID{id}, func() *request {
			return &request{op: "write_vector", id: id, gidxs: s.gidxs, vals: s.val[:]}
		}).status
	}
	s.idx[0] = nil
	elemScratchPool.Put(s)
	return st
}

// localBlockFast attempts the zero-copy local fast path: when the whole
// rectangle [lo, hi) — dense for step == nil, else the (lo, hi, step)
// lattice — lies on processor proc, the data moves directly between buf
// and the local section's storage under the server lock — no router
// message, no request goroutine, no intermediate buffer, and (for
// rectangles of at most darray.MaxFastDims dimensions) no heap allocation.
// ok reports whether the fast path applied; when it does not, the caller
// falls back to the coordinator, which also produces the authoritative
// failure status for malformed requests.
func (m *Manager) localBlockFast(proc int, id darray.ID, lo, hi, step []int, read bool, buf []float64) (Status, bool) {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[id]
	if !ok || e.freed || e.section == nil {
		return StatusOK, false
	}
	// After a promotion a processor may serve several slots, so the
	// single-section locality test below is no longer sound; writes to a
	// replicated array must mirror, which only the coordinator path does.
	if e.meta.Epoch > 0 || (!read && e.meta.Replicas > 0) {
		return StatusOK, false
	}
	n := e.meta.NDims()
	if n > darray.MaxFastDims || len(lo) != n || len(hi) != n {
		return StatusOK, false
	}
	hiUse := hi
	var hiEff [darray.MaxFastDims]int
	if step == nil {
		if grid.CheckRect(lo, hi, e.meta.Dims) != nil {
			return StatusOK, false
		}
		if len(buf) != grid.RectSize(lo, hi) {
			return StatusOK, false
		}
	} else {
		if len(step) != n || grid.CheckStridedRect(lo, hi, step, e.meta.Dims) != nil {
			return StatusOK, false
		}
		if len(buf) != grid.StridedRectSize(lo, hi, step) {
			return StatusOK, false
		}
		// Locality is decided by the lattice's bounding box, not the
		// requested hi: clamp each bound to just past the last lattice
		// point so a stride overshooting the section edge still qualifies.
		for i := 0; i < n; i++ {
			hiEff[i] = lo[i] + ((hi[i]-1-lo[i])/step[i])*step[i] + 1
		}
		hiUse = hiEff[:n]
	}
	var loBuf, hiBuf [darray.MaxFastDims]int
	if !e.meta.LocalRect(proc, lo, hiUse, loBuf[:n], hiBuf[:n]) {
		return StatusOK, false
	}
	var err error
	switch {
	case step == nil && read:
		err = e.section.ReadBlockInto(buf, loBuf[:n], hiBuf[:n], e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	case step == nil:
		err = e.section.WriteBlock(buf, loBuf[:n], hiBuf[:n], e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	case read:
		err = e.section.ReadBlockStridedInto(buf, loBuf[:n], hiBuf[:n], step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	default:
		err = e.section.WriteBlockStrided(buf, loBuf[:n], hiBuf[:n], step, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	}
	if err != nil {
		return StatusInvalid, true
	}
	return StatusOK, true
}

// localVectorFast attempts the local fast path of the indexed plane: when
// every index of the request resolves to the requesting processor, the
// elements move directly between buf and the local section's storage under
// the server lock — no router message and no heap allocation, the
// ownership test running inline over the index vector the way
// darray.Meta.OwnerIndices resolves it. For a scatter the whole vector is
// validated before the first write, so a declined request mutates nothing;
// values are applied in request order (last writer wins for repeats). ok
// reports whether the fast path applied.
func (m *Manager) localVectorFast(proc int, id darray.ID, indices [][]int, read bool, buf []float64) (Status, bool) {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[id]
	if !ok || e.freed || e.section == nil {
		return StatusOK, false
	}
	// Same declines as localBlockFast: post-promotion ownership and
	// replicated writes belong to the coordinator.
	if e.meta.Epoch > 0 || (!read && e.meta.Replicas > 0) {
		return StatusOK, false
	}
	meta := e.meta
	n := meta.NDims()
	if n > darray.MaxFastDims || len(buf) != len(indices) {
		return StatusOK, false
	}
	homeSlot, holds := meta.HoldsSection(proc)
	if !holds {
		return StatusOK, false
	}
	var stridesBuf [darray.MaxFastDims]int
	if meta.Indexing == grid.RowMajor {
		st := 1
		for i := n - 1; i >= 0; i-- {
			stridesBuf[i] = st
			st *= meta.LocalDimsPlus[i]
		}
	} else {
		st := 1
		for i := 0; i < n; i++ {
			stridesBuf[i] = st
			st *= meta.LocalDimsPlus[i]
		}
	}
	strides := stridesBuf[:n]
	// Pass 1: every index must be well-formed and owned by this processor
	// (malformed requests fall back to the coordinator for the
	// authoritative status; a declined scatter must mutate nothing).
	for _, gidx := range indices {
		slot, _, ok := meta.ResolveIndex(gidx, strides)
		if !ok || slot != homeSlot {
			return StatusOK, false
		}
	}
	// Pass 2: move the data through border-displaced storage offsets.
	for k, gidx := range indices {
		_, off, _ := meta.ResolveIndex(gidx, strides)
		if read {
			buf[k] = e.section.GetFloat(off)
		} else {
			e.section.SetFloat(off, buf[k])
		}
	}
	return StatusOK, true
}

// elemScratch carries the one-element index and value vectors of
// ReadElement/WriteElement, pooled so the k=1 degenerate ops allocate
// nothing on the local fast path.
type elemScratch struct {
	idx   [1][]int
	val   [1]float64
	gidxs [][]int // aliases idx[:]
}

var elemScratchPool = sync.Pool{New: func() any {
	s := &elemScratch{}
	s.gidxs = s.idx[:]
	return s
}}

// ReadBlock reads the global rectangle [lo, hi) (half-open per dimension)
// into a dense buffer linearized row-major over the rectangle. The
// transfer is split by owning processor: the coordinator scatters one
// message per remote owner concurrently, regardless of the rectangle's
// element count, and gathers the replies.
func (m *Manager) ReadBlock(onProc int, id darray.ID, lo, hi []int) ([]float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "read_block", id: id, lo: lo, hi: hi}
	})
	return r.vals, r.status
}

// ReadBlockInto is the buffer-reuse variant of ReadBlock: dst must hold
// exactly the rectangle's element count and receives the data in place.
// When the whole rectangle lies on onProc the copy comes straight out of
// the local section storage with no message and zero heap allocations (up
// to darray.MaxFastDims dimensions); otherwise the concurrent coordinator
// assembles the remote pieces directly into dst. dst is owned by the
// caller throughout — the manager retains no reference to it.
func (m *Manager) ReadBlockInto(onProc int, id darray.ID, lo, hi []int, dst []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if st, ok := m.localBlockFast(onProc, id, lo, hi, nil, true, dst); ok {
		return st
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "read_block", id: id, lo: lo, hi: hi, vals: dst}
	}).status
}

// ReadBlockSerial is ReadBlock through the serial owner-at-a-time
// coordinator. Ablation/benchmark use only (E22): it exists to measure
// what the concurrent scatter/gather coordinator buys.
func (m *Manager) ReadBlockSerial(onProc int, id darray.ID, lo, hi []int) ([]float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "read_block_serial", id: id, lo: lo, hi: hi})
	return r.vals, r.status
}

// WriteBlock writes a dense row-major buffer into the global rectangle
// [lo, hi). When the whole rectangle lies on onProc the data is copied
// straight into the local section storage with no message and zero heap
// allocations; otherwise the coordinator scatters one message per remote
// owning processor concurrently. vals is never retained: remote owners
// receive their own snapshots, so the caller may reuse the buffer as soon
// as WriteBlock returns.
func (m *Manager) WriteBlock(onProc int, id darray.ID, lo, hi []int, vals []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if st, ok := m.localBlockFast(onProc, id, lo, hi, nil, false, vals); ok {
		return st
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "write_block", id: id, lo: lo, hi: hi, vals: vals}
	}).status
}

// unitStep reports whether every stride is 1 — the degenerate case the
// strided entry points hand to the dense path.
func unitStep(step []int) bool {
	for _, s := range step {
		if s != 1 {
			return false
		}
	}
	return true
}

// ReadBlockStrided reads the lattice of every step[i]-th element of the
// global rectangle [lo, hi) into a dense buffer packed row-major over the
// lattice. Like ReadBlock, the transfer is split by owning processor — one
// concurrent request per owner holding a lattice point, however many
// rows/columns the stride selects — so every-k-th-row access costs
// O(#owners) messages instead of an index vector with one offset per
// element. A unit step in every dimension delegates to the dense path.
func (m *Manager) ReadBlockStrided(onProc int, id darray.ID, lo, hi, step []int) ([]float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	if len(step) == len(lo) && unitStep(step) {
		return m.ReadBlock(onProc, id, lo, hi)
	}
	r := m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "read_block_strided", id: id, lo: lo, hi: hi, step: step}
	})
	return r.vals, r.status
}

// ReadBlockStridedInto is the buffer-reuse variant of ReadBlockStrided:
// dst must hold exactly the lattice's point count and receives the packed
// data in place. A wholly-local lattice is copied straight out of section
// storage with no message and zero heap allocations (up to
// darray.MaxFastDims dimensions); dst is owned by the caller throughout.
func (m *Manager) ReadBlockStridedInto(onProc int, id darray.ID, lo, hi, step []int, dst []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if len(step) == len(lo) && unitStep(step) {
		return m.ReadBlockInto(onProc, id, lo, hi, dst)
	}
	if st, ok := m.localBlockFast(onProc, id, lo, hi, step, true, dst); ok {
		return st
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "read_block_strided", id: id, lo: lo, hi: hi, step: step, vals: dst}
	}).status
}

// WriteBlockStrided writes a dense buffer packed row-major over the
// lattice onto every step[i]-th element of the global rectangle [lo, hi):
// straight into section storage when the lattice is wholly local, one
// concurrent message per remote owning processor otherwise. Elements off
// the lattice are untouched; vals is never retained. A unit step in every
// dimension delegates to the dense path.
func (m *Manager) WriteBlockStrided(onProc int, id darray.ID, lo, hi, step []int, vals []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	if len(step) == len(lo) && unitStep(step) {
		return m.WriteBlock(onProc, id, lo, hi, vals)
	}
	if st, ok := m.localBlockFast(onProc, id, lo, hi, step, false, vals); ok {
		return st
	}
	return m.sendData(onProc, []darray.ID{id}, func() *request {
		return &request{op: "write_block_strided", id: id, lo: lo, hi: hi, step: step, vals: vals}
	}).status
}

// FindLocal returns the local section of the array on onProc in a form
// suitable for passing to a data-parallel program. Only processors holding
// a section may call it.
func (m *Manager) FindLocal(onProc int, id darray.ID) (*darray.Section, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "find_local", id: id})
	return r.section, r.status
}

// FindInfo returns information about the array; which is one of the §4.2.6
// selector strings ("type", "dimensions", "processors", "grid_dimensions",
// "local_dimensions", "borders", "local_dimensions_plus", "indexing_type",
// "grid_indexing_type"), "distribution" for the per-dimension
// distributions ([]grid.Dist), or "meta" for the full metadata.
func (m *Manager) FindInfo(onProc int, id darray.ID, which string) (any, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "find_info", id: id, which: which})
	return r.info, r.status
}

// Meta returns the full metadata of an array (convenience wrapper over
// FindInfo("meta")).
func (m *Manager) Meta(onProc int, id darray.ID) (*darray.Meta, Status) {
	info, st := m.FindInfo(onProc, id, "meta")
	if st != StatusOK {
		return nil, st
	}
	return info.(*darray.Meta), StatusOK
}

// VerifyArray verifies that the array has the given indexing type and
// borders, reallocating and copying local sections if the borders differ
// (§4.2.7).
func (m *Manager) VerifyArray(onProc int, id darray.ID, ndims int, borders BorderSpec, indexing grid.Indexing) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{
		op: "verify_array", id: id, ndims: ndims, borders: borders, indexing: indexing,
	}).status
}
