// Package arraymgr implements the array manager of §3.2.2 and §5.1: the
// runtime support for distributed arrays.
//
// The array manager consists of one array-manager server per virtual
// processor. All requests by task-parallel programs to create or manipulate
// distributed arrays are handled by the *local* array-manager server, which
// communicates with the array-manager servers on other processors as needed
// to fulfil the request (e.g. array creation touches every processor over
// which the array is distributed; reading an element touches the processor
// owning it). Requests travel over the machine's message router using
// task-parallel-class tags, keeping array-manager traffic disjoint from
// data-parallel program traffic per §3.4.1.
//
// Each server keeps a list of array entries. An entry is added on every
// processor over which an array is distributed as well as on the creating
// processor; freeing an array invalidates the entries so that subsequent
// references fail with STATUS_NOT_FOUND (§5.1.3).
package arraymgr

import (
	"fmt"
	"sync"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/vp"
)

// Status is the result code of an array-manager operation (§4.1.2).
type Status int

const (
	// StatusOK — no errors.
	StatusOK Status = 0
	// StatusInvalid — invalid parameter.
	StatusInvalid Status = 1
	// StatusNotFound — array not found.
	StatusNotFound Status = 2
	// StatusError — system error.
	StatusError Status = 3
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "STATUS_OK"
	case StatusInvalid:
		return "STATUS_INVALID"
	case StatusNotFound:
		return "STATUS_NOT_FOUND"
	case StatusError:
		return "STATUS_ERROR"
	default:
		return fmt.Sprintf("STATUS(%d)", int(s))
	}
}

// BorderSpec is the Border_info parameter of create_array/verify_array
// (§4.2.1): no borders, explicit sizes, or sizes supplied at runtime by the
// data-parallel program that will receive the array (the foreign_borders
// option supporting Fortran D-style overlap areas).
type BorderSpec interface{ isBorderSpec() }

// NoBorderSpec is Border_info = 0: local sections have no borders.
type NoBorderSpec struct{}

func (NoBorderSpec) isBorderSpec() {}

// ExplicitBorders directly specifies border sizes: length 2*ndims, elements
// 2i and 2i+1 give the border on either side of dimension i.
type ExplicitBorders []int

func (ExplicitBorders) isBorderSpec() {}

// ForeignBorders defers border sizes to the data-parallel program Program,
// which will receive the array as parameter ParmNum. The program's
// registered border callback (the paper's Program_ routine) is consulted at
// creation/verification time.
type ForeignBorders struct {
	Program string
	ParmNum int
}

func (ForeignBorders) isBorderSpec() {}

// BorderResolver resolves a ForeignBorders spec: given the program name,
// parameter number and dimensionality, it returns the 2*ndims border
// sizes. The distributed-call registry provides one.
type BorderResolver func(program string, parmNum, ndims int) ([]int, error)

// CreateSpec collects the parameters of create_array (§4.2.1).
type CreateSpec struct {
	Type     darray.ElemType
	Dims     []int
	Procs    []int
	Distrib  []grid.Decomp
	Borders  BorderSpec
	Indexing grid.Indexing
}

// entry is one array's record at one server. Metadata is cloned per
// processor — distinct virtual address spaces hold distinct copies.
type entry struct {
	meta    *darray.Meta
	section *darray.Section // nil when this processor holds no local section
	freed   bool
}

// server is the per-processor array-manager state.
type server struct {
	mu      sync.Mutex
	entries map[darray.ID]*entry
	nextSeq int
}

// Manager is the whole array manager: one server per virtual processor plus
// the request-routing fabric.
type Manager struct {
	machine  *vp.Machine
	servers  []*server
	resolver BorderResolver

	mu     sync.Mutex
	closed bool
}

// kindAMRequest is the reserved task-class message kind carrying
// array-manager requests.
const kindAMRequest = -100

// request is one array-manager request in flight. Reply delivery uses a
// definitional-style one-shot channel.
type request struct {
	op    string
	id    darray.ID
	spec  *CreateSpec
	meta  *darray.Meta // for create_local / update_meta
	gidx  []int        // read/write element
	off   int          // read/write local
	val   float64
	lo    []int     // read/write block: rectangle bounds (global at the
	hi    []int     // coordinator, interior-local at the owner)
	vals  []float64 // write block: dense row-major block data
	which string    // find_info
	// verify parameters
	ndims    int
	borders  BorderSpec
	indexing grid.Indexing

	reply chan response
}

type response struct {
	status  Status
	val     float64
	vals    []float64
	section *darray.Section
	info    any
}

// New starts an array manager on every processor of the machine (the
// equivalent of the paper's `load("am")` on all processors, §B.3).
func New(machine *vp.Machine) *Manager {
	m := &Manager{machine: machine, servers: make([]*server, machine.P())}
	for p := 0; p < machine.P(); p++ {
		m.servers[p] = &server{entries: make(map[darray.ID]*entry)}
		p := p
		go m.serve(p)
	}
	return m
}

// SetBorderResolver installs the resolver used for ForeignBorders specs.
func (m *Manager) SetBorderResolver(r BorderResolver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolver = r
}

func (m *Manager) borderResolver() BorderResolver {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resolver
}

// serve is one array-manager server loop: it receives requests addressed to
// this processor and services each in its own goroutine (the PCN server
// spawns a process per request, so concurrent requests never deadlock the
// server).
func (m *Manager) serve(proc int) {
	router := m.machine.Router()
	for {
		message, err := router.Recv(proc, func(mm msg.Message) bool {
			return mm.Tag.Class == msg.ClassTask && mm.Tag.Kind == kindAMRequest
		})
		if err != nil {
			return // router closed: machine shutdown
		}
		req := message.Data.(*request)
		go m.handle(proc, req)
	}
}

// send routes a request to the server on processor dst and returns its
// response.
func (m *Manager) send(src, dst int, req *request) response {
	req.reply = make(chan response, 1)
	tag := msg.Tag{Class: msg.ClassTask, Kind: kindAMRequest}
	if err := m.machine.Router().Send(src, dst, tag, req); err != nil {
		return response{status: StatusError}
	}
	return <-req.reply
}

// handle dispatches one request at the server on proc. With tracing at
// Ops level the manager behaves like the paper's am_debug build, emitting
// one trace message per operation (§B.3).
func (m *Manager) handle(proc int, req *request) {
	if trace.Enabled(trace.Ops) {
		trace.Logf(trace.Ops, proc, "am: %s %v", req.op, req.id)
	}
	var resp response
	switch req.op {
	case "create_array":
		resp = m.doCreate(proc, req)
	case "create_local":
		resp = m.doCreateLocal(proc, req)
	case "free_array":
		resp = m.doFree(proc, req)
	case "free_local":
		resp = m.doFreeLocal(proc, req)
	case "read_element":
		resp = m.doRead(proc, req)
	case "read_element_local":
		resp = m.doReadLocal(proc, req)
	case "write_element":
		resp = m.doWrite(proc, req)
	case "write_element_local":
		resp = m.doWriteLocal(proc, req)
	case "read_block":
		resp = m.doReadBlock(proc, req)
	case "read_block_local":
		resp = m.doReadBlockLocal(proc, req)
	case "write_block":
		resp = m.doWriteBlock(proc, req)
	case "write_block_local":
		resp = m.doWriteBlockLocal(proc, req)
	case "find_local":
		resp = m.doFindLocal(proc, req)
	case "find_info":
		resp = m.doFindInfo(proc, req)
	case "verify_array":
		resp = m.doVerify(proc, req)
	case "copy_local":
		resp = m.doCopyLocal(proc, req)
	case "update_meta":
		resp = m.doUpdateMeta(proc, req)
	default:
		resp = response{status: StatusError}
	}
	req.reply <- resp
}

// --- coordinator operations ---

// resolveBorders turns a BorderSpec into concrete border sizes.
func (m *Manager) resolveBorders(spec BorderSpec, ndims int) ([]int, Status) {
	switch b := spec.(type) {
	case nil, NoBorderSpec:
		return darray.NoBorders(ndims), StatusOK
	case ExplicitBorders:
		if err := darray.CheckBorders([]int(b), ndims); err != nil {
			return nil, StatusInvalid
		}
		return append([]int(nil), b...), StatusOK
	case ForeignBorders:
		r := m.borderResolver()
		if r == nil {
			return nil, StatusInvalid
		}
		borders, err := r(b.Program, b.ParmNum, ndims)
		if err != nil {
			return nil, StatusInvalid
		}
		if err := darray.CheckBorders(borders, ndims); err != nil {
			return nil, StatusInvalid
		}
		return borders, StatusOK
	default:
		return nil, StatusInvalid
	}
}

func (m *Manager) doCreate(proc int, req *request) response {
	spec := req.spec
	if spec == nil || len(spec.Dims) == 0 || len(spec.Procs) == 0 {
		return response{status: StatusInvalid}
	}
	for _, d := range spec.Dims {
		if d < 1 {
			return response{status: StatusInvalid}
		}
	}
	seen := make(map[int]bool, len(spec.Procs))
	for _, p := range spec.Procs {
		if m.machine.CheckProc(p) != nil || seen[p] {
			return response{status: StatusInvalid}
		}
		seen[p] = true
	}
	if len(spec.Distrib) != len(spec.Dims) {
		return response{status: StatusInvalid}
	}
	gridDims, err := grid.GridDims(len(spec.Procs), spec.Distrib)
	if err != nil {
		return response{status: StatusInvalid}
	}
	localDims, err := grid.LocalDims(spec.Dims, gridDims)
	if err != nil {
		return response{status: StatusInvalid}
	}
	borders, st := m.resolveBorders(spec.Borders, len(spec.Dims))
	if st != StatusOK {
		return response{status: st}
	}
	plus, err := darray.DimsPlus(localDims, borders)
	if err != nil {
		return response{status: StatusInvalid}
	}

	srv := m.servers[proc]
	srv.mu.Lock()
	id := darray.ID{Proc: proc, Seq: srv.nextSeq}
	srv.nextSeq++
	srv.mu.Unlock()

	meta := &darray.Meta{
		ID:            id,
		Type:          spec.Type,
		Dims:          append([]int(nil), spec.Dims...),
		Procs:         append([]int(nil), spec.Procs...),
		GridDims:      gridDims,
		LocalDims:     localDims,
		Borders:       borders,
		LocalDimsPlus: plus,
		Indexing:      spec.Indexing,
		GridIndexing:  spec.Indexing, // the paper ties grid indexing to array indexing
	}

	// An entry is created on every processor holding a local section, and
	// on the creating processor (§5.1.3).
	targets := map[int]bool{proc: true}
	for _, p := range meta.SectionProcs() {
		targets[p] = true
	}
	for p := range targets {
		sub := &request{op: "create_local", id: id, meta: meta}
		r := m.send(proc, p, sub)
		if r.status != StatusOK {
			return response{status: r.status}
		}
	}
	return response{status: StatusOK, info: id}
}

func (m *Manager) doCreateLocal(proc int, req *request) response {
	srv := m.servers[proc]
	meta := req.meta.Clone() // each address space keeps its own copy
	var section *darray.Section
	if _, holds := meta.HoldsSection(proc); holds {
		section = darray.NewSection(meta.Type, meta.LocalStorageSize())
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if _, dup := srv.entries[req.id]; dup {
		return response{status: StatusError}
	}
	srv.entries[req.id] = &entry{meta: meta, section: section}
	return response{status: StatusOK}
}

// lookup returns the live entry for id at proc, or a failure status.
func (m *Manager) lookup(proc int, id darray.ID) (*entry, Status) {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[id]
	if !ok || e.freed {
		return nil, StatusNotFound
	}
	return e, StatusOK
}

func (m *Manager) doFree(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	targets := map[int]bool{proc: true, req.id.Proc: true}
	for _, p := range e.meta.SectionProcs() {
		targets[p] = true
	}
	for p := range targets {
		r := m.send(proc, p, &request{op: "free_local", id: req.id})
		if r.status != StatusOK && r.status != StatusNotFound {
			return response{status: r.status}
		}
	}
	return response{status: StatusOK}
}

func (m *Manager) doFreeLocal(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	e.freed = true
	e.section = nil // release the storage (the paper's explicit free)
	return response{status: StatusOK}
}

func (m *Manager) doRead(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	owner, off, err := e.meta.Owner(req.gidx)
	if err != nil {
		return response{status: StatusInvalid}
	}
	if owner == proc {
		return m.doReadLocal(proc, &request{id: req.id, off: off})
	}
	return m.send(proc, owner, &request{op: "read_element_local", id: req.id, off: off})
}

func (m *Manager) doReadLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil || req.off < 0 || req.off >= e.section.Len() {
		return response{status: StatusError}
	}
	return response{status: StatusOK, val: e.section.GetFloat(req.off)}
}

func (m *Manager) doWrite(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	owner, off, err := e.meta.Owner(req.gidx)
	if err != nil {
		return response{status: StatusInvalid}
	}
	if owner == proc {
		return m.doWriteLocal(proc, &request{id: req.id, off: off, val: req.val})
	}
	return m.send(proc, owner, &request{op: "write_element_local", id: req.id, off: off, val: req.val})
}

func (m *Manager) doWriteLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil || req.off < 0 || req.off >= e.section.Len() {
		return response{status: StatusError}
	}
	e.section.SetFloat(req.off, req.val)
	return response{status: StatusOK}
}

// copyRuns moves the dense data of owner block b between full (the buffer
// covering the whole request rectangle [lo, lo+rectDims)) and sub (the
// buffer covering just b), in the direction selected by toFull. Both
// buffers are row-major, so runs along the last dimension are contiguous
// in each and move with copy.
func copyRuns(toFull bool, full, sub []float64, b darray.OwnerBlock, lo, rectDims []int) {
	last := len(rectDims) - 1
	run := b.GlobalHi[last] - b.GlobalLo[last]
	_ = grid.ForEachRect(b.GlobalLo[:last], b.GlobalHi[:last], func(outer []int, k int) error {
		pos := 0
		for i, x := range outer {
			pos = pos*rectDims[i] + (x - lo[i])
		}
		pos = pos*rectDims[last] + (b.GlobalLo[last] - lo[last])
		if toFull {
			copy(full[pos:pos+run], sub[k*run:(k+1)*run])
		} else {
			copy(sub[k*run:(k+1)*run], full[pos:pos+run])
		}
		return nil
	})
}

// doReadBlock is the bulk-read coordinator: it splits the global rectangle
// [lo, hi) by owning processor and issues one read_block_local request per
// owner (serviced in place when the owner is this processor), assembling
// the returned sub-blocks into one dense row-major buffer.
func (m *Manager) doReadBlock(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	blocks, err := e.meta.OwnerBlocks(req.lo, req.hi)
	if err != nil {
		return response{status: StatusInvalid}
	}
	rectDims := grid.RectDims(req.lo, req.hi)
	out := make([]float64, grid.RectSize(req.lo, req.hi))
	for _, b := range blocks {
		sub := &request{op: "read_block_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi}
		var r response
		if b.Proc == proc {
			r = m.doReadBlockLocal(proc, sub)
		} else {
			r = m.send(proc, b.Proc, sub)
		}
		if r.status != StatusOK {
			return response{status: r.status}
		}
		copyRuns(true, out, r.vals, b, req.lo, rectDims)
	}
	return response{status: StatusOK, vals: out}
}

func (m *Manager) doReadBlockLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil {
		return response{status: StatusError}
	}
	vals, err := e.section.ReadBlock(req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing)
	if err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK, vals: vals}
}

// doWriteBlock is the bulk-write coordinator: it scatters the dense
// row-major buffer into per-owner sub-blocks and issues one
// write_block_local request per owner.
func (m *Manager) doWriteBlock(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	blocks, err := e.meta.OwnerBlocks(req.lo, req.hi)
	if err != nil {
		return response{status: StatusInvalid}
	}
	rectDims := grid.RectDims(req.lo, req.hi)
	if len(req.vals) != grid.RectSize(req.lo, req.hi) {
		return response{status: StatusInvalid}
	}
	for _, b := range blocks {
		vals := make([]float64, grid.RectSize(b.GlobalLo, b.GlobalHi))
		copyRuns(false, req.vals, vals, b, req.lo, rectDims)
		sub := &request{op: "write_block_local", id: req.id, lo: b.LocalLo, hi: b.LocalHi, vals: vals}
		var r response
		if b.Proc == proc {
			r = m.doWriteBlockLocal(proc, sub)
		} else {
			r = m.send(proc, b.Proc, sub)
		}
		if r.status != StatusOK {
			return response{status: r.status}
		}
	}
	return response{status: StatusOK}
}

func (m *Manager) doWriteBlockLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil {
		return response{status: StatusError}
	}
	if err := e.section.WriteBlock(req.vals, req.lo, req.hi, e.meta.LocalDims, e.meta.Borders, e.meta.Indexing); err != nil {
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK}
}

func (m *Manager) doFindLocal(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if e.section == nil {
		// find_local requires a local view: only processors holding a
		// section may ask (§5.1.4).
		return response{status: StatusNotFound}
	}
	return response{status: StatusOK, section: e.section}
}

func (m *Manager) doFindInfo(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	meta := e.meta
	var out any
	switch req.which {
	case "type":
		out = meta.Type.String()
	case "dimensions":
		out = append([]int(nil), meta.Dims...)
	case "processors":
		out = append([]int(nil), meta.Procs...)
	case "grid_dimensions":
		out = append([]int(nil), meta.GridDims...)
	case "local_dimensions":
		out = append([]int(nil), meta.LocalDims...)
	case "borders":
		out = append([]int(nil), meta.Borders...)
	case "local_dimensions_plus":
		out = append([]int(nil), meta.LocalDimsPlus...)
	case "indexing_type":
		out = meta.Indexing.String()
	case "grid_indexing_type":
		out = meta.GridIndexing.String()
	case "meta":
		out = meta.Clone() // full metadata, a convenience beyond the paper
	default:
		return response{status: StatusInvalid}
	}
	return response{status: StatusOK, info: out}
}

func (m *Manager) doVerify(proc int, req *request) response {
	e, st := m.lookup(proc, req.id)
	if st != StatusOK {
		return response{status: st}
	}
	meta := e.meta
	if req.ndims != meta.NDims() {
		return response{status: StatusInvalid}
	}
	if req.indexing != meta.Indexing {
		// The indexing type cannot be corrected by reallocation; a
		// mismatch is an invalid request (§4.2.7's third example).
		return response{status: StatusInvalid}
	}
	expected, bst := m.resolveBorders(req.borders, meta.NDims())
	if bst != StatusOK {
		return response{status: bst}
	}
	if darray.EqualInts(expected, meta.Borders) {
		return response{status: StatusOK}
	}
	// Mismatch: reallocate every local section with the expected borders,
	// copying interior data, and update metadata everywhere an entry
	// exists (section holders + creator + this coordinator).
	targets := map[int]bool{proc: true, req.id.Proc: true}
	for _, p := range meta.SectionProcs() {
		targets[p] = true
	}
	for p := range targets {
		r := m.send(proc, p, &request{op: "copy_local", id: req.id, meta: nil, gidx: expected})
		if r.status != StatusOK {
			return response{status: r.status}
		}
	}
	return response{status: StatusOK}
}

// doCopyLocal reallocates this processor's local section with new borders
// (carried in req.gidx), copies interior data, and updates the local
// metadata copy.
func (m *Manager) doCopyLocal(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	newBorders := req.gidx
	plus, err := darray.DimsPlus(e.meta.LocalDims, newBorders)
	if err != nil {
		return response{status: StatusInvalid}
	}
	if e.section != nil {
		fresh := darray.NewSection(e.meta.Type, grid.Size(plus))
		if err := darray.CopyInterior(fresh, e.section, e.meta.LocalDims, newBorders, e.meta.Borders, e.meta.Indexing); err != nil {
			return response{status: StatusError}
		}
		e.section = fresh
	}
	e.meta.Borders = append([]int(nil), newBorders...)
	e.meta.LocalDimsPlus = plus
	return response{status: StatusOK}
}

func (m *Manager) doUpdateMeta(proc int, req *request) response {
	srv := m.servers[proc]
	srv.mu.Lock()
	defer srv.mu.Unlock()
	e, ok := srv.entries[req.id]
	if !ok || e.freed {
		return response{status: StatusNotFound}
	}
	e.meta = req.meta.Clone()
	return response{status: StatusOK}
}

// --- public API (the operations of §3.2.1.5, invoked on a processor) ---

// CreateArray services a create_array request made on processor onProc and
// returns the new array's globally unique ID.
func (m *Manager) CreateArray(onProc int, spec CreateSpec) (darray.ID, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return darray.ID{}, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "create_array", spec: &spec})
	if r.status != StatusOK {
		return darray.ID{}, r.status
	}
	return r.info.(darray.ID), StatusOK
}

// FreeArray deletes the array and frees all its local sections.
func (m *Manager) FreeArray(onProc int, id darray.ID) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{op: "free_array", id: id}).status
}

// ReadElement reads one element by its global indices.
func (m *Manager) ReadElement(onProc int, id darray.ID, indices []int) (float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return 0, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "read_element", id: id, gidx: indices})
	return r.val, r.status
}

// WriteElement writes one element by its global indices.
func (m *Manager) WriteElement(onProc int, id darray.ID, indices []int, v float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{op: "write_element", id: id, gidx: indices, val: v}).status
}

// ReadBlock reads the global rectangle [lo, hi) (half-open per dimension)
// into a dense buffer linearized row-major over the rectangle. The
// transfer is split by owning processor: one message per remote owner,
// regardless of the rectangle's element count.
func (m *Manager) ReadBlock(onProc int, id darray.ID, lo, hi []int) ([]float64, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "read_block", id: id, lo: lo, hi: hi})
	return r.vals, r.status
}

// WriteBlock writes a dense row-major buffer into the global rectangle
// [lo, hi), issuing one message per remote owning processor.
func (m *Manager) WriteBlock(onProc int, id darray.ID, lo, hi []int, vals []float64) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{op: "write_block", id: id, lo: lo, hi: hi, vals: vals}).status
}

// FindLocal returns the local section of the array on onProc in a form
// suitable for passing to a data-parallel program. Only processors holding
// a section may call it.
func (m *Manager) FindLocal(onProc int, id darray.ID) (*darray.Section, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "find_local", id: id})
	return r.section, r.status
}

// FindInfo returns information about the array; which is one of the §4.2.6
// selector strings ("type", "dimensions", "processors", "grid_dimensions",
// "local_dimensions", "borders", "local_dimensions_plus", "indexing_type",
// "grid_indexing_type") or "meta" for the full metadata.
func (m *Manager) FindInfo(onProc int, id darray.ID, which string) (any, Status) {
	if m.machine.CheckProc(onProc) != nil {
		return nil, StatusInvalid
	}
	r := m.send(onProc, onProc, &request{op: "find_info", id: id, which: which})
	return r.info, r.status
}

// Meta returns the full metadata of an array (convenience wrapper over
// FindInfo("meta")).
func (m *Manager) Meta(onProc int, id darray.ID) (*darray.Meta, Status) {
	info, st := m.FindInfo(onProc, id, "meta")
	if st != StatusOK {
		return nil, st
	}
	return info.(*darray.Meta), StatusOK
}

// VerifyArray verifies that the array has the given indexing type and
// borders, reallocating and copying local sections if the borders differ
// (§4.2.7).
func (m *Manager) VerifyArray(onProc int, id darray.ID, ndims int, borders BorderSpec, indexing grid.Indexing) Status {
	if m.machine.CheckProc(onProc) != nil {
		return StatusInvalid
	}
	return m.send(onProc, onProc, &request{
		op: "verify_array", id: id, ndims: ndims, borders: borders, indexing: indexing,
	}).status
}
