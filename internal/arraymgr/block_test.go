package arraymgr

import (
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
)

// TestBlockElementEquivalence writes through the bulk path and reads back
// per element (and vice versa): the two data planes must agree exactly.
func TestBlockElementEquivalence(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))

	lo, hi := []int{0, 0}, []int{4, 4}
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i * i)
	}
	if st := m.WriteBlock(0, id, lo, hi, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v, st := m.ReadElement(0, id, []int{i, j})
			if st != StatusOK {
				t.Fatalf("ReadElement(%d,%d): %v", i, j, st)
			}
			if want := vals[i*4+j]; v != want {
				t.Fatalf("element (%d,%d) = %v, want %v", i, j, v, want)
			}
		}
	}

	// Per-element writes, bulk sub-rectangle read.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if st := m.WriteElement(0, id, []int{i, j}, float64(10*i+j)); st != StatusOK {
				t.Fatalf("WriteElement: %v", st)
			}
		}
	}
	sub, st := m.ReadBlock(0, id, []int{1, 1}, []int{3, 4})
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	k := 0
	for i := 1; i < 3; i++ {
		for j := 1; j < 4; j++ {
			if want := float64(10*i + j); sub[k] != want {
				t.Fatalf("block[%d] (element %d,%d) = %v, want %v", k, i, j, sub[k], want)
			}
			k++
		}
	}
}

// TestBlockOneMessagePerOwner verifies the bulk data plane's message
// budget: a block transfer issues exactly one coordinator request plus one
// request per remote owning processor, independent of element count.
func TestBlockOneMessagePerOwner(t *testing.T) {
	machine, m := newTestManager(t, 4)
	spec := basicSpec(4)
	spec.Dims = []int{32, 32} // 1024 elements over a 2x2 grid
	id := mustCreate(t, m, 0, spec)

	lo, hi := []int{0, 0}, []int{32, 32}
	owners := 4
	remote := owners - 1 // processor 0 holds a section and coordinates

	before := machine.Router().Sent()
	if _, st := m.ReadBlock(0, id, lo, hi); st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	got := machine.Router().Sent() - before
	if want := uint64(1 + remote); got != want {
		t.Fatalf("ReadBlock of 1024 elements sent %d messages, want %d", got, want)
	}

	before = machine.Router().Sent()
	if st := m.WriteBlock(0, id, lo, hi, make([]float64, 1024)); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	got = machine.Router().Sent() - before
	if want := uint64(1 + remote); got != want {
		t.Fatalf("WriteBlock of 1024 elements sent %d messages, want %d", got, want)
	}
}

func TestBlockErrors(t *testing.T) {
	_, m := newTestManager(t, 4)
	id := mustCreate(t, m, 0, basicSpec(4))

	if _, st := m.ReadBlock(0, id, []int{0, 0}, []int{5, 4}); st != StatusInvalid {
		t.Fatalf("out-of-range rectangle: %v", st)
	}
	if _, st := m.ReadBlock(0, id, []int{2, 2}, []int{2, 4}); st != StatusInvalid {
		t.Fatalf("empty rectangle: %v", st)
	}
	if st := m.WriteBlock(0, id, []int{0, 0}, []int{2, 2}, []float64{1}); st != StatusInvalid {
		t.Fatalf("short buffer: %v", st)
	}
	if _, st := m.ReadBlock(7, id, []int{0, 0}, []int{4, 4}); st != StatusInvalid {
		t.Fatalf("bad processor: %v", st)
	}
	if st := m.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if _, st := m.ReadBlock(0, id, []int{0, 0}, []int{4, 4}); st != StatusNotFound {
		t.Fatalf("freed array read: %v", st)
	}
	if st := m.WriteBlock(0, id, []int{0, 0}, []int{4, 4}, make([]float64, 16)); st != StatusNotFound {
		t.Fatalf("freed array write: %v", st)
	}
}

// TestBlockWithBordersAndIndexing runs the bulk path over bordered
// column-major arrays: storage displacement must not leak into the global
// view.
func TestBlockWithBordersAndIndexing(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		_, m := newTestManager(t, 4)
		spec := CreateSpec{
			Type:     darray.Double,
			Dims:     []int{6, 4},
			Procs:    []int{0, 1, 2, 3},
			Distrib:  []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)},
			Borders:  ExplicitBorders{1, 2, 2, 1},
			Indexing: ix,
		}
		id := mustCreate(t, m, 0, spec)
		vals := make([]float64, 24)
		for i := range vals {
			vals[i] = float64(i + 1)
		}
		if st := m.WriteBlock(0, id, []int{0, 0}, []int{6, 4}, vals); st != StatusOK {
			t.Fatalf("%v: WriteBlock: %v", ix, st)
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				v, st := m.ReadElement(0, id, []int{i, j})
				if st != StatusOK {
					t.Fatalf("%v: ReadElement: %v", ix, st)
				}
				if want := vals[i*4+j]; v != want {
					t.Fatalf("%v: element (%d,%d) = %v, want %v", ix, i, j, v, want)
				}
			}
		}
		got, st := m.ReadBlock(0, id, []int{0, 0}, []int{6, 4})
		if st != StatusOK {
			t.Fatalf("%v: ReadBlock: %v", ix, st)
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("%v: ReadBlock[%d] = %v, want %v", ix, i, got[i], vals[i])
			}
		}
	}
}
