package arraymgr

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
)

// distSpec builds a 1-D CreateSpec of n elements over p processors.
func distSpec(n, p int, d grid.Decomp, typ darray.ElemType) CreateSpec {
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	return CreateSpec{
		Type: typ, Dims: []int{n}, Procs: procs,
		Distrib: []grid.Decomp{d},
		Borders: NoBorderSpec{}, Indexing: grid.RowMajor,
	}
}

// TestRedistributeOracle drives the redistribution plane against the
// gather-then-scatter reference it replaces: for all nine ordered pairs
// of {block, cyclic, block_cyclic(3)} over an uneven extent, plus 2-D
// mixed-dimension and Int↔Double cases, Redistribute must leave the
// destination exactly as a ReadBlock+WriteBlock bounce leaves its twin.
func TestRedistributeOracle(t *testing.T) {
	const p, n = 4, 29
	kinds := map[string]grid.Decomp{
		"block":       grid.BlockDefault(),
		"cyclic":      grid.CyclicDefault(),
		"blockcyclic": grid.BlockCyclicOf(3),
	}
	for sname, sd := range kinds {
		for dname, dd := range kinds {
			t.Run(fmt.Sprintf("%s->%s", sname, dname), func(t *testing.T) {
				_, m := newTestManager(t, p)
				src := mustCreate(t, m, 0, distSpec(n, p, sd, darray.Double))
				direct := mustCreate(t, m, 0, distSpec(n, p, dd, darray.Double))
				bounce := mustCreate(t, m, 0, distSpec(n, p, dd, darray.Double))
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = float64(3*i + 1)
				}
				sentinel := make([]float64, n)
				for i := range sentinel {
					sentinel[i] = -5
				}
				if st := m.WriteBlock(0, src, []int{0}, []int{n}, vals); st != StatusOK {
					t.Fatalf("fill src: %v", st)
				}
				rng := rand.New(rand.NewSource(41))
				for trial := 0; trial < 8; trial++ {
					for _, id := range []darray.ID{direct, bounce} {
						if st := m.WriteBlock(0, id, []int{0}, []int{n}, sentinel); st != StatusOK {
							t.Fatalf("reset: %v", st)
						}
					}
					lo, hi, step := randomRect(rng, []int{n})
					onProc := rng.Intn(p)
					if unitStep(step) {
						if st := m.Redistribute(onProc, direct, src, lo, hi); st != StatusOK {
							t.Fatalf("Redistribute[%v,%v) on %d: %v", lo, hi, onProc, st)
						}
						buf, st := m.ReadBlock(onProc, src, lo, hi)
						if st != StatusOK {
							t.Fatalf("reference read: %v", st)
						}
						if st := m.WriteBlock(onProc, bounce, lo, hi, buf); st != StatusOK {
							t.Fatalf("reference write: %v", st)
						}
					} else {
						if st := m.RedistributeStrided(onProc, direct, src, lo, hi, step); st != StatusOK {
							t.Fatalf("RedistributeStrided[%v,%v,%v) on %d: %v", lo, hi, step, onProc, st)
						}
						buf, st := m.ReadBlockStrided(onProc, src, lo, hi, step)
						if st != StatusOK {
							t.Fatalf("reference read: %v", st)
						}
						if st := m.WriteBlockStrided(onProc, bounce, lo, hi, step, buf); st != StatusOK {
							t.Fatalf("reference write: %v", st)
						}
					}
					got, st := m.ReadBlock(0, direct, []int{0}, []int{n})
					if st != StatusOK {
						t.Fatalf("read direct: %v", st)
					}
					want, st := m.ReadBlock(0, bounce, []int{0}, []int{n})
					if st != StatusOK {
						t.Fatalf("read bounce: %v", st)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d rect [%v,%v) step %v: element %d = %v, want %v",
								trial, lo, hi, step, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestRedistributeOracle2D covers rank-2 mixed-dimension pairs (the
// distributed dimension changing sides) and element-type conversion.
func TestRedistributeOracle2D(t *testing.T) {
	const p = 4
	dims := []int{12, 10}
	procs := []int{0, 1, 2, 3}
	cases := []struct {
		name     string
		src, dst CreateSpec
	}{
		{"rows-block->cols-cyclic",
			CreateSpec{Type: darray.Double, Dims: dims, Procs: procs,
				Distrib: []grid.Decomp{grid.BlockOf(4), grid.NoDecomp()},
				Borders: NoBorderSpec{}, Indexing: grid.RowMajor},
			CreateSpec{Type: darray.Double, Dims: dims, Procs: procs,
				Distrib: []grid.Decomp{grid.NoDecomp(), grid.CyclicOf(4)},
				Borders: NoBorderSpec{}, Indexing: grid.RowMajor}},
		{"blockcyclic->block/int",
			CreateSpec{Type: darray.Double, Dims: dims, Procs: procs,
				Distrib: []grid.Decomp{grid.BlockCyclicOfN(2, 2), grid.BlockOf(2)},
				Borders: NoBorderSpec{}, Indexing: grid.RowMajor},
			CreateSpec{Type: darray.Int, Dims: dims, Procs: procs,
				Distrib: []grid.Decomp{grid.BlockOf(2), grid.BlockOf(2)},
				Borders: ExplicitBorders{1, 1, 0, 1}, Indexing: grid.ColMajor}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, m := newTestManager(t, p)
			src := mustCreate(t, m, 0, tc.src)
			direct := mustCreate(t, m, 0, tc.dst)
			bounce := mustCreate(t, m, 0, tc.dst)
			size := grid.Size(dims)
			vals := make([]float64, size)
			for i := range vals {
				vals[i] = float64(i) + 0.25 // fraction exercises Int truncation
			}
			lo0 := []int{0, 0}
			if st := m.WriteBlock(0, src, lo0, dims, vals); st != StatusOK {
				t.Fatalf("fill src: %v", st)
			}
			rng := rand.New(rand.NewSource(43))
			for trial := 0; trial < 8; trial++ {
				lo, hi, step := randomRect(rng, dims)
				if unitStep(step) {
					step = nil
				}
				if st := m.RedistributeStrided(0, direct, src, lo, hi, orUnit(step, len(lo))); st != StatusOK {
					t.Fatalf("RedistributeStrided: %v", st)
				}
				buf, st := m.ReadBlockStrided(0, src, lo, hi, orUnit(step, len(lo)))
				if st != StatusOK {
					t.Fatalf("reference read: %v", st)
				}
				if st := m.WriteBlockStrided(0, bounce, lo, hi, orUnit(step, len(lo)), buf); st != StatusOK {
					t.Fatalf("reference write: %v", st)
				}
				got, st := m.ReadBlock(0, direct, lo0, dims)
				if st != StatusOK {
					t.Fatalf("read direct: %v", st)
				}
				want, st := m.ReadBlock(0, bounce, lo0, dims)
				if st != StatusOK {
					t.Fatalf("read bounce: %v", st)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d rect [%v,%v) step %v: element %d = %v, want %v",
							trial, lo, hi, step, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// orUnit returns step, or a unit step of rank n when step is nil.
func orUnit(step []int, n int) []int {
	if step != nil {
		return step
	}
	u := make([]int, n)
	for i := range u {
		u[i] = 1
	}
	return u
}

// TestRedistributeRectOrigins pins the offset variant: a panel lands at
// a different origin in the destination array.
func TestRedistributeRectOrigins(t *testing.T) {
	const p, n = 4, 16
	_, m := newTestManager(t, p)
	src := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	dst := mustCreate(t, m, 0, distSpec(n, p, grid.CyclicDefault(), darray.Double))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if st := m.WriteBlock(0, src, []int{0}, []int{n}, vals); st != StatusOK {
		t.Fatalf("fill: %v", st)
	}
	if st := m.RedistributeRect(0, dst, src, []int{10}, []int{2}, []int{5}); st != StatusOK {
		t.Fatalf("RedistributeRect: %v", st)
	}
	got, st := m.ReadBlock(0, dst, []int{10}, []int{15})
	if st != StatusOK {
		t.Fatalf("read: %v", st)
	}
	for i := 0; i < 5; i++ {
		if got[i] != float64(2+i+1) {
			t.Fatalf("dst[%d] = %v, want %v", 10+i, got[i], float64(2+i+1))
		}
	}
}

// TestRedistributeMessageBudget pins the direct plane's message count:
// 1 coordinator self-send, plus one redist_src per remote source owner,
// plus one redist_ship per cross-process owner pair — and nothing else.
// The bounce reference on the same transfer is strictly worse.
func TestRedistributeMessageBudget(t *testing.T) {
	const p, n = 4, 16
	machine, m := newTestManager(t, p)
	src := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	dst := mustCreate(t, m, 0, distSpec(n, p, grid.CyclicDefault(), darray.Double))
	vals := make([]float64, n)
	if st := m.WriteBlock(0, src, []int{0}, []int{n}, vals); st != StatusOK {
		t.Fatalf("fill: %v", st)
	}

	// Whole array, block→cyclic: every one of the 16 (src,dst) owner
	// pairs is non-empty; 4 pairs are same-process. Budget:
	// 1 (API) + 3 (remote src owners) + 12 (cross pairs) = 16.
	before := machine.Router().Sent()
	if st := m.Redistribute(0, dst, src, []int{0}, []int{n}); st != StatusOK {
		t.Fatalf("Redistribute: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+3+12); got != want {
		t.Errorf("block->cyclic whole-array redistribute sent %d messages, want %d", got, want)
	}

	// Step 2: lattice {0,2,...,14}. Each source owner holds two points,
	// landing on destination owners 0 and 2 only: 8 pairs, 2 of them
	// same-process. Budget: 1 + 3 + 6 = 10.
	before = machine.Router().Sent()
	if st := m.RedistributeStrided(0, dst, src, []int{0}, []int{n}, []int{2}); st != StatusOK {
		t.Fatalf("RedistributeStrided: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+3+6); got != want {
		t.Errorf("strided redistribute sent %d messages, want %d (skipped owners must stay uncontacted)", got, want)
	}

	// The bounce on the same whole-array transfer: a read round (1
	// coordinator + 3 remote owners) plus a write round (1 + 3) = 8
	// messages against 16 — but serialized through one process and
	// carrying every byte twice. On the panel shapes of E26 the direct
	// plane wins on messages too; here we only pin that the budget
	// formula holds exactly.
	before = machine.Router().Sent()
	buf, st := m.ReadBlock(0, src, []int{0}, []int{n})
	if st != StatusOK {
		t.Fatalf("bounce read: %v", st)
	}
	if st := m.WriteBlock(0, dst, []int{0}, []int{n}, buf); st != StatusOK {
		t.Fatalf("bounce write: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64((1+3)+(1+3)); got != want {
		t.Errorf("bounce sent %d messages, want %d", got, want)
	}
}

// TestRedistributeLocalFastPath pins the wholly-local zero-copy path:
// when both rectangles live on the requesting processor the transfer
// sends no message and performs no heap allocation.
func TestRedistributeLocalFastPath(t *testing.T) {
	const p, n = 4, 16
	machine, m := newTestManager(t, p)
	src := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	dst := mustCreate(t, m, 0, distSpec(n, p, grid.BlockCyclicOf(2), darray.Double))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if st := m.WriteBlock(0, src, []int{0}, []int{n}, vals); st != StatusOK {
		t.Fatalf("fill: %v", st)
	}
	// Proc 0 owns src globals [0,4) (block) and dst globals [0,2)
	// (first width-2 cycle block).
	lo, hi := []int{0}, []int{2}
	if st := m.Redistribute(0, dst, src, lo, hi); st != StatusOK {
		t.Fatalf("warm-up Redistribute: %v", st)
	}
	before := machine.Router().Sent()
	allocs := testing.AllocsPerRun(200, func() {
		if st := m.Redistribute(0, dst, src, lo, hi); st != StatusOK {
			t.Errorf("Redistribute: %v", st)
		}
	})
	if allocs != 0 {
		t.Errorf("wholly-local redistribute: %v allocs/op, want 0", allocs)
	}
	if sent := machine.Router().Sent() - before; sent != 0 {
		t.Errorf("wholly-local redistribute sent %d messages, want 0", sent)
	}
	got, st := m.ReadBlock(0, dst, lo, hi)
	if st != StatusOK {
		t.Fatalf("read: %v", st)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("dst[0:2] = %v, want [1 2]", got)
	}
}

// TestRedistOwnerServerAllocs pins the redistribution owner servers at
// zero heap allocations per operation once the pools are warm: landing
// a shipped piece (doRedistShip) and servicing a same-process pair
// (doRedistSrc via redistLocalPair).
func TestRedistOwnerServerAllocs(t *testing.T) {
	const p, n = 4, 16
	_, m := newTestManager(t, p)
	src := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	dst := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	vals := make([]float64, n)
	if st := m.WriteBlock(0, src, []int{0}, []int{n}, vals); st != StatusOK {
		t.Fatalf("fill: %v", st)
	}
	srv := m.servers[0]
	ack := make(chan response, 1)
	lo, hi := []int{0}, []int{4}

	ship := func() {
		req := getShipReq()
		buf := srv.getBuf(4)
		*req = request{op: "redist_ship", id: dst, lo: lo, hi: hi, vals: buf, node: 0, ack: ack}
		m.doRedistShip(0, req)
		if r := <-ack; r.status != StatusOK {
			t.Errorf("doRedistShip: %v", r.status)
		}
	}
	for i := 0; i < 3; i++ { // warm the pools
		ship()
	}
	if allocs := testing.AllocsPerRun(200, ship); allocs != 0 {
		t.Errorf("doRedistShip: %v allocs/op, want 0 (pooled)", allocs)
	}

	// A same-process pair serviced by the source-owner routine: the
	// request is caller-owned (doRedistSrc only pools what it creates),
	// so one request drives every iteration.
	pairReq := &request{id: src, id2: dst,
		ships: []redistShip{{dstProc: 0, srcLo: lo, srcHi: hi, dstLo: lo, dstHi: hi}},
		ack:   ack}
	local := func() {
		m.doRedistSrc(0, pairReq)
		if r := <-ack; r.status != StatusOK {
			t.Errorf("doRedistSrc: %v", r.status)
		}
	}
	for i := 0; i < 3; i++ {
		local()
	}
	if allocs := testing.AllocsPerRun(200, local); allocs != 0 {
		t.Errorf("same-process doRedistSrc pair: %v allocs/op, want 0", allocs)
	}
}

// TestRedistributeErrors pins the failure statuses of the coordinator.
func TestRedistributeErrors(t *testing.T) {
	const p, n = 4, 16
	_, m := newTestManager(t, p)
	src := mustCreate(t, m, 0, distSpec(n, p, grid.BlockDefault(), darray.Double))
	dst := mustCreate(t, m, 0, distSpec(n, p, grid.CyclicDefault(), darray.Double))

	if st := m.Redistribute(0, src, src, []int{0}, []int{4}); st != StatusInvalid {
		t.Errorf("aliasing redistribute: %v, want STATUS_INVALID", st)
	}
	if st := m.Redistribute(0, dst, src, []int{0}, []int{n + 1}); st != StatusInvalid {
		t.Errorf("out-of-bounds rectangle: %v, want STATUS_INVALID", st)
	}
	if st := m.Redistribute(0, dst, src, []int{0, 0}, []int{4, 4}); st != StatusInvalid {
		t.Errorf("rank mismatch: %v, want STATUS_INVALID", st)
	}
	if st := m.RedistributeStrided(0, dst, src, []int{0}, []int{n}, []int{0}); st != StatusInvalid {
		t.Errorf("zero step: %v, want STATUS_INVALID", st)
	}
	if st := m.FreeArray(0, src); st != StatusOK {
		t.Fatalf("free: %v", st)
	}
	if st := m.Redistribute(0, dst, src, []int{0}, []int{4}); st != StatusNotFound {
		t.Errorf("redistribute from freed array: %v, want STATUS_NOT_FOUND", st)
	}
}
