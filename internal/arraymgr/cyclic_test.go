package arraymgr

import (
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
)

// cyclicSpec distributes n elements cyclically over p processors.
func cyclicSpec(n, p int) CreateSpec {
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	return CreateSpec{
		Type: darray.Double, Dims: []int{n}, Procs: procs,
		Distrib: []grid.Decomp{grid.CyclicDefault()},
		Borders: NoBorderSpec{}, Indexing: grid.RowMajor,
	}
}

// TestCyclicMessageBudget pins the cyclic coordinators' message budget:
// rectangle transfers on a cyclic array still cost one coordinator request
// plus one request per remote owning processor, independent of element
// count, and owners the stride skips are never contacted.
func TestCyclicMessageBudget(t *testing.T) {
	const p, n = 4, 32
	machine, m := newTestManager(t, p)
	id := mustCreate(t, m, 0, cyclicSpec(n, p))

	lo, hi := []int{0}, []int{n}
	vals := make([]float64, n)

	before := machine.Router().Sent()
	if st := m.WriteBlock(0, id, lo, hi, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+(p-1)); got != want {
		t.Errorf("cyclic WriteBlock sent %d messages, want %d", got, want)
	}

	before = machine.Router().Sent()
	if _, st := m.ReadBlock(0, id, lo, hi); st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+(p-1)); got != want {
		t.Errorf("cyclic ReadBlock sent %d messages, want %d", got, want)
	}

	// Step 2 on a cyclic dimension over 4 processors touches only the
	// even-slot owners: processor 0 (local) and processor 2 (remote).
	before = machine.Router().Sent()
	if _, st := m.ReadBlockStrided(0, id, lo, hi, []int{2}); st != StatusOK {
		t.Fatalf("ReadBlockStrided: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+1); got != want {
		t.Errorf("cyclic strided read sent %d messages, want %d (skipped owners must stay uncontacted)", got, want)
	}

	// Indexed gather of elements all owned by one remote processor: one
	// coordinator request plus one owner request.
	indices := [][]int{{1}, {5}, {9}}
	before = machine.Router().Sent()
	if _, st := m.GatherElements(0, id, indices); st != StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	if got, want := machine.Router().Sent()-before, uint64(1+1); got != want {
		t.Errorf("cyclic gather sent %d messages, want %d", got, want)
	}
}

// TestCyclicLocalFastPath pins the router-free fast path on block-cyclic
// arrays: a rectangle inside a single owned cycle block moves with zero
// messages and zero heap allocations, including the cell's second and
// later blocks (where local and global origins differ).
func TestCyclicLocalFastPath(t *testing.T) {
	const p, n = 2, 16
	machine, m := newTestManager(t, p)
	spec := cyclicSpec(n, p)
	spec.Distrib = []grid.Decomp{grid.BlockCyclicOf(4)}
	id := mustCreate(t, m, 0, spec)

	// Processor 0 owns cycle blocks 0 and 2: global [0,4) and [8,12).
	buf := make([]float64, 4)
	for i := range buf {
		buf[i] = float64(i + 1)
	}
	for _, r := range [][2][]int{
		{[]int{0}, []int{4}},  // first owned block
		{[]int{8}, []int{12}}, // second owned block: local origin 4
	} {
		lo, hi := r[0], r[1]
		if st := m.WriteBlock(0, id, lo, hi, buf); st != StatusOK {
			t.Fatalf("warm-up WriteBlock[%v,%v): %v", lo, hi, st)
		}
		before := machine.Router().Sent()
		writeAllocs := testing.AllocsPerRun(200, func() {
			if st := m.WriteBlock(0, id, lo, hi, buf); st != StatusOK {
				t.Errorf("WriteBlock: %v", st)
			}
		})
		readAllocs := testing.AllocsPerRun(200, func() {
			if st := m.ReadBlockInto(0, id, lo, hi, buf); st != StatusOK {
				t.Errorf("ReadBlockInto: %v", st)
			}
		})
		if writeAllocs != 0 {
			t.Errorf("local WriteBlock[%v,%v): %v allocs/op, want 0", lo, hi, writeAllocs)
		}
		if readAllocs != 0 {
			t.Errorf("local ReadBlockInto[%v,%v): %v allocs/op, want 0", lo, hi, readAllocs)
		}
		if sent := machine.Router().Sent() - before; sent != 0 {
			t.Errorf("local fast path on [%v,%v) sent %d messages, want 0", lo, hi, sent)
		}
	}

	// A rectangle spanning two cycle blocks crosses owners: the fast path
	// must decline and the coordinator must still produce the right data.
	span := make([]float64, 8)
	before := machine.Router().Sent()
	if st := m.ReadBlockInto(0, id, []int{0}, []int{8}, span); st != StatusOK {
		t.Fatalf("spanning ReadBlockInto: %v", st)
	}
	if sent := machine.Router().Sent() - before; sent == 0 {
		t.Error("owner-spanning rectangle sent no messages; fast path must decline")
	}
	for i := 0; i < 4; i++ {
		if span[i] != buf[i] {
			t.Errorf("span[%d] = %v, want %v", i, span[i], buf[i])
		}
	}
}

// TestCyclicOwnerServerAllocs pins the owner-side routine the cyclic
// rectangle coordinators lean on: servicing one owner's offset set of a
// cyclic lattice split stays at zero heap allocations per request once the
// reply pool is warm.
func TestCyclicOwnerServerAllocs(t *testing.T) {
	const p, n = 4, 32
	_, m := newTestManager(t, p)
	id := mustCreate(t, m, 0, cyclicSpec(n, p))
	meta, st := m.Meta(0, id)
	if st != StatusOK {
		t.Fatalf("Meta: %v", st)
	}
	sets, err := meta.OwnerLattice([]int{0}, []int{n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var local *darray.OwnerIndexSet
	for i := range sets {
		if sets[i].Proc == 0 {
			local = &sets[i]
		}
	}
	if local == nil {
		t.Fatal("no local owner set")
	}
	req := &request{id: id, offs: local.Offs}
	srv := m.servers[0]
	for i := 0; i < 3; i++ { // warm the reply pool
		r := m.doReadVectorLocal(0, req)
		if r.status != StatusOK {
			t.Fatalf("doReadVectorLocal: %v", r.status)
		}
		srv.putBuf(r.vals)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r := m.doReadVectorLocal(0, req)
		if r.status != StatusOK {
			t.Errorf("doReadVectorLocal: %v", r.status)
		}
		srv.putBuf(r.vals)
	})
	if allocs != 0 {
		t.Errorf("cyclic owner service: %v allocs/op, want 0 (pooled)", allocs)
	}
}

// TestCyclicSerialEquivalence keeps the serial ablation honest on the
// irregular path: owner-at-a-time reads of a cyclic array must return
// exactly what the concurrent coordinator returns.
func TestCyclicSerialEquivalence(t *testing.T) {
	const p, n = 4, 24
	_, m := newTestManager(t, p)
	id := mustCreate(t, m, 0, cyclicSpec(n, p))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(7*i + 3)
	}
	if st := m.WriteBlock(0, id, []int{0}, []int{n}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	lo, hi := []int{3}, []int{21}
	want, st := m.ReadBlock(0, id, lo, hi)
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	got, st := m.ReadBlockSerial(0, id, lo, hi)
	if st != StatusOK {
		t.Fatalf("ReadBlockSerial: %v", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serial[%d] = %v, concurrent %v", i, got[i], want[i])
		}
	}
}
