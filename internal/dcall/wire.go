// Cross-process distributed calls: when a call's processor group spans
// (or lives entirely in) another OS process, the caller cannot spawn
// wrapper goroutines there with Machine.Go. Instead it ships one spawn
// order per remote group member; a spawn server in the hosting process
// looks the program up in its own registry (both processes run the same
// binary, so registration is symmetric) and runs the standard wrapper.
// The combine tree is unchanged — wrapper-to-wrapper messages already
// travel over the router, which now spans processes — and only the
// merged result changes shape: a remote rank 0 sends it back as a
// kindResult message instead of defining the caller's local defval.
//
// Two parameter kinds cannot cross a process boundary, because they
// carry caller-side functions or variables: Reduce (a combine func and
// an output defval) and Options.StatusCombine. A remote call using
// either fails cleanly with StatusInvalid; everything the paper's
// climate and stencil drivers need — Const, Local, Index, Status —
// ships.
package dcall

import (
	"encoding/gob"

	"repro/internal/darray"
	"repro/internal/defval"
	"repro/internal/msg"
)

// kindSpawn carries spawn orders to remote group members; kindResult
// carries the merged tuple from a remote rank 0 back to the caller.
// (-100..-104 are the array manager's, -101 is kindCombine.)
const (
	kindSpawn  = -105
	kindResult = -106
)

func init() {
	gob.Register(&wireSpawn{})
	gob.Register(tuple{})
}

// wireParam is one shippable parameter: a global constant, a local
// section reference, the index parameter, or the status variable.
type wireParam struct {
	Kind  int // 0 const, 1 local, 2 index, 3 status
	Const any
	ID    darray.ID
}

// wireSpawn is one remote group member's spawn order.
type wireSpawn struct {
	Program    string
	Procs      []int
	Index      int
	CallID     uint64
	Params     []wireParam
	ResultProc int // rank 0 only: where the merged tuple goes
}

// wireParams converts a shippable parameter list; ok=false reports a
// parameter kind that cannot cross a process boundary.
func wireParams(params []Param) ([]wireParam, bool) {
	out := make([]wireParam, len(params))
	for i, prm := range params {
		switch q := prm.(type) {
		case constParam:
			out[i] = wireParam{Kind: 0, Const: q.v}
		case localParam:
			out[i] = wireParam{Kind: 1, ID: q.id}
		case indexParam:
			out[i] = wireParam{Kind: 2}
		case statusParam:
			out[i] = wireParam{Kind: 3}
		default:
			return nil, false
		}
	}
	return out, true
}

// params rebuilds the parameter list on the hosting side.
func (w *wireSpawn) params() []Param {
	out := make([]Param, len(w.Params))
	for i, p := range w.Params {
		switch p.Kind {
		case 0:
			out[i] = constParam{v: p.Const}
		case 1:
			out[i] = localParam{id: p.ID}
		case 2:
			out[i] = indexParam{}
		default:
			out[i] = statusParam{}
		}
	}
	return out
}

// SetCallBase offsets this runtime's call-id counter. Call ids salt the
// combine-tree and world message tags; each process draws from its own
// counter, so a cluster harness gives every part a disjoint base (say
// rank<<40) to keep concurrent calls from different parts untangled.
func (r *Runtime) SetCallBase(base uint64) { r.nextCall.Store(base + 1) }

// spawnServe is one processor's spawn server: it turns arriving spawn
// orders into wrapper runs. Started only on partitioned routers — an
// in-process machine spawns every wrapper directly.
func (r *Runtime) spawnServe(proc int) {
	router := r.Machine.Router()
	for {
		m, err := router.Recv(proc, func(mm msg.Message) bool {
			return mm.Tag.Class == msg.ClassTask && mm.Tag.Kind == kindSpawn
		})
		if err != nil {
			return // router closed (or this processor killed)
		}
		w, ok := m.Data.(*wireSpawn)
		if !ok {
			continue
		}
		r.Machine.Go(proc, func(proc int) {
			var body Program
			if p, ok := r.Lookup(w.Program); ok {
				body = p.Body
			}
			// A nil body (name not registered here) still runs the
			// wrapper: it contributes StatusInvalid to the combine tree
			// instead of hanging every peer rank.
			r.runWrapper(proc, w.Procs, w.Index, w.CallID, body, w.params(),
				defaultStatusCombine, nil, w.ResultProc)
		})
	}
}

// callRemote executes a distributed call whose group includes remote
// processors: spawn orders go to the remote members, local members run
// their wrappers directly, and the merged tuple arrives either in the
// local defval (local rank 0) or as a kindResult message (remote rank
// 0). program must be a registered name — an anonymous body cannot
// cross a process boundary.
func (r *Runtime) callRemote(caller int, groupProcs []int, program string,
	body Program, params []Param, opt Options) int {

	if program == "" || opt.StatusCombine != nil {
		return StatusInvalid
	}
	wps, ok := wireParams(params)
	if !ok {
		return StatusInvalid
	}
	router := r.Machine.Router()
	callID := r.nextCall.Add(1)

	// The merged tuple must arrive at a mailbox this process hosts. The
	// caller usually qualifies, but a program may name a remote caller
	// (climate's atmosphere call is issued "from" the atmosphere group's
	// first processor, which lives in another part): receive at any
	// locally hosted processor instead — the tag, not the mailbox,
	// identifies the call.
	resultProc := caller
	if !router.Local(resultProc) {
		resultProc = router.LocalProcs()[0]
	}

	rank0Local := router.Local(groupProcs[0])
	var result *defval.Var[tuple]
	if rank0Local {
		result = defval.New[tuple]()
	}
	spawnTag := msg.Tag{Class: msg.ClassTask, Call: callID, Kind: kindSpawn}
	for i := range groupProcs {
		i := i
		if router.Local(groupProcs[i]) {
			r.Machine.Go(groupProcs[i], func(proc int) {
				r.runWrapper(proc, groupProcs, i, callID, body, params,
					defaultStatusCombine, result, resultProc)
			})
			continue
		}
		w := &wireSpawn{Program: program, Procs: groupProcs, Index: i,
			CallID: callID, Params: wps, ResultProc: resultProc}
		if err := router.Send(caller, groupProcs[i], spawnTag, w); err != nil {
			// The group cannot assemble; peers that did spawn will fail
			// their combine receives when the router closes. Surface the
			// send failure rather than hanging.
			return StatusError
		}
	}
	if rank0Local {
		return result.Value().Status
	}
	resultTag := msg.Tag{Class: msg.ClassTask, Call: callID, Kind: kindResult}
	m, err := router.RecvFrom(resultProc, groupProcs[0], resultTag)
	if err != nil {
		return StatusError
	}
	t, ok := m.Data.(tuple)
	if !ok {
		return StatusError
	}
	return t.Status
}

// defaultStatusCombine is the paper's default status merge: max.
func defaultStatusCombine(a, b int) int {
	if a > b {
		return a
	}
	return b
}
