// Package dcall implements distributed calls (§3.3, §4.3, §5.2, §F of the
// paper): calling an SPMD data-parallel program from a task-parallel
// program, semantically equivalent to calling a sequential subprogram.
//
// A distributed call names a registered data-parallel program, the
// processors to run it on (a 1-dimensional array of processor numbers), and
// a parameter list. Executing the call:
//
//  1. creates one copy of the program on each named processor,
//  2. passes each copy its parameters — global constants (same value
//     everywhere, input only), local sections of distributed arrays
//     (resolved per processor via find_local, input/output), an index
//     variable (each copy's position in the processor array, input only),
//     at most one status variable (output), and any number of reduction
//     variables (output),
//  3. waits for all copies to complete,
//  4. merges the copies' status and reduction variables pairwise with
//     binary associative combine operators (default max for status) and
//     returns the merged values to the caller.
//
// The per-copy work of resolving local sections, allocating local
// status/reduction variables, running the program body and merging results
// is done by a generated "wrapper program" in the paper (§5.2.2); here the
// wrapper is the runWrapper function, constructed at runtime from the
// parameter specifications. The pairwise merge runs up a binomial tree in
// group-rank order, so any associative operator is acceptable, exactly as
// specified.
package dcall

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/defval"
	"repro/internal/msg"
	"repro/internal/spmd"
	"repro/internal/vp"
)

// Status codes returned by a distributed call mirror the array-manager
// codes (§4.1.2); called programs may return any int, merged with the
// status combine operator.
const (
	StatusOK       = int(arraymgr.StatusOK)
	StatusInvalid  = int(arraymgr.StatusInvalid)
	StatusNotFound = int(arraymgr.StatusNotFound)
	StatusError    = int(arraymgr.StatusError)
)

// Program is the body of a data-parallel SPMD program: each copy receives
// the call's communication world and its resolved argument list. Programs
// communicate with their peer copies only through w (§3.5's relocatability
// and communication-compatibility requirements are then satisfied by
// construction).
type Program func(w *spmd.World, a *Args)

// BorderFn supplies local-section border sizes for a parameter number, the
// paper's Program_ convention supporting the foreign_borders option
// (§3.2.1.3). ndims is the dimensionality of the array being created or
// verified.
type BorderFn func(parmNum, ndims int) ([]int, error)

// Registered is a program registered under a module:program-style name.
type Registered struct {
	Name    string
	Body    Program
	Borders BorderFn // optional
}

// Param is one parameter of a distributed call (§4.3.1).
type Param interface{ isParam() }

type constParam struct{ v any }
type localParam struct{ id darray.ID }
type indexParam struct{}
type statusParam struct{}
type reduceParam struct {
	length  int
	combine func(a, b []float64) []float64
	out     *defval.Var[[]float64]
}

func (constParam) isParam()  {}
func (localParam) isParam()  {}
func (indexParam) isParam()  {}
func (statusParam) isParam() {}
func (reduceParam) isParam() {}

// Const passes a global constant: every copy receives the same value,
// usable as input only.
func Const(v any) Param { return constParam{v: v} }

// Local passes the local section of the distributed array with the given
// ID: each copy receives its own section, usable as input and/or output.
// The array must be distributed over the call's processors.
func Local(id darray.ID) Param { return localParam{id: id} }

// Index passes an integer index: copy i receives i, its position in the
// call's processor array. Input only.
func Index() Param { return indexParam{} }

// Status declares the call's status variable: each copy gets a local
// status it may set; at termination the locals are merged (by default with
// max, or the operator given in Options.StatusCombine) into the call's
// returned status. At most one Status parameter is allowed.
func Status() Param { return statusParam{} }

// Reduce declares a reduction variable of the given length: each copy gets
// a local []float64 it fills; at termination the locals are merged pairwise
// in rank order with combine, and the result defines out.
func Reduce(length int, combine func(a, b []float64) []float64, out *defval.Var[[]float64]) Param {
	return reduceParam{length: length, combine: combine, out: out}
}

// Args is the resolved argument list one program copy receives. Accessors
// are positional, matching the call's parameter list.
type Args struct {
	specs []Param
	vals  []any
}

// Len returns the number of parameters.
func (a *Args) Len() int { return len(a.specs) }

// Const returns the value of the global-constant parameter at position i.
func (a *Args) Const(i int) any { return a.vals[i] }

// Int returns the global-constant parameter at position i as an int.
func (a *Args) Int(i int) int { return a.vals[i].(int) }

// Float returns the global-constant parameter at position i as a float64.
func (a *Args) Float(i int) float64 { return a.vals[i].(float64) }

// IntArray returns the global-constant parameter at position i as []int
// (e.g. the processor array the caller passed through, per §3.5).
func (a *Args) IntArray(i int) []int { return a.vals[i].([]int) }

// Section returns the local section at position i. The section is mutable:
// writes are visible to the task-parallel program after the call returns
// (Fig 3.3 data flow).
func (a *Args) Section(i int) *darray.Section { return a.vals[i].(*darray.Section) }

// Index returns the index parameter at position i.
func (a *Args) Index(i int) int { return a.vals[i].(int) }

// SetStatus assigns this copy's local status variable at position i.
func (a *Args) SetStatus(i, v int) { *(a.vals[i].(*int)) = v }

// Reduction returns this copy's local reduction variable at position i;
// the program fills it before returning.
func (a *Args) Reduction(i int) []float64 { return a.vals[i].([]float64) }

// Options adjusts a distributed call.
type Options struct {
	// StatusCombine merges two status values; nil means max (§4.3.1: "by
	// default max, but the user may provide a different operator").
	StatusCombine func(a, b int) int
}

// Runtime executes distributed calls against a machine and its array
// manager, and owns the program registry (the analogue of PCN's module
// loading, §B.2: linking data-parallel object code into the runtime).
type Runtime struct {
	Machine *vp.Machine
	AM      *arraymgr.Manager

	mu       sync.Mutex
	programs map[string]Registered
	nextCall atomic.Uint64
}

// NewRuntime creates a runtime and installs its registry as the array
// manager's border resolver, so foreign_borders array creation consults
// registered programs.
func NewRuntime(machine *vp.Machine, am *arraymgr.Manager) *Runtime {
	r := &Runtime{Machine: machine, AM: am, programs: make(map[string]Registered)}
	r.nextCall.Store(1)
	am.SetBorderResolver(func(program string, parmNum, ndims int) ([]int, error) {
		p, ok := r.Lookup(program)
		if !ok {
			return nil, fmt.Errorf("dcall: program %q not registered", program)
		}
		if p.Borders == nil {
			return nil, fmt.Errorf("dcall: program %q supplies no borders", program)
		}
		return p.Borders(parmNum, ndims)
	})
	// On a partitioned router every hosted processor runs a spawn server,
	// so callers in other OS processes can start wrapper copies here. An
	// in-process machine spawns wrappers directly and pays nothing.
	if router := machine.Router(); router.Partitioned() {
		for _, p := range router.LocalProcs() {
			p := p
			go r.spawnServe(p)
		}
	}
	return r
}

// Register adds a program to the registry. Re-registering a name is an
// error (as is loading two modules defining the same program in PCN).
func (r *Runtime) Register(p Registered) error {
	if p.Name == "" || p.Body == nil {
		return fmt.Errorf("dcall: program needs a name and a body")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.programs[p.Name]; dup {
		return fmt.Errorf("dcall: program %q already registered", p.Name)
	}
	r.programs[p.Name] = p
	return nil
}

// Lookup finds a registered program by name.
func (r *Runtime) Lookup(name string) (Registered, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[name]
	return p, ok
}

// Programs lists registered program names (sorted; diagnostics).
func (r *Runtime) Programs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.programs))
	for n := range r.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Call executes a distributed call to the named registered program
// (am_user_distributed_call, §4.3.1). caller is the processor on which the
// task-parallel program makes the call; it suspends until all copies have
// completed (Fig 3.2 control flow). The returned status is the pairwise
// merge of the copies' status variables, or STATUS_OK if no Status
// parameter was given and every wrapper succeeded.
func (r *Runtime) Call(caller int, procs []int, program string, params []Param, opts ...Options) int {
	p, ok := r.Lookup(program)
	if !ok {
		return StatusInvalid
	}
	return r.call(caller, procs, program, p.Body, params, opts...)
}

// CallFn is Call for an unregistered program body (a convenience beyond
// the paper's name-based dispatch; the call semantics are identical).
// An anonymous body cannot cross a process boundary, so on a partitioned
// machine the group must be wholly local — use Call with a registered
// name to reach remote processors.
func (r *Runtime) CallFn(caller int, procs []int, body Program, params []Param, opts ...Options) int {
	return r.call(caller, procs, "", body, params, opts...)
}

func (r *Runtime) call(caller int, procs []int, program string, body Program, params []Param, opts ...Options) int {
	if r.Machine.CheckProc(caller) != nil || body == nil {
		return StatusInvalid
	}
	if len(procs) == 0 {
		return StatusInvalid
	}
	seen := make(map[int]bool, len(procs))
	for _, pr := range procs {
		if r.Machine.CheckProc(pr) != nil || seen[pr] {
			return StatusInvalid
		}
		seen[pr] = true
	}
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	statusCombine := opt.StatusCombine
	if statusCombine == nil {
		statusCombine = func(a, b int) int {
			if a > b {
				return a
			}
			return b
		}
	}
	// Validate parameter list: at most one status (§4.3.1 precondition).
	nStatus := 0
	var reduces []reduceParam
	for _, prm := range params {
		switch q := prm.(type) {
		case statusParam:
			nStatus++
		case reduceParam:
			if q.length < 1 || q.combine == nil || q.out == nil {
				return StatusInvalid
			}
			reduces = append(reduces, q)
		case constParam, localParam, indexParam:
		default:
			return StatusInvalid
		}
	}
	if nStatus > 1 {
		return StatusInvalid
	}

	groupProcs := append([]int(nil), procs...)

	// A group with members hosted by other OS processes takes the wire
	// path: spawn orders instead of goroutines, and the result possibly
	// as a message (wire.go).
	if router := r.Machine.Router(); router.Partitioned() {
		for _, pr := range groupProcs {
			if !router.Local(pr) {
				return r.callRemote(caller, groupProcs, program, body, params, opt)
			}
		}
	}

	callID := r.nextCall.Add(1)

	// Launch one wrapper per group member and wait for the merged result
	// tuple from rank 0 — the caller "suspends execution while the copies
	// execute" (Fig 3.2).
	result := defval.New[tuple]()
	for i := range groupProcs {
		i := i
		r.Machine.Go(groupProcs[i], func(proc int) {
			r.runWrapper(proc, groupProcs, i, callID, body, params, statusCombine, result, caller)
		})
	}
	merged := result.Value()

	// Assign reduction outputs in parameter order.
	k := 0
	for _, prm := range params {
		if q, ok := prm.(reduceParam); ok {
			q.out.MustDefine(merged.Reductions[k])
			k++
		}
	}
	return merged.Status
}

// tuple is the {status, reductions...} record each wrapper produces and the
// combine tree merges (§5.2.2-§5.2.3). Fields are exported because a
// merged tuple crosses the wire when a call's group runs in another OS
// process (wire.go).
type tuple struct {
	Status     int
	Reductions [][]float64
}

// kindCombine is the reserved task-class message kind for wrapper merges;
// tagged with the call ID so concurrent calls stay disjoint.
const kindCombine = -101

// runWrapper is the generated wrapper program of §5.2.2: executed once per
// group member, it resolves local sections, declares local status and
// reduction variables, calls the data-parallel program, and participates in
// the pairwise merge of result tuples. Rank 0 delivers the merged tuple
// into result when non-nil (the caller is in this process), otherwise as
// a kindResult message to resultProc (the caller is in another one). A
// nil body — a spawn order naming a program this process never
// registered — contributes StatusInvalid instead of hanging the tree.
func (r *Runtime) runWrapper(proc int, procs []int, index int, callID uint64,
	body Program, params []Param, statusCombine func(a, b int) int,
	result *defval.Var[tuple], resultProc int) {

	world := spmd.NewWorld(r.Machine.Router(), procs, index, callID)

	// Resolve arguments; collect local status/reduction variables.
	args := &Args{specs: params, vals: make([]any, len(params))}
	wrapperStatus := StatusOK
	localStatus := StatusOK
	var reductionSlices [][]float64
	for i, prm := range params {
		switch q := prm.(type) {
		case constParam:
			args.vals[i] = q.v
		case localParam:
			sec, st := r.AM.FindLocal(proc, q.id)
			if st != arraymgr.StatusOK {
				// find_local failed: the wrapper's status reflects it and
				// the program is not called (§5.2.4, first example).
				if wrapperStatus == StatusOK {
					wrapperStatus = int(st)
				}
				continue
			}
			args.vals[i] = sec
		case indexParam:
			args.vals[i] = index
		case statusParam:
			args.vals[i] = &localStatus
		case reduceParam:
			s := make([]float64, q.length)
			args.vals[i] = s
			reductionSlices = append(reductionSlices, s)
		}
	}

	if body == nil && wrapperStatus == StatusOK {
		wrapperStatus = StatusInvalid
	}
	if wrapperStatus == StatusOK {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					wrapperStatus = StatusError
				}
			}()
			body(world, args)
		}()
	}

	st := localStatus
	if wrapperStatus != StatusOK {
		st = wrapperStatus
	}
	mine := tuple{Status: st, Reductions: reductionSlices}

	// Pairwise merge up a binomial tree in rank order (lower rank is the
	// left operand, so any associative combine is valid).
	combine := func(a, b tuple) tuple {
		out := tuple{Status: statusCombine(a.Status, b.Status)}
		out.Reductions = make([][]float64, len(a.Reductions))
		for k := range a.Reductions {
			var cmb func(x, y []float64) []float64
			kk := 0
			for _, prm := range params {
				if q, ok := prm.(reduceParam); ok {
					if kk == k {
						cmb = q.combine
						break
					}
					kk++
				}
			}
			out.Reductions[k] = cmb(a.Reductions[k], b.Reductions[k])
		}
		return out
	}

	router := r.Machine.Router()
	tag := msg.Tag{Class: msg.ClassTask, Call: callID, Kind: kindCombine}
	p := len(procs)
	me := index
	for step := 1; step < p; step *= 2 {
		if me%(2*step) == 0 {
			src := me + step
			if src < p {
				m, err := router.RecvFrom(proc, procs[src], tag)
				if err != nil {
					mine.Status = statusCombine(mine.Status, StatusError)
					break
				}
				mine = combine(mine, m.Data.(tuple))
			}
		} else {
			dst := me - step
			if err := router.Send(proc, procs[dst], tag, mine); err != nil {
				// Nothing more we can do; the call will hang only if the
				// router is closed, in which case the caller is gone too.
				return
			}
			return // contributed; this wrapper copy is done
		}
	}
	if me == 0 {
		if result != nil {
			result.MustDefine(mine)
			return
		}
		rtag := msg.Tag{Class: msg.ClassTask, Call: callID, Kind: kindResult}
		_ = router.Send(proc, resultProc, rtag, mine)
	}
}
