package dcall

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/spmd"
	"repro/internal/vp"
)

func newRuntime(t *testing.T, p int) *Runtime {
	t.Helper()
	machine := vp.NewMachine(p)
	t.Cleanup(machine.Shutdown)
	return NewRuntime(machine, arraymgr.New(machine))
}

// gatherVector reads elements 0..n-1 of a distributed vector in one
// batched gather (the task level's scattered-index access path) instead of
// n read_element round trips.
func gatherVector(t *testing.T, r *Runtime, onProc int, id darray.ID, n int) []float64 {
	t.Helper()
	indices := make([][]int, n)
	for i := range indices {
		indices[i] = []int{i}
	}
	vals, st := r.AM.GatherElements(onProc, id, indices)
	if st != arraymgr.StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	return vals
}

func createVector(t *testing.T, r *Runtime, n int, procs []int) darray.ID {
	t.Helper()
	id, st := r.AM.CreateArray(0, arraymgr.CreateSpec{
		Type: darray.Double, Dims: []int{n}, Procs: procs,
		Distrib:  []grid.Decomp{grid.BlockDefault()},
		Borders:  arraymgr.NoBorderSpec{},
		Indexing: grid.RowMajor,
	})
	if st != arraymgr.StatusOK {
		t.Fatalf("create: %v", st)
	}
	return id
}

func TestConstAndIndexParams(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	var mu sync.Mutex
	got := map[int][2]any{}
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		mu.Lock()
		defer mu.Unlock()
		got[w.Rank()] = [2]any{a.Int(0), a.Index(1)}
	}, []Param{Const(7), Index()})
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	for i := 0; i < 4; i++ {
		v := got[i]
		if v[0].(int) != 7 || v[1].(int) != i {
			t.Fatalf("rank %d saw %v", i, v)
		}
	}
}

// Fig 3.3 data flow: each copy receives its own local section; writes are
// visible to the task level after the call returns.
func TestLocalSectionDataFlow(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	id := createVector(t, r, 8, procs)
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		sec := a.Section(0)
		for k := range sec.F {
			sec.F[k] = float64(w.Rank()*100 + k)
		}
	}, []Param{Local(id)})
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	got := gatherVector(t, r, 0, id, 8)
	for g := 0; g < 8; g++ {
		want := float64((g/2)*100 + g%2)
		if got[g] != want {
			t.Fatalf("element %d = %v, want %v", g, got[g], want)
		}
	}
}

func TestStatusDefaultMax(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		a.SetStatus(0, w.Rank()) // statuses 0..3
	}, []Param{Status()})
	if st != 3 {
		t.Fatalf("status = %d, want max = 3", st)
	}
}

func TestStatusCustomCombine(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		a.SetStatus(0, w.Rank()+10)
	}, []Param{Status()}, Options{StatusCombine: min})
	if st != 10 {
		t.Fatalf("status = %d, want min = 10", st)
	}
}

func TestReduceSum(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	out := defval.New[[]float64]()
	sum := func(a, b []float64) []float64 {
		c := make([]float64, len(a))
		for i := range a {
			c[i] = a[i] + b[i]
		}
		return c
	}
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		red := a.Reduction(0)
		red[0] = float64(w.Rank())
		red[1] = 1
	}, []Param{Reduce(2, sum, out)})
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	got := out.Value()
	if !reflect.DeepEqual(got, []float64{6, 4}) {
		t.Fatalf("reduction = %v", got)
	}
}

// Non-commutative but associative combine (composition of affine maps
// x -> a*x + b, represented as [a, b]): the pairwise merge must preserve
// rank order for the result to equal the sequential left fold (§4.3.1: any
// binary associative operator is allowed, commutativity is not required).
func TestReduceRankOrder(t *testing.T) {
	affine := func(a, b []float64) []float64 {
		// (a ∘ b)(x) = a0*(b0*x + b1) + a1
		return []float64{a[0] * b[0], a[0]*b[1] + a[1]}
	}
	local := func(rank int) []float64 {
		return []float64{float64(rank + 2), float64(rank + 1)}
	}
	for _, p := range []int{1, 2, 3, 5, 8} {
		r := newRuntime(t, p)
		procs := make([]int, p)
		for i := range procs {
			procs[i] = i
		}
		out := defval.New[[]float64]()
		st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
			copy(a.Reduction(0), local(w.Rank()))
		}, []Param{Reduce(2, affine, out)})
		if st != StatusOK {
			t.Fatalf("p=%d: status = %d", p, st)
		}
		want := local(0)
		for i := 1; i < p; i++ {
			want = affine(want, local(i))
		}
		if got := out.Value(); !reflect.DeepEqual(got, want) {
			t.Fatalf("p=%d: %v want %v", p, got, want)
		}
	}
}

// The paper's third §4.3.1 example: a call with status, reduction and
// local-section parameters, min status combine and custom reduction
// combine.
func TestStatusReduceLocalCombined(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	id := createVector(t, r, 8, procs)
	out := defval.New[[]float64]()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	vecMin := func(a, b []float64) []float64 {
		c := make([]float64, len(a))
		for i := range a {
			c[i] = a[i]
			if b[i] < c[i] {
				c[i] = b[i]
			}
		}
		return c
	}
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		sec := a.Section(2)
		for k := range sec.F {
			sec.F[k] = float64(w.Rank() + 1)
		}
		a.SetStatus(3, 40+w.Rank())
		red := a.Reduction(4)
		red[0] = float64(w.Rank())
		red[1] = float64(-w.Rank())
	}, []Param{
		Const(procs), Const(len(procs)), Local(id), Status(),
		Reduce(2, vecMin, out),
	}, Options{StatusCombine: min})
	if st != 40 {
		t.Fatalf("status = %d, want 40", st)
	}
	if got := out.Value(); !reflect.DeepEqual(got, []float64{0, -3}) {
		t.Fatalf("reduction = %v", got)
	}
}

// find_local failure: calling with a local-section parameter of an array
// not distributed over the call's processors sets the wrapper status and
// skips the program (§5.2.4).
func TestFindLocalFailureSkipsProgram(t *testing.T) {
	r := newRuntime(t, 4)
	id := createVector(t, r, 4, []int{0, 1}) // only procs 0,1 hold sections
	var ran atomic.Int64
	st := r.CallFn(0, []int{2, 3}, func(w *spmd.World, a *Args) {
		ran.Add(1)
	}, []Param{Local(id)})
	if st != StatusNotFound {
		t.Fatalf("status = %d, want STATUS_NOT_FOUND", st)
	}
	if ran.Load() != 0 {
		t.Fatalf("program ran %d times despite find_local failure", ran.Load())
	}
}

func TestProgramPanicBecomesStatusError(t *testing.T) {
	r := newRuntime(t, 2)
	st := r.CallFn(0, []int{0, 1}, func(w *spmd.World, a *Args) {
		if w.Rank() == 1 {
			panic("kernel blew up")
		}
	}, nil)
	if st != StatusError {
		t.Fatalf("status = %d, want STATUS_ERROR", st)
	}
}

func TestInvalidCalls(t *testing.T) {
	r := newRuntime(t, 4)
	noop := func(w *spmd.World, a *Args) {}
	if st := r.CallFn(0, nil, noop, nil); st != StatusInvalid {
		t.Fatalf("empty procs: %d", st)
	}
	if st := r.CallFn(0, []int{0, 0}, noop, nil); st != StatusInvalid {
		t.Fatalf("duplicate procs: %d", st)
	}
	if st := r.CallFn(0, []int{0, 9}, noop, nil); st != StatusInvalid {
		t.Fatalf("bad proc: %d", st)
	}
	if st := r.CallFn(9, []int{0}, noop, nil); st != StatusInvalid {
		t.Fatalf("bad caller: %d", st)
	}
	if st := r.CallFn(0, []int{0}, nil, nil); st != StatusInvalid {
		t.Fatalf("nil body: %d", st)
	}
	if st := r.CallFn(0, []int{0}, noop, []Param{Status(), Status()}); st != StatusInvalid {
		t.Fatalf("two status params: %d", st)
	}
	out := defval.New[[]float64]()
	if st := r.CallFn(0, []int{0}, noop, []Param{Reduce(0, func(a, b []float64) []float64 { return a }, out)}); st != StatusInvalid {
		t.Fatalf("zero-length reduce: %d", st)
	}
	if st := r.CallFn(0, []int{0}, noop, []Param{Reduce(1, nil, out)}); st != StatusInvalid {
		t.Fatalf("nil combine: %d", st)
	}
	if st := r.CallFn(0, []int{0}, noop, []Param{Reduce(1, func(a, b []float64) []float64 { return a }, nil)}); st != StatusInvalid {
		t.Fatalf("nil out: %d", st)
	}
	if st := r.Call(0, []int{0}, "not_registered", nil); st != StatusInvalid {
		t.Fatalf("unknown program: %d", st)
	}
}

// Fig 3.2 control flow: the caller suspends until every copy terminates.
func TestCallerSuspendsUntilAllCopiesDone(t *testing.T) {
	r := newRuntime(t, 4)
	procs := []int{0, 1, 2, 3}
	var done atomic.Int64
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		// Copies synchronise so none can finish before all have started.
		if err := w.Barrier(); err != nil {
			panic(err)
		}
		done.Add(1)
	}, nil)
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	if done.Load() != 4 {
		t.Fatalf("call returned with %d of 4 copies complete", done.Load())
	}
}

// Copies of a called program communicate with each other (Fig 3.3's dashed
// line): a ring shift within the call's group.
func TestCopiesCommunicateWithinCall(t *testing.T) {
	r := newRuntime(t, 3)
	procs := []int{0, 1, 2}
	id := createVector(t, r, 3, procs)
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		p := w.Size()
		next := (w.Rank() + 1) % p
		prev := (w.Rank() - 1 + p) % p
		if err := w.Send(next, 0, []float64{float64(w.Rank())}); err != nil {
			panic(err)
		}
		got, err := w.RecvFloats(prev, 0)
		if err != nil {
			panic(err)
		}
		a.Section(0).F[0] = got[0]
	}, []Param{Local(id)})
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	got := gatherVector(t, r, 0, id, 3)
	for g := 0; g < 3; g++ {
		want := float64((g + 2) % 3)
		if got[g] != want {
			t.Fatalf("element %d = %v, want %v", g, got[g], want)
		}
	}
}

// Fig 3.4: two concurrent distributed calls on disjoint processor groups,
// each internally communicating, never interfere; transfers between their
// arrays go through the task level.
func TestConcurrentDistributedCalls(t *testing.T) {
	r := newRuntime(t, 4)
	groupA, groupB := []int{0, 1}, []int{2, 3}
	idA := createVector(t, r, 2, groupA)
	idB := createVector(t, r, 2, groupB)

	prog := func(base float64) Program {
		return func(w *spmd.World, a *Args) {
			// Exchange ranks with the peer copy, store base+peer.
			got, err := w.Exchange(1-w.Rank(), 0, []float64{float64(w.Rank())})
			if err != nil {
				panic(err)
			}
			a.Section(0).F[0] = base + got[0]
		}
	}

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	wg.Add(2)
	go func() { defer wg.Done(); statuses[0] = r.CallFn(0, groupA, prog(100), []Param{Local(idA)}) }()
	go func() { defer wg.Done(); statuses[1] = r.CallFn(2, groupB, prog(200), []Param{Local(idB)}) }()
	wg.Wait()
	if statuses[0] != StatusOK || statuses[1] != StatusOK {
		t.Fatalf("statuses = %v", statuses)
	}
	gotA := gatherVector(t, r, 0, idA, 2)
	gotB := gatherVector(t, r, 2, idB, 2)
	for g := 0; g < 2; g++ {
		if gotA[g] != 100+float64(1-g) || gotB[g] != 200+float64(1-g) {
			t.Fatalf("cross-talk: A[%d]=%v B[%d]=%v", g, gotA[g], g, gotB[g])
		}
	}

	// Inter-array transfer through the task level (the only allowed path).
	v, _ := r.AM.ReadElement(0, idA, []int{0})
	if st := r.AM.WriteElement(2, idB, []int{0}, v); st != arraymgr.StatusOK {
		t.Fatalf("task-level transfer: %v", st)
	}
	got, _ := r.AM.ReadElement(2, idB, []int{0})
	if got != v {
		t.Fatalf("transfer lost: %v != %v", got, v)
	}
}

func TestRegistryAndNamedCall(t *testing.T) {
	r := newRuntime(t, 2)
	err := r.Register(Registered{
		Name: "test:double_it",
		Body: func(w *spmd.World, a *Args) {
			sec := a.Section(0)
			for k := range sec.F {
				sec.F[k] *= 2
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Registered{Name: "test:double_it", Body: func(*spmd.World, *Args) {}}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := r.Register(Registered{Name: "", Body: func(*spmd.World, *Args) {}}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := r.Register(Registered{Name: "x"}); err == nil {
		t.Fatal("nil body must fail")
	}
	if got := r.Programs(); !reflect.DeepEqual(got, []string{"test:double_it"}) {
		t.Fatalf("Programs = %v", got)
	}

	procs := []int{0, 1}
	id := createVector(t, r, 4, procs)
	if st := r.AM.ScatterElements(0, id, [][]int{{0}, {1}, {2}, {3}}, []float64{0, 1, 2, 3}); st != arraymgr.StatusOK {
		t.Fatalf("ScatterElements: %v", st)
	}
	if st := r.Call(0, procs, "test:double_it", []Param{Local(id)}); st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	got := gatherVector(t, r, 0, id, 4)
	for g := 0; g < 4; g++ {
		if got[g] != float64(2*g) {
			t.Fatalf("element %d = %v", g, got[g])
		}
	}
}

// foreign_borders integration: creating an array whose borders are dictated
// by a registered program's border callback (§3.2.1.3, §5.1.7).
func TestForeignBordersThroughRegistry(t *testing.T) {
	r := newRuntime(t, 2)
	err := r.Register(Registered{
		Name: "fortranD:stencil",
		Body: func(w *spmd.World, a *Args) {},
		Borders: func(parmNum, ndims int) ([]int, error) {
			b := make([]int, 2*ndims)
			if parmNum == 1 {
				for i := range b {
					b[i] = 1
				}
			}
			return b, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, st := r.AM.CreateArray(0, arraymgr.CreateSpec{
		Type: darray.Double, Dims: []int{4}, Procs: []int{0, 1},
		Distrib:  []grid.Decomp{grid.BlockDefault()},
		Borders:  arraymgr.ForeignBorders{Program: "fortranD:stencil", ParmNum: 1},
		Indexing: grid.RowMajor,
	})
	if st != arraymgr.StatusOK {
		t.Fatalf("create: %v", st)
	}
	b, _ := r.AM.FindInfo(0, id, "borders")
	if !reflect.DeepEqual(b, []int{1, 1}) {
		t.Fatalf("borders = %v", b)
	}
	// A program with no border callback is rejected.
	if err := r.Register(Registered{Name: "plain", Body: func(*spmd.World, *Args) {}}); err != nil {
		t.Fatal(err)
	}
	if _, st := r.AM.CreateArray(0, arraymgr.CreateSpec{
		Type: darray.Double, Dims: []int{4}, Procs: []int{0, 1},
		Distrib:  []grid.Decomp{grid.BlockDefault()},
		Borders:  arraymgr.ForeignBorders{Program: "plain", ParmNum: 1},
		Indexing: grid.RowMajor,
	}); st != arraymgr.StatusInvalid {
		t.Fatalf("no-borders program: %v", st)
	}
}

// A call on a subset of processors leaves the rest of the machine free: the
// group is exactly the processor array (relocatability, §3.5).
func TestSubsetGroupRelocatability(t *testing.T) {
	r := newRuntime(t, 6)
	procs := []int{5, 1, 3} // arbitrary order, non-contiguous
	var mu sync.Mutex
	seen := map[int]int{} // physical proc -> rank
	st := r.CallFn(0, procs, func(w *spmd.World, a *Args) {
		mu.Lock()
		seen[w.ProcNum()] = w.Rank()
		mu.Unlock()
	}, nil)
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
	want := map[int]int{5: 0, 1: 1, 3: 2}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("placement = %v", seen)
	}
}

func TestSingleProcessorCall(t *testing.T) {
	r := newRuntime(t, 1)
	out := defval.New[[]float64]()
	st := r.CallFn(0, []int{0}, func(w *spmd.World, a *Args) {
		a.Reduction(0)[0] = 9
		a.SetStatus(1, 5)
	}, []Param{Reduce(1, func(a, b []float64) []float64 { return a }, out), Status()})
	if st != 5 {
		t.Fatalf("status = %d", st)
	}
	if out.Value()[0] != 9 {
		t.Fatalf("reduction = %v", out.Value())
	}
}

func TestArgsAccessors(t *testing.T) {
	r := newRuntime(t, 1)
	st := r.CallFn(0, []int{0}, func(w *spmd.World, a *Args) {
		if a.Len() != 4 {
			panic("len")
		}
		if a.Float(0) != 2.5 {
			panic("float")
		}
		if !reflect.DeepEqual(a.IntArray(1), []int{4, 5}) {
			panic("intarray")
		}
		if a.Const(2).(string) != "s" {
			panic("const")
		}
		if a.Index(3) != 0 {
			panic("index")
		}
	}, []Param{Const(2.5), Const([]int{4, 5}), Const("s"), Index()})
	if st != StatusOK {
		t.Fatalf("status = %d", st)
	}
}
