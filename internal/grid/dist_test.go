package grid

import (
	"reflect"
	"testing"
)

// distCases sweeps extents, cell counts and widths across all three kinds,
// including extents smaller than the grid (empty cells) and widths that do
// not divide the extent (truncated trailing blocks).
func distCases() []struct {
	name string
	d    Dist
	n, p int
} {
	return []struct {
		name string
		d    Dist
		n, p int
	}{
		{"block/exact", Dist{DistBlock, 6}, 24, 4},
		{"block/uneven", Dist{DistBlock, 3}, 10, 4},
		{"block/empty-cell", Dist{DistBlock, 2}, 5, 4},
		{"block/p1", Dist{DistBlock, 7}, 7, 1},
		{"cyclic", Dist{DistCyclic, 1}, 23, 4},
		{"cyclic/short", Dist{DistCyclic, 1}, 3, 5},
		{"cyclic/p1", Dist{DistCyclic, 1}, 9, 1},
		{"blockcyclic/exact", Dist{DistBlockCyclic, 2}, 16, 4},
		{"blockcyclic/truncated", Dist{DistBlockCyclic, 3}, 17, 2},
		{"blockcyclic/wide", Dist{DistBlockCyclic, 5}, 12, 3},
		{"blockcyclic/p1", Dist{DistBlockCyclic, 4}, 10, 1},
	}
}

// TestDistBijection checks that Owner maps every global index to exactly
// one (cell, local) pair within bounds, that Global inverts it, that Count
// sums to the extent, and that a cell's elements appear at strictly
// increasing local indices (the layout is order-preserving per cell).
func TestDistBijection(t *testing.T) {
	for _, c := range distCases() {
		t.Run(c.name, func(t *testing.T) {
			storage := c.d.Storage(c.n, c.p)
			perCell := make(map[int][]int) // cell -> locals in global order
			for g := 0; g < c.n; g++ {
				cell, l := c.d.Owner(g, c.p)
				if cell < 0 || cell >= c.p {
					t.Fatalf("g=%d: cell %d out of [0,%d)", g, cell, c.p)
				}
				if l < 0 || l >= storage {
					t.Fatalf("g=%d: local %d outside storage %d", g, l, storage)
				}
				if back := c.d.Global(cell, l, c.p); back != g {
					t.Fatalf("g=%d -> (%d,%d) -> %d", g, cell, l, back)
				}
				locals := perCell[cell]
				if len(locals) > 0 && l <= locals[len(locals)-1] {
					t.Fatalf("g=%d: local %d not increasing within cell %d (%v)", g, l, cell, locals)
				}
				perCell[cell] = append(locals, l)
			}
			total := 0
			for cell := 0; cell < c.p; cell++ {
				count := c.d.Count(c.n, c.p, cell)
				if count != len(perCell[cell]) {
					t.Fatalf("cell %d: Count %d, enumeration found %d", cell, count, len(perCell[cell]))
				}
				if count > storage {
					t.Fatalf("cell %d: count %d exceeds storage %d", cell, count, storage)
				}
				total += count
			}
			if total != c.n {
				t.Fatalf("counts sum to %d, extent %d", total, c.n)
			}
		})
	}
}

// TestDistBlockMatchesLegacy pins the block case against the original
// exact-divisible arithmetic: for divisible shapes, Owner agrees with
// g/local, g%local.
func TestDistBlockMatchesLegacy(t *testing.T) {
	n, p := 24, 4
	d, err := ResolveDist(BlockDefault(), n, p)
	if err != nil {
		t.Fatal(err)
	}
	if d.B != n/p {
		t.Fatalf("block width %d, want %d", d.B, n/p)
	}
	for g := 0; g < n; g++ {
		cell, l := d.Owner(g, p)
		if cell != g/(n/p) || l != g%(n/p) {
			t.Fatalf("g=%d: (%d,%d), legacy (%d,%d)", g, cell, l, g/(n/p), g%(n/p))
		}
	}
}

func TestResolveDists(t *testing.T) {
	dists, err := ResolveDists([]int{10, 23, 16}, []int{4, 4, 2},
		[]Decomp{BlockDefault(), CyclicDefault(), BlockCyclicOf(3)})
	if err != nil {
		t.Fatal(err)
	}
	want := []Dist{{DistBlock, 3}, {DistCyclic, 1}, {DistBlockCyclic, 3}}
	if !reflect.DeepEqual(dists, want) {
		t.Fatalf("ResolveDists = %v, want %v", dists, want)
	}
	storage, err := StorageDims([]int{10, 23, 16}, []int{4, 4, 2}, dists)
	if err != nil {
		t.Fatal(err)
	}
	// 10 over 4 cells width 3 -> 3; 23 cyclic over 4 -> 6; 16 in width-3
	// blocks (6 blocks) over 2 -> 3 blocks of 3 = 9.
	if !reflect.DeepEqual(storage, []int{3, 6, 9}) {
		t.Fatalf("StorageDims = %v", storage)
	}
	if _, err := ResolveDists([]int{4}, []int{2}, []Decomp{BlockCyclicOf(0)}); err == nil {
		t.Fatal("zero-width block_cyclic accepted")
	}
	if _, err := ResolveDists([]int{4, 4}, []int{2}, []Decomp{BlockDefault()}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestRegular(t *testing.T) {
	if !Regular([]int{4, 1}, []Dist{{DistBlock, 2}, {DistCyclic, 1}}) {
		t.Fatal("cyclic over a 1-cell grid must count as regular")
	}
	if Regular([]int{4, 2}, []Dist{{DistBlock, 2}, {DistCyclic, 1}}) {
		t.Fatal("cyclic over 2 cells is not regular")
	}
	if !Regular([]int{4}, []Dist{{DistBlock, 3}}) {
		t.Fatal("uneven block is still regular")
	}
}

// TestGridDimsCyclic checks the new kinds in GridDims: cyclic defaults like
// block, fixed grid dimensions are honored, malformed specs rejected.
func TestGridDimsCyclic(t *testing.T) {
	g, err := GridDims(16, []Decomp{CyclicDefault(), BlockCyclicOf(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, []int{4, 4}) {
		t.Fatalf("GridDims = %v, want [4 4]", g)
	}
	g, err = GridDims(16, []Decomp{CyclicOf(2), BlockCyclicOfN(3, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, []int{2, 8}) {
		t.Fatalf("GridDims = %v, want [2 8]", g)
	}
	if _, err := GridDims(4, []Decomp{BlockCyclicOf(0)}); err == nil {
		t.Fatal("block_cyclic(0) accepted")
	}
	if _, err := GridDims(4, []Decomp{CyclicOf(8)}); err == nil {
		t.Fatal("cyclic(8) over 4 processors accepted")
	}
}

func TestParseDecomp(t *testing.T) {
	cases := []struct {
		in   string
		want Decomp
	}{
		{"block", BlockDefault()},
		{"block(4)", BlockOf(4)},
		{"*", NoDecomp()},
		{"cyclic", CyclicDefault()},
		{"cyclic(3)", CyclicOf(3)},
		{"block_cyclic(2)", BlockCyclicOf(2)},
		{"block_cyclic(2, 4)", BlockCyclicOfN(2, 4)},
		{" block ", BlockDefault()},
	}
	for _, c := range cases {
		got, err := ParseDecomp(c.in)
		if err != nil {
			t.Fatalf("ParseDecomp(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseDecomp(%q) = %v, want %v", c.in, got, c.want)
		}
		// String round-trips back through the parser.
		back, err := ParseDecomp(got.String())
		if err != nil || back != got {
			t.Fatalf("round trip %q -> %v -> %v (%v)", c.in, got, back, err)
		}
	}
	for _, bad := range []string{"", "blocky", "block(", "block(x)", "cyclic(1,2,3)", "block_cyclic", "cyclic(0)", "block_cyclic(2,0)", "block(-1)"} {
		if _, err := ParseDecomp(bad); err == nil {
			t.Fatalf("ParseDecomp(%q) accepted", bad)
		}
	}
}

func TestParseDistrib(t *testing.T) {
	got, err := ParseDistrib("block,cyclic(2),block_cyclic(3,4),*")
	if err != nil {
		t.Fatal(err)
	}
	want := []Decomp{BlockDefault(), CyclicOf(2), BlockCyclicOfN(3, 4), NoDecomp()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseDistrib = %v, want %v", got, want)
	}
	if _, err := ParseDistrib("block,,cyclic"); err == nil {
		t.Fatal("empty component accepted")
	}
}

// TestDistribStringRoundTrip pins the canonical form both ways:
// ParseDistrib(DistribString(specs)) reproduces specs exactly, and
// DistribString(ParseDistrib(s)) normalizes whitespace and argument
// spelling to the copy-pasteable form the tdplab tooling prints.
func TestDistribStringRoundTrip(t *testing.T) {
	vectors := [][]Decomp{
		{BlockDefault()},
		{NoDecomp(), BlockDefault()},
		{CyclicDefault(), NoDecomp()},
		{BlockOf(4), CyclicOf(3)},
		{BlockCyclicOf(2), BlockDefault(), NoDecomp()},
		{BlockCyclicOfN(3, 4), CyclicOf(2)},
	}
	for _, specs := range vectors {
		s := DistribString(specs)
		back, err := ParseDistrib(s)
		if err != nil {
			t.Fatalf("ParseDistrib(DistribString(%v) = %q): %v", specs, s, err)
		}
		if !reflect.DeepEqual(back, specs) {
			t.Fatalf("round trip %v -> %q -> %v", specs, s, back)
		}
	}
	for in, want := range map[string]string{
		" block , cyclic(2) ":        "block,cyclic(2)",
		"block_cyclic(2, 4),*":       "block_cyclic(2,4),*",
		"cyclic , block_cyclic( 3 )": "cyclic,block_cyclic(3)",
	} {
		specs, err := ParseDistrib(in)
		if err != nil {
			t.Fatalf("ParseDistrib(%q): %v", in, err)
		}
		if got := DistribString(specs); got != want {
			t.Fatalf("DistribString(ParseDistrib(%q)) = %q, want %q", in, got, want)
		}
	}
}
