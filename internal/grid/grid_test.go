package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// --- GridDims: the paper's worked examples ---

// §3.2.1.2: a 2-dimensional array over 16 processors defaults to a 4x4
// grid.
func TestGridDimsDefaultSquare(t *testing.T) {
	g, err := GridDims(16, []Decomp{BlockDefault(), BlockDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, []int{4, 4}) {
		t.Fatalf("grid = %v, want [4 4]", g)
	}
}

// §3.2.1.2: 3-dimensional array over 16 processors with the second grid
// dimension specified as 2: unspecified dims get floor((16/2)^(1/2)) = 2,
// giving a 2x2x2 grid.
func TestGridDimsPartiallySpecified(t *testing.T) {
	g, err := GridDims(16, []Decomp{BlockDefault(), BlockOf(2), BlockDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, []int{2, 2, 2}) {
		t.Fatalf("grid = %v, want [2 2 2]", g)
	}
}

// Figure 3.6: 400x200 array, 16 processors, the paper's three cases.
func TestFig36Decompositions(t *testing.T) {
	dims := []int{400, 200}
	cases := []struct {
		specs     []Decomp
		wantGrid  []int
		wantLocal []int
	}{
		{[]Decomp{BlockDefault(), BlockDefault()}, []int{4, 4}, []int{100, 50}},
		{[]Decomp{BlockOf(2), BlockOf(8)}, []int{2, 8}, []int{200, 25}},
		{[]Decomp{BlockDefault(), NoDecomp()}, []int{16, 1}, []int{25, 200}},
	}
	for _, c := range cases {
		g, err := GridDims(16, c.specs)
		if err != nil {
			t.Fatalf("%v: %v", c.specs, err)
		}
		if !reflect.DeepEqual(g, c.wantGrid) {
			t.Fatalf("%v: grid = %v, want %v", c.specs, g, c.wantGrid)
		}
		l, err := LocalDims(dims, g)
		if err != nil {
			t.Fatalf("%v: %v", c.specs, err)
		}
		if !reflect.DeepEqual(l, c.wantLocal) {
			t.Fatalf("%v: local = %v, want %v", c.specs, l, c.wantLocal)
		}
	}
}

func TestGridDimsErrors(t *testing.T) {
	if _, err := GridDims(4, []Decomp{BlockOf(8)}); err == nil {
		t.Fatal("block(8) over 4 processors must fail")
	}
	if _, err := GridDims(0, []Decomp{BlockDefault()}); err == nil {
		t.Fatal("0 processors must fail")
	}
	if _, err := GridDims(4, nil); err == nil {
		t.Fatal("0-dimensional decomposition must fail")
	}
	if _, err := GridDims(4, []Decomp{BlockOf(0)}); err == nil {
		t.Fatal("block(0) must fail")
	}
}

// Property: grid product is always within [1, P] and specified dims are
// honoured exactly.
func TestQuickGridDimsProduct(t *testing.T) {
	f := func(pRaw uint8, kinds []uint8) bool {
		p := int(pRaw)%64 + 1
		if len(kinds) == 0 || len(kinds) > 4 {
			return true
		}
		specs := make([]Decomp, len(kinds))
		q := 1
		for i, k := range kinds {
			switch k % 3 {
			case 0:
				specs[i] = BlockDefault()
			case 1:
				n := int(k)%3 + 1
				specs[i] = BlockOf(n)
				q *= n
			case 2:
				specs[i] = NoDecomp()
			}
		}
		g, err := GridDims(p, specs)
		if err != nil {
			return q > p // only failure mode for these inputs
		}
		if Size(g) < 1 || Size(g) > p {
			return false
		}
		for i, s := range specs {
			if s.Kind == BlockN && g[i] != s.N {
				return false
			}
			if s.Kind == Star && g[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoot(t *testing.T) {
	cases := []struct{ x, n, want int }{
		{16, 2, 4}, {16, 4, 2}, {15, 2, 3}, {1, 3, 1}, {8, 3, 2},
		{9, 2, 3}, {10, 2, 3}, {64, 3, 4}, {63, 3, 3}, {5, 1, 5},
	}
	for _, c := range cases {
		if got := IntRoot(c.x, c.n); got != c.want {
			t.Fatalf("IntRoot(%d,%d) = %d, want %d", c.x, c.n, got, c.want)
		}
	}
}

// --- Flatten / Unflatten ---

func TestFlattenRowVsColMajor(t *testing.T) {
	dims := []int{2, 3}
	// Row-major: (1,2) -> 1*3+2 = 5. Column-major: 2*2+1 = 5? No:
	// col-major strides: dim0 stride 1, dim1 stride 2 -> 1 + 2*2 = 5.
	// Use an asymmetric case instead: (1,0).
	r, err := Flatten([]int{1, 0}, dims, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Flatten([]int{1, 0}, dims, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 || c != 1 {
		t.Fatalf("row=%d (want 3), col=%d (want 1)", r, c)
	}
}

func TestFlattenOutOfRange(t *testing.T) {
	if _, err := Flatten([]int{2, 0}, []int{2, 3}, RowMajor); err == nil {
		t.Fatal("index 2 in dim of size 2 must fail")
	}
	if _, err := Flatten([]int{0}, []int{2, 3}, RowMajor); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, err := Unflatten(6, []int{2, 3}, RowMajor); err == nil {
		t.Fatal("linear index == size must fail")
	}
}

// Property: Unflatten inverts Flatten for random dims/indices/orderings.
func TestQuickFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		nd := rng.Intn(4) + 1
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = rng.Intn(5) + 1
		}
		idx := make([]int, nd)
		for i := range idx {
			idx[i] = rng.Intn(dims[i])
		}
		ix := Indexing(rng.Intn(2))
		lin, err := Flatten(idx, dims, ix)
		if err != nil {
			t.Fatal(err)
		}
		if lin < 0 || lin >= Size(dims) {
			t.Fatalf("lin %d out of range for %v", lin, dims)
		}
		back, err := Unflatten(lin, dims, ix)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, idx) {
			t.Fatalf("round trip %v -> %d -> %v (dims %v, %v)", idx, lin, back, dims, ix)
		}
	}
}

// Property: Flatten is a bijection [0,Size) for both orderings.
func TestFlattenBijection(t *testing.T) {
	dims := []int{3, 4, 2}
	for _, ix := range []Indexing{RowMajor, ColMajor} {
		seen := make([]bool, Size(dims))
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				for k := 0; k < 2; k++ {
					lin, err := Flatten([]int{i, j, k}, dims, ix)
					if err != nil {
						t.Fatal(err)
					}
					if seen[lin] {
						t.Fatalf("collision at %d (%v)", lin, ix)
					}
					seen[lin] = true
				}
			}
		}
	}
}

// --- Global/local maps ---

// Figure 3.5's described relationship: global indices identify exactly one
// {grid coordinate, local index} pair and vice versa.
func TestQuickGlobalLocalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		nd := rng.Intn(3) + 1
		dims := make([]int, nd)
		gridDims := make([]int, nd)
		for i := range dims {
			gridDims[i] = rng.Intn(3) + 1
			dims[i] = gridDims[i] * (rng.Intn(4) + 1)
		}
		gidx := make([]int, nd)
		for i := range gidx {
			gidx[i] = rng.Intn(dims[i])
		}
		coord, lidx, err := GlobalToLocal(gidx, dims, gridDims)
		if err != nil {
			t.Fatal(err)
		}
		back, err := LocalToGlobal(coord, lidx, dims, gridDims)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, gidx) {
			t.Fatalf("round trip %v -> (%v,%v) -> %v", gidx, coord, lidx, back)
		}
	}
}

// Each element belongs to exactly one local section, and each local section
// slot holds exactly one element (Fig 3.1 / Fig 3.5 invariant).
func TestPartitionIsExact(t *testing.T) {
	dims := []int{4, 4}
	gridDims := []int{2, 4}
	type key struct{ slot, off int }
	seen := map[key][]int{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			slot, off, err := OwnerSlot([]int{i, j}, dims, gridDims, RowMajor)
			if err != nil {
				t.Fatal(err)
			}
			k := key{slot, off}
			if prev, dup := seen[k]; dup {
				t.Fatalf("(%d,%d) and %v map to same slot/offset %v", i, j, prev, k)
			}
			seen[k] = []int{i, j}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d slots, want 16", len(seen))
	}
}

// §3.2.1.1's worked example: global (1,2) in a 4x4 array over a 2x4 grid
// (from Figure 3.5's style of decomposition) — check a concrete mapping by
// hand: local dims 2x1, so (1,2) -> grid coord (0,2), local (1,0).
func TestConcreteMapping(t *testing.T) {
	coord, lidx, err := GlobalToLocal([]int{1, 2}, []int{4, 4}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coord, []int{0, 2}) || !reflect.DeepEqual(lidx, []int{1, 0}) {
		t.Fatalf("coord=%v lidx=%v", coord, lidx)
	}
}

// Figure 3.8: a 2x2 array distributed over processors (0,2,4,6). Under
// row-major ordering the figure places x(1,0) on processor 4; under
// column-major ordering it places x(1,0) on processor 2. ProcSlot gives the
// slot in the grid; the caller maps slots through the processor array.
func TestFig38RowVsColumnDistribution(t *testing.T) {
	procs := []int{0, 2, 4, 6}
	gridDims := []int{2, 2}
	dims := []int{2, 2}

	slotRow, _, err := OwnerSlot([]int{1, 0}, dims, gridDims, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	slotCol, _, err := OwnerSlot([]int{1, 0}, dims, gridDims, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	if procs[slotRow] != 4 || procs[slotCol] != 2 {
		t.Fatalf("row-major -> proc %d (want 4), col-major -> proc %d (want 2)",
			procs[slotRow], procs[slotCol])
	}
}

func TestLocalDimsDivisibility(t *testing.T) {
	if _, err := LocalDims([]int{10, 10}, []int{3, 2}); err == nil {
		t.Fatal("non-dividing grid must fail")
	}
	l, err := LocalDims([]int{10, 10}, []int{5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, []int{2, 5}) {
		t.Fatalf("local = %v", l)
	}
}

func TestParseIndexing(t *testing.T) {
	for _, s := range []string{"row", "C", "c"} {
		ix, err := ParseIndexing(s)
		if err != nil || ix != RowMajor {
			t.Fatalf("ParseIndexing(%q) = %v,%v", s, ix, err)
		}
	}
	for _, s := range []string{"column", "col", "Fortran", "fortran"} {
		ix, err := ParseIndexing(s)
		if err != nil || ix != ColMajor {
			t.Fatalf("ParseIndexing(%q) = %v,%v", s, ix, err)
		}
	}
	if _, err := ParseIndexing("diagonal"); err == nil {
		t.Fatal("unknown indexing must fail")
	}
	if RowMajor.String() != "row" || ColMajor.String() != "column" {
		t.Fatal("Indexing.String broken")
	}
}
