package grid

import (
	"reflect"
	"testing"
)

func TestCheckStridedRect(t *testing.T) {
	dims := []int{4, 6}
	cases := []struct {
		lo, hi, step []int
		ok           bool
	}{
		{[]int{0, 0}, []int{4, 6}, []int{1, 1}, true},
		{[]int{0, 0}, []int{4, 6}, []int{2, 3}, true},
		{[]int{1, 2}, []int{2, 3}, []int{5, 5}, true}, // step larger than extent: one point
		{[]int{0, 0}, []int{4, 6}, []int{0, 1}, false},
		{[]int{0, 0}, []int{4, 6}, []int{1, -2}, false},
		{[]int{0, 0}, []int{4, 6}, []int{1}, false},    // rank mismatch
		{[]int{0, 0}, []int{5, 6}, []int{1, 1}, false}, // bounds out of range
		{[]int{2, 2}, []int{2, 3}, []int{1, 1}, false}, // empty
	}
	for _, c := range cases {
		err := CheckStridedRect(c.lo, c.hi, c.step, dims)
		if (err == nil) != c.ok {
			t.Errorf("CheckStridedRect(%v, %v, %v): err=%v, want ok=%v", c.lo, c.hi, c.step, err, c.ok)
		}
	}
}

func TestStridedRectDimsSize(t *testing.T) {
	lo, hi, step := []int{0, 1, 2}, []int{7, 2, 10}, []int{2, 1, 3}
	if got := StridedRectDims(lo, hi, step); !reflect.DeepEqual(got, []int{4, 1, 3}) {
		t.Fatalf("StridedRectDims = %v", got)
	}
	if got := StridedRectSize(lo, hi, step); got != 12 {
		t.Fatalf("StridedRectSize = %d", got)
	}
	// Step 1 recovers the dense size.
	if got, want := StridedRectSize(lo, hi, []int{1, 1, 1}), RectSize(lo, hi); got != want {
		t.Fatalf("unit-step StridedRectSize = %d, RectSize = %d", got, want)
	}
}

// TestIntersectStridedRect checks the strided intersection against brute
// force: a point is in the result iff it is on the lattice and in both
// boxes, and the result's lo stays lattice-aligned.
func TestIntersectStridedRect(t *testing.T) {
	lo, hi, step := []int{1, 0}, []int{11, 9}, []int{3, 2}
	boxes := []struct{ blo, bhi []int }{
		{[]int{0, 0}, []int{5, 5}},
		{[]int{5, 4}, []int{11, 9}},
		{[]int{2, 1}, []int{3, 2}},   // between lattice points in dim 0: {nothing} unless aligned
		{[]int{11, 0}, []int{12, 9}}, // outside
	}
	inLattice := func(idx []int) bool {
		for i := range idx {
			if idx[i] < lo[i] || idx[i] >= hi[i] || (idx[i]-lo[i])%step[i] != 0 {
				return false
			}
		}
		return true
	}
	inBox := func(idx, blo, bhi []int) bool {
		for i := range idx {
			if idx[i] < blo[i] || idx[i] >= bhi[i] {
				return false
			}
		}
		return true
	}
	for _, b := range boxes {
		olo, ohi, ok := IntersectStridedRect(lo, hi, step, b.blo, b.bhi)
		want := make(map[string]bool)
		_ = ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
			if inBox(idx, b.blo, b.bhi) {
				want[fmtIdx(idx)] = true
			}
			return nil
		})
		if !ok {
			if len(want) != 0 {
				t.Fatalf("box [%v,%v): reported empty, brute force found %d points", b.blo, b.bhi, len(want))
			}
			continue
		}
		if (olo[0]-lo[0])%step[0] != 0 || (olo[1]-lo[1])%step[1] != 0 {
			t.Fatalf("box [%v,%v): result lo %v off the lattice", b.blo, b.bhi, olo)
		}
		got := make(map[string]bool)
		if err := ForEachStridedRect(olo, ohi, step, func(idx []int, k int) error {
			if !inLattice(idx) || !inBox(idx, b.blo, b.bhi) {
				t.Fatalf("box [%v,%v): result point %v not in both inputs", b.blo, b.bhi, idx)
			}
			got[fmtIdx(idx)] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("box [%v,%v): result %v points, brute force %v", b.blo, b.bhi, len(got), len(want))
		}
	}
}

func fmtIdx(idx []int) string {
	s := ""
	for _, x := range idx {
		s += string(rune('0'+x)) + ","
	}
	return s
}

// TestForEachStridedRectOrder checks that enumeration order matches the
// row-major linearization of the lattice coordinates, that the count equals
// StridedRectSize, and that step 1 matches ForEachRect exactly.
func TestForEachStridedRectOrder(t *testing.T) {
	lo, hi, step := []int{1, 0, 2}, []int{8, 2, 9}, []int{3, 1, 2}
	sdims := StridedRectDims(lo, hi, step)
	count := 0
	if err := ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
		rel := make([]int, len(idx))
		for i := range idx {
			if (idx[i]-lo[i])%step[i] != 0 {
				t.Fatalf("point %v off the lattice", idx)
			}
			rel[i] = (idx[i] - lo[i]) / step[i]
		}
		lin, err := Flatten(rel, sdims, RowMajor)
		if err != nil {
			return err
		}
		if lin != k {
			t.Fatalf("point %v at position %d, want %d", idx, k, lin)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != StridedRectSize(lo, hi, step) {
		t.Fatalf("enumerated %d of %d", count, StridedRectSize(lo, hi, step))
	}

	// Unit step reduces to the dense enumeration.
	var dense, strided [][]int
	_ = ForEachRect(lo, hi, func(idx []int, k int) error {
		dense = append(dense, append([]int(nil), idx...))
		return nil
	})
	_ = ForEachStridedRect(lo, hi, []int{1, 1, 1}, func(idx []int, k int) error {
		strided = append(strided, append([]int(nil), idx...))
		return nil
	})
	if !reflect.DeepEqual(dense, strided) {
		t.Fatal("unit-step ForEachStridedRect disagrees with ForEachRect")
	}
}

func TestForEachStridedRectZeroDim(t *testing.T) {
	calls := 0
	if err := ForEachStridedRect(nil, nil, nil, func(idx []int, k int) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("zero-dimensional strided rect visited %d times", calls)
	}
}
