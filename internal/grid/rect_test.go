package grid

import (
	"reflect"
	"testing"
)

func TestCheckRect(t *testing.T) {
	dims := []int{4, 6}
	cases := []struct {
		lo, hi []int
		ok     bool
	}{
		{[]int{0, 0}, []int{4, 6}, true},
		{[]int{1, 2}, []int{2, 3}, true},
		{[]int{0, 0}, []int{0, 6}, false}, // empty
		{[]int{-1, 0}, []int{4, 6}, false},
		{[]int{0, 0}, []int{5, 6}, false},
		{[]int{2, 2}, []int{1, 3}, false}, // inverted
		{[]int{0}, []int{4, 6}, false},    // rank mismatch
	}
	for _, c := range cases {
		err := CheckRect(c.lo, c.hi, dims)
		if (err == nil) != c.ok {
			t.Errorf("CheckRect(%v, %v): err=%v, want ok=%v", c.lo, c.hi, err, c.ok)
		}
	}
}

func TestRectDimsSize(t *testing.T) {
	lo, hi := []int{1, 2, 0}, []int{3, 5, 4}
	if got := RectDims(lo, hi); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("RectDims = %v", got)
	}
	if got := RectSize(lo, hi); got != 24 {
		t.Fatalf("RectSize = %d", got)
	}
}

func TestIntersectRect(t *testing.T) {
	lo, hi, ok := IntersectRect([]int{0, 0}, []int{4, 4}, []int{2, 1}, []int{6, 3})
	if !ok || !reflect.DeepEqual(lo, []int{2, 1}) || !reflect.DeepEqual(hi, []int{4, 3}) {
		t.Fatalf("intersection = [%v, %v) ok=%v", lo, hi, ok)
	}
	if _, _, ok := IntersectRect([]int{0, 0}, []int{2, 2}, []int{2, 0}, []int{4, 2}); ok {
		t.Fatal("disjoint rectangles reported as intersecting")
	}
}

// TestCellRectPartition checks that the cell rectangles tile the global
// index space: every global index lies in exactly one cell's rectangle,
// and that cell agrees with GlobalToLocal.
func TestCellRectPartition(t *testing.T) {
	dims := []int{6, 4}
	gridDims := []int{3, 2}
	seen := make(map[int]int) // flattened global index -> hit count
	for c0 := 0; c0 < gridDims[0]; c0++ {
		for c1 := 0; c1 < gridDims[1]; c1++ {
			coord := []int{c0, c1}
			lo, hi, err := CellRect(coord, dims, gridDims)
			if err != nil {
				t.Fatal(err)
			}
			if err := ForEachRect(lo, hi, func(idx []int, k int) error {
				lin, err := Flatten(idx, dims, RowMajor)
				if err != nil {
					return err
				}
				seen[lin]++
				wantCoord, _, err := GlobalToLocal(idx, dims, gridDims)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(wantCoord, coord) {
					t.Errorf("index %v: CellRect cell %v, GlobalToLocal cell %v", idx, coord, wantCoord)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seen) != Size(dims) {
		t.Fatalf("cells cover %d of %d indices", len(seen), Size(dims))
	}
	for lin, n := range seen {
		if n != 1 {
			t.Fatalf("index %d covered %d times", lin, n)
		}
	}
}

// TestForEachRectOrder checks that enumeration order matches the row-major
// linearization of the rectangle's own dimensions.
func TestForEachRectOrder(t *testing.T) {
	lo, hi := []int{1, 0, 2}, []int{3, 2, 4}
	rdims := RectDims(lo, hi)
	count := 0
	if err := ForEachRect(lo, hi, func(idx []int, k int) error {
		rel := make([]int, len(idx))
		for i := range idx {
			rel[i] = idx[i] - lo[i]
		}
		lin, err := Flatten(rel, rdims, RowMajor)
		if err != nil {
			return err
		}
		if lin != k {
			t.Fatalf("index %v at position %d, want %d", idx, k, lin)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != RectSize(lo, hi) {
		t.Fatalf("enumerated %d of %d", count, RectSize(lo, hi))
	}
}

// TestForEachRectZeroDim: the empty product has exactly one point.
func TestForEachRectZeroDim(t *testing.T) {
	calls := 0
	if err := ForEachRect(nil, nil, func(idx []int, k int) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("zero-dimensional rect visited %d times", calls)
	}
}

func TestStrides(t *testing.T) {
	dims := []int{3, 4, 5}
	if got := Strides(dims, RowMajor); !reflect.DeepEqual(got, []int{20, 5, 1}) {
		t.Fatalf("row-major strides = %v", got)
	}
	if got := Strides(dims, ColMajor); !reflect.DeepEqual(got, []int{1, 3, 12}) {
		t.Fatalf("column-major strides = %v", got)
	}
	// Strides reproduce Flatten in both orders.
	for _, ix := range []Indexing{RowMajor, ColMajor} {
		s := Strides(dims, ix)
		idx := []int{2, 1, 3}
		want, err := Flatten(idx, dims, ix)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := range idx {
			got += idx[i] * s[i]
		}
		if got != want {
			t.Fatalf("%v: stride offset %d, Flatten %d", ix, got, want)
		}
	}
}
