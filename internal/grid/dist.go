// Per-dimension distributions: the generalization of §3.2.1.1's pure
// block decomposition to cyclic and block-cyclic layouts.
//
// One array dimension of extent N mapped onto a grid dimension of P cells
// is described by a Dist — a distribution kind plus a cycle width B. All
// three kinds share one formula family, the standard block-cyclic
// arithmetic: global index g lies in cycle block j = g/B; block j belongs
// to cell j mod P; within the cell it is the (j div P)-th local block.
//
//   - block:        B = ceil(N/P), so every cell owns at most one block —
//     the contiguous layout of the paper, now with an uneven (possibly
//     empty) trailing block instead of the divide-evenly restriction;
//   - cyclic:       B = 1, elements dealt round-robin;
//   - block-cyclic: B chosen by the user, blocks dealt round-robin.
//
// Local sections are allocated uniformly: every cell's storage extent
// along the dimension is Storage() = ceil(nb/P)*B (nb = ceil(N/B)), the
// extent of the fullest cell, so cells short a block (or holding a
// truncated trailing block) simply leave trailing storage unused. Count()
// reports the number of elements a cell actually owns.
package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// DistKind is how one array dimension maps onto its grid dimension.
type DistKind uint8

const (
	// DistBlock is the contiguous layout: cell c owns the single run
	// [c*B, min((c+1)*B, N)) with B = ceil(N/P).
	DistBlock DistKind = iota
	// DistCyclic deals single elements round-robin: cell c owns
	// {c, c+P, c+2P, ...}.
	DistCyclic
	// DistBlockCyclic deals blocks of width B round-robin: cell c owns
	// cycle blocks c, c+P, c+2P, ...
	DistBlockCyclic
)

func (k DistKind) String() string {
	switch k {
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	case DistBlockCyclic:
		return "block_cyclic"
	default:
		return "?"
	}
}

// Dist is one dimension's resolved distribution: the kind and the concrete
// cycle width B (>= 1). For DistBlock, B is ceil(N/P); for DistCyclic it
// is 1. A zero Dist is not valid; distributions are produced by
// ResolveDist from a Decomp specification.
type Dist struct {
	Kind DistKind
	B    int
}

func (d Dist) String() string {
	if d.Kind == DistBlockCyclic {
		return fmt.Sprintf("block_cyclic(%d)", d.B)
	}
	return d.Kind.String()
}

// ResolveDist turns one dimension's Decomp specification into a concrete
// Dist for extent n over p grid cells.
func ResolveDist(spec Decomp, n, p int) (Dist, error) {
	if n < 1 || p < 1 {
		return Dist{}, fmt.Errorf("%w: extent %d over %d cells", ErrBadDecomp, n, p)
	}
	switch spec.Kind {
	case Block, BlockN, Star:
		return Dist{Kind: DistBlock, B: (n + p - 1) / p}, nil
	case Cyclic:
		return Dist{Kind: DistCyclic, B: 1}, nil
	case BlockCyclic:
		if spec.B < 1 {
			return Dist{}, fmt.Errorf("%w: block_cyclic width %d", ErrBadDecomp, spec.B)
		}
		return Dist{Kind: DistBlockCyclic, B: spec.B}, nil
	default:
		return Dist{}, fmt.Errorf("%w: unknown kind %d", ErrBadDecomp, spec.Kind)
	}
}

// ResolveDists resolves a full specification vector against array and grid
// dimensions.
func ResolveDists(dims, gridDims []int, specs []Decomp) ([]Dist, error) {
	if len(dims) != len(gridDims) || len(dims) != len(specs) {
		return nil, fmt.Errorf("%w: %d dims, %d grid dims, %d specs", ErrBadDecomp, len(dims), len(gridDims), len(specs))
	}
	out := make([]Dist, len(dims))
	for i := range dims {
		d, err := ResolveDist(specs[i], dims[i], gridDims[i])
		if err != nil {
			return nil, fmt.Errorf("dimension %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}

// blocks returns nb = ceil(n/B), the number of cycle blocks of extent n.
func (d Dist) blocks(n int) int { return (n + d.B - 1) / d.B }

// Owner maps global index g to its owning cell and the index within that
// cell's local storage, for extent n over p cells. It allocates nothing.
func (d Dist) Owner(g, p int) (cell, local int) {
	j := g / d.B
	return j % p, (j/p)*d.B + g%d.B
}

// Global is the inverse of Owner: the global index of cell's local element
// l. The result is meaningful only for l < Count(n, p, cell); larger l
// address the cell's unused trailing storage.
func (d Dist) Global(cell, l, p int) int {
	j := (l/d.B)*p + cell
	return j*d.B + l%d.B
}

// Count returns the number of elements of an extent-n dimension owned by
// cell (0 <= cell < p). Cells may own zero elements when n < p*B.
func (d Dist) Count(n, p, cell int) int {
	nb := d.blocks(n)
	if cell >= nb {
		return 0
	}
	owned := (nb - cell + p - 1) / p // cycle blocks owned by this cell
	c := owned * d.B
	if (nb-1)%p == cell {
		c -= nb*d.B - n // the trailing block is truncated to the extent
	}
	return c
}

// Storage returns the uniform per-cell storage extent along the dimension:
// ceil(nb/p) cycle blocks of width B, the extent of the fullest cell. Every
// local index Owner produces is < Storage.
func (d Dist) Storage(n, p int) int {
	return (d.blocks(n) + p - 1) / p * d.B
}

// StorageDims returns the uniform local-section storage dimensions for
// dims distributed over gridDims with the given per-dimension
// distributions — the generalization of LocalDims without the
// divide-evenly restriction.
func StorageDims(dims, gridDims []int, dists []Dist) ([]int, error) {
	if len(dims) != len(gridDims) || len(dims) != len(dists) {
		return nil, fmt.Errorf("%w: %d dims, %d grid dims, %d dists", ErrBadDecomp, len(dims), len(gridDims), len(dists))
	}
	out := make([]int, len(dims))
	for i := range dims {
		if dims[i] < 1 || gridDims[i] < 1 || dists[i].B < 1 {
			return nil, fmt.Errorf("%w: dim %d: extent %d, grid %d, width %d", ErrBadDecomp, i, dims[i], gridDims[i], dists[i].B)
		}
		out[i] = dists[i].Storage(dims[i], gridDims[i])
	}
	return out, nil
}

// Regular reports whether the distribution leaves every cell a single
// contiguous run of global indices, so rectangle-based owner splitting
// applies: block dimensions always, cyclic dimensions only when their grid
// dimension is 1.
func Regular(gridDims []int, dists []Dist) bool {
	for i, d := range dists {
		if d.Kind != DistBlock && gridDims[i] > 1 {
			return false
		}
	}
	return true
}

// ParseDecomp parses one dimension's decomposition specification:
//
//	"block"              the paper's default block
//	"block(N)"           block with the grid dimension fixed to N
//	"*"                  not decomposed
//	"cyclic"             element round-robin
//	"cyclic(N)"          cyclic with the grid dimension fixed to N
//	"block_cyclic(B)"    width-B blocks dealt round-robin
//	"block_cyclic(B,N)"  block-cyclic with the grid dimension fixed to N
func ParseDecomp(s string) (Decomp, error) {
	s = strings.TrimSpace(s)
	name, args := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Decomp{}, fmt.Errorf("%w: %q", ErrBadDecomp, s)
		}
		name, args = s[:i], s[i+1:len(s)-1]
	}
	argv, err := parseDecompArgs(args)
	if err != nil {
		return Decomp{}, fmt.Errorf("%w: %q", ErrBadDecomp, s)
	}
	for _, v := range argv {
		// Explicit arguments must be positive: "cyclic(0)" is a typo, not
		// a request for the default grid dimension.
		if v < 1 {
			return Decomp{}, fmt.Errorf("%w: %q", ErrBadDecomp, s)
		}
	}
	switch {
	case name == "*" && len(argv) == 0:
		return NoDecomp(), nil
	case name == "block" && len(argv) == 0:
		return BlockDefault(), nil
	case name == "block" && len(argv) == 1:
		return BlockOf(argv[0]), nil
	case name == "cyclic" && len(argv) == 0:
		return CyclicDefault(), nil
	case name == "cyclic" && len(argv) == 1:
		return CyclicOf(argv[0]), nil
	case name == "block_cyclic" && len(argv) == 1:
		return BlockCyclicOf(argv[0]), nil
	case name == "block_cyclic" && len(argv) == 2:
		return BlockCyclicOfN(argv[0], argv[1]), nil
	default:
		return Decomp{}, fmt.Errorf("%w: %q", ErrBadDecomp, s)
	}
}

func parseDecompArgs(args string) ([]int, error) {
	if args == "" {
		return nil, nil
	}
	parts := strings.Split(args, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// DistribString renders a decomposition vector in the canonical
// comma-separated form ParseDistrib accepts, so printed specifications can
// be copy-pasted back in: DistribString(ParseDistrib(s)) normalizes s, and
// ParseDistrib(DistribString(specs)) reproduces specs exactly.
func DistribString(specs []Decomp) string {
	parts := make([]string, len(specs))
	for i, d := range specs {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

// ParseDistrib parses a comma-separated decomposition vector such as
// "block,cyclic" or "block_cyclic(2),*". Parenthesized arguments may not
// themselves contain commas followed by new specifications, so the
// splitter tracks nesting depth.
func ParseDistrib(s string) ([]Decomp, error) {
	var out []Decomp
	depth, start := 0, 0
	emit := func(tok string) error {
		d, err := ParseDecomp(tok)
		if err != nil {
			return err
		}
		out = append(out, d)
		return nil
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := emit(s[start:i]); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := emit(s[start:]); err != nil {
		return nil, err
	}
	return out, nil
}
