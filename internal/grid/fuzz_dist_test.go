package grid

import (
	"testing"
)

// FuzzDistRoundTrip pins the global↔(cell, local-offset) bijection of the
// distribution arithmetic behind every data path: for any extent, cell
// count, width and kind, Owner must land within bounds, Global must invert
// it, and the per-cell Counts must partition the extent. CI runs this as
// part of the fuzz-smoke job; the seed corpus keeps plain `go test`
// covering the same property deterministically.
func FuzzDistRoundTrip(f *testing.F) {
	f.Add(uint8(24), uint8(4), uint8(6), uint8(0), uint16(7))
	f.Add(uint8(10), uint8(4), uint8(1), uint8(1), uint16(9))
	f.Add(uint8(17), uint8(3), uint8(3), uint8(2), uint16(16))
	f.Add(uint8(5), uint8(7), uint8(2), uint8(0), uint16(4))
	f.Fuzz(func(t *testing.T, rawN, rawP, rawB, rawKind uint8, rawG uint16) {
		n := int(rawN%64) + 1
		p := int(rawP%8) + 1
		var d Dist
		switch rawKind % 3 {
		case 0:
			d = Dist{Kind: DistBlock, B: (n + p - 1) / p}
		case 1:
			d = Dist{Kind: DistCyclic, B: 1}
		case 2:
			d = Dist{Kind: DistBlockCyclic, B: int(rawB%8) + 1}
		}
		storage := d.Storage(n, p)
		g := int(rawG) % n
		cell, l := d.Owner(g, p)
		if cell < 0 || cell >= p {
			t.Fatalf("%v n=%d p=%d: g=%d -> cell %d", d, n, p, g, cell)
		}
		if l < 0 || l >= storage {
			t.Fatalf("%v n=%d p=%d: g=%d -> local %d outside storage %d", d, n, p, g, l, storage)
		}
		if back := d.Global(cell, l, p); back != g {
			t.Fatalf("%v n=%d p=%d: g=%d -> (%d,%d) -> %d", d, n, p, g, cell, l, back)
		}
		// Counts partition the extent, and each cell's count stays within
		// its uniform storage.
		total := 0
		for c := 0; c < p; c++ {
			cnt := d.Count(n, p, c)
			if cnt < 0 || cnt > storage {
				t.Fatalf("%v n=%d p=%d: cell %d count %d outside [0,%d]", d, n, p, c, cnt, storage)
			}
			// Every owned local index round-trips through Global/Owner.
			if cnt > 0 {
				lastG := d.Global(c, cnt-1, p)
				if lastG < 0 || lastG >= n {
					t.Fatalf("%v n=%d p=%d: cell %d last element maps to %d", d, n, p, c, lastG)
				}
				if bc, bl := d.Owner(lastG, p); bc != c || bl != cnt-1 {
					t.Fatalf("%v n=%d p=%d: cell %d local %d -> g=%d -> (%d,%d)", d, n, p, c, cnt-1, lastG, bc, bl)
				}
			}
			total += cnt
		}
		if total != n {
			t.Fatalf("%v n=%d p=%d: counts sum to %d", d, n, p, total)
		}
	})
}
