package grid

import (
	"testing"
)

// Fuzzers for the rectangle arithmetic behind the bulk and strided data
// planes. CI runs each with a short -fuzztime as a smoke job; the seed
// corpora below keep `go test` (no -fuzz flag) covering the same
// properties deterministically.

// fuzzDims decodes three bytes into a small 3-D shape (1..8 per side).
func fuzzDims(d0, d1, d2 uint8) []int {
	return []int{int(d0%8) + 1, int(d1%8) + 1, int(d2%8) + 1}
}

// FuzzFlattenUnflatten: Unflatten then Flatten is the identity on linear
// offsets, under both indexing orders, for any shape.
func FuzzFlattenUnflatten(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint16(17), true)
	f.Add(uint8(1), uint8(1), uint8(1), uint16(0), false)
	f.Add(uint8(7), uint8(5), uint8(3), uint16(1000), false)
	f.Fuzz(func(t *testing.T, d0, d1, d2 uint8, lin uint16, rowMajor bool) {
		dims := fuzzDims(d0, d1, d2)
		ix := ColMajor
		if rowMajor {
			ix = RowMajor
		}
		l := int(lin) % Size(dims)
		idx, err := Unflatten(l, dims, ix)
		if err != nil {
			t.Fatalf("Unflatten(%d, %v): %v", l, dims, err)
		}
		got, err := Flatten(idx, dims, ix)
		if err != nil {
			t.Fatalf("Flatten(%v, %v): %v", idx, dims, err)
		}
		if got != l {
			t.Fatalf("round trip %d -> %v -> %d (%v, %v)", l, idx, got, dims, ix)
		}
	})
}

// fuzzRect decodes two bytes per dimension into a non-empty rectangle
// within [0, 16) per side.
func fuzzRect(raw []uint8) (lo, hi []int) {
	n := len(raw) / 2
	lo = make([]int, n)
	hi = make([]int, n)
	for i := 0; i < n; i++ {
		lo[i] = int(raw[2*i] % 16)
		hi[i] = lo[i] + 1 + int(raw[2*i+1]%8)
	}
	return lo, hi
}

// FuzzIntersectRect: dense rectangle intersection is symmetric, and the
// reported box is exactly the set of points in both inputs.
func FuzzIntersectRect(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(2), uint8(4), uint8(1), uint8(3), uint8(0), uint8(7))
	f.Add(uint8(0), uint8(1), uint8(0), uint8(1), uint8(8), uint8(1), uint8(8), uint8(1))
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, b0, b1, b2, b3 uint8) {
		alo, ahi := fuzzRect([]uint8{a0, a1, a2, a3})
		blo, bhi := fuzzRect([]uint8{b0, b1, b2, b3})
		lo1, hi1, ok1 := IntersectRect(alo, ahi, blo, bhi)
		lo2, hi2, ok2 := IntersectRect(blo, bhi, alo, ahi)
		if ok1 != ok2 {
			t.Fatalf("asymmetric emptiness: [%v,%v) x [%v,%v): %v vs %v", alo, ahi, blo, bhi, ok1, ok2)
		}
		inBoth := func(idx []int) bool {
			for i := range idx {
				if idx[i] < alo[i] || idx[i] >= ahi[i] || idx[i] < blo[i] || idx[i] >= bhi[i] {
					return false
				}
			}
			return true
		}
		if !ok1 {
			// Empty: no point of a may lie in b.
			_ = ForEachRect(alo, ahi, func(idx []int, k int) error {
				if inBoth(idx) {
					t.Fatalf("reported empty but %v in both", idx)
				}
				return nil
			})
			return
		}
		for i := range lo1 {
			if lo1[i] != lo2[i] || hi1[i] != hi2[i] {
				t.Fatalf("asymmetric result: [%v,%v) vs [%v,%v)", lo1, hi1, lo2, hi2)
			}
		}
		want := 0
		_ = ForEachRect(alo, ahi, func(idx []int, k int) error {
			if inBoth(idx) {
				want++
			}
			return nil
		})
		if got := RectSize(lo1, hi1); got != want {
			t.Fatalf("intersection [%v,%v) has %d points, brute force %d", lo1, hi1, got, want)
		}
	})
}

// FuzzStridedRectEnumeration: ForEachStridedRect visits exactly
// StridedRectSize lattice points, in packed row-major order, each in range
// and on the lattice; and IntersectStridedRect with a dense box agrees
// with brute-force membership.
func FuzzStridedRectEnumeration(f *testing.F) {
	f.Add(uint8(1), uint8(9), uint8(3), uint8(0), uint8(7), uint8(2), uint8(2), uint8(6))
	f.Add(uint8(0), uint8(1), uint8(1), uint8(5), uint8(2), uint8(7), uint8(0), uint8(15))
	f.Fuzz(func(t *testing.T, l0, e0, s0, l1, e1, s1, b0, b1 uint8) {
		lo := []int{int(l0 % 12), int(l1 % 12)}
		hi := []int{lo[0] + 1 + int(e0%12), lo[1] + 1 + int(e1%12)}
		step := []int{int(s0%4) + 1, int(s1%4) + 1}
		dims := []int{24, 24}
		if err := CheckStridedRect(lo, hi, step, dims); err != nil {
			t.Fatalf("constructed invalid strided rect: %v", err)
		}
		sdims := StridedRectDims(lo, hi, step)
		count := 0
		if err := ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
			if k != count {
				t.Fatalf("position %d out of order (want %d)", k, count)
			}
			pos := 0
			for i := range idx {
				if idx[i] < lo[i] || idx[i] >= hi[i] {
					t.Fatalf("point %v outside [%v,%v)", idx, lo, hi)
				}
				if (idx[i]-lo[i])%step[i] != 0 {
					t.Fatalf("point %v off the %v lattice", idx, step)
				}
				pos = pos*sdims[i] + (idx[i]-lo[i])/step[i]
			}
			if pos != k {
				t.Fatalf("point %v packed at %d, row-major says %d", idx, k, pos)
			}
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if want := StridedRectSize(lo, hi, step); count != want {
			t.Fatalf("enumerated %d points, StridedRectSize %d", count, want)
		}

		// Intersection with a dense box agrees with brute force.
		blo := []int{int(b0 % 16), int(b1 % 16)}
		bhi := []int{blo[0] + 4, blo[1] + 4}
		olo, ohi, ok := IntersectStridedRect(lo, hi, step, blo, bhi)
		want := 0
		_ = ForEachStridedRect(lo, hi, step, func(idx []int, k int) error {
			if idx[0] >= blo[0] && idx[0] < bhi[0] && idx[1] >= blo[1] && idx[1] < bhi[1] {
				want++
			}
			return nil
		})
		if !ok {
			if want != 0 {
				t.Fatalf("intersection reported empty, brute force found %d", want)
			}
			return
		}
		if got := StridedRectSize(olo, ohi, step); got != want {
			t.Fatalf("intersection [%v,%v) step %v has %d points, brute force %d", olo, ohi, step, got, want)
		}
	})
}
