// Package grid implements the block-decomposition and processor-grid
// arithmetic of §3.2.1 of the paper: computing processor-grid dimensions
// from decomposition specifications (block, block(N), *), local-section
// dimensions, row-major/column-major flattening, and the bijection between
// global indices and {processor-grid coordinate, local indices} pairs.
//
// All functions here are pure; they are the single source of truth for
// index mapping used by the array manager and by distributed calls.
package grid

import (
	"errors"
	"fmt"
)

// Indexing selects row-major (C-style) or column-major (Fortran-style)
// linearisation of multidimensional indices. The paper lets the user choose
// per array (§3.2.1.3); the choice applies to both the array and its
// processor grid.
type Indexing uint8

const (
	// RowMajor is C-style indexing: the last dimension varies fastest.
	RowMajor Indexing = iota
	// ColMajor is Fortran-style indexing: the first dimension varies
	// fastest.
	ColMajor
)

func (ix Indexing) String() string {
	if ix == RowMajor {
		return "row"
	}
	return "column"
}

// ParseIndexing accepts the paper's spellings: "row" or "C" for row-major,
// "column" or "Fortran" for column-major.
func ParseIndexing(s string) (Indexing, error) {
	switch s {
	case "row", "C", "c":
		return RowMajor, nil
	case "column", "col", "Fortran", "fortran":
		return ColMajor, nil
	default:
		return RowMajor, fmt.Errorf("grid: unknown indexing type %q", s)
	}
}

// DecompKind is the decomposition option for one array dimension.
type DecompKind uint8

const (
	// Block lets the corresponding processor-grid dimension assume its
	// default value (the paper's "block").
	Block DecompKind = iota
	// BlockN fixes the corresponding processor-grid dimension to N
	// (the paper's "block(N)").
	BlockN
	// Star specifies that the array is not decomposed along this dimension
	// (processor-grid dimension 1; the paper's "*").
	Star
	// Cyclic deals single elements round-robin over the grid dimension
	// ("cyclic"; "cyclic(N)" fixes the grid dimension to N). It goes
	// beyond the paper's prototype, which supports only block layouts.
	Cyclic
	// BlockCyclic deals blocks of a given width round-robin
	// ("block_cyclic(B)"; "block_cyclic(B,N)" fixes the grid dimension).
	BlockCyclic
)

// Decomp is a per-dimension decomposition specification.
type Decomp struct {
	Kind DecompKind
	N    int // grid-dimension constraint; 0 means unspecified (default)
	B    int // cycle block width, used only when Kind == BlockCyclic
}

// BlockDefault returns the "block" specification.
func BlockDefault() Decomp { return Decomp{Kind: Block} }

// BlockOf returns the "block(n)" specification.
func BlockOf(n int) Decomp { return Decomp{Kind: BlockN, N: n} }

// NoDecomp returns the "*" specification.
func NoDecomp() Decomp { return Decomp{Kind: Star} }

// CyclicDefault returns the "cyclic" specification (default grid
// dimension).
func CyclicDefault() Decomp { return Decomp{Kind: Cyclic} }

// CyclicOf returns the "cyclic(n)" specification (grid dimension fixed to
// n).
func CyclicOf(n int) Decomp { return Decomp{Kind: Cyclic, N: n} }

// BlockCyclicOf returns the "block_cyclic(b)" specification: width-b
// blocks dealt round-robin, default grid dimension.
func BlockCyclicOf(b int) Decomp { return Decomp{Kind: BlockCyclic, B: b} }

// BlockCyclicOfN returns the "block_cyclic(b, n)" specification with the
// grid dimension fixed to n.
func BlockCyclicOfN(b, n int) Decomp { return Decomp{Kind: BlockCyclic, B: b, N: n} }

func (d Decomp) String() string {
	switch d.Kind {
	case Block:
		return "block"
	case BlockN:
		return fmt.Sprintf("block(%d)", d.N)
	case Star:
		return "*"
	case Cyclic:
		if d.N > 0 {
			return fmt.Sprintf("cyclic(%d)", d.N)
		}
		return "cyclic"
	case BlockCyclic:
		if d.N > 0 {
			return fmt.Sprintf("block_cyclic(%d,%d)", d.B, d.N)
		}
		return fmt.Sprintf("block_cyclic(%d)", d.B)
	default:
		return "?"
	}
}

// ErrBadDecomp reports an invalid decomposition request.
var ErrBadDecomp = errors.New("grid: invalid decomposition")

// IntRoot returns the largest r >= 1 with r^n <= x, for x >= 1, n >= 1.
func IntRoot(x, n int) int {
	if x < 1 || n < 1 {
		return 0
	}
	if n == 1 {
		return x
	}
	r := 1
	for pow(r+1, n) <= x {
		r++
	}
	return r
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		if b != 0 && p > (1<<62)/b {
			return 1 << 62 // saturate; only used for comparisons
		}
		p *= b
	}
	return p
}

// GridDims computes the processor-grid dimensions for an N-dimensional
// array distributed over p processors with the given per-dimension
// specifications, following §3.2.1.2 exactly:
//
//   - by default all dimensions are P^(1/N) (integer root);
//   - block(N) fixes a dimension to N; * fixes a dimension to 1;
//   - with M specified dimensions of product Q, each unspecified dimension
//     becomes floor((P/Q)^(1/(N-M)));
//   - the product of the grid dimensions must be >= 1 and <= p.
func GridDims(p int, specs []Decomp) ([]int, error) {
	if p < 1 {
		return nil, fmt.Errorf("%w: %d processors", ErrBadDecomp, p)
	}
	n := len(specs)
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional decomposition", ErrBadDecomp)
	}
	dims := make([]int, n)
	q := 1
	unspecified := 0
	for i, s := range specs {
		switch s.Kind {
		case Block:
			dims[i] = 0 // filled below
			unspecified++
		case BlockN:
			if s.N < 1 {
				return nil, fmt.Errorf("%w: block(%d)", ErrBadDecomp, s.N)
			}
			dims[i] = s.N
			q *= s.N
		case Star:
			dims[i] = 1
			q *= 1
		case Cyclic, BlockCyclic:
			// Cyclic layouts size their grid dimension exactly like block:
			// default (unspecified) or fixed to N. Block-cyclic additionally
			// needs a positive cycle width.
			if s.Kind == BlockCyclic && s.B < 1 {
				return nil, fmt.Errorf("%w: block_cyclic(%d)", ErrBadDecomp, s.B)
			}
			if s.N < 0 {
				return nil, fmt.Errorf("%w: %s", ErrBadDecomp, s)
			}
			if s.N == 0 {
				dims[i] = 0
				unspecified++
			} else {
				dims[i] = s.N
				q *= s.N
			}
		default:
			return nil, fmt.Errorf("%w: unknown kind %d", ErrBadDecomp, s.Kind)
		}
	}
	if q > p {
		return nil, fmt.Errorf("%w: specified grid dimensions use %d processors, only %d available", ErrBadDecomp, q, p)
	}
	if unspecified > 0 {
		r := IntRoot(p/q, unspecified)
		if r < 1 {
			return nil, fmt.Errorf("%w: no processors left for unspecified dimensions", ErrBadDecomp)
		}
		for i := range dims {
			if dims[i] == 0 {
				dims[i] = r
			}
		}
	}
	return dims, nil
}

// Size returns the product of dims (the number of elements, or of grid
// cells).
func Size(dims []int) int {
	s := 1
	for _, d := range dims {
		s *= d
	}
	return s
}

// LocalDims returns the dimensions of one local section of an exactly
// divisible block decomposition: dims[i]/grid[i] per dimension, with an
// error when a grid dimension does not divide its array dimension — the
// restriction of the paper's prototype (§3.2.1.1). The array manager no
// longer carries that restriction: it sizes sections with StorageDims,
// which handles uneven trailing blocks and cyclic layouts. LocalDims
// remains the helper for the block-exact arithmetic below (GlobalToLocal,
// CellRect, OwnerSlot).
func LocalDims(dims, gridDims []int) ([]int, error) {
	if len(dims) != len(gridDims) {
		return nil, fmt.Errorf("%w: %d array dims vs %d grid dims", ErrBadDecomp, len(dims), len(gridDims))
	}
	out := make([]int, len(dims))
	for i := range dims {
		if gridDims[i] < 1 || dims[i] < 1 {
			return nil, fmt.Errorf("%w: dim %d: array %d, grid %d", ErrBadDecomp, i, dims[i], gridDims[i])
		}
		if dims[i]%gridDims[i] != 0 {
			return nil, fmt.Errorf("%w: grid dimension %d (=%d) does not divide array dimension (=%d)", ErrBadDecomp, i, gridDims[i], dims[i])
		}
		out[i] = dims[i] / gridDims[i]
	}
	return out, nil
}

// ErrBadIndex reports an out-of-range or malformed index tuple.
var ErrBadIndex = errors.New("grid: index out of range")

// CheckIndex validates idx against dims.
func CheckIndex(idx, dims []int) error {
	if len(idx) != len(dims) {
		return fmt.Errorf("%w: %d indices for %d dimensions", ErrBadIndex, len(idx), len(dims))
	}
	for i := range idx {
		if idx[i] < 0 || idx[i] >= dims[i] {
			return fmt.Errorf("%w: index %d = %d, dimension size %d", ErrBadIndex, i, idx[i], dims[i])
		}
	}
	return nil
}

// Flatten maps a multidimensional index to a linear offset under the given
// indexing order.
func Flatten(idx, dims []int, ix Indexing) (int, error) {
	if err := CheckIndex(idx, dims); err != nil {
		return 0, err
	}
	lin := 0
	if ix == RowMajor {
		for i := 0; i < len(dims); i++ {
			lin = lin*dims[i] + idx[i]
		}
	} else {
		for i := len(dims) - 1; i >= 0; i-- {
			lin = lin*dims[i] + idx[i]
		}
	}
	return lin, nil
}

// Unflatten is the inverse of Flatten. lin must be in [0, Size(dims)).
func Unflatten(lin int, dims []int, ix Indexing) ([]int, error) {
	if lin < 0 || lin >= Size(dims) {
		return nil, fmt.Errorf("%w: linear index %d, size %d", ErrBadIndex, lin, Size(dims))
	}
	idx := make([]int, len(dims))
	if ix == RowMajor {
		for i := len(dims) - 1; i >= 0; i-- {
			idx[i] = lin % dims[i]
			lin /= dims[i]
		}
	} else {
		for i := 0; i < len(dims); i++ {
			idx[i] = lin % dims[i]
			lin /= dims[i]
		}
	}
	return idx, nil
}

// GlobalToLocal maps a global index tuple to the processor-grid coordinate
// owning it and the index tuple within that local section (§3.2.1.1: each
// N-tuple of global indices corresponds to exactly one
// {processor-reference-tuple, local-indices-tuple} pair).
func GlobalToLocal(gidx, dims, gridDims []int) (gridCoord, lidx []int, err error) {
	if err := CheckIndex(gidx, dims); err != nil {
		return nil, nil, err
	}
	local, err := LocalDims(dims, gridDims)
	if err != nil {
		return nil, nil, err
	}
	gridCoord = make([]int, len(dims))
	lidx = make([]int, len(dims))
	for i := range dims {
		gridCoord[i] = gidx[i] / local[i]
		lidx[i] = gidx[i] % local[i]
	}
	return gridCoord, lidx, nil
}

// LocalToGlobal is the inverse of GlobalToLocal.
func LocalToGlobal(gridCoord, lidx, dims, gridDims []int) ([]int, error) {
	local, err := LocalDims(dims, gridDims)
	if err != nil {
		return nil, err
	}
	if err := CheckIndex(gridCoord, gridDims); err != nil {
		return nil, fmt.Errorf("grid coordinate: %w", err)
	}
	if err := CheckIndex(lidx, local); err != nil {
		return nil, fmt.Errorf("local index: %w", err)
	}
	gidx := make([]int, len(dims))
	for i := range dims {
		gidx[i] = gridCoord[i]*local[i] + lidx[i]
	}
	return gidx, nil
}

// ProcSlot maps a processor-grid coordinate to its slot in the
// 1-dimensional processor array the user supplied, using the array's
// indexing order (§3.2.1.4: "the mapping from N-dimensional processor grid
// into 1-dimensional array [is] either row-major or column-major depending
// on the type of indexing the user selects").
func ProcSlot(gridCoord, gridDims []int, ix Indexing) (int, error) {
	return Flatten(gridCoord, gridDims, ix)
}

// --- rectangle arithmetic (the bulk data plane) ---
//
// A rectangle is a half-open box [lo, hi) of global or local indices: it
// contains every index tuple idx with lo[i] <= idx[i] < hi[i]. Rectangles
// are the transfer unit of the bulk data plane: the array manager splits a
// global rectangle into the sub-rectangles owned by each local section and
// moves each sub-rectangle in a single message.

// ErrBadRect reports a malformed or out-of-range rectangle.
var ErrBadRect = errors.New("grid: invalid rectangle")

// CheckRect validates the half-open rectangle [lo, hi) against dims: the
// three slices must have equal length and 0 <= lo[i] < hi[i] <= dims[i] in
// every dimension (empty rectangles are rejected).
func CheckRect(lo, hi, dims []int) error {
	if len(lo) != len(dims) || len(hi) != len(dims) {
		return fmt.Errorf("%w: bounds of length %d/%d for %d dimensions", ErrBadRect, len(lo), len(hi), len(dims))
	}
	for i := range dims {
		if lo[i] < 0 || lo[i] >= hi[i] || hi[i] > dims[i] {
			return fmt.Errorf("%w: dimension %d: [%d,%d) within size %d", ErrBadRect, i, lo[i], hi[i], dims[i])
		}
	}
	return nil
}

// RectDims returns the edge lengths hi[i]-lo[i] of the rectangle.
func RectDims(lo, hi []int) []int {
	out := make([]int, len(lo))
	for i := range lo {
		out[i] = hi[i] - lo[i]
	}
	return out
}

// RectSize returns the number of index tuples in [lo, hi).
func RectSize(lo, hi []int) int {
	s := 1
	for i := range lo {
		s *= hi[i] - lo[i]
	}
	return s
}

// IntersectRect intersects the rectangles [alo, ahi) and [blo, bhi); ok
// reports whether the intersection is non-empty.
func IntersectRect(alo, ahi, blo, bhi []int) (lo, hi []int, ok bool) {
	lo = make([]int, len(alo))
	hi = make([]int, len(alo))
	for i := range alo {
		lo[i] = max(alo[i], blo[i])
		hi[i] = min(ahi[i], bhi[i])
		if lo[i] >= hi[i] {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// CellRect returns the global region [lo, hi) owned by the local section at
// processor-grid coordinate coord: the blocks of the §3.2.1.1 block
// decomposition, expressed as rectangles.
func CellRect(coord, dims, gridDims []int) (lo, hi []int, err error) {
	local, err := LocalDims(dims, gridDims)
	if err != nil {
		return nil, nil, err
	}
	if err := CheckIndex(coord, gridDims); err != nil {
		return nil, nil, fmt.Errorf("grid coordinate: %w", err)
	}
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	for i := range dims {
		lo[i] = coord[i] * local[i]
		hi[i] = lo[i] + local[i]
	}
	return lo, hi, nil
}

// ForEachRect enumerates the index tuples of [lo, hi) in row-major order
// (last dimension fastest), calling f with each tuple and its position k in
// that order — the canonical linearization of dense block buffers. The
// tuple is reused between calls; f must not retain it. An empty rectangle
// (hi[i] <= lo[i] in some dimension) is visited zero times; a
// zero-dimensional rectangle contains exactly one (empty) tuple.
func ForEachRect(lo, hi []int, f func(idx []int, k int) error) error {
	n := len(lo)
	for i := range lo {
		if hi[i] <= lo[i] {
			return nil
		}
	}
	idx := append([]int(nil), lo...)
	for k := 0; ; k++ {
		if err := f(idx, k); err != nil {
			return err
		}
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < hi[i] {
				break
			}
			idx[i] = lo[i]
		}
		if i < 0 {
			return nil
		}
	}
}

// --- strided rectangles (the sub-sampled bulk data plane) ---
//
// A strided rectangle is the lattice of index tuples {lo + k*step | k >= 0}
// within the half-open box [lo, hi): every index idx with
// lo[i] <= idx[i] < hi[i] and (idx[i]-lo[i]) divisible by step[i]. step = 1
// in every dimension recovers the dense rectangle. Strided rectangles are
// the transfer unit for regular sub-sampled access (every k-th row/column:
// animation down-sampling, multigrid restriction); like dense rectangles
// they split by owning section into one message per owner.

// CheckStridedRect validates the strided rectangle (lo, hi, step) against
// dims: the bounds must satisfy CheckRect and every step must be >= 1.
func CheckStridedRect(lo, hi, step, dims []int) error {
	if err := CheckRect(lo, hi, dims); err != nil {
		return err
	}
	if len(step) != len(dims) {
		return fmt.Errorf("%w: %d steps for %d dimensions", ErrBadRect, len(step), len(dims))
	}
	for i, s := range step {
		if s < 1 {
			return fmt.Errorf("%w: dimension %d: step %d (want >= 1)", ErrBadRect, i, s)
		}
	}
	return nil
}

// StridedRectDims returns the per-dimension lattice counts
// ceil((hi[i]-lo[i]) / step[i]): the shape of the dense buffer a strided
// rectangle packs into.
func StridedRectDims(lo, hi, step []int) []int {
	out := make([]int, len(lo))
	for i := range lo {
		out[i] = (hi[i] - lo[i] + step[i] - 1) / step[i]
	}
	return out
}

// StridedRectSize returns the number of lattice points of (lo, hi, step).
// It allocates nothing, so owner-side service routines may call it per
// request.
func StridedRectSize(lo, hi, step []int) int {
	s := 1
	for i := range lo {
		s *= (hi[i] - lo[i] + step[i] - 1) / step[i]
	}
	return s
}

// IntersectStridedRect intersects the strided rectangle (lo, hi, step) with
// the dense box [blo, bhi). The intersection is itself a strided rectangle
// with the same step whose olo lies on the original lattice (so anchors
// stay congruent: a point is in the result iff it is in both inputs); ok
// reports whether it is non-empty.
func IntersectStridedRect(lo, hi, step, blo, bhi []int) (olo, ohi []int, ok bool) {
	olo = make([]int, len(lo))
	ohi = make([]int, len(lo))
	for i := range lo {
		l := max(lo[i], blo[i])
		h := min(hi[i], bhi[i])
		// Align l up to the lattice anchored at lo[i].
		if rem := (l - lo[i]) % step[i]; rem != 0 {
			l += step[i] - rem
		}
		if l >= h {
			return nil, nil, false
		}
		olo[i] = l
		ohi[i] = h
	}
	return olo, ohi, true
}

// ForEachStridedRect enumerates the lattice points of (lo, hi, step) in
// row-major order (last dimension fastest), calling f with each tuple and
// its position k in that order — the canonical linearization of packed
// strided buffers, matching Flatten(…, StridedRectDims, RowMajor) of the
// per-dimension lattice coordinates. The tuple is reused between calls; f
// must not retain it. An empty rectangle is visited zero times; a
// zero-dimensional one exactly once.
func ForEachStridedRect(lo, hi, step []int, f func(idx []int, k int) error) error {
	n := len(lo)
	for i := range lo {
		if hi[i] <= lo[i] {
			return nil
		}
	}
	idx := append([]int(nil), lo...)
	for k := 0; ; k++ {
		if err := f(idx, k); err != nil {
			return err
		}
		i := n - 1
		for ; i >= 0; i-- {
			idx[i] += step[i]
			if idx[i] < hi[i] {
				break
			}
			idx[i] = lo[i]
		}
		if i < 0 {
			return nil
		}
	}
}

// Strides returns the per-dimension storage strides of a dims-shaped box
// under the given indexing order (stride 1 on the fastest-varying
// dimension).
func Strides(dims []int, ix Indexing) []int {
	out := make([]int, len(dims))
	if ix == RowMajor {
		s := 1
		for i := len(dims) - 1; i >= 0; i-- {
			out[i] = s
			s *= dims[i]
		}
	} else {
		s := 1
		for i := 0; i < len(dims); i++ {
			out[i] = s
			s *= dims[i]
		}
	}
	return out
}

// OwnerSlot composes GlobalToLocal and ProcSlot: it returns the slot (index
// into the processor array) owning gidx and the flattened offset of the
// element within the interior of the local section.
func OwnerSlot(gidx, dims, gridDims []int, ix Indexing) (slot, localOff int, err error) {
	coord, lidx, err := GlobalToLocal(gidx, dims, gridDims)
	if err != nil {
		return 0, 0, err
	}
	slot, err = ProcSlot(coord, gridDims, ix)
	if err != nil {
		return 0, 0, err
	}
	local, err := LocalDims(dims, gridDims)
	if err != nil {
		return 0, 0, err
	}
	localOff, err = Flatten(lidx, local, ix)
	if err != nil {
		return 0, 0, err
	}
	return slot, localOff, nil
}
