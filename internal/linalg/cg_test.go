package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/spmd"
)

// spdMatrix builds a symmetric positive-definite matrix A = MᵀM + n*I.
func spdMatrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m[k*n+i] * m[k*n+j]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += float64(n)
	}
	return a
}

func TestConjugateGradientSolves(t *testing.T) {
	const n = 16
	a := spdMatrix(n, 41)
	rng := rand.New(rand.NewSource(42))
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.NormFloat64()
	}
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		bBlocks := scatter(bvec, p)
		xBlocks := make([][]float64, p)
		iters := make([]int, p)
		runGroup(t, p, func(w *spmd.World) error {
			x, res, err := ConjugateGradient(w, aBlocks[w.Rank()], n, bBlocks[w.Rank()], 1e-12, 200)
			if err != nil {
				return err
			}
			if res.Residual > 1e-8 {
				return fmt.Errorf("residual %g", res.Residual)
			}
			xBlocks[w.Rank()] = x
			iters[w.Rank()] = res.Iterations
			return nil
		})
		// All copies agree on the iteration count (lock-step collectives).
		for _, it := range iters {
			if it != iters[0] {
				t.Fatalf("p=%d: divergent iteration counts %v", p, iters)
			}
		}
		var x []float64
		for i := 0; i < p; i++ {
			x = append(x, xBlocks[i]...)
		}
		// Residual against the dense system.
		for i := 0; i < n; i++ {
			s := -bvec[i]
			for j := 0; j < n; j++ {
				s += a[i*n+j] * x[j]
			}
			if math.Abs(s) > 1e-7 {
				t.Fatalf("p=%d: residual[%d] = %v", p, i, s)
			}
		}
	}
}

// CG across group sizes produces the same solution (collectives are
// deterministic in rank order up to floating-point reassociation across
// trees; compare loosely).
func TestConjugateGradientConsistentAcrossP(t *testing.T) {
	const n = 8
	a := spdMatrix(n, 7)
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = float64(i + 1)
	}
	solutions := map[int][]float64{}
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		bBlocks := scatter(bvec, p)
		xBlocks := make([][]float64, p)
		runGroup(t, p, func(w *spmd.World) error {
			x, _, err := ConjugateGradient(w, aBlocks[w.Rank()], n, bBlocks[w.Rank()], 1e-12, 100)
			if err != nil {
				return err
			}
			xBlocks[w.Rank()] = x
			return nil
		})
		var x []float64
		for i := 0; i < p; i++ {
			x = append(x, xBlocks[i]...)
		}
		solutions[p] = x
	}
	for _, p := range []int{2, 4} {
		for i := range solutions[1] {
			if math.Abs(solutions[p][i]-solutions[1][i]) > 1e-6 {
				t.Fatalf("P=%d solution diverges at %d: %v vs %v", p, i, solutions[p][i], solutions[1][i])
			}
		}
	}
}

func TestConjugateGradientRejectsNonSPD(t *testing.T) {
	// Negative-definite matrix: pᵀAp < 0 on the first step.
	a := []float64{
		-4, 0,
		0, -4,
	}
	runGroup(t, 2, func(w *spmd.World) error {
		aLocal := a[w.Rank()*2 : (w.Rank()+1)*2]
		bLocal := []float64{1}
		if _, _, err := ConjugateGradient(w, aLocal, 2, bLocal, 1e-10, 10); err == nil {
			return fmt.Errorf("non-SPD matrix must fail")
		}
		return nil
	})
}

func TestConjugateGradientShapeErrors(t *testing.T) {
	runGroup(t, 2, func(w *spmd.World) error {
		if _, _, err := ConjugateGradient(w, make([]float64, 1), 4, make([]float64, 2), 1e-10, 10); err == nil {
			return fmt.Errorf("short matrix must fail")
		}
		if _, _, err := ConjugateGradient(w, make([]float64, 8), 3, make([]float64, 2), 1e-10, 10); err == nil {
			return fmt.Errorf("indivisible n must fail")
		}
		return nil
	})
}

// Zero right-hand side: converges immediately with x = 0.
func TestConjugateGradientZeroRHS(t *testing.T) {
	a := spdMatrix(4, 3)
	runGroup(t, 2, func(w *spmd.World) error {
		aBlocks := scatter(a, 2)
		x, res, err := ConjugateGradient(w, aBlocks[w.Rank()], 4, make([]float64, 2), 1e-12, 10)
		if err != nil {
			return err
		}
		if res.Iterations != 0 || x[0] != 0 || x[1] != 0 {
			return fmt.Errorf("zero rhs: iters=%d x=%v", res.Iterations, x)
		}
		return nil
	})
}
