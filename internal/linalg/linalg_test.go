package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/msg"
	"repro/internal/spmd"
)

// runGroup executes body once per rank over p processors.
func runGroup(t *testing.T, p int, body func(w *spmd.World) error) {
	t.Helper()
	r := msg.NewRouter(p)
	defer r.Close()
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = body(spmd.NewWorld(r, procs, i, 1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// scatter splits a dense slice into per-rank blocks.
func scatter(full []float64, p int) [][]float64 {
	l := len(full) / p
	out := make([][]float64, p)
	for i := 0; i < p; i++ {
		out[i] = append([]float64(nil), full[i*l:(i+1)*l]...)
	}
	return out
}

func TestBlock(t *testing.T) {
	runGroup(t, 4, func(w *spmd.World) error {
		b, err := Block(w, 12)
		if err != nil {
			return err
		}
		if b.Local != 3 || b.Offset != w.Rank()*3 || b.N != 12 {
			return fmt.Errorf("block = %+v", b)
		}
		if _, err := Block(w, 13); err == nil {
			return fmt.Errorf("indivisible size should fail")
		}
		if _, err := Block(w, 0); err == nil {
			return fmt.Errorf("zero size should fail")
		}
		return nil
	})
}

func TestVecFillAndDot(t *testing.T) {
	// The §6.1 inner product: V1[i] = V2[i] = i+1; sum of squares
	// 1^2..n^2 = n(n+1)(2n+1)/6.
	const n = 24
	want := float64(n * (n + 1) * (2*n + 1) / 6)
	for _, p := range []int{1, 2, 3, 4, 6} {
		runGroup(t, p, func(w *spmd.World) error {
			x := make([]float64, n/p)
			y := make([]float64, n/p)
			if err := VecFillIndex(w, x, n, func(g int) float64 { return float64(g + 1) }); err != nil {
				return err
			}
			if err := VecFillIndex(w, y, n, func(g int) float64 { return float64(g + 1) }); err != nil {
				return err
			}
			got, err := Dot(w, x, y)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("p=%d: dot = %v, want %v", p, got, want)
			}
			return nil
		})
	}
}

func TestVecOpsLocal(t *testing.T) {
	x := []float64{1, 2, 3}
	VecScale(x, 2)
	if x[2] != 6 {
		t.Fatalf("scale: %v", x)
	}
	y := []float64{1, 1, 1}
	if err := VecAXPY(y, x, 0.5); err != nil {
		t.Fatal(err)
	}
	if y[0] != 2 || y[2] != 4 {
		t.Fatalf("axpy: %v", y)
	}
	if err := VecAXPY(y, []float64{1}, 1); err == nil {
		t.Fatal("axpy shape mismatch must fail")
	}
}

func TestNormsAndMax(t *testing.T) {
	runGroup(t, 2, func(w *spmd.World) error {
		// Global vector (3,4,0,0): norm 5, maxabs 4.
		local := []float64{3, 4}
		if w.Rank() == 1 {
			local = []float64{0, 0}
		}
		nrm, err := Norm2(w, local)
		if err != nil {
			return err
		}
		if nrm != 5 {
			return fmt.Errorf("norm = %v", nrm)
		}
		mx, err := MaxAbs(w, local)
		if err != nil {
			return err
		}
		if mx != 4 {
			return fmt.Errorf("maxabs = %v", mx)
		}
		return nil
	})
}

func TestDotShapeMismatch(t *testing.T) {
	runGroup(t, 1, func(w *spmd.World) error {
		if _, err := Dot(w, []float64{1}, []float64{1, 2}); err == nil {
			return fmt.Errorf("shape mismatch must fail")
		}
		return nil
	})
}

func seqMatVec(a []float64, n, m int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			y[i] += a[i*m+j] * x[j]
		}
	}
	return y
}

func TestMatVecAgainstSequential(t *testing.T) {
	const n, m = 8, 8
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, n*m)
	x := make([]float64, m)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := seqMatVec(a, n, m, x)
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		xBlocks := scatter(x, p)
		got := make([][]float64, p)
		runGroup(t, p, func(w *spmd.World) error {
			y, err := MatVec(w, aBlocks[w.Rank()], n, m, xBlocks[w.Rank()])
			if err != nil {
				return err
			}
			got[w.Rank()] = y
			return nil
		})
		for i := 0; i < n; i++ {
			if math.Abs(got[i/(n/p)][i%(n/p)]-want[i]) > 1e-12 {
				t.Fatalf("p=%d: y[%d] = %v, want %v", p, i, got[i/(n/p)][i%(n/p)], want[i])
			}
		}
	}
}

func seqMatMul(a []float64, n, k int, b []float64, m int) []float64 {
	c := make([]float64, n*m)
	for i := 0; i < n; i++ {
		for kk := 0; kk < k; kk++ {
			for j := 0; j < m; j++ {
				c[i*m+j] += a[i*k+kk] * b[kk*m+j]
			}
		}
	}
	return c
}

func TestMatMulAgainstSequential(t *testing.T) {
	const n, k, m = 4, 8, 6
	rng := rand.New(rand.NewSource(12))
	a := make([]float64, n*k)
	b := make([]float64, k*m)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := seqMatMul(a, n, k, b, m)
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		bBlocks := scatter(b, p)
		got := make([][]float64, p)
		runGroup(t, p, func(w *spmd.World) error {
			c, err := MatMul(w, aBlocks[w.Rank()], n, k, bBlocks[w.Rank()], m)
			if err != nil {
				return err
			}
			got[w.Rank()] = c
			return nil
		})
		lr := n / p
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if math.Abs(got[i/lr][(i%lr)*m+j]-want[i*m+j]) > 1e-12 {
					t.Fatalf("p=%d: C[%d][%d] wrong", p, i, j)
				}
			}
		}
	}
}

// randMatrix produces a well-conditioned random matrix (diagonally
// dominated) for stable factorisation tests.
func randMatrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.NormFloat64()
		}
		a[i*n+i] += float64(n)
	}
	return a
}

func TestLUSolveResidual(t *testing.T) {
	const n = 12
	a := randMatrix(n, 21)
	rng := rand.New(rand.NewSource(22))
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.NormFloat64()
	}
	for _, p := range []int{1, 2, 3, 4, 6} {
		aBlocks := scatter(a, p) // n*n over p: each (n/p)*n
		bBlocks := scatter(bvec, p)
		xBlocks := make([][]float64, p)
		runGroup(t, p, func(w *spmd.World) error {
			lu := append([]float64(nil), aBlocks[w.Rank()]...)
			piv, err := LUFactor(w, lu, n)
			if err != nil {
				return err
			}
			x, err := LUSolve(w, lu, piv, n, bBlocks[w.Rank()])
			if err != nil {
				return err
			}
			xBlocks[w.Rank()] = x
			return nil
		})
		// Assemble x and check the residual against the original A.
		var x []float64
		for i := 0; i < p; i++ {
			x = append(x, xBlocks[i]...)
		}
		res := seqMatVec(a, n, n, x)
		for i := range res {
			if math.Abs(res[i]-bvec[i]) > 1e-9 {
				t.Fatalf("p=%d: residual[%d] = %v", p, i, res[i]-bvec[i])
			}
		}
	}
}

// A matrix that forces pivoting (zero on the first diagonal element).
func TestLUPivotingRequired(t *testing.T) {
	a := []float64{
		0, 1, 2, 3,
		4, 0, 1, 2,
		1, 3, 0, 1,
		2, 1, 3, 0,
	}
	bvec := []float64{1, 2, 3, 4}
	const n = 4
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		bBlocks := scatter(bvec, p)
		xBlocks := make([][]float64, p)
		runGroup(t, p, func(w *spmd.World) error {
			lu := append([]float64(nil), aBlocks[w.Rank()]...)
			piv, err := LUFactor(w, lu, n)
			if err != nil {
				return err
			}
			x, err := LUSolve(w, lu, piv, n, bBlocks[w.Rank()])
			if err != nil {
				return err
			}
			xBlocks[w.Rank()] = x
			return nil
		})
		var x []float64
		for i := 0; i < p; i++ {
			x = append(x, xBlocks[i]...)
		}
		res := seqMatVec(a, n, n, x)
		for i := range res {
			if math.Abs(res[i]-bvec[i]) > 1e-9 {
				t.Fatalf("p=%d: residual[%d] = %v", p, i, res[i]-bvec[i])
			}
		}
	}
}

func TestLUSingularDetected(t *testing.T) {
	a := []float64{
		1, 2,
		2, 4, // linearly dependent
	}
	runGroup(t, 2, func(w *spmd.World) error {
		lu := append([]float64(nil), a[w.Rank()*2:(w.Rank()+1)*2]...)
		if _, err := LUFactor(w, lu, 2); err == nil {
			return fmt.Errorf("singular matrix must fail")
		}
		return nil
	})
}

func TestQRFactor(t *testing.T) {
	const n, m = 8, 4
	rng := rand.New(rand.NewSource(31))
	a := make([]float64, n*m)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for _, p := range []int{1, 2, 4} {
		aBlocks := scatter(a, p)
		qBlocks := make([][]float64, p)
		var rMat []float64
		var mu sync.Mutex
		runGroup(t, p, func(w *spmd.World) error {
			q := append([]float64(nil), aBlocks[w.Rank()]...)
			r, err := QRFactor(w, q, n, m)
			if err != nil {
				return err
			}
			qBlocks[w.Rank()] = q
			mu.Lock()
			rMat = r
			mu.Unlock()
			return nil
		})
		// Assemble Q.
		var q []float64
		for i := 0; i < p; i++ {
			q = append(q, qBlocks[i]...)
		}
		// R upper triangular.
		for i := 0; i < m; i++ {
			for j := 0; j < i; j++ {
				if rMat[i*m+j] != 0 {
					t.Fatalf("p=%d: R not upper triangular at (%d,%d)", p, i, j)
				}
			}
		}
		// Q^T Q = I.
		for c1 := 0; c1 < m; c1++ {
			for c2 := 0; c2 < m; c2++ {
				d := 0.0
				for r := 0; r < n; r++ {
					d += q[r*m+c1] * q[r*m+c2]
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(d-want) > 1e-10 {
					t.Fatalf("p=%d: Q^TQ[%d][%d] = %v", p, c1, c2, d)
				}
			}
		}
		// QR = A.
		qr := seqMatMul(q, n, m, rMat, m)
		for i := range qr {
			if math.Abs(qr[i]-a[i]) > 1e-10 {
				t.Fatalf("p=%d: QR != A at %d (%v vs %v)", p, i, qr[i], a[i])
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := []float64{
		1, 0,
		0, 0,
		0, 0,
		0, 0,
	} // second column zero
	runGroup(t, 2, func(w *spmd.World) error {
		q := append([]float64(nil), a[w.Rank()*4:(w.Rank()+1)*4]...)
		if _, err := QRFactor(w, q, 4, 2); err == nil {
			return fmt.Errorf("rank-deficient matrix must fail")
		}
		return nil
	})
}

func TestShapeErrors(t *testing.T) {
	runGroup(t, 2, func(w *spmd.World) error {
		if err := VecFillIndex(w, make([]float64, 1), 4, func(int) float64 { return 0 }); err == nil {
			return fmt.Errorf("short local section must fail")
		}
		if err := MatFillIndex(w, make([]float64, 1), 4, 4, func(int, int) float64 { return 0 }); err == nil {
			return fmt.Errorf("short matrix block must fail")
		}
		if _, err := MatVec(w, make([]float64, 1), 4, 4, make([]float64, 2)); err == nil {
			return fmt.Errorf("short matvec block must fail")
		}
		if _, err := LUFactor(w, make([]float64, 1), 4); err == nil {
			return fmt.Errorf("short lu block must fail")
		}
		if _, err := LUSolve(w, make([]float64, 8), []int{0}, 4, make([]float64, 2)); err == nil {
			return fmt.Errorf("bad piv length must fail")
		}
		if _, err := QRFactor(w, make([]float64, 1), 2, 4); err == nil {
			return fmt.Errorf("m>n qr must fail")
		}
		return nil
	})
}

func TestMatFillIndex(t *testing.T) {
	runGroup(t, 2, func(w *spmd.World) error {
		local := make([]float64, 2*3)
		if err := MatFillIndex(w, local, 4, 3, func(i, j int) float64 { return float64(10*i + j) }); err != nil {
			return err
		}
		wantFirst := float64(10 * (w.Rank() * 2))
		if local[0] != wantFirst {
			return fmt.Errorf("rank %d: local[0] = %v, want %v", w.Rank(), local[0], wantFirst)
		}
		return nil
	})
}
