package linalg

import (
	"fmt"

	"repro/internal/spmd"
)

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||b - Ax||_2
}

// ConjugateGradient solves A x = b for symmetric positive-definite A using
// the conjugate-gradient method — the iterative counterpart of LUSolve and
// a staple of the SPMD linear-algebra methodology the paper's Appendix D
// library comes from (Van de Velde's concurrent scientific computing
// methods). A is block-row distributed, b and the returned x block
// distributed; every inner product is a group all-reduce and every
// matrix-vector product an all-gather, so the routine exercises the full
// collective repertoire of the SPMD runtime.
//
// Iteration stops when the residual norm falls below tol or after maxIter
// steps.
func ConjugateGradient(w *spmd.World, aLocal []float64, n int, bLocal []float64, tol float64, maxIter int) ([]float64, CGResult, error) {
	blk, err := Block(w, n)
	if err != nil {
		return nil, CGResult{}, err
	}
	l := blk.Local
	if len(aLocal) < l*n || len(bLocal) < l {
		return nil, CGResult{}, fmt.Errorf("%w: cg inputs", ErrShape)
	}
	if maxIter <= 0 {
		maxIter = n
	}

	x := make([]float64, l)
	r := append([]float64(nil), bLocal[:l]...) // r = b - A*0
	p := append([]float64(nil), r...)
	rsold, err := Dot(w, r, r)
	if err != nil {
		return nil, CGResult{}, err
	}

	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		if rsold <= tol*tol {
			break
		}
		ap, err := MatVec(w, aLocal, n, n, p)
		if err != nil {
			return nil, CGResult{}, err
		}
		pap, err := Dot(w, p, ap)
		if err != nil {
			return nil, CGResult{}, err
		}
		if pap <= 0 {
			return nil, CGResult{}, fmt.Errorf("linalg: matrix not positive definite (pᵀAp = %g at iteration %d)", pap, it)
		}
		alpha := rsold / pap
		if err := VecAXPY(x, p, alpha); err != nil {
			return nil, CGResult{}, err
		}
		if err := VecAXPY(r, ap, -alpha); err != nil {
			return nil, CGResult{}, err
		}
		rsnew, err := Dot(w, r, r)
		if err != nil {
			return nil, CGResult{}, err
		}
		beta := rsnew / rsold
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsold = rsnew
		res.Iterations = it + 1
	}

	// Report the true residual ||b - Ax||.
	ax, err := MatVec(w, aLocal, n, n, x)
	if err != nil {
		return nil, CGResult{}, err
	}
	diff := make([]float64, l)
	for i := range diff {
		diff[i] = bLocal[i] - ax[i]
	}
	nrm, err := Norm2(w, diff)
	if err != nil {
		return nil, CGResult{}, err
	}
	res.Residual = nrm
	return x, res, nil
}
