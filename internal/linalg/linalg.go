// Package linalg is the SPMD linear-algebra library of Appendix D of the
// paper: the library of data-parallel programs (originally Eric Van de
// Velde's hand-written SPMD message-passing C library) that the prototype
// implementation was tested against. It provides:
//
//   - creation and initialisation of distributed vectors and matrices,
//   - basic vector/matrix operations (scale, axpy, inner product, norms,
//     matrix-vector and matrix-matrix products),
//   - LU decomposition with partial pivoting and the solution of an
//     LU-decomposed system, and
//   - QR decomposition (modified Gram-Schmidt).
//
// Data layout follows the reproduction's distributed-array conventions:
// a length-n vector is block-distributed (local slice of n/P elements);
// an n x m matrix is distributed by block rows (local slice of (n/P) x m
// elements, row-major). Every routine is an SPMD program body: all copies
// execute it with their own local section and communicate only through the
// spmd.World of the enclosing distributed call, satisfying the §3.5
// requirements (relocatability, flat local sections, typed communication).
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/spmd"
)

// ErrShape reports malformed distributed shapes.
var ErrShape = errors.New("linalg: shape mismatch")

// BlockInfo describes this copy's share of a block-distributed dimension of
// global size n over a group of size p.
type BlockInfo struct {
	N      int // global size
	Local  int // local size (n/p)
	Offset int // global index of local element 0
}

// Block computes the block decomposition of n elements for the calling
// rank. n must be divisible by the group size, matching the array
// manager's divisibility rule.
func Block(w *spmd.World, n int) (BlockInfo, error) {
	p := w.Size()
	if n <= 0 || n%p != 0 {
		return BlockInfo{}, fmt.Errorf("%w: global size %d not divisible by group size %d", ErrShape, n, p)
	}
	l := n / p
	return BlockInfo{N: n, Local: l, Offset: w.Rank() * l}, nil
}

// --- vector operations ---

// VecFillIndex sets local[i] = f(globalIndex) for every local element.
func VecFillIndex(w *spmd.World, local []float64, n int, f func(global int) float64) error {
	b, err := Block(w, n)
	if err != nil {
		return err
	}
	if len(local) < b.Local {
		return fmt.Errorf("%w: local section %d < %d", ErrShape, len(local), b.Local)
	}
	for i := 0; i < b.Local; i++ {
		local[i] = f(b.Offset + i)
	}
	return nil
}

// VecScale multiplies a local section elementwise: purely local work.
func VecScale(local []float64, alpha float64) {
	for i := range local {
		local[i] *= alpha
	}
}

// VecAXPY computes y += alpha*x on local sections.
func VecAXPY(y, x []float64, alpha float64) error {
	if len(y) != len(x) {
		return fmt.Errorf("%w: axpy %d vs %d", ErrShape, len(y), len(x))
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
	return nil
}

// Dot computes the global inner product of two block-distributed vectors:
// local partial sums merged with an all-reduce, the classic SPMD kernel
// the paper's §6.1 example exercises.
func Dot(w *spmd.World, x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrShape, len(x), len(y))
	}
	partial := 0.0
	for i := range x {
		partial += x[i] * y[i]
	}
	return w.AllReduceSum(partial)
}

// Norm2 computes the global Euclidean norm of a block-distributed vector.
func Norm2(w *spmd.World, x []float64) (float64, error) {
	partial := 0.0
	for _, v := range x {
		partial += v * v
	}
	s, err := w.AllReduceSum(partial)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(s), nil
}

// MaxAbs computes the global infinity norm of a block-distributed vector.
func MaxAbs(w *spmd.World, x []float64) (float64, error) {
	partial := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > partial {
			partial = a
		}
	}
	return w.AllReduceMax(partial)
}

// --- matrix operations (block-row distribution) ---

// MatFillIndex sets the local block rows of an n x m matrix:
// element (i,j) = f(i,j) with i the global row index.
func MatFillIndex(w *spmd.World, local []float64, n, m int, f func(i, j int) float64) error {
	b, err := Block(w, n)
	if err != nil {
		return err
	}
	if len(local) < b.Local*m {
		return fmt.Errorf("%w: local block %d < %d", ErrShape, len(local), b.Local*m)
	}
	for r := 0; r < b.Local; r++ {
		for c := 0; c < m; c++ {
			local[r*m+c] = f(b.Offset+r, c)
		}
	}
	return nil
}

// MatVec computes y = A*x for a block-row-distributed n x m matrix A and a
// block-distributed length-m vector x, producing the block-distributed
// length-n vector y. x is all-gathered so each copy can form its rows of
// the product.
func MatVec(w *spmd.World, aLocal []float64, n, m int, xLocal []float64) ([]float64, error) {
	bRows, err := Block(w, n)
	if err != nil {
		return nil, err
	}
	if _, err := Block(w, m); err != nil {
		return nil, err
	}
	if len(aLocal) < bRows.Local*m {
		return nil, fmt.Errorf("%w: matrix block %d < %d", ErrShape, len(aLocal), bRows.Local*m)
	}
	xFull, err := w.AllGather(xLocal)
	if err != nil {
		return nil, err
	}
	if len(xFull) != m {
		return nil, fmt.Errorf("%w: gathered x has %d elements, want %d", ErrShape, len(xFull), m)
	}
	y := make([]float64, bRows.Local)
	for r := 0; r < bRows.Local; r++ {
		s := 0.0
		row := aLocal[r*m : (r+1)*m]
		for c := 0; c < m; c++ {
			s += row[c] * xFull[c]
		}
		y[r] = s
	}
	return y, nil
}

// MatMul computes C = A*B where A is block-row n x k, B is block-row
// k x m; the result C is block-row n x m. B is all-gathered.
func MatMul(w *spmd.World, aLocal []float64, n, k int, bLocal []float64, m int) ([]float64, error) {
	bRows, err := Block(w, n)
	if err != nil {
		return nil, err
	}
	bFull, err := w.AllGather(bLocal)
	if err != nil {
		return nil, err
	}
	if len(bFull) != k*m {
		return nil, fmt.Errorf("%w: gathered B has %d elements, want %d", ErrShape, len(bFull), k*m)
	}
	c := make([]float64, bRows.Local*m)
	for r := 0; r < bRows.Local; r++ {
		aRow := aLocal[r*k : (r+1)*k]
		cRow := c[r*m : (r+1)*m]
		for kk := 0; kk < k; kk++ {
			av := aRow[kk]
			if av == 0 {
				continue
			}
			bRow := bFull[kk*m : (kk+1)*m]
			for j := 0; j < m; j++ {
				cRow[j] += av * bRow[j]
			}
		}
	}
	return c, nil
}

// --- LU decomposition with partial pivoting ---

// pivot carries the per-step argmax reduction.
type pivot struct {
	val float64
	row int
}

// LUFactor performs in-place LU decomposition with partial pivoting of a
// block-row-distributed n x n matrix. On return aLocal holds this copy's
// rows of the combined L\U factors (unit lower-triangular L below the
// diagonal), and the returned slice is the pivot permutation: at step k the
// factorisation swapped rows k and piv[k]. All copies return identical piv.
func LUFactor(w *spmd.World, aLocal []float64, n int) ([]int, error) {
	b, err := Block(w, n)
	if err != nil {
		return nil, err
	}
	if len(aLocal) < b.Local*n {
		return nil, fmt.Errorf("%w: matrix block %d < %d", ErrShape, len(aLocal), b.Local*n)
	}
	l := b.Local
	ownerOf := func(row int) int { return row / l }
	localRow := func(row int) int { return row % l }

	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// 1. Local pivot search over owned rows >= k.
		best := pivot{val: -1, row: -1}
		for g := k; g < n; g++ {
			if ownerOf(g) != w.Rank() {
				continue
			}
			v := math.Abs(aLocal[localRow(g)*n+k])
			if v > best.val {
				best = pivot{val: v, row: g}
			}
		}
		// 2. Global argmax (ties resolved to the lower row for
		// determinism).
		winner, err := w.AllReduce(best, func(a, bb any) any {
			av, bv := a.(pivot), bb.(pivot)
			if bv.val > av.val || (bv.val == av.val && bv.row != -1 && (av.row == -1 || bv.row < av.row)) {
				return bv
			}
			return av
		})
		if err != nil {
			return nil, err
		}
		pv := winner.(pivot)
		if pv.row < 0 || pv.val == 0 {
			return nil, fmt.Errorf("linalg: matrix is singular at step %d", k)
		}
		piv[k] = pv.row

		// 3. Swap rows k and pv.row.
		if pv.row != k {
			ok, or := ownerOf(k), ownerOf(pv.row)
			switch {
			case ok == w.Rank() && or == w.Rank():
				rk, rr := localRow(k)*n, localRow(pv.row)*n
				for j := 0; j < n; j++ {
					aLocal[rk+j], aLocal[rr+j] = aLocal[rr+j], aLocal[rk+j]
				}
			case ok == w.Rank():
				rk := localRow(k) * n
				got, err := w.Exchange(or, 1, aLocal[rk:rk+n])
				if err != nil {
					return nil, err
				}
				copy(aLocal[rk:rk+n], got)
			case or == w.Rank():
				rr := localRow(pv.row) * n
				got, err := w.Exchange(ok, 1, aLocal[rr:rr+n])
				if err != nil {
					return nil, err
				}
				copy(aLocal[rr:rr+n], got)
			}
		}

		// 4. Owner of row k broadcasts the pivot row.
		var pivotRow []float64
		if ownerOf(k) == w.Rank() {
			rk := localRow(k) * n
			pivotRow = append([]float64(nil), aLocal[rk:rk+n]...)
		}
		bc, err := w.Bcast(ownerOf(k), pivotRow)
		if err != nil {
			return nil, err
		}
		pivotRow = bc.([]float64)

		// 5. Eliminate below the pivot in owned rows.
		for g := k + 1; g < n; g++ {
			if ownerOf(g) != w.Rank() {
				continue
			}
			r := localRow(g) * n
			f := aLocal[r+k] / pivotRow[k]
			aLocal[r+k] = f
			for j := k + 1; j < n; j++ {
				aLocal[r+j] -= f * pivotRow[j]
			}
		}
	}
	return piv, nil
}

// LUSolve solves A x = b given the factorisation produced by LUFactor.
// bLocal is the block-distributed right-hand side; the returned slice is
// this copy's block of the solution. The triangular solves proceed with a
// scalar broadcast per row, each copy maintaining a full copy of the
// evolving solution vector.
func LUSolve(w *spmd.World, luLocal []float64, piv []int, n int, bLocal []float64) ([]float64, error) {
	b, err := Block(w, n)
	if err != nil {
		return nil, err
	}
	if len(piv) != n || len(bLocal) < b.Local {
		return nil, fmt.Errorf("%w: solve inputs", ErrShape)
	}
	l := b.Local
	ownerOf := func(row int) int { return row / l }
	localRow := func(row int) int { return row % l }

	// Gather the right-hand side everywhere, then apply the pivot
	// permutation identically on all copies.
	y, err := w.AllGather(bLocal[:l])
	if err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		y[k], y[piv[k]] = y[piv[k]], y[k]
	}

	// Forward substitution with unit lower-triangular L: the owner of row
	// k completes y[k] and broadcasts it.
	for k := 0; k < n; k++ {
		var v float64
		if ownerOf(k) == w.Rank() {
			r := localRow(k) * n
			s := y[k]
			for j := 0; j < k; j++ {
				s -= luLocal[r+j] * y[j]
			}
			v = s
		}
		bc, err := w.Bcast(ownerOf(k), v)
		if err != nil {
			return nil, err
		}
		y[k] = bc.(float64)
	}

	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		var v float64
		if ownerOf(k) == w.Rank() {
			r := localRow(k) * n
			s := y[k]
			for j := k + 1; j < n; j++ {
				s -= luLocal[r+j] * y[j]
			}
			v = s / luLocal[r+k]
		}
		bc, err := w.Bcast(ownerOf(k), v)
		if err != nil {
			return nil, err
		}
		y[k] = bc.(float64)
	}
	return append([]float64(nil), y[b.Offset:b.Offset+l]...), nil
}

// QRFactor performs modified Gram-Schmidt QR decomposition of a block-row
// n x m matrix (n >= m): on return aLocal holds this copy's rows of Q
// (orthonormal columns) and the returned slice is the full m x m upper
// triangular R, identical on every copy.
func QRFactor(w *spmd.World, aLocal []float64, n, m int) ([]float64, error) {
	b, err := Block(w, n)
	if err != nil {
		return nil, err
	}
	if m > n || len(aLocal) < b.Local*m {
		return nil, fmt.Errorf("%w: qr inputs", ErrShape)
	}
	l := b.Local
	r := make([]float64, m*m)
	col := func(j int) []float64 {
		c := make([]float64, l)
		for i := 0; i < l; i++ {
			c[i] = aLocal[i*m+j]
		}
		return c
	}
	setCol := func(j int, c []float64) {
		for i := 0; i < l; i++ {
			aLocal[i*m+j] = c[i]
		}
	}
	for j := 0; j < m; j++ {
		qj := col(j)
		nrm, err := Norm2(w, qj)
		if err != nil {
			return nil, err
		}
		if nrm == 0 {
			return nil, fmt.Errorf("linalg: rank-deficient matrix at column %d", j)
		}
		r[j*m+j] = nrm
		VecScale(qj, 1/nrm)
		setCol(j, qj)
		for k := j + 1; k < m; k++ {
			ak := col(k)
			d, err := Dot(w, qj, ak)
			if err != nil {
				return nil, err
			}
			r[j*m+k] = d
			if err := VecAXPY(ak, qj, -d); err != nil {
				return nil, err
			}
			setCol(k, ak)
		}
	}
	return r, nil
}
