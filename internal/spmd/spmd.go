// Package spmd is the runtime seen by a called data-parallel (SPMD)
// program: the concurrently executing copies of the program communicate
// point-to-point and through collective operations, addressing each other
// only through the array of processor numbers over which the distributed
// call was made.
//
// This implements the paper's relocatability requirement (§3.5): "if the
// program makes use of processor numbers for communicating between its
// concurrently-executing copies, it must obtain them from the array of
// processor numbers used to specify the processors on which the distributed
// call is being performed", and it must not use global-communication
// routines that cannot be restricted to a subset of the processors — all
// collectives here operate strictly within the call's group.
//
// Every message is tagged with the distributed call's instance ID in the
// data-parallel message class, so concurrently executing calls on the same
// machine can never intercept each other's traffic (§3.4.1, Fig 3.4).
package spmd

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/msg"
)

// World is the communication context of one copy of an SPMD program.
type World struct {
	procs  []int // processor numbers of the group (the relocatability array)
	index  int   // this copy's index within procs
	callID uint64
	router *msg.Router
	// deadline bounds every receive (0 = wait forever); see SetRecvDeadline.
	deadline time.Duration
	// haloEpoch counts HaloExchange calls so each exchange's slabs travel
	// under epoch-salted kinds (see halo.go).
	haloEpoch int
}

// NewWorld builds the context for group member index of the given call.
// The distributed-call machinery constructs one per copy; tests may build
// them directly.
func NewWorld(router *msg.Router, procs []int, index int, callID uint64) *World {
	if index < 0 || index >= len(procs) {
		panic(fmt.Sprintf("spmd: index %d outside group of size %d", index, len(procs)))
	}
	return &World{procs: procs, index: index, callID: callID, router: router}
}

// Size returns the number of copies in the group (the paper's P).
func (w *World) Size() int { return len(w.procs) }

// Rank returns this copy's index within the group (the paper's Index
// parameter: "an index into the array of processors over which the call is
// distributed").
func (w *World) Rank() int { return w.index }

// Procs returns the processor-number array of the call. Programs must use
// it — not absolute machine layout — for any processor arithmetic.
func (w *World) Procs() []int { return w.procs }

// ProcNum returns the physical (virtual-machine) processor number this copy
// runs on: Procs()[Rank()].
func (w *World) ProcNum() int { return w.procs[w.index] }

// CallID returns the distributed-call instance identifier.
func (w *World) CallID() uint64 { return w.callID }

// SetRecvDeadline bounds every subsequent receive by this copy: a receive
// that cannot complete within d returns msg.ErrTimeout instead of blocking
// forever, and a receive from a killed processor's mailbox surfaces
// msg.ErrProcessorDown. d <= 0 restores unbounded waits (the default).
// This is the data-parallel plane's half of the failure model: SPMD
// collectives have no retransmission machinery (a group member is not a
// server that can deduplicate), so under faults a program bounds its waits
// and surfaces the error to the distributed-call layer.
func (w *World) SetRecvDeadline(d time.Duration) { w.deadline = d }

func (w *World) tag(kind int) msg.Tag {
	return msg.Tag{Class: msg.ClassData, Call: w.callID, Kind: kind}
}

// Send sends data to the group member with rank dst under the user message
// kind (kind must be >= 0; negative kinds are reserved for collectives).
// Sends are asynchronous.
func (w *World) Send(dst, kind int, data any) error {
	if kind < 0 {
		return fmt.Errorf("spmd: negative kinds are reserved (got %d)", kind)
	}
	if dst < 0 || dst >= len(w.procs) {
		return fmt.Errorf("spmd: rank %d outside group of size %d", dst, len(w.procs))
	}
	return w.router.Send(w.ProcNum(), w.procs[dst], w.tag(kind), data)
}

// Recv receives the oldest message of the given kind from group member src
// (selective receive). src = AnyRank matches any group member.
func (w *World) Recv(src, kind int) (any, error) {
	if kind < 0 {
		return nil, fmt.Errorf("spmd: negative kinds are reserved (got %d)", kind)
	}
	m, err := w.recvInternal(src, kind)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// AnyRank matches any source rank in Recv.
const AnyRank = -1

func (w *World) recvInternal(src, kind int) (msg.Message, error) {
	var srcProc int
	if src == AnyRank {
		srcProc = msg.AnySource
	} else {
		if src < 0 || src >= len(w.procs) {
			return msg.Message{}, fmt.Errorf("spmd: rank %d outside group of size %d", src, len(w.procs))
		}
		srcProc = w.procs[src]
	}
	if w.deadline > 0 {
		m, err := w.router.RecvFromTimeout(w.ProcNum(), srcProc, w.tag(kind), w.deadline)
		if errors.Is(err, msg.ErrTimeout) && srcProc != msg.AnySource && w.router.Down(srcProc) {
			// The peer did not go quiet — it died. Distinguishing the two
			// lets a halo exchange surface the kill instead of a generic
			// deadline miss.
			return m, fmt.Errorf("spmd: rank %d (proc %d): %w", src, srcProc, msg.ErrProcessorDown)
		}
		return m, err
	}
	return w.router.RecvFrom(w.ProcNum(), srcProc, w.tag(kind))
}

func (w *World) sendInternal(dst, kind int, data any) error {
	return w.router.Send(w.ProcNum(), w.procs[dst], w.tag(kind), data)
}

// RecvFloats is Recv specialised to []float64 payloads, the common case for
// numeric SPMD kernels.
func (w *World) RecvFloats(src, kind int) ([]float64, error) {
	d, err := w.Recv(src, kind)
	if err != nil {
		return nil, err
	}
	f, ok := d.([]float64)
	if !ok {
		return nil, fmt.Errorf("spmd: expected []float64, got %T", d)
	}
	return f, nil
}

// Exchange performs a simultaneous send/receive of float slices with the
// group member at rank partner (both sides must call it) — the building
// block of the binary-exchange FFT and boundary swaps.
func (w *World) Exchange(partner, kind int, data []float64) ([]float64, error) {
	if partner < 0 || partner >= len(w.procs) {
		return nil, fmt.Errorf("spmd: partner rank %d outside group", partner)
	}
	if partner == w.index {
		return append([]float64(nil), data...), nil
	}
	// Copy before sending: virtual processors have distinct address
	// spaces, so a message must carry a snapshot, not a view the caller
	// may overwrite after Exchange returns.
	if err := w.Send(partner, kind, append([]float64(nil), data...)); err != nil {
		return nil, err
	}
	return w.RecvFloats(partner, kind)
}

// Reserved collective kinds.
const (
	kindBarrier = -1
	kindReduce  = -2
	kindBcast   = -3
	kindGather  = -4
)

// Barrier blocks until all group members have reached it. Binomial-tree
// gather to rank 0 followed by a tree broadcast; correct for any group
// size.
func (w *World) Barrier() error {
	if _, err := w.treeGather(kindBarrier, nil, nil); err != nil {
		return err
	}
	_, err := w.treeBcast(kindBarrier, nil)
	return err
}

// treeGather combines values up a binomial tree rooted at rank 0. combine
// may be nil for pure synchronisation. Returns the combined value at rank
// 0; other ranks return their partial value.
func (w *World) treeGather(kind int, val any, combine func(a, b any) any) (any, error) {
	p := len(w.procs)
	me := w.index
	for step := 1; step < p; step *= 2 {
		if me%(2*step) == 0 {
			src := me + step
			if src < p {
				m, err := w.recvInternal(src, kind)
				if err != nil {
					return nil, err
				}
				if combine != nil {
					val = combine(val, m.Data)
				}
			}
		} else {
			dst := me - step
			if err := w.sendInternal(dst, kind, val); err != nil {
				return nil, err
			}
			break
		}
	}
	return val, nil
}

// treeBcast distributes val from rank 0 down a binomial tree; every rank
// returns the broadcast value.
func (w *World) treeBcast(kind int, val any) (any, error) {
	p := len(w.procs)
	me := w.index
	// Find the highest step at which this rank receives.
	step := 1
	for step < p {
		step *= 2
	}
	if me != 0 {
		// Receive from parent: the parent of rank r is r with its lowest
		// set bit cleared, at the step equal to that bit.
		low := me & -me
		parent := me - low
		m, err := w.recvInternal(parent, kind)
		if err != nil {
			return nil, err
		}
		val = m.Data
	}
	// Forward to children: ranks me+s for each s smaller than my lowest
	// set bit (or any s for rank 0), descending.
	limit := me & -me
	if me == 0 {
		limit = step
	}
	for s := limit / 2; s >= 1; s /= 2 {
		dst := me + s
		if dst < p {
			if err := w.sendInternal(dst, kind, val); err != nil {
				return nil, err
			}
		}
	}
	return val, nil
}

// Bcast broadcasts data from the group member at rank root to all members;
// every member returns the broadcast value.
func (w *World) Bcast(root int, data any) (any, error) {
	if root < 0 || root >= len(w.procs) {
		return nil, fmt.Errorf("spmd: root rank %d outside group", root)
	}
	// Rotate ranks so the algorithm can always root at 0.
	rot := w.rotated(root)
	return rot.treeBcast(kindBcast, data)
}

// rotated returns a view of the world with ranks relabelled so that `root`
// becomes rank 0. Message routing still uses true processor numbers.
func (w *World) rotated(root int) *World {
	p := len(w.procs)
	procs := make([]int, p)
	for i := 0; i < p; i++ {
		procs[i] = w.procs[(i+root)%p]
	}
	return &World{
		procs:    procs,
		index:    (w.index - root + p) % p,
		callID:   w.callID,
		router:   w.router,
		deadline: w.deadline,
	}
}

// Reduce combines the groups' values with the binary associative operator
// combine, delivering the result at rank root (other ranks receive nil).
func (w *World) Reduce(root int, val any, combine func(a, b any) any) (any, error) {
	if root < 0 || root >= len(w.procs) {
		return nil, fmt.Errorf("spmd: root rank %d outside group", root)
	}
	rot := w.rotated(root)
	wrapped := func(a, b any) any {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		return combine(a, b)
	}
	out, err := rot.treeGather(kindReduce, val, wrapped)
	if err != nil {
		return nil, err
	}
	if w.index == root {
		return out, nil
	}
	return nil, nil
}

// AllReduce combines all members' values and delivers the result to every
// member (reduce to rank 0, then broadcast).
func (w *World) AllReduce(val any, combine func(a, b any) any) (any, error) {
	out, err := w.Reduce(0, val, combine)
	if err != nil {
		return nil, err
	}
	return w.Bcast(0, out)
}

// AllReduceFloat is AllReduce for scalar float64 values.
func (w *World) AllReduceFloat(x float64, combine func(a, b float64) float64) (float64, error) {
	v, err := w.AllReduce(x, func(a, b any) any {
		return combine(a.(float64), b.(float64))
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// AllReduceSum sums a scalar over the group.
func (w *World) AllReduceSum(x float64) (float64, error) {
	return w.AllReduceFloat(x, func(a, b float64) float64 { return a + b })
}

// AllReduceMax maximises a scalar over the group.
func (w *World) AllReduceMax(x float64) (float64, error) {
	return w.AllReduceFloat(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// Reserved kind for the linear (ablation) collectives.
const kindLinear = -5

// ReduceLinear is the naive alternative to the binomial-tree Reduce used
// for the ablation study (DESIGN.md): every member sends its value
// directly to the root, which combines in rank order and is the only
// member to return the result. O(P) serialized messages at the root
// versus the tree's O(log P) critical path.
func (w *World) ReduceLinear(root int, val any, combine func(a, b any) any) (any, error) {
	if root < 0 || root >= len(w.procs) {
		return nil, fmt.Errorf("spmd: root rank %d outside group", root)
	}
	if w.index != root {
		return nil, w.sendInternal(root, kindLinear, val)
	}
	vals := make([]any, len(w.procs))
	vals[root] = val
	for r := 0; r < len(w.procs); r++ {
		if r == root {
			continue
		}
		m, err := w.recvInternal(r, kindLinear)
		if err != nil {
			return nil, err
		}
		vals[r] = m.Data
	}
	// Fold in rank order so non-commutative operators agree with Reduce.
	acc := vals[0]
	for r := 1; r < len(w.procs); r++ {
		acc = combine(acc, vals[r])
	}
	return acc, nil
}

// AllReduceLinear is ReduceLinear to rank 0 followed by a linear fan-out —
// the fully naive collective, for ablation benchmarks only.
func (w *World) AllReduceLinear(val any, combine func(a, b any) any) (any, error) {
	out, err := w.ReduceLinear(0, val, combine)
	if err != nil {
		return nil, err
	}
	if w.index == 0 {
		for r := 1; r < len(w.procs); r++ {
			if err := w.sendInternal(r, kindLinear, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	m, err := w.recvInternal(0, kindLinear)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// AllGather concatenates every member's slice in rank order and delivers
// the concatenation to all members. It rides the reduce/broadcast trees
// with a rank-indexed merge, so it works for any group size and uneven
// slice lengths.
func (w *World) AllGather(local []float64) ([]float64, error) {
	p := len(w.procs)
	mine := make([][]float64, p)
	mine[w.index] = append([]float64(nil), local...)
	combined, err := w.AllReduce(mine, func(a, b any) any {
		av, bv := a.([][]float64), b.([][]float64)
		out := make([][]float64, p)
		for i := 0; i < p; i++ {
			if av[i] != nil {
				out[i] = av[i]
			} else if bv[i] != nil {
				out[i] = bv[i]
			}
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	parts := combined.([][]float64)
	var out []float64
	for i := 0; i < p; i++ {
		out = append(out, parts[i]...)
	}
	return out, nil
}

// Gather collects every member's slice at rank root in rank order; other
// ranks return nil.
func (w *World) Gather(root int, local []float64) ([][]float64, error) {
	p := len(w.procs)
	mine := make([][]float64, p)
	mine[w.index] = append([]float64(nil), local...)
	combined, err := w.Reduce(root, mine, func(a, b any) any {
		av, bv := a.([][]float64), b.([][]float64)
		out := make([][]float64, p)
		for i := 0; i < p; i++ {
			if av[i] != nil {
				out[i] = av[i]
			} else if bv[i] != nil {
				out[i] = bv[i]
			}
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	if w.index != root {
		return nil, nil
	}
	return combined.([][]float64), nil
}
