package spmd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/msg"
)

// The data-parallel plane's half of the failure model: halo exchanges
// must survive delay/reorder fault plans (the epoch-salted kinds keep
// overlapping exchanges from consuming each other's slabs), and a copy
// with a receive deadline must surface a dead peer as an error rather
// than block the distributed call forever. Drops and duplicates are
// deliberately excluded — SPMD copies are peers, not retransmitting
// servers; see halo.go and DESIGN.md.

// TestHaloExchangeUnderJitterReorder runs repeated 1d halo exchanges
// under a delay+reorder plan. Without epoch-salted kinds a fast
// neighbour's next-round slab can overtake this round's delayed slab and
// be consumed one round early; the per-round border check catches any
// such mis-sequencing.
func TestHaloExchangeUnderJitterReorder(t *testing.T) {
	const p = 4
	const l, cols = 3, 5
	const rounds = 6
	borders := []int{1, 1, 0, 0}
	const sentinel = -99.0
	r := msg.NewRouter(p)
	defer r.Close()
	r.SetFaultPlan(&msg.FaultPlan{
		Seed: 1234,
		Rule: msg.FaultRule{Jitter: 200 * time.Microsecond, Reorder: 0.3},
	})
	procs := []int{0, 1, 2, 3}

	// Round q gives interior row i at rank me the value
	// 1000*q + 100*(me*l+i) + col.
	value := func(q, me, row, col int) float64 {
		return float64(1000*q + 100*(me*l+row) + col)
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			w := NewWorld(r, procs, me, 31)
			sec := haloSection([]int{l, cols}, borders, grid.RowMajor, sentinel,
				func(idx []int) float64 { return value(0, me, idx[0], idx[1]) })
			lo := []int{0, 0}
			for q := 0; q < rounds; q++ {
				vals := make([]float64, l*cols)
				for row := 0; row < l; row++ {
					for col := 0; col < cols; col++ {
						vals[row*cols+col] = value(q, me, row, col)
					}
				}
				if err := sec.WriteBlock(vals, lo, []int{l, cols}, []int{l, cols}, borders, grid.RowMajor); err != nil {
					errs[me] = err
					return
				}
				if err := w.HaloExchange(Halo{
					Section: sec, LocalDims: []int{l, cols}, Borders: borders,
					GridDims: []int{p, 1}, Indexing: grid.RowMajor, GridIndexing: grid.RowMajor,
				}); err != nil {
					errs[me] = err
					return
				}
				// The borders must hold THIS round's neighbour edge rows.
				f := sec.F
				if me > 0 {
					for col := 0; col < cols; col++ {
						want := value(q, me-1, l-1, col)
						if f[col] != want {
							errs[me] = errorfHalo(me, q, "above", col, f[col], want)
							return
						}
					}
				}
				if me < p-1 {
					for col := 0; col < cols; col++ {
						want := value(q, me+1, 0, col)
						if got := f[(1+l)*cols+col]; got != want {
							errs[me] = errorfHalo(me, q, "below", col, got, want)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if fs := r.FaultStats(); fs.Reordered == 0 {
		t.Error("reorder plan swapped nothing: exchange sequencing untested")
	}
}

func errorfHalo(me, round int, side string, col int, got, want float64) error {
	return fmt.Errorf("halo round %d rank %d %s-border col %d: got %v, want %v",
		round, me, side, col, got, want)
}

// TestHaloDeadPeerSurfacesError kills one member of a two-rank group
// mid-exchange: the surviving copy's receive deadline must convert the
// missing slab into msg.ErrTimeout (or ErrProcessorDown) instead of
// hanging the distributed call.
func TestHaloDeadPeerSurfacesError(t *testing.T) {
	const l, cols = 2, 3
	borders := []int{1, 1, 0, 0}
	r := msg.NewRouter(2)
	defer r.Close()
	if err := r.KillProcessor(1); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}

	w := NewWorld(r, []int{0, 1}, 0, 41)
	w.SetRecvDeadline(20 * time.Millisecond)
	sec := haloSection([]int{l, cols}, borders, grid.RowMajor, -1,
		func(idx []int) float64 { return 1 })
	done := make(chan error, 1)
	go func() {
		done <- w.HaloExchange(Halo{
			Section: sec, LocalDims: []int{l, cols}, Borders: borders,
			GridDims: []int{2, 1}, Indexing: grid.RowMajor, GridIndexing: grid.RowMajor,
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, msg.ErrTimeout) && !errors.Is(err, msg.ErrProcessorDown) {
			t.Fatalf("exchange with a dead peer: err = %v, want timeout or processor-down", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HaloExchange hung on a dead peer")
	}
}

// TestRecvDeadline pins the plain point-to-point deadline: a Recv that
// cannot complete returns msg.ErrTimeout within its bound, and a
// deadline of zero still waits.
func TestRecvDeadline(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 51)
	w.SetRecvDeadline(10 * time.Millisecond)
	start := time.Now()
	_, err := w.Recv(1, 0)
	if !errors.Is(err, msg.ErrTimeout) {
		t.Fatalf("Recv past deadline: err = %v, want msg.ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline of 10ms took %v", elapsed)
	}
	// Deadline removed: the receive completes once the message arrives.
	w.SetRecvDeadline(0)
	peer := NewWorld(r, []int{0, 1}, 1, 51)
	if err := peer.Send(0, 0, []float64{7}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := w.RecvFloats(1, 0)
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("RecvFloats = %v, %v", got, err)
	}
}

// TestRecvDeadPeerIsProcessorDown pins the refinement over a bare
// timeout: when the named source of a deadline-bounded Recv has been
// killed, the error is msg.ErrProcessorDown — distinguishable from a
// slow peer — so callers can fail over instead of retrying.
func TestRecvDeadPeerIsProcessorDown(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	if err := r.KillProcessor(1); err != nil {
		t.Fatalf("KillProcessor: %v", err)
	}
	w := NewWorld(r, []int{0, 1}, 0, 61)
	w.SetRecvDeadline(10 * time.Millisecond)
	_, err := w.Recv(1, 0)
	if !errors.Is(err, msg.ErrProcessorDown) {
		t.Fatalf("Recv from killed peer: err = %v, want msg.ErrProcessorDown", err)
	}
	if errors.Is(err, msg.ErrTimeout) {
		t.Fatalf("dead peer still reported as plain timeout: %v", err)
	}
}
