// Halo exchange: the shared border-exchange primitive of data-parallel
// programs that keep Fortran D-style overlap areas (§3.2.1.3) in their
// local sections. Before the paper's stencil-style programs can update
// their interiors with purely local reads, each copy's borders must be
// filled with the neighbouring copies' interior edge slabs; climate and
// stencil used to do this with ad-hoc per-edge Send/Recv loops, each
// hand-rolling the slab extraction and the border write. HaloExchange
// lifts the pattern onto the grid rectangle arithmetic: the exchange runs
// dimension by dimension, each dimension's sends posted before its
// receives (sends are asynchronous, so no pairing of sends and receives
// can deadlock), and each received slab is written straight into the
// section's border storage — one message per neighbour per dimension per
// exchange. Because a dimension's slab spans the borders the earlier
// dimensions filled, diagonal corner values are relayed through the face
// neighbours, and nine-point stencils need no extra messages.
package spmd

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/grid"
)

// Halo describes one copy's bordered local section for HaloExchange. The
// group's ranks must correspond to processor-grid slots the way
// distributed arrays lay sections out: rank r holds the section at grid
// coordinate Unflatten(r, GridDims, GridIndexing) — true whenever the
// distributed call is made over the array's processor list in order.
type Halo struct {
	Section   *darray.Section // bordered local storage
	LocalDims []int           // interior dimensions of the local section
	Borders   []int           // 2*ndims border widths, as in darray.Meta
	GridDims  []int           // processor-grid dimensions; product == group size
	Indexing  grid.Indexing   // storage indexing of the section
	// GridIndexing maps ranks to grid coordinates (the array's
	// grid-indexing type; equal to Indexing for arrays the paper creates).
	GridIndexing grid.Indexing
	// Dists carries the field's per-dimension distributions (darray
	// Meta.Dists). Borders are a neighbour relation between grid-adjacent
	// cells, which with a cyclic or block-cyclic dimension is not index
	// adjacency, so HaloExchange rejects such fields — borders stay
	// block-only for now. nil means pure block (the historical layout).
	Dists []grid.Dist
}

// Reserved kind base for halo traffic, below every other reserved
// collective kind. Each (dimension, direction) slot is salted with the
// exchange epoch modulo haloEpochs so that a slab delayed or reordered
// past its own exchange (a faulty router can do both) can never be
// consumed by a neighbouring exchange's receive: neighbours drift at most
// one exchange apart (an exchange's receives gate on the peers' sends),
// so adjacent epochs always carry distinct kinds. Duplicated halo
// messages are NOT survivable — a stale duplicate would alias its epoch
// again haloEpochs exchanges later — which is why the data-parallel
// failure model (DESIGN.md) restricts halo fault plans to delay/reorder.
const (
	kindHalo   = -16
	haloEpochs = 4
)

const (
	haloToLow  = 0 // slab travelling toward the lower-coordinate neighbour
	haloToHigh = 1 // slab travelling toward the higher-coordinate neighbour
)

func haloKind(epoch, d, dir int) int { return kindHalo - haloEpochs*(2*d+dir) - epoch }

// HaloExchange fills the section's border locations along every decomposed
// dimension with the neighbouring copies' edge slabs, and sends this
// copy's edge slabs to the neighbours that need them. The exchange runs
// dimension by dimension, and the slab shipped in dimension d spans the
// full bordered extent of every already-exchanged dimension (< d) and the
// interior extent of the rest — the standard trick that fills diagonal
// corners without diagonal messages: dimension 0 delivers a corner value
// to a face neighbour, and each later dimension relays it onward inside
// the face slab. After the exchange, every border location whose global
// position lies inside a neighbouring section holds that section's value,
// corners included, so nine-point stencils read correct diagonals. Borders
// on the physical boundary of the grid (coordinate 0 or GridDims[d]-1)
// are left for the program's boundary condition, except that corner cells
// relayed through a neighbour receive copies of that neighbour's physical
// border contents (the same global locations, so a boundary condition
// written before the exchange is preserved). The message budget is one
// message per neighbour per dimension per exchange, however wide the
// borders. Every copy of the group must call it the same number of times.
func (w *World) HaloExchange(h Halo) error {
	n := len(h.LocalDims)
	if h.Section == nil || n == 0 {
		return fmt.Errorf("spmd: halo needs a section and dimensions")
	}
	if err := darray.CheckBorders(h.Borders, n); err != nil {
		return fmt.Errorf("spmd: halo: %w", err)
	}
	if len(h.GridDims) != n || grid.Size(h.GridDims) != len(w.procs) {
		return fmt.Errorf("spmd: halo grid %v does not cover the %d-member group", h.GridDims, len(w.procs))
	}
	if h.Dists != nil {
		if len(h.Dists) != n {
			return fmt.Errorf("spmd: halo has %d distributions for %d dimensions", len(h.Dists), n)
		}
		for i, d := range h.Dists {
			if d.Kind != grid.DistBlock && h.GridDims[i] > 1 {
				return fmt.Errorf("spmd: halo exchange requires a block distribution, dimension %d is %v (bordered fields stay block-only)", i, d)
			}
		}
	}
	coord, err := grid.Unflatten(w.index, h.GridDims, h.GridIndexing)
	if err != nil {
		return err
	}
	// Advance the exchange epoch only once validation has passed: a
	// rejected call sends nothing, and every copy sees the same inputs, so
	// the copies' epoch counters stay in lockstep (the documented
	// same-number-of-calls contract).
	epoch := w.haloEpoch % haloEpochs
	w.haloEpoch++
	plus, err := darray.DimsPlus(h.LocalDims, h.Borders)
	if err != nil {
		return err
	}
	none := darray.NoBorders(n)
	lo := make([]int, n)
	hi := make([]int, n)

	// nbr returns the rank one step along dimension d.
	nbr := func(d, delta int) (int, error) {
		coord[d] += delta
		slot, err := grid.ProcSlot(coord, h.GridDims, h.GridIndexing)
		coord[d] -= delta
		return slot, err
	}
	// slabBounds sets [lo, hi) for a dimension-d slab in storage
	// coordinates (the bordered box addressed as the borderless interior
	// of a plus-shaped section, which is exactly what border locations
	// are): already-exchanged dimensions (< d) span the full bordered
	// extent — this is what relays corner values — and the rest span the
	// interior only.
	slabBounds := func(d, from, to int) {
		for i := 0; i < n; i++ {
			if i < d {
				lo[i], hi[i] = 0, plus[i]
			} else {
				lo[i], hi[i] = h.Borders[2*i], h.Borders[2*i]+h.LocalDims[i]
			}
		}
		lo[d], hi[d] = from, to
	}
	// sendSlab snapshots the storage slab with dimension-d extent
	// [from, to) and ships it (messages carry copies, never views).
	sendSlab := func(d, from, to, dir, rank int) error {
		slabBounds(d, from, to)
		vals, err := h.Section.ReadBlock(lo, hi, plus, none, h.Indexing)
		if err != nil {
			return err
		}
		return w.sendInternal(rank, haloKind(epoch, d, dir), vals)
	}
	// recvSlab receives a neighbour slab and writes it straight into the
	// border storage rectangle with dimension-d storage extent [from, to).
	recvSlab := func(d, from, to, dir, rank int) error {
		m, err := w.recvInternal(rank, haloKind(epoch, d, dir))
		if err != nil {
			return err
		}
		vals, ok := m.Data.([]float64)
		if !ok {
			return fmt.Errorf("spmd: halo expected []float64, got %T", m.Data)
		}
		slabBounds(d, from, to)
		return h.Section.WriteBlock(vals, lo, hi, plus, none, h.Indexing)
	}

	// One phase per dimension, in order; a phase's sends must carry the
	// borders the previous phases filled, so the phases cannot be fused.
	// Within a phase, both sends are posted before either receive (sends
	// are asynchronous, so no pairing can deadlock and the slabs snapshot
	// the pre-receive storage).
	for d := 0; d < n; d++ {
		bl, bh := h.Borders[2*d], h.Borders[2*d+1]
		if coord[d] > 0 && bh > 0 {
			// The lower neighbour fills its high border (width bh) with
			// this copy's first bh interior slabs.
			rank, err := nbr(d, -1)
			if err != nil {
				return err
			}
			if err := sendSlab(d, bl, bl+bh, haloToLow, rank); err != nil {
				return err
			}
		}
		if coord[d] < h.GridDims[d]-1 && bl > 0 {
			// The higher neighbour fills its low border (width bl) with
			// this copy's last bl interior slabs.
			rank, err := nbr(d, +1)
			if err != nil {
				return err
			}
			if err := sendSlab(d, h.LocalDims[d], h.LocalDims[d]+bl, haloToHigh, rank); err != nil {
				return err
			}
		}
		if coord[d] > 0 && bl > 0 {
			rank, err := nbr(d, -1)
			if err != nil {
				return err
			}
			if err := recvSlab(d, 0, bl, haloToHigh, rank); err != nil {
				return err
			}
		}
		if coord[d] < h.GridDims[d]-1 && bh > 0 {
			rank, err := nbr(d, +1)
			if err != nil {
				return err
			}
			if err := recvSlab(d, bl+h.LocalDims[d], bl+h.LocalDims[d]+bh, haloToLow, rank); err != nil {
				return err
			}
		}
	}
	return nil
}
