package spmd

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/msg"
)

// runGroup executes body once per group member concurrently, as the copies
// of a called SPMD program would run, and waits for all to finish.
func runGroup(t *testing.T, router *msg.Router, procs []int, callID uint64, body func(w *World) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(procs))
	for i := range procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = body(NewWorld(router, procs, i, callID))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestWorldIdentity(t *testing.T) {
	r := msg.NewRouter(8)
	defer r.Close()
	procs := []int{1, 3, 5, 7}
	w := NewWorld(r, procs, 2, 42)
	if w.Size() != 4 || w.Rank() != 2 || w.ProcNum() != 5 || w.CallID() != 42 {
		t.Fatalf("identity: size=%d rank=%d proc=%d call=%d", w.Size(), w.Rank(), w.ProcNum(), w.CallID())
	}
	if !reflect.DeepEqual(w.Procs(), procs) {
		t.Fatalf("Procs = %v", w.Procs())
	}
}

func TestNewWorldBadIndexPanics(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(r, []int{0, 1}, 5, 1)
}

func TestSendRecvRelativeRanks(t *testing.T) {
	r := msg.NewRouter(8)
	defer r.Close()
	// Non-contiguous processors: relocatability — ranks address the group,
	// not the machine.
	procs := []int{6, 2, 4}
	runGroup(t, r, procs, 1, func(w *World) error {
		switch w.Rank() {
		case 0:
			return w.Send(2, 0, []float64{3.14})
		case 2:
			v, err := w.RecvFloats(0, 0)
			if err != nil {
				return err
			}
			if v[0] != 3.14 {
				return fmt.Errorf("got %v", v)
			}
		}
		return nil
	})
}

func TestNegativeKindsRejected(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 1)
	if err := w.Send(1, -1, nil); err == nil {
		t.Fatal("negative kind Send must fail")
	}
	if _, err := w.Recv(1, -2); err == nil {
		t.Fatal("negative kind Recv must fail")
	}
}

func TestSendBadRank(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 1)
	if err := w.Send(5, 0, nil); err == nil {
		t.Fatal("rank out of group must fail")
	}
	if _, err := w.Recv(5, 0); err == nil {
		t.Fatal("recv rank out of group must fail")
	}
	if _, err := w.Exchange(9, 0, nil); err == nil {
		t.Fatal("exchange rank out of group must fail")
	}
}

func TestExchange(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	runGroup(t, r, []int{0, 1}, 3, func(w *World) error {
		mine := []float64{float64(w.Rank())}
		got, err := w.Exchange(1-w.Rank(), 0, mine)
		if err != nil {
			return err
		}
		if got[0] != float64(1-w.Rank()) {
			return fmt.Errorf("rank %d exchanged %v", w.Rank(), got)
		}
		return nil
	})
}

func TestExchangeSelf(t *testing.T) {
	r := msg.NewRouter(1)
	defer r.Close()
	w := NewWorld(r, []int{0}, 0, 1)
	got, err := w.Exchange(0, 0, []float64{1, 2})
	if err != nil || !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("self exchange = %v, %v", got, err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for p := 1; p <= 9; p++ {
		r := msg.NewRouter(p)
		procs := make([]int, p)
		for i := range procs {
			procs[i] = i
		}
		var before, after sync.WaitGroup
		before.Add(p)
		arrived := make([]bool, p)
		runGroup(t, r, procs, 1, func(w *World) error {
			arrived[w.Rank()] = true
			before.Done()
			if err := w.Barrier(); err != nil {
				return err
			}
			// After the barrier, every member must have arrived.
			for i, a := range arrived {
				if !a {
					return fmt.Errorf("p=%d: rank %d passed barrier before rank %d arrived", p, w.Rank(), i)
				}
			}
			return nil
		})
		after.Wait()
		r.Close()
	}
}

func TestRepeatedBarriersDontCross(t *testing.T) {
	const p = 5
	r := msg.NewRouter(p)
	defer r.Close()
	procs := []int{0, 1, 2, 3, 4}
	var round [3]sync.WaitGroup
	for i := range round {
		round[i].Add(p)
	}
	runGroup(t, r, procs, 1, func(w *World) error {
		for k := 0; k < 3; k++ {
			round[k].Done()
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	for _, msgs := range []int{0, 1, 2, 3, 4} {
		if n := r.Pending(msgs); n != 0 {
			t.Fatalf("stray messages at %d: %d", msgs, n)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for p := 1; p <= 7; p++ {
		for root := 0; root < p; root++ {
			r := msg.NewRouter(p)
			procs := make([]int, p)
			for i := range procs {
				procs[i] = i
			}
			runGroup(t, r, procs, 1, func(w *World) error {
				var val any
				if w.Rank() == root {
					val = fmt.Sprintf("payload-from-%d", root)
				}
				got, err := w.Bcast(root, val)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("payload-from-%d", root)
				if got.(string) != want {
					return fmt.Errorf("p=%d root=%d rank=%d got %v", p, root, w.Rank(), got)
				}
				return nil
			})
			r.Close()
		}
	}
}

func TestReduceSumEveryRootEverySize(t *testing.T) {
	for p := 1; p <= 7; p++ {
		for root := 0; root < p; root++ {
			r := msg.NewRouter(p)
			procs := make([]int, p)
			for i := range procs {
				procs[i] = i
			}
			want := float64(p * (p + 1) / 2)
			runGroup(t, r, procs, 1, func(w *World) error {
				out, err := w.Reduce(root, float64(w.Rank()+1), func(a, b any) any {
					return a.(float64) + b.(float64)
				})
				if err != nil {
					return err
				}
				if w.Rank() == root {
					if out.(float64) != want {
						return fmt.Errorf("p=%d root=%d: sum=%v want %v", p, root, out, want)
					}
				} else if out != nil {
					return fmt.Errorf("non-root rank %d got %v", w.Rank(), out)
				}
				return nil
			})
			r.Close()
		}
	}
}

// Non-commutative but associative operator (string concatenation): tree
// reduction must preserve rank order.
func TestReducePreservesRankOrder(t *testing.T) {
	for p := 1; p <= 8; p++ {
		r := msg.NewRouter(p)
		procs := make([]int, p)
		for i := range procs {
			procs[i] = i
		}
		want := ""
		for i := 0; i < p; i++ {
			want += fmt.Sprintf("%d", i)
		}
		runGroup(t, r, procs, 1, func(w *World) error {
			out, err := w.Reduce(0, fmt.Sprintf("%d", w.Rank()), func(a, b any) any {
				return a.(string) + b.(string)
			})
			if err != nil {
				return err
			}
			if w.Rank() == 0 && out.(string) != want {
				return fmt.Errorf("p=%d: %q want %q", p, out, want)
			}
			return nil
		})
		r.Close()
	}
}

func TestAllReduceVariants(t *testing.T) {
	const p = 6
	r := msg.NewRouter(p)
	defer r.Close()
	procs := []int{0, 1, 2, 3, 4, 5}
	runGroup(t, r, procs, 1, func(w *World) error {
		sum, err := w.AllReduceSum(float64(w.Rank()))
		if err != nil {
			return err
		}
		if sum != 15 {
			return fmt.Errorf("sum=%v", sum)
		}
		max, err := w.AllReduceMax(float64(w.Rank() * w.Rank()))
		if err != nil {
			return err
		}
		if max != 25 {
			return fmt.Errorf("max=%v", max)
		}
		min, err := w.AllReduceFloat(float64(w.Rank()+3), math.Min)
		if err != nil {
			return err
		}
		if min != 3 {
			return fmt.Errorf("min=%v", min)
		}
		return nil
	})
}

func TestAllGatherUnevenLengths(t *testing.T) {
	const p = 4
	r := msg.NewRouter(p)
	defer r.Close()
	procs := []int{0, 1, 2, 3}
	// Rank i contributes i+1 copies of float64(i).
	want := []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	runGroup(t, r, procs, 1, func(w *World) error {
		local := make([]float64, w.Rank()+1)
		for k := range local {
			local[k] = float64(w.Rank())
		}
		got, err := w.AllGather(local)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("rank %d: %v", w.Rank(), got)
		}
		return nil
	})
}

func TestGatherAtRoot(t *testing.T) {
	const p = 3
	r := msg.NewRouter(p)
	defer r.Close()
	runGroup(t, r, []int{0, 1, 2}, 1, func(w *World) error {
		parts, err := w.Gather(1, []float64{float64(w.Rank() * 10)})
		if err != nil {
			return err
		}
		if w.Rank() == 1 {
			want := [][]float64{{0}, {10}, {20}}
			if !reflect.DeepEqual(parts, want) {
				return fmt.Errorf("parts=%v", parts)
			}
		} else if parts != nil {
			return fmt.Errorf("non-root got %v", parts)
		}
		return nil
	})
}

// Two concurrent calls on overlapping processors never cross-talk: the
// Fig 3.4 isolation property at the SPMD level.
func TestConcurrentCallIsolation(t *testing.T) {
	r := msg.NewRouter(4)
	defer r.Close()
	procs := []int{0, 1, 2, 3}
	var wg sync.WaitGroup
	for _, call := range []uint64{10, 20} {
		wg.Add(1)
		go func(call uint64) {
			defer wg.Done()
			var inner sync.WaitGroup
			for i := range procs {
				inner.Add(1)
				go func(i int) {
					defer inner.Done()
					w := NewWorld(r, procs, i, call)
					sum, err := w.AllReduceSum(float64(call) + float64(w.Rank()))
					if err != nil {
						t.Error(err)
						return
					}
					want := 4*float64(call) + 6
					if sum != want {
						t.Errorf("call %d rank %d: sum=%v want %v", call, i, sum, want)
					}
				}(i)
			}
			inner.Wait()
		}(call)
	}
	wg.Wait()
}

func TestBcastBadRoot(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 1)
	if _, err := w.Bcast(7, nil); err == nil {
		t.Fatal("bad root must fail")
	}
	if _, err := w.Reduce(-1, nil, nil); err == nil {
		t.Fatal("bad reduce root must fail")
	}
}
