package spmd

import (
	"fmt"
	"testing"

	"repro/internal/msg"
)

// The linear (ablation) collectives must agree with the tree collectives
// for every group size, root, and a non-commutative operator.
func TestReduceLinearMatchesTree(t *testing.T) {
	concat := func(a, b any) any { return a.(string) + b.(string) }
	for p := 1; p <= 6; p++ {
		for root := 0; root < p; root++ {
			r := msg.NewRouter(p)
			procs := make([]int, p)
			for i := range procs {
				procs[i] = i
			}
			want := ""
			for i := 0; i < p; i++ {
				want += fmt.Sprintf("%d.", i)
			}
			runGroup(t, r, procs, 1, func(w *World) error {
				mine := fmt.Sprintf("%d.", w.Rank())
				lin, err := w.ReduceLinear(root, mine, concat)
				if err != nil {
					return err
				}
				if w.Rank() == root && lin.(string) != want {
					return fmt.Errorf("p=%d root=%d: linear %q want %q", p, root, lin, want)
				}
				all, err := w.AllReduceLinear(mine, concat)
				if err != nil {
					return err
				}
				if all.(string) != want {
					return fmt.Errorf("p=%d root=%d rank=%d: allreduce-linear %q want %q",
						p, root, w.Rank(), all, want)
				}
				return nil
			})
			r.Close()
		}
	}
}

func TestReduceLinearBadRoot(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 1)
	if _, err := w.ReduceLinear(5, nil, nil); err == nil {
		t.Fatal("bad root must fail")
	}
}
