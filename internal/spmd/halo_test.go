package spmd

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/msg"
)

// haloSection builds a bordered section whose interior is filled with
// value(idx...) and whose border locations hold the sentinel.
func haloSection(localDims, borders []int, ix grid.Indexing, sentinel float64, value func(idx []int) float64) *darray.Section {
	plus, err := darray.DimsPlus(localDims, borders)
	if err != nil {
		panic(err)
	}
	sec := darray.NewSection(darray.Double, grid.Size(plus))
	for i := range sec.F {
		sec.F[i] = sentinel
	}
	vals := make([]float64, grid.Size(localDims))
	_ = grid.ForEachRect(make([]int, len(localDims)), localDims, func(idx []int, k int) error {
		vals[k] = value(idx)
		return nil
	})
	lo := make([]int, len(localDims))
	if err := sec.WriteBlock(vals, lo, localDims, localDims, borders, ix); err != nil {
		panic(err)
	}
	return sec
}

// TestHaloExchange1D checks a block-row exchange with asymmetric border
// widths: every interior neighbour's edge slab lands in the right border
// rows, physical edges stay untouched, and the message budget is exactly
// one per neighbour per exchange.
func TestHaloExchange1D(t *testing.T) {
	const p = 4
	const l, cols = 3, 5
	borders := []int{2, 1, 0, 0} // two halo rows above, one below
	const sentinel = -99.0
	r := msg.NewRouter(p)
	defer r.Close()
	procs := []int{0, 1, 2, 3}

	// Global row of interior row i at rank me is me*l+i; value = 100*row+col.
	value := func(me int) func(idx []int) float64 {
		return func(idx []int) float64 { return float64(100*(me*l+idx[0]) + idx[1]) }
	}
	secs := make([]*darray.Section, p)
	for me := 0; me < p; me++ {
		secs[me] = haloSection([]int{l, cols}, borders, grid.RowMajor, sentinel, value(me))
	}

	before := r.Sent()
	runGroup(t, r, procs, 7, func(w *World) error {
		return w.HaloExchange(Halo{
			Section:      secs[w.Rank()],
			LocalDims:    []int{l, cols},
			Borders:      borders,
			GridDims:     []int{p, 1},
			Indexing:     grid.RowMajor,
			GridIndexing: grid.RowMajor,
		})
	})
	// Each interior neighbour pair exchanges one message in each
	// direction: 2*(p-1) messages, however wide the borders are.
	if got, want := r.Sent()-before, uint64(2*(p-1)); got != want {
		t.Errorf("halo exchange sent %d messages, want %d", got, want)
	}

	stride := cols // no side borders
	for me := 0; me < p; me++ {
		f := secs[me].F
		// Above-borders: storage rows 0,1 hold global rows me*l-2, me*l-1
		// for interior ranks; rank 0's stay sentinel.
		for b := 0; b < 2; b++ {
			globalRow := me*l - 2 + b
			for j := 0; j < cols; j++ {
				got := f[b*stride+j]
				want := sentinel
				if me > 0 {
					want = float64(100*globalRow + j)
				}
				if got != want {
					t.Errorf("rank %d above-border row %d col %d = %v, want %v", me, b, j, got, want)
				}
			}
		}
		// Below-border: storage row 2+l holds global row (me+1)*l for
		// interior ranks; the last rank's stays sentinel.
		for j := 0; j < cols; j++ {
			got := f[(2+l)*stride+j]
			want := sentinel
			if me < p-1 {
				want = float64(100*(me+1)*l + j)
			}
			if got != want {
				t.Errorf("rank %d below-border col %d = %v, want %v", me, j, got, want)
			}
		}
	}
}

// TestHaloExchange2D runs a 2x2 grid with one-cell borders in both
// dimensions under both storage indexing orders: face slabs cross in both
// dimensions, and the diagonal corners arrive too — relayed through the
// face neighbours by the dimension-by-dimension exchange, with no extra
// messages. Border cells whose global position lies outside the field
// (the physical boundary) stay untouched.
func TestHaloExchange2D(t *testing.T) {
	for _, ix := range []grid.Indexing{grid.RowMajor, grid.ColMajor} {
		t.Run(ix.String(), func(t *testing.T) {
			const l = 2 // 2x2 interior per section, 4x4 global
			borders := []int{1, 1, 1, 1}
			const sentinel = -7.0
			r := msg.NewRouter(4)
			defer r.Close()
			procs := []int{0, 1, 2, 3}
			gridDims := []int{2, 2}

			global := func(gi, gj int) float64 { return float64(10*gi + gj) }
			secs := make([]*darray.Section, 4)
			coords := make([][]int, 4)
			for me := 0; me < 4; me++ {
				coord, err := grid.Unflatten(me, gridDims, ix)
				if err != nil {
					t.Fatal(err)
				}
				coords[me] = coord
				secs[me] = haloSection([]int{l, l}, borders, ix, sentinel, func(idx []int) float64 {
					return global(coord[0]*l+idx[0], coord[1]*l+idx[1])
				})
			}

			before := r.Sent()
			runGroup(t, r, procs, 9, func(w *World) error {
				return w.HaloExchange(Halo{
					Section:      secs[w.Rank()],
					LocalDims:    []int{l, l},
					Borders:      borders,
					GridDims:     gridDims,
					Indexing:     ix,
					GridIndexing: ix,
				})
			})
			// Every rank has exactly two neighbours on a 2x2 grid: 8 directed
			// messages per exchange.
			if got, want := r.Sent()-before, uint64(8); got != want {
				t.Errorf("halo exchange sent %d messages, want %d", got, want)
			}

			plus := []int{l + 2, l + 2}
			for me := 0; me < 4; me++ {
				coord := coords[me]
				sec := secs[me]
				// Walk the whole bordered box; classify each location.
				err := grid.ForEachRect([]int{0, 0}, plus, func(s []int, _ int) error {
					off, err := grid.Flatten(s, plus, ix)
					if err != nil {
						return err
					}
					got := sec.F[off]
					// Interior-local coordinates (may be -1 or l for borders).
					i, j := s[0]-1, s[1]-1
					gi, gj := coord[0]*l+i, coord[1]*l+j
					inRow := i >= 0 && i < l
					inCol := j >= 0 && j < l
					var want float64
					switch {
					case inRow && inCol: // interior, untouched
						want = global(gi, gj)
					case gi >= 0 && gi < 2*l && gj >= 0 && gj < 2*l:
						// border whose global position some section owns:
						// filled — faces directly, corners by relay.
						want = global(gi, gj)
					default: // physical edge: untouched
						want = sentinel
					}
					if got != want {
						return fmt.Errorf("rank %d storage %v = %v, want %v", me, s, got, want)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestHaloExchangeCorners is the nine-point-stencil property on a 3x3
// grid: after one exchange, the centre rank's bordered storage holds the
// correct global value at every location — four faces and four diagonal
// corners — and the message budget is exactly one message per neighbour
// per dimension (no diagonal messages: corners travel inside the face
// slabs of the second dimension).
func TestHaloExchangeCorners(t *testing.T) {
	const g = 3 // 3x3 grid
	const l = 2 // 2x2 interior per section
	borders := []int{1, 1, 1, 1}
	const sentinel = -55.0
	r := msg.NewRouter(g * g)
	defer r.Close()
	procs := make([]int, g*g)
	for i := range procs {
		procs[i] = i
	}
	gridDims := []int{g, g}

	global := func(gi, gj int) float64 { return float64(100*gi + gj) }
	secs := make([]*darray.Section, g*g)
	for me := 0; me < g*g; me++ {
		coord, err := grid.Unflatten(me, gridDims, grid.RowMajor)
		if err != nil {
			t.Fatal(err)
		}
		secs[me] = haloSection([]int{l, l}, borders, grid.RowMajor, sentinel, func(idx []int) float64 {
			return global(coord[0]*l+idx[0], coord[1]*l+idx[1])
		})
	}

	before := r.Sent()
	runGroup(t, r, procs, 11, func(w *World) error {
		return w.HaloExchange(Halo{
			Section:      secs[w.Rank()],
			LocalDims:    []int{l, l},
			Borders:      borders,
			GridDims:     gridDims,
			Indexing:     grid.RowMajor,
			GridIndexing: grid.RowMajor,
		})
	})
	// Per dimension: 2 directed messages per interior neighbour pair,
	// g*(g-1) pairs — one message per neighbour per dimension, no
	// diagonal traffic.
	if got, want := r.Sent()-before, uint64(2*2*g*(g-1)); got != want {
		t.Errorf("halo exchange sent %d messages, want %d", got, want)
	}

	// The centre rank (grid coordinate (1,1)) has all eight neighbours:
	// its entire bordered storage must hold the global field values,
	// diagonal corners included.
	centre := 4
	f := secs[centre].F
	plus := l + 2
	for si := 0; si < plus; si++ {
		for sj := 0; sj < plus; sj++ {
			gi, gj := l+si-1, l+sj-1 // centre section starts at global (l, l)
			if got, want := f[si*plus+sj], global(gi, gj); got != want {
				t.Errorf("centre storage (%d,%d) = %v, want %v", si, sj, got, want)
			}
		}
	}
}

// TestHaloExchangeValidation rejects malformed halo specifications.
func TestHaloExchangeValidation(t *testing.T) {
	r := msg.NewRouter(2)
	defer r.Close()
	w := NewWorld(r, []int{0, 1}, 0, 1)
	sec := darray.NewSection(darray.Double, 12)
	if err := w.HaloExchange(Halo{LocalDims: []int{2, 2}, Borders: []int{1, 1, 0, 0}, GridDims: []int{2, 1}}); err == nil {
		t.Error("nil section must fail")
	}
	if err := w.HaloExchange(Halo{Section: sec, LocalDims: []int{2, 2}, Borders: []int{1, 1}, GridDims: []int{2, 1}}); err == nil {
		t.Error("short borders must fail")
	}
	if err := w.HaloExchange(Halo{Section: sec, LocalDims: []int{2, 2}, Borders: []int{1, 1, 0, 0}, GridDims: []int{4, 1}}); err == nil {
		t.Error("grid not covering the group must fail")
	}
}

// TestHaloExchangeRejectsNonBlock pins the block-only contract of bordered
// fields: an exchange on a field carrying a cyclic or block-cyclic
// dimension fails with a clear error before any message is sent, while an
// explicit block (or 1-cell cyclic) distribution vector is accepted.
func TestHaloExchangeRejectsNonBlock(t *testing.T) {
	const p = 2
	const l, cols = 3, 4
	borders := []int{1, 1, 0, 0}
	r := msg.NewRouter(p)
	defer r.Close()
	procs := []int{0, 1}
	secs := []*darray.Section{
		haloSection([]int{l, cols}, borders, grid.RowMajor, -1, func(idx []int) float64 { return 1 }),
		haloSection([]int{l, cols}, borders, grid.RowMajor, -1, func(idx []int) float64 { return 2 }),
	}
	halo := func(me int, dists []grid.Dist) Halo {
		return Halo{
			Section:      secs[me],
			LocalDims:    []int{l, cols},
			Borders:      borders,
			GridDims:     []int{p, 1},
			Indexing:     grid.RowMajor,
			GridIndexing: grid.RowMajor,
			Dists:        dists,
		}
	}

	for name, dists := range map[string][]grid.Dist{
		"cyclic":       {{Kind: grid.DistCyclic, B: 1}, {Kind: grid.DistBlock, B: cols}},
		"block-cyclic": {{Kind: grid.DistBlockCyclic, B: 2}, {Kind: grid.DistBlock, B: cols}},
		"wrong-arity":  {{Kind: grid.DistBlock, B: l}},
	} {
		before := r.Sent()
		var wg sync.WaitGroup
		errs := make([]error, p)
		for i := range procs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = NewWorld(r, procs, i, 21).HaloExchange(halo(i, dists))
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err == nil {
				t.Fatalf("%s: rank %d accepted a non-block halo", name, i)
			}
		}
		if sent := r.Sent() - before; sent != 0 {
			t.Errorf("%s: rejected exchange still sent %d messages", name, sent)
		}
	}

	// An explicit all-block distribution vector (and a cyclic dimension
	// over a 1-cell grid, which is block in disguise) still exchanges.
	ok := []grid.Dist{{Kind: grid.DistBlock, B: l}, {Kind: grid.DistCyclic, B: 1}}
	runGroup(t, r, procs, 23, func(w *World) error {
		return w.HaloExchange(halo(w.Rank(), ok))
	})
}
