// Package stencil implements a data-parallel five-point Jacobi solver that
// uses local-section borders the way Fortran D uses overlap areas
// (§3.2.1.3): "some data-parallel notations add to each local section
// borders to be used internally by the data-parallel program ... which it
// uses as communication buffers".
//
// The temperature field is an rows x cols distributed array created with
// one-cell borders on every side (either explicitly or through the
// foreign_borders protocol, with this package's border callback standing
// in for the paper's Program_ routine). Each time step, every copy:
//
//  1. fills its border rows with the neighbouring copies' interior edge
//     rows (received directly into the overlap area), or with the fixed
//     global boundary value at the field's physical edges, and then
//  2. updates its interior with purely local reads — the stencil never
//     indexes outside its own (bordered) storage.
//
// Because the borders really are part of the local section's storage, this
// exercises the representation the array manager maintains: interior
// elements remain the only ones visible to the task level, while the
// data-parallel program reads and writes the full bordered block.
package stencil

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dcall"
	"repro/internal/grid"
	"repro/internal/spmd"
)

// ProgJacobi is the registered name of the stencil step program.
const ProgJacobi = "stencil:jacobi"

// BorderWidth is the overlap-area width the program requires on every
// side of every local section.
const BorderWidth = 1

// Borders is the program's border callback (the paper's Program_ routine):
// parameter number 4 — the field — needs a one-cell border in every
// dimension; other parameters carry no borders.
func Borders(parmNum, ndims int) ([]int, error) {
	b := make([]int, 2*ndims)
	if parmNum == 4 {
		for i := range b {
			b[i] = BorderWidth
		}
	}
	return b, nil
}

// RegisterPrograms registers the stencil with its border callback, so
// arrays created with ForeignBorders{Program: ProgJacobi, ParmNum: 4} get
// the right overlap areas automatically.
//
// Parameters: (rows, cols, steps, boundary, local(field)).
func RegisterPrograms(m *core.Machine) error {
	return m.RegisterWithBorders(ProgJacobi, func(w *spmd.World, a *dcall.Args) {
		rows := a.Int(0)
		cols := a.Int(1)
		steps := a.Int(2)
		boundary := a.Float(3)
		field := a.Section(4)
		if err := JacobiSteps(w, field, rows, cols, steps, boundary); err != nil {
			panic(err)
		}
	}, Borders)
}

// JacobiSteps runs `steps` five-point Jacobi sweeps on this copy's block
// of rows. The section must carry BorderWidth borders in both dimensions;
// the field is distributed by block rows ({block, *}).
func JacobiSteps(w *spmd.World, sec *darray.Section, rows, cols, steps int, boundary float64) error {
	p := w.Size()
	if rows%p != 0 {
		return fmt.Errorf("stencil: %d rows not divisible by %d copies", rows, p)
	}
	l := rows / p
	stride := cols + 2*BorderWidth // bordered row length
	if sec.Len() < (l+2*BorderWidth)*stride {
		return fmt.Errorf("stencil: section %d elements, want %d (did you create the array with the program's borders?)",
			sec.Len(), (l+2*BorderWidth)*stride)
	}
	f := sec.F
	me := w.Rank()
	// at(i, j): storage offset of interior cell (i, j), i in [-1, l],
	// j in [-1, cols] — borders included.
	at := func(i, j int) int { return (i+BorderWidth)*stride + (j + BorderWidth) }

	// The field is distributed by block rows: a p x 1 grid, one halo row
	// exchanged with each interior neighbour per step.
	halo := spmd.Halo{
		Section:      sec,
		LocalDims:    []int{l, cols},
		Borders:      []int{BorderWidth, BorderWidth, BorderWidth, BorderWidth},
		GridDims:     []int{p, 1},
		Indexing:     grid.RowMajor,
		GridIndexing: grid.RowMajor,
	}

	scratch := make([]float64, l*cols)
	for s := 0; s < steps; s++ {
		// 1. Fill the overlap areas: interior edge rows travel to the
		// neighbouring copies, received straight into the borders; the
		// physical edges take the fixed boundary.
		if err := w.HaloExchange(halo); err != nil {
			return err
		}
		if me == 0 {
			for j := 0; j < cols; j++ {
				f[at(-1, j)] = boundary
			}
		}
		if me == p-1 {
			for j := 0; j < cols; j++ {
				f[at(l, j)] = boundary
			}
		}
		// Side borders: fixed boundary (no decomposition along columns).
		for i := -1; i <= l; i++ {
			f[at(i, -1)] = boundary
			f[at(i, cols)] = boundary
		}

		// 2. Pure local update: every read is within this copy's storage.
		for i := 0; i < l; i++ {
			for j := 0; j < cols; j++ {
				scratch[i*cols+j] = 0.25 * (f[at(i-1, j)] + f[at(i+1, j)] + f[at(i, j-1)] + f[at(i, j+1)])
			}
		}
		for i := 0; i < l; i++ {
			for j := 0; j < cols; j++ {
				f[at(i, j)] = scratch[i*cols+j]
			}
		}
	}
	return nil
}

// Run creates the field with the program-supplied borders (the
// foreign_borders protocol), initialises it, runs the distributed call,
// and returns the final field.
func Run(m *core.Machine, rows, cols, steps int, boundary float64, init func(i, j int) float64) ([]float64, error) {
	procs := m.AllProcs()
	field, err := m.NewArray(core.ArraySpec{
		Dims:    []int{rows, cols},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		Borders: core.ForeignBordersOf(ProgJacobi, 4),
	})
	if err != nil {
		return nil, err
	}
	defer field.Free()
	if err := field.Fill(func(idx []int) float64 { return init(idx[0], idx[1]) }); err != nil {
		return nil, err
	}
	if err := m.Call(procs, ProgJacobi,
		dcall.Const(rows), dcall.Const(cols), dcall.Const(steps), dcall.Const(boundary),
		field.Param()); err != nil {
		return nil, err
	}
	return field.Snapshot()
}

// RunSequential computes the identical evolution on a dense array.
func RunSequential(rows, cols, steps int, boundary float64, init func(i, j int) float64) []float64 {
	f := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			f[i*cols+j] = init(i, j)
		}
	}
	get := func(i, j int) float64 {
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return boundary
		}
		return f[i*cols+j]
	}
	for s := 0; s < steps; s++ {
		next := make([]float64, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				next[i*cols+j] = 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
			}
		}
		f = next
	}
	return f
}
