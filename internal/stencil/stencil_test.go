package stencil

import (
	"math"
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/grid"
)

func hotCorner(i, j int) float64 {
	if i == 0 && j == 0 {
		return 100
	}
	return float64(i + j)
}

func TestJacobiMatchesSequential(t *testing.T) {
	const rows, cols, steps = 8, 6, 7
	const boundary = 1.5
	want := RunSequential(rows, cols, steps, boundary, hotCorner)
	for _, p := range []int{1, 2, 4} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := Run(m, rows, cols, steps, boundary, hotCorner)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("P=%d: cell %d = %v, want %v", p, i, got[i], want[i])
			}
		}
		m.Close()
	}
}

// The foreign_borders protocol supplied the right overlap areas: the
// created array's borders are BorderWidth on every side of both dims.
func TestForeignBordersApplied(t *testing.T) {
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	a, err := m.NewArray(core.ArraySpec{
		Dims:    []int{4, 4},
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		Borders: core.ForeignBordersOf(ProgJacobi, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := a.Meta()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range meta.Borders {
		if b != BorderWidth {
			t.Fatalf("border %d = %d, want %d", i, b, BorderWidth)
		}
	}
	// Non-field parameter numbers get no borders.
	b, err := Borders(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatalf("parm 1 borders = %v", b)
		}
	}
}

// An array created without the program's borders can be corrected with
// verify_array before the call (the §4.2.7 workflow).
func TestVerifyThenCall(t *testing.T) {
	const rows, cols, steps = 4, 4, 3
	const boundary = 0.0
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	field, err := m.NewArray(core.ArraySpec{
		Dims:    []int{rows, cols},
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		// No borders at creation time.
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := field.Fill(func(idx []int) float64 { return hotCorner(idx[0], idx[1]) }); err != nil {
		t.Fatal(err)
	}
	// Calling without borders fails inside the program (section too small).
	st := m.CallStatus(m.AllProcs(), ProgJacobi,
		dcall.Const(rows), dcall.Const(cols), dcall.Const(steps), dcall.Const(boundary),
		field.Param())
	if st != dcall.StatusError {
		t.Fatalf("call without borders: status %d, want STATUS_ERROR", st)
	}
	// verify_array against the program's expected borders reallocates...
	if err := field.Verify(2, core.ForeignBordersOf(ProgJacobi, 4), grid.RowMajor); err != nil {
		t.Fatal(err)
	}
	// ...after which the call succeeds and matches the reference.
	if err := m.Call(m.AllProcs(), ProgJacobi,
		dcall.Const(rows), dcall.Const(cols), dcall.Const(steps), dcall.Const(boundary),
		field.Param()); err != nil {
		t.Fatal(err)
	}
	got, err := field.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := RunSequential(rows, cols, steps, boundary, hotCorner)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Borders are invisible to the task level even while the program uses
// them: after a call, global reads see only interior data.
func TestBordersInvisibleAfterCall(t *testing.T) {
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	got, err := Run(m, 4, 4, 1, 9.0, func(i, j int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	// One step from zero with boundary 9: corners see two boundary
	// neighbours (4.5), edges one (2.25), interior none (0).
	if got[0] != 4.5 || got[1] != 2.25 || got[5] != 0 {
		t.Fatalf("field after one step: %v", got)
	}
}

func TestIndivisibleRows(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, 6, 4, 1, 0, func(i, j int) float64 { return 0 }); err == nil {
		t.Fatal("rows not divisible by P must fail")
	}
	_ = arraymgr.StatusOK // keep import for clarity of intent
}

// TestHaloMessageBudget pins the stencil's halo traffic: one distributed
// call running S Jacobi steps on P copies exchanges exactly one message
// per neighbour per step — plus the fixed call overhead of one find_local
// per copy and the P-1 combine-tree messages — however large the field.
func TestHaloMessageBudget(t *testing.T) {
	const rows, cols, steps, p = 16, 8, 5, 4
	m := core.New(p)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	procs := m.AllProcs()
	field, err := m.NewArray(core.ArraySpec{
		Dims:    []int{rows, cols},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		Borders: core.ForeignBordersOf(ProgJacobi, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := field.Fill(func(idx []int) float64 { return hotCorner(idx[0], idx[1]) }); err != nil {
		t.Fatal(err)
	}

	router := m.VM.Router()
	before := router.Sent()
	if err := m.Call(procs, ProgJacobi,
		dcall.Const(rows), dcall.Const(cols), dcall.Const(steps), dcall.Const(1.5),
		field.Param()); err != nil {
		t.Fatal(err)
	}
	// p find_local requests + steps * 2*(p-1) halo slabs + p-1 combines.
	want := uint64(p + steps*2*(p-1) + (p - 1))
	if got := router.Sent() - before; got != want {
		t.Fatalf("stencil call sent %d messages, want %d (one halo message per neighbour per step)", got, want)
	}
}
