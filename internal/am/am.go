// Package am provides the user-level library procedures of §4 and §C of the
// paper, in their specified shapes: each procedure issues the appropriate
// array-manager server request, waits for it to be serviced, and reports a
// Status output (STATUS_OK / STATUS_INVALID / STATUS_NOT_FOUND /
// STATUS_ERROR).
//
// The procedures correspond one-for-one to the paper's am_user_* library
// (create_array, free_array, read_element, write_element, find_local,
// find_info, verify_array, distributed_call lives in package dcall) and the
// am_util_* helpers of §C (tuple_to_int_array, node_array, load_all,
// atomic_print, max). Package core offers the same functionality behind an
// idiomatic Go API; this package is the faithful rendering used by the
// example programs transcribed from the paper.
package am

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/vp"
)

// Re-exported status codes (§4.1.2, plus the failure-model statuses of
// the recovery machinery).
const (
	StatusOK       = arraymgr.StatusOK
	StatusInvalid  = arraymgr.StatusInvalid
	StatusNotFound = arraymgr.StatusNotFound
	StatusError    = arraymgr.StatusError
	StatusTimeout  = arraymgr.StatusTimeout
	StatusDown     = arraymgr.StatusDown
)

// Env bundles the machine and its array manager: what a PCN program sees
// after `load("am")` has run on all processors.
type Env struct {
	Machine *vp.Machine
	AM      *arraymgr.Manager
}

// LoadAll starts the array manager on all processors and returns the
// environment, mirroring §C.3's am_util_load_all("am", Done): the returned
// Env plays the role of the Done definitional variable (it is available
// only once the manager is running everywhere).
func LoadAll(machine *vp.Machine) *Env {
	return &Env{Machine: machine, AM: arraymgr.New(machine)}
}

// SetCallPolicy installs (or, with nil, removes) the manager's
// timeout/retry policy for coordinator waits — required for operations
// to survive an unreliable router (fault plans, killed processors)
// instead of blocking forever.
func (e *Env) SetCallPolicy(p *arraymgr.CallPolicy) { e.AM.SetCallPolicy(p) }

// CreateArray is am_user_create_array (§4.2.1): it creates a distributed
// array of the given element type ("int" or "double"), dimensions,
// processors, decomposition, borders and indexing type ("row"/"C" or
// "column"/"Fortran"), returning its globally unique array ID.
func (e *Env) CreateArray(onProc int, typ string, dims, procs []int, distrib []grid.Decomp,
	borders arraymgr.BorderSpec, indexing string) (darray.ID, arraymgr.Status) {
	et, err := darray.ParseElemType(typ)
	if err != nil {
		return darray.ID{}, StatusInvalid
	}
	ix, err := grid.ParseIndexing(indexing)
	if err != nil {
		return darray.ID{}, StatusInvalid
	}
	return e.AM.CreateArray(onProc, arraymgr.CreateSpec{
		Type: et, Dims: dims, Procs: procs, Distrib: distrib,
		Borders: borders, Indexing: ix,
	})
}

// CreateReplicatedArray is CreateArray with k buddy copies per grid
// section: every write is mirrored to the buddies, and after a fail-stop
// kill RecoverArray (or a transparent replay under a call policy)
// promotes a buddy to primary instead of losing the section.
func (e *Env) CreateReplicatedArray(onProc int, typ string, dims, procs []int, distrib []grid.Decomp,
	borders arraymgr.BorderSpec, indexing string, replicas int) (darray.ID, arraymgr.Status) {
	et, err := darray.ParseElemType(typ)
	if err != nil {
		return darray.ID{}, StatusInvalid
	}
	ix, err := grid.ParseIndexing(indexing)
	if err != nil {
		return darray.ID{}, StatusInvalid
	}
	return e.AM.CreateArray(onProc, arraymgr.CreateSpec{
		Type: et, Dims: dims, Procs: procs, Distrib: distrib,
		Borders: borders, Indexing: ix, Replicas: replicas,
	})
}

// RecoverArray promotes buddy copies to primaries for every dead owner
// of a replicated array; see CreateReplicatedArray.
func (e *Env) RecoverArray(onProc int, id darray.ID) arraymgr.Status {
	return e.AM.RecoverArray(onProc, id)
}

// Checkpoint drains an array into a self-contained restart image — the
// recovery path for arrays created without replicas.
func (e *Env) Checkpoint(onProc int, id darray.ID) (*arraymgr.CheckpointImage, arraymgr.Status) {
	return e.AM.Checkpoint(onProc, id)
}

// Restore recreates an array from a checkpoint image on procs (nil: the
// image's surviving processors), returning the fresh array's ID.
func (e *Env) Restore(onProc int, img *arraymgr.CheckpointImage, procs []int) (darray.ID, arraymgr.Status) {
	return e.AM.Restore(onProc, img, procs)
}

// FreeArray is am_user_free_array (§4.2.2).
func (e *Env) FreeArray(onProc int, id darray.ID) arraymgr.Status {
	return e.AM.FreeArray(onProc, id)
}

// ReadElement is am_user_read_element (§4.2.3).
func (e *Env) ReadElement(onProc int, id darray.ID, indices []int) (float64, arraymgr.Status) {
	return e.AM.ReadElement(onProc, id, indices)
}

// WriteElement is am_user_write_element (§4.2.4).
func (e *Env) WriteElement(onProc int, id darray.ID, indices []int, v float64) arraymgr.Status {
	return e.AM.WriteElement(onProc, id, indices, v)
}

// ReadBlock is am_user_read_block, the bulk companion of ReadElement: it
// reads the global rectangle [lo, hi) (half-open per dimension) into a
// dense buffer linearized row-major over the rectangle, touching each
// owning processor once. It extends the §4 library beyond the paper, which
// moves task-level data one element per request.
func (e *Env) ReadBlock(onProc int, id darray.ID, lo, hi []int) ([]float64, arraymgr.Status) {
	return e.AM.ReadBlock(onProc, id, lo, hi)
}

// ReadBlockInto is am_user_read_block_into, the buffer-reuse variant of
// ReadBlock: the caller supplies (and keeps ownership of) the destination
// buffer, which must hold exactly the rectangle's element count. A wholly
// local rectangle is copied straight out of section storage with no
// message and no allocation.
func (e *Env) ReadBlockInto(onProc int, id darray.ID, lo, hi []int, dst []float64) arraymgr.Status {
	return e.AM.ReadBlockInto(onProc, id, lo, hi, dst)
}

// WriteBlock is am_user_write_block, the bulk companion of WriteElement: it
// writes a dense row-major buffer into the global rectangle [lo, hi),
// touching each owning processor once (and none when the rectangle is
// wholly local).
func (e *Env) WriteBlock(onProc int, id darray.ID, lo, hi []int, vals []float64) arraymgr.Status {
	return e.AM.WriteBlock(onProc, id, lo, hi, vals)
}

// ReadBlockStrided is am_user_read_block_strided, the sub-sampled
// companion of ReadBlock: it reads every step[i]-th element of the global
// rectangle [lo, hi) into a dense buffer packed row-major over the
// lattice, touching each owning processor once. A unit step in every
// dimension delegates to the dense path.
func (e *Env) ReadBlockStrided(onProc int, id darray.ID, lo, hi, step []int) ([]float64, arraymgr.Status) {
	return e.AM.ReadBlockStrided(onProc, id, lo, hi, step)
}

// ReadBlockStridedInto is am_user_read_block_strided_into, the
// buffer-reuse variant of ReadBlockStrided: the caller supplies (and keeps
// ownership of) the destination buffer, which must hold exactly the
// lattice's point count. A wholly-local lattice is copied straight out of
// section storage with no message and no allocation.
func (e *Env) ReadBlockStridedInto(onProc int, id darray.ID, lo, hi, step []int, dst []float64) arraymgr.Status {
	return e.AM.ReadBlockStridedInto(onProc, id, lo, hi, step, dst)
}

// WriteBlockStrided is am_user_write_block_strided: it writes a dense
// buffer packed row-major over the lattice onto every step[i]-th element
// of the global rectangle [lo, hi), touching each owning processor once
// and leaving off-lattice elements untouched.
func (e *Env) WriteBlockStrided(onProc int, id darray.ID, lo, hi, step []int, vals []float64) arraymgr.Status {
	return e.AM.WriteBlockStrided(onProc, id, lo, hi, step, vals)
}

// Redistribute is am_user_redistribute: it copies the global rectangle
// [lo, hi) of array src onto the same rectangle of array dst, the two
// arrays possibly distributed entirely differently. Every non-empty
// src-owner/dst-owner intersection travels owner-to-owner in at most one
// message — no gather-then-scatter bounce through the requesting
// processor — and a wholly-local transfer moves section-to-section with
// no message at all.
func (e *Env) Redistribute(onProc int, dst, src darray.ID, lo, hi []int) arraymgr.Status {
	return e.AM.Redistribute(onProc, dst, src, lo, hi)
}

// RedistributeRect is am_user_redistribute_rect, the offset variant of
// Redistribute: source element srcLo+j moves to destination element
// dstLo+j for every componentwise 0 <= j < dims, so the rectangle may
// land at a different origin in the destination array.
func (e *Env) RedistributeRect(onProc int, dst, src darray.ID, dstLo, srcLo, dims []int) arraymgr.Status {
	return e.AM.RedistributeRect(onProc, dst, src, dstLo, srcLo, dims)
}

// RedistributeStrided is am_user_redistribute_strided: it copies every
// step[i]-th element of the global rectangle [lo, hi) of src onto the
// matching lattice of dst. A unit step in every dimension delegates to
// the dense path.
func (e *Env) RedistributeStrided(onProc int, dst, src darray.ID, lo, hi, step []int) arraymgr.Status {
	return e.AM.RedistributeStrided(onProc, dst, src, lo, hi, step)
}

// GatherElements is am_user_gather_elements, the indexed companion of
// ReadElement: it reads the elements at the given global index tuples in
// one operation, returning their values in request order. The array
// manager splits the vector by owning processor and issues one concurrent
// request per owner, so k scattered elements cost O(#owners) messages
// instead of the k round trips of a read_element loop. ReadElement is the
// k=1 degenerate case.
func (e *Env) GatherElements(onProc int, id darray.ID, indices [][]int) ([]float64, arraymgr.Status) {
	return e.AM.GatherElements(onProc, id, indices)
}

// ScatterElements is am_user_scatter_elements, the indexed companion of
// WriteElement: it writes vals[i] to the element at indices[i], one
// concurrent request per owning processor. A repeated index takes the
// value at its last occurrence (last writer wins), as a write_element loop
// would leave it. WriteElement is the k=1 degenerate case.
func (e *Env) ScatterElements(onProc int, id darray.ID, indices [][]int, vals []float64) arraymgr.Status {
	return e.AM.ScatterElements(onProc, id, indices, vals)
}

// FindLocal is am_user_find_local (§4.2.5). Users should rarely call it
// directly; the distributed-call implementation invokes it automatically.
func (e *Env) FindLocal(onProc int, id darray.ID) (*darray.Section, arraymgr.Status) {
	return e.AM.FindLocal(onProc, id)
}

// FindInfo is am_user_find_info (§4.2.6).
func (e *Env) FindInfo(onProc int, id darray.ID, which string) (any, arraymgr.Status) {
	return e.AM.FindInfo(onProc, id, which)
}

// VerifyArray is am_user_verify_array (§4.2.7).
func (e *Env) VerifyArray(onProc int, id darray.ID, ndims int, borders arraymgr.BorderSpec, indexing string) arraymgr.Status {
	ix, err := grid.ParseIndexing(indexing)
	if err != nil {
		return StatusInvalid
	}
	return e.AM.VerifyArray(onProc, id, ndims, borders, ix)
}

// ParseDistrib builds a decomposition vector from the textual
// per-dimension specifications of the paper's create_array examples,
// extended with the cyclic forms of the distribution layer: each element
// is one of "block", "block(N)", "*", "cyclic", "cyclic(N)",
// "block_cyclic(B)" or "block_cyclic(B,N)".
func ParseDistrib(specs ...string) ([]grid.Decomp, error) {
	out := make([]grid.Decomp, len(specs))
	for i, s := range specs {
		d, err := grid.ParseDecomp(s)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// --- §C utilities ---

// TupleToIntArray is am_util_tuple_to_int_array (§C.1): it creates a
// definitional int array from a tuple of integers. In Go this is a copy,
// preserving the call shape of the transcribed examples.
func TupleToIntArray(tuple ...int) []int {
	return append([]int(nil), tuple...)
}

// NodeArray is am_util_node_array (§C.2): a patterned array
// {first, first+stride, first+2*stride, ...} of length count, intended for
// building arrays of processor numbers.
func NodeArray(first, stride, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = first + i*stride
	}
	return out
}

// Max is am_util_max (§C.5), the default reduction operator for status
// variables.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// atomicPrintMu serialises AtomicPrint output.
var atomicPrintMu sync.Mutex

// AtomicPrintWriter is where AtomicPrint writes; tests may redirect it.
var AtomicPrintWriter io.Writer = os.Stdout

// AtomicPrint is am_util_atomic_print (§C.4): it writes one line to
// standard output atomically — output produced by a single call is never
// interleaved with other output.
func AtomicPrint(items ...any) {
	atomicPrintMu.Lock()
	defer atomicPrintMu.Unlock()
	for i, it := range items {
		if i > 0 {
			fmt.Fprint(AtomicPrintWriter, " ")
		}
		fmt.Fprint(AtomicPrintWriter, it)
	}
	fmt.Fprintln(AtomicPrintWriter)
}
