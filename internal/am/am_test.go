package am

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/darray"
	"repro/internal/grid"
	"repro/internal/vp"
)

func newEnv(t *testing.T, p int) *Env {
	t.Helper()
	machine := vp.NewMachine(p)
	t.Cleanup(machine.Shutdown)
	return LoadAll(machine)
}

// The §4.1.3 usage example: create then free an array referenced by its ID.
func TestCreateFreeViaSpecStrings(t *testing.T) {
	e := newEnv(t, 4)
	procs := NodeArray(0, 1, 4)
	dims := TupleToIntArray(4, 4)
	id, st := e.CreateArray(0, "double", dims, procs,
		[]grid.Decomp{grid.BlockDefault(), grid.BlockDefault()},
		arraymgr.NoBorderSpec{}, "row")
	if st != StatusOK {
		t.Fatalf("create: %v", st)
	}
	if st := e.FreeArray(0, id); st != StatusOK {
		t.Fatalf("free: %v", st)
	}
}

func TestBadTypeAndIndexingStrings(t *testing.T) {
	e := newEnv(t, 2)
	procs := NodeArray(0, 1, 2)
	if _, st := e.CreateArray(0, "float", []int{2}, procs,
		[]grid.Decomp{grid.BlockDefault()}, arraymgr.NoBorderSpec{}, "row"); st != StatusInvalid {
		t.Fatalf("bad type: %v", st)
	}
	if _, st := e.CreateArray(0, "double", []int{2}, procs,
		[]grid.Decomp{grid.BlockDefault()}, arraymgr.NoBorderSpec{}, "diagonal"); st != StatusInvalid {
		t.Fatalf("bad indexing: %v", st)
	}
	if st := e.VerifyArray(0, darray.ID{}, 1, arraymgr.NoBorderSpec{}, "diagonal"); st != StatusInvalid {
		t.Fatalf("verify bad indexing: %v", st)
	}
}

func TestReadWriteFindInfoRoundTrip(t *testing.T) {
	e := newEnv(t, 2)
	procs := NodeArray(0, 1, 2)
	id, st := e.CreateArray(0, "double", []int{6}, procs,
		[]grid.Decomp{grid.BlockDefault()}, arraymgr.NoBorderSpec{}, "C")
	if st != StatusOK {
		t.Fatalf("create: %v", st)
	}
	if st := e.WriteElement(0, id, []int{5}, 2.5); st != StatusOK {
		t.Fatalf("write: %v", st)
	}
	v, st := e.ReadElement(1, id, []int{5})
	if st != StatusOK || v != 2.5 {
		t.Fatalf("read = %v,%v", v, st)
	}
	info, st := e.FindInfo(0, id, "local_dimensions")
	if st != StatusOK || !reflect.DeepEqual(info, []int{3}) {
		t.Fatalf("find_info = %v,%v", info, st)
	}
	sec, st := e.FindLocal(1, id)
	if st != StatusOK || sec.F[2] != 2.5 {
		t.Fatalf("find_local = %v,%v", sec, st)
	}
}

func TestNodeArray(t *testing.T) {
	// §C.2: {first, first+stride, ...}.
	if got := NodeArray(4, 2, 3); !reflect.DeepEqual(got, []int{4, 6, 8}) {
		t.Fatalf("NodeArray = %v", got)
	}
	if got := NodeArray(0, 1, 0); len(got) != 0 {
		t.Fatalf("empty NodeArray = %v", got)
	}
}

func TestTupleToIntArrayCopies(t *testing.T) {
	src := []int{1, 2, 3}
	got := TupleToIntArray(src...)
	got[0] = 99
	if src[0] == 99 {
		t.Fatal("TupleToIntArray aliases its input")
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, -1) != 3 || Max(5, 5) != 5 {
		t.Fatal("Max broken")
	}
}

func TestAtomicPrintIsAtomic(t *testing.T) {
	var buf bytes.Buffer
	old := AtomicPrintWriter
	AtomicPrintWriter = &buf
	defer func() { AtomicPrintWriter = old }()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			AtomicPrint("The value of X is", i)
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("%d lines, want 20", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "The value of X is ") {
			t.Fatalf("interleaved line %q", l)
		}
	}
}

// TestParseDistrib covers the textual decomposition specifications,
// including the cyclic forms of the distribution layer.
func TestParseDistrib(t *testing.T) {
	got, err := ParseDistrib("block", "cyclic(2)", "block_cyclic(3)", "*")
	if err != nil {
		t.Fatal(err)
	}
	want := []grid.Decomp{grid.BlockDefault(), grid.CyclicOf(2), grid.BlockCyclicOf(3), grid.NoDecomp()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseDistrib = %v, want %v", got, want)
	}
	if _, err := ParseDistrib("block", "diagonal"); err == nil {
		t.Fatal("unknown specification accepted")
	}
}

// TestCreateCyclicThroughAm drives the §4 library shape end to end on a
// cyclic array: create, element writes, bulk read, free.
func TestCreateCyclicThroughAm(t *testing.T) {
	machine := vp.NewMachine(4)
	defer machine.Shutdown()
	e := LoadAll(machine)
	distrib, err := ParseDistrib("cyclic")
	if err != nil {
		t.Fatal(err)
	}
	id, st := e.CreateArray(0, "double", []int{10}, []int{0, 1, 2, 3}, distrib, arraymgr.NoBorderSpec{}, "row")
	if st != StatusOK {
		t.Fatalf("CreateArray: %v", st)
	}
	for i := 0; i < 10; i++ {
		if st := e.WriteElement(0, id, []int{i}, float64(i*i)); st != StatusOK {
			t.Fatalf("WriteElement(%d): %v", i, st)
		}
	}
	vals, st := e.ReadBlock(0, id, []int{0}, []int{10})
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	for i, v := range vals {
		if v != float64(i*i) {
			t.Fatalf("element %d = %v, want %v", i, v, float64(i*i))
		}
	}
	if st := e.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
}
