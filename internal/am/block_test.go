package am

import (
	"testing"

	"repro/internal/arraymgr"
	"repro/internal/grid"
	"repro/internal/vp"
)

// TestUserBlockProcedures drives the §4-style bulk library procedures
// (am_user_read_block / am_user_write_block) end to end with status codes.
func TestUserBlockProcedures(t *testing.T) {
	machine := vp.NewMachine(4)
	t.Cleanup(machine.Shutdown)
	e := LoadAll(machine)

	id, st := e.CreateArray(0, "double", []int{4, 4}, NodeArray(0, 1, 4),
		[]grid.Decomp{grid.BlockDefault(), grid.BlockDefault()}, arraymgr.NoBorderSpec{}, "row")
	if st != StatusOK {
		t.Fatalf("CreateArray: %v", st)
	}

	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if st := e.WriteBlock(0, id, []int{0, 0}, []int{4, 4}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	// The indexed procedures (am_user_gather_elements /
	// am_user_scatter_elements) agree with the per-element ones.
	scattered := [][]int{{3, 1}, {0, 0}, {2, 3}}
	if st := e.ScatterElements(0, id, scattered, []float64{-1, -2, -3}); st != StatusOK {
		t.Fatalf("ScatterElements: %v", st)
	}
	gathered, st := e.GatherElements(0, id, scattered)
	if st != StatusOK {
		t.Fatalf("GatherElements: %v", st)
	}
	for i, idx := range scattered {
		v, st := e.ReadElement(0, id, idx)
		if st != StatusOK || v != gathered[i] || v != float64(-1-i) {
			t.Fatalf("element %v = %v/%v (gather %v), want %v", idx, v, st, gathered[i], float64(-1-i))
		}
		// Restore the block pattern for the checks below.
		if st := e.WriteElement(0, id, idx, vals[idx[0]*4+idx[1]]); st != StatusOK {
			t.Fatalf("WriteElement: %v", st)
		}
	}
	// The bulk write is visible through the per-element procedure.
	v, st := e.ReadElement(0, id, []int{2, 3})
	if st != StatusOK || v != vals[2*4+3] {
		t.Fatalf("ReadElement(2,3) = %v, %v", v, st)
	}
	got, st := e.ReadBlock(0, id, []int{1, 0}, []int{3, 4})
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	for k, want := range vals[4:12] {
		if got[k] != want {
			t.Fatalf("ReadBlock[%d] = %v, want %v", k, got[k], want)
		}
	}

	// The strided procedures agree with per-element access over the
	// lattice and leave off-lattice elements alone.
	sgot, st := e.ReadBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 1})
	if st != StatusOK {
		t.Fatalf("ReadBlockStrided: %v", st)
	}
	for k := 0; k < 8; k++ {
		i, j := 2*(k/4), k%4
		if want := vals[i*4+j]; sgot[k] != want {
			t.Fatalf("ReadBlockStrided[%d] (%d,%d) = %v, want %v", k, i, j, sgot[k], want)
		}
	}
	if st := e.WriteBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 1}, make([]float64, 8)); st != StatusOK {
		t.Fatalf("WriteBlockStrided: %v", st)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := vals[i*4+j]
			if i%2 == 0 {
				want = 0 // on the every-2nd-row lattice
			}
			v, st := e.ReadElement(0, id, []int{i, j})
			if st != StatusOK || v != want {
				t.Fatalf("element (%d,%d) = %v (%v) after strided write, want %v", i, j, v, st, want)
			}
		}
	}
	dst := make([]float64, 8)
	if st := e.ReadBlockStridedInto(0, id, []int{0, 0}, []int{4, 4}, []int{2, 1}, dst); st != StatusOK {
		t.Fatalf("ReadBlockStridedInto: %v", st)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("strided readback = %v, want zeros", dst)
		}
	}
	restore := append(append([]float64(nil), vals[0:4]...), vals[8:12]...)
	if st := e.WriteBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{2, 1}, restore); st != StatusOK {
		t.Fatalf("restore WriteBlockStrided: %v", st)
	}

	// Status codes, not errors: invalid rectangle and freed array.
	if _, st := e.ReadBlock(0, id, []int{0, 0}, []int{5, 4}); st != StatusInvalid {
		t.Fatalf("out-of-range ReadBlock: %v", st)
	}
	if _, st := e.ReadBlockStrided(0, id, []int{0, 0}, []int{4, 4}, []int{0, 1}); st != StatusInvalid {
		t.Fatalf("zero-step ReadBlockStrided: %v", st)
	}
	if st := e.FreeArray(0, id); st != StatusOK {
		t.Fatalf("FreeArray: %v", st)
	}
	if st := e.WriteBlock(0, id, []int{0, 0}, []int{4, 4}, vals); st != StatusNotFound {
		t.Fatalf("freed WriteBlock: %v", st)
	}
}

// TestUserRedistribute drives am_user_redistribute end to end with
// status codes: block→cyclic, the strided variant, and the error path.
func TestUserRedistribute(t *testing.T) {
	machine := vp.NewMachine(4)
	t.Cleanup(machine.Shutdown)
	e := LoadAll(machine)

	src, st := e.CreateArray(0, "double", []int{16}, NodeArray(0, 1, 4),
		[]grid.Decomp{grid.BlockDefault()}, arraymgr.NoBorderSpec{}, "row")
	if st != StatusOK {
		t.Fatalf("CreateArray(src): %v", st)
	}
	dst, st := e.CreateArray(0, "double", []int{16}, NodeArray(0, 1, 4),
		[]grid.Decomp{grid.CyclicDefault()}, arraymgr.NoBorderSpec{}, "row")
	if st != StatusOK {
		t.Fatalf("CreateArray(dst): %v", st)
	}
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i + 100)
	}
	if st := e.WriteBlock(0, src, []int{0}, []int{16}, vals); st != StatusOK {
		t.Fatalf("WriteBlock: %v", st)
	}
	if st := e.Redistribute(0, dst, src, []int{2}, []int{14}); st != StatusOK {
		t.Fatalf("Redistribute: %v", st)
	}
	got, st := e.ReadBlock(0, dst, []int{2}, []int{14})
	if st != StatusOK {
		t.Fatalf("ReadBlock: %v", st)
	}
	for i, v := range got {
		if v != float64(2+i+100) {
			t.Fatalf("dst[%d] = %v, want %v", 2+i, v, float64(2+i+100))
		}
	}
	if st := e.RedistributeRect(0, dst, src, []int{0}, []int{8}, []int{2}); st != StatusOK {
		t.Fatalf("RedistributeRect: %v", st)
	}
	if st := e.RedistributeStrided(0, dst, src, []int{0}, []int{16}, []int{4}); st != StatusOK {
		t.Fatalf("RedistributeStrided: %v", st)
	}
	if st := e.Redistribute(0, dst, dst, []int{0}, []int{4}); st != StatusInvalid {
		t.Fatalf("aliasing redistribute: %v, want STATUS_INVALID", st)
	}
}
