package trace

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestLevelsGateOutput(t *testing.T) {
	var buf bytes.Buffer
	SetOutput(&buf)
	defer SetOutput(os.Stderr)
	defer SetLevel(Off)

	SetLevel(Off)
	Logf(Ops, 0, "hidden")
	if buf.Len() != 0 {
		t.Fatalf("Off level emitted %q", buf.String())
	}

	SetLevel(Ops)
	Logf(Ops, 1, "visible %d", 42)
	Logf(Debug, 1, "still hidden")
	s := buf.String()
	if !strings.Contains(s, "visible 42") || strings.Contains(s, "still hidden") {
		t.Fatalf("output = %q", s)
	}
	if !strings.Contains(s, "p1") {
		t.Fatalf("missing processor prefix: %q", s)
	}

	SetLevel(Debug)
	if !Enabled(Ops) || !Enabled(Debug) {
		t.Fatal("Enabled broken at Debug")
	}
}

func TestConcurrentLogfLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	SetOutput(&buf)
	defer SetOutput(os.Stderr)
	SetLevel(Ops)
	defer SetLevel(Off)

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Logf(Ops, i, "message-from-%d", i)
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "message-from-") {
			t.Fatalf("mangled line %q", l)
		}
	}
}
