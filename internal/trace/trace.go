// Package trace provides the debugging/trace facility of the prototype
// (§B.3's am_debug array manager, which "produces a trace message for each
// operation it performs", and §C.4's atomic printing): leveled, atomically
// emitted trace lines, switchable at runtime.
package trace

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level selects how much tracing is emitted.
type Level int32

const (
	// Off emits nothing (the default, like loading plain "am").
	Off Level = iota
	// Ops traces array-manager-level operations (like loading "am_debug").
	Ops
	// Debug traces everything, including internal routing.
	Debug
)

var (
	level atomic.Int32

	mu  sync.Mutex
	out io.Writer = os.Stderr

	start = time.Now()
)

// SetLevel switches the global trace level.
func SetLevel(l Level) { level.Store(int32(l)) }

// GetLevel returns the current trace level.
func GetLevel() Level { return Level(level.Load()) }

// SetOutput redirects trace output (default os.Stderr).
func SetOutput(w io.Writer) {
	mu.Lock()
	defer mu.Unlock()
	out = w
}

// Enabled reports whether messages at level l are currently emitted,
// letting hot paths skip argument construction.
func Enabled(l Level) bool { return GetLevel() >= l }

// Logf emits one atomically written trace line if the level is enabled.
// The line is prefixed with elapsed time and the emitting processor.
func Logf(l Level, proc int, format string, args ...any) {
	if !Enabled(l) {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(out, "[%8.3fms p%d] %s\n",
		float64(time.Since(start).Microseconds())/1000, proc, fmt.Sprintf(format, args...))
}

// Stat is one named counter for uniform reporting: the fault, retry,
// recovery, and membership planes all reduce their stats to []Stat so
// the CLI and the experiment harness print them identically.
type Stat struct {
	Name  string
	Value uint64
}

// FormatStats renders stats as one "name=value name=value ..." line,
// preserving order; empty input renders as an empty string.
func FormatStats(stats []Stat) string {
	var b []byte
	for i, s := range stats {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, s.Name...)
		b = append(b, '=')
		b = fmt.Appendf(b, "%d", s.Value)
	}
	return string(b)
}

// WriteStats writes one "prefix: formatted-stats" line to w.
func WriteStats(w io.Writer, prefix string, stats []Stat) {
	fmt.Fprintf(w, "%s: %s\n", prefix, FormatStats(stats))
}
