// Package compose provides PCN-style program composition (§A.1 of the
// paper): sequential composition, parallel composition, and choice
// composition with guards.
//
// In PCN a program is a composition of statements; executing a parallel
// composition "is equivalent to creating a number of concurrently-executing
// processes, one for each statement in the composition, and waiting for them
// to terminate". Choice composition executes at most one of its guarded
// elements. These combinators let the example programs in this repository
// read like their PCN originals.
package compose

import "sync"

// Seq executes fs in order ({ ; ... } in PCN). It exists for symmetry and
// so composed program structure is explicit in example code.
func Seq(fs ...func()) {
	for _, f := range fs {
		f()
	}
}

// Par executes fs concurrently and waits for all of them to terminate
// ({ || ... } in PCN).
func Par(fs ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fs))
	for _, f := range fs {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// ParFor runs f(i) for i in [0,n) concurrently and waits for all; it is the
// idiomatic form of a parallel composition over an index range (the paper's
// quantified parallel composition).
func ParFor(n int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// Guarded is one arm of a choice composition: Body runs only if Guard
// evaluates true.
type Guarded struct {
	Guard func() bool
	Body  func()
}

// When builds a Guarded arm.
func When(guard func() bool, body func()) Guarded {
	return Guarded{Guard: guard, Body: body}
}

// Default builds an always-true arm (PCN's "default ->").
func Default(body func()) Guarded {
	return Guarded{Guard: func() bool { return true }, Body: body}
}

// Choice evaluates the guards in order and executes the body of the first
// arm whose guard is true ({ ? g1 -> s1, g2 -> s2, ... } in PCN). It
// returns whether any arm ran. Like PCN, at most one arm executes; if no
// guard is true, Choice does nothing.
func Choice(arms ...Guarded) bool {
	for _, a := range arms {
		if a.Guard == nil || a.Guard() {
			if a.Body != nil {
				a.Body()
			}
			return true
		}
	}
	return false
}

// Loop repeatedly executes a choice composition until no guard fires,
// mirroring the tail-recursive loops PCN programs use (e.g. the stream
// pumps in §6.2). It returns the number of iterations performed.
func Loop(arms ...Guarded) int {
	n := 0
	for Choice(arms...) {
		n++
	}
	return n
}
