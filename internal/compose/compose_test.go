package compose

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSeqOrder(t *testing.T) {
	var got []int
	Seq(
		func() { got = append(got, 1) },
		func() { got = append(got, 2) },
		func() { got = append(got, 3) },
	)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Seq order = %v", got)
	}
}

func TestParWaitsForAll(t *testing.T) {
	var n atomic.Int64
	fs := make([]func(), 50)
	for i := range fs {
		fs[i] = func() { n.Add(1) }
	}
	Par(fs...)
	if n.Load() != 50 {
		t.Fatalf("Par completed %d of 50", n.Load())
	}
}

func TestParForCoversRange(t *testing.T) {
	const n = 64
	seen := make([]atomic.Bool, n)
	ParFor(n, func(i int) { seen[i].Store(true) })
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not executed", i)
		}
	}
}

func TestParForZero(t *testing.T) {
	ParFor(0, func(i int) { t.Fatal("body must not run") })
}

func TestChoiceFirstTrueGuardWins(t *testing.T) {
	ran := ""
	ok := Choice(
		When(func() bool { return false }, func() { ran = "a" }),
		When(func() bool { return true }, func() { ran = "b" }),
		When(func() bool { return true }, func() { ran = "c" }),
	)
	if !ok || ran != "b" {
		t.Fatalf("Choice ran %q, ok=%v", ran, ok)
	}
}

func TestChoiceNoGuardTrue(t *testing.T) {
	ok := Choice(
		When(func() bool { return false }, func() { t.Fatal("must not run") }),
	)
	if ok {
		t.Fatal("Choice reported an arm ran")
	}
}

func TestDefaultArm(t *testing.T) {
	ran := false
	Choice(
		When(func() bool { return false }, func() {}),
		Default(func() { ran = true }),
	)
	if !ran {
		t.Fatal("default arm did not run")
	}
}

func TestLoopCountsIterations(t *testing.T) {
	i := 0
	n := Loop(
		When(func() bool { return i < 5 }, func() { i++ }),
	)
	if n != 5 || i != 5 {
		t.Fatalf("Loop ran %d times, i=%d", n, i)
	}
}

// Property: Par over n increments always yields exactly n, for arbitrary n
// in a small range.
func TestQuickParCount(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k % 64)
		var c atomic.Int64
		ParFor(n, func(int) { c.Add(1) })
		return c.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Nested composition: two parallel blocks each containing a sequence, the
// paper's §A.1 nesting example.
func TestNestedComposition(t *testing.T) {
	var a, b []int
	Par(
		func() { Seq(func() { a = append(a, 1) }, func() { a = append(a, 2) }) },
		func() { Seq(func() { b = append(b, 3) }, func() { b = append(b, 4) }) },
	)
	if len(a) != 2 || a[0] != 1 || a[1] != 2 {
		t.Fatalf("block A = %v", a)
	}
	if len(b) != 2 || b[0] != 3 || b[1] != 4 {
		t.Fatalf("block B = %v", b)
	}
}
