package cluster_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps/climate"
	"repro/internal/arraymgr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
)

// registerPart is the symmetric per-part setup: every part — driver and
// spawned worker alike — registers the same programs and installs the
// same call policy, which is what makes cross-process spawns and
// owner-originated recovery traffic work by construction.
func registerPart(m *core.Machine) error {
	if err := climate.RegisterPrograms(m); err != nil {
		return err
	}
	m.SetCallPolicy(&arraymgr.CallPolicy{Timeout: 2 * time.Second, Retries: 3})
	return nil
}

// TestMain is the worker hook: when the driver re-execs this test
// binary with the cluster role variable set, boot a worker part instead
// of running the test list.
func TestMain(m *testing.M) {
	if cfg, ok := cluster.WorkerConfig(); ok {
		if err := cluster.RunWorker(cfg, registerPart); err != nil {
			fmt.Fprintln(os.Stderr, "cluster worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	cluster.EnableSelfSpawn()
	os.Exit(m.Run())
}

func startCluster(t *testing.T, p, nparts int, opt ...cluster.SpawnOption) *cluster.Node {
	t.Helper()
	return startClusterCfg(t, cluster.Config{P: p, NParts: nparts}, opt...)
}

func startClusterCfg(t *testing.T, cfg cluster.Config, opt ...cluster.SpawnOption) *cluster.Node {
	t.Helper()
	node, err := cluster.StartDriver(cfg, registerPart)
	if err != nil {
		t.Fatalf("StartDriver: %v", err)
	}
	t.Cleanup(node.Close)
	if err := node.SpawnWorkers(opt...); err != nil {
		t.Fatalf("SpawnWorkers: %v", err)
	}
	if err := node.WaitPeers(30 * time.Second); err != nil {
		t.Fatalf("WaitPeers: %v", err)
	}
	return node
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestClimateIdenticalAcrossProcesses runs the paper's coupled climate
// model three ways — sequential reference, one-process machine, and a
// machine partitioned across two real OS processes over loopback TCP —
// and requires bit-identical fields from all three.
func TestClimateIdenticalAcrossProcesses(t *testing.T) {
	cfg := climate.Config{Rows: 8, Cols: 8, Steps: 4, Alpha: 0.15}
	want := climate.RunSequential(cfg)

	inproc := core.New(4)
	if err := registerPart(inproc); err != nil {
		t.Fatalf("register: %v", err)
	}
	resIn, err := climate.Run(inproc, cfg)
	inproc.Close()
	if err != nil {
		t.Fatalf("in-process Run: %v", err)
	}

	node := startCluster(t, 4, 2)
	resNet, err := climate.Run(node.M, cfg)
	if err != nil {
		t.Fatalf("cluster Run: %v", err)
	}

	if !sameBits(resIn.Ocean, want.Ocean) || !sameBits(resIn.Atmosphere, want.Atmosphere) {
		t.Fatal("in-process run differs from sequential reference")
	}
	if !sameBits(resNet.Ocean, resIn.Ocean) {
		t.Fatal("cluster ocean field differs from in-process run")
	}
	if !sameBits(resNet.Atmosphere, resIn.Atmosphere) {
		t.Fatal("cluster atmosphere field differs from in-process run")
	}
}

// oracleOps drives one machine through a seeded randomized workload
// covering every data-plane path — dense and strided block transfers,
// gather/scatter, element ops, and redistribution between differently
// distributed arrays — and returns every byte the machine produced. Two
// machines given the same seed must return identical logs.
func oracleOps(m *core.Machine, seed int64, iters int) ([]float64, error) {
	const rows, cols = 12, 8
	rng := rand.New(rand.NewSource(seed))

	blockSpec := core.ArraySpec{
		Dims:    []int{rows, cols},
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
	}
	cyclicSpec := core.ArraySpec{
		Dims:    []int{rows, cols},
		Distrib: []grid.Decomp{grid.CyclicDefault(), grid.NoDecomp()},
	}
	a, err := m.NewArray(blockSpec)
	if err != nil {
		return nil, fmt.Errorf("create block array: %w", err)
	}
	defer a.Free()
	b, err := m.NewArray(cyclicSpec)
	if err != nil {
		return nil, fmt.Errorf("create cyclic array: %w", err)
	}
	defer b.Free()
	for _, arr := range []*core.Array{a, b} {
		if err := arr.Fill(func(idx []int) float64 {
			return float64(idx[0]*cols+idx[1]) / 7
		}); err != nil {
			return nil, fmt.Errorf("fill: %w", err)
		}
	}

	rect := func() (lo, hi []int) {
		l0 := rng.Intn(rows - 1)
		l1 := rng.Intn(cols - 1)
		return []int{l0, l1}, []int{l0 + 1 + rng.Intn(rows-l0-1), l1 + 1 + rng.Intn(cols-l1-1)}
	}
	indices := func(n int) [][]int {
		out := make([][]int, n)
		for i := range out {
			out[i] = []int{rng.Intn(rows), rng.Intn(cols)}
		}
		return out
	}
	var log []float64
	arrs := []*core.Array{a, b}
	for i := 0; i < iters; i++ {
		x := arrs[rng.Intn(2)]
		switch rng.Intn(8) {
		case 0:
			lo, hi := rect()
			vals := make([]float64, grid.RectSize(lo, hi))
			for j := range vals {
				vals[j] = rng.Float64()
			}
			if err := x.WriteBlock(lo, hi, vals); err != nil {
				return nil, fmt.Errorf("op %d write_block: %w", i, err)
			}
		case 1:
			lo, hi := rect()
			got, err := x.ReadBlock(lo, hi)
			if err != nil {
				return nil, fmt.Errorf("op %d read_block: %w", i, err)
			}
			log = append(log, got...)
		case 2:
			lo, hi := rect()
			got, err := x.ReadBlockStrided(lo, hi, []int{2, 2})
			if err != nil {
				return nil, fmt.Errorf("op %d read_block_strided: %w", i, err)
			}
			log = append(log, got...)
		case 3:
			idxs := indices(1 + rng.Intn(6))
			got, err := x.GatherElements(idxs)
			if err != nil {
				return nil, fmt.Errorf("op %d gather: %w", i, err)
			}
			log = append(log, got...)
		case 4:
			idxs := indices(1 + rng.Intn(6))
			vals := make([]float64, len(idxs))
			for j := range vals {
				vals[j] = rng.Float64()
			}
			if err := x.ScatterElements(idxs, vals); err != nil {
				return nil, fmt.Errorf("op %d scatter: %w", i, err)
			}
		case 5:
			if err := x.Write(rng.Float64(), rng.Intn(rows), rng.Intn(cols)); err != nil {
				return nil, fmt.Errorf("op %d write_element: %w", i, err)
			}
		case 6:
			v, err := x.Read(rng.Intn(rows), rng.Intn(cols))
			if err != nil {
				return nil, fmt.Errorf("op %d read_element: %w", i, err)
			}
			log = append(log, v)
		case 7:
			lo, hi := rect()
			dst, src := a, b
			if rng.Intn(2) == 0 {
				dst, src = b, a
			}
			if err := dst.RedistributeFrom(src, lo, hi); err != nil {
				return nil, fmt.Errorf("op %d redistribute: %w", i, err)
			}
		}
	}
	for _, arr := range arrs {
		snap, err := arr.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		log = append(log, snap...)
	}
	return log, nil
}

// TestOracleAllPathsAcrossWire replays the same seeded all-paths
// workload on an in-process machine and on a machine split across two
// OS processes, and requires every produced byte — intermediate reads
// and final snapshots — to be bit-identical. The wire seam must be
// semantically invisible.
func TestOracleAllPathsAcrossWire(t *testing.T) {
	const seed, iters = 42, 60

	inproc := core.New(4)
	if err := registerPart(inproc); err != nil {
		t.Fatalf("register: %v", err)
	}
	wantLog, err := oracleOps(inproc, seed, iters)
	inproc.Close()
	if err != nil {
		t.Fatalf("in-process oracle: %v", err)
	}

	node := startCluster(t, 4, 2)
	gotLog, err := oracleOps(node.M, seed, iters)
	if err != nil {
		t.Fatalf("cluster oracle: %v", err)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("log lengths differ: cluster %d, in-process %d", len(gotLog), len(wantLog))
	}
	if !sameBits(gotLog, wantLog) {
		t.Fatal("cluster oracle log differs from in-process log")
	}
}

// TestKillRecoverAcrossWire creates a replicated array spanning both
// parts, fail-stops a worker-hosted processor, promotes the buddy
// copies, and requires the full contents back — the recovery plane
// running over a real transport.
func TestKillRecoverAcrossWire(t *testing.T) {
	node := startCluster(t, 4, 2)
	m := node.M

	a, err := m.NewArray(core.ArraySpec{Dims: []int{16}, Replicas: 1})
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	want := make([]float64, 16)
	for i := range want {
		want[i] = float64(i) * 1.5
	}
	if err := a.WriteBlock([]int{0}, []int{16}, want); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}

	// Processor 3 lives in the worker process; kill it machine-wide.
	if err := node.Kill(3); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if !m.VM.Router().Down(3) {
		t.Fatal("driver does not report processor 3 down")
	}
	if err := m.RecoverArray(a); err != nil {
		t.Fatalf("RecoverArray: %v", err)
	}
	got, err := a.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after recovery: %v", err)
	}
	if !sameBits(got, want) {
		t.Fatalf("recovered contents differ: got %v, want %v", got, want)
	}
}

// TestOracleThreeParts splits the machine across three OS processes —
// the first cluster shape with genuine worker↔worker traffic (mesh
// links, or the relay when disabled) — and requires the all-paths
// oracle log bit-identical to in-process, in production mode and in
// the PR-9 baseline mode.
func TestOracleThreeParts(t *testing.T) {
	const seed, iters = 1234, 60

	inproc := core.New(6)
	if err := registerPart(inproc); err != nil {
		t.Fatalf("register: %v", err)
	}
	wantLog, err := oracleOps(inproc, seed, iters)
	inproc.Close()
	if err != nil {
		t.Fatalf("in-process oracle: %v", err)
	}

	for _, mode := range []struct {
		name string
		cfg  cluster.Config
	}{
		{"mesh+batch", cluster.Config{P: 6, NParts: 3}},
		{"star-sync-gob", cluster.Config{P: 6, NParts: 3, Star: true, NoBatch: true, Gob: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			node := startClusterCfg(t, mode.cfg)
			gotLog, err := oracleOps(node.M, seed, iters)
			if err != nil {
				t.Fatalf("cluster oracle: %v", err)
			}
			if len(gotLog) != len(wantLog) || !sameBits(gotLog, wantLog) {
				t.Fatal("three-part cluster oracle log differs from in-process log")
			}
		})
	}
}

// TestWorkerAddrs pins the explicit-address plumbing end to end: the
// spawned workers bind their mesh listeners on distinct loopback
// aliases (the stand-in for real remote hosts) and the machine still
// produces bit-identical results.
func TestWorkerAddrs(t *testing.T) {
	cfg := climate.Config{Rows: 8, Cols: 8, Steps: 4, Alpha: 0.15}
	want := climate.RunSequential(cfg)

	node := startCluster(t, 4, 3,
		cluster.WithWorkerAddrs([]string{"127.0.0.2:0", "127.0.0.3:0"}))
	got, err := climate.Run(node.M, cfg)
	if err != nil {
		t.Fatalf("cluster Run: %v", err)
	}
	if !sameBits(got.Ocean, want.Ocean) || !sameBits(got.Atmosphere, want.Atmosphere) {
		t.Fatal("cluster run with explicit worker addresses differs from sequential reference")
	}
}

// TestWorkerAddrsFromEnv is the same pin through the TDP_CLUSTER_ADDRS
// environment variable — the path external launchers use.
func TestWorkerAddrsFromEnv(t *testing.T) {
	t.Setenv(cluster.AddrsEnv, "127.0.0.2:0,127.0.0.3:0")

	cfg := climate.Config{Rows: 8, Cols: 8, Steps: 4, Alpha: 0.15}
	want := climate.RunSequential(cfg)

	node := startCluster(t, 4, 3)
	if len(node.Cfg.WorkerAddrs) != 2 {
		t.Fatalf("driver did not pick up %s: %v", cluster.AddrsEnv, node.Cfg.WorkerAddrs)
	}
	got, err := climate.Run(node.M, cfg)
	if err != nil {
		t.Fatalf("cluster Run: %v", err)
	}
	if !sameBits(got.Ocean, want.Ocean) || !sameBits(got.Atmosphere, want.Atmosphere) {
		t.Fatal("cluster run with env-provided worker addresses differs from sequential reference")
	}
}

// TestParseWorkerEnv pins the worker-env wire format: every mode knob
// and the mesh address survive the round trip.
func TestParseWorkerEnv(t *testing.T) {
	cfg, err := cluster.ParseWorkerEnv("P=6;NPARTS=3;RANK=2;ADDR=127.0.0.1:9999;STAR=1;NOBATCH=1;GOB=1;MADDR=127.0.0.3:0")
	if err != nil {
		t.Fatalf("ParseWorkerEnv: %v", err)
	}
	want := cluster.Config{P: 6, NParts: 3, Rank: 2, Addr: "127.0.0.1:9999",
		Star: true, NoBatch: true, Gob: true, MeshAddr: "127.0.0.3:0"}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("parsed config %+v, want %+v", cfg, want)
	}
	if _, err := cluster.ParseWorkerEnv("P=2;NPARTS=3;RANK=1;ADDR=x"); err == nil {
		t.Fatal("ParseWorkerEnv accepted nparts > p")
	}
}
