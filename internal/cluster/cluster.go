// Package cluster boots one logical P-processor machine across several
// real OS processes ("parts") joined by the TCP transport. Part 0
// (the driver) listens and runs the task-parallel program; worker parts
// dial in, boot the same core.Machine partitioned onto their processor
// slice, and park in their serve loops until the driver says bye.
//
// Every part runs the same binary. The driver re-execs itself to spawn
// workers (SpawnWorkers), passing the rendezvous in one environment
// variable; process entry points call WorkerConfig early and, when it
// reports a worker role, hand control to RunWorker and exit. The
// register callback — run on every part before traffic starts — is
// where programs are registered and call policies installed, keeping
// the two sides symmetric by construction.
//
// The transport defaults to its production mode (mesh topology, frame
// batching, binary codec). The Config knobs Star/NoBatch/Gob each turn
// one optimization off — the driver passes them to its own transport
// and forwards them to every spawned worker, so the whole machine
// always runs one mode. Worker mesh listen addresses default to
// loopback ephemeral ports; explicit per-worker addresses (real remote
// hosts, or loopback aliases in tests) come from Config.WorkerAddrs,
// the TDP_CLUSTER_ADDRS environment variable, or a SpawnWorkers option.
package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	msgnet "repro/internal/msg/net"
)

// WorkerEnv is the environment variable carrying a worker's role:
// "P=<procs>;NPARTS=<parts>;RANK=<rank>;ADDR=<host:port>" plus the
// optional mode fields "STAR=1;NOBATCH=1;GOB=1;MADDR=<host:port>".
const WorkerEnv = "TDP_CLUSTER_WORKER"

// AddrsEnv optionally lists explicit worker mesh listen addresses,
// comma-separated in worker-rank order (first entry = rank 1). Empty
// entries keep the loopback-ephemeral default. Read by StartDriver when
// Config.WorkerAddrs is unset.
const AddrsEnv = "TDP_CLUSTER_ADDRS"

// Config describes one part's view of the cluster.
type Config struct {
	P      int    // virtual processors, machine-wide
	NParts int    // OS processes
	Rank   int    // this part (0 = driver)
	Addr   string // driver listen address; "" = 127.0.0.1:0 (driver only)

	// Transport mode. The zero value is the production default (mesh +
	// batching + binary codec); each knob disables one optimization,
	// and Star+NoBatch+Gob together reproduce the PR-9 wire.
	Star    bool // relay all worker↔worker traffic through part 0
	NoBatch bool // flush every frame synchronously under the peer mutex
	Gob     bool // gob-encode every payload (no binary fast paths)

	// MeshAddr is this worker's mesh listen address (workers only;
	// "" = 127.0.0.1:0). Set from MADDR by WorkerConfig.
	MeshAddr string
	// WorkerAddrs lists per-worker mesh listen addresses in rank order
	// (entry 0 = rank 1), driver only; nil falls back to AddrsEnv.
	WorkerAddrs []string
}

func (c Config) check() error {
	if c.P < 1 || c.NParts < 2 || c.NParts > c.P {
		return fmt.Errorf("cluster: need 1 <= nparts <= p with nparts >= 2, got p=%d nparts=%d", c.P, c.NParts)
	}
	if c.Rank < 0 || c.Rank >= c.NParts {
		return fmt.Errorf("cluster: rank %d out of range (nparts=%d)", c.Rank, c.NParts)
	}
	return nil
}

// transportOptions maps the config's mode knobs to transport options.
func (c Config) transportOptions() []msgnet.Option {
	opts := []msgnet.Option{
		msgnet.WithMesh(!c.Star),
		msgnet.WithBatch(!c.NoBatch),
		msgnet.WithForceGob(c.Gob),
	}
	if c.MeshAddr != "" {
		opts = append(opts, msgnet.WithMeshAddr(c.MeshAddr))
	}
	return opts
}

// callBase gives each part a disjoint call-id space (see
// dcall.SetCallBase); 1<<40 calls per part is beyond any workload here.
func callBase(rank int) uint64 { return uint64(rank) << 40 }

// Node is one booted part: the machine, its transport, and the config.
type Node struct {
	Cfg Config
	M   *core.Machine
	Tr  *msgnet.Transport

	workers []*exec.Cmd
}

// StartDriver boots part 0: listen, build the partitioned machine, run
// register. Spawn or connect the workers (SpawnWorkers, or processes
// started by hand against node.Addr()), then WaitPeers before traffic.
func StartDriver(cfg Config, register func(*core.Machine) error) (*Node, error) {
	cfg.Rank = 0
	if err := cfg.check(); err != nil {
		return nil, err
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if cfg.WorkerAddrs == nil {
		if v := os.Getenv(AddrsEnv); v != "" {
			cfg.WorkerAddrs = strings.Split(v, ",")
		}
	}
	tr, err := msgnet.Listen(addr, cfg.P, cfg.NParts, cfg.transportOptions()...)
	if err != nil {
		return nil, err
	}
	cfg.Addr = tr.Addr()
	n := &Node{Cfg: cfg, Tr: tr}
	n.M = core.New(cfg.P, core.WithRouterSetup(func(r *msg.Router) {
		r.SetTransport(tr, msgnet.HostedMap(cfg.P, cfg.NParts, 0))
		tr.Attach(r)
	}))
	n.M.RT.SetCallBase(callBase(0))
	if register != nil {
		if err := register(n.M); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// Addr returns the rendezvous address workers dial.
func (n *Node) Addr() string { return n.Cfg.Addr }

// WaitPeers blocks until every worker part is connected — and, in mesh
// mode, every worker-pair link established — (driver only).
func (n *Node) WaitPeers(timeout time.Duration) error { return n.Tr.WaitPeers(timeout) }

// Kill fail-stops processor proc machine-wide: applied locally and
// flooded to every part.
func (n *Node) Kill(proc int) error { return n.Tr.Kill(proc) }

// Close shuts the part down. On the driver it first sends every worker
// a bye frame (orderly machine-wide stop) and reaps spawned workers.
func (n *Node) Close() {
	n.Tr.Shutdown()
	n.M.Close()
	for _, cmd := range n.workers {
		cmd.Wait()
	}
	n.workers = nil
}

// selfSpawn gates SpawnWorkers: re-execing os.Executable is only
// meaningful from an entry point whose main (or TestMain) checks
// WorkerConfig, so such entry points opt in explicitly. Without the
// opt-in a worker re-exec would rerun the caller's whole main.
var selfSpawn atomic.Bool

// EnableSelfSpawn declares that this process's entry point handles the
// worker role (checks WorkerConfig before doing anything else), making
// SpawnWorkers safe to call.
func EnableSelfSpawn() { selfSpawn.Store(true) }

// SelfSpawnEnabled reports whether EnableSelfSpawn has been called.
func SelfSpawnEnabled() bool { return selfSpawn.Load() }

// SpawnOption tunes SpawnWorkers.
type SpawnOption func(*spawnOptions)

type spawnOptions struct {
	addrs []string
}

// WithWorkerAddrs sets explicit mesh listen addresses for the spawned
// workers, in rank order (entry 0 = rank 1); empty entries keep the
// default. Overrides Config.WorkerAddrs and TDP_CLUSTER_ADDRS.
func WithWorkerAddrs(addrs []string) SpawnOption {
	return func(o *spawnOptions) { o.addrs = addrs }
}

// workerEnvValue builds the WorkerEnv payload for one worker rank.
func (n *Node) workerEnvValue(rank int, meshAddr string) string {
	v := fmt.Sprintf("P=%d;NPARTS=%d;RANK=%d;ADDR=%s", n.Cfg.P, n.Cfg.NParts, rank, n.Cfg.Addr)
	if n.Cfg.Star {
		v += ";STAR=1"
	}
	if n.Cfg.NoBatch {
		v += ";NOBATCH=1"
	}
	if n.Cfg.Gob {
		v += ";GOB=1"
	}
	if meshAddr != "" {
		v += ";MADDR=" + meshAddr
	}
	return v
}

// SpawnWorkers re-execs this binary once per worker rank, each with
// WorkerEnv set to dial this driver (carrying the transport mode and
// any explicit mesh address). Workers inherit stderr for diagnostics;
// stdout is discarded so driver output stays clean.
func (n *Node) SpawnWorkers(opt ...SpawnOption) error {
	if !SelfSpawnEnabled() {
		return fmt.Errorf("cluster: SpawnWorkers without EnableSelfSpawn — this entry point does not handle the worker role")
	}
	var so spawnOptions
	for _, f := range opt {
		f(&so)
	}
	addrs := so.addrs
	if addrs == nil {
		addrs = n.Cfg.WorkerAddrs
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for rank := 1; rank < n.Cfg.NParts; rank++ {
		meshAddr := ""
		if i := rank - 1; i < len(addrs) {
			meshAddr = addrs[i]
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+n.workerEnvValue(rank, meshAddr))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cluster: spawn worker %d: %w", rank, err)
		}
		n.workers = append(n.workers, cmd)
	}
	return nil
}

// WorkerConfig inspects the environment for a worker role. Entry points
// that support self-spawned clusters call it first thing in main (or
// TestMain) and, when ok, run RunWorker and exit.
func WorkerConfig() (Config, bool) {
	v := os.Getenv(WorkerEnv)
	if v == "" {
		return Config{}, false
	}
	cfg, _ := ParseWorkerEnv(v)
	return cfg, true
}

// ParseWorkerEnv decodes one WorkerEnv payload. Exported for tests and
// external launchers that assemble worker environments by hand.
func ParseWorkerEnv(v string) (Config, error) {
	var cfg Config
	for _, kv := range strings.Split(v, ";") {
		k, val, found := strings.Cut(kv, "=")
		if !found {
			continue
		}
		switch k {
		case "P":
			cfg.P, _ = strconv.Atoi(val)
		case "NPARTS":
			cfg.NParts, _ = strconv.Atoi(val)
		case "RANK":
			cfg.Rank, _ = strconv.Atoi(val)
		case "ADDR":
			cfg.Addr = val
		case "STAR":
			cfg.Star = val == "1"
		case "NOBATCH":
			cfg.NoBatch = val == "1"
		case "GOB":
			cfg.Gob = val == "1"
		case "MADDR":
			cfg.MeshAddr = val
		}
	}
	return cfg, cfg.check()
}

// RunWorker boots a worker part and blocks until the driver shuts the
// machine down (bye frame or lost connection): dial, build the
// partitioned machine, run register, park. The worker's task level runs
// nothing — its processors serve array-manager and spawn traffic.
func RunWorker(cfg Config, register func(*core.Machine) error) error {
	if err := cfg.check(); err != nil {
		return err
	}
	if cfg.Rank == 0 {
		return fmt.Errorf("cluster: RunWorker with rank 0 — use StartDriver")
	}
	tr, err := msgnet.Dial(cfg.Addr, cfg.P, cfg.NParts, cfg.Rank, cfg.transportOptions()...)
	if err != nil {
		return err
	}
	m := core.New(cfg.P, core.WithRouterSetup(func(r *msg.Router) {
		r.SetTransport(tr, msgnet.HostedMap(cfg.P, cfg.NParts, cfg.Rank))
		tr.Attach(r)
	}))
	m.RT.SetCallBase(callBase(cfg.Rank))
	if register != nil {
		if err := register(m); err != nil {
			tr.Close()
			m.Close()
			return err
		}
	}
	tr.Wait()
	m.Close()
	return nil
}
