// Package cluster boots one logical P-processor machine across several
// real OS processes ("parts") joined by the gob/TCP transport. Part 0
// (the driver) listens and runs the task-parallel program; worker parts
// dial in, boot the same core.Machine partitioned onto their processor
// slice, and park in their serve loops until the driver says bye.
//
// Every part runs the same binary. The driver re-execs itself to spawn
// workers (SpawnWorkers), passing the rendezvous in one environment
// variable; process entry points call WorkerConfig early and, when it
// reports a worker role, hand control to RunWorker and exit. The
// register callback — run on every part before traffic starts — is
// where programs are registered and call policies installed, keeping
// the two sides symmetric by construction.
package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	msgnet "repro/internal/msg/net"
)

// WorkerEnv is the environment variable carrying a worker's role:
// "P=<procs>;NPARTS=<parts>;RANK=<rank>;ADDR=<host:port>".
const WorkerEnv = "TDP_CLUSTER_WORKER"

// Config describes one part's view of the cluster.
type Config struct {
	P      int    // virtual processors, machine-wide
	NParts int    // OS processes
	Rank   int    // this part (0 = driver)
	Addr   string // driver listen address; "" = 127.0.0.1:0 (driver only)
}

func (c Config) check() error {
	if c.P < 1 || c.NParts < 2 || c.NParts > c.P {
		return fmt.Errorf("cluster: need 1 <= nparts <= p with nparts >= 2, got p=%d nparts=%d", c.P, c.NParts)
	}
	if c.Rank < 0 || c.Rank >= c.NParts {
		return fmt.Errorf("cluster: rank %d out of range (nparts=%d)", c.Rank, c.NParts)
	}
	return nil
}

// callBase gives each part a disjoint call-id space (see
// dcall.SetCallBase); 1<<40 calls per part is beyond any workload here.
func callBase(rank int) uint64 { return uint64(rank) << 40 }

// Node is one booted part: the machine, its transport, and the config.
type Node struct {
	Cfg Config
	M   *core.Machine
	Tr  *msgnet.Transport

	workers []*exec.Cmd
}

// StartDriver boots part 0: listen, build the partitioned machine, run
// register. Spawn or connect the workers (SpawnWorkers, or processes
// started by hand against node.Addr()), then WaitPeers before traffic.
func StartDriver(cfg Config, register func(*core.Machine) error) (*Node, error) {
	cfg.Rank = 0
	if err := cfg.check(); err != nil {
		return nil, err
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	tr, err := msgnet.Listen(addr, cfg.P, cfg.NParts)
	if err != nil {
		return nil, err
	}
	cfg.Addr = tr.Addr()
	n := &Node{Cfg: cfg, Tr: tr}
	n.M = core.New(cfg.P, core.WithRouterSetup(func(r *msg.Router) {
		r.SetTransport(tr, msgnet.HostedMap(cfg.P, cfg.NParts, 0))
		tr.Attach(r)
	}))
	n.M.RT.SetCallBase(callBase(0))
	if register != nil {
		if err := register(n.M); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// Addr returns the rendezvous address workers dial.
func (n *Node) Addr() string { return n.Cfg.Addr }

// WaitPeers blocks until every worker part is connected (driver only).
func (n *Node) WaitPeers(timeout time.Duration) error { return n.Tr.WaitPeers(timeout) }

// Kill fail-stops processor proc machine-wide: applied locally and
// flooded to every part.
func (n *Node) Kill(proc int) error { return n.Tr.Kill(proc) }

// Close shuts the part down. On the driver it first sends every worker
// a bye frame (orderly machine-wide stop) and reaps spawned workers.
func (n *Node) Close() {
	n.Tr.Shutdown()
	n.M.Close()
	for _, cmd := range n.workers {
		cmd.Wait()
	}
	n.workers = nil
}

// selfSpawn gates SpawnWorkers: re-execing os.Executable is only
// meaningful from an entry point whose main (or TestMain) checks
// WorkerConfig, so such entry points opt in explicitly. Without the
// opt-in a worker re-exec would rerun the caller's whole main.
var selfSpawn atomic.Bool

// EnableSelfSpawn declares that this process's entry point handles the
// worker role (checks WorkerConfig before doing anything else), making
// SpawnWorkers safe to call.
func EnableSelfSpawn() { selfSpawn.Store(true) }

// SelfSpawnEnabled reports whether EnableSelfSpawn has been called.
func SelfSpawnEnabled() bool { return selfSpawn.Load() }

// SpawnWorkers re-execs this binary once per worker rank, each with
// WorkerEnv set to dial this driver. Workers inherit stderr for
// diagnostics; stdout is discarded so driver output stays clean.
func (n *Node) SpawnWorkers() error {
	if !SelfSpawnEnabled() {
		return fmt.Errorf("cluster: SpawnWorkers without EnableSelfSpawn — this entry point does not handle the worker role")
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for rank := 1; rank < n.Cfg.NParts; rank++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=P=%d;NPARTS=%d;RANK=%d;ADDR=%s",
			WorkerEnv, n.Cfg.P, n.Cfg.NParts, rank, n.Cfg.Addr))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cluster: spawn worker %d: %w", rank, err)
		}
		n.workers = append(n.workers, cmd)
	}
	return nil
}

// WorkerConfig inspects the environment for a worker role. Entry points
// that support self-spawned clusters call it first thing in main (or
// TestMain) and, when ok, run RunWorker and exit.
func WorkerConfig() (Config, bool) {
	v := os.Getenv(WorkerEnv)
	if v == "" {
		return Config{}, false
	}
	var cfg Config
	for _, kv := range strings.Split(v, ";") {
		k, val, found := strings.Cut(kv, "=")
		if !found {
			continue
		}
		switch k {
		case "P":
			cfg.P, _ = strconv.Atoi(val)
		case "NPARTS":
			cfg.NParts, _ = strconv.Atoi(val)
		case "RANK":
			cfg.Rank, _ = strconv.Atoi(val)
		case "ADDR":
			cfg.Addr = val
		}
	}
	return cfg, true
}

// RunWorker boots a worker part and blocks until the driver shuts the
// machine down (bye frame or lost connection): dial, build the
// partitioned machine, run register, park. The worker's task level runs
// nothing — its processors serve array-manager and spawn traffic.
func RunWorker(cfg Config, register func(*core.Machine) error) error {
	if err := cfg.check(); err != nil {
		return err
	}
	if cfg.Rank == 0 {
		return fmt.Errorf("cluster: RunWorker with rank 0 — use StartDriver")
	}
	tr, err := msgnet.Dial(cfg.Addr, cfg.P, cfg.NParts, cfg.Rank)
	if err != nil {
		return err
	}
	m := core.New(cfg.P, core.WithRouterSetup(func(r *msg.Router) {
		r.SetTransport(tr, msgnet.HostedMap(cfg.P, cfg.NParts, cfg.Rank))
		tr.Attach(r)
	}))
	m.RT.SetCallBase(callBase(cfg.Rank))
	if register != nil {
		if err := register(m); err != nil {
			tr.Close()
			m.Close()
			return err
		}
	}
	tr.Wait()
	m.Close()
	return nil
}
