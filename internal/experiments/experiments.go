// Package experiments implements the per-figure experiment harness of
// DESIGN.md (E1–E18): for every figure of the paper, an executable
// experiment that demonstrates — and where meaningful, measures — the
// behaviour the figure depicts. EXPERIMENTS.md records the outputs.
//
// Each experiment returns a human-readable report and fails with an error
// if its correctness assertions do not hold, so the CLI doubles as an
// integration check. The benchmark harness (bench_test.go at the module
// root) measures the same workloads under testing.B.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/apps/animation"
	"repro/internal/apps/climate"
	"repro/internal/apps/innerproduct"
	"repro/internal/apps/polymult"
	"repro/internal/apps/reactor"
	"repro/internal/apps/triangular"
	"repro/internal/arraymgr"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/msg"
	"repro/internal/spmd"
	"repro/internal/trace"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID     string
	Figure string
	Title  string
	Run    func(w io.Writer) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig 2.1", "Coupled climate simulation", E1Climate},
		{"E2", "Fig 2.2", "Fourier-transform pipeline throughput", E2Pipeline},
		{"E3", "Fig 2.3", "Reactor discrete-event simulation", E3Reactor},
		{"E4", "Fig 2.4", "Inherently parallel animation frames", E4Animation},
		{"E5", "Fig 3.1", "Partition/distribute bijection", E5Partition},
		{"E6", "Fig 3.2", "Distributed-call control flow and overhead", E6ControlFlow},
		{"E7", "Fig 3.3", "Distributed-call data flow", E7DataFlow},
		{"E8", "Fig 3.4", "Concurrent distributed calls", E8ConcurrentCalls},
		{"E9", "Fig 3.5", "Partitioning a 2-D array", E9Partition2D},
		{"E10", "Fig 3.6", "Decomposition options", E10Decompositions},
		{"E11", "Fig 3.7", "Local-section borders", E11Borders},
		{"E12", "Fig 3.8", "Row- vs column-major distribution", E12IndexingOrder},
		{"E13", "Fig 3.9", "Array-manager operation latency", E13ArrayManagerOps},
		{"E14", "Fig 3.10", "Wrapper status/reduction combining", E14WrapperCombine},
		{"E15", "Fig 6.1", "Polynomial multiplication via FFT pipeline", E15PolyMult},
		{"E16", "§6.1", "Inner product example", E16InnerProduct},
		{"E17", "§3.2.1.3", "Border verification/reallocation", E17VerifyBorders},
		{"E18", "§D", "SPMD linear-algebra library", E18LinAlg},
		{"E19", "§7.2.1", "Extension: channel-coupled data-parallel programs", E19Channels},
		{"E20", "ablation", "Combine tree vs linear merge", E20CombineAblation},
		{"E25", "extension", "Cyclic vs block decomposition on a triangular update", E25TriangularCyclic},
		{"E26", "extension", "Direct redistribution vs gather-then-scatter panel handoff", E26PanelHandoff},
		{"E27", "robustness", "Goodput vs drop probability under the fault plane", E27GoodputUnderDrops},
		{"E28", "robustness", "Replication write overhead and time-to-recover after a kill", E28ReplicationRecovery},
		{"E29", "transport", "In-process switch vs gob/TCP loopback on the block-transfer workload", E29Transport},
		{"E30", "transport", "Fast wire: star vs mesh vs mesh+batch on block transfer and redistribution", E30FastWire},
	}
}

// Lookup finds an experiment by (case-insensitive) ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- E1: climate ---

// E1Climate runs the coupled simulation against the sequential reference
// and reports agreement and timing across sizes.
func E1Climate(w io.Writer) error {
	fmt.Fprintln(w, "E1 (Fig 2.1) coupled climate simulation: distributed vs sequential")
	fmt.Fprintln(w, "rows x cols  steps  P   max|dist-seq|   t_dist      t_seq")
	for _, c := range []struct{ rows, cols, steps, p int }{
		{8, 8, 10, 2}, {16, 12, 20, 4}, {32, 16, 20, 8},
	} {
		cfg := climate.Config{Rows: c.rows, Cols: c.cols, Steps: c.steps, Alpha: 0.4}
		m := core.New(c.p)
		if err := climate.RegisterPrograms(m); err != nil {
			return err
		}
		t0 := time.Now()
		got, err := climate.Run(m, cfg)
		tDist := time.Since(t0)
		m.Close()
		if err != nil {
			return err
		}
		t0 = time.Now()
		want := climate.RunSequential(cfg)
		tSeq := time.Since(t0)
		worst := 0.0
		for i := range want.Ocean {
			worst = math.Max(worst, math.Abs(got.Ocean[i]-want.Ocean[i]))
			worst = math.Max(worst, math.Abs(got.Atmosphere[i]-want.Atmosphere[i]))
		}
		if worst > 1e-9 {
			return fmt.Errorf("E1: deviation %v exceeds tolerance", worst)
		}
		fmt.Fprintf(w, "%4dx%-4d   %5d  %d   %12.3g   %-10v  %v\n",
			c.rows, c.cols, c.steps, c.p, worst, tDist.Round(time.Microsecond), tSeq.Round(time.Microsecond))
	}
	fmt.Fprintln(w, "boundary data moves between the two simulations only through the task level.")
	return nil
}

// --- E2: pipeline throughput ---

// E2Pipeline compares pushing K pairs through the pipeline at once (stages
// overlapped) with K separate single-pair runs (no overlap), the
// steady-state benefit Fig 2.2 depicts.
func E2Pipeline(w io.Writer) error {
	fmt.Fprintln(w, "E2 (Fig 2.2) pipeline throughput: K pairs streamed vs K unpipelined runs")
	const n = 32
	const pairs = 8
	rng := rand.New(rand.NewSource(2))
	input := make([][2][]float64, pairs)
	for k := range input {
		f, g := make([]float64, n), make([]float64, n)
		for i := range f {
			f[i] = rng.NormFloat64()
			g[i] = rng.NormFloat64()
		}
		input[k] = [2][]float64{f, g}
	}
	m := core.New(4)
	defer m.Close()
	if err := polymult.RegisterPrograms(m); err != nil {
		return err
	}
	// Warm up.
	if _, err := polymult.Run(m, n, input[:1]); err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := polymult.Run(m, n, input); err != nil {
		return err
	}
	piped := time.Since(t0)
	t0 = time.Now()
	for k := 0; k < pairs; k++ {
		if _, err := polymult.Run(m, n, input[k:k+1]); err != nil {
			return err
		}
	}
	unpiped := time.Since(t0)
	fmt.Fprintf(w, "n=%d, %d pairs, P=4 (4 groups of 1)\n", n, pairs)
	fmt.Fprintf(w, "  pipelined (stages overlapped): %v\n", piped.Round(time.Microsecond))
	fmt.Fprintf(w, "  unpipelined (pair at a time):  %v\n", unpiped.Round(time.Microsecond))
	fmt.Fprintf(w, "  speedup: %.2fx\n", float64(unpiped)/float64(piped))
	return nil
}

// --- E3: reactor ---

// E3Reactor checks determinism and conservation of the discrete-event
// simulation and reports event throughput. Three temperature probes are
// sampled through the task level after every reactor event — one batched
// gather per event — and must trace the sequential reference exactly.
func E3Reactor(w io.Writer) error {
	fmt.Fprintln(w, "E3 (Fig 2.3) reactor discrete-event simulation")
	fmt.Fprintln(w, "cells  P  events  injected    conserved  events/ms")
	for _, c := range []struct{ cells, p int }{{8, 2}, {32, 4}, {64, 8}} {
		cfg := reactor.Config{Cells: c.cells, Dt: 0.25, Horizon: 8, Alpha: 0.25, ValveCut: 0.8,
			Probes: []int{0, c.cells / 2, c.cells - 1}}
		m := core.New(c.p)
		if err := reactor.RegisterPrograms(m); err != nil {
			return err
		}
		t0 := time.Now()
		res, err := reactor.Run(m, cfg)
		el := time.Since(t0)
		m.Close()
		if err != nil {
			return err
		}
		if math.Abs(res.FieldTotal-res.TotalInjected) > 1e-9 {
			return fmt.Errorf("E3: conservation violated")
		}
		ref := reactor.RunSequential(cfg)
		if res.Events != ref.Events {
			return fmt.Errorf("E3: event count %d != sequential %d", res.Events, ref.Events)
		}
		for ev := range ref.ProbeTrace {
			for i := range cfg.Probes {
				if math.Abs(res.ProbeTrace[ev][i]-ref.ProbeTrace[ev][i]) > 1e-9 {
					return fmt.Errorf("E3: probe %d diverges at event %d", i, ev)
				}
			}
		}
		fmt.Fprintf(w, "%5d  %d  %6d  %9.5f   yes        %8.1f\n",
			c.cells, c.p, res.Events, res.TotalInjected,
			float64(res.Events)/float64(el.Milliseconds()+1))
	}
	fmt.Fprintln(w, "probe sensors (batched gathers at the task level) trace the sequential run exactly.")
	return nil
}

// --- E4: animation ---

// E4Animation measures frame throughput with 1 group vs several groups on
// the same machine (the logical concurrency the figure shows).
func E4Animation(w io.Writer) error {
	fmt.Fprintln(w, "E4 (Fig 2.4) animation frames on independent groups")
	const frames = 8
	cfg := animation.Config{Frames: frames, Height: 32, Width: 32}
	want := animation.RunSequential(cfg)
	fmt.Fprintln(w, "P  groups  wall time    checksums")
	for _, c := range []struct{ p, groups int }{{4, 1}, {4, 2}, {4, 4}} {
		cfg := cfg
		cfg.Groups = c.groups
		m := core.New(c.p)
		if err := animation.RegisterPrograms(m); err != nil {
			return err
		}
		t0 := time.Now()
		got, err := animation.Run(m, cfg)
		el := time.Since(t0)
		m.Close()
		if err != nil {
			return err
		}
		for f := range want {
			if got[f] != want[f] {
				return fmt.Errorf("E4: frame %d checksum mismatch", f)
			}
		}
		fmt.Fprintf(w, "%d  %6d  %-10v  all %d match sequential\n",
			c.p, c.groups, el.Round(time.Microsecond), frames)
	}
	return nil
}

// --- E5: partition bijection ---

// E5Partition sweeps shapes and verifies each element maps to exactly one
// (processor, offset) pair and back (the Fig 3.1 invariant).
func E5Partition(w io.Writer) error {
	fmt.Fprintln(w, "E5 (Fig 3.1) partition/distribute bijection sweep")
	checked := 0
	shapes := 0
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		nd := rng.Intn(3) + 1
		dims := make([]int, nd)
		gridDims := make([]int, nd)
		for i := range dims {
			gridDims[i] = rng.Intn(3) + 1
			dims[i] = gridDims[i] * (rng.Intn(4) + 1)
		}
		ix := grid.Indexing(rng.Intn(2))
		type key struct{ slot, off int }
		seen := map[key]bool{}
		n := grid.Size(dims)
		for lin := 0; lin < n; lin++ {
			idx, err := grid.Unflatten(lin, dims, grid.RowMajor)
			if err != nil {
				return err
			}
			slot, off, err := grid.OwnerSlot(idx, dims, gridDims, ix)
			if err != nil {
				return err
			}
			k := key{slot, off}
			if seen[k] {
				return fmt.Errorf("E5: duplicate mapping for %v in dims %v grid %v", idx, dims, gridDims)
			}
			seen[k] = true
			checked++
		}
		if len(seen) != n {
			return fmt.Errorf("E5: covered %d of %d", len(seen), n)
		}
		shapes++
	}
	fmt.Fprintf(w, "verified %d elements across %d random shapes: every element in exactly one local section\n", checked, shapes)
	return nil
}

// --- E6: control flow ---

// E6ControlFlow demonstrates Fig 3.2's suspension semantics and measures
// call overhead vs group size.
func E6ControlFlow(w io.Writer) error {
	fmt.Fprintln(w, "E6 (Fig 3.2) distributed-call control flow")
	m := core.New(8)
	defer m.Close()
	// Suspension: copies barrier inside the call; the counter must be
	// complete when the call returns.
	var doneCount int64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := m.CallFn(m.AllProcs(), func(wd *spmd.World, a *dcall.Args) {
		if err := wd.Barrier(); err != nil {
			panic(err)
		}
		<-mu
		doneCount++
		mu <- struct{}{}
	})
	if err != nil {
		return err
	}
	if doneCount != 8 {
		return fmt.Errorf("E6: call returned with %d of 8 copies complete", doneCount)
	}
	fmt.Fprintln(w, "caller suspended until all 8 copies terminated: ok")
	fmt.Fprintln(w, "group size   mean call overhead (empty program)")
	for _, g := range []int{1, 2, 4, 8} {
		procs := m.Procs(0, 1, g)
		const iters = 200
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := m.CallFn(procs, func(wd *spmd.World, a *dcall.Args) {}); err != nil {
				return err
			}
		}
		per := time.Since(t0) / iters
		fmt.Fprintf(w, "%10d   %v\n", g, per.Round(100*time.Nanosecond))
	}
	fmt.Fprintln(w, "overhead grows with group size (wrapper spawn + combine tree), as expected.")
	return nil
}

// --- E7: data flow ---

// E7DataFlow demonstrates Fig 3.3: the caller's global view and the
// copies' local sections address the same storage.
func E7DataFlow(w io.Writer) error {
	fmt.Fprintln(w, "E7 (Fig 3.3) distributed-call data flow")
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{Dims: []int{8}})
	if err != nil {
		return err
	}
	// Task level writes 1..8; each copy doubles its section and the
	// copies then circulate their section sums around a ring.
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0] + 1) }); err != nil {
		return err
	}
	if err := m.CallFn(m.AllProcs(), func(wd *spmd.World, args *dcall.Args) {
		sec := args.Section(0)
		sum := 0.0
		for i := range sec.F {
			sec.F[i] *= 2
			sum += sec.F[i]
		}
		// Communicate between the copies (the dashed line in Fig 3.3).
		next := (wd.Rank() + 1) % wd.Size()
		prev := (wd.Rank() - 1 + wd.Size()) % wd.Size()
		if err := wd.Send(next, 0, []float64{sum}); err != nil {
			panic(err)
		}
		got, err := wd.RecvFloats(prev, 0)
		if err != nil {
			panic(err)
		}
		sec.F[0] += got[0] / 1000 // mark with the neighbour's sum
	}, a.Param()); err != nil {
		return err
	}
	snap, err := a.Snapshot()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after call, global view sees per-copy writes and neighbour marks:\n  %v\n", snap)
	// Element 0 of copy 1's section: 2*3=6 plus copy 0's sum (2+4=6)/1000.
	if math.Abs(snap[2]-6.006) > 1e-12 {
		return fmt.Errorf("E7: expected 6.006 at element 2, got %v", snap[2])
	}
	fmt.Fprintln(w, "global write -> local read -> local write -> global read round trip: ok")
	return nil
}

// --- E8: concurrent calls ---

// E8ConcurrentCalls runs two busy distributed calls on disjoint groups
// concurrently and serialized, verifying isolation and measuring overlap.
func E8ConcurrentCalls(w io.Writer) error {
	fmt.Fprintln(w, "E8 (Fig 3.4) concurrent distributed calls on disjoint groups")
	m := core.New(4)
	defer m.Close()
	groupA, groupB := m.Procs(0, 1, 2), m.Procs(2, 1, 2)
	busy := func(wd *spmd.World, a *dcall.Args) {
		// Communicate with the peer copy, then spin a little.
		if _, err := wd.Exchange(1-wd.Rank(), 0, []float64{1}); err != nil {
			panic(err)
		}
		s := 0.0
		for i := 0; i < 200000; i++ {
			s += math.Sqrt(float64(i))
		}
		_ = s
	}
	serial := time.Now()
	if err := m.CallFn(groupA, busy); err != nil {
		return err
	}
	if err := m.CallFn(groupB, busy); err != nil {
		return err
	}
	tSerial := time.Since(serial)
	conc := time.Now()
	var e1, e2 error
	compose.Par(
		func() { e1 = m.CallFn(groupA, busy) },
		func() { e2 = m.CallFn(groupB, busy) },
	)
	tConc := time.Since(conc)
	if e1 != nil || e2 != nil {
		return fmt.Errorf("E8: %v / %v", e1, e2)
	}
	fmt.Fprintf(w, "serialized: %v   concurrent: %v   overlap factor: %.2fx\n",
		tSerial.Round(time.Microsecond), tConc.Round(time.Microsecond),
		float64(tSerial)/float64(tConc))
	fmt.Fprintln(w, "message isolation between the two calls is enforced by per-call tags (see msg tests).")
	return nil
}

// --- E9: Fig 3.5 ---

// E9Partition2D prints the mapping table for a 4x4 array over a 2x4 grid.
func E9Partition2D(w io.Writer) error {
	fmt.Fprintln(w, "E9 (Fig 3.5) 4x4 array over 8 processors as a 2x4 grid")
	dims := []int{4, 4}
	gridDims := []int{2, 4}
	fmt.Fprintln(w, "global (i,j) -> {processor slot, local indices}")
	for i := 0; i < 4; i++ {
		row := make([]string, 0, 4)
		for j := 0; j < 4; j++ {
			coord, lidx, err := grid.GlobalToLocal([]int{i, j}, dims, gridDims)
			if err != nil {
				return err
			}
			slot, err := grid.ProcSlot(coord, gridDims, grid.RowMajor)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("(%d,%d)->{P%d,(%d,%d)}", i, j, slot, lidx[0], lidx[1]))
		}
		fmt.Fprintln(w, "  "+strings.Join(row, "  "))
	}
	return nil
}

// --- E10: Fig 3.6 ---

// E10Decompositions reproduces the figure's three decompositions of a
// 400x200 array over 16 processors.
func E10Decompositions(w io.Writer) error {
	fmt.Fprintln(w, "E10 (Fig 3.6) decomposing a 400x200 array over 16 processors")
	fmt.Fprintln(w, "decomposition          grid    local sections")
	cases := []struct {
		name  string
		specs []grid.Decomp
		grid  string
		local string
	}{
		{"(block, block)", []grid.Decomp{grid.BlockDefault(), grid.BlockDefault()}, "4x4", "100 by 50"},
		{"(block(2), block(8))", []grid.Decomp{grid.BlockOf(2), grid.BlockOf(8)}, "2x8", "200 by 25"},
		{"(block, *)", []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}, "16x1", "25 by 200"},
	}
	for _, c := range cases {
		g, err := grid.GridDims(16, c.specs)
		if err != nil {
			return err
		}
		l, err := grid.LocalDims([]int{400, 200}, g)
		if err != nil {
			return err
		}
		gs := fmt.Sprintf("%dx%d", g[0], g[1])
		ls := fmt.Sprintf("%d by %d", l[0], l[1])
		if gs != c.grid || ls != c.local {
			return fmt.Errorf("E10: %s gave grid %s local %s, want %s / %s", c.name, gs, ls, c.grid, c.local)
		}
		fmt.Fprintf(w, "%-21s  %-6s  %s\n", c.name, gs, ls)
	}
	fmt.Fprintln(w, "matches the paper's figure exactly.")
	return nil
}

// --- E11: Fig 3.7 ---

// E11Borders demonstrates bordered local sections and that the task level
// sees only the interior.
func E11Borders(w io.Writer) error {
	fmt.Fprintln(w, "E11 (Fig 3.7) local sections with borders")
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{
		Dims:    []int{4, 6},
		Borders: arraymgr.ExplicitBorders{1, 1, 2, 2},
	})
	if err != nil {
		return err
	}
	meta, err := a.Meta()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "local dims %v + borders %v -> storage dims %v (%d elements vs %d interior)\n",
		meta.LocalDims, meta.Borders, meta.LocalDimsPlus,
		meta.LocalStorageSize(), meta.LocalInteriorSize())
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) }); err != nil {
		return err
	}
	// The data-parallel side sees the borders; check they're untouched
	// zeros while the interior carries the data.
	var borderCells, interiorCells int
	if err := m.CallFn(meta.SectionProcs(), func(wd *spmd.World, args *dcall.Args) {
		sec := args.Section(0)
		if wd.Rank() == 0 {
			for _, v := range sec.F {
				if v == 0 {
					borderCells++
				} else {
					interiorCells++
				}
			}
		}
	}, a.Param()); err != nil {
		return err
	}
	fmt.Fprintf(w, "copy 0's storage: %d border-or-zero cells, %d data cells\n", borderCells, interiorCells)
	fmt.Fprintln(w, "task level reads/writes only interior elements (global indices).")
	return nil
}

// --- E12: Fig 3.8 ---

// E12IndexingOrder reproduces the figure's 2x2 array over processors
// (0,2,4,6) under both indexing orders.
func E12IndexingOrder(w io.Writer) error {
	fmt.Fprintln(w, "E12 (Fig 3.8) distributing a 2x2 array over processors (0,2,4,6)")
	for _, c := range []struct {
		ix   grid.Indexing
		want [4]int // processor of x(0,0), x(0,1), x(1,0), x(1,1)
	}{
		{grid.RowMajor, [4]int{0, 2, 4, 6}},
		{grid.ColMajor, [4]int{0, 4, 2, 6}},
	} {
		m := core.New(8)
		a, err := m.NewArray(core.ArraySpec{
			Dims: []int{2, 2}, Procs: []int{0, 2, 4, 6}, Indexing: c.ix,
		})
		if err != nil {
			m.Close()
			return err
		}
		fmt.Fprintf(w, "%s-major:", c.ix)
		k := 0
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if err := a.Write(1, i, j); err != nil {
					m.Close()
					return err
				}
				// Find which processor's section holds it.
				var owner int = -1
				for _, p := range []int{0, 2, 4, 6} {
					sec, st := m.AM.FindLocal(p, a.ID())
					if st == arraymgr.StatusOK && sec.F[0] == 1 {
						owner = p
					}
				}
				if owner != c.want[k] {
					m.Close()
					return fmt.Errorf("E12: %v x(%d,%d) on proc %d, want %d", c.ix, i, j, owner, c.want[k])
				}
				fmt.Fprintf(w, "  x(%d,%d)->proc %d", i, j, owner)
				if err := a.Write(0, i, j); err != nil {
					m.Close()
					return err
				}
				k++
			}
		}
		fmt.Fprintln(w)
		m.Close()
	}
	fmt.Fprintln(w, "matches the paper's figure: x(1,0) on proc 4 (row) vs proc 2 (column).")
	return nil
}

// --- E13: array-manager latency ---

// E13ArrayManagerOps measures element read/write latency for locally
// owned vs remotely owned elements, and create/free cost vs P.
func E13ArrayManagerOps(w io.Writer) error {
	fmt.Fprintln(w, "E13 (Fig 3.9) array-manager operation latency")
	m := core.New(4)
	defer m.Close()
	a, err := m.NewArray(core.ArraySpec{Dims: []int{8}})
	if err != nil {
		return err
	}
	const iters = 2000
	timeOp := func(f func() error) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(t0) / iters, nil
	}
	// Element 0 is owned by processor 0; element 7 by processor 3.
	localRead, err := timeOp(func() error {
		_, err := a.ReadOn(0, 0)
		return err
	})
	if err != nil {
		return err
	}
	remoteRead, err := timeOp(func() error {
		_, err := a.ReadOn(0, 7)
		return err
	})
	if err != nil {
		return err
	}
	localWrite, err := timeOp(func() error { return a.WriteOn(0, 1, 0) })
	if err != nil {
		return err
	}
	remoteWrite, err := timeOp(func() error { return a.WriteOn(0, 1, 7) })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "read_element   local %-10v remote %v\n", localRead, remoteRead)
	fmt.Fprintf(w, "write_element  local %-10v remote %v\n", localWrite, remoteWrite)
	// Scattered access: all 8 elements (spread over the 4 owners) through
	// the per-element loop vs one batched gather.
	scattered := make([][]int, 8)
	for i := range scattered {
		scattered[i] = []int{i}
	}
	buf := make([]float64, len(scattered))
	perElem, err := timeOp(func() error {
		for _, idx := range scattered {
			if _, err := a.ReadOn(0, idx[0]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	gathered, err := timeOp(func() error { return a.GatherElementsInto(scattered, buf) })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "8 scattered elements: read_element loop %-10v gather_elements %v\n", perElem, gathered)
	fmt.Fprintln(w, "create/free of an array distributed over P processors:")
	for _, p := range []int{1, 2, 4, 8} {
		mm := core.New(p)
		t0 := time.Now()
		const creates = 100
		for i := 0; i < creates; i++ {
			arr, err := mm.NewArray(core.ArraySpec{Dims: []int{8 * p}})
			if err != nil {
				mm.Close()
				return err
			}
			if err := arr.Free(); err != nil {
				mm.Close()
				return err
			}
		}
		per := time.Since(t0) / creates
		mm.Close()
		fmt.Fprintf(w, "  P=%d: %v per create+free\n", p, per.Round(100*time.Nanosecond))
	}
	return nil
}

// --- E14: wrapper combine ---

// E14WrapperCombine validates the pairwise merge of status and reduction
// variables against sequential folds.
func E14WrapperCombine(w io.Writer) error {
	fmt.Fprintln(w, "E14 (Fig 3.10) wrapper status/reduction combining")
	m := core.New(8)
	defer m.Close()
	procs := m.AllProcs()
	// Status: default max.
	st := m.CallFnStatus(procs, func(wd *spmd.World, a *dcall.Args) {
		a.SetStatus(0, 10+wd.Rank())
	}, dcall.Status())
	if st != 17 {
		return fmt.Errorf("E14: max status = %d, want 17", st)
	}
	fmt.Fprintf(w, "status via default max combine:  %d (copies returned 10..17)\n", st)
	// Reduction: random associative op vs sequential fold.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 5; trial++ {
		locals := make([][]float64, 8)
		for i := range locals {
			locals[i] = []float64{rng.NormFloat64() + 2, rng.NormFloat64()}
		}
		affine := func(a, b []float64) []float64 {
			return []float64{a[0] * b[0], a[0]*b[1] + a[1]}
		}
		want := locals[0]
		for i := 1; i < 8; i++ {
			want = affine(want, locals[i])
		}
		out := defval.New[[]float64]()
		if err := m.CallFn(procs, func(wd *spmd.World, a *dcall.Args) {
			copy(a.Reduction(0), locals[wd.Rank()])
		}, dcall.Reduce(2, affine, out)); err != nil {
			return err
		}
		got := out.Value()
		if math.Abs(got[0]-want[0]) > 1e-9 || math.Abs(got[1]-want[1]) > 1e-9 {
			return fmt.Errorf("E14: tree merge %v != fold %v", got, want)
		}
	}
	fmt.Fprintln(w, "5 random non-commutative reductions: tree merge == sequential fold (rank order preserved)")
	return nil
}

// --- E15: polynomial multiplication ---

// E15PolyMult sweeps polynomial sizes, checking the pipeline against the
// O(n²) schoolbook baseline and reporting throughput.
func E15PolyMult(w io.Writer) error {
	fmt.Fprintln(w, "E15 (Fig 6.1) polynomial multiplication: FFT pipeline vs schoolbook")
	fmt.Fprintln(w, "   n  pairs  max error     pipeline time")
	m := core.New(4)
	defer m.Close()
	if err := polymult.RegisterPrograms(m); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{4, 16, 64} {
		const pairs = 4
		input := make([][2][]float64, pairs)
		for k := range input {
			f, g := make([]float64, n), make([]float64, n)
			for i := range f {
				f[i] = float64(rng.Intn(9) - 4)
				g[i] = float64(rng.Intn(9) - 4)
			}
			input[k] = [2][]float64{f, g}
		}
		t0 := time.Now()
		got, err := polymult.Run(m, n, input)
		el := time.Since(t0)
		if err != nil {
			return err
		}
		worst := 0.0
		for k := range input {
			want := polymult.Schoolbook(input[k][0], input[k][1])
			for j := range want {
				worst = math.Max(worst, math.Abs(got[k][j]-want[j]))
			}
		}
		if worst > 1e-6 {
			return fmt.Errorf("E15: n=%d error %v", n, worst)
		}
		fmt.Fprintf(w, "%4d  %5d  %-11.2g  %v\n", n, pairs, worst, el.Round(time.Microsecond))
	}
	return nil
}

// --- E16: inner product ---

// E16InnerProduct sweeps sizes and processors for the §6.1 example.
func E16InnerProduct(w io.Writer) error {
	fmt.Fprintln(w, "E16 (§6.1) inner product example")
	fmt.Fprintln(w, "    n   P   product        closed form    match")
	for _, c := range []struct{ local, p int }{{4, 1}, {8, 2}, {16, 4}, {64, 8}} {
		m := core.New(c.p)
		if err := innerproduct.RegisterPrograms(m); err != nil {
			return err
		}
		res, err := innerproduct.Run(m, c.local)
		m.Close()
		if err != nil {
			return err
		}
		if res.Product != res.Expected {
			return fmt.Errorf("E16: %v != %v", res.Product, res.Expected)
		}
		fmt.Fprintf(w, "%5d   %d   %-13g  %-13g  yes\n", res.N, c.p, res.Product, res.Expected)
	}
	return nil
}

// --- E17: verify borders ---

// E17VerifyBorders exercises §4.2.7's three cases and measures
// reallocation cost vs array size.
func E17VerifyBorders(w io.Writer) error {
	fmt.Fprintln(w, "E17 (§3.2.1.3) border verification and reallocation")
	m := core.New(4)
	defer m.Close()
	fmt.Fprintln(w, "   size    matching-verify   realloc-verify   interior preserved")
	for _, n := range []int{64, 256, 1024} {
		a, err := m.NewArray(core.ArraySpec{
			Dims:    []int{n},
			Borders: arraymgr.ExplicitBorders{1, 1},
		})
		if err != nil {
			return err
		}
		if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) }); err != nil {
			return err
		}
		t0 := time.Now()
		if err := a.Verify(1, arraymgr.ExplicitBorders{1, 1}, grid.RowMajor); err != nil {
			return err
		}
		tMatch := time.Since(t0)
		t0 = time.Now()
		if err := a.Verify(1, arraymgr.ExplicitBorders{3, 3}, grid.RowMajor); err != nil {
			return err
		}
		tRealloc := time.Since(t0)
		// Spot-check the interior: one batched gather of the scattered
		// check points instead of a read_element loop.
		spots := [][]int{{0}, {n / 2}, {n - 1}}
		vals, err := a.GatherElements(spots)
		if err != nil {
			return err
		}
		for i, idx := range spots {
			if vals[i] != float64(idx[0]) {
				return fmt.Errorf("E17: interior lost after reallocation: element %d = %v", idx[0], vals[i])
			}
		}
		fmt.Fprintf(w, "%7d    %-15v   %-14v   yes\n", n,
			tMatch.Round(time.Microsecond), tRealloc.Round(time.Microsecond))
		if err := a.Free(); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "wrong indexing type is rejected as STATUS_INVALID (not correctable by reallocation).")
	return nil
}

// --- E18: linear algebra ---

// E18LinAlg runs the adapted library end to end through distributed calls:
// LU solve and QR residuals across machine sizes.
func E18LinAlg(w io.Writer) error {
	fmt.Fprintln(w, "E18 (§D) SPMD linear-algebra library via distributed calls")
	fmt.Fprintln(w, "   n   P   ‖Ax-b‖_inf    ‖QR-A‖_inf    ‖QᵀQ-I‖_inf")
	for _, c := range []struct{ n, p int }{{8, 1}, {12, 2}, {16, 4}} {
		resLU, resQR, resOrtho, err := linalgResiduals(c.n, c.p)
		if err != nil {
			return err
		}
		if resLU > 1e-9 || resQR > 1e-9 || resOrtho > 1e-9 {
			return fmt.Errorf("E18: residuals too large: %g %g %g", resLU, resQR, resOrtho)
		}
		fmt.Fprintf(w, "%4d   %d   %-11.2g   %-11.2g   %.2g\n", c.n, c.p, resLU, resQR, resOrtho)
	}
	return nil
}

func linalgResiduals(n, p int) (lu, qr, ortho float64, err error) {
	m := core.New(p)
	defer m.Close()

	rng := rand.New(rand.NewSource(int64(100*n + p)))
	aDense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aDense[i*n+j] = rng.NormFloat64()
		}
		aDense[i*n+i] += float64(n)
	}
	bDense := make([]float64, n)
	for i := range bDense {
		bDense[i] = rng.NormFloat64()
	}

	procs := m.AllProcs()
	matA, err := m.NewArray(core.ArraySpec{
		Dims: []int{n, n}, Procs: procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	vecB, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Procs: procs})
	if err != nil {
		return 0, 0, 0, err
	}
	vecX, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Procs: procs})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := matA.Fill(func(idx []int) float64 { return aDense[idx[0]*n+idx[1]] }); err != nil {
		return 0, 0, 0, err
	}
	if err := vecB.Fill(func(idx []int) float64 { return bDense[idx[0]] }); err != nil {
		return 0, 0, 0, err
	}

	// LU factor + solve as one distributed call.
	if err := m.CallFn(procs, luSolveProgram(n), matA.Param(), vecB.Param(), vecX.Param()); err != nil {
		return 0, 0, 0, err
	}
	xs, err := vecX.Snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < n; i++ {
		s := -bDense[i]
		for j := 0; j < n; j++ {
			s += aDense[i*n+j] * xs[j]
		}
		lu = math.Max(lu, math.Abs(s))
	}

	// QR on a fresh copy of A.
	matQ, err := m.NewArray(core.ArraySpec{
		Dims: []int{n, n}, Procs: procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := matQ.Fill(func(idx []int) float64 { return aDense[idx[0]*n+idx[1]] }); err != nil {
		return 0, 0, 0, err
	}
	rOut := defval.New[[]float64]()
	firstR := func(a, b []float64) []float64 { return a } // all copies return identical R
	if err := m.CallFn(procs, qrProgram(n), matQ.Param(), dcall.Reduce(n*n, firstR, rOut)); err != nil {
		return 0, 0, 0, err
	}
	qDense, err := matQ.Snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	rDense := rOut.Value()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qrij := 0.0
			qtqij := 0.0
			for k := 0; k < n; k++ {
				qrij += qDense[i*n+k] * rDense[k*n+j]
				qtqij += qDense[k*n+i] * qDense[k*n+j]
			}
			qr = math.Max(qr, math.Abs(qrij-aDense[i*n+j]))
			want := 0.0
			if i == j {
				want = 1
			}
			ortho = math.Max(ortho, math.Abs(qtqij-want))
		}
	}
	return lu, qr, ortho, nil
}

// --- helpers shared with the benchmarks ---

// LinalgResiduals exposes the E18 computation for the benchmark harness.
func LinalgResiduals(n, p int) (lu, qr, ortho float64, err error) {
	return linalgResiduals(n, p)
}

// --- E19: channel extension (§7.2.1) ---

// E19Channels compares the base model's task-level boundary exchange with
// the proposed extension's direct channel coupling on the climate
// workload, verifying identical numerics and measuring the per-step cost.
func E19Channels(w io.Writer) error {
	fmt.Fprintln(w, "E19 (§7.2.1) coupled simulation: task-level exchange vs direct channels")
	cfg := climate.Config{Rows: 16, Cols: 32, Steps: 20, Alpha: 0.4}
	want := climate.RunSequential(cfg)
	m := core.New(4)
	defer m.Close()
	if err := climate.RegisterPrograms(m); err != nil {
		return err
	}
	t0 := time.Now()
	base, err := climate.Run(m, cfg)
	tBase := time.Since(t0)
	if err != nil {
		return err
	}
	t0 = time.Now()
	chan_, err := climate.RunChanneled(m, cfg)
	tChan := time.Since(t0)
	if err != nil {
		return err
	}
	for i := range want.Ocean {
		if math.Abs(base.Ocean[i]-want.Ocean[i]) > 1e-9 || math.Abs(chan_.Ocean[i]-want.Ocean[i]) > 1e-9 {
			return fmt.Errorf("E19: numerics diverge at %d", i)
		}
	}
	fmt.Fprintf(w, "%dx%d field, %d steps, P=4: identical results by both couplings\n", cfg.Rows, cfg.Cols, cfg.Steps)
	fmt.Fprintf(w, "  base model (boundary rows via read_element + constants): %v\n", tBase.Round(time.Microsecond))
	fmt.Fprintf(w, "  extension  (boundary rows via direct channels):          %v\n", tChan.Round(time.Microsecond))
	fmt.Fprintf(w, "  channel coupling avoids 2*cols*steps = %d task-level element reads\n", 2*cfg.Cols*cfg.Steps)
	return nil
}

// --- E20: combine-tree ablation ---

// E20CombineAblation compares the binomial-tree collective used by the
// wrapper/SPMD runtime with a naive linear merge, validating equality and
// measuring latency across group sizes.
func E20CombineAblation(w io.Writer) error {
	fmt.Fprintln(w, "E20 (ablation) binomial-tree vs linear reduction")
	fmt.Fprintln(w, "P   tree mean     linear mean")
	for _, p := range []int{2, 4, 8, 16} {
		m := core.New(p)
		procs := m.AllProcs()
		add := func(a, b any) any { return a.(float64) + b.(float64) }
		const iters = 100
		var tTree, tLinear time.Duration
		for _, mode := range []string{"tree", "linear"} {
			mode := mode
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				want := float64(p*(p-1)) / 2
				if err := m.CallFn(procs, func(wd *spmd.World, a *dcall.Args) {
					var got any
					var err error
					if mode == "tree" {
						got, err = wd.AllReduce(float64(wd.Rank()), add)
					} else {
						got, err = wd.AllReduceLinear(float64(wd.Rank()), add)
					}
					if err != nil {
						panic(err)
					}
					if got.(float64) != want {
						panic(fmt.Sprintf("reduce mismatch: %v != %v", got, want))
					}
				}); err != nil {
					m.Close()
					return err
				}
			}
			if mode == "tree" {
				tTree = time.Since(t0) / iters
			} else {
				tLinear = time.Since(t0) / iters
			}
		}
		m.Close()
		fmt.Fprintf(w, "%-3d %-12v %v\n", p, tTree.Round(100*time.Nanosecond), tLinear.Round(100*time.Nanosecond))
	}
	fmt.Fprintln(w, "both orders agree on all inputs; the tree's critical path is O(log P) vs O(P).")
	return nil
}

// --- E25: cyclic vs block on a triangular update ---

// E25TriangularCyclic is the load-balance experiment the decomposition
// layer's cyclic distributions exist for: the k-loop of an LU
// factorization updates only rows below the pivot, so under a block row
// distribution the owners of the leading rows drain out of work while the
// trailing block's owner carries the critical path; cyclic rows keep every
// processor at ~(n-k)/P active rows throughout. Per-row update cost is
// modeled with a real delay (sleeps overlap across copies the way compute
// overlaps across dedicated processors) and the router models an
// interconnect hop, so the makespan difference appears as wall time; the
// modeled row-step makespans make the same comparison deterministically.
// Numerics are verified: both layouts must reproduce the sequential
// elimination exactly, with the cyclic matrix's fill and snapshot riding
// the offset-set rectangle coordinators.
func E25TriangularCyclic(w io.Writer) error {
	fmt.Fprintln(w, "E25 cyclic vs block row decomposition: triangular update (LU k-loop)")
	fmt.Fprintln(w, "n    P   layout  makespan(row-steps)  wall time")
	const workPerRow = time.Millisecond
	for _, c := range []struct{ n, p int }{{32, 4}, {64, 16}} {
		var wall = map[string]time.Duration{}
		var units = map[string]float64{}
		for _, layout := range []struct {
			name string
			dist grid.Decomp
		}{
			{"block", grid.BlockDefault()},
			{"cyclic", grid.CyclicDefault()},
		} {
			m := core.New(c.p)
			if err := triangular.RegisterPrograms(m); err != nil {
				m.Close()
				return err
			}
			m.VM.Router().SetLatency(20 * time.Microsecond)
			cfg := triangular.Config{N: c.n, Dist: layout.dist, WorkPerRow: workPerRow}
			res, err := triangular.Run(m, cfg)
			m.Close()
			if err != nil {
				return err
			}
			if dev := triangular.MaxDeviation(res.Factors, triangular.RunSequential(cfg)); dev > 1e-12 {
				return fmt.Errorf("E25: %s factors deviate from sequential by %g", layout.name, dev)
			}
			wall[layout.name] = res.Elapsed
			units[layout.name] = res.WorkUnits
			fmt.Fprintf(w, "%-4d %-3d %-7s %12.0f         %v\n",
				c.n, c.p, layout.name, res.WorkUnits, res.Elapsed.Round(time.Millisecond))
		}
		if units["cyclic"] >= units["block"] {
			return fmt.Errorf("E25: P=%d cyclic makespan %v not below block %v", c.p, units["cyclic"], units["block"])
		}
		// The makespan assertion above is the deterministic load-balance
		// claim; the wall-time check tolerates scheduler/timer noise on
		// loaded CI runners (the modeled gap is ~1.3x) and exists to catch
		// gross regressions of the cyclic data path.
		if c.p >= 16 && float64(wall["cyclic"]) >= 1.1*float64(wall["block"]) {
			return fmt.Errorf("E25: P=%d cyclic wall time %v far above block %v", c.p, wall["cyclic"], wall["block"])
		}
		fmt.Fprintf(w, "     P=%d: cyclic %.2fx less modeled work, wall speedup %.2fx\n",
			c.p, units["block"]/units["cyclic"], float64(wall["block"])/float64(wall["cyclic"]))
	}
	fmt.Fprintln(w, "both layouts reproduce the sequential factors exactly; cyclic wins as P grows.")
	return nil
}

// --- E26: direct redistribution vs gather-then-scatter panel handoff ---

// E26PanelHandoff measures the redistribution plane on the workload it
// exists for: an LU-style pipeline whose panels are factored in place on a
// (*, block) matrix (panel k wholly on processor k) and then moved into a
// (cyclic, *) matrix for the load-balanced triangular update. The direct
// path computes the src-owner/dst-owner intersection lattice and ships
// every non-empty pair owner-to-owner in at most one message; the baseline
// bounces each panel through the calling processor as a block read
// followed by a block write. Under a modeled 20µs interconnect hop the
// direct path wins on both actual message count (P-1 fewer: the panel's
// elements never visit the caller) and modeled critical-path hops (one
// hop per remote panel instead of two: ship straight to the destinations
// instead of in and out of the caller). Numerics are verified: both modes
// must reproduce the sequential elimination exactly, the direct mode's
// factors riding the redistributed panels end to end.
func E26PanelHandoff(w io.Writer) error {
	fmt.Fprintln(w, "E26 direct redistribution vs gather-then-scatter: block→cyclic panel handoff")
	fmt.Fprintln(w, "n    P   mode    messages  hops  modeled makespan")
	const hop = 20 * time.Microsecond
	for _, c := range []struct{ n, p int }{{64, 16}, {128, 64}} {
		msgs := map[string]uint64{}
		hops := map[string]int{}
		for _, mode := range []struct {
			name   string
			bounce bool
		}{
			{"direct", false},
			{"bounce", true},
		} {
			m := core.New(c.p)
			if err := triangular.RegisterPrograms(m); err != nil {
				m.Close()
				return err
			}
			m.VM.Router().SetLatency(hop)
			res, err := triangular.RunPanelHandoff(m, triangular.PanelConfig{N: c.n, Bounce: mode.bounce})
			m.Close()
			if err != nil {
				return err
			}
			if dev := triangular.MaxDeviation(res.Factors, triangular.RunSequential(triangular.Config{N: c.n})); dev > 1e-12 {
				return fmt.Errorf("E26: %s factors deviate from sequential by %g", mode.name, dev)
			}
			msgs[mode.name] = res.HandoffMsgs
			hops[mode.name] = res.HandoffHops
			fmt.Fprintf(w, "%-4d %-3d %-7s %8d %5d  %v\n",
				c.n, c.p, mode.name, res.HandoffMsgs, res.HandoffHops,
				time.Duration(res.HandoffHops)*hop)
		}
		if msgs["direct"] >= msgs["bounce"] {
			return fmt.Errorf("E26: P=%d direct messages %d not below bounce %d", c.p, msgs["direct"], msgs["bounce"])
		}
		if hops["direct"] >= hops["bounce"] {
			return fmt.Errorf("E26: P=%d direct hops %d not below bounce %d", c.p, hops["direct"], hops["bounce"])
		}
		fmt.Fprintf(w, "     P=%d: direct saves %d messages and %d hops (%v of modeled latency)\n",
			c.p, msgs["bounce"]-msgs["direct"], hops["bounce"]-hops["direct"],
			time.Duration(hops["bounce"]-hops["direct"])*hop)
	}
	fmt.Fprintln(w, "both modes reproduce the sequential factors; the panels never bounce through the caller.")
	return nil
}

// luSolveProgram builds a data-parallel program factoring A (block rows)
// and solving Ax=b into x.
func luSolveProgram(n int) dcall.Program {
	return func(wd *spmd.World, a *dcall.Args) {
		aLocal := a.Section(0).F
		bLocal := a.Section(1).F
		xLocal := a.Section(2).F
		piv, err := linalg.LUFactor(wd, aLocal, n)
		if err != nil {
			panic(err)
		}
		x, err := linalg.LUSolve(wd, aLocal, piv, n, bLocal)
		if err != nil {
			panic(err)
		}
		copy(xLocal, x)
	}
}

// qrProgram builds a data-parallel program decomposing A in place into Q
// and returning R through the first reduction variable.
func qrProgram(n int) dcall.Program {
	return func(wd *spmd.World, a *dcall.Args) {
		r, err := linalg.QRFactor(wd, a.Section(0).F, n, n)
		if err != nil {
			panic(err)
		}
		copy(a.Reduction(1), r)
	}
}

// --- E27: goodput vs drop probability under the fault plane ---

// E27GoodputUnderDrops drives a fixed block-transfer workload over a
// modeled 20µs interconnect while the fault plane drops (and duplicates)
// an increasing fraction of the request traffic, with the array manager's
// timeout/retry policy installed. Every transfer is verified against a
// sequential reference at every drop rate — the faults may cost goodput,
// never correctness — and the run asserts that a healthy router costs
// zero retransmits while a lossy one recovers every drop it suffers.
func E27GoodputUnderDrops(w io.Writer) error {
	fmt.Fprintln(w, "E27 goodput vs drop probability: P=16, 20µs hops, timeout/retry recovery")
	fmt.Fprintln(w, "drop   payload      wall         goodput       dropped  retransmits  timeouts")
	const (
		p   = 16
		n   = 4096
		ops = 24
		hop = 20 * time.Microsecond
	)
	goodput := map[float64]float64{}
	drops := []float64{0, 0.05, 0.10, 0.20}
	for _, drop := range drops {
		m := core.New(p)
		m.VM.Router().SetLatency(hop)
		if drop > 0 {
			m.VM.Router().SetFaultPlan(&msg.FaultPlan{
				Seed: 27,
				Rule: msg.FaultRule{Drop: drop, Dup: drop / 2, Jitter: 2 * hop},
			})
		}
		// The timeout sits well above the platform's effective delivery
		// floor (parked-process timer wakeups quantize at ~1ms however
		// small the modeled hop), so a healthy request is never mistaken
		// for a lost one.
		m.SetCallPolicy(&arraymgr.CallPolicy{
			Timeout: 10 * time.Millisecond,
			Retries: 10,
			Backoff: 500 * time.Microsecond,
		})
		a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
		if err != nil {
			m.Close()
			return err
		}
		ref := make([]float64, n)
		rng := rand.New(rand.NewSource(271))
		payload := 0
		t0 := time.Now()
		for op := 0; op < ops; op++ {
			lo := rng.Intn(n - 1)
			hi := lo + 1 + rng.Intn(n-lo)
			vals := make([]float64, hi-lo)
			for i := range vals {
				vals[i] = float64(op*n + lo + i)
				ref[lo+i] = vals[i]
			}
			if err := a.WriteBlock([]int{lo}, []int{hi}, vals); err != nil {
				m.Close()
				return fmt.Errorf("E27: drop=%.2f write: %w", drop, err)
			}
			got, err := a.ReadBlock([]int{lo}, []int{hi})
			if err != nil {
				m.Close()
				return fmt.Errorf("E27: drop=%.2f read: %w", drop, err)
			}
			for i := range got {
				if got[i] != ref[lo+i] {
					m.Close()
					return fmt.Errorf("E27: drop=%.2f element %d = %v, want %v", drop, lo+i, got[i], ref[lo+i])
				}
			}
			payload += 2 * 8 * (hi - lo)
		}
		wall := time.Since(t0)
		rs := m.AM.RetryStats()
		fs := m.VM.Router().FaultStats()
		m.Close()
		if drop == 0 && (rs.Retransmits != 0 || rs.Timeouts != 0) {
			return fmt.Errorf("E27: healthy router cost %d retransmits, %d timeouts", rs.Retransmits, rs.Timeouts)
		}
		if drop > 0 && fs.Dropped > 0 && rs.Retransmits == 0 {
			return fmt.Errorf("E27: drop=%.2f lost %d messages but retransmitted none", drop, fs.Dropped)
		}
		goodput[drop] = float64(payload) / wall.Seconds()
		fmt.Fprintf(w, "%.2f   %8d B   %-10v   %8.2f MB/s   %5d   %8d   %7d\n",
			drop, payload, wall.Round(time.Microsecond), goodput[drop]/1e6,
			fs.Dropped, rs.Retransmits, rs.Timeouts)
	}
	worst := drops[len(drops)-1]
	if goodput[0] <= goodput[worst] {
		return fmt.Errorf("E27: goodput at drop=%.2f (%.0f B/s) not below the healthy router's (%.0f B/s)",
			worst, goodput[worst], goodput[0])
	}
	fmt.Fprintln(w, "every transfer verified at every drop rate; loss costs goodput, never correctness.")
	return nil
}

// RunChaosSample is the workload behind the `tdplab chaos` subcommand: a
// seeded drop+duplicate+jitter+reorder plan over an 8-processor machine,
// a mixed block/element/redistribute workload verified against a
// sequential reference, and a report of the plan and the observed
// fault/retry counters.
func RunChaosSample(w io.Writer, seed int64) error {
	const (
		p   = 8
		n   = 512
		ops = 30
	)
	plan := &msg.FaultPlan{
		Seed: seed,
		Rule: msg.FaultRule{Drop: 0.10, Dup: 0.10, Jitter: 100 * time.Microsecond, Reorder: 0.10},
	}
	policy := &arraymgr.CallPolicy{Timeout: 5 * time.Millisecond, Retries: 10, Backoff: 250 * time.Microsecond}
	fmt.Fprintf(w, "fault plan: seed=%d drop=%.2f dup=%.2f jitter=%v reorder=%.2f\n",
		plan.Seed, plan.Rule.Drop, plan.Rule.Dup, plan.Rule.Jitter, plan.Rule.Reorder)
	fmt.Fprintf(w, "call policy: timeout=%v retries=%d backoff=%v\n", policy.Timeout, policy.Retries, policy.Backoff)

	m := core.New(p)
	defer m.Close()
	m.VM.Router().SetFaultPlan(plan)
	m.SetCallPolicy(policy)
	src, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
	if err != nil {
		return err
	}
	dst, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Distrib: []grid.Decomp{grid.CyclicDefault()}})
	if err != nil {
		return err
	}
	ref := make([]float64, n)
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < ops; op++ {
		lo := rng.Intn(n - 1)
		hi := lo + 1 + rng.Intn(n-lo)
		switch op % 3 {
		case 0: // dense write + readback
			vals := make([]float64, hi-lo)
			for i := range vals {
				vals[i] = float64(op*n + i)
				ref[lo+i] = vals[i]
			}
			if err := src.WriteBlock([]int{lo}, []int{hi}, vals); err != nil {
				return fmt.Errorf("chaos write: %w", err)
			}
		case 1: // block→cyclic redistribution of the rectangle
			if err := dst.RedistributeFrom(src, []int{lo}, []int{hi}); err != nil {
				return fmt.Errorf("chaos redistribute: %w", err)
			}
			got, err := dst.ReadBlock([]int{lo}, []int{hi})
			if err != nil {
				return fmt.Errorf("chaos redistribute readback: %w", err)
			}
			for i := range got {
				if got[i] != ref[lo+i] {
					return fmt.Errorf("chaos: redistributed element %d = %v, want %v", lo+i, got[i], ref[lo+i])
				}
			}
		case 2: // scattered element traffic
			idx := rng.Intn(n)
			v := float64(op)
			if err := src.Write(v, idx); err != nil {
				return fmt.Errorf("chaos write_element: %w", err)
			}
			ref[idx] = v
			got, err := src.Read(idx)
			if err != nil {
				return fmt.Errorf("chaos read_element: %w", err)
			}
			if got != v {
				return fmt.Errorf("chaos: element %d = %v, want %v", idx, got, v)
			}
		}
	}
	snap, err := src.ReadBlock([]int{0}, []int{n})
	if err != nil {
		return fmt.Errorf("chaos final readback: %w", err)
	}
	for i := range snap {
		if snap[i] != ref[i] {
			return fmt.Errorf("chaos: final state diverges at %d: %v vs %v", i, snap[i], ref[i])
		}
	}
	router := m.VM.Router()
	trace.WriteStats(w, "router", append([]trace.Stat{{Name: "sent", Value: router.Sent()}}, router.FaultStats().Stats()...))
	trace.WriteStats(w, "manager", m.AM.RetryStats().Stats())
	trace.WriteStats(w, "recovery", m.AM.RecoveryStats().Stats())
	fmt.Fprintln(w, "all transfers verified against the sequential reference.")
	return nil
}

// E28ReplicationRecovery measures what the replication plane costs when
// nothing fails and what it buys when something does: write-side message
// overhead and wall time for k=1 buddy replication vs plain arrays, the
// unchanged read path, and the time to recover — promote buddies, bump
// the ownership epoch, replay — after a mid-workload kill, with the full
// array verified bit-identical afterwards.
func E28ReplicationRecovery(w io.Writer) error {
	fmt.Fprintln(w, "E28 replication: write overhead when healthy, time-to-recover after a kill")
	const (
		p      = 4
		n      = 4096
		rounds = 32
	)
	type run struct {
		writeMsgs, readMsgs uint64
		writeWall           time.Duration
	}
	var plain, repl run
	for _, replicated := range []bool{false, true} {
		m := core.New(p)
		spec := core.ArraySpec{Dims: []int{n}}
		if replicated {
			spec.Replicas = 1
		}
		a, err := m.NewArray(spec)
		if err != nil {
			m.Close()
			return err
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		router := m.VM.Router()
		before := router.Sent()
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			if err := a.WriteBlock([]int{0}, []int{n}, vals); err != nil {
				m.Close()
				return fmt.Errorf("E28: write (replicated=%v): %w", replicated, err)
			}
		}
		writeWall := time.Since(t0)
		writeMsgs := router.Sent() - before
		before = router.Sent()
		for r := 0; r < rounds; r++ {
			if _, err := a.ReadBlock([]int{0}, []int{n}); err != nil {
				m.Close()
				return fmt.Errorf("E28: read (replicated=%v): %w", replicated, err)
			}
		}
		readMsgs := router.Sent() - before
		m.Close()
		r := run{writeMsgs: writeMsgs, readMsgs: readMsgs, writeWall: writeWall}
		if replicated {
			repl = r
		} else {
			plain = r
		}
	}
	fmt.Fprintf(w, "k=0: %5d write msgs  %5d read msgs  write wall %v\n",
		plain.writeMsgs, plain.readMsgs, plain.writeWall.Round(time.Microsecond))
	fmt.Fprintf(w, "k=1: %5d write msgs  %5d read msgs  write wall %v\n",
		repl.writeMsgs, repl.readMsgs, repl.writeWall.Round(time.Microsecond))
	// The replication contract: exactly one mirror per write-side owner
	// (p per whole-array write), and a byte-for-byte identical read path.
	if want := plain.writeMsgs + uint64(rounds*p); repl.writeMsgs != want {
		return fmt.Errorf("E28: replicated writes cost %d messages, want %d (plain %d + %d mirrors)",
			repl.writeMsgs, want, plain.writeMsgs, rounds*p)
	}
	if repl.readMsgs != plain.readMsgs {
		return fmt.Errorf("E28: replicated reads cost %d messages, plain %d — healthy read path must be untouched",
			repl.readMsgs, plain.readMsgs)
	}

	// Now the payoff: kill a processor under a replicated array and time
	// the first post-kill operation, which transparently promotes buddies
	// and replays.
	m := core.New(p)
	defer m.Close()
	m.SetCallPolicy(&arraymgr.CallPolicy{Timeout: 5 * time.Millisecond, Retries: 10, Backoff: 250 * time.Microsecond})
	a, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Replicas: 1})
	if err != nil {
		return err
	}
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(3*i + 1)
	}
	if err := a.WriteBlock([]int{0}, []int{n}, ref); err != nil {
		return fmt.Errorf("E28: seed write: %w", err)
	}
	const victim = 2
	if err := m.Kill(victim); err != nil {
		return err
	}
	t0 := time.Now()
	got, err := a.ReadBlock([]int{0}, []int{n})
	recover := time.Since(t0)
	if err != nil {
		return fmt.Errorf("E28: post-kill read: %w", err)
	}
	for i := range got {
		if got[i] != ref[i] {
			return fmt.Errorf("E28: post-kill element %d = %v, want %v", i, got[i], ref[i])
		}
	}
	rs := m.RecoveryStats()
	if rs.Promotions == 0 {
		return fmt.Errorf("E28: kill survived without promoting any buddy")
	}
	fmt.Fprintf(w, "kill proc %d: first read recovered in %v (bit-identical, %d promotion(s), %d replay(s))\n",
		victim, recover.Round(time.Microsecond), rs.Promotions, rs.Replays)
	trace.WriteStats(w, "recovery", rs.Stats())
	fmt.Fprintln(w, "replication: +1 message per write-side owner when healthy, transparent failover on kill.")
	return nil
}

// RunHealSample is the workload behind the `tdplab heal` subcommand: a
// heartbeat membership monitor over an 8-processor machine, a replicated
// array under a seeded kill schedule, transparent buddy promotion on the
// data path, and a checkpoint/restore pass for the unreplicated fallback.
// It prints the membership transitions, the promotion counters, and a
// verified checksum of the surviving data.
func RunHealSample(w io.Writer, seed int64) error {
	const (
		p   = 8
		n   = 1024
		ops = 24
	)
	policy := &arraymgr.CallPolicy{Timeout: 5 * time.Millisecond, Retries: 10, Backoff: 250 * time.Microsecond, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	victims := []int{1 + rng.Intn(p-1), 1 + rng.Intn(p-1)}
	if victims[1] == victims[0] {
		victims[1] = (victims[0] + 1) % p
		if victims[1] == 0 {
			victims[1] = 1
		}
	}
	killAt := []int{ops / 3, 2 * ops / 3}
	fmt.Fprintf(w, "machine: P=%d, replicas=1, policy timeout=%v retries=%d backoff=%v seed=%d\n",
		p, policy.Timeout, policy.Retries, policy.Backoff, seed)
	fmt.Fprintf(w, "kill schedule: proc %d at op %d, proc %d at op %d\n",
		victims[0], killAt[0], victims[1], killAt[1])

	m := core.New(p)
	defer m.Close()
	m.SetCallPolicy(policy)
	mem, err := m.StartMembership(msg.MembershipConfig{Home: 0, Period: time.Millisecond, Seed: seed})
	if err != nil {
		return err
	}
	defer mem.Stop()

	a, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Replicas: 1})
	if err != nil {
		return err
	}
	ref := make([]float64, n)
	down := map[int]bool{}
	for op := 0; op < ops; op++ {
		for k, at := range killAt {
			if op == at && !down[victims[k]] {
				if err := m.Kill(victims[k]); err != nil {
					return err
				}
				down[victims[k]] = true
				fmt.Fprintf(w, "op %2d: kill proc %d\n", op, victims[k])
			}
		}
		lo := rng.Intn(n - 1)
		hi := lo + 1 + rng.Intn(n-lo)
		vals := make([]float64, hi-lo)
		for i := range vals {
			vals[i] = float64(op*n + i)
			ref[lo+i] = vals[i]
		}
		if err := a.WriteBlock([]int{lo}, []int{hi}, vals); err != nil {
			return fmt.Errorf("heal: op %d write: %w", op, err)
		}
	}
	got, err := a.ReadBlock([]int{0}, []int{n})
	if err != nil {
		return fmt.Errorf("heal: final readback: %w", err)
	}
	var sum, refSum float64
	for i := range got {
		if got[i] != ref[i] {
			return fmt.Errorf("heal: element %d = %v, want %v", i, got[i], ref[i])
		}
		sum += got[i] * float64(i+1)
		refSum += ref[i] * float64(i+1)
	}
	fmt.Fprintf(w, "verified checksum: %.6g (reference %.6g, bit-identical across %d elements)\n", sum, refSum, n)

	// Membership: drain the transitions the monitor observed. The kills
	// are visible proactively, so both victims must be reported dead.
	deadSeen := map[int]bool{}
	for _, v := range victims {
		if mem.State(v) == msg.StateDead {
			deadSeen[v] = true
		}
	}
	for len(deadSeen) < len(down) {
		select {
		case ev := <-mem.Watch():
			fmt.Fprintf(w, "membership: proc %d -> %v\n", ev.Proc, ev.State)
			if ev.State == msg.StateDead {
				deadSeen[ev.Proc] = true
			}
		case <-time.After(2 * time.Second):
			return fmt.Errorf("heal: membership never reported all kills dead")
		}
	}
	for _, v := range victims {
		fmt.Fprintf(w, "membership: proc %d %v\n", v, mem.State(v))
	}

	// The unreplicated fallback: checkpoint a fresh k=0 array living on
	// the survivors, then restore it from the image — the recovery story
	// for arrays that opted out of replication.
	var alive []int
	for proc := 0; proc < p; proc++ {
		if !down[proc] {
			alive = append(alive, proc)
		}
	}
	b, err := m.NewArray(core.ArraySpec{Dims: []int{64}, Procs: alive})
	if err != nil {
		return err
	}
	cvals := make([]float64, 64)
	for i := range cvals {
		cvals[i] = float64(100 + i)
	}
	if err := b.WriteBlock([]int{0}, []int{64}, cvals); err != nil {
		return fmt.Errorf("heal: checkpoint seed: %w", err)
	}
	img, err := m.Checkpoint(b)
	if err != nil {
		return fmt.Errorf("heal: checkpoint: %w", err)
	}
	restored, err := m.Restore(img, nil)
	if err != nil {
		return fmt.Errorf("heal: restore: %w", err)
	}
	rvals, err := restored.ReadBlock([]int{0}, []int{64})
	if err != nil {
		return fmt.Errorf("heal: restored readback: %w", err)
	}
	for i := range rvals {
		if rvals[i] != cvals[i] {
			return fmt.Errorf("heal: restored element %d = %v, want %v", i, rvals[i], cvals[i])
		}
	}
	fmt.Fprintln(w, "checkpoint/restore: k=0 fallback verified on the surviving processors")

	rs := m.RecoveryStats()
	if rs.Promotions == 0 {
		return fmt.Errorf("heal: kills triggered no promotions")
	}
	router := m.VM.Router()
	trace.WriteStats(w, "router", append([]trace.Stat{{Name: "sent", Value: router.Sent()}}, router.FaultStats().Stats()...))
	trace.WriteStats(w, "manager", m.AM.RetryStats().Stats())
	trace.WriteStats(w, "recovery", rs.Stats())
	trace.WriteStats(w, "membership", mem.Stats().Stats())
	fmt.Fprintln(w, "all writes verified; every kill healed by buddy promotion or checkpoint restore.")
	return nil
}
