// E29: the transport seam measured. The same E22-style block-transfer
// workload — whole-array reads and writes against a 4-processor machine
// — is driven twice: once on the in-process switch, once with the
// machine partitioned across two real OS processes joined by the
// gob/TCP loopback transport. Both runs must produce bit-identical
// data; the numbers are measured, not modeled, and quantify what the
// wire costs (serialization + syscalls + TCP) relative to the
// in-process mailbox switch.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// E29Leg is one transport's measured numbers.
type E29Leg struct {
	ReadNsPerOp    int64   `json:"read_ns_per_op"`
	WriteNsPerOp   int64   `json:"write_ns_per_op"`
	ReadGoodputMB  float64 `json:"read_goodput_mb_per_s"`
	WriteGoodputMB float64 `json:"write_goodput_mb_per_s"`
}

// E29Result carries both legs plus the workload shape, JSON-ready for
// the bench artifact.
type E29Result struct {
	Workload   string `json:"workload"`
	P          int    `json:"procs"`
	NParts     int    `json:"parts"`
	Elements   int    `json:"elements"`
	BytesPerOp int    `json:"bytes_per_op"`
	Iters      int    `json:"iters"`
	InProc     E29Leg `json:"inproc"`
	TCP        E29Leg `json:"tcp_loopback"`
}

const (
	e29P        = 4
	e29PerOwner = 256
	e29Iters    = 300
)

// e29Measure drives the block-transfer workload on one machine and
// returns the measured leg plus a final snapshot for cross-checking.
func e29Measure(m *core.Machine) (E29Leg, []float64, error) {
	n := e29P * e29PerOwner
	bytes := 8 * n
	a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
	if err != nil {
		return E29Leg{}, nil, err
	}
	defer a.Free()
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) / 3 }); err != nil {
		return E29Leg{}, nil, err
	}
	lo, hi := []int{0}, []int{n}
	buf := make([]float64, n)
	wvals := make([]float64, n)
	for i := range wvals {
		wvals[i] = float64(i) / 7
	}

	for i := 0; i < 20; i++ { // warm both directions: pools, sockets, codecs
		if err := a.ReadBlockInto(lo, hi, buf); err != nil {
			return E29Leg{}, nil, err
		}
		if err := a.WriteBlock(lo, hi, wvals); err != nil {
			return E29Leg{}, nil, err
		}
	}

	t0 := time.Now()
	for i := 0; i < e29Iters; i++ {
		if err := a.ReadBlockInto(lo, hi, buf); err != nil {
			return E29Leg{}, nil, err
		}
	}
	readDur := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < e29Iters; i++ {
		if err := a.WriteBlock(lo, hi, wvals); err != nil {
			return E29Leg{}, nil, err
		}
	}
	writeDur := time.Since(t0)

	snap, err := a.Snapshot()
	if err != nil {
		return E29Leg{}, nil, err
	}
	leg := E29Leg{
		ReadNsPerOp:    readDur.Nanoseconds() / e29Iters,
		WriteNsPerOp:   writeDur.Nanoseconds() / e29Iters,
		ReadGoodputMB:  float64(bytes) * e29Iters / readDur.Seconds() / 1e6,
		WriteGoodputMB: float64(bytes) * e29Iters / writeDur.Seconds() / 1e6,
	}
	return leg, snap, nil
}

// MeasureE29 runs both legs and cross-checks them bit-for-bit. It
// requires a worker-capable entry point (cluster.EnableSelfSpawn):
// the TCP leg spawns a second OS process of this same binary.
func MeasureE29() (E29Result, error) {
	res := E29Result{
		Workload:   "whole-array ReadBlockInto/WriteBlock, 1-D block distribution",
		P:          e29P,
		NParts:     2,
		Elements:   e29P * e29PerOwner,
		BytesPerOp: 8 * e29P * e29PerOwner,
		Iters:      e29Iters,
	}
	if !cluster.SelfSpawnEnabled() {
		return res, fmt.Errorf("E29: requires a worker-capable binary (run through tdplab, whose entry point handles the cluster worker role)")
	}

	m := core.New(e29P)
	inLeg, inSnap, err := e29Measure(m)
	m.Close()
	if err != nil {
		return res, fmt.Errorf("E29 in-process leg: %w", err)
	}

	// Pinned to the PR-9 wire (star topology, synchronous flushes, gob
	// payloads) so this series stays comparable across commits; E30
	// measures the same workload on the optimized transport modes.
	node, err := cluster.StartDriver(cluster.Config{P: e29P, NParts: 2, Star: true, NoBatch: true, Gob: true}, nil)
	if err != nil {
		return res, fmt.Errorf("E29: start driver: %w", err)
	}
	defer node.Close()
	if err := node.SpawnWorkers(); err != nil {
		return res, fmt.Errorf("E29: spawn workers: %w", err)
	}
	if err := node.WaitPeers(30 * time.Second); err != nil {
		return res, fmt.Errorf("E29: %w", err)
	}
	tcpLeg, tcpSnap, err := e29Measure(node.M)
	if err != nil {
		return res, fmt.Errorf("E29 TCP leg: %w", err)
	}

	if len(inSnap) != len(tcpSnap) {
		return res, fmt.Errorf("E29: snapshot lengths differ: %d vs %d", len(inSnap), len(tcpSnap))
	}
	for i := range inSnap {
		if math.Float64bits(inSnap[i]) != math.Float64bits(tcpSnap[i]) {
			return res, fmt.Errorf("E29: transports disagree at element %d: %v vs %v", i, inSnap[i], tcpSnap[i])
		}
	}
	res.InProc, res.TCP = inLeg, tcpLeg
	return res, nil
}

// E29Transport is the experiment wrapper: measure, cross-check, report.
// Outside a worker-capable binary it explains how to run it and
// succeeds vacuously, so `go test ./internal/experiments` stays green.
func E29Transport(w io.Writer) error {
	fmt.Fprintln(w, "E29 transport seam: in-process switch vs gob/TCP loopback, E22 block-transfer workload")
	if !cluster.SelfSpawnEnabled() {
		fmt.Fprintln(w, "  skipped: requires a worker-capable binary; run `tdplab E29` (its entry point handles the cluster worker role)")
		return nil
	}
	res, err := MeasureE29()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  workload: %s; %d elements (%d bytes/op), %d iters, P=%d across %d part(s)\n",
		res.Workload, res.Elements, res.BytesPerOp, res.Iters, res.P, res.NParts)
	fmt.Fprintf(w, "  %-12s %14s %14s %12s %12s\n", "transport", "read ns/op", "write ns/op", "read MB/s", "write MB/s")
	row := func(name string, l E29Leg) {
		fmt.Fprintf(w, "  %-12s %14d %14d %12.1f %12.1f\n",
			name, l.ReadNsPerOp, l.WriteNsPerOp, l.ReadGoodputMB, l.WriteGoodputMB)
	}
	row("inproc", res.InProc)
	row("tcp-loopback", res.TCP)
	fmt.Fprintf(w, "  slowdown: read %.1fx, write %.1fx; contents bit-identical across transports\n",
		float64(res.TCP.ReadNsPerOp)/float64(res.InProc.ReadNsPerOp),
		float64(res.TCP.WriteNsPerOp)/float64(res.InProc.WriteNsPerOp))
	return nil
}
