// E30: the fast wire measured. The E29 block-transfer workload — plus a
// whole-array block→cyclic redistribution that generates owner↔owner
// traffic — is driven on four transports: the in-process switch, the
// PR-9 star wire (relay through part 0, synchronous flushes, gob
// payloads), the mesh wire (direct worker↔worker links + binary codec,
// no batching), and the full production wire (mesh + frame batching).
// Every leg must produce bit-identical arrays; the numbers quantify
// what each optimization layer buys at two and three parts.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
)

// E30Leg is one transport mode's measured numbers on one cluster shape.
type E30Leg struct {
	Mode           string  `json:"mode"`
	ReadNsPerOp    int64   `json:"read_ns_per_op"`
	WriteNsPerOp   int64   `json:"write_ns_per_op"`
	RedistNsPerOp  int64   `json:"redist_ns_per_op"`
	ReadGoodputMB  float64 `json:"read_goodput_mb_per_s"`
	WriteGoodputMB float64 `json:"write_goodput_mb_per_s"`
}

// E30Shape carries every leg for one (P, NParts) shape plus the
// headline speedups of the production wire over the PR-9 star wire.
type E30Shape struct {
	P            int      `json:"procs"`
	NParts       int      `json:"parts"`
	Elements     int      `json:"elements"`
	BytesPerOp   int      `json:"bytes_per_op"`
	Iters        int      `json:"iters"`
	RedistIters  int      `json:"redist_iters"`
	Legs         []E30Leg `json:"legs"`
	ReadSpeedup  float64  `json:"read_speedup_vs_star"`
	WriteSpeedup float64  `json:"write_speedup_vs_star"`
}

// E30Result is the full experiment, JSON-ready for the bench artifact.
type E30Result struct {
	Workload string     `json:"workload"`
	Shapes   []E30Shape `json:"shapes"`
}

const (
	e30PerOwner    = 256
	e30Iters       = 300
	e30RedistIters = 100
)

// e30Mode maps a leg name to the cluster transport knobs (nil config
// selection = in-process, no cluster).
type e30Mode struct {
	name    string
	inproc  bool
	star    bool
	noBatch bool
	gob     bool
}

var e30Modes = []e30Mode{
	{name: "inproc", inproc: true},
	{name: "star-gob", star: true, noBatch: true, gob: true}, // the PR-9 wire
	{name: "mesh", noBatch: true},                            // direct links + binary codec
	{name: "mesh+batch"},                                     // production default
}

// e30Measure drives the block-transfer + redistribution workload on one
// machine and returns the measured leg plus final snapshots of both
// arrays for cross-checking.
func e30Measure(m *core.Machine, p int, mode string) (E30Leg, []float64, error) {
	n := p * e30PerOwner
	bytes := 8 * n
	a, err := m.NewArray(core.ArraySpec{Dims: []int{n}})
	if err != nil {
		return E30Leg{}, nil, err
	}
	defer a.Free()
	c, err := m.NewArray(core.ArraySpec{
		Dims:    []int{n},
		Distrib: []grid.Decomp{grid.CyclicDefault()},
	})
	if err != nil {
		return E30Leg{}, nil, err
	}
	defer c.Free()
	if err := a.Fill(func(idx []int) float64 { return float64(idx[0]) / 3 }); err != nil {
		return E30Leg{}, nil, err
	}
	lo, hi := []int{0}, []int{n}
	buf := make([]float64, n)
	wvals := make([]float64, n)
	for i := range wvals {
		wvals[i] = float64(i) / 7
	}

	for i := 0; i < 20; i++ { // warm both directions: pools, sockets, codecs
		if err := a.ReadBlockInto(lo, hi, buf); err != nil {
			return E30Leg{}, nil, err
		}
		if err := a.WriteBlock(lo, hi, wvals); err != nil {
			return E30Leg{}, nil, err
		}
		if err := c.RedistributeFrom(a, lo, hi); err != nil {
			return E30Leg{}, nil, err
		}
	}

	t0 := time.Now()
	for i := 0; i < e30Iters; i++ {
		if err := a.ReadBlockInto(lo, hi, buf); err != nil {
			return E30Leg{}, nil, err
		}
	}
	readDur := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < e30Iters; i++ {
		if err := a.WriteBlock(lo, hi, wvals); err != nil {
			return E30Leg{}, nil, err
		}
	}
	writeDur := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < e30RedistIters; i++ {
		if err := c.RedistributeFrom(a, lo, hi); err != nil {
			return E30Leg{}, nil, err
		}
	}
	redistDur := time.Since(t0)

	snapA, err := a.Snapshot()
	if err != nil {
		return E30Leg{}, nil, err
	}
	snapC, err := c.Snapshot()
	if err != nil {
		return E30Leg{}, nil, err
	}
	leg := E30Leg{
		Mode:           mode,
		ReadNsPerOp:    readDur.Nanoseconds() / e30Iters,
		WriteNsPerOp:   writeDur.Nanoseconds() / e30Iters,
		RedistNsPerOp:  redistDur.Nanoseconds() / e30RedistIters,
		ReadGoodputMB:  float64(bytes) * e30Iters / readDur.Seconds() / 1e6,
		WriteGoodputMB: float64(bytes) * e30Iters / writeDur.Seconds() / 1e6,
	}
	return leg, append(snapA, snapC...), nil
}

// e30RunShape measures every mode on one (P, NParts) shape and
// cross-checks all snapshots bit for bit.
func e30RunShape(p, nparts int) (E30Shape, error) {
	shape := E30Shape{
		P:           p,
		NParts:      nparts,
		Elements:    p * e30PerOwner,
		BytesPerOp:  8 * p * e30PerOwner,
		Iters:       e30Iters,
		RedistIters: e30RedistIters,
	}
	var ref []float64
	for _, mode := range e30Modes {
		var (
			leg  E30Leg
			snap []float64
			err  error
		)
		if mode.inproc {
			m := core.New(p)
			leg, snap, err = e30Measure(m, p, mode.name)
			m.Close()
		} else {
			var node *cluster.Node
			node, err = cluster.StartDriver(cluster.Config{
				P: p, NParts: nparts,
				Star: mode.star, NoBatch: mode.noBatch, Gob: mode.gob,
			}, nil)
			if err != nil {
				return shape, fmt.Errorf("E30 %s: start driver: %w", mode.name, err)
			}
			if err = node.SpawnWorkers(); err != nil {
				node.Close()
				return shape, fmt.Errorf("E30 %s: spawn workers: %w", mode.name, err)
			}
			if err = node.WaitPeers(30 * time.Second); err != nil {
				node.Close()
				return shape, fmt.Errorf("E30 %s: %w", mode.name, err)
			}
			leg, snap, err = e30Measure(node.M, p, mode.name)
			node.Close()
		}
		if err != nil {
			return shape, fmt.Errorf("E30 %s leg: %w", mode.name, err)
		}
		if ref == nil {
			ref = snap
		} else {
			if len(snap) != len(ref) {
				return shape, fmt.Errorf("E30 %s: snapshot length %d, want %d", mode.name, len(snap), len(ref))
			}
			for i := range snap {
				if math.Float64bits(snap[i]) != math.Float64bits(ref[i]) {
					return shape, fmt.Errorf("E30 %s: element %d differs: %v vs %v", mode.name, i, snap[i], ref[i])
				}
			}
		}
		shape.Legs = append(shape.Legs, leg)
	}
	star, batch := shape.Legs[1], shape.Legs[3]
	shape.ReadSpeedup = batch.ReadGoodputMB / star.ReadGoodputMB
	shape.WriteSpeedup = batch.WriteGoodputMB / star.WriteGoodputMB
	return shape, nil
}

// MeasureE30 runs every transport mode at two and three parts. It
// requires a worker-capable entry point (cluster.EnableSelfSpawn): the
// cluster legs spawn further OS processes of this same binary.
func MeasureE30() (E30Result, error) {
	res := E30Result{
		Workload: "whole-array ReadBlockInto/WriteBlock (1-D block) + whole-array block→cyclic RedistributeFrom",
	}
	if !cluster.SelfSpawnEnabled() {
		return res, fmt.Errorf("E30: requires a worker-capable binary (run through tdplab, whose entry point handles the cluster worker role)")
	}
	for _, sh := range [][2]int{{4, 2}, {6, 3}} {
		shape, err := e30RunShape(sh[0], sh[1])
		if err != nil {
			return res, err
		}
		res.Shapes = append(res.Shapes, shape)
	}
	return res, nil
}

// E30FastWire is the experiment wrapper: measure every mode, cross-check
// bit-for-bit, report per-layer gains. Outside a worker-capable binary
// it explains how to run it and succeeds vacuously, so
// `go test ./internal/experiments` stays green.
func E30FastWire(w io.Writer) error {
	fmt.Fprintln(w, "E30 fast wire: in-process vs star(PR-9) vs mesh vs mesh+batch, block transfer + redistribution")
	if !cluster.SelfSpawnEnabled() {
		fmt.Fprintln(w, "  skipped: requires a worker-capable binary; run `tdplab E30` (its entry point handles the cluster worker role)")
		return nil
	}
	res, err := MeasureE30()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  workload: %s\n", res.Workload)
	for _, sh := range res.Shapes {
		fmt.Fprintf(w, "  P=%d across %d parts; %d elements (%d bytes/op), %d read/write iters, %d redist iters\n",
			sh.P, sh.NParts, sh.Elements, sh.BytesPerOp, sh.Iters, sh.RedistIters)
		fmt.Fprintf(w, "    %-12s %12s %12s %12s %10s %10s\n",
			"mode", "read ns/op", "write ns/op", "redist ns/op", "read MB/s", "write MB/s")
		for _, l := range sh.Legs {
			fmt.Fprintf(w, "    %-12s %12d %12d %12d %10.1f %10.1f\n",
				l.Mode, l.ReadNsPerOp, l.WriteNsPerOp, l.RedistNsPerOp, l.ReadGoodputMB, l.WriteGoodputMB)
		}
		fmt.Fprintf(w, "    mesh+batch vs star-gob: read %.2fx, write %.2fx; arrays bit-identical across all modes\n",
			sh.ReadSpeedup, sh.WriteSpeedup)
	}
	return nil
}
