package experiments

import (
	"io"
	"strings"
	"testing"
)

// Every experiment must run clean: the reports double as integration
// tests of the whole stack.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(&sb); err != nil {
				t.Fatalf("%s (%s): %v\noutput so far:\n%s", e.ID, e.Title, err, sb.String())
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no report", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e10"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("unknown ID should not resolve")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Figure == "" {
			t.Fatalf("incomplete experiment %+v", e)
		}
	}
	if len(seen) != 26 {
		t.Fatalf("%d experiments, want 26", len(seen))
	}
}

func TestLinalgResidualsExposed(t *testing.T) {
	lu, qr, ortho, err := LinalgResiduals(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lu > 1e-9 || qr > 1e-9 || ortho > 1e-9 {
		t.Fatalf("residuals %g %g %g", lu, qr, ortho)
	}
}

var _ io.Writer = (*strings.Builder)(nil)
