package innerproduct

import (
	"testing"

	"repro/internal/core"
)

func TestInnerProductMatchesClosedForm(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, 8)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Product != res.Expected {
			t.Fatalf("p=%d: product %v != expected %v", p, res.Product, res.Expected)
		}
		if res.Product != RunSequential(res.N) {
			t.Fatalf("p=%d: product %v != sequential %v", p, res.Product, RunSequential(res.N))
		}
		m.Close()
	}
}

func TestRunFailsWithoutRegistration(t *testing.T) {
	m := core.New(2)
	defer m.Close()
	if _, err := Run(m, 4); err == nil {
		t.Fatal("unregistered program must fail")
	}
}
