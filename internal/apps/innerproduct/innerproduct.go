// Package innerproduct reproduces the paper's first worked example (§6.1):
// a task-parallel program that creates two distributed vectors, makes a
// distributed call to a data-parallel program test_iprdv that initialises
// them (element i of each vector set to i+1) and computes their inner
// product, and returns the result through a reduction variable combined
// with am_util_max.
package innerproduct

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/linalg"
	"repro/internal/spmd"
)

// ProgramName is the registered name of the data-parallel program.
const ProgramName = "test:iprdv"

// RegisterPrograms registers test_iprdv with the machine. Its parameter
// list mirrors the paper's: (Processors, P, Index, M, Local_m, local(V1),
// local(V2), reduce(max, InProd)).
func RegisterPrograms(m *core.Machine) error {
	return m.Register(ProgramName, func(w *spmd.World, a *dcall.Args) {
		mGlobal := a.Int(3)
		v1 := a.Section(5).F
		v2 := a.Section(6).F
		// Initialise: V[i] = i+1 for all i (global indexing).
		if err := linalg.VecFillIndex(w, v1, mGlobal, func(g int) float64 { return float64(g + 1) }); err != nil {
			panic(err)
		}
		if err := linalg.VecFillIndex(w, v2, mGlobal, func(g int) float64 { return float64(g + 1) }); err != nil {
			panic(err)
		}
		// Compute the global inner product (all-reduce); every copy holds
		// the same value, so max-combining the reduction variables returns
		// it to the caller unchanged.
		dot, err := linalg.Dot(w, v1[:len(v1)], v2[:len(v2)])
		if err != nil {
			panic(err)
		}
		a.Reduction(7)[0] = dot
	})
}

// Result reports one run.
type Result struct {
	N        int     // global vector length
	Product  float64 // computed inner product
	Expected float64 // closed form: sum of squares 1..N
}

// Run executes the example on the machine with vectors of length
// localM*P, returning the inner product. It is the go() procedure of the
// paper's PCN program.
func Run(m *core.Machine, localM int) (Result, error) {
	p := m.P()
	procs := m.Procs(0, 1, p) // am_util_node_array(0, 1, P)
	n := localM * p

	v1, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Procs: procs})
	if err != nil {
		return Result{}, fmt.Errorf("create V1: %w", err)
	}
	defer v1.Free()
	v2, err := m.NewArray(core.ArraySpec{Dims: []int{n}, Procs: procs})
	if err != nil {
		return Result{}, fmt.Errorf("create V2: %w", err)
	}
	defer v2.Free()

	inProd := defval.New[[]float64]()
	maxCombine := func(a, b []float64) []float64 {
		c := make([]float64, len(a))
		for i := range a {
			c[i] = math.Max(a[i], b[i])
		}
		return c
	}
	if err := m.Call(procs, ProgramName,
		dcall.Const(procs), dcall.Const(p), dcall.Index(),
		dcall.Const(n), dcall.Const(localM),
		v1.Param(), v2.Param(),
		dcall.Reduce(1, maxCombine, inProd),
	); err != nil {
		return Result{}, fmt.Errorf("distributed call: %w", err)
	}

	nn := float64(n)
	return Result{
		N:        n,
		Product:  inProd.Value()[0],
		Expected: nn * (nn + 1) * (2*nn + 1) / 6,
	}, nil
}

// RunSequential computes the same inner product sequentially (the
// baseline for E16).
func RunSequential(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += float64(i) * float64(i)
	}
	return s
}
