// Package climate reproduces the paper's coupled-simulation problem class
// (§2.3.1, Fig 2.1): a climate simulation consisting of an ocean
// simulation and an atmosphere simulation, each a data-parallel program
// performing a time-stepped computation, exchanging boundary data at each
// time step through a task-parallel top level.
//
// Each simulation evolves a rows x cols field with a damped Jacobi
// diffusion step. The two fields are coupled: the ocean's surface (its
// "above" boundary) is the atmosphere's bottom edge row, and the
// atmosphere's bottom boundary is the ocean's top edge row. The two
// distributed calls of each time step execute concurrently on disjoint
// processor groups; the boundary rows move between the two distributed
// arrays only through the task level (read_element / global constants),
// exactly the discipline Fig 3.4 demands.
package climate

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/grid"
	"repro/internal/spmd"
)

// ProgDiffuse is the registered name of the data-parallel time-step
// program shared by both simulations.
const ProgDiffuse = "climate:diffuse"

// ProgDiffuseChan is the channel-coupled variant implementing the §7.2.1
// extension: the two simulations exchange boundary rows directly over
// channels defined by the task-parallel caller, instead of through
// task-level element reads.
const ProgDiffuseChan = "climate:diffuse_chan"

// RegisterPrograms registers the diffusion steps with the machine.
//
// ProgDiffuse parameters: (rows, cols, alpha, above, below, local(field)).
// above and below are the global boundary rows (the other simulation's
// edge row); interior block boundaries are exchanged between the copies
// directly.
//
// ProgDiffuseChan parameters: (rows, cols, alpha, coupleAtTop, fixed,
// send, recv, local(field)). coupleAtTop selects which global edge is the
// coupling edge; the copy owning it sends its pre-update edge row on
// `send` and receives the partner simulation's edge row on `recv`; the
// opposite global edge uses the constant row `fixed`.
func RegisterPrograms(m *core.Machine) error {
	if err := m.Register(ProgDiffuse, func(w *spmd.World, a *dcall.Args) {
		rows := a.Int(0)
		cols := a.Int(1)
		alpha := a.Float(2)
		above := a.Const(3).([]float64)
		below := a.Const(4).([]float64)
		field := a.Section(5).F
		if err := diffuseStep(w, field, rows, cols, alpha, above, below); err != nil {
			panic(err)
		}
	}); err != nil {
		return err
	}
	return m.Register(ProgDiffuseChan, func(w *spmd.World, a *dcall.Args) {
		rows := a.Int(0)
		cols := a.Int(1)
		alpha := a.Float(2)
		coupleAtTop := a.Const(3).(bool)
		fixed := a.Const(4).([]float64)
		send := a.Const(5).(*channel.Channel)
		recv := a.Const(6).(*channel.Channel)
		field := a.Section(7).F
		if err := diffuseStepChan(w, field, rows, cols, alpha, coupleAtTop, fixed, send, recv); err != nil {
			panic(err)
		}
	})
}

// haloKinds: messages to the upper/lower neighbour copy.
const (
	kindToAbove = 0
	kindToBelow = 1
)

// diffuseStep performs one damped Jacobi sweep on this copy's block of
// rows, using halo rows from neighbouring copies and the supplied global
// boundary rows.
func diffuseStep(w *spmd.World, field []float64, rows, cols int, alpha float64, above, below []float64) error {
	p := w.Size()
	if rows%p != 0 {
		return fmt.Errorf("climate: %d rows not divisible by %d copies", rows, p)
	}
	l := rows / p
	if len(field) < l*cols {
		return fmt.Errorf("climate: local section %d < %d", len(field), l*cols)
	}
	if len(above) != cols || len(below) != cols {
		return fmt.Errorf("climate: boundary rows must have %d columns", cols)
	}
	me := w.Rank()

	// Halo exchange: send edge rows to neighbours (asynchronously), then
	// receive theirs. Rows are copied before sending — messages between
	// address spaces carry snapshots.
	if me > 0 {
		if err := w.Send(me-1, kindToAbove, append([]float64(nil), field[:cols]...)); err != nil {
			return err
		}
	}
	if me < p-1 {
		if err := w.Send(me+1, kindToBelow, append([]float64(nil), field[(l-1)*cols:l*cols]...)); err != nil {
			return err
		}
	}
	rowAbove := above
	rowBelow := below
	if me > 0 {
		r, err := w.RecvFloats(me-1, kindToBelow)
		if err != nil {
			return err
		}
		rowAbove = r
	}
	if me < p-1 {
		r, err := w.RecvFloats(me+1, kindToAbove)
		if err != nil {
			return err
		}
		rowBelow = r
	}

	jacobiUpdate(field, l, cols, alpha, rowAbove, rowBelow)
	return nil
}

// jacobiUpdate performs the damped Jacobi sweep on l rows of the field
// given its above/below halo rows (reflecting side columns).
func jacobiUpdate(field []float64, l, cols int, alpha float64, rowAbove, rowBelow []float64) {
	next := make([]float64, l*cols)
	get := func(i, j int) float64 {
		// i in [-1, l]; j clamped to [0, cols-1] (reflecting sides).
		if j < 0 {
			j = 0
		}
		if j >= cols {
			j = cols - 1
		}
		switch {
		case i < 0:
			return rowAbove[j]
		case i >= l:
			return rowBelow[j]
		default:
			return field[i*cols+j]
		}
	}
	for i := 0; i < l; i++ {
		for j := 0; j < cols; j++ {
			avg := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
			next[i*cols+j] = (1-alpha)*field[i*cols+j] + alpha*avg
		}
	}
	copy(field[:l*cols], next)
}

// diffuseStepChan is the §7.2.1 variant: the coupling edge row is
// exchanged directly with the partner simulation over channels; the send
// precedes the receive, so the two concurrently executing distributed
// calls never deadlock.
func diffuseStepChan(w *spmd.World, field []float64, rows, cols int, alpha float64,
	coupleAtTop bool, fixed []float64, send, recv *channel.Channel) error {
	p := w.Size()
	if rows%p != 0 {
		return fmt.Errorf("climate: %d rows not divisible by %d copies", rows, p)
	}
	l := rows / p
	if len(field) < l*cols {
		return fmt.Errorf("climate: local section %d < %d", len(field), l*cols)
	}
	if len(fixed) != cols {
		return fmt.Errorf("climate: fixed boundary must have %d columns", cols)
	}
	me := w.Rank()

	// The copy owning the coupling edge ships it before anything blocks.
	if coupleAtTop && me == 0 {
		if err := send.Send(field[:cols]); err != nil {
			return err
		}
	}
	if !coupleAtTop && me == p-1 {
		if err := send.Send(field[(l-1)*cols : l*cols]); err != nil {
			return err
		}
	}

	// Interior halo exchange, as in the base program.
	if me > 0 {
		if err := w.Send(me-1, kindToAbove, append([]float64(nil), field[:cols]...)); err != nil {
			return err
		}
	}
	if me < p-1 {
		if err := w.Send(me+1, kindToBelow, append([]float64(nil), field[(l-1)*cols:l*cols]...)); err != nil {
			return err
		}
	}

	var rowAbove, rowBelow []float64
	switch {
	case me == 0 && coupleAtTop:
		r, ok := recv.Recv()
		if !ok {
			return fmt.Errorf("climate: coupling channel closed")
		}
		rowAbove = r
	case me == 0:
		rowAbove = fixed
	default:
		r, err := w.RecvFloats(me-1, kindToBelow)
		if err != nil {
			return err
		}
		rowAbove = r
	}
	switch {
	case me == p-1 && !coupleAtTop:
		r, ok := recv.Recv()
		if !ok {
			return fmt.Errorf("climate: coupling channel closed")
		}
		rowBelow = r
	case me == p-1:
		rowBelow = fixed
	default:
		r, err := w.RecvFloats(me+1, kindToAbove)
		if err != nil {
			return err
		}
		rowBelow = r
	}

	jacobiUpdate(field, l, cols, alpha, rowAbove, rowBelow)
	return nil
}

// Config describes a coupled run.
type Config struct {
	Rows, Cols int
	Steps      int
	Alpha      float64
}

// Result carries the final fields (dense row-major copies read back
// through the global view).
type Result struct {
	Ocean      []float64
	Atmosphere []float64
}

// Run executes the coupled simulation on the machine: the ocean group is
// the first half of the processors, the atmosphere group the second half.
func Run(m *core.Machine, cfg Config) (Result, error) {
	p := m.P()
	if p < 2 || p%2 != 0 {
		return Result{}, fmt.Errorf("climate: need an even machine size, got %d", p)
	}
	half := p / 2
	oceanProcs := m.Procs(0, 1, half)
	atmosProcs := m.Procs(half, 1, half)
	if cfg.Rows%half != 0 {
		return Result{}, fmt.Errorf("climate: %d rows not divisible by group size %d", cfg.Rows, half)
	}

	spec := func(procs []int) core.ArraySpec {
		return core.ArraySpec{
			Dims:    []int{cfg.Rows, cfg.Cols},
			Procs:   procs,
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}, // block rows
		}
	}
	ocean, err := m.NewArray(spec(oceanProcs))
	if err != nil {
		return Result{}, err
	}
	defer ocean.Free()
	atmos, err := m.NewArray(spec(atmosProcs))
	if err != nil {
		return Result{}, err
	}
	defer atmos.Free()

	// Initial conditions: warm ocean band, cold atmosphere gradient.
	if err := ocean.Fill(func(idx []int) float64 {
		return InitialOcean(idx[0], idx[1])
	}); err != nil {
		return Result{}, err
	}
	if err := atmos.Fill(func(idx []int) float64 {
		return InitialAtmosphere(idx[0], idx[1])
	}); err != nil {
		return Result{}, err
	}

	// One bulk transfer fetches the whole coupling row (one message per
	// owning processor; with row-block distribution, exactly one).
	readRow := func(a *core.Array, row int) ([]float64, error) {
		return a.ReadBlock([]int{row, 0}, []int{row + 1, cfg.Cols})
	}

	for step := 0; step < cfg.Steps; step++ {
		// Exchange of boundary data through the task-parallel top level:
		// read each simulation's coupling edge, then run both time steps
		// concurrently with the other's edge as boundary.
		oceanTop, err := readRow(ocean, 0)
		if err != nil {
			return Result{}, err
		}
		atmosBottom, err := readRow(atmos, cfg.Rows-1)
		if err != nil {
			return Result{}, err
		}
		var errO, errA error
		compose.Par(
			func() {
				errO = m.Call(oceanProcs, ProgDiffuse,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(atmosBottom),       // above the ocean: the atmosphere's bottom edge
					dcall.Const(oceanDeepRow(cfg)), // below the ocean: fixed deep water
					ocean.Param())
			},
			func() {
				errA = m.CallOn(half, atmosProcs, ProgDiffuse,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(atmosTopRow(cfg)), // above the atmosphere: fixed stratosphere
					dcall.Const(oceanTop),         // below the atmosphere: the ocean's surface
					atmos.Param())
			},
		)
		if errO != nil {
			return Result{}, fmt.Errorf("ocean step %d: %w", step, errO)
		}
		if errA != nil {
			return Result{}, fmt.Errorf("atmosphere step %d: %w", step, errA)
		}
	}

	oSnap, err := ocean.Snapshot()
	if err != nil {
		return Result{}, err
	}
	aSnap, err := atmos.Snapshot()
	if err != nil {
		return Result{}, err
	}
	return Result{Ocean: oSnap, Atmosphere: aSnap}, nil
}

// RunChanneled executes the coupled simulation using the §7.2.1 extension:
// per-step boundary exchange happens directly between the two
// data-parallel programs over a channel pair created here, removing the
// task-level read/forward bottleneck. The numerical evolution is identical
// to Run and RunSequential.
func RunChanneled(m *core.Machine, cfg Config) (Result, error) {
	p := m.P()
	if p < 2 || p%2 != 0 {
		return Result{}, fmt.Errorf("climate: need an even machine size, got %d", p)
	}
	half := p / 2
	oceanProcs := m.Procs(0, 1, half)
	atmosProcs := m.Procs(half, 1, half)
	if cfg.Rows%half != 0 {
		return Result{}, fmt.Errorf("climate: %d rows not divisible by group size %d", cfg.Rows, half)
	}

	spec := func(procs []int) core.ArraySpec {
		return core.ArraySpec{
			Dims:    []int{cfg.Rows, cfg.Cols},
			Procs:   procs,
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		}
	}
	ocean, err := m.NewArray(spec(oceanProcs))
	if err != nil {
		return Result{}, err
	}
	defer ocean.Free()
	atmos, err := m.NewArray(spec(atmosProcs))
	if err != nil {
		return Result{}, err
	}
	defer atmos.Free()
	if err := ocean.Fill(func(idx []int) float64 { return InitialOcean(idx[0], idx[1]) }); err != nil {
		return Result{}, err
	}
	if err := atmos.Fill(func(idx []int) float64 { return InitialAtmosphere(idx[0], idx[1]) }); err != nil {
		return Result{}, err
	}

	link := channel.NewPair() // AtoB: ocean->atmosphere, BtoA: atmosphere->ocean
	defer link.Close()

	for step := 0; step < cfg.Steps; step++ {
		var errO, errA error
		compose.Par(
			func() {
				errO = m.Call(oceanProcs, ProgDiffuseChan,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(true), // coupling edge at the ocean's top
					dcall.Const(oceanDeepRow(cfg)),
					dcall.Const(link.AtoB), dcall.Const(link.BtoA),
					ocean.Param())
			},
			func() {
				errA = m.CallOn(half, atmosProcs, ProgDiffuseChan,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(false), // coupling edge at the atmosphere's bottom
					dcall.Const(atmosTopRow(cfg)),
					dcall.Const(link.BtoA), dcall.Const(link.AtoB),
					atmos.Param())
			},
		)
		if errO != nil {
			return Result{}, fmt.Errorf("ocean step %d: %w", step, errO)
		}
		if errA != nil {
			return Result{}, fmt.Errorf("atmosphere step %d: %w", step, errA)
		}
	}

	oSnap, err := ocean.Snapshot()
	if err != nil {
		return Result{}, err
	}
	aSnap, err := atmos.Snapshot()
	if err != nil {
		return Result{}, err
	}
	return Result{Ocean: oSnap, Atmosphere: aSnap}, nil
}

// InitialOcean and InitialAtmosphere define the deterministic initial
// fields (shared with the sequential reference).
func InitialOcean(i, j int) float64      { return 15 + 0.1*float64(i) + 0.05*float64(j) }
func InitialAtmosphere(i, j int) float64 { return 5 - 0.05*float64(i) + 0.02*float64(j) }

func oceanDeepRow(cfg Config) []float64 {
	row := make([]float64, cfg.Cols)
	for j := range row {
		row[j] = 4 // deep-water reference temperature
	}
	return row
}

func atmosTopRow(cfg Config) []float64 {
	row := make([]float64, cfg.Cols)
	for j := range row {
		row[j] = -30 // stratosphere reference temperature
	}
	return row
}

// RunSequential computes the identical coupled evolution on dense arrays
// with no parallel machinery: the reference for E1 and the baseline for
// the benchmark.
func RunSequential(cfg Config) Result {
	o := make([]float64, cfg.Rows*cfg.Cols)
	a := make([]float64, cfg.Rows*cfg.Cols)
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			o[i*cfg.Cols+j] = InitialOcean(i, j)
			a[i*cfg.Cols+j] = InitialAtmosphere(i, j)
		}
	}
	deep := oceanDeepRow(cfg)
	strato := atmosTopRow(cfg)
	step := func(f []float64, above, below []float64) []float64 {
		next := make([]float64, len(f))
		get := func(i, j int) float64 {
			if j < 0 {
				j = 0
			}
			if j >= cfg.Cols {
				j = cfg.Cols - 1
			}
			switch {
			case i < 0:
				return above[j]
			case i >= cfg.Rows:
				return below[j]
			default:
				return f[i*cfg.Cols+j]
			}
		}
		for i := 0; i < cfg.Rows; i++ {
			for j := 0; j < cfg.Cols; j++ {
				avg := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
				next[i*cfg.Cols+j] = (1-cfg.Alpha)*f[i*cfg.Cols+j] + cfg.Alpha*avg
			}
		}
		return next
	}
	for s := 0; s < cfg.Steps; s++ {
		oceanTop := append([]float64(nil), o[:cfg.Cols]...)
		atmosBottom := append([]float64(nil), a[(cfg.Rows-1)*cfg.Cols:]...)
		o2 := step(o, atmosBottom, deep)
		a2 := step(a, strato, oceanTop)
		o, a = o2, a2
	}
	return Result{Ocean: o, Atmosphere: a}
}
