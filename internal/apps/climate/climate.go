// Package climate reproduces the paper's coupled-simulation problem class
// (§2.3.1, Fig 2.1): a climate simulation consisting of an ocean
// simulation and an atmosphere simulation, each a data-parallel program
// performing a time-stepped computation, exchanging boundary data at each
// time step through a task-parallel top level.
//
// Each simulation evolves a rows x cols field with a damped Jacobi
// diffusion step. The two fields are coupled: the ocean's surface (its
// "above" boundary) is the atmosphere's bottom edge row, and the
// atmosphere's bottom boundary is the ocean's top edge row. The two
// distributed calls of each time step execute concurrently on disjoint
// processor groups; the boundary rows move between the two distributed
// arrays only through the task level (read_element / global constants),
// exactly the discipline Fig 3.4 demands.
package climate

import (
	"fmt"

	"repro/internal/arraymgr"
	"repro/internal/channel"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dcall"
	"repro/internal/grid"
	"repro/internal/spmd"
)

// ProgDiffuse is the registered name of the data-parallel time-step
// program shared by both simulations.
const ProgDiffuse = "climate:diffuse"

// ProgDiffuseChan is the channel-coupled variant implementing the §7.2.1
// extension: the two simulations exchange boundary rows directly over
// channels defined by the task-parallel caller, instead of through
// task-level element reads.
const ProgDiffuseChan = "climate:diffuse_chan"

// RegisterPrograms registers the diffusion steps with the machine.
//
// ProgDiffuse parameters: (rows, cols, alpha, above, below, local(field)).
// above and below are the global boundary rows (the other simulation's
// edge row); interior block boundaries are exchanged between the copies
// directly.
//
// ProgDiffuseChan parameters: (rows, cols, alpha, coupleAtTop, fixed,
// send, recv, local(field)). coupleAtTop selects which global edge is the
// coupling edge; the copy owning it sends its pre-update edge row on
// `send` and receives the partner simulation's edge row on `recv`; the
// opposite global edge uses the constant row `fixed`.
func RegisterPrograms(m *core.Machine) error {
	if err := m.RegisterWithBorders(ProgDiffuse, func(w *spmd.World, a *dcall.Args) {
		rows := a.Int(0)
		cols := a.Int(1)
		alpha := a.Float(2)
		above := a.Const(3).([]float64)
		below := a.Const(4).([]float64)
		field := a.Section(5)
		if err := diffuseStep(w, field, rows, cols, alpha, above, below); err != nil {
			panic(err)
		}
	}, borderFn(5)); err != nil {
		return err
	}
	return m.RegisterWithBorders(ProgDiffuseChan, func(w *spmd.World, a *dcall.Args) {
		rows := a.Int(0)
		cols := a.Int(1)
		alpha := a.Float(2)
		coupleAtTop := a.Const(3).(bool)
		fixed := a.Const(4).([]float64)
		send := a.Const(5).(*channel.Channel)
		recv := a.Const(6).(*channel.Channel)
		field := a.Section(7)
		if err := diffuseStepChan(w, field, rows, cols, alpha, coupleAtTop, fixed, send, recv); err != nil {
			panic(err)
		}
	}, borderFn(7))
}

// FieldBorders is the overlap-area shape both diffusion programs require
// of their field parameter: one halo row above and below, no side borders.
func FieldBorders() arraymgr.BorderSpec { return arraymgr.ExplicitBorders{1, 1, 0, 0} }

// borderFn is the programs' border callback (the paper's Program_
// routine): the field parameter — number 5 for ProgDiffuse, 7 for
// ProgDiffuseChan — carries FieldBorders; other parameters carry none.
// Registering it makes ForeignBordersOf and verify_array work for fields
// created without explicit borders.
func borderFn(fieldParm int) dcall.BorderFn {
	return func(parmNum, ndims int) ([]int, error) {
		b := make([]int, 2*ndims)
		if parmNum == fieldParm && ndims == 2 {
			b[0], b[1] = 1, 1
		}
		return b, nil
	}
}

// fieldHalo builds the HaloExchange description of a block-row field of l
// interior rows: a p x 1 grid with one halo row on either side.
func fieldHalo(sec *darray.Section, p, l, cols int) spmd.Halo {
	return spmd.Halo{
		Section:      sec,
		LocalDims:    []int{l, cols},
		Borders:      []int{1, 1, 0, 0},
		GridDims:     []int{p, 1},
		Indexing:     grid.RowMajor,
		GridIndexing: grid.RowMajor,
	}
}

// checkField validates the group/field shape and returns the interior rows
// per copy. The section's storage is (l+2) x cols: rows 0 and l+1 are the
// halo rows, interior row i lives at storage row i+1.
func checkField(w *spmd.World, sec *darray.Section, rows, cols int) (l int, err error) {
	p := w.Size()
	if rows%p != 0 {
		return 0, fmt.Errorf("climate: %d rows not divisible by %d copies", rows, p)
	}
	l = rows / p
	if sec.Len() < (l+2)*cols {
		return 0, fmt.Errorf("climate: local section %d < %d (did you create the array with FieldBorders?)",
			sec.Len(), (l+2)*cols)
	}
	return l, nil
}

// diffuseStep performs one damped Jacobi sweep on this copy's block of
// rows: the interior neighbours' edge rows arrive in the section's halo
// rows through HaloExchange, the physical edges take the supplied global
// boundary rows, and the update then reads only this copy's storage.
func diffuseStep(w *spmd.World, sec *darray.Section, rows, cols int, alpha float64, above, below []float64) error {
	l, err := checkField(w, sec, rows, cols)
	if err != nil {
		return err
	}
	if len(above) != cols || len(below) != cols {
		return fmt.Errorf("climate: boundary rows must have %d columns", cols)
	}
	p, me, f := w.Size(), w.Rank(), sec.F
	if err := w.HaloExchange(fieldHalo(sec, p, l, cols)); err != nil {
		return err
	}
	if me == 0 {
		copy(f[0:cols], above)
	}
	if me == p-1 {
		copy(f[(l+1)*cols:(l+2)*cols], below)
	}
	jacobiUpdate(f, l, cols, alpha)
	return nil
}

// jacobiUpdate performs the damped Jacobi sweep on the bordered storage of
// l interior rows (halo rows already filled; reflecting side columns).
func jacobiUpdate(f []float64, l, cols int, alpha float64) {
	next := make([]float64, l*cols)
	get := func(i, j int) float64 {
		// i in [-1, l] maps to storage row i+1; j clamped to [0, cols-1].
		if j < 0 {
			j = 0
		}
		if j >= cols {
			j = cols - 1
		}
		return f[(i+1)*cols+j]
	}
	for i := 0; i < l; i++ {
		for j := 0; j < cols; j++ {
			avg := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
			next[i*cols+j] = (1-alpha)*get(i, j) + alpha*avg
		}
	}
	for i := 0; i < l; i++ {
		copy(f[(i+1)*cols:(i+2)*cols], next[i*cols:(i+1)*cols])
	}
}

// diffuseStepChan is the §7.2.1 variant: the coupling edge row is
// exchanged directly with the partner simulation over channels; the send
// precedes the receive, so the two concurrently executing distributed
// calls never deadlock. The partner's row is received straight into the
// coupling-edge halo row.
func diffuseStepChan(w *spmd.World, sec *darray.Section, rows, cols int, alpha float64,
	coupleAtTop bool, fixed []float64, send, recv *channel.Channel) error {
	l, err := checkField(w, sec, rows, cols)
	if err != nil {
		return err
	}
	if len(fixed) != cols {
		return fmt.Errorf("climate: fixed boundary must have %d columns", cols)
	}
	p, me, f := w.Size(), w.Rank(), sec.F

	// The copy owning the coupling edge ships its pre-update interior edge
	// row before anything blocks (channel sends copy their payload).
	if coupleAtTop && me == 0 {
		if err := send.Send(f[cols : 2*cols]); err != nil {
			return err
		}
	}
	if !coupleAtTop && me == p-1 {
		if err := send.Send(f[l*cols : (l+1)*cols]); err != nil {
			return err
		}
	}

	// Interior halo exchange, as in the base program.
	if err := w.HaloExchange(fieldHalo(sec, p, l, cols)); err != nil {
		return err
	}

	// Physical edges: the coupling edge comes from the partner simulation
	// over the channel, the opposite edge is the fixed boundary row.
	if me == 0 {
		if coupleAtTop {
			r, ok := recv.Recv()
			if !ok {
				return fmt.Errorf("climate: coupling channel closed")
			}
			copy(f[0:cols], r)
		} else {
			copy(f[0:cols], fixed)
		}
	}
	if me == p-1 {
		if !coupleAtTop {
			r, ok := recv.Recv()
			if !ok {
				return fmt.Errorf("climate: coupling channel closed")
			}
			copy(f[(l+1)*cols:(l+2)*cols], r)
		} else {
			copy(f[(l+1)*cols:(l+2)*cols], fixed)
		}
	}

	jacobiUpdate(f, l, cols, alpha)
	return nil
}

// Config describes a coupled run.
type Config struct {
	Rows, Cols int
	Steps      int
	Alpha      float64
}

// Result carries the final fields (dense row-major copies read back
// through the global view).
type Result struct {
	Ocean      []float64
	Atmosphere []float64
}

// Run executes the coupled simulation on the machine: the ocean group is
// the first half of the processors, the atmosphere group the second half.
func Run(m *core.Machine, cfg Config) (Result, error) {
	p := m.P()
	if p < 2 || p%2 != 0 {
		return Result{}, fmt.Errorf("climate: need an even machine size, got %d", p)
	}
	half := p / 2
	oceanProcs := m.Procs(0, 1, half)
	atmosProcs := m.Procs(half, 1, half)
	if cfg.Rows%half != 0 {
		return Result{}, fmt.Errorf("climate: %d rows not divisible by group size %d", cfg.Rows, half)
	}

	spec := func(procs []int) core.ArraySpec {
		return core.ArraySpec{
			Dims:    []int{cfg.Rows, cfg.Cols},
			Procs:   procs,
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()}, // block rows
			Borders: FieldBorders(),
		}
	}
	ocean, err := m.NewArray(spec(oceanProcs))
	if err != nil {
		return Result{}, err
	}
	defer ocean.Free()
	atmos, err := m.NewArray(spec(atmosProcs))
	if err != nil {
		return Result{}, err
	}
	defer atmos.Free()

	// Initial conditions: warm ocean band, cold atmosphere gradient.
	if err := ocean.Fill(func(idx []int) float64 {
		return InitialOcean(idx[0], idx[1])
	}); err != nil {
		return Result{}, err
	}
	if err := atmos.Fill(func(idx []int) float64 {
		return InitialAtmosphere(idx[0], idx[1])
	}); err != nil {
		return Result{}, err
	}

	// One bulk transfer fetches the whole coupling row (one message per
	// owning processor; with row-block distribution, exactly one).
	readRow := func(a *core.Array, row int) ([]float64, error) {
		return a.ReadBlock([]int{row, 0}, []int{row + 1, cfg.Cols})
	}

	for step := 0; step < cfg.Steps; step++ {
		// Exchange of boundary data through the task-parallel top level:
		// read each simulation's coupling edge, then run both time steps
		// concurrently with the other's edge as boundary.
		oceanTop, err := readRow(ocean, 0)
		if err != nil {
			return Result{}, err
		}
		atmosBottom, err := readRow(atmos, cfg.Rows-1)
		if err != nil {
			return Result{}, err
		}
		var errO, errA error
		compose.Par(
			func() {
				errO = m.Call(oceanProcs, ProgDiffuse,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(atmosBottom),       // above the ocean: the atmosphere's bottom edge
					dcall.Const(oceanDeepRow(cfg)), // below the ocean: fixed deep water
					ocean.Param())
			},
			func() {
				errA = m.CallOn(half, atmosProcs, ProgDiffuse,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(atmosTopRow(cfg)), // above the atmosphere: fixed stratosphere
					dcall.Const(oceanTop),         // below the atmosphere: the ocean's surface
					atmos.Param())
			},
		)
		if errO != nil {
			return Result{}, fmt.Errorf("ocean step %d: %w", step, errO)
		}
		if errA != nil {
			return Result{}, fmt.Errorf("atmosphere step %d: %w", step, errA)
		}
	}

	oSnap, err := ocean.Snapshot()
	if err != nil {
		return Result{}, err
	}
	aSnap, err := atmos.Snapshot()
	if err != nil {
		return Result{}, err
	}
	return Result{Ocean: oSnap, Atmosphere: aSnap}, nil
}

// RunChanneled executes the coupled simulation using the §7.2.1 extension:
// per-step boundary exchange happens directly between the two
// data-parallel programs over a channel pair created here, removing the
// task-level read/forward bottleneck. The numerical evolution is identical
// to Run and RunSequential.
func RunChanneled(m *core.Machine, cfg Config) (Result, error) {
	p := m.P()
	if p < 2 || p%2 != 0 {
		return Result{}, fmt.Errorf("climate: need an even machine size, got %d", p)
	}
	half := p / 2
	oceanProcs := m.Procs(0, 1, half)
	atmosProcs := m.Procs(half, 1, half)
	if cfg.Rows%half != 0 {
		return Result{}, fmt.Errorf("climate: %d rows not divisible by group size %d", cfg.Rows, half)
	}

	spec := func(procs []int) core.ArraySpec {
		return core.ArraySpec{
			Dims:    []int{cfg.Rows, cfg.Cols},
			Procs:   procs,
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
			Borders: FieldBorders(),
		}
	}
	ocean, err := m.NewArray(spec(oceanProcs))
	if err != nil {
		return Result{}, err
	}
	defer ocean.Free()
	atmos, err := m.NewArray(spec(atmosProcs))
	if err != nil {
		return Result{}, err
	}
	defer atmos.Free()
	if err := ocean.Fill(func(idx []int) float64 { return InitialOcean(idx[0], idx[1]) }); err != nil {
		return Result{}, err
	}
	if err := atmos.Fill(func(idx []int) float64 { return InitialAtmosphere(idx[0], idx[1]) }); err != nil {
		return Result{}, err
	}

	link := channel.NewPair() // AtoB: ocean->atmosphere, BtoA: atmosphere->ocean
	defer link.Close()

	for step := 0; step < cfg.Steps; step++ {
		var errO, errA error
		compose.Par(
			func() {
				errO = m.Call(oceanProcs, ProgDiffuseChan,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(true), // coupling edge at the ocean's top
					dcall.Const(oceanDeepRow(cfg)),
					dcall.Const(link.AtoB), dcall.Const(link.BtoA),
					ocean.Param())
			},
			func() {
				errA = m.CallOn(half, atmosProcs, ProgDiffuseChan,
					dcall.Const(cfg.Rows), dcall.Const(cfg.Cols), dcall.Const(cfg.Alpha),
					dcall.Const(false), // coupling edge at the atmosphere's bottom
					dcall.Const(atmosTopRow(cfg)),
					dcall.Const(link.BtoA), dcall.Const(link.AtoB),
					atmos.Param())
			},
		)
		if errO != nil {
			return Result{}, fmt.Errorf("ocean step %d: %w", step, errO)
		}
		if errA != nil {
			return Result{}, fmt.Errorf("atmosphere step %d: %w", step, errA)
		}
	}

	oSnap, err := ocean.Snapshot()
	if err != nil {
		return Result{}, err
	}
	aSnap, err := atmos.Snapshot()
	if err != nil {
		return Result{}, err
	}
	return Result{Ocean: oSnap, Atmosphere: aSnap}, nil
}

// InitialOcean and InitialAtmosphere define the deterministic initial
// fields (shared with the sequential reference).
func InitialOcean(i, j int) float64      { return 15 + 0.1*float64(i) + 0.05*float64(j) }
func InitialAtmosphere(i, j int) float64 { return 5 - 0.05*float64(i) + 0.02*float64(j) }

func oceanDeepRow(cfg Config) []float64 {
	row := make([]float64, cfg.Cols)
	for j := range row {
		row[j] = 4 // deep-water reference temperature
	}
	return row
}

func atmosTopRow(cfg Config) []float64 {
	row := make([]float64, cfg.Cols)
	for j := range row {
		row[j] = -30 // stratosphere reference temperature
	}
	return row
}

// RunSequential computes the identical coupled evolution on dense arrays
// with no parallel machinery: the reference for E1 and the baseline for
// the benchmark.
func RunSequential(cfg Config) Result {
	o := make([]float64, cfg.Rows*cfg.Cols)
	a := make([]float64, cfg.Rows*cfg.Cols)
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			o[i*cfg.Cols+j] = InitialOcean(i, j)
			a[i*cfg.Cols+j] = InitialAtmosphere(i, j)
		}
	}
	deep := oceanDeepRow(cfg)
	strato := atmosTopRow(cfg)
	step := func(f []float64, above, below []float64) []float64 {
		next := make([]float64, len(f))
		get := func(i, j int) float64 {
			if j < 0 {
				j = 0
			}
			if j >= cfg.Cols {
				j = cfg.Cols - 1
			}
			switch {
			case i < 0:
				return above[j]
			case i >= cfg.Rows:
				return below[j]
			default:
				return f[i*cfg.Cols+j]
			}
		}
		for i := 0; i < cfg.Rows; i++ {
			for j := 0; j < cfg.Cols; j++ {
				avg := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
				next[i*cfg.Cols+j] = (1-cfg.Alpha)*f[i*cfg.Cols+j] + cfg.Alpha*avg
			}
		}
		return next
	}
	for s := 0; s < cfg.Steps; s++ {
		oceanTop := append([]float64(nil), o[:cfg.Cols]...)
		atmosBottom := append([]float64(nil), a[(cfg.Rows-1)*cfg.Cols:]...)
		o2 := step(o, atmosBottom, deep)
		a2 := step(a, strato, oceanTop)
		o, a = o2, a2
	}
	return Result{Ocean: o, Atmosphere: a}
}
