package climate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/grid"
)

func TestCoupledMatchesSequential(t *testing.T) {
	cfg := Config{Rows: 8, Cols: 6, Steps: 5, Alpha: 0.4}
	want := RunSequential(cfg)
	for _, p := range []int{2, 4, 8} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := Run(m, cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for i := range want.Ocean {
			if math.Abs(got.Ocean[i]-want.Ocean[i]) > 1e-12 {
				t.Fatalf("P=%d: ocean[%d] = %v, want %v", p, i, got.Ocean[i], want.Ocean[i])
			}
		}
		for i := range want.Atmosphere {
			if math.Abs(got.Atmosphere[i]-want.Atmosphere[i]) > 1e-12 {
				t.Fatalf("P=%d: atmos[%d] = %v, want %v", p, i, got.Atmosphere[i], want.Atmosphere[i])
			}
		}
		m.Close()
	}
}

// The §7.2.1 extension: boundary exchange over channels produces exactly
// the same evolution as the base (task-level) coupling and the sequential
// reference.
func TestChanneledMatchesSequential(t *testing.T) {
	cfg := Config{Rows: 8, Cols: 6, Steps: 5, Alpha: 0.4}
	want := RunSequential(cfg)
	for _, p := range []int{2, 4, 8} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := RunChanneled(m, cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for i := range want.Ocean {
			if math.Abs(got.Ocean[i]-want.Ocean[i]) > 1e-12 {
				t.Fatalf("P=%d: ocean[%d] = %v, want %v", p, i, got.Ocean[i], want.Ocean[i])
			}
		}
		for i := range want.Atmosphere {
			if math.Abs(got.Atmosphere[i]-want.Atmosphere[i]) > 1e-12 {
				t.Fatalf("P=%d: atmos[%d] = %v, want %v", p, i, got.Atmosphere[i], want.Atmosphere[i])
			}
		}
		m.Close()
	}
}

func TestChanneledValidation(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, err := RunChanneled(m, Config{Rows: 5, Cols: 4, Steps: 1, Alpha: 0.1}); err == nil {
		t.Fatal("indivisible rows must fail")
	}
}

// The coupling is real: the ocean warms the atmosphere's lower rows over
// time (heat flows from the 15-degree ocean into the 5-degree atmosphere).
func TestCouplingTransfersHeat(t *testing.T) {
	cfg := Config{Rows: 8, Cols: 4, Steps: 0, Alpha: 0.5}
	before := RunSequential(cfg)
	cfg.Steps = 20
	after := RunSequential(cfg)
	// Bottom atmosphere row: initially ~4.65-4.71; must have warmed.
	rowStart := (cfg.Rows - 1) * cfg.Cols
	for j := 0; j < cfg.Cols; j++ {
		if after.Atmosphere[rowStart+j] <= before.Atmosphere[rowStart+j] {
			t.Fatalf("atmosphere bottom cell %d did not warm: %v -> %v",
				j, before.Atmosphere[rowStart+j], after.Atmosphere[rowStart+j])
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := core.New(3)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, Config{Rows: 4, Cols: 4, Steps: 1, Alpha: 0.1}); err == nil {
		t.Fatal("odd machine size must fail")
	}
	m2 := core.New(4)
	defer m2.Close()
	if err := RegisterPrograms(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m2, Config{Rows: 5, Cols: 4, Steps: 1, Alpha: 0.1}); err == nil {
		t.Fatal("indivisible rows must fail")
	}
}

// TestHaloMessageBudget pins the diffusion step's halo traffic: one
// ProgDiffuse call on P copies exchanges exactly one message per
// neighbour — plus the fixed call overhead of one find_local per copy and
// the P-1 combine-tree messages — however wide the field.
func TestHaloMessageBudget(t *testing.T) {
	const rows, cols, p = 16, 8, 4
	m := core.New(p)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	procs := m.AllProcs()
	field, err := m.NewArray(core.ArraySpec{
		Dims:    []int{rows, cols},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		Borders: FieldBorders(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := field.Fill(func(idx []int) float64 { return InitialOcean(idx[0], idx[1]) }); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, cols)

	router := m.VM.Router()
	before := router.Sent()
	if err := m.Call(procs, ProgDiffuse,
		dcall.Const(rows), dcall.Const(cols), dcall.Const(0.4),
		dcall.Const(row), dcall.Const(row),
		field.Param()); err != nil {
		t.Fatal(err)
	}
	// p find_local requests + 2*(p-1) halo rows + p-1 combines.
	want := uint64(p + 2*(p-1) + (p - 1))
	if got := router.Sent() - before; got != want {
		t.Fatalf("diffuse call sent %d messages, want %d (one halo message per neighbour per step)", got, want)
	}
}

// TestForeignBordersVerify covers the §4.2.7 workflow for the diffusion
// program: a field created without borders is corrected by verify_array
// against the program's registered border callback, after which the call
// succeeds.
func TestForeignBordersVerify(t *testing.T) {
	const rows, cols, p = 8, 4, 2
	m := core.New(p)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	procs := m.AllProcs()
	field, err := m.NewArray(core.ArraySpec{
		Dims:    []int{rows, cols},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		// No borders at creation time.
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := field.Fill(func(idx []int) float64 { return InitialOcean(idx[0], idx[1]) }); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, cols)
	call := func() error {
		return m.Call(procs, ProgDiffuse,
			dcall.Const(rows), dcall.Const(cols), dcall.Const(0.4),
			dcall.Const(row), dcall.Const(row),
			field.Param())
	}
	if err := call(); err == nil {
		t.Fatal("call on a borderless field must fail")
	}
	if err := field.Verify(2, core.ForeignBordersOf(ProgDiffuse, 5), grid.RowMajor); err != nil {
		t.Fatal(err)
	}
	if err := call(); err != nil {
		t.Fatalf("call after verify: %v", err)
	}
}
