package reactor

import (
	"math"
	"testing"

	"repro/internal/core"
)

var testCfg = Config{Cells: 8, Dt: 0.5, Horizon: 3, Alpha: 0.25, ValveCut: 0.8}

func TestConservation(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, testCfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if math.Abs(res.FieldTotal-res.TotalInjected) > 1e-9 {
			t.Fatalf("P=%d: heat not conserved: field %v, injected %v", p, res.FieldTotal, res.TotalInjected)
		}
		if res.TotalInjected <= 0 {
			t.Fatalf("P=%d: nothing injected", p)
		}
		m.Close()
	}
}

func TestMatchesSequential(t *testing.T) {
	want := RunSequential(testCfg)
	for _, p := range []int{1, 2, 4} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := Run(m, testCfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got.Events != want.Events || got.PulsesEmitted != want.PulsesEmitted {
			t.Fatalf("P=%d: events %d/%d pulses %d/%d", p,
				got.Events, want.Events, got.PulsesEmitted, want.PulsesEmitted)
		}
		if math.Abs(got.TotalInjected-want.TotalInjected) > 1e-12 {
			t.Fatalf("P=%d: injected %v, want %v", p, got.TotalInjected, want.TotalInjected)
		}
		for i := range want.Field {
			if math.Abs(got.Field[i]-want.Field[i]) > 1e-9 {
				t.Fatalf("P=%d: field[%d] = %v, want %v", p, i, got.Field[i], want.Field[i])
			}
		}
		m.Close()
	}
}

// TestProbeTrace pins the task level's scattered-index monitoring: the
// probe temperatures sampled after every reactor event through the batched
// gather path must match the sequential reference step for step.
func TestProbeTrace(t *testing.T) {
	cfg := testCfg
	cfg.Probes = []int{0, 3, 7, 3} // scattered sensors, one repeated
	want := RunSequential(cfg)
	if len(want.ProbeTrace) != want.PulsesEmitted {
		t.Fatalf("sequential trace has %d rows for %d pulses", len(want.ProbeTrace), want.PulsesEmitted)
	}
	for _, p := range []int{1, 2, 4} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := Run(m, cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(got.ProbeTrace) != len(want.ProbeTrace) {
			t.Fatalf("P=%d: trace has %d rows, want %d", p, len(got.ProbeTrace), len(want.ProbeTrace))
		}
		for ev := range want.ProbeTrace {
			for i := range cfg.Probes {
				if math.Abs(got.ProbeTrace[ev][i]-want.ProbeTrace[ev][i]) > 1e-9 {
					t.Fatalf("P=%d: event %d probe %d = %v, want %v",
						p, ev, i, got.ProbeTrace[ev][i], want.ProbeTrace[ev][i])
				}
			}
		}
		m.Close()
	}
	// Out-of-range probes are rejected up front.
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Probes = []int{cfg.Cells}
	if _, err := Run(m, bad); err == nil {
		t.Fatal("out-of-range probe must fail")
	}
}

func TestEventCountStructure(t *testing.T) {
	// Each pump tick spawns exactly a valve and a reactor event: total
	// events = 3 * pulses.
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 3*res.PulsesEmitted {
		t.Fatalf("events %d != 3 * pulses %d", res.Events, res.PulsesEmitted)
	}
}

func TestValidation(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	bad := testCfg
	bad.Cells = 6 // not divisible by 4
	if _, err := Run(m, bad); err == nil {
		t.Fatal("indivisible cells must fail")
	}
}
