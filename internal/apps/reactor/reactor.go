// Package reactor reproduces the paper's reactive-computation problem
// class (§2.3.3, Fig 2.3): a discrete-event simulation of a reactor
// system whose components — a pump, a valve, and the reactor itself — form
// a graph of communicating processes. The reactor's mathematical model is
// "fairly complicated" in the paper's terms, so its event handling is a
// data-parallel program invoked by distributed call; the pump and valve
// have scalar models handled at the task level, and all communication
// among components goes through the task-parallel top layer (the event
// queue).
//
// Physics of the toy model: the pump emits coolant pulses (flow varying
// deterministically with time); the valve passes a fixed fraction through;
// each pulse reaching the reactor injects heat at the inlet cell of the
// reactor's 1-dimensional temperature field, which then diffuses with a
// conservative (zero-flux) stencil. Total injected heat is conserved by
// the field, which the tests verify.
package reactor

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/sim"
	"repro/internal/spmd"
)

// ProgInjectDiffuse is the reactor component's data-parallel program.
const ProgInjectDiffuse = "reactor:inject_diffuse"

// RegisterPrograms registers the reactor's data-parallel model.
//
// Parameters: (n, amount, alpha, local(field)): inject `amount` of heat at
// global cell 0, then perform one conservative diffusion step.
func RegisterPrograms(m *core.Machine) error {
	return m.Register(ProgInjectDiffuse, func(w *spmd.World, a *dcall.Args) {
		n := a.Int(0)
		amount := a.Float(1)
		alpha := a.Float(2)
		field := a.Section(3).F
		if err := injectDiffuse(w, field, n, amount, alpha); err != nil {
			panic(err)
		}
	})
}

func injectDiffuse(w *spmd.World, field []float64, n int, amount, alpha float64) error {
	p := w.Size()
	if n%p != 0 {
		return fmt.Errorf("reactor: %d cells not divisible by %d copies", n, p)
	}
	l := n / p
	if len(field) < l {
		return fmt.Errorf("reactor: local section %d < %d", len(field), l)
	}
	me := w.Rank()
	if me == 0 {
		field[0] += amount // inlet cell
	}
	// Halo exchange of edge cells.
	const (
		kindLeft  = 0
		kindRight = 1
	)
	if me > 0 {
		if err := w.Send(me-1, kindLeft, []float64{field[0]}); err != nil {
			return err
		}
	}
	if me < p-1 {
		if err := w.Send(me+1, kindRight, []float64{field[l-1]}); err != nil {
			return err
		}
	}
	left := math.NaN()
	right := math.NaN()
	if me > 0 {
		v, err := w.RecvFloats(me-1, kindRight)
		if err != nil {
			return err
		}
		left = v[0]
	}
	if me < p-1 {
		v, err := w.RecvFloats(me+1, kindLeft)
		if err != nil {
			return err
		}
		right = v[0]
	}
	next := make([]float64, l)
	for i := 0; i < l; i++ {
		li := field[i] // reflecting (zero-flux) boundaries conserve heat
		ri := field[i]
		switch {
		case i > 0:
			li = field[i-1]
		case me > 0:
			li = left
		}
		switch {
		case i < l-1:
			ri = field[i+1]
		case me < p-1:
			ri = right
		}
		next[i] = field[i] + alpha*(li-2*field[i]+ri)
	}
	copy(field[:l], next)
	return nil
}

// Config describes a run.
type Config struct {
	Cells    int     // reactor field size (divisible by the reactor group)
	Dt       float64 // pump tick interval
	Horizon  float64 // simulation end time
	Alpha    float64 // diffusion coefficient (0 < alpha <= 0.5 for stability)
	ValveCut float64 // fraction the valve passes through (e.g. 0.8)
	// Probes lists global cell indices the task level samples after every
	// reactor event — temperature sensors scattered over the field. Each
	// sample is one batched gather (one message per owning processor),
	// however many probes are installed.
	Probes []int
}

// PumpFlow is the pump's deterministic flow model.
func PumpFlow(t float64) float64 { return 1 + 0.5*math.Sin(t) }

// Result reports a completed run.
type Result struct {
	Events        int     // discrete events processed
	PulsesEmitted int     // pump ticks
	TotalInjected float64 // heat delivered to the reactor
	FieldTotal    float64 // Σ field (must equal TotalInjected)
	Field         []float64
	// ProbeTrace records the probe temperatures after each reactor event,
	// one row per event in Config.Probes order (empty without probes).
	ProbeTrace [][]float64
}

// Run builds the component graph and executes it. The reactor's group is
// the whole machine (each event's distributed call runs on all
// processors).
func Run(m *core.Machine, cfg Config) (Result, error) {
	procs := m.AllProcs()
	if cfg.Cells%len(procs) != 0 {
		return Result{}, fmt.Errorf("reactor: %d cells not divisible by machine size %d", cfg.Cells, len(procs))
	}
	field, err := m.NewArray(core.ArraySpec{Dims: []int{cfg.Cells}, Procs: procs})
	if err != nil {
		return Result{}, err
	}
	defer field.Free()

	s := sim.New()
	res := Result{}

	if err := s.AddComponent("pump", func(ctx *sim.Context, ev sim.Event) error {
		res.PulsesEmitted++
		pulse := PumpFlow(ctx.Now()) * cfg.Dt
		if err := ctx.Schedule(cfg.Dt/4, "valve", "flow", pulse); err != nil {
			return err
		}
		if ctx.Now()+cfg.Dt <= cfg.Horizon {
			return ctx.Schedule(cfg.Dt, "pump", "tick", nil)
		}
		return nil
	}); err != nil {
		return Result{}, err
	}

	if err := s.AddComponent("valve", func(ctx *sim.Context, ev sim.Event) error {
		passed := ev.Payload.(float64) * cfg.ValveCut
		return ctx.Schedule(cfg.Dt/4, "reactor", "flow", passed)
	}); err != nil {
		return Result{}, err
	}

	probeIdx := make([][]int, len(cfg.Probes))
	for i, c := range cfg.Probes {
		if c < 0 || c >= cfg.Cells {
			return Result{}, fmt.Errorf("reactor: probe cell %d outside field of %d", c, cfg.Cells)
		}
		probeIdx[i] = []int{c}
	}

	if err := s.AddComponent("reactor", func(ctx *sim.Context, ev sim.Event) error {
		amount := ev.Payload.(float64)
		res.TotalInjected += amount
		// The component's model: a distributed call on the reactor group.
		if err := m.Call(procs, ProgInjectDiffuse,
			dcall.Const(cfg.Cells), dcall.Const(amount), dcall.Const(cfg.Alpha),
			field.Param()); err != nil {
			return err
		}
		// Sample the sensors through the task level: one batched gather of
		// all probe cells, not one read_element round trip per probe.
		if len(probeIdx) > 0 {
			vals, err := field.GatherElements(probeIdx)
			if err != nil {
				return err
			}
			res.ProbeTrace = append(res.ProbeTrace, vals)
		}
		return nil
	}); err != nil {
		return Result{}, err
	}

	if err := s.Schedule(0, "pump", "tick", nil); err != nil {
		return Result{}, err
	}
	n, err := s.Run(cfg.Horizon + 1)
	if err != nil {
		return Result{}, err
	}
	res.Events = n

	snap, err := field.Snapshot()
	if err != nil {
		return Result{}, err
	}
	res.Field = snap
	for _, v := range snap {
		res.FieldTotal += v
	}
	return res, nil
}

// RunSequential executes the identical event schedule with a dense field
// and no parallel machinery: the E3 reference.
func RunSequential(cfg Config) Result {
	field := make([]float64, cfg.Cells)
	res := Result{}
	diffuse := func(amount float64) {
		field[0] += amount
		next := make([]float64, len(field))
		for i := range field {
			li := field[i]
			ri := field[i]
			if i > 0 {
				li = field[i-1]
			}
			if i < len(field)-1 {
				ri = field[i+1]
			}
			next[i] = field[i] + cfg.Alpha*(li-2*field[i]+ri)
		}
		copy(field, next)
	}
	for _, c := range cfg.Probes {
		if c < 0 || c >= cfg.Cells {
			// Mirror Run's validation; the reference has no error channel,
			// so fail loudly up front rather than mid-run on a bad index.
			panic(fmt.Sprintf("reactor: probe cell %d outside field of %d", c, cfg.Cells))
		}
	}
	for t := 0.0; t <= cfg.Horizon; t += cfg.Dt {
		res.PulsesEmitted++
		pulse := PumpFlow(t) * cfg.Dt * cfg.ValveCut
		res.TotalInjected += pulse
		diffuse(pulse)
		res.Events += 3 // pump, valve, reactor
		if len(cfg.Probes) > 0 {
			row := make([]float64, len(cfg.Probes))
			for i, c := range cfg.Probes {
				row[i] = field[c]
			}
			res.ProbeTrace = append(res.ProbeTrace, row)
		}
	}
	res.Field = field
	for _, v := range field {
		res.FieldTotal += v
	}
	return res
}
