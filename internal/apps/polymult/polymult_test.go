package polymult

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func randPoly(n int, rng *rand.Rand) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = float64(rng.Intn(11) - 5)
	}
	return p
}

func TestPipelineMatchesSchoolbook(t *testing.T) {
	for _, pcount := range []int{4, 8} {
		m := core.New(pcount)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(pcount)))
		const n = 8
		const pairs = 3
		input := make([][2][]float64, pairs)
		for k := range input {
			input[k] = [2][]float64{randPoly(n, rng), randPoly(n, rng)}
		}
		got, err := Run(m, n, input)
		if err != nil {
			t.Fatalf("P=%d: %v", pcount, err)
		}
		for k := range input {
			want := Schoolbook(input[k][0], input[k][1])
			if len(got[k]) != 2*n {
				t.Fatalf("P=%d pair %d: %d coefficients", pcount, k, len(got[k]))
			}
			for j := range want {
				if math.Abs(got[k][j]-want[j]) > 1e-6 {
					t.Fatalf("P=%d pair %d coeff %d: %v want %v", pcount, k, j, got[k][j], want[j])
				}
			}
		}
		m.Close()
	}
}

// The paper's concrete illustration: multiplying (1+x) by (1-x) gives
// 1 - x^2.
func TestSimpleProduct(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	got, err := Run(m, 2, [][2][]float64{{{1, 1}, {1, -1}}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, -1, 0}
	for j := range want {
		if math.Abs(got[0][j]-want[j]) > 1e-9 {
			t.Fatalf("coeff %d = %v, want %v", j, got[0][j], want[j])
		}
	}
}

func TestInputValidation(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, 3, nil); err == nil {
		t.Fatal("non-power-of-two n must fail")
	}
	if _, err := Run(m, 4, [][2][]float64{{{1}, {1, 2, 3, 4}}}); err == nil {
		t.Fatal("wrong coefficient count must fail")
	}
}

func TestSplitGroupsValidation(t *testing.T) {
	m := core.New(6)
	defer m.Close()
	if _, err := SplitGroups(m); err == nil {
		t.Fatal("P=6 must fail (not divisible by 4)")
	}
	m4 := core.New(4)
	defer m4.Close()
	g, err := SplitGroups(m4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.A) != 1 || g.A[0] != 0 || g.D[0] != 3 {
		t.Fatalf("groups = %+v", g)
	}
}

func TestSchoolbook(t *testing.T) {
	got := Schoolbook([]float64{1, 2}, []float64{3, 4})
	// (1+2x)(3+4x) = 3 + 10x + 8x².
	want := []float64{3, 10, 8, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Schoolbook = %v", got)
		}
	}
}

// Multiple pairs streamed through: the pipeline keeps per-pair outputs in
// order even with many pairs in flight.
func TestManyPairsOrdering(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	const n = 4
	const pairs = 6
	input := make([][2][]float64, pairs)
	for k := range input {
		// pair k: F = x^0 * (k+1), G = 1 -> product = (k+1).
		f := make([]float64, n)
		g := make([]float64, n)
		f[0] = float64(k + 1)
		g[0] = 1
		input[k] = [2][]float64{f, g}
	}
	got, err := Run(m, n, input)
	if err != nil {
		t.Fatal(err)
	}
	for k := range input {
		if math.Abs(got[k][0]-float64(k+1)) > 1e-9 {
			t.Fatalf("pair %d: constant = %v, want %d", k, got[k][0], k+1)
		}
	}
}
