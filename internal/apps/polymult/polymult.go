// Package polymult reproduces the paper's second worked example (§6.2,
// Fig 6.1): pipelined polynomial multiplication using distributed FFTs.
//
// Input is a sequence of polynomial pairs (F_j, G_j), each of degree N-1
// given by N real coefficients. Each product H_j = F_j * G_j is computed
// by the three-stage pipeline of Fig 2.2/6.1:
//
//	phase1 (x2, concurrent): pad to NN = 2N, evaluate at the NN-th roots
//	        of unity with an inverse FFT (input loaded in bit-reversed
//	        order, output natural);
//	combine: multiply the two value sequences elementwise;
//	phase3: interpolate with a forward FFT (natural order in,
//	        bit-reversed out) and emit coefficients.
//
// The machine's processors are split into four groups exactly as the
// paper's go() procedure does: groups a and b run the two inverse FFTs,
// group C runs the combine, and the final group runs the forward FFT. Data
// moves between stages over PCN-style streams; each stage processes one
// pair while downstream stages process earlier pairs, so all stages
// operate concurrently after pipeline fill.
package polymult

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/spmd"
	"repro/internal/stream"
)

// Program names registered by RegisterPrograms.
const (
	ProgComputeRoots = "fft:compute_roots"
	ProgFFTReverse   = "fft:reverse"
	ProgFFTNatural   = "fft:natural"
)

// RegisterPrograms registers the three data-parallel FFT programs
// (compute_roots, fft_reverse, fft_natural) with the machine.
func RegisterPrograms(m *core.Machine) error {
	if err := m.Register(ProgComputeRoots, func(w *spmd.World, a *dcall.Args) {
		// Parameters: (NN, local(Eps)). Each copy computes the full table
		// of NN NN-th roots of unity into its local section, exactly as
		// the paper's distributed call to compute_roots does.
		nn := a.Int(0)
		if err := fft.ComputeRoots(nn, a.Section(1).F); err != nil {
			panic(err)
		}
	}); err != nil {
		return err
	}
	if err := m.Register(ProgFFTReverse, func(w *spmd.World, a *dcall.Args) {
		// Parameters: (Procs, P, Index, NN, Flag, local(Eps), local(BB)) —
		// the paper's fft_reverse signature. Procs/P/Index arrive through
		// both the explicit parameters (for fidelity) and the World.
		nn := a.Int(3)
		flag := fft.Flag(a.Int(4))
		if err := fft.TransformReverse(w, a.Section(6).F, nn, flag, a.Section(5).F); err != nil {
			panic(err)
		}
	}); err != nil {
		return err
	}
	return m.Register(ProgFFTNatural, func(w *spmd.World, a *dcall.Args) {
		nn := a.Int(3)
		flag := fft.Flag(a.Int(4))
		if err := fft.TransformNatural(w, a.Section(6).F, nn, flag, a.Section(5).F); err != nil {
			panic(err)
		}
	})
}

// Groups is the paper's four-way processor split.
type Groups struct {
	A, B, C, D []int
}

// SplitGroups divides P processors into the four pipeline groups. P must
// be divisible by 4 with a power-of-two quarter size (the FFT's
// requirement: "the number of available processors P is an even power of
// 2, with P >= 4").
func SplitGroups(m *core.Machine) (Groups, error) {
	p := m.P()
	if p%4 != 0 {
		return Groups{}, fmt.Errorf("polymult: machine size %d not divisible by 4", p)
	}
	q := p / 4
	if _, ok := fft.Log2(q); !ok {
		return Groups{}, fmt.Errorf("polymult: group size %d not a power of two", q)
	}
	return Groups{
		A: m.Procs(0, 1, q),
		B: m.Procs(q, 1, q),
		C: m.Procs(2*q, 1, q),
		D: m.Procs(3*q, 1, q),
	}, nil
}

// stage holds the per-group arrays of one FFT stage.
type stage struct {
	data *core.Array // {2*NN} doubles = NN interleaved complex
	eps  *core.Array // {2*NN, q}: each local section is the full table
}

func newStage(m *core.Machine, nn int, procs []int) (*stage, error) {
	data, err := m.NewArray(core.ArraySpec{Dims: []int{2 * nn}, Procs: procs})
	if err != nil {
		return nil, err
	}
	eps, err := m.NewArray(core.ArraySpec{
		Dims:  []int{2 * nn, len(procs)},
		Procs: procs,
		Distrib: []grid.Decomp{
			grid.NoDecomp(),     // * : every copy holds the full table
			grid.BlockDefault(), // one column per processor
		},
	})
	if err != nil {
		data.Free()
		return nil, err
	}
	return &stage{data: data, eps: eps}, nil
}

func (s *stage) free() {
	s.data.Free()
	s.eps.Free()
}

// initRoots makes the distributed call to compute_roots on the stage's
// group.
func (s *stage) initRoots(m *core.Machine, nn int, procs []int) error {
	return m.Call(procs, ProgComputeRoots, dcall.Const(nn), s.eps.Param())
}

// getInput loads one polynomial (n real coefficients from the input
// stream) into the stage's array in bit-reversed order and pads the upper
// half with zeros — the paper's get_input + pad_input, performed at the
// task level. The permuted vector is assembled densely and shipped with
// one bulk write per owning processor instead of 2*NN write_element
// round-trips.
func (s *stage) getInput(coeffs []float64, n, nn, ll int) error {
	vals := make([]float64, 2*nn)
	for j := 0; j < nn; j++ {
		if j < n {
			vals[2*fft.BitReverse(ll, j)] = coeffs[j]
		}
	}
	return s.data.WriteBlock([]int{0}, []int{2 * nn}, vals)
}

// arrayToStreams empties the stage's array into one stream per group
// member: a distributed call whose program is task-level code, like the
// paper's dbl_array_to_stream PCN program.
func (s *stage) arrayToStreams(m *core.Machine, procs []int, writers []*stream.Writer[float64]) error {
	return m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
		sec := a.Section(0)
		wr := writers[w.Rank()]
		for _, v := range sec.F {
			wr.Put(v)
		}
	}, s.data.Param())
}

// streamsToArray fills the stage's array from one stream per group member
// (the paper's stream_to_dbl_array).
func (s *stage) streamsToArray(m *core.Machine, procs []int, readers []*stream.Reader[float64]) error {
	return m.CallFn(procs, func(w *spmd.World, a *dcall.Args) {
		sec := a.Section(0)
		rd := readers[w.Rank()]
		for i := range sec.F {
			v, ok := rd.Next()
			if !ok {
				panic("polymult: input stream ended early")
			}
			sec.F[i] = v
		}
	}, s.data.Param())
}

// putOutput reads the transformed array (bit-reversed order) back to
// natural order, emitting 2*nn doubles (nn complex values) — the paper's
// put_output, fetching the whole vector with one bulk read per owning
// processor and un-permuting locally.
func (s *stage) putOutput(nn, ll int, out *stream.Writer[float64]) error {
	vals, err := s.data.ReadBlock([]int{0}, []int{2 * nn})
	if err != nil {
		return err
	}
	for j := 0; j < nn; j++ {
		pj := fft.BitReverse(ll, j)
		out.Put(vals[2*pj])
		out.Put(vals[2*pj+1])
	}
	return nil
}

// fftCall makes the distributed transform call with the paper's parameter
// list.
func (s *stage) fftCall(m *core.Machine, procs []int, program string, nn int, flag fft.Flag) error {
	return m.Call(procs, program,
		dcall.Const(procs), dcall.Const(len(procs)), dcall.Index(),
		dcall.Const(nn), dcall.Const(int(flag)),
		s.eps.Param(), s.data.Param(),
	)
}

// phase1 is the inverse-FFT pipeline stage: for each polynomial arriving
// on in (n coefficients at a time), load bit-reversed, transform, and
// stream the value representation to the combine stage.
func phase1(m *core.Machine, procs []int, st *stage, n, nn, ll, pairs int,
	in stream.Stream[float64], outs []*stream.Writer[float64], errs chan<- error) {
	rd := stream.NewReader(in)
	for k := 0; k < pairs; k++ {
		coeffs := make([]float64, n)
		for i := 0; i < n; i++ {
			v, ok := rd.Next()
			if !ok {
				errs <- fmt.Errorf("polymult: phase1 input ended at pair %d", k)
				return
			}
			coeffs[i] = v
		}
		if err := st.getInput(coeffs, n, nn, ll); err != nil {
			errs <- err
			return
		}
		if err := st.fftCall(m, procs, ProgFFTReverse, nn, fft.Inverse); err != nil {
			errs <- err
			return
		}
		if err := st.arrayToStreams(m, procs, outs); err != nil {
			errs <- err
			return
		}
	}
	errs <- nil
}

// combine is the middle pipeline stage: one task-parallel process per
// group-C processor, each multiplying the complex values of its pair of
// input streams elementwise (the paper's combine/combine_sub programs).
func combine(m *core.Machine, procs []int,
	inA, inB []stream.Stream[float64], out []*stream.Writer[float64], done chan<- error) {
	for i := range procs {
		i := i
		m.Go(procs[i], func(int) {
			ra, rb := stream.NewReader(inA[i]), stream.NewReader(inB[i])
			w := out[i]
			for {
				ar, okA := ra.Next()
				if !okA {
					done <- nil
					return
				}
				ai, _ := ra.Next()
				br, okB := rb.Next()
				if !okB {
					done <- fmt.Errorf("polymult: combine stream B ended early")
					return
				}
				bi, _ := rb.Next()
				w.Put(ar*br - ai*bi)
				w.Put(ar*bi + ai*br)
			}
		})
	}
}

// phase3 is the forward-FFT stage: read value representation from the
// combine stage, transform, and emit coefficients.
func phase3(m *core.Machine, procs []int, st *stage, nn, ll, pairs int,
	ins []*stream.Reader[float64], out *stream.Writer[float64], errs chan<- error) {
	for k := 0; k < pairs; k++ {
		if err := st.streamsToArray(m, procs, ins); err != nil {
			errs <- err
			return
		}
		if err := st.fftCall(m, procs, ProgFFTNatural, nn, fft.Forward); err != nil {
			errs <- err
			return
		}
		if err := st.putOutput(nn, ll, out); err != nil {
			errs <- err
			return
		}
	}
	errs <- nil
}

// Run multiplies the given polynomial pairs through the pipeline. Each
// input polynomial must have exactly n coefficients with n a power of two;
// the result for each pair is its 2n product coefficients (real parts; the
// imaginary parts, which are zero up to rounding, are discarded).
func Run(m *core.Machine, n int, pairs [][2][]float64) ([][]float64, error) {
	if _, ok := fft.Log2(n); !ok {
		return nil, fmt.Errorf("polymult: n=%d is not a power of two", n)
	}
	nn := 2 * n
	ll, _ := fft.Log2(nn)
	groups, err := SplitGroups(m)
	if err != nil {
		return nil, err
	}
	q := len(groups.A)
	if nn < q {
		return nil, fmt.Errorf("polymult: transform size %d smaller than group size %d", nn, q)
	}
	for i, pr := range pairs {
		if len(pr[0]) != n || len(pr[1]) != n {
			return nil, fmt.Errorf("polymult: pair %d has wrong coefficient counts", i)
		}
	}

	stA, err := newStage(m, nn, groups.A)
	if err != nil {
		return nil, err
	}
	defer stA.free()
	stB, err := newStage(m, nn, groups.B)
	if err != nil {
		return nil, err
	}
	defer stB.free()
	stD, err := newStage(m, nn, groups.D)
	if err != nil {
		return nil, err
	}
	defer stD.free()

	// Initialise the roots of unity on all three FFT groups concurrently
	// (three independent distributed calls, as in the paper's go()).
	rootErrs := make(chan error, 3)
	go func() { rootErrs <- stA.initRoots(m, nn, groups.A) }()
	go func() { rootErrs <- stB.initRoots(m, nn, groups.B) }()
	go func() { rootErrs <- stD.initRoots(m, nn, groups.D) }()
	for i := 0; i < 3; i++ {
		if err := <-rootErrs; err != nil {
			return nil, err
		}
	}

	// Streams: input coefficient streams for the two phase-1 instances;
	// per-processor value streams A->C, B->C, C->D; output stream.
	inA, inB := stream.New[float64](), stream.New[float64]()
	mkStreams := func() ([]stream.Stream[float64], []*stream.Writer[float64], []*stream.Reader[float64]) {
		ss := make([]stream.Stream[float64], q)
		ws := make([]*stream.Writer[float64], q)
		rs := make([]*stream.Reader[float64], q)
		for i := 0; i < q; i++ {
			ss[i] = stream.New[float64]()
			ws[i] = stream.NewWriter(ss[i])
			rs[i] = stream.NewReader(ss[i])
		}
		return ss, ws, rs
	}
	sAC, wAC, _ := mkStreams()
	sBC, wBC, _ := mkStreams()
	_, wCD, rCD := mkStreams()
	outStream := stream.New[float64]()
	outWriter := stream.NewWriter(outStream)

	// Feed the input streams (the paper's read_infile).
	go func() {
		wa, wb := stream.NewWriter(inA), stream.NewWriter(inB)
		for _, pr := range pairs {
			for _, c := range pr[0] {
				wa.Put(c)
			}
			for _, c := range pr[1] {
				wb.Put(c)
			}
		}
		wa.End()
		wb.End()
	}()

	// Launch the pipeline stages.
	errs := make(chan error, 3)
	combineDone := make(chan error, q)
	go phase1(m, groups.A, stA, n, nn, ll, len(pairs), inA, wAC, errs)
	go phase1(m, groups.B, stB, n, nn, ll, len(pairs), inB, wBC, errs)
	combine(m, groups.C, sAC, sBC, wCD, combineDone)
	go phase3(m, groups.D, stD, nn, ll, len(pairs), rCD, outWriter, errs)

	// Collect the output: 2*nn doubles (nn complex values) per pair.
	results := make([][]float64, len(pairs))
	outReader := stream.NewReader(outStream)
	for k := range pairs {
		coeffs := make([]float64, nn)
		for j := 0; j < nn; j++ {
			re, ok := outReader.Next()
			if !ok {
				return nil, fmt.Errorf("polymult: output ended early at pair %d", k)
			}
			if _, ok := outReader.Next(); !ok { // imaginary part (≈0)
				return nil, fmt.Errorf("polymult: output ended mid-complex at pair %d", k)
			}
			coeffs[j] = re
		}
		results[k] = coeffs
	}

	// Join the FFT stages, then release the combine processes by closing
	// the A->C and B->C streams.
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	for i := 0; i < q; i++ {
		wAC[i].End()
		wBC[i].End()
	}
	for i := 0; i < q; i++ {
		if err := <-combineDone; err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Schoolbook multiplies two polynomials directly in O(n²): the baseline
// for E15. The result has 2n coefficients (the last is zero).
func Schoolbook(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b))
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}
