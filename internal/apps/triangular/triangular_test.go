package triangular

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// TestFactorsMatchSequential checks the distributed elimination against
// the sequential reference under every row distribution, including the
// cyclic layouts whose data plane rides the offset-set coordinators.
func TestFactorsMatchSequential(t *testing.T) {
	for _, c := range []struct {
		name string
		dist grid.Decomp
		n, p int
	}{
		{"block", grid.BlockDefault(), 12, 4},
		{"block/uneven", grid.BlockDefault(), 13, 4},
		{"cyclic", grid.CyclicDefault(), 12, 4},
		{"cyclic/uneven", grid.CyclicDefault(), 13, 4},
		{"blockcyclic", grid.BlockCyclicOf(2), 14, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			m := core.New(c.p)
			defer m.Close()
			if err := RegisterPrograms(m); err != nil {
				t.Fatal(err)
			}
			cfg := Config{N: c.n, Dist: c.dist}
			res, err := Run(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := RunSequential(cfg)
			if dev := MaxDeviation(res.Factors, want); dev > 1e-12 {
				t.Fatalf("factors deviate from sequential by %g", dev)
			}
			if res.WorkUnits <= 0 {
				t.Fatalf("work units %v", res.WorkUnits)
			}
		})
	}
}

// TestPanelHandoff pins the redistribution plane's payoff on the
// block→cyclic panel pipeline: both modes reproduce the sequential
// factors exactly, and the direct owner↔owner handoff beats the
// gather-then-scatter bounce on actual message count and on modeled
// critical-path hops. The counts are exact: per panel the direct path
// sends 1 coordinator request + (remote source ? 1 ship order : 0) +
// (P-1) owner-to-owner ships, while the bounce sends the read
// coordinator+owner pair (free for the caller-local panel 0) plus the
// write coordinator + (P-1) owner writes.
func TestPanelHandoff(t *testing.T) {
	const n, p = 16, 4
	results := map[bool]*PanelResult{}
	for _, bounce := range []bool{false, true} {
		m := core.New(p)
		if err := RegisterPrograms(m); err != nil {
			m.Close()
			t.Fatal(err)
		}
		res, err := RunPanelHandoff(m, PanelConfig{N: n, Bounce: bounce})
		m.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := RunSequential(Config{N: n})
		if dev := MaxDeviation(res.Factors, want); dev > 1e-12 {
			t.Fatalf("bounce=%v factors deviate from sequential by %g", bounce, dev)
		}
		results[bounce] = res
	}
	direct, bounce := results[false], results[true]
	// direct: panel 0 costs P msgs, each of the P-1 remote panels P+1.
	if want := uint64(p + (p-1)*(p+1)); direct.HandoffMsgs != want {
		t.Fatalf("direct messages = %d, want %d", direct.HandoffMsgs, want)
	}
	// bounce: panel 0 costs P msgs (local read is free), remote panels P+2.
	if want := uint64(p + (p-1)*(p+2)); bounce.HandoffMsgs != want {
		t.Fatalf("bounce messages = %d, want %d", bounce.HandoffMsgs, want)
	}
	if wd, wb := 2+3*(p-1), 2+4*(p-1); direct.HandoffHops != wd || bounce.HandoffHops != wb {
		t.Fatalf("hops = %d/%d, want %d/%d", direct.HandoffHops, bounce.HandoffHops, wd, wb)
	}
	if direct.HandoffMsgs >= bounce.HandoffMsgs || direct.HandoffHops >= bounce.HandoffHops {
		t.Fatalf("direct (%d msgs, %d hops) does not beat bounce (%d msgs, %d hops)",
			direct.HandoffMsgs, direct.HandoffHops, bounce.HandoffMsgs, bounce.HandoffHops)
	}
}

// TestCyclicBalancesWork pins the load-balance argument deterministically:
// the modeled makespan (max active-row steps over copies) of the cyclic
// layout is strictly below the block layout's on every swept shape.
func TestCyclicBalancesWork(t *testing.T) {
	for _, c := range []struct{ n, p int }{{16, 4}, {32, 8}} {
		t.Run(fmt.Sprintf("n=%d/P=%d", c.n, c.p), func(t *testing.T) {
			units := map[string]float64{}
			for name, dist := range map[string]grid.Decomp{
				"block": grid.BlockDefault(), "cyclic": grid.CyclicDefault(),
			} {
				m := core.New(c.p)
				if err := RegisterPrograms(m); err != nil {
					m.Close()
					t.Fatal(err)
				}
				res, err := Run(m, Config{N: c.n, Dist: dist})
				m.Close()
				if err != nil {
					t.Fatal(err)
				}
				units[name] = res.WorkUnits
			}
			if units["cyclic"] >= units["block"] {
				t.Fatalf("cyclic makespan %v not below block %v", units["cyclic"], units["block"])
			}
		})
	}
}
