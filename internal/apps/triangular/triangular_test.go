package triangular

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// TestFactorsMatchSequential checks the distributed elimination against
// the sequential reference under every row distribution, including the
// cyclic layouts whose data plane rides the offset-set coordinators.
func TestFactorsMatchSequential(t *testing.T) {
	for _, c := range []struct {
		name string
		dist grid.Decomp
		n, p int
	}{
		{"block", grid.BlockDefault(), 12, 4},
		{"block/uneven", grid.BlockDefault(), 13, 4},
		{"cyclic", grid.CyclicDefault(), 12, 4},
		{"cyclic/uneven", grid.CyclicDefault(), 13, 4},
		{"blockcyclic", grid.BlockCyclicOf(2), 14, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			m := core.New(c.p)
			defer m.Close()
			if err := RegisterPrograms(m); err != nil {
				t.Fatal(err)
			}
			cfg := Config{N: c.n, Dist: c.dist}
			res, err := Run(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := RunSequential(cfg)
			if dev := MaxDeviation(res.Factors, want); dev > 1e-12 {
				t.Fatalf("factors deviate from sequential by %g", dev)
			}
			if res.WorkUnits <= 0 {
				t.Fatalf("work units %v", res.WorkUnits)
			}
		})
	}
}

// TestCyclicBalancesWork pins the load-balance argument deterministically:
// the modeled makespan (max active-row steps over copies) of the cyclic
// layout is strictly below the block layout's on every swept shape.
func TestCyclicBalancesWork(t *testing.T) {
	for _, c := range []struct{ n, p int }{{16, 4}, {32, 8}} {
		t.Run(fmt.Sprintf("n=%d/P=%d", c.n, c.p), func(t *testing.T) {
			units := map[string]float64{}
			for name, dist := range map[string]grid.Decomp{
				"block": grid.BlockDefault(), "cyclic": grid.CyclicDefault(),
			} {
				m := core.New(c.p)
				if err := RegisterPrograms(m); err != nil {
					m.Close()
					t.Fatal(err)
				}
				res, err := Run(m, Config{N: c.n, Dist: dist})
				m.Close()
				if err != nil {
					t.Fatal(err)
				}
				units[name] = res.WorkUnits
			}
			if units["cyclic"] >= units["block"] {
				t.Fatalf("cyclic makespan %v not below block %v", units["cyclic"], units["block"])
			}
		})
	}
}
