// Package triangular implements the workload the cyclic distribution
// exists for: a right-looking triangular update — the k-loop of an LU
// factorization without pivoting. At step k the owner of row k broadcasts
// it and every copy updates its rows with global index greater than k, so
// the active region shrinks from the top as the factorization proceeds.
//
// Under a block row distribution the processors owning the leading rows
// fall idle early and the owner of the trailing block carries almost the
// whole critical path; under a cyclic distribution every processor keeps
// roughly (n-k)/P active rows at every step and the work stays balanced —
// the classic argument for cyclic layouts in LU-style factorizations
// (ROADMAP's "load-balanced workloads"). The per-row update cost can be
// inflated with a modeled delay (Config.WorkPerRow) so the load-balance
// effect is measurable as wall time on a machine whose copies timeshare
// cores: sleeps overlap across copies exactly like compute on dedicated
// processors, making the makespan the maximum per-copy work, not the sum.
//
// The numerical content is real and verified: Run's factors must match
// RunSequential's elimination exactly, and both the initial fill and the
// final snapshot travel through the bulk data plane of whatever
// distribution the matrix uses — on a cyclic matrix this exercises the
// offset-set rectangle coordinators end to end.
package triangular

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/spmd"
)

// ProgramName is the registered name of the data-parallel program.
const ProgramName = "triangular:update"

// Config describes one factorization run.
type Config struct {
	N          int           // matrix order
	Dist       grid.Decomp   // row distribution (block, cyclic, block-cyclic)
	WorkPerRow time.Duration // modeled cost added per active row per step
}

// Result reports one run.
type Result struct {
	N         int
	P         int
	Elapsed   time.Duration // wall time of the distributed call
	WorkUnits float64       // modeled makespan: max over copies of active-row steps
	Factors   []float64     // dense row-major LU factors (L below, U on/above)
}

// Element returns the deterministic, diagonally dominant test matrix entry
// at (i, j): no pivoting is needed and the factors stay bounded.
func Element(n, i, j int) float64 {
	v := float64((i*7+j*13)%11) - 5
	if i == j {
		v += float64(3 * n)
	}
	return v
}

// RegisterPrograms registers the update program. Its parameter list is
// (N, RowDist, WorkPerRow, local(A), reduce(max, WorkUnits)): the row
// distribution travels as a constant so every copy can resolve row
// ownership with the same grid.Dist arithmetic the array manager uses.
func RegisterPrograms(m *core.Machine) error {
	return m.Register(ProgramName, func(w *spmd.World, a *dcall.Args) {
		n := a.Int(0)
		d := a.Const(1).(grid.Dist)
		work := a.Const(2).(time.Duration)
		sec := a.Section(3).F
		p := w.Size()
		me := w.Rank()
		cnt := d.Count(n, p, me) // rows this copy actually owns

		units := 0
		for k := 0; k < n-1; k++ {
			owner, lrow := d.Owner(k, p)
			var pivot []float64
			if me == owner {
				// A fresh snapshot per step: receivers hold the slice
				// beyond this iteration.
				pivot = append([]float64(nil), sec[lrow*n:(lrow+1)*n]...)
				for r := 0; r < p; r++ {
					if r != me {
						if err := w.Send(r, k, pivot); err != nil {
							panic(err)
						}
					}
				}
			} else {
				var err error
				pivot, err = w.RecvFloats(owner, k)
				if err != nil {
					panic(err)
				}
			}
			active := 0
			for l := 0; l < cnt; l++ {
				g := d.Global(me, l, p)
				if g <= k {
					continue
				}
				active++
				row := sec[l*n : (l+1)*n]
				f := row[k] / pivot[k]
				for j := k + 1; j < n; j++ {
					row[j] -= f * pivot[j]
				}
				row[k] = f // store the multiplier (the L entry)
			}
			units += active
			if work > 0 && active > 0 {
				// The modeled per-row cost: sleeps overlap across copies,
				// so wall time tracks the busiest copy.
				time.Sleep(time.Duration(active) * work)
			}
		}
		a.Reduction(4)[0] = float64(units)
	})
}

// Run creates the row-distributed matrix, fills it with the test pattern
// through the bulk data plane, factors it with one distributed call over
// all processors, and snapshots the factors back.
func Run(m *core.Machine, cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("triangular: order %d too small", cfg.N)
	}
	procs := m.AllProcs()
	a, err := m.NewArray(core.ArraySpec{
		Dims:    []int{cfg.N, cfg.N},
		Procs:   procs,
		Distrib: []grid.Decomp{cfg.Dist, grid.NoDecomp()},
	})
	if err != nil {
		return nil, err
	}
	defer a.Free()
	if err := a.Fill(func(idx []int) float64 { return Element(cfg.N, idx[0], idx[1]) }); err != nil {
		return nil, err
	}
	meta, err := a.Meta()
	if err != nil {
		return nil, err
	}
	maxUnits := defval.New[[]float64]()
	maxCombine := func(x, y []float64) []float64 {
		if y[0] > x[0] {
			return y
		}
		return x
	}
	t0 := time.Now()
	if err := m.Call(procs, ProgramName,
		dcall.Const(cfg.N), dcall.Const(meta.Dist(0)), dcall.Const(cfg.WorkPerRow),
		a.Param(), dcall.Reduce(1, maxCombine, maxUnits)); err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)
	factors, err := a.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Result{
		N: cfg.N, P: m.P(), Elapsed: elapsed,
		WorkUnits: maxUnits.Value()[0], Factors: factors,
	}, nil
}

// --- block→cyclic panel handoff: the redistribution plane's workload ---

// PanelConfig describes one panel-handoff run. The matrix is born in
// column-panel form — A is (*, block), so panel k (columns [k·b, (k+1)·b))
// lives wholly on processor k, the layout a panel factorization produces —
// but the triangular update wants row-cyclic balance, so every panel is
// copied into W, a (cyclic, *) matrix, before the update runs. Bounce
// selects the gather-then-scatter baseline: read each panel back to the
// calling processor and write it out again, instead of the direct
// owner↔owner redistribution.
type PanelConfig struct {
	N          int           // matrix order; must be a multiple of P
	Bounce     bool          // use the read-then-write baseline
	WorkPerRow time.Duration // modeled cost forwarded to the update
}

// PanelResult reports one run. HandoffMsgs counts the router messages the
// P panel transfers actually sent; HandoffHops is the modeled
// critical-path hop count of the same transfers — what an interconnect
// charging per-hop latency (the E22/E26 20µs regime) makes the caller
// wait for, with concurrent messages of one phase overlapped into a
// single hop and request replies riding in-process channels for free.
type PanelResult struct {
	N, P        int
	HandoffMsgs uint64
	HandoffHops int
	HandoffTime time.Duration // wall time of the handoff loop
	WorkUnits   float64       // modeled makespan of the update on W
	Factors     []float64     // dense row-major LU factors from W
}

// RunPanelHandoff creates A as (*, block) column panels, fills it with the
// test pattern, moves each panel into the (cyclic, *) matrix W — directly
// via Redistribute or through the bounce baseline — and then factors W
// in place with the update program, returning the handoff cost and the
// verified factors.
func RunPanelHandoff(m *core.Machine, cfg PanelConfig) (*PanelResult, error) {
	p := m.P()
	if cfg.N < 2 || cfg.N%p != 0 {
		return nil, fmt.Errorf("triangular: order %d must be a positive multiple of P=%d", cfg.N, p)
	}
	n := cfg.N
	b := n / p
	procs := m.AllProcs()
	a, err := m.NewArray(core.ArraySpec{
		Dims:    []int{n, n},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.NoDecomp(), grid.BlockDefault()},
	})
	if err != nil {
		return nil, err
	}
	defer a.Free()
	if err := a.Fill(func(idx []int) float64 { return Element(n, idx[0], idx[1]) }); err != nil {
		return nil, err
	}
	w, err := m.NewArray(core.ArraySpec{
		Dims:    []int{n, n},
		Procs:   procs,
		Distrib: []grid.Decomp{grid.CyclicDefault(), grid.NoDecomp()},
	})
	if err != nil {
		return nil, err
	}
	defer w.Free()

	router := m.VM.Router()
	var buf []float64
	if cfg.Bounce {
		buf = make([]float64, n*b)
	}
	before := router.Sent()
	hops := 0
	t0 := time.Now()
	for k := 0; k < p; k++ {
		lo, hi := []int{0, k * b}, []int{n, (k + 1) * b}
		srcLocal := k == 0 // panel 0 lives on the calling processor
		if cfg.Bounce {
			if err := a.ReadBlockInto(lo, hi, buf); err != nil {
				return nil, err
			}
			if err := w.WriteBlock(lo, hi, buf); err != nil {
				return nil, err
			}
			// Read: the wholly-local fast path is free; a remote panel
			// costs the coordinator self-send plus the owner request
			// (replies ride in-process channels, not the router).
			if !srcLocal {
				hops += 2
			}
			// Write: coordinator self-send, then the per-owner writes
			// overlap into one hop.
			hops += 2
		} else {
			if err := w.RedistributeFrom(a, lo, hi); err != nil {
				return nil, err
			}
			// Coordinator self-send, then (for a remote panel) the ship
			// order to the source owner, then the overlapped
			// owner-to-owner ships.
			hops += 2
			if !srcLocal {
				hops++
			}
		}
	}
	handoffTime := time.Since(t0)
	msgs := router.Sent() - before

	meta, err := w.Meta()
	if err != nil {
		return nil, err
	}
	maxUnits := defval.New[[]float64]()
	maxCombine := func(x, y []float64) []float64 {
		if y[0] > x[0] {
			return y
		}
		return x
	}
	if err := m.Call(procs, ProgramName,
		dcall.Const(n), dcall.Const(meta.Dist(0)), dcall.Const(cfg.WorkPerRow),
		w.Param(), dcall.Reduce(1, maxCombine, maxUnits)); err != nil {
		return nil, err
	}
	factors, err := w.Snapshot()
	if err != nil {
		return nil, err
	}
	return &PanelResult{
		N: n, P: p,
		HandoffMsgs: msgs, HandoffHops: hops, HandoffTime: handoffTime,
		WorkUnits: maxUnits.Value()[0], Factors: factors,
	}, nil
}

// RunSequential performs the same elimination on a dense matrix — the
// reference the distributed factors must match exactly (identical
// floating-point operation order per row).
func RunSequential(cfg Config) []float64 {
	n := cfg.N
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = Element(n, i, j)
		}
	}
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] / a[k*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			a[i*n+k] = f
		}
	}
	return a
}

// MaxDeviation returns the largest absolute element difference between two
// dense matrices.
func MaxDeviation(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		worst = math.Max(worst, math.Abs(a[i]-b[i]))
	}
	return worst
}
