package animation

import (
	"testing"

	"repro/internal/core"
)

var testCfg = Config{Frames: 5, Height: 8, Width: 10, Groups: 2}

func TestChecksumsMatchSequential(t *testing.T) {
	want := RunSequential(testCfg)
	for _, pg := range []struct{ p, groups int }{{2, 1}, {4, 2}, {4, 4}, {8, 2}} {
		cfg := testCfg
		cfg.Groups = pg.groups
		m := core.New(pg.p)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		got, err := Run(m, cfg)
		if err != nil {
			t.Fatalf("P=%d G=%d: %v", pg.p, pg.groups, err)
		}
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("P=%d G=%d: frame %d checksum %v, want %v", pg.p, pg.groups, f, got[f], want[f])
			}
		}
		m.Close()
	}
}

// TestPreviewsMatchSequential pins the strided down-sampling path: the
// previews RunPreviews fetches through ReadBlockStridedInto must equal the
// per-element reference pixel-for-pixel, including a step that does not
// divide the frame height (the last sampled row rides a partial stride).
func TestPreviewsMatchSequential(t *testing.T) {
	for _, step := range []int{1, 2, 3, 4} {
		cfg := testCfg
		m := core.New(4)
		if err := RegisterPrograms(m); err != nil {
			t.Fatal(err)
		}
		sums, previews, err := RunPreviews(m, cfg, step)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		wantSums := RunSequential(cfg)
		for f := range wantSums {
			if sums[f] != wantSums[f] {
				t.Fatalf("step %d: frame %d checksum %v, want %v", step, f, sums[f], wantSums[f])
			}
		}
		want := PreviewSequential(cfg, step)
		if len(previews) != len(want) {
			t.Fatalf("step %d: %d previews for %d frames", step, len(previews), len(want))
		}
		for f := range want {
			if previews[f].Rows != want[f].Rows || previews[f].Cols != want[f].Cols {
				t.Fatalf("step %d: frame %d preview %dx%d, want %dx%d", step, f,
					previews[f].Rows, previews[f].Cols, want[f].Rows, want[f].Cols)
			}
			for i := range want[f].Data {
				if previews[f].Data[i] != want[f].Data[i] {
					t.Fatalf("step %d: frame %d preview pixel %d = %v, want %v",
						step, f, i, previews[f].Data[i], want[f].Data[i])
				}
			}
		}
		m.Close()
	}
	// A bad step is rejected.
	m := core.New(2)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunPreviews(m, Config{Frames: 1, Height: 8, Width: 8, Groups: 1}, 0); err == nil {
		t.Fatal("zero preview step must fail")
	}
}

func TestFramesDiffer(t *testing.T) {
	// The animation animates: consecutive frames have different content.
	sums := RunSequential(Config{Frames: 3, Height: 8, Width: 8, Groups: 1})
	if sums[0] == sums[1] && sums[1] == sums[2] {
		t.Fatal("all frames identical; viewport drift broken")
	}
}

func TestValidation(t *testing.T) {
	m := core.New(4)
	defer m.Close()
	if err := RegisterPrograms(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, Config{Frames: 1, Height: 8, Width: 8, Groups: 3}); err == nil {
		t.Fatal("groups not dividing P must fail")
	}
	if _, err := Run(m, Config{Frames: 1, Height: 7, Width: 8, Groups: 2}); err == nil {
		t.Fatal("height not divisible by group size must fail")
	}
	if _, err := Run(m, Config{Frames: 1, Height: 8, Width: 8, Groups: 0}); err == nil {
		t.Fatal("zero groups must fail")
	}
}

func TestPixelDeterministic(t *testing.T) {
	a := Pixel(2, 16, 16, 3, 4)
	b := Pixel(2, 16, 16, 3, 4)
	if a != b {
		t.Fatal("Pixel not deterministic")
	}
	if a < 0 || a > MaxIter {
		t.Fatalf("Pixel out of range: %v", a)
	}
}
