// Package animation reproduces the paper's inherently-parallel problem
// class (§2.3.4, Fig 2.4): generation of frames for a computer animation,
// where "two or more frames can be generated independently and
// concurrently, each by a different data-parallel program".
//
// Each frame is an escape-time fractal rendering (a Mandelbrot-style
// iteration with a per-frame viewport shift) into a distributed image
// array; the machine's processors are split into independent groups, and
// frames are dispatched round-robin to groups, with all groups rendering
// concurrently. A reduction variable returns each frame's checksum to the
// task level, so the top-level program needs no per-pixel reads.
package animation

import (
	"fmt"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/spmd"
)

// ProgRender is the data-parallel frame renderer.
const ProgRender = "animation:render"

// MaxIter bounds the escape-time iteration.
const MaxIter = 48

// Pixel computes the escape count for pixel (i,j) of the given frame —
// the shared definition used by both the distributed renderer and the
// sequential reference.
func Pixel(frame, height, width, i, j int) float64 {
	// Viewport drifts with the frame index to animate.
	cx := -2.0 + 3.0*float64(j)/float64(width) + 0.02*float64(frame)
	cy := -1.5 + 3.0*float64(i)/float64(height) - 0.01*float64(frame)
	x, y := 0.0, 0.0
	for it := 0; it < MaxIter; it++ {
		x2, y2 := x*x, y*y
		if x2+y2 > 4 {
			return float64(it)
		}
		x, y = x2-y2+cx, 2*x*y+cy
	}
	return float64(MaxIter)
}

// RegisterPrograms registers the renderer.
//
// Parameters: (frame, height, width, local(image), reduce(sum, checksum)).
// The image is distributed by block rows over the rendering group.
func RegisterPrograms(m *core.Machine) error {
	return m.Register(ProgRender, func(w *spmd.World, a *dcall.Args) {
		frame := a.Int(0)
		height := a.Int(1)
		width := a.Int(2)
		img := a.Section(3).F
		if err := linalg.MatFillIndex(w, img, height, width, func(i, j int) float64 {
			return Pixel(frame, height, width, i, j)
		}); err != nil {
			panic(err)
		}
		sum := 0.0
		for _, v := range img {
			sum += v
		}
		a.Reduction(4)[0] = sum
	})
}

// Config describes a rendering run.
type Config struct {
	Frames int
	Height int // divisible by the group size
	Width  int
	Groups int // number of independent processor groups (divides P)
}

// Preview is one frame's down-sampled image: every Step-th row and column
// of the rendered frame, in row-major order. The task level fetches it
// from the distributed image through the strided bulk plane — one message
// per owning processor, not one offset per sampled pixel.
type Preview struct {
	Step, Rows, Cols int
	Data             []float64 // Rows x Cols, row-major
}

// Run renders all frames, returning per-frame checksums. Frames are
// assigned to groups round-robin; each group renders its frames in
// sequence, all groups concurrently — Fig 2.4 with more than two frames in
// flight.
func Run(m *core.Machine, cfg Config) ([]float64, error) {
	sums, _, err := run(m, cfg, 0)
	return sums, err
}

// RunPreviews is Run plus task-level down-sampling: after each frame is
// rendered, its preview (every step-th row and column) is pulled out of
// the distributed image with a single ReadBlockStridedInto per frame —
// the strided plane's replacement for the per-pixel GatherElements index
// vector a down-sampler otherwise needs.
func RunPreviews(m *core.Machine, cfg Config, step int) ([]float64, []Preview, error) {
	if step < 1 {
		return nil, nil, fmt.Errorf("animation: preview step %d (want >= 1)", step)
	}
	return run(m, cfg, step)
}

func run(m *core.Machine, cfg Config, step int) ([]float64, []Preview, error) {
	p := m.P()
	if cfg.Groups < 1 || p%cfg.Groups != 0 {
		return nil, nil, fmt.Errorf("animation: %d groups do not divide %d processors", cfg.Groups, p)
	}
	gsize := p / cfg.Groups
	if cfg.Height%gsize != 0 {
		return nil, nil, fmt.Errorf("animation: height %d not divisible by group size %d", cfg.Height, gsize)
	}

	// One image array per group, reused across that group's frames.
	images := make([]*core.Array, cfg.Groups)
	groups := make([][]int, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		groups[g] = m.Procs(g*gsize, 1, gsize)
		img, err := m.NewArray(core.ArraySpec{
			Dims:    []int{cfg.Height, cfg.Width},
			Procs:   groups[g],
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		})
		if err != nil {
			return nil, nil, err
		}
		defer img.Free()
		images[g] = img
	}

	sums := make([]float64, cfg.Frames)
	var previews []Preview
	prows, pcols := 0, 0
	if step > 0 {
		previews = make([]Preview, cfg.Frames)
		prows = (cfg.Height + step - 1) / step
		pcols = (cfg.Width + step - 1) / step
	}
	errs := make([]error, cfg.Groups)
	sumCombine := func(a, b []float64) []float64 { return []float64{a[0] + b[0]} }

	compose.ParFor(cfg.Groups, func(g int) {
		for frame := g; frame < cfg.Frames; frame += cfg.Groups {
			out := defval.New[[]float64]()
			err := m.CallOn(groups[g][0], groups[g], ProgRender,
				dcall.Const(frame), dcall.Const(cfg.Height), dcall.Const(cfg.Width),
				images[g].Param(),
				dcall.Reduce(1, sumCombine, out))
			if err != nil {
				errs[g] = fmt.Errorf("frame %d: %w", frame, err)
				return
			}
			sums[frame] = out.Value()[0]
			if step > 0 {
				data := make([]float64, prows*pcols)
				if err := images[g].ReadBlockStridedInto(
					[]int{0, 0}, []int{cfg.Height, cfg.Width}, []int{step, step}, data); err != nil {
					errs[g] = fmt.Errorf("frame %d preview: %w", frame, err)
					return
				}
				previews[frame] = Preview{Step: step, Rows: prows, Cols: pcols, Data: data}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return sums, previews, nil
}

// PreviewSequential computes the down-sampled frames directly from the
// pixel function: the per-element reference RunPreviews must match.
func PreviewSequential(cfg Config, step int) []Preview {
	prows := (cfg.Height + step - 1) / step
	pcols := (cfg.Width + step - 1) / step
	out := make([]Preview, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		data := make([]float64, prows*pcols)
		for i := 0; i < prows; i++ {
			for j := 0; j < pcols; j++ {
				data[i*pcols+j] = Pixel(f, cfg.Height, cfg.Width, i*step, j*step)
			}
		}
		out[f] = Preview{Step: step, Rows: prows, Cols: pcols, Data: data}
	}
	return out
}

// RunSequential renders the same frames serially with no parallel
// machinery: the E4 reference and baseline.
func RunSequential(cfg Config) []float64 {
	sums := make([]float64, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		s := 0.0
		for i := 0; i < cfg.Height; i++ {
			for j := 0; j < cfg.Width; j++ {
				s += Pixel(f, cfg.Height, cfg.Width, i, j)
			}
		}
		sums[f] = s
	}
	return sums
}
