// Package animation reproduces the paper's inherently-parallel problem
// class (§2.3.4, Fig 2.4): generation of frames for a computer animation,
// where "two or more frames can be generated independently and
// concurrently, each by a different data-parallel program".
//
// Each frame is an escape-time fractal rendering (a Mandelbrot-style
// iteration with a per-frame viewport shift) into a distributed image
// array; the machine's processors are split into independent groups, and
// frames are dispatched round-robin to groups, with all groups rendering
// concurrently. A reduction variable returns each frame's checksum to the
// task level, so the top-level program needs no per-pixel reads.
package animation

import (
	"fmt"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/dcall"
	"repro/internal/defval"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/spmd"
)

// ProgRender is the data-parallel frame renderer.
const ProgRender = "animation:render"

// MaxIter bounds the escape-time iteration.
const MaxIter = 48

// Pixel computes the escape count for pixel (i,j) of the given frame —
// the shared definition used by both the distributed renderer and the
// sequential reference.
func Pixel(frame, height, width, i, j int) float64 {
	// Viewport drifts with the frame index to animate.
	cx := -2.0 + 3.0*float64(j)/float64(width) + 0.02*float64(frame)
	cy := -1.5 + 3.0*float64(i)/float64(height) - 0.01*float64(frame)
	x, y := 0.0, 0.0
	for it := 0; it < MaxIter; it++ {
		x2, y2 := x*x, y*y
		if x2+y2 > 4 {
			return float64(it)
		}
		x, y = x2-y2+cx, 2*x*y+cy
	}
	return float64(MaxIter)
}

// RegisterPrograms registers the renderer.
//
// Parameters: (frame, height, width, local(image), reduce(sum, checksum)).
// The image is distributed by block rows over the rendering group.
func RegisterPrograms(m *core.Machine) error {
	return m.Register(ProgRender, func(w *spmd.World, a *dcall.Args) {
		frame := a.Int(0)
		height := a.Int(1)
		width := a.Int(2)
		img := a.Section(3).F
		if err := linalg.MatFillIndex(w, img, height, width, func(i, j int) float64 {
			return Pixel(frame, height, width, i, j)
		}); err != nil {
			panic(err)
		}
		sum := 0.0
		for _, v := range img {
			sum += v
		}
		a.Reduction(4)[0] = sum
	})
}

// Config describes a rendering run.
type Config struct {
	Frames int
	Height int // divisible by the group size
	Width  int
	Groups int // number of independent processor groups (divides P)
}

// Run renders all frames, returning per-frame checksums. Frames are
// assigned to groups round-robin; each group renders its frames in
// sequence, all groups concurrently — Fig 2.4 with more than two frames in
// flight.
func Run(m *core.Machine, cfg Config) ([]float64, error) {
	p := m.P()
	if cfg.Groups < 1 || p%cfg.Groups != 0 {
		return nil, fmt.Errorf("animation: %d groups do not divide %d processors", cfg.Groups, p)
	}
	gsize := p / cfg.Groups
	if cfg.Height%gsize != 0 {
		return nil, fmt.Errorf("animation: height %d not divisible by group size %d", cfg.Height, gsize)
	}

	// One image array per group, reused across that group's frames.
	images := make([]*core.Array, cfg.Groups)
	groups := make([][]int, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		groups[g] = m.Procs(g*gsize, 1, gsize)
		img, err := m.NewArray(core.ArraySpec{
			Dims:    []int{cfg.Height, cfg.Width},
			Procs:   groups[g],
			Distrib: []grid.Decomp{grid.BlockDefault(), grid.NoDecomp()},
		})
		if err != nil {
			return nil, err
		}
		defer img.Free()
		images[g] = img
	}

	sums := make([]float64, cfg.Frames)
	errs := make([]error, cfg.Groups)
	sumCombine := func(a, b []float64) []float64 { return []float64{a[0] + b[0]} }

	compose.ParFor(cfg.Groups, func(g int) {
		for frame := g; frame < cfg.Frames; frame += cfg.Groups {
			out := defval.New[[]float64]()
			err := m.CallOn(groups[g][0], groups[g], ProgRender,
				dcall.Const(frame), dcall.Const(cfg.Height), dcall.Const(cfg.Width),
				images[g].Param(),
				dcall.Reduce(1, sumCombine, out))
			if err != nil {
				errs[g] = fmt.Errorf("frame %d: %w", frame, err)
				return
			}
			sums[frame] = out.Value()[0]
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// RunSequential renders the same frames serially with no parallel
// machinery: the E4 reference and baseline.
func RunSequential(cfg Config) []float64 {
	sums := make([]float64, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		s := 0.0
		for i := 0; i < cfg.Height; i++ {
			for j := 0; j < cfg.Width; j++ {
				s += Pixel(f, cfg.Height, cfg.Width, i, j)
			}
		}
		sums[f] = s
	}
	return sums
}
