// Uniform stat export: the router's fault counters and the membership
// monitor's counters reduce to trace.Stat lists so the CLI and the
// experiment harness report every plane in the same format.
package msg

import "repro/internal/trace"

// Stats renders the fault counters as a uniform stat list.
func (s FaultStats) Stats() []trace.Stat {
	return []trace.Stat{
		{Name: "dropped", Value: s.Dropped},
		{Name: "duplicated", Value: s.Duplicated},
		{Name: "reordered", Value: s.Reordered},
		{Name: "down_dropped", Value: s.DownDropped},
	}
}

// Stats renders the membership counters as a uniform stat list.
func (s MembershipStats) Stats() []trace.Stat {
	return []trace.Stat{
		{Name: "pings", Value: s.Pings},
		{Name: "acks", Value: s.Acks},
		{Name: "transitions", Value: s.Transitions},
		{Name: "dropped_events", Value: s.DroppedEvents},
	}
}
