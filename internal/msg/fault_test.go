package msg

import (
	"errors"
	"testing"
	"time"
)

func tag(kind int) Tag { return Tag{Class: ClassData, Kind: kind} }

func TestFaultDropAll(t *testing.T) {
	r := NewRouter(2)
	r.SetFaultPlan(&FaultPlan{Seed: 1, Rule: FaultRule{Drop: 1}})
	for i := 0; i < 10; i++ {
		if err := r.Send(0, 1, tag(1), i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if n := r.Pending(1); n != 0 {
		t.Fatalf("pending = %d, want 0 (all dropped)", n)
	}
	if st := r.FaultStats(); st.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", st.Dropped)
	}
	if r.Sent() != 0 {
		t.Fatalf("Sent = %d, want 0", r.Sent())
	}
}

func TestFaultDupAll(t *testing.T) {
	r := NewRouter(2)
	r.SetFaultPlan(&FaultPlan{Seed: 1, Rule: FaultRule{Dup: 1}})
	for i := 0; i < 5; i++ {
		if err := r.Send(0, 1, tag(1), i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if n := r.Pending(1); n != 10 {
		t.Fatalf("pending = %d, want 10 (every message duplicated)", n)
	}
	if st := r.FaultStats(); st.Duplicated != 5 {
		t.Fatalf("Duplicated = %d, want 5", st.Duplicated)
	}
	// Both copies are received independently.
	seen := map[int]int{}
	for i := 0; i < 10; i++ {
		m, err := r.Recv(1, func(m Message) bool { return true })
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		seen[m.Data.(int)]++
	}
	for i := 0; i < 5; i++ {
		if seen[i] != 2 {
			t.Fatalf("value %d received %d times, want 2", i, seen[i])
		}
	}
}

func TestFaultReorderSwapsNeighbours(t *testing.T) {
	r := NewRouter(2)
	r.SetFaultPlan(&FaultPlan{Seed: 1, Rule: FaultRule{Reorder: 1}})
	for i := 0; i < 3; i++ {
		if err := r.Send(0, 1, tag(1), i); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	// Every put swaps with its predecessor: [0] -> [1,0] -> [1,2,0].
	want := []int{1, 2, 0}
	for _, w := range want {
		m, err := r.Recv(1, func(m Message) bool { return true })
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if m.Data.(int) != w {
			t.Fatalf("got %d, want %d (FIFO broken by reorder rule)", m.Data.(int), w)
		}
	}
	if st := r.FaultStats(); st.Reordered != 2 {
		t.Fatalf("Reordered = %d, want 2 (first message had no predecessor)", st.Reordered)
	}
}

func TestFaultSeedDeterminism(t *testing.T) {
	deliveries := func() []int {
		r := NewRouter(2)
		r.SetFaultPlan(&FaultPlan{Seed: 42, Rule: FaultRule{Drop: 0.5}})
		for i := 0; i < 100; i++ {
			if err := r.Send(0, 1, tag(1), i); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		var got []int
		for r.Pending(1) > 0 {
			m, err := r.Recv(1, func(m Message) bool { return true })
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			got = append(got, m.Data.(int))
		}
		return got
	}
	a := deliveries()
	bb := deliveries()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("drop=0.5 delivered %d/100, suspicious", len(a))
	}
	if len(a) != len(bb) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(bb))
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], bb[i])
		}
	}
}

func TestFaultPairOverride(t *testing.T) {
	r := NewRouter(2)
	r.SetFaultPlan(&FaultPlan{
		Seed:  1,
		Pairs: map[[2]int]FaultRule{{0, 1}: {Drop: 1}},
	})
	if err := r.Send(0, 1, tag(1), "x"); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := r.Send(1, 0, tag(1), "y"); err != nil {
		t.Fatalf("send: %v", err)
	}
	if r.Pending(1) != 0 {
		t.Fatalf("0->1 should be dropped by the pair rule")
	}
	if r.Pending(0) != 1 {
		t.Fatalf("1->0 should be delivered (default rule is reliable)")
	}
}

func TestKillProcessor(t *testing.T) {
	r := NewRouter(3)
	// A receiver blocked at the killed processor is woken with
	// ErrProcessorDown.
	errc := make(chan error, 1)
	go func() {
		_, err := r.Recv(1, func(m Message) bool { return true })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := r.KillProcessor(1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrProcessorDown) {
			t.Fatalf("blocked recv got %v, want ErrProcessorDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receiver not woken by KillProcessor")
	}
	// Sends to the dead processor vanish silently.
	if err := r.Send(0, 1, tag(1), "x"); err != nil {
		t.Fatalf("send to dead proc: %v", err)
	}
	if r.Pending(1) != 0 {
		t.Fatal("message queued at a dead processor")
	}
	if st := r.FaultStats(); st.DownDropped != 1 {
		t.Fatalf("DownDropped = %d, want 1", st.DownDropped)
	}
	if !r.Down(1) || r.Down(0) || r.Down(2) {
		t.Fatalf("Down: got (%v,%v,%v), want (false-ish pattern) 1 down only",
			r.Down(0), r.Down(1), r.Down(2))
	}
	// Idempotent; live processors unaffected.
	if err := r.KillProcessor(1); err != nil {
		t.Fatalf("second kill: %v", err)
	}
	if err := r.Send(0, 2, tag(1), "y"); err != nil {
		t.Fatalf("send to live proc: %v", err)
	}
	if m, err := r.Recv(2, func(m Message) bool { return true }); err != nil || m.Data != "y" {
		t.Fatalf("live proc recv: %v %v", m.Data, err)
	}
}

func TestRecvTimeout(t *testing.T) {
	r := NewRouter(2)
	start := time.Now()
	_, err := r.RecvTimeout(1, func(m Message) bool { return true }, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("timed out after %v, before the deadline", el)
	}
	// A message that is queued but not deliverable before the deadline
	// still times out — and stays queued for a later receive.
	r.SetLatency(80 * time.Millisecond)
	if err := r.Send(0, 1, tag(7), "slow"); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := r.RecvFromTimeout(1, 0, tag(7), 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout for undeliverable message", err)
	}
	m, err := r.RecvFromTimeout(1, 0, tag(7), time.Second)
	if err != nil || m.Data != "slow" {
		t.Fatalf("late recv: %v %v", m.Data, err)
	}
	// d <= 0 waits forever (delivered by a concurrent send).
	go func() {
		time.Sleep(10 * time.Millisecond)
		r.SetLatency(0)
		r.Send(0, 1, tag(8), "ok")
	}()
	if m, err := r.RecvFromTimeout(1, 0, tag(8), 0); err != nil || m.Data != "ok" {
		t.Fatalf("d=0 recv: %v %v", m.Data, err)
	}
}

// TestReadyMessageNotStarvedByDelayed pins the mailbox.get scan fix: a
// deliverable match queued behind a delayed match must be returned
// immediately, not starved until the delayed one's readyAt (the old scan
// stopped at the first match under the constant-latency assumption).
func TestReadyMessageNotStarvedByDelayed(t *testing.T) {
	r := NewRouter(2)
	r.SetLatency(300 * time.Millisecond)
	if err := r.Send(0, 1, tag(1), "delayed"); err != nil {
		t.Fatalf("send: %v", err)
	}
	r.SetLatency(0)
	if err := r.Send(0, 1, tag(1), "ready"); err != nil {
		t.Fatalf("send: %v", err)
	}
	start := time.Now()
	m, err := r.RecvFrom(1, 0, tag(1))
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if m.Data != "ready" {
		t.Fatalf("got %q, want the ready message first", m.Data)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("ready message took %v, starved behind the delayed one", el)
	}
	if m, err := r.RecvFrom(1, 0, tag(1)); err != nil || m.Data != "delayed" {
		t.Fatalf("delayed recv: %v %v", m.Data, err)
	}
}

// TestLatencyRecvAllocs pins the reusable wait-timer: a latency-mode
// send/receive round must not allocate a fresh time.AfterFunc per wait
// iteration. Steady state is 0 allocs/op; allow 1 for runtime noise.
func TestLatencyRecvAllocs(t *testing.T) {
	r := NewRouter(2)
	r.SetLatency(50 * time.Microsecond)
	match := func(m Message) bool { return true }
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.Send(0, 1, tag(1), nil); err != nil {
			t.Fatalf("send: %v", err)
		}
		if _, err := r.Recv(1, match); err != nil {
			t.Fatalf("recv: %v", err)
		}
	})
	if allocs > 1 {
		t.Fatalf("latency-mode send+recv allocated %.1f/op, want <= 1", allocs)
	}
}

// TestCloseSemantics pins the shutdown contract: Close is idempotent,
// Send-after-Close and Recv-after-Close return ErrClosed, and Done is
// closed so channel-based waiters can unblock.
func TestCloseSemantics(t *testing.T) {
	r := NewRouter(2)
	select {
	case <-r.Done():
		t.Fatal("Done closed before Close")
	default:
	}
	r.Close()
	r.Close() // idempotent
	select {
	case <-r.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	if err := r.Send(0, 1, tag(1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: %v, want ErrClosed", err)
	}
	if _, err := r.Recv(1, func(m Message) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after Close: %v, want ErrClosed", err)
	}
	if _, err := r.RecvTimeout(1, func(m Message) bool { return true }, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecvTimeout after Close: %v, want ErrClosed", err)
	}
}
