// Membership: seeded heartbeat machinery that turns the router's passive
// failure signals (Down, timeouts) into a proactive view of which
// processors are alive. Coordinators that consult it can fail over before
// burning a full per-call timeout budget against a dead peer.
//
// The protocol is deliberately simple — fail-stop, no rejoin: a monitor
// process on one processor (Home) pings every other processor each
// period; every processor runs a tiny responder that echoes pings back.
// A peer whose last echo is older than SuspectAfter is Suspect (it may
// still revert to Alive on a late echo); older than DeadAfter, or killed
// outright (Router.Down), it is Dead, permanently. Ping periods carry
// ±20% seeded jitter so a fleet of monitors cannot synchronize into
// probe storms, mirroring the jittered retry backoff of the array
// manager's CallPolicy.
package msg

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved task-class kinds for membership traffic, disjoint from the
// array-manager request kinds (-100, -102) and every data-class kind.
const (
	kindPing = -210
	kindPong = -211
)

// MemberState is the monitor's belief about one processor.
type MemberState int32

const (
	// StateAlive: the peer echoed a ping within SuspectAfter.
	StateAlive MemberState = iota
	// StateSuspect: no echo within SuspectAfter; may revert to Alive.
	StateSuspect
	// StateDead: no echo within DeadAfter, or Router.Down reported the
	// kill. Dead is sticky — the failure model is fail-stop.
	StateDead
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// MemberEvent records one state transition observed by the monitor.
type MemberEvent struct {
	Proc  int
	State MemberState
}

// MembershipConfig parameterizes a Membership monitor. SuspectAfter and
// DeadAfter are measured from the last received echo; they should be a
// few multiples of Period (a single dropped ping must not mark a peer
// Suspect if the next echo arrives in time).
type MembershipConfig struct {
	Home         int           // processor running the monitor
	Period       time.Duration // base ping period (jittered ±20%)
	SuspectAfter time.Duration // echo age before a peer turns Suspect
	DeadAfter    time.Duration // echo age before a peer turns Dead
	Seed         int64         // seeds the period jitter
}

// MembershipStats counts the monitor's activity.
type MembershipStats struct {
	Pings         uint64 // pings sent
	Acks          uint64 // echoes received
	Transitions   uint64 // state changes recorded
	DroppedEvents uint64 // Watch events discarded on a full channel
}

// Membership is a running heartbeat monitor over one router. Create it
// with NewMembership; query it with Alive/Suspect/State; subscribe to
// transitions with Watch; stop it with Stop. All methods are safe for
// concurrent use.
type Membership struct {
	r   *Router
	cfg MembershipConfig

	mu      sync.Mutex
	state   []MemberState
	lastAck []time.Time

	events chan MemberEvent

	pings       atomic.Uint64
	acks        atomic.Uint64
	transitions atomic.Uint64
	dropped     atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewMembership starts a heartbeat monitor on cfg.Home plus one echo
// responder per other processor. Zero durations default to Period=1ms,
// SuspectAfter=3*Period, DeadAfter=8*Period.
func NewMembership(r *Router, cfg MembershipConfig) (*Membership, error) {
	p := r.P()
	if cfg.Home < 0 || cfg.Home >= p {
		return nil, fmt.Errorf("%w: membership home %d (P=%d)", ErrBadProcessor, cfg.Home, p)
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Period
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 8 * cfg.Period
	}
	m := &Membership{
		r:       r,
		cfg:     cfg,
		state:   make([]MemberState, p),
		lastAck: make([]time.Time, p),
		events:  make(chan MemberEvent, 8*p),
		stop:    make(chan struct{}),
	}
	now := time.Now()
	for i := range m.lastAck {
		m.lastAck[i] = now
	}
	pingTag := Tag{Class: ClassTask, Kind: kindPing}
	for proc := 0; proc < p; proc++ {
		if proc == cfg.Home {
			continue
		}
		m.wg.Add(1)
		go m.respond(proc, pingTag)
	}
	m.wg.Add(2)
	go m.collect()
	go m.probe()
	return m, nil
}

// respond echoes pings at one processor until the mailbox dies (kill or
// close) — exactly the lifetime of the processor it represents.
func (m *Membership) respond(proc int, pingTag Tag) {
	defer m.wg.Done()
	pongTag := Tag{Class: ClassTask, Kind: kindPong}
	for {
		if _, err := m.r.RecvFrom(proc, m.cfg.Home, pingTag); err != nil {
			return
		}
		if err := m.r.Send(proc, m.cfg.Home, pongTag, nil); err != nil {
			return
		}
	}
}

// collect records echo arrival times at Home.
func (m *Membership) collect() {
	defer m.wg.Done()
	pongTag := Tag{Class: ClassTask, Kind: kindPong}
	for {
		msg, err := m.r.Recv(m.cfg.Home, func(mm Message) bool { return mm.Tag == pongTag })
		if err != nil {
			return
		}
		m.acks.Add(1)
		m.mu.Lock()
		m.lastAck[msg.Src] = time.Now()
		m.mu.Unlock()
	}
}

// probe sends the periodic pings and evaluates echo ages. The period is
// drawn per tick from [0.8, 1.2) * Period with the seeded rng.
func (m *Membership) probe() {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	timer := time.NewTimer(m.jittered(rng))
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.r.Done():
			return
		case <-timer.C:
		}
		m.tick()
		timer.Reset(m.jittered(rng))
	}
}

func (m *Membership) jittered(rng *rand.Rand) time.Duration {
	return time.Duration(float64(m.cfg.Period) * (0.8 + 0.4*rng.Float64()))
}

// tick pings every non-dead peer and re-evaluates states.
func (m *Membership) tick() {
	pingTag := Tag{Class: ClassTask, Kind: kindPing}
	now := time.Now()
	for proc := 0; proc < m.r.P(); proc++ {
		if proc == m.cfg.Home {
			continue
		}
		m.mu.Lock()
		st := m.state[proc]
		age := now.Sub(m.lastAck[proc])
		m.mu.Unlock()
		if st == StateDead {
			continue
		}
		var next MemberState
		switch {
		case m.r.Down(proc) || age > m.cfg.DeadAfter:
			next = StateDead
		case age > m.cfg.SuspectAfter:
			next = StateSuspect
		default:
			next = StateAlive
		}
		if next != StateDead {
			// A dead peer eats the ping silently; sending costs nothing
			// but noise, so only live candidates are probed.
			if err := m.r.Send(m.cfg.Home, proc, pingTag, nil); err == nil {
				m.pings.Add(1)
			}
		}
		if next != st {
			m.setState(proc, next)
		}
	}
}

// setState records a transition and publishes it to Watch, dropping the
// event (counted) rather than blocking if no one is draining.
func (m *Membership) setState(proc int, next MemberState) {
	m.mu.Lock()
	m.state[proc] = next
	m.mu.Unlock()
	m.transitions.Add(1)
	select {
	case m.events <- MemberEvent{Proc: proc, State: next}:
	default:
		m.dropped.Add(1)
	}
}

// State returns the monitor's current belief about proc. The Home
// processor and out-of-range processors report Alive.
func (m *Membership) State(proc int) MemberState {
	if proc < 0 || proc >= m.r.P() || proc == m.cfg.Home {
		return StateAlive
	}
	// A kill is visible immediately through the router, ahead of the next
	// probe tick — the proactive part of the membership contract.
	if m.r.Down(proc) {
		m.mu.Lock()
		if m.state[proc] != StateDead {
			m.mu.Unlock()
			m.setState(proc, StateDead)
		} else {
			m.mu.Unlock()
		}
		return StateDead
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state[proc]
}

// Alive reports whether the monitor believes proc is alive (not Suspect,
// not Dead).
func (m *Membership) Alive(proc int) bool { return m.State(proc) == StateAlive }

// Suspect reports whether proc is currently suspected but not yet dead.
func (m *Membership) Suspect(proc int) bool { return m.State(proc) == StateSuspect }

// Watch returns the monitor's transition stream. Events are dropped
// (counted in Stats) when the buffer is full; consumers needing a
// complete history must drain promptly.
func (m *Membership) Watch() <-chan MemberEvent { return m.events }

// Stats returns the activity counters.
func (m *Membership) Stats() MembershipStats {
	return MembershipStats{
		Pings:         m.pings.Load(),
		Acks:          m.acks.Load(),
		Transitions:   m.transitions.Load(),
		DroppedEvents: m.dropped.Load(),
	}
}

// Stop halts the prober. Responder and collector goroutines exit when
// the router closes (their receives error); Stop does not wait for them.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}
