package net

import (
	"errors"
	"testing"
	"time"

	"repro/internal/msg"
)

// part is one side of a loopback cluster living inside the test process:
// a router partitioned onto its processor slice plus its transport.
type part struct {
	r  *msg.Router
	tr *Transport
}

// loopback boots an nparts-way cluster over real TCP on 127.0.0.1, all
// parts in this one test process. parts[0] listens; the rest dial.
func loopback(t *testing.T, p, nparts int) []part {
	t.Helper()
	t0, err := Listen("127.0.0.1:0", p, nparts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	parts := make([]part, nparts)
	parts[0] = part{r: msg.NewRouter(p), tr: t0}
	parts[0].r.SetTransport(t0, HostedMap(p, nparts, 0))
	t0.Attach(parts[0].r)
	for rank := 1; rank < nparts; rank++ {
		tw, err := Dial(t0.Addr(), p, nparts, rank)
		if err != nil {
			t.Fatalf("Dial rank %d: %v", rank, err)
		}
		parts[rank] = part{r: msg.NewRouter(p), tr: tw}
		parts[rank].r.SetTransport(tw, HostedMap(p, nparts, rank))
		tw.Attach(parts[rank].r)
	}
	if err := t0.WaitPeers(10 * time.Second); err != nil {
		t.Fatalf("WaitPeers: %v", err)
	}
	t.Cleanup(func() {
		t0.Shutdown()
		for _, pt := range parts {
			pt.r.Close()
		}
		for _, pt := range parts {
			pt.tr.Wait()
		}
	})
	return parts
}

func recvAt(t *testing.T, pt part, dst, src int, tag msg.Tag) msg.Message {
	t.Helper()
	m, err := pt.r.RecvFromTimeout(dst, src, tag, 10*time.Second)
	if err != nil {
		t.Fatalf("recv at %d from %d: %v", dst, src, err)
	}
	return m
}

// TestSendCapturesPayload pins the deep-copy-at-the-seam contract: the
// payload is serialized before Send returns, so mutating the source
// buffer afterwards (as pooled-buffer recycling does) must not be
// visible to the receiver.
func TestSendCapturesPayload(t *testing.T) {
	parts := loopback(t, 4, 2)
	tag := msg.Tag{Class: msg.ClassData, Kind: 7}

	buf := []float64{1, 2, 3, 4}
	if err := parts[0].r.Send(0, 2, tag, buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// The sender recycles the buffer the instant Send returns.
	for i := range buf {
		buf[i] = -999
	}

	m := recvAt(t, parts[1], 2, 0, tag)
	got, ok := m.Data.([]float64)
	if !ok {
		t.Fatalf("payload type %T, want []float64", m.Data)
	}
	for i, v := range got {
		if v != float64(i+1) {
			t.Fatalf("got[%d] = %v, want %d: receiver saw post-mutation bytes", i, v, i+1)
		}
	}
}

// TestSendCapturesNestedPayload is the same pin for a [][]float64 (the
// shape of halo slabs): inner rows must be captured too.
func TestSendCapturesNestedPayload(t *testing.T) {
	parts := loopback(t, 4, 2)
	tag := msg.Tag{Class: msg.ClassData, Kind: 8}

	rows := [][]float64{{1, 2}, {3, 4}}
	if err := parts[0].r.Send(1, 3, tag, rows); err != nil {
		t.Fatalf("Send: %v", err)
	}
	rows[0][0], rows[1][1] = -1, -1

	m := recvAt(t, parts[1], 3, 1, tag)
	got := m.Data.([][]float64)
	want := [][]float64{{1, 2}, {3, 4}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("got[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestFIFOAcrossWire verifies the ordering half of the transport
// contract: delivery between a fixed (src, dst) pair is FIFO.
func TestFIFOAcrossWire(t *testing.T) {
	parts := loopback(t, 4, 2)
	tag := msg.Tag{Class: msg.ClassData, Kind: 1}

	const n = 200
	for i := 0; i < n; i++ {
		if err := parts[0].r.Send(0, 2, tag, i); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		m := recvAt(t, parts[1], 2, 0, tag)
		if m.Data.(int) != i {
			t.Fatalf("message %d arrived carrying %v: reordered or duplicated", i, m.Data)
		}
	}
}

// TestWorkerToWorkerRelay exercises the relay leg of the star: a frame
// between two worker parts travels through part 0 and back out.
func TestWorkerToWorkerRelay(t *testing.T) {
	parts := loopback(t, 3, 3) // proc i hosted by part i
	tag := msg.Tag{Class: msg.ClassData, Kind: 2}

	if err := parts[1].r.Send(1, 2, tag, "across the star"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m := recvAt(t, parts[2], 2, 1, tag)
	if m.Data.(string) != "across the star" {
		t.Fatalf("relayed payload = %v", m.Data)
	}

	// And the reply leg worker -> part 0.
	if err := parts[2].r.Send(2, 0, tag, 42); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	m = recvAt(t, parts[0], 0, 2, tag)
	if m.Data.(int) != 42 {
		t.Fatalf("reply payload = %v", m.Data)
	}
}

// TestKillPropagates verifies a kill lands machine-wide: the hosting
// part's mailbox dies for real, other parts observe Down and drop
// sends to the dead processor instead of shipping frames to it.
func TestKillPropagates(t *testing.T) {
	parts := loopback(t, 4, 2)

	if err := parts[0].tr.Kill(3); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	// Origin part: synchronous remote-down record.
	if !parts[0].r.Down(3) {
		t.Fatal("origin part does not report processor 3 down")
	}
	// Hosting part: the kill notice travels the wire; receives at the
	// dead processor fail with ErrProcessorDown once it lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if parts[1].r.Down(3) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hosting part never observed the kill")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := parts[1].r.RecvTimeout(3, func(msg.Message) bool { return true }, time.Second)
	if !errors.Is(err, msg.ErrProcessorDown) {
		t.Fatalf("recv at killed processor: %v, want ErrProcessorDown", err)
	}
	// Sends to the dead processor from the origin part are dropped
	// without error (dead peers silently eat traffic, as in-process).
	if err := parts[0].r.Send(0, 3, msg.Tag{Class: msg.ClassData, Kind: 3}, 1); err != nil {
		t.Fatalf("send to dead processor: %v, want silent drop", err)
	}
	// The living processor on the same part is unaffected.
	tag := msg.Tag{Class: msg.ClassData, Kind: 4}
	if err := parts[0].r.Send(0, 2, tag, "alive"); err != nil {
		t.Fatalf("send to living processor: %v", err)
	}
	m := recvAt(t, parts[1], 2, 0, tag)
	if m.Data.(string) != "alive" {
		t.Fatalf("living processor payload = %v", m.Data)
	}
}

// TestPartBounds pins the contiguous split: parts cover 0..p-1 exactly
// once, in order, with sizes differing by at most one.
func TestPartBounds(t *testing.T) {
	for _, tc := range []struct{ p, nparts int }{{4, 2}, {5, 2}, {7, 3}, {3, 3}, {8, 4}} {
		next := 0
		for rank := 0; rank < tc.nparts; rank++ {
			lo, hi := PartBounds(tc.p, tc.nparts, rank)
			if lo != next {
				t.Fatalf("p=%d nparts=%d rank=%d: lo=%d, want %d", tc.p, tc.nparts, rank, lo, next)
			}
			if sz := hi - lo; sz < tc.p/tc.nparts || sz > tc.p/tc.nparts+1 {
				t.Fatalf("p=%d nparts=%d rank=%d: size %d not balanced", tc.p, tc.nparts, rank, sz)
			}
			next = hi
		}
		if next != tc.p {
			t.Fatalf("p=%d nparts=%d: parts cover %d procs", tc.p, tc.nparts, next)
		}
	}
}
